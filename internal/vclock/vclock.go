// Package vclock implements the vector clocks underlying the race
// detector's happens-before reasoning.
//
// A clock maps execution-context ids (TSan fibers in this reproduction) to
// logical epochs. Clocks are dense slices indexed by context id, because
// fiber ids are small and allocated contiguously.
package vclock

import (
	"fmt"
	"strings"
)

// Epoch is the logical time of one execution context.
type Epoch uint64

// Clock is a vector clock. The zero value is a valid clock at time zero
// everywhere.
type Clock struct {
	ts []Epoch
}

// New returns an empty clock.
func New() *Clock { return &Clock{} }

// Get returns the epoch recorded for context id.
func (c *Clock) Get(id int) Epoch {
	if id < 0 || id >= len(c.ts) {
		return 0
	}
	return c.ts[id]
}

// Set records epoch e for context id, growing the clock as needed.
func (c *Clock) Set(id int, e Epoch) {
	c.grow(id)
	c.ts[id] = e
}

// Tick advances context id's component by one and returns the new epoch.
func (c *Clock) Tick(id int) Epoch {
	c.grow(id)
	c.ts[id]++
	return c.ts[id]
}

func (c *Clock) grow(id int) {
	if id < len(c.ts) {
		return
	}
	if id < cap(c.ts) {
		// Grow in place. The extension must be zeroed explicitly: the
		// backing array may carry stale epochs from a prior Assign that
		// shrank the clock, or uninitialized arena memory.
		old := len(c.ts)
		c.ts = c.ts[:id+1]
		for i := old; i <= id; i++ {
			c.ts[i] = 0
		}
		return
	}
	ns := make([]Epoch, id+1, max(id+1, 2*cap(c.ts)))
	copy(ns, c.ts)
	c.ts = ns
}

// Join merges other into c, component-wise maximum. This is the "acquire"
// half of release/acquire synchronization.
func (c *Clock) Join(other *Clock) {
	if other == nil {
		return
	}
	if len(other.ts) > len(c.ts) {
		c.grow(len(other.ts) - 1)
	}
	for i, e := range other.ts {
		if e > c.ts[i] {
			c.ts[i] = e
		}
	}
}

// Assign overwrites c with a copy of other.
func (c *Clock) Assign(other *Clock) {
	if other == nil {
		c.ts = c.ts[:0]
		return
	}
	if cap(c.ts) < len(other.ts) {
		c.ts = make([]Epoch, len(other.ts))
	} else {
		c.ts = c.ts[:len(other.ts)]
	}
	copy(c.ts, other.ts)
}

// Clone returns an independent copy of c.
func (c *Clock) Clone() *Clock {
	n := New()
	n.Assign(c)
	return n
}

// HappensBefore reports whether every component of c is <= the
// corresponding component of other, i.e. c's knowledge is contained in
// other's. Two equal clocks "happen before" each other in this ordering;
// callers that need strict ordering compare identity separately.
func (c *Clock) HappensBefore(other *Clock) bool {
	for i, e := range c.ts {
		if e > other.Get(i) {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock is ordered before the other.
func (c *Clock) Concurrent(other *Clock) bool {
	return !c.HappensBefore(other) && !other.HappensBefore(c)
}

// Len returns the number of components tracked.
func (c *Clock) Len() int { return len(c.ts) }

// Arena is a chunked allocator for clocks. The race detector creates a
// clock per fiber and per synchronization variable; allocating the
// Clock headers and their epoch backing arrays out of shared slabs
// keeps steady-state detector operation free of per-object heap
// allocations and places hot clocks contiguously in memory.
//
// Clocks handed out by an Arena never return to it individually — the
// whole arena is dropped (garbage collected) with its owner, the
// "reset per run" lifecycle. A clock that outgrows its slab-backed
// capacity falls back to the ordinary heap transparently via grow.
type Arena struct {
	clocks []Clock
	epochs []Epoch
	hint   int
}

const (
	arenaClockChunk = 32
	minArenaHint    = 4
)

// NewArena returns an arena whose clocks start with capacity hint.
func NewArena(hint int) *Arena {
	a := &Arena{}
	a.SetHint(hint)
	return a
}

// SetHint adjusts the initial capacity of subsequently allocated
// clocks (callers raise it as the number of execution contexts grows,
// so later clocks do not immediately re-allocate on first Join).
func (a *Arena) SetHint(hint int) {
	if hint < minArenaHint {
		hint = minArenaHint
	}
	a.hint = hint
}

// New carves a zeroed clock with capacity a.hint out of the arena.
func (a *Arena) New() *Clock {
	if len(a.clocks) == 0 {
		a.clocks = make([]Clock, arenaClockChunk)
	}
	c := &a.clocks[0]
	a.clocks = a.clocks[1:]
	if len(a.epochs) < a.hint {
		a.epochs = make([]Epoch, arenaClockChunk*a.hint)
	}
	c.ts = a.epochs[:0:a.hint]
	a.epochs = a.epochs[a.hint:]
	return c
}

// String renders the clock as {id:epoch ...} for diagnostics, omitting
// zero components.
func (c *Clock) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, e := range c.ts {
		if e == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i, e)
	}
	b.WriteByte('}')
	return b.String()
}
