package vclock

import (
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if c.Get(0) != 0 || c.Get(100) != 0 {
		t.Fatal("zero clock must read 0 everywhere")
	}
	if c.Len() != 0 {
		t.Fatal("zero clock has no components")
	}
}

func TestTickAndGet(t *testing.T) {
	c := New()
	if e := c.Tick(3); e != 1 {
		t.Fatalf("first tick = %d", e)
	}
	if e := c.Tick(3); e != 2 {
		t.Fatalf("second tick = %d", e)
	}
	if c.Get(3) != 2 || c.Get(0) != 0 || c.Get(2) != 0 {
		t.Fatal("components wrong after tick")
	}
}

func TestSetGrow(t *testing.T) {
	c := New()
	c.Set(10, 5)
	if c.Get(10) != 5 {
		t.Fatal("set/get mismatch")
	}
	if c.Len() != 11 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestJoin(t *testing.T) {
	a := New()
	b := New()
	a.Set(0, 3)
	a.Set(1, 1)
	b.Set(1, 5)
	b.Set(2, 2)
	a.Join(b)
	want := []Epoch{3, 5, 2}
	for i, w := range want {
		if a.Get(i) != w {
			t.Errorf("a[%d] = %d, want %d", i, a.Get(i), w)
		}
	}
	// b unchanged
	if b.Get(0) != 0 || b.Get(1) != 5 || b.Get(2) != 2 {
		t.Error("join mutated its argument")
	}
}

func TestJoinNil(t *testing.T) {
	a := New()
	a.Set(0, 1)
	a.Join(nil)
	if a.Get(0) != 1 {
		t.Fatal("join nil changed clock")
	}
}

func TestHappensBefore(t *testing.T) {
	a := New()
	b := New()
	a.Set(0, 1)
	b.Set(0, 2)
	if !a.HappensBefore(b) {
		t.Error("a <= b expected")
	}
	if b.HappensBefore(a) {
		t.Error("b <= a unexpected")
	}
	b.Set(1, 1)
	a.Set(2, 4)
	if a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("expected concurrent")
	}
	if !a.Concurrent(b) {
		t.Error("Concurrent should report true")
	}
}

func TestAssignClone(t *testing.T) {
	a := New()
	a.Set(0, 7)
	a.Set(5, 9)
	b := a.Clone()
	if !a.HappensBefore(b) || !b.HappensBefore(a) {
		t.Fatal("clone differs")
	}
	b.Tick(0)
	if a.Get(0) != 7 {
		t.Fatal("clone aliases original")
	}
	c := New()
	c.Set(9, 1)
	c.Assign(a)
	if c.Get(9) != 0 || c.Get(5) != 9 {
		t.Fatal("assign incorrect")
	}
}

func TestString(t *testing.T) {
	c := New()
	c.Set(1, 2)
	c.Set(3, 4)
	if got := c.String(); got != "{1:2 3:4}" {
		t.Fatalf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func fromSlice(es []Epoch) *Clock {
	c := New()
	for i, e := range es {
		c.Set(i, e)
	}
	return c
}

// Property: join is the least upper bound — after a.Join(b), both original
// clocks happen-before the result.
func TestPropertyJoinIsUpperBound(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		if len(xs) > 16 {
			xs = xs[:16]
		}
		if len(ys) > 16 {
			ys = ys[:16]
		}
		toEpochs := func(v []uint8) []Epoch {
			out := make([]Epoch, len(v))
			for i, x := range v {
				out[i] = Epoch(x)
			}
			return out
		}
		a := fromSlice(toEpochs(xs))
		b := fromSlice(toEpochs(ys))
		aOrig := a.Clone()
		a.Join(b)
		return aOrig.HappensBefore(a) && b.HappensBefore(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HappensBefore is a partial order — reflexive and transitive on
// the join lattice.
func TestPropertyOrderTransitive(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		lim := func(v []uint8) []Epoch {
			if len(v) > 8 {
				v = v[:8]
			}
			out := make([]Epoch, len(v))
			for i, x := range v {
				out[i] = Epoch(x % 4)
			}
			return out
		}
		a := fromSlice(lim(xs))
		b := fromSlice(lim(ys))
		c := fromSlice(lim(zs))
		if !a.HappensBefore(a) {
			return false
		}
		if a.HappensBefore(b) && b.HappensBefore(c) && !a.HappensBefore(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJoin(b *testing.B) {
	x := New()
	y := New()
	for i := 0; i < 32; i++ {
		x.Set(i, Epoch(i))
		y.Set(i, Epoch(64-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Join(y)
	}
}
