// Package typeart reproduces TypeART (paper §II-C): a type registry plus
// a runtime table of instrumented memory allocations.
//
// The compiler-pass half of TypeART — statically collecting allocations
// and serializing type layouts — corresponds here to the typed allocation
// helpers of the toolchain (core.Session) and the CUDA runtime, which
// invoke the Track/Release callbacks with (address, count, type id),
// exactly the callback signature the paper describes. The runtime half is
// this package's allocation table: MUST queries it to check MPI datatype
// compatibility and buffer extents, and CuSan queries it for device
// allocation sizes when annotating kernel argument memory ranges.
package typeart

import (
	"fmt"
	"sort"
	"sync"

	"cusango/internal/memspace"
)

// TypeID identifies a registered type layout.
type TypeID int32

// Builtin type ids, pre-registered in every Registry.
const (
	TypeInvalid TypeID = iota
	TypeUint8
	TypeInt32
	TypeInt64
	TypeFloat32
	TypeFloat64
	firstUserType
)

// Field is one member of a struct layout.
type Field struct {
	Name   string
	Offset int64
	Type   TypeID
}

// Info describes a registered type.
type Info struct {
	ID     TypeID
	Name   string
	Size   int64
	Fields []Field // empty for builtins
}

// Registry holds the serialized compile-time type information
// (paper Fig. 2, step 1).
type Registry struct {
	mu     sync.RWMutex
	types  map[TypeID]*Info
	byName map[string]TypeID
	next   TypeID
}

// NewRegistry returns a registry pre-populated with the builtin types.
func NewRegistry() *Registry {
	r := &Registry{
		types:  make(map[TypeID]*Info),
		byName: make(map[string]TypeID),
		next:   firstUserType,
	}
	builtins := []Info{
		{ID: TypeUint8, Name: "uint8", Size: 1},
		{ID: TypeInt32, Name: "int32", Size: 4},
		{ID: TypeInt64, Name: "int64", Size: 8},
		{ID: TypeFloat32, Name: "float32", Size: 4},
		{ID: TypeFloat64, Name: "float64", Size: 8},
	}
	for i := range builtins {
		in := builtins[i]
		r.types[in.ID] = &in
		r.byName[in.Name] = in.ID
	}
	return r
}

// RegisterStruct registers a user-defined layout and returns its id.
// Re-registering the same name returns the existing id.
func (r *Registry) RegisterStruct(name string, size int64, fields []Field) TypeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := r.next
	r.next++
	r.types[id] = &Info{ID: id, Name: name, Size: size, Fields: fields}
	r.byName[name] = id
	return id
}

// Info returns the type's layout, or nil for unknown ids.
func (r *Registry) Info(id TypeID) *Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.types[id]
}

// IDByName resolves a type name, or TypeInvalid.
func (r *Registry) IDByName(name string) TypeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Record is one tracked allocation.
type Record struct {
	Base  memspace.Addr
	Type  TypeID
	Count int64
	Kind  memspace.Kind
	// ElemSize caches the type's size.
	ElemSize int64
}

// Bytes returns the allocation payload size.
func (rec *Record) Bytes() int64 { return rec.Count * rec.ElemSize }

// End returns the first address past the allocation.
func (rec *Record) End() memspace.Addr { return rec.Base + memspace.Addr(rec.Bytes()) }

// Stats counts runtime events.
type Stats struct {
	Tracked  int64
	Released int64
	Lookups  int64
	Misses   int64
}

// Runtime is the allocation-tracking runtime (paper Fig. 2, step 2).
// A rank's host goroutine is the only caller, so no locking is needed on
// the table; the shared Registry is locked independently.
type Runtime struct {
	Reg  *Registry
	recs []*Record // sorted by Base
	last *Record
	st   Stats
}

// NewRuntime creates an empty tracking runtime over reg.
func NewRuntime(reg *Registry) *Runtime {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Runtime{Reg: reg}
}

// Track records an allocation of count elements of type id at base
// (the instrumentation callback).
func (rt *Runtime) Track(base memspace.Addr, id TypeID, count int64, kind memspace.Kind) error {
	info := rt.Reg.Info(id)
	if info == nil {
		return fmt.Errorf("typeart: Track with unknown type id %d", id)
	}
	if count < 0 {
		return fmt.Errorf("typeart: Track with negative count %d", count)
	}
	rec := &Record{Base: base, Type: id, Count: count, Kind: kind, ElemSize: info.Size}
	i := sort.Search(len(rt.recs), func(i int) bool { return rt.recs[i].Base > base })
	if i > 0 && rt.recs[i-1].Base == base {
		return fmt.Errorf("typeart: duplicate Track at 0x%x", uint64(base))
	}
	rt.recs = append(rt.recs, nil)
	copy(rt.recs[i+1:], rt.recs[i:])
	rt.recs[i] = rec
	rt.st.Tracked++
	return nil
}

// Release removes the allocation record at base (the de-allocation
// callback).
func (rt *Runtime) Release(base memspace.Addr) error {
	i := sort.Search(len(rt.recs), func(i int) bool { return rt.recs[i].Base > base })
	i--
	if i < 0 || rt.recs[i].Base != base {
		return fmt.Errorf("typeart: Release of untracked 0x%x", uint64(base))
	}
	if rt.last == rt.recs[i] {
		rt.last = nil
	}
	rt.recs = append(rt.recs[:i], rt.recs[i+1:]...)
	rt.st.Released++
	return nil
}

// Retype refines the type of an already-tracked allocation. CUDA
// allocations are first tracked as byte arrays (cudaMalloc is untyped);
// when the toolchain observes the typed use (the bitcast, in LLVM terms),
// it refines the record so MUST's datatype checks see the real element
// type. The new layout must cover exactly the same byte extent.
func (rt *Runtime) Retype(base memspace.Addr, id TypeID, count int64) error {
	info := rt.Reg.Info(id)
	if info == nil {
		return fmt.Errorf("typeart: Retype with unknown type id %d", id)
	}
	rec, off, ok := rt.Lookup(base)
	if !ok || off != 0 {
		return fmt.Errorf("typeart: Retype of untracked base 0x%x", uint64(base))
	}
	if count*info.Size != rec.Bytes() {
		return fmt.Errorf("typeart: Retype extent mismatch: %d*%d != %d",
			count, info.Size, rec.Bytes())
	}
	rec.Type = id
	rec.Count = count
	rec.ElemSize = info.Size
	return nil
}

// Lookup resolves addr (interior pointers allowed) to its allocation
// record and byte offset. This is the query MUST issues per intercepted
// MPI call (paper Fig. 2, step 4).
func (rt *Runtime) Lookup(addr memspace.Addr) (rec *Record, offset int64, ok bool) {
	rt.st.Lookups++
	if r := rt.last; r != nil && addr >= r.Base && addr < r.End() {
		return r, int64(addr - r.Base), true
	}
	i := sort.Search(len(rt.recs), func(i int) bool { return rt.recs[i].Base > addr })
	i--
	if i >= 0 {
		r := rt.recs[i]
		if addr >= r.Base && addr < r.End() {
			rt.last = r
			return r, int64(addr - r.Base), true
		}
	}
	rt.st.Misses++
	return nil, 0, false
}

// RemainingBytes returns the bytes from addr to the end of its
// allocation, which is the extent CuSan annotates for device pointers.
func (rt *Runtime) RemainingBytes(addr memspace.Addr) (int64, bool) {
	rec, off, ok := rt.Lookup(addr)
	if !ok {
		return 0, false
	}
	return rec.Bytes() - off, true
}

// RemainingCount returns the element count from addr (rounded down to a
// whole element boundary) to the end of the allocation.
func (rt *Runtime) RemainingCount(addr memspace.Addr) (int64, TypeID, bool) {
	rec, off, ok := rt.Lookup(addr)
	if !ok {
		return 0, TypeInvalid, false
	}
	if rec.ElemSize == 0 {
		return 0, rec.Type, true
	}
	return rec.Count - off/rec.ElemSize, rec.Type, true
}

// NumTracked returns the number of live tracked allocations.
func (rt *Runtime) NumTracked() int { return len(rt.recs) }

// Stats returns a snapshot of the event counters.
func (rt *Runtime) Stats() Stats { return rt.st }
