package typeart

import (
	"testing"
	"testing/quick"

	"cusango/internal/memspace"
)

func TestBuiltinRegistry(t *testing.T) {
	r := NewRegistry()
	for name, want := range map[string]int64{
		"uint8": 1, "int32": 4, "int64": 8, "float32": 4, "float64": 8,
	} {
		id := r.IDByName(name)
		if id == TypeInvalid {
			t.Fatalf("builtin %q not registered", name)
		}
		if got := r.Info(id).Size; got != want {
			t.Errorf("%q size = %d, want %d", name, got, want)
		}
	}
	if r.IDByName("ghost") != TypeInvalid {
		t.Error("unknown name must resolve to invalid")
	}
	if r.Info(TypeID(999)) != nil {
		t.Error("unknown id must resolve to nil")
	}
}

func TestRegisterStruct(t *testing.T) {
	r := NewRegistry()
	id := r.RegisterStruct("particle", 24, []Field{
		{Name: "x", Offset: 0, Type: TypeFloat64},
		{Name: "y", Offset: 8, Type: TypeFloat64},
		{Name: "id", Offset: 16, Type: TypeInt64},
	})
	if id < firstUserType {
		t.Fatalf("user type id %d in builtin range", id)
	}
	if again := r.RegisterStruct("particle", 24, nil); again != id {
		t.Fatal("re-registering must return same id")
	}
	in := r.Info(id)
	if in.Size != 24 || len(in.Fields) != 3 {
		t.Fatalf("info = %+v", in)
	}
}

func TestTrackAndLookup(t *testing.T) {
	rt := NewRuntime(nil)
	base := memspace.Addr(3 << 40)
	if err := rt.Track(base, TypeFloat64, 100, memspace.KindDevice); err != nil {
		t.Fatal(err)
	}
	rec, off, ok := rt.Lookup(base + 160) // element 20
	if !ok || rec.Base != base || off != 160 {
		t.Fatalf("lookup: rec=%v off=%d ok=%v", rec, off, ok)
	}
	if rec.Bytes() != 800 {
		t.Fatalf("bytes = %d", rec.Bytes())
	}
	if _, _, ok := rt.Lookup(base + 800); ok {
		t.Fatal("lookup past end must miss")
	}
	if _, _, ok := rt.Lookup(base - 1); ok {
		t.Fatal("lookup before base must miss")
	}
}

func TestTrackErrors(t *testing.T) {
	rt := NewRuntime(nil)
	base := memspace.Addr(3 << 40)
	if err := rt.Track(base, TypeID(4242), 1, memspace.KindDevice); err == nil {
		t.Error("unknown type id must fail")
	}
	if err := rt.Track(base, TypeFloat64, -1, memspace.KindDevice); err == nil {
		t.Error("negative count must fail")
	}
	if err := rt.Track(base, TypeFloat64, 1, memspace.KindDevice); err != nil {
		t.Fatal(err)
	}
	if err := rt.Track(base, TypeInt32, 1, memspace.KindDevice); err == nil {
		t.Error("duplicate track must fail")
	}
}

func TestRelease(t *testing.T) {
	rt := NewRuntime(nil)
	base := memspace.Addr(3 << 40)
	if err := rt.Release(base); err == nil {
		t.Error("release of untracked must fail")
	}
	if err := rt.Track(base, TypeInt32, 10, memspace.KindDevice); err != nil {
		t.Fatal(err)
	}
	// Warm the lookup cache, then release: the cache must not resurrect.
	if _, _, ok := rt.Lookup(base); !ok {
		t.Fatal("lookup failed")
	}
	if err := rt.Release(base); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := rt.Lookup(base); ok {
		t.Fatal("released allocation still found")
	}
	if rt.NumTracked() != 0 {
		t.Fatal("record leaked")
	}
}

func TestRemainingBytesAndCount(t *testing.T) {
	rt := NewRuntime(nil)
	base := memspace.Addr(3 << 40)
	if err := rt.Track(base, TypeFloat64, 50, memspace.KindDevice); err != nil {
		t.Fatal(err)
	}
	if n, ok := rt.RemainingBytes(base); !ok || n != 400 {
		t.Fatalf("remaining from base = %d", n)
	}
	if n, ok := rt.RemainingBytes(base + 80); !ok || n != 320 {
		t.Fatalf("remaining from elem 10 = %d", n)
	}
	cnt, id, ok := rt.RemainingCount(base + 80)
	if !ok || cnt != 40 || id != TypeFloat64 {
		t.Fatalf("remaining count = %d type %d", cnt, id)
	}
	if _, ok := rt.RemainingBytes(memspace.Addr(1)); ok {
		t.Fatal("untracked pointer must miss")
	}
}

func TestStats(t *testing.T) {
	rt := NewRuntime(nil)
	base := memspace.Addr(3 << 40)
	_ = rt.Track(base, TypeFloat64, 1, memspace.KindDevice)
	rt.Lookup(base)
	rt.Lookup(memspace.Addr(1))
	_ = rt.Release(base)
	st := rt.Stats()
	if st.Tracked != 1 || st.Released != 1 || st.Lookups != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: with many interleaved tracks/releases, Lookup finds exactly
// the live allocations and resolves interior pointers to the right base.
func TestPropertyTable(t *testing.T) {
	f := func(n uint8, freeMask uint32) bool {
		count := int(n%20) + 2
		rt := NewRuntime(nil)
		bases := make([]memspace.Addr, count)
		for i := range bases {
			bases[i] = memspace.Addr(3<<40) + memspace.Addr(i*1024)
			if err := rt.Track(bases[i], TypeFloat64, 16, memspace.KindDevice); err != nil {
				return false
			}
		}
		live := make([]bool, count)
		for i := range live {
			live[i] = true
			if freeMask&(1<<uint(i)) != 0 {
				if err := rt.Release(bases[i]); err != nil {
					return false
				}
				live[i] = false
			}
		}
		for i, b := range bases {
			rec, off, ok := rt.Lookup(b + 64)
			if live[i] != ok {
				return false
			}
			if ok && (rec.Base != b || off != 64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
