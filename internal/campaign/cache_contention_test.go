package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestDirCacheTwoProcessContention models two server processes sharing
// one cache directory: two independent Cache handles (separate mem
// maps, same dir) hammer overlapping keys concurrently. Every read
// must observe either a miss or a complete record — never a torn one —
// and once both writers finish, both handles agree on every key.
func TestDirCacheTwoProcessContention(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	const keys = 32
	rec := func(i int) *Record {
		return &Record{
			V:        FormatVersion,
			Kind:     "suite",
			Case:     fmt.Sprintf("contention/case-%d", i),
			Engine:   "fast",
			Verdict:  VerdictPass,
			AppFault: fmt.Sprintf("detail for %d", i),
		}
	}

	var wg sync.WaitGroup
	for _, c := range []*Cache{a, b} {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				for round := 0; round < 20; round++ {
					for i := 0; i < keys; i++ {
						c.Put(fmt.Sprintf("k%d", i), rec(i))
					}
				}
			}(c)
		}
		// Concurrent readers on a third handle per iteration simulate a
		// process that starts mid-write: reads go straight to disk.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 40; round++ {
				fresh, err := OpenDir(dir)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < keys; i++ {
					r := fresh.Get(fmt.Sprintf("k%d", i))
					if r == nil {
						continue // miss is fine; torn is not
					}
					if r.Case != fmt.Sprintf("contention/case-%d", i) || r.Verdict != VerdictPass {
						t.Errorf("torn or cross-wired entry for k%d: %+v", i, r)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Both original handles and a cold third process agree on every key.
	cold, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		for name, c := range map[string]*Cache{"a": a, "b": b, "cold": cold} {
			r := c.Get(key)
			if r == nil {
				t.Fatalf("handle %s: miss on %s after writers finished", name, key)
			}
			if r.Case != fmt.Sprintf("contention/case-%d", i) {
				t.Fatalf("handle %s: wrong record for %s: %+v", name, key, r)
			}
		}
	}

	// No temp litter survives the contention, and a fresh OpenDir sweeps
	// any that a SIGKILLed writer would have left.
	if litter, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(litter) != 0 {
		t.Fatalf("temp litter left behind: %v", litter)
	}
	planted := filepath.Join(dir, "k0.tmp-stale")
	if err := os.WriteFile(planted, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(planted); !os.IsNotExist(err) {
		t.Fatalf("OpenDir did not sweep stale temp file %s", planted)
	}
}
