package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"time"
)

// Supervision: deadlines, a hung-job watchdog, and deterministic retry.
//
// The supervisor wraps a context-aware executor into the plain
// func(Job) *Record the campaign engine dispatches. Each attempt runs
// under a wall-clock deadline; when it fires the executor's context is
// cancelled, the core runner tears the job's MPI world down
// (mpi.World.Cancel), and the attempt is recorded as VerdictTimeout —
// a record whose bytes mention only the configured deadline, so a job
// that deterministically hangs (the sched-stall fault site) reports
// byte-identically at any -j and across repeats. Infra-class failures
// — watchdog kills and executor panics — are retried with exponential
// backoff; verdict-class results (pass/fail/error-with-cause/budget)
// never are, so retries cannot change canonical report bytes.

// ExecFunc is a supervised job executor: a pure function of the job
// identity that honours ctx cancellation (thread ctx into
// core.Config.Ctx so a cancel tears the MPI world down).
type ExecFunc func(ctx context.Context, j Job) *Record

// InfraPrefix marks AppFault strings of infra-class failures — the
// harness failed, not the checker. Records whose VerdictError AppFault
// carries this prefix are retryable; all other error records are
// verdicts (a deterministic property of the job) and are not.
const InfraPrefix = "infra: "

// Limits configures the supervisor. The zero value supervises nothing:
// no deadline, no retries (Supervise then only adds panic containment).
type Limits struct {
	// Timeout is the per-attempt wall-clock deadline (0 = none).
	Timeout time.Duration
	// Grace is how long after a cancel to wait for the executor to
	// unwind before abandoning its goroutine (a rank spinning in pure
	// computation cannot be preempted). Default 2s.
	Grace time.Duration
	// Retries is how many extra attempts an infra-class failure gets.
	Retries int
	// RetryBase is the first backoff delay (default 100ms); RetryMax
	// caps the exponential growth (default 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Sleep is the backoff sleeper (test seam; nil = time.Sleep).
	Sleep func(time.Duration)
	// OnAttempt, when non-nil, observes every attempt (progress
	// accounting); it must be safe for concurrent use.
	OnAttempt func(j Job, attempt int, r *Record)
}

// Supervise wraps exec for campaign.Run: deadline per attempt, bounded
// retry with exponential backoff and deterministic jitter for
// retryable results, panic containment to an infra-class record.
func Supervise(exec ExecFunc, lim Limits) func(Job) *Record {
	if lim.Grace <= 0 {
		lim.Grace = 2 * time.Second
	}
	if lim.RetryBase <= 0 {
		lim.RetryBase = 100 * time.Millisecond
	}
	if lim.RetryMax <= 0 {
		lim.RetryMax = 5 * time.Second
	}
	sleep := lim.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return func(j Job) *Record {
		attempts := lim.Retries + 1
		var r *Record
		for a := 1; a <= attempts; a++ {
			r = runAttempt(exec, j, lim)
			r.Attempts = a
			if lim.OnAttempt != nil {
				lim.OnAttempt(j, a, r)
			}
			if a == attempts || !Retryable(r) {
				break
			}
			sleep(Backoff(j, a, lim.RetryBase, lim.RetryMax))
		}
		return r
	}
}

// Retryable classifies a record: true only for infra-class failures —
// a watchdog kill (timeout) or a harness failure (InfraPrefix error) —
// where a retry can legitimately change the outcome. Verdict-class
// results are pure functions of the job; retrying them is wasted work
// and, worse, would let a flaky harness alter canonical bytes.
func Retryable(r *Record) bool {
	if r == nil {
		return true
	}
	switch r.Verdict {
	case VerdictTimeout:
		return true
	case VerdictError:
		return strings.HasPrefix(r.AppFault, InfraPrefix)
	}
	return false
}

// Backoff computes the post-attempt delay: RetryBase doubled per
// attempt, capped at RetryMax, plus deterministic jitter in [0, 50%)
// derived from the job identity and attempt number — workers retrying
// different jobs spread out, yet a replayed campaign sleeps the exact
// same schedule.
func Backoff(j Job, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("cusan-backoff/v1|%s|%d", j.Identity(), attempt)))
	jitter := binary.BigEndian.Uint64(sum[:8]) % uint64(d/2+1)
	return d + time.Duration(jitter)
}

// runAttempt executes one supervised attempt. On deadline expiry the
// context cancel tears the executor's MPI world down; whatever the
// unwinding executor returns reflects a wall-clock cut and is replaced
// by the deterministic timeout record. An executor that does not
// unwind within the grace window is abandoned (goroutines cannot be
// killed); its eventual return value is dropped into a buffered
// channel and garbage-collected.
func runAttempt(exec ExecFunc, j Job, lim Limits) *Record {
	ctx := context.Background()
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, lim.Timeout,
			fmt.Errorf("job deadline exceeded (timeout=%s)", lim.Timeout))
		defer cancel()
	}
	done := make(chan *Record, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- &Record{
					Verdict:  VerdictError,
					AppFault: fmt.Sprintf("%sexecutor panicked: %v", InfraPrefix, p),
				}
			}
		}()
		done <- exec(ctx, j)
	}()
	select {
	case r := <-done:
		if ctx.Err() != nil {
			return timeoutRecord(lim.Timeout)
		}
		if r == nil {
			return &Record{
				Verdict:  VerdictError,
				AppFault: InfraPrefix + "executor returned no result",
			}
		}
		return r
	case <-ctx.Done():
	}
	grace := time.NewTimer(lim.Grace)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
	}
	return timeoutRecord(lim.Timeout)
}

// timeoutRecord is the deterministic watchdog verdict: it names the
// configured deadline, never the elapsed time.
func timeoutRecord(d time.Duration) *Record {
	return &Record{
		Verdict:  VerdictTimeout,
		AppFault: fmt.Sprintf("timeout: job exceeded the %s deadline", d),
	}
}

// LimitsSalt derives the effective cache salt under a step budget:
// MaxSteps changes verdicts, so results cached under a different
// budget must not leak in — offline cusan-campaign and cusan-serve
// both apply this derivation, which is what keeps their reports
// byte-identical when run with the same flags. The wall-clock timeout
// is deliberately NOT mixed in: timeout records are never cached, and
// every cacheable record is timeout-independent.
func LimitsSalt(salt string, maxSteps int64) string {
	if maxSteps <= 0 {
		return salt
	}
	return fmt.Sprintf("%s|max-steps=%d", salt, maxSteps)
}
