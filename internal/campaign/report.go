// Package campaign is the job-dispatch layer over the checker: it
// enumerates check jobs (suite case x seed x engine x fault plan x
// config), shards them across a bounded worker pool, and aggregates
// the results into a deterministic, versioned JSONL report.
//
// The load-bearing property is determinism: the canonical report is
// byte-identical regardless of worker count, completion order, or
// cache state. That is achieved by (a) aggregating results by job
// enumeration index, never by completion order, (b) requiring each
// job's result to be a pure function of its identity (the MPI abort
// protocol's prefer-completion rule exists for this), and (c) keeping
// wall-clock facts — duration, cache status — out of the canonical
// byte stream (they are volatile fields, emitted only on request).
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// FormatVersion identifies the JSONL record schema. Bump on any change
// to field names, ordering, or semantics.
const FormatVersion = 1

// Verdict classifies a job outcome.
const (
	VerdictPass  = "pass"  // ran, behaved exactly as classified
	VerdictFail  = "fail"  // ran, produced findings / misclassified
	VerdictError = "error" // could not run (infrastructure failure)
	// VerdictTimeout marks a job killed by the wall-clock watchdog. The
	// record's bytes mention only the configured deadline — never the
	// elapsed time — so a job that deterministically hangs (sched-stall)
	// reports byte-identically at any worker count. Timeout records are
	// retryable and never cached: the wall clock is not part of a job's
	// identity.
	VerdictTimeout = "timeout"
	// VerdictBudget marks a job terminated by its logical step budget
	// (sched.Controller.SetStepBudget / mpi.World.SetOpBudget). Unlike a
	// timeout this is a pure function of the job, so budget records are
	// deterministic, cacheable, and not retried.
	VerdictBudget = "budget"
)

// Finding is one deduplicable observation (a misclassification, a
// chaos-attribution violation, a replay-parity divergence). FP is a
// stable fingerprint: the same defect observed by different jobs —
// other seeds, the other engine — maps to the same FP, so cross-job
// dedup is a map key lookup.
type Finding struct {
	FP     string `json:"fp"`
	Kind   string `json:"kind"`
	Case   string `json:"case"`
	Detail string `json:"detail"`
}

// NewFinding builds a Finding with its fingerprint. The fingerprint
// hashes (kind, case, detail) only — never seed, engine, or worker —
// so the identity of a defect is independent of which job saw it.
func NewFinding(kind, caseName, detail string) Finding {
	sum := sha256.Sum256([]byte("cusan-fp/v1|" + kind + "|" + caseName + "|" + detail))
	return Finding{
		FP:     fmt.Sprintf("%x", sum[:8]),
		Kind:   kind,
		Case:   caseName,
		Detail: detail,
	}
}

// Record is one job's result — one JSONL line. Field order here is the
// serialization order. DurationUS and Cached are volatile: they vary
// run to run and are zeroed in canonical output (WriteJSONL with
// volatile=false) so that report bytes depend only on job identities
// and verdicts.
type Record struct {
	V       int    `json:"v"`
	Type    string `json:"type"` // "job"
	Kind    string `json:"kind"` // "suite" | "chaos" | "replay" | "explore"
	Case    string `json:"case"`
	Engine  string `json:"engine"`
	Seed    uint64 `json:"seed,omitempty"`
	Faults  string `json:"faults,omitempty"`
	Config  string `json:"config,omitempty"`
	Key     string `json:"key"`
	Verdict string `json:"verdict"`
	Races   int    `json:"races"`
	Issues  int    `json:"issues"`

	// Injected lists the replay specs of faults the plan actually fired.
	Injected []string `json:"injected,omitempty"`
	// Degraded counts contained checker crashes (partial verdicts).
	Degraded int `json:"degraded,omitempty"`
	// AppFault labels a rank failure: a fault spec, "aborted", or an
	// error string. Empty when all ranks completed.
	AppFault string    `json:"app_fault,omitempty"`
	Findings []Finding `json:"findings,omitempty"`

	// Explore-kind fields (schedule-space exploration; all omitempty so
	// records of other kinds serialize unchanged — additive, no format
	// bump). Races above is the default schedule's race count.
	Explored      int    `json:"explored,omitempty"`       // schedules executed
	Pruned        int    `json:"pruned,omitempty"`         // branches proven redundant
	RacySchedules int    `json:"racy_schedules,omitempty"` // explored schedules that raced
	Schedule      string `json:"schedule,omitempty"`       // minimal racy schedule spec
	// Incomplete marks a budget- or bound-capped exploration: "race-free"
	// then only covers the explored subset, not the whole space.
	Incomplete bool `json:"incomplete,omitempty"`
	// NeedsExploration marks a known-racy case whose default schedule is
	// race-free — only systematic exploration exposes its race.
	NeedsExploration bool `json:"needs_exploration,omitempty"`

	// Static-kind fields (intra-kernel race checking; all omitempty —
	// additive, no format bump). Races above is the dynamic oracle's
	// distinct racing-site count.
	StaticVerdict string `json:"static_verdict,omitempty"` // "race-free" | "race" | "unknown"
	// Intervals is the kernel's barrier-interval count (0 when the
	// segmentation is divergent).
	Intervals int `json:"intervals,omitempty"`
	// Witness is the static race witness, empty unless the verdict is
	// "race".
	Witness string `json:"witness,omitempty"`
	// OracleSkipped counts oracle geometries that failed to execute.
	OracleSkipped int `json:"oracle_skipped,omitempty"`

	// Volatile fields — wall-clock facts, not part of the canonical
	// byte stream. Attempts counts supervision attempts (1 = first try
	// succeeded); which attempt produced the result is a wall-clock
	// fact, so it is volatile like the duration.
	DurationUS int64 `json:"duration_us,omitempty"`
	Cached     bool  `json:"cached,omitempty"`
	Attempts   int   `json:"attempts,omitempty"`
}

// canonical returns a copy with the volatile fields zeroed.
func (r *Record) canonical() Record {
	cp := *r
	cp.DurationUS = 0
	cp.Cached = false
	cp.Attempts = 0
	return cp
}

// Report aggregates a campaign run. Records is in job enumeration
// order — position i is job i's result regardless of which worker
// finished it when. An interrupted run (Options.Interrupt fired) has
// nil records for the jobs that never started; every accessor skips
// them.
type Report struct {
	Records   []*Record
	Workers   int
	Wall      time.Duration
	Executed  int // jobs actually run (cache misses)
	CacheHits int
	// Done counts jobs with results (== len(Records) unless Interrupted).
	Done int
	// Interrupted marks a drained run: dispatch stopped early and the
	// un-started jobs have nil records.
	Interrupted bool
}

// Counts tallies verdicts.
func (rep *Report) Counts() (pass, fail, errs int) {
	for _, r := range rep.Records {
		if r == nil {
			continue
		}
		switch r.Verdict {
		case VerdictPass:
			pass++
		case VerdictFail:
			fail++
		default:
			errs++
		}
	}
	return
}

// JobsPerSecond reports executed-job throughput over the wall time
// (0 when nothing executed or no time elapsed).
func (rep *Report) JobsPerSecond() float64 {
	if s := rep.Wall.Seconds(); s > 0 && rep.Executed > 0 {
		return float64(rep.Executed) / s
	}
	return 0
}

// UniqueFinding is a deduplicated finding plus how many jobs saw it.
type UniqueFinding struct {
	Finding
	Jobs int
}

// UniqueFindings dedups findings across all jobs by fingerprint,
// sorted by fingerprint for stable output.
func (rep *Report) UniqueFindings() []UniqueFinding {
	byFP := map[string]*UniqueFinding{}
	for _, r := range rep.Records {
		if r == nil {
			continue
		}
		for _, f := range r.Findings {
			if u, ok := byFP[f.FP]; ok {
				u.Jobs++
			} else {
				byFP[f.FP] = &UniqueFinding{Finding: f, Jobs: 1}
			}
		}
	}
	out := make([]UniqueFinding, 0, len(byFP))
	for _, u := range byFP {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FP < out[j].FP })
	return out
}

// HeaderLine renders the report header as one newline-terminated JSONL
// line for a report of the given job count. Exported so a streaming
// emitter (internal/serve) can produce the exact bytes WriteJSONL
// would, before any job has finished.
func HeaderLine(jobs int) []byte {
	return []byte(fmt.Sprintf(`{"v":%d,"type":"header","format":"cusan-campaign/v1","jobs":%d}`+"\n",
		FormatVersion, jobs))
}

// JSONL renders the record as one newline-terminated JSONL line. With
// volatile=false the volatile fields (duration, cache status) are
// zeroed first, making the bytes a pure function of job identity and
// verdict.
func (r *Record) JSONL(volatile bool) ([]byte, error) {
	line := *r
	if !volatile {
		line = r.canonical()
	}
	b, err := json.Marshal(&line)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// TrailerLines renders the report tail: one line per unique finding
// (sorted by fingerprint) and the summary line. Together with
// HeaderLine and per-record JSONL lines this reconstitutes WriteJSONL
// output exactly.
func (rep *Report) TrailerLines(volatile bool) ([]byte, error) {
	var b strings.Builder
	uf := rep.UniqueFindings()
	for _, u := range uf {
		fmt.Fprintf(&b,
			`{"v":%d,"type":"finding","fp":%q,"kind":%q,"case":%q,"detail":%q,"jobs":%d}`+"\n",
			FormatVersion, u.FP, u.Kind, u.Case, u.Detail, u.Jobs)
	}
	pass, fail, errs := rep.Counts()
	if volatile {
		fmt.Fprintf(&b,
			`{"v":%d,"type":"summary","jobs":%d,"pass":%d,"fail":%d,"error":%d,"findings":%d,"executed":%d,"cache_hits":%d,"workers":%d,"wall_us":%d}`+"\n",
			FormatVersion, len(rep.Records), pass, fail, errs,
			len(uf), rep.Executed, rep.CacheHits,
			rep.Workers, rep.Wall.Microseconds())
	} else {
		fmt.Fprintf(&b,
			`{"v":%d,"type":"summary","jobs":%d,"pass":%d,"fail":%d,"error":%d,"findings":%d}`+"\n",
			FormatVersion, len(rep.Records), pass, fail, errs, len(uf))
	}
	return []byte(b.String()), nil
}

// WriteJSONL emits the versioned report: a header line, one line per
// job in enumeration order, one line per unique finding, and a summary
// trailer. With volatile=false (canonical mode) the bytes are a pure
// function of job identities and verdicts: durations, cache state,
// worker count, and wall time are omitted. Nil records (an interrupted
// run) are skipped.
func (rep *Report) WriteJSONL(w io.Writer, volatile bool) error {
	if _, err := w.Write(HeaderLine(len(rep.Records))); err != nil {
		return err
	}
	for _, r := range rep.Records {
		if r == nil {
			continue
		}
		line, err := r.JSONL(volatile)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	trailer, err := rep.TrailerLines(volatile)
	if err != nil {
		return err
	}
	_, err = w.Write(trailer)
	return err
}

// Summary renders the human table: verdict counts, unique findings,
// throughput.
func (rep *Report) Summary() string {
	pass, fail, errs := rep.Counts()
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d jobs  pass=%d fail=%d error=%d\n",
		len(rep.Records), pass, fail, errs)
	fmt.Fprintf(&b, "  executed=%d cache-hits=%d workers=%d wall=%s",
		rep.Executed, rep.CacheHits, rep.Workers, rep.Wall.Round(time.Millisecond))
	if jps := rep.JobsPerSecond(); jps > 0 {
		fmt.Fprintf(&b, " (%.0f jobs/s)", jps)
	}
	b.WriteString("\n")
	if uf := rep.UniqueFindings(); len(uf) > 0 {
		fmt.Fprintf(&b, "  %d unique finding(s):\n", len(uf))
		for _, u := range uf {
			fmt.Fprintf(&b, "    [%s] %s %s: %s (%d job(s))\n",
				u.FP, u.Kind, u.Case, u.Detail, u.Jobs)
		}
	}
	return b.String()
}
