package campaign

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job identifies one check to run. The identity fields are the whole
// story: two jobs with equal identities must produce equal results
// (the executors are pure functions of the identity), which is what
// makes result caching and byte-identical aggregation sound.
type Job struct {
	Kind   string // "suite" | "chaos" | "replay"
	Case   string // suite case name
	Engine string // shadow engine name ("batched" | "slow")
	Seed   uint64 // chaos seed (0 for non-chaos kinds)
	Faults string // canonical fault-plan spec ("" = none)
	Config string // app/config qualifier ("" = suite default)
}

// Identity is the canonical string form of the job key.
func (j Job) Identity() string {
	return fmt.Sprintf("cusan-campaign/v1|%s|%s|%s|%d|%s|%s",
		j.Kind, j.Case, j.Engine, j.Seed, j.Faults, j.Config)
}

// Key is the short content hash of the identity, recorded per job so
// reports are self-describing.
func (j Job) Key() string {
	sum := sha256.Sum256([]byte(j.Identity()))
	return fmt.Sprintf("%x", sum[:8])
}

// CacheKey mixes a build salt into the identity hash: a new build
// (new salt) invalidates every cached result.
func (j Job) CacheKey(salt string) string {
	sum := sha256.Sum256([]byte(salt + "\x00" + j.Identity()))
	return fmt.Sprintf("%x", sum[:16])
}

// Progress is a point-in-time snapshot of a running campaign.
type Progress struct {
	Total     int
	Done      int
	Executed  int
	CacheHits int
	Failed    int
	Elapsed   time.Duration
}

// Options configures a campaign run.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Cache, when non-nil, is consulted before executing and updated
	// after. Hits skip execution entirely.
	Cache *Cache
	// Salt is the build salt mixed into cache keys (see BuildSalt).
	Salt string
	// OnProgress, when non-nil, is called after every job completion
	// from worker goroutines; it must be safe for concurrent use.
	OnProgress func(Progress)
	// OnRecord, when non-nil, is called with finished records in job
	// enumeration order — never by completion order — under an internal
	// lock, so calls are serialized and records[0..i] have all been
	// delivered when record i arrives. This is the streaming hook: a
	// consumer that writes each delivered record's canonical JSONL line
	// reproduces WriteJSONL's job-line section byte for byte, live.
	OnRecord func(i int, r *Record)
	// Interrupt, when non-nil and closed, stops the dispatch of jobs
	// that have not started: in-flight jobs run to completion, the rest
	// are left unexecuted (nil records) and the report is marked
	// Interrupted. This is the graceful-drain primitive.
	Interrupt <-chan struct{}
}

// Run shards jobs across the worker pool and aggregates the results
// in enumeration order. exec must be a pure function of the job
// identity and safe for concurrent use; a nil return is recorded as
// an infrastructure error. The returned report's Records[i] is always
// jobs[i]'s result, whatever the completion order was.
func Run(jobs []Job, exec func(Job) *Record, opt Options) *Report {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	start := time.Now()
	records := make([]*Record, len(jobs))
	var done, executed, hits, failed atomic.Int64

	// store publishes a finished record and, when streaming, advances
	// the enumeration-order watermark: record i is delivered only once
	// records[0..i-1] have been. The lock also orders the records[]
	// writes against the watermark reads.
	var emitMu sync.Mutex
	nextEmit := 0
	store := func(i int, r *Record) {
		if opt.OnRecord == nil {
			records[i] = r
			return
		}
		emitMu.Lock()
		records[i] = r
		for nextEmit < len(records) && records[nextEmit] != nil {
			opt.OnRecord(nextEmit, records[nextEmit])
			nextEmit++
		}
		emitMu.Unlock()
	}

	report := func(r *Record) {
		done.Add(1)
		if r.Verdict != VerdictPass {
			failed.Add(1)
		}
		if opt.OnProgress != nil {
			opt.OnProgress(Progress{
				Total:     len(jobs),
				Done:      int(done.Load()),
				Executed:  int(executed.Load()),
				CacheHits: int(hits.Load()),
				Failed:    int(failed.Load()),
				Elapsed:   time.Since(start),
			})
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				var r *Record
				if opt.Cache != nil {
					if cached := opt.Cache.Get(j.CacheKey(opt.Salt)); cached != nil {
						cached.Cached = true
						r = cached
						hits.Add(1)
					}
				}
				if r == nil {
					t0 := time.Now()
					r = exec(j)
					if r == nil {
						r = &Record{
							Verdict:  VerdictError,
							AppFault: "executor returned no result",
						}
					}
					r.DurationUS = time.Since(t0).Microseconds()
					executed.Add(1)
				}
				// Normalize identity fields from the job so the record
				// is trustworthy whatever the executor filled in.
				r.V = FormatVersion
				r.Type = "job"
				r.Kind, r.Case, r.Engine = j.Kind, j.Case, j.Engine
				r.Seed, r.Faults, r.Config = j.Seed, j.Faults, j.Config
				r.Key = j.Key()
				if opt.Cache != nil && !r.Cached && r.Verdict != VerdictTimeout {
					// Timeout verdicts are wall-clock facts, not functions
					// of the job: never cache them, so a resumed or warm run
					// re-executes (and may complete) the job.
					opt.Cache.Put(j.CacheKey(opt.Salt), r)
				}
				store(i, r)
				report(r)
			}
		}()
	}
	interrupted := false
feed:
	for i := range jobs {
		// Check the interrupt with priority: a closed Interrupt and a
		// ready worker are often both ready, and a plain two-case select
		// would keep feeding jobs half the time.
		select {
		case <-opt.Interrupt: // nil channel: never fires
			interrupted = true
			break feed
		default:
		}
		select {
		case idx <- i:
		case <-opt.Interrupt:
			interrupted = true
			break feed
		}
	}
	close(idx)
	wg.Wait()

	return &Report{
		Records:     records,
		Workers:     workers,
		Wall:        time.Since(start),
		Executed:    int(executed.Load()),
		CacheHits:   int(hits.Load()),
		Done:        int(done.Load()),
		Interrupted: interrupted,
	}
}
