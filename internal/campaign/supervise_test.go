package campaign

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func superviseJob() Job {
	return Job{Kind: "suite", Case: "x/y", Engine: "fast"}
}

// TestSuperviseFirstTry: a healthy executor runs once, Attempts = 1,
// and the record passes through untouched otherwise.
func TestSuperviseFirstTry(t *testing.T) {
	var calls atomic.Int64
	exec := Supervise(func(ctx context.Context, j Job) *Record {
		calls.Add(1)
		return &Record{Verdict: VerdictPass}
	}, Limits{Retries: 3})
	r := exec(superviseJob())
	if calls.Load() != 1 || r.Attempts != 1 || r.Verdict != VerdictPass {
		t.Fatalf("calls=%d attempts=%d verdict=%s, want 1/1/pass", calls.Load(), r.Attempts, r.Verdict)
	}
}

// TestSuperviseTimeout: an executor that never returns is killed by
// the watchdog; the record names only the configured deadline (no
// elapsed time — byte-determinism), carries the timeout verdict, and
// retries consume the budget.
func TestSuperviseTimeout(t *testing.T) {
	var calls atomic.Int64
	block := make(chan struct{})
	defer close(block)
	var slept []time.Duration
	exec := Supervise(func(ctx context.Context, j Job) *Record {
		calls.Add(1)
		<-block
		return &Record{Verdict: VerdictPass}
	}, Limits{
		Timeout: 10 * time.Millisecond,
		Grace:   time.Millisecond,
		Retries: 2,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	r := exec(superviseJob())
	if calls.Load() != 3 {
		t.Fatalf("attempted %d times, want 3 (1 + 2 retries)", calls.Load())
	}
	if r.Verdict != VerdictTimeout || r.Attempts != 3 {
		t.Fatalf("verdict=%s attempts=%d, want timeout/3", r.Verdict, r.Attempts)
	}
	if want := "timeout: job exceeded the 10ms deadline"; r.AppFault != want {
		t.Fatalf("AppFault = %q, want %q (deadline only, never elapsed time)", r.AppFault, want)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times between attempts, want 2", len(slept))
	}
}

// TestSupervisePanic: a panicking executor becomes an infra-class
// error record and is retried; a later clean attempt wins.
func TestSupervisePanic(t *testing.T) {
	var calls atomic.Int64
	exec := Supervise(func(ctx context.Context, j Job) *Record {
		if calls.Add(1) < 3 {
			panic("boom")
		}
		return &Record{Verdict: VerdictPass}
	}, Limits{Retries: 3, Sleep: func(time.Duration) {}})
	r := exec(superviseJob())
	if r.Verdict != VerdictPass || r.Attempts != 3 {
		t.Fatalf("verdict=%s attempts=%d, want pass on attempt 3", r.Verdict, r.Attempts)
	}
}

// TestSupervisePanicExhausted: when every attempt panics the final
// record is an infra-prefixed error.
func TestSupervisePanicExhausted(t *testing.T) {
	exec := Supervise(func(ctx context.Context, j Job) *Record {
		panic("always")
	}, Limits{Retries: 1, Sleep: func(time.Duration) {}})
	r := exec(superviseJob())
	if r.Verdict != VerdictError || !strings.HasPrefix(r.AppFault, InfraPrefix) {
		t.Fatalf("record = %s %q, want infra-prefixed error", r.Verdict, r.AppFault)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", r.Attempts)
	}
}

// TestSuperviseVerdictNotRetried: verdict-class outcomes (pass, fail,
// budget, even plain error records) are facts about the job, not the
// infrastructure — no retry.
func TestSuperviseVerdictNotRetried(t *testing.T) {
	for _, verdict := range []string{VerdictPass, VerdictFail, VerdictBudget, VerdictError} {
		var calls atomic.Int64
		exec := Supervise(func(ctx context.Context, j Job) *Record {
			calls.Add(1)
			return &Record{Verdict: verdict, AppFault: "detail"}
		}, Limits{Retries: 5, Sleep: func(time.Duration) {}})
		r := exec(superviseJob())
		if calls.Load() != 1 {
			t.Errorf("verdict %s: %d attempts, want 1", verdict, calls.Load())
		}
		if r.Attempts != 1 {
			t.Errorf("verdict %s: Attempts = %d, want 1", verdict, r.Attempts)
		}
	}
}

// TestRetryable pins the infra-vs-verdict classifier.
func TestRetryable(t *testing.T) {
	cases := []struct {
		r    *Record
		want bool
	}{
		{nil, true},
		{&Record{Verdict: VerdictTimeout}, true},
		{&Record{Verdict: VerdictError, AppFault: InfraPrefix + "cache io"}, true},
		{&Record{Verdict: VerdictError, AppFault: "unknown case"}, false},
		{&Record{Verdict: VerdictPass}, false},
		{&Record{Verdict: VerdictFail}, false},
		{&Record{Verdict: VerdictBudget}, false},
	}
	for i, c := range cases {
		if got := Retryable(c.r); got != c.want {
			t.Errorf("case %d: Retryable = %v, want %v", i, got, c.want)
		}
	}
}

// TestBackoffDeterministic: the backoff schedule is a pure function of
// (job identity, attempt) — same job, same delays, on every worker.
func TestBackoffDeterministic(t *testing.T) {
	j := superviseJob()
	base, max := 100*time.Millisecond, 5*time.Second
	var prev []time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := Backoff(j, attempt, base, max)
		d2 := Backoff(j, attempt, base, max)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 > max+max/2 {
			t.Fatalf("attempt %d: backoff %v outside sane bounds", attempt, d1)
		}
		prev = append(prev, d1)
	}
	other := Job{Kind: "suite", Case: "a/b", Engine: "fast"}
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if Backoff(other, attempt, base, max) != prev[attempt-1] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct jobs produced identical jitter on every attempt (jitter not keyed by identity?)")
	}
}

// TestSuperviseAttemptCallback: OnAttempt sees every attempt with its
// 1-based index and the attempt's record.
func TestSuperviseAttemptCallback(t *testing.T) {
	var calls atomic.Int64
	var seen []int
	exec := Supervise(func(ctx context.Context, j Job) *Record {
		if calls.Add(1) == 1 {
			panic("first")
		}
		return &Record{Verdict: VerdictPass}
	}, Limits{
		Retries: 1,
		Sleep:   func(time.Duration) {},
		OnAttempt: func(j Job, attempt int, r *Record) {
			seen = append(seen, attempt)
		},
	})
	exec(superviseJob())
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnAttempt saw %v, want [1 2]", seen)
	}
}

// TestLimitsSalt: MaxSteps is part of the cache identity, the
// wall-clock timeout is not.
func TestLimitsSalt(t *testing.T) {
	if LimitsSalt("s", 0) != "s" {
		t.Fatalf("zero MaxSteps must leave the salt unchanged, got %q", LimitsSalt("s", 0))
	}
	if LimitsSalt("s", 100) == "s" || LimitsSalt("s", 100) == LimitsSalt("s", 200) {
		t.Fatal("MaxSteps must split the cache identity")
	}
}

// TestTimeoutNeverCached: a timeout record is not persisted, so a warm
// rerun re-executes the job and can complete it.
func TestTimeoutNeverCached(t *testing.T) {
	cache := NewMemCache()
	var calls atomic.Int64
	jobs := []Job{superviseJob()}
	timeoutThenPass := func(j Job) *Record {
		if calls.Add(1) == 1 {
			return &Record{Verdict: VerdictTimeout, AppFault: "timeout: job exceeded the 1ms deadline"}
		}
		return &Record{Verdict: VerdictPass}
	}
	r1 := Run(jobs, timeoutThenPass, Options{Cache: cache, Salt: "s"})
	if r1.Records[0].Verdict != VerdictTimeout {
		t.Fatalf("first run verdict = %s, want timeout", r1.Records[0].Verdict)
	}
	r2 := Run(jobs, timeoutThenPass, Options{Cache: cache, Salt: "s"})
	if r2.Records[0].Verdict != VerdictPass || r2.Records[0].Cached {
		t.Fatalf("second run verdict = %s cached=%v, want a fresh pass (timeouts never cached)",
			r2.Records[0].Verdict, r2.Records[0].Cached)
	}
	r3 := Run(jobs, timeoutThenPass, Options{Cache: cache, Salt: "s"})
	if !r3.Records[0].Cached {
		t.Fatal("pass verdict should be served from cache on the third run")
	}
}
