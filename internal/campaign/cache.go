package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"cusango/internal/core"
)

// Cache is a content-addressed result store: cache key -> serialized
// Record. Keys already encode the build salt (Job.CacheKey), so the
// cache itself is a dumb byte store. Safe for concurrent use.
//
// A memory cache (NewMemCache) lives for one process; a directory
// cache (OpenDir) persists results as <dir>/<key>.json so a re-run of
// an unchanged campaign executes zero jobs.
type Cache struct {
	mu  sync.Mutex
	mem map[string][]byte
	dir string // "" = memory-only
}

// NewMemCache returns an in-process cache.
func NewMemCache() *Cache {
	return &Cache{mem: make(map[string][]byte)}
}

// OpenDir returns a cache backed by dir, creating it if needed. Stale
// temp files — litter from a writer that was SIGKILLed between create
// and rename — are swept; a concurrent live writer that loses its temp
// file merely degrades that Put to a cache miss on the next run.
func OpenDir(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp*")); err == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	return &Cache{mem: make(map[string][]byte), dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns a fresh copy of the cached record for key, or nil on a
// miss (including unreadable or version-mismatched entries).
func (c *Cache) Get(key string) *Record {
	c.mu.Lock()
	data, ok := c.mem[key]
	c.mu.Unlock()
	if !ok && c.dir != "" {
		b, err := os.ReadFile(c.path(key))
		if err != nil {
			return nil
		}
		data, ok = b, true
		c.mu.Lock()
		c.mem[key] = b
		c.mu.Unlock()
	}
	if !ok {
		return nil
	}
	var r Record
	if json.Unmarshal(data, &r) != nil || r.V != FormatVersion {
		return nil
	}
	return &r
}

// Put stores the record under key. The stored copy is never marked
// cached and carries no attempt count — those describe how *this* run
// obtained the result, not the result itself.
func (c *Cache) Put(key string, r *Record) {
	cp := *r
	cp.Cached = false
	cp.Attempts = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort: a failed write degrades to a miss next run. The
		// temp name is unique per writer (two server processes may Put
		// the same key concurrently: each writes its own temp, the
		// renames race, and either way a reader sees one complete entry,
		// never a torn one). Entries are fsynced before the rename so a
		// hard crash (kill -9) cannot leave a renamed-but-empty record.
		f, err := os.CreateTemp(c.dir, key+".tmp*")
		if err != nil {
			return
		}
		tmp := f.Name()
		_, werr := f.Write(data)
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil || os.Rename(tmp, c.path(key)) != nil {
			_ = os.Remove(tmp)
		}
	}
}

// Len reports the number of entries seen by this process.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// BuildSalt derives a salt identifying the current build, so cached
// results die with the binary that produced them (see core.BuildSalt
// for the derivation; the -version flag on every CLI prints the same
// value, making cache-miss-after-rebuild diagnosable).
func BuildSalt() string {
	return core.BuildSalt()
}
