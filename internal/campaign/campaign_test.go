package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJobs builds n synthetic jobs with distinct identities.
func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Kind: "suite", Case: fmt.Sprintf("case-%03d", i),
			Engine: "batched", Seed: uint64(i % 3),
		}
	}
	return jobs
}

// fakeExec is deterministic in the job identity but jitters wall time
// so completion order scrambles under parallelism.
func fakeExec(j Job) *Record {
	time.Sleep(time.Duration(len(j.Case)%5) * time.Millisecond)
	r := &Record{Verdict: VerdictPass, Races: int(j.Seed)}
	if strings.HasSuffix(j.Case, "7") {
		r.Verdict = VerdictFail
		r.Findings = []Finding{NewFinding("misclassification", j.Case, "wrong verdict")}
	}
	return r
}

// TestAggregationOrder: Records[i] is jobs[i]'s result at any worker
// count, and canonical report bytes are identical for j=1 and j=8.
func TestAggregationOrder(t *testing.T) {
	jobs := fakeJobs(40)
	var bufs [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep := Run(jobs, fakeExec, Options{Workers: workers})
		if len(rep.Records) != len(jobs) {
			t.Fatalf("workers=%d: %d records for %d jobs", workers, len(rep.Records), len(jobs))
		}
		for k, r := range rep.Records {
			if r.Case != jobs[k].Case || r.Key != jobs[k].Key() {
				t.Fatalf("workers=%d: record %d is %s, want %s", workers, k, r.Case, jobs[k].Case)
			}
		}
		if err := rep.WriteJSONL(&bufs[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("canonical report bytes differ between 1 and 8 workers")
	}
}

// TestCanonicalExcludesVolatile: duration and cache status appear only
// in volatile output.
func TestCanonicalExcludesVolatile(t *testing.T) {
	jobs := fakeJobs(4)
	cache := NewMemCache()
	Run(jobs, fakeExec, Options{Workers: 2, Cache: cache})
	rep := Run(jobs, fakeExec, Options{Workers: 2, Cache: cache}) // warm: all hits
	if rep.CacheHits != len(jobs) {
		t.Fatalf("warm run cache hits = %d, want %d", rep.CacheHits, len(jobs))
	}
	var canon, vol bytes.Buffer
	if err := rep.WriteJSONL(&canon, false); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSONL(&vol, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(canon.String(), "duration_us") || strings.Contains(canon.String(), "cached") {
		t.Fatal("canonical output leaks volatile fields")
	}
	if !strings.Contains(vol.String(), `"cached":true`) {
		t.Fatal("volatile output missing cache status")
	}
	if !strings.Contains(vol.String(), `"cache_hits":4`) {
		t.Fatal("volatile summary missing cache_hits")
	}
}

// TestCacheHitsSkipExecution: a warm cache executes zero jobs and
// produces the identical canonical report.
func TestCacheHitsSkipExecution(t *testing.T) {
	jobs := fakeJobs(12)
	cache := NewMemCache()
	var execs atomic.Int64
	exec := func(j Job) *Record { execs.Add(1); return fakeExec(j) }

	cold := Run(jobs, exec, Options{Workers: 4, Cache: cache, Salt: "s1"})
	if got := execs.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold run executed %d, want %d", got, len(jobs))
	}
	warm := Run(jobs, exec, Options{Workers: 4, Cache: cache, Salt: "s1"})
	if got := execs.Load(); got != int64(len(jobs)) {
		t.Fatalf("warm run executed %d more jobs", got-int64(len(jobs)))
	}
	if warm.Executed != 0 || warm.CacheHits != len(jobs) {
		t.Fatalf("warm run: executed=%d hits=%d", warm.Executed, warm.CacheHits)
	}
	var a, b bytes.Buffer
	if err := cold.WriteJSONL(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := warm.WriteJSONL(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-cache canonical report differs from cold run")
	}

	// A new salt invalidates everything.
	Run(jobs, exec, Options{Workers: 4, Cache: cache, Salt: "s2"})
	if got := execs.Load(); got != int64(2*len(jobs)) {
		t.Fatalf("salted run executed %d total, want %d", got, 2*len(jobs))
	}
}

// TestDirCachePersists: a directory cache survives across Cache
// instances (simulating separate processes).
func TestDirCachePersists(t *testing.T) {
	dir := t.TempDir()
	jobs := fakeJobs(6)
	c1, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	Run(jobs, fakeExec, Options{Workers: 2, Cache: c1, Salt: "s"})
	c2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	rep := Run(jobs, func(j Job) *Record { execs.Add(1); return fakeExec(j) },
		Options{Workers: 2, Cache: c2, Salt: "s"})
	if execs.Load() != 0 || rep.CacheHits != len(jobs) {
		t.Fatalf("fresh dir cache: executed=%d hits=%d", execs.Load(), rep.CacheHits)
	}
}

// TestFingerprints: stable across construction, independent of which
// job carries the finding, distinct for distinct defects.
func TestFingerprints(t *testing.T) {
	a := NewFinding("chaos-violation", "case-x", "race under fault")
	b := NewFinding("chaos-violation", "case-x", "race under fault")
	c := NewFinding("chaos-violation", "case-x", "other defect")
	if a.FP != b.FP {
		t.Fatalf("identical findings fingerprint differently: %s vs %s", a.FP, b.FP)
	}
	if a.FP == c.FP {
		t.Fatal("distinct findings collide")
	}
	if len(a.FP) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", a.FP)
	}
}

// TestUniqueFindingsDedup: the same fingerprint from many jobs is one
// entry with a job count.
func TestUniqueFindingsDedup(t *testing.T) {
	rep := &Report{Records: []*Record{
		{Findings: []Finding{NewFinding("k", "c", "d")}},
		{Findings: []Finding{NewFinding("k", "c", "d")}},
		{Findings: []Finding{NewFinding("k", "c", "other")}},
	}}
	uf := rep.UniqueFindings()
	if len(uf) != 2 {
		t.Fatalf("%d unique findings, want 2", len(uf))
	}
	total := 0
	for _, u := range uf {
		total += u.Jobs
	}
	if total != 3 {
		t.Fatalf("job counts sum to %d, want 3", total)
	}
}

// TestJSONLStructure: every line parses; header, jobs, summary agree.
func TestJSONLStructure(t *testing.T) {
	jobs := fakeJobs(9)
	rep := Run(jobs, fakeExec, Options{Workers: 3})
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var jobLines, findingLines int
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		if m["v"] != float64(FormatVersion) {
			t.Fatalf("line %d version %v", i, m["v"])
		}
		switch m["type"] {
		case "job":
			jobLines++
		case "finding":
			findingLines++
		}
	}
	if jobLines != len(jobs) {
		t.Fatalf("%d job lines for %d jobs", jobLines, len(jobs))
	}
	var head, tail map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil || head["type"] != "header" {
		t.Fatalf("first line %q is not the header", lines[0])
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil || tail["type"] != "summary" {
		t.Fatalf("last line %q is not the summary", lines[len(lines)-1])
	}
}

// TestProgress: monotone done counter reaching total.
func TestProgress(t *testing.T) {
	jobs := fakeJobs(15)
	var max atomic.Int64
	rep := Run(jobs, fakeExec, Options{Workers: 4, OnProgress: func(p Progress) {
		if int64(p.Done) > max.Load() {
			max.Store(int64(p.Done))
		}
		if p.Total != len(jobs) {
			t.Errorf("progress total %d, want %d", p.Total, len(jobs))
		}
	}})
	if max.Load() != int64(len(jobs)) {
		t.Fatalf("max progress %d, want %d", max.Load(), len(jobs))
	}
	if rep.Executed != len(jobs) {
		t.Fatalf("executed %d, want %d", rep.Executed, len(jobs))
	}
}

// TestSaltChangesCacheKey pins the invalidation mechanism itself.
func TestSaltChangesCacheKey(t *testing.T) {
	j := Job{Kind: "chaos", Case: "c", Engine: "slow", Seed: 3, Faults: "seed=3,rate=0.05"}
	if j.CacheKey("a") == j.CacheKey("b") {
		t.Fatal("salt does not affect cache key")
	}
	if j.Key() == (Job{Kind: "chaos", Case: "c", Engine: "slow", Seed: 4, Faults: "seed=3,rate=0.05"}).Key() {
		t.Fatal("seed does not affect job key")
	}
}

// TestDirCacheCorruption: a corrupted or foreign dir-cache entry must
// degrade to a silent miss — the job re-executes, the canonical report
// is unaffected, and the entry is repaired in place — never a crash or
// a poisoned record.
func TestDirCacheCorruption(t *testing.T) {
	for name, corrupt := range map[string][]byte{
		"empty file":          {},
		"truncated json":      []byte(`{"v":1,"type":"job","verdict":"pa`),
		"garbage":             []byte("\x00\xff\x17not json at all\x01"),
		"wrong version":       []byte(`{"v":999,"type":"job","verdict":"pass"}`),
		"valid but wrong doc": []byte(`[1,2,3]`),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			jobs := fakeJobs(5)
			const salt = "corrupt-salt"

			c, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			Run(jobs, fakeExec, Options{Workers: 2, Cache: c, Salt: salt})

			// Corrupt one entry on disk, then reopen (a fresh process has
			// no memory copy to shadow the damage).
			victim := filepath.Join(dir, jobs[2].CacheKey(salt)+".json")
			if _, err := os.Stat(victim); err != nil {
				t.Fatalf("expected cache entry missing: %v", err)
			}
			if err := os.WriteFile(victim, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			c2, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var execs atomic.Int64
			rep := Run(jobs, func(j Job) *Record { execs.Add(1); return fakeExec(j) },
				Options{Workers: 2, Cache: c2, Salt: salt})
			if execs.Load() != 1 || rep.Executed != 1 || rep.CacheHits != len(jobs)-1 {
				t.Fatalf("corrupt entry: executed=%d hits=%d, want exactly the victim re-executed",
					rep.Executed, rep.CacheHits)
			}

			// The report must be byte-identical to an uncached run: the
			// corrupt entry contributed nothing.
			clean := Run(jobs, fakeExec, Options{Workers: 2})
			var got, want bytes.Buffer
			if err := rep.WriteJSONL(&got, false); err != nil {
				t.Fatal(err)
			}
			if err := clean.WriteJSONL(&want, false); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("report after corruption differs from uncached run:\ngot:\n%s\nwant:\n%s",
					got.String(), want.String())
			}

			// The re-execution repaired the entry: a third process hits it.
			c3, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var execs3 atomic.Int64
			rep3 := Run(jobs, func(j Job) *Record { execs3.Add(1); return fakeExec(j) },
				Options{Workers: 2, Cache: c3, Salt: salt})
			if execs3.Load() != 0 || rep3.CacheHits != len(jobs) {
				t.Fatalf("after repair: executed=%d hits=%d, want all hits", execs3.Load(), rep3.CacheHits)
			}
		})
	}
}
