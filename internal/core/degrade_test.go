package core

import (
	"strings"
	"testing"
)

// TestGuardTripLatch exercises the degradeState unit behaviour: the
// first panic trips the latch with a full diagnostic, and every guarded
// call after the trip is skipped instead of re-entering the broken
// checker.
func TestGuardTripLatch(t *testing.T) {
	ds := &degradeState{rank: 3}
	ran := 0
	ds.guard("tsan", "Read", func() { ran++ })
	if ran != 1 || ds.tripped() {
		t.Fatalf("healthy guard: ran=%d tripped=%v", ran, ds.tripped())
	}
	ds.guard("cuda-hooks", "StreamCreated", func() { panic("invariant violated") })
	d := ds.degradation()
	if d == nil {
		t.Fatal("panic did not trip the latch")
	}
	if d.Rank != 3 || d.Layer != "cuda-hooks" || d.Hook != "StreamCreated" {
		t.Fatalf("diagnostic = %+v", d)
	}
	if !strings.Contains(d.Panic, "invariant violated") || d.Stack == "" {
		t.Fatalf("diagnostic missing panic/stack: %+v", d)
	}
	ds.guard("tsan", "Read", func() { ran++ })
	if ran != 1 {
		t.Fatal("guard ran after trip")
	}
	// A second panic (impossible after the skip, but belt and braces)
	// must not replace the first diagnostic.
	ds.trip("mpi-hooks", "PreSend", "later")
	if got := ds.degradation(); got.Hook != "StreamCreated" {
		t.Fatalf("first diagnostic replaced: %+v", got)
	}
}

// TestDegradeToVanilla drives a real checker crash end to end: creating
// more streams than the TSan shadow encoding has fiber ids for panics
// inside CuSan's StreamCreated hook. The run must complete, classify the
// rank as degraded (flavor Vanilla from the trip point), and carry the
// structured diagnostic — never crash the job.
func TestDegradeToVanilla(t *testing.T) {
	cfg := Config{Flavor: MUSTCuSan, Ranks: 1}
	var s0 *Session
	res, err := Run(cfg, func(s *Session) error {
		s0 = s
		for i := 0; i < 5000; i++ {
			s.Dev.StreamCreate(false)
		}
		// Post-degradation work must still run uninstrumented.
		a := s.HostAllocF64(4)
		s.StoreF64(a, 1.5)
		if s.LoadF64(a) != 1.5 {
			t.Error("post-degradation load broken")
		}
		return s.Comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Ranks[0]
	if rr.Err != nil {
		t.Fatalf("degraded rank returned app error: %v", rr.Err)
	}
	if rr.Degraded == nil {
		t.Fatal("fiber overflow did not degrade the rank")
	}
	if rr.Degraded.Layer != "cuda-hooks" || rr.Degraded.Hook != "StreamCreated" {
		t.Fatalf("degradation = %+v", rr.Degraded)
	}
	if !strings.Contains(rr.Degraded.Panic, "fiber id") {
		t.Fatalf("unexpected panic text: %q", rr.Degraded.Panic)
	}
	if s0.Flavor() != Vanilla {
		t.Fatalf("degraded session flavor = %v, want vanilla", s0.Flavor())
	}
	if s0.Degraded() == nil {
		t.Fatal("Session.Degraded nil after trip")
	}
}

// TestHealthyFlavorUnchanged: without a crash, Flavor reports the
// configured flavor and Degraded stays nil.
func TestHealthyFlavorUnchanged(t *testing.T) {
	res, err := Run(Config{Flavor: MUSTCuSan, Ranks: 1}, func(s *Session) error {
		a := s.HostAllocF64(1)
		s.StoreF64(a, 2.0)
		if s.Flavor() != MUSTCuSan {
			t.Errorf("healthy flavor = %v", s.Flavor())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].Degraded != nil {
		t.Fatalf("healthy run degraded: %+v", res.Ranks[0].Degraded)
	}
}
