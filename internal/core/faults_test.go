package core

import (
	"errors"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/faults"
	"cusango/internal/mpi"
)

// TestInjectedFaultThreading: a pick-based plan reaches the CUDA layer
// through Config.Faults, the failing rank's error carries the replay
// triple, the fault appears in RankResult.Injected, and the peer rank —
// blocked in a collective — unblocks with ErrAborted instead of
// deadlocking.
func TestInjectedFaultThreading(t *testing.T) {
	plan, err := faults.Parse("cuda-malloc@0:r1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Flavor: MUSTCuSan, Ranks: 2, Faults: plan}, func(s *Session) error {
		if _, err := s.CudaMallocF64(16); err != nil {
			return err
		}
		return s.Comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := res.Ranks[1]
	if !errors.Is(r1.Err, cuda.ErrMemoryAllocation) {
		t.Fatalf("rank 1 err = %v, want ErrMemoryAllocation", r1.Err)
	}
	f, ok := faults.Extract(r1.Err)
	if !ok || f.Site != faults.CudaMalloc || f.Occurrence != 0 || f.Rank != 1 {
		t.Fatalf("rank 1 err carries %+v, want cuda-malloc@0:r1", f)
	}
	if len(r1.Injected) != 1 || r1.Injected[0].Spec() != "cuda-malloc@0:r1" {
		t.Fatalf("Injected = %v", r1.Injected)
	}
	r0 := res.Ranks[0]
	if !errors.Is(r0.Err, mpi.ErrAborted) {
		t.Fatalf("rank 0 err = %v, want ErrAborted", r0.Err)
	}
	if len(r0.Injected) != 0 {
		t.Fatalf("rank 0 Injected = %v, want none", r0.Injected)
	}
	// Replay: the same plan fires identically.
	res2, err := Run(Config{Flavor: MUSTCuSan, Ranks: 2, Faults: plan}, func(s *Session) error {
		if _, err := s.CudaMallocF64(16); err != nil {
			return err
		}
		return s.Comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	f2, ok := faults.Extract(res2.Ranks[1].Err)
	if !ok || f2.Spec() != f.Spec() {
		t.Fatalf("replay fault %v != original %v", f2, f)
	}
}
