package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Build identification shared by every CLI's -version flag. The build
// salt printed here is the exact string the campaign result cache
// mixes into its keys (campaign.BuildSalt delegates to BuildSalt), so
// "why did my warm cache miss after a rebuild" is answerable by
// comparing two -version lines.

// BuildSalt derives a salt identifying the current build, so cached
// campaign results die with the binary that produced them. Prefers the
// VCS revision stamped into the build, falls back to the module
// checksum, then to "dev" (always-miss-safe: a dev salt still
// separates cache namespaces between salted runs, it just cannot
// distinguish two dev builds).
func BuildSalt() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			return s.Value
		}
	}
	if info.Main.Sum != "" {
		return info.Main.Sum
	}
	return "dev"
}

// VersionLine renders the one-line build identification every CLI
// prints for -version: tool name, VCS revision (with a +dirty marker
// for modified trees) and commit time when stamped, the Go toolchain,
// and the campaign cache build salt.
func VersionLine(tool string) string {
	revision, vcsTime, dirty := "unknown", "", ""
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					revision = s.Value
				}
			case "vcs.time":
				vcsTime = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	line := fmt.Sprintf("%s revision %s%s", tool, revision, dirty)
	if vcsTime != "" {
		line += " (" + vcsTime + ")"
	}
	return fmt.Sprintf("%s %s build-salt %s", line, runtime.Version(), BuildSalt())
}
