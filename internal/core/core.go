// Package core is the toolchain of the reproduction: it "compiles and
// links" a CUDA-aware MPI application against an instrumentation flavor
// and runs it.
//
// The flavors mirror the paper's evaluation matrix (§V):
//
//	Vanilla    — uninstrumented build
//	TSan       — host memory accesses instrumented, no tool runtimes
//	MUST       — TSan + MUST's MPI interception
//	CuSan      — TSan + CuSan's CUDA interception + TypeART
//	MUSTCuSan  — everything (the full checker)
//
// A Session is one rank's view of the "linked binary": its address
// space, CUDA device, communicator, and — depending on flavor — the
// sanitizer and tool runtimes. The Session's typed allocation helpers
// and load/store accessors are the analog of TypeART's allocation
// instrumentation and TSan's compiler-inserted memory-access callbacks
// in host code.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"cusango/internal/cuda"
	"cusango/internal/cusan"
	"cusango/internal/faults"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/must"
	"cusango/internal/sched"
	"cusango/internal/trace"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// Flavor selects the instrumentation configuration.
type Flavor uint8

// Instrumentation flavors (paper §V).
const (
	// Vanilla is the unmodified application.
	Vanilla Flavor = iota
	// TSan instruments host memory accesses only.
	TSan
	// MUST adds MPI semantics on top of TSan.
	MUST
	// CuSan adds CUDA semantics and TypeART on top of TSan.
	CuSan
	// MUSTCuSan combines MUST and CuSan (the full tool).
	MUSTCuSan
)

// Flavors lists all flavors in evaluation order.
var Flavors = []Flavor{Vanilla, TSan, MUST, CuSan, MUSTCuSan}

func (f Flavor) String() string {
	switch f {
	case Vanilla:
		return "vanilla"
	case TSan:
		return "tsan"
	case MUST:
		return "must"
	case CuSan:
		return "cusan"
	case MUSTCuSan:
		return "must+cusan"
	default:
		return fmt.Sprintf("flavor(%d)", uint8(f))
	}
}

// ParseFlavor resolves a flavor name (case-insensitive).
func ParseFlavor(s string) (Flavor, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "vanilla":
		return Vanilla, nil
	case "tsan":
		return TSan, nil
	case "must":
		return MUST, nil
	case "cusan":
		return CuSan, nil
	case "must+cusan", "mustcusan", "must-cusan", "all":
		return MUSTCuSan, nil
	default:
		return Vanilla, fmt.Errorf("core: unknown flavor %q", s)
	}
}

// HasTSan reports whether the flavor carries a sanitizer.
func (f Flavor) HasTSan() bool { return f != Vanilla }

// HasMUST reports whether the flavor intercepts MPI.
func (f Flavor) HasMUST() bool { return f == MUST || f == MUSTCuSan }

// HasCuSan reports whether the flavor intercepts CUDA.
func (f Flavor) HasCuSan() bool { return f == CuSan || f == MUSTCuSan }

// Config describes one job.
type Config struct {
	Flavor Flavor
	// Ranks is the world size (default 2).
	Ranks int
	// Module holds the application's device code.
	Module *kir.Module
	// Cuda configures the simulated device (worker pool etc).
	Cuda cuda.Config
	// TSanCfg configures the sanitizer.
	TSanCfg tsan.Config
	// CusanOpts configures the CuSan runtime.
	CusanOpts cusan.Options
	// MustOpts configures the MUST runtime. The paper's evaluation
	// configures MUST "to only check for data races of (non-blocking)
	// MPI communication"; set DisableTypeChecks for that configuration.
	MustOpts must.Options
	// Sched, when non-nil, places the job's MPI world under a schedule
	// controller: every nondeterministic completion choice becomes an
	// explicit decision point decided by the controller's chooser, so a
	// run is an exact function of its schedule spec (see internal/sched
	// and internal/explore). Build a fresh controller per run, sized to
	// Ranks. Controlled jobs should use the default eager CUDA mode —
	// async stream executors are goroutines the controller cannot park.
	Sched *sched.Controller
	// Faults, when non-nil, is the deterministic fault-injection plan.
	// Each rank derives its injector from (Faults.Seed, rank), so any
	// injected fault is exactly replayable from its (seed, site,
	// occurrence) triple. A nil plan injects nothing.
	Faults *faults.Plan
	// Trace, when non-nil, is asked for a per-rank trace writer before
	// the session is built; a non-nil writer taps every interception
	// point (CUDA, MPI, host accesses, typed allocations) so the rank's
	// event stream can be replayed offline. Recording is independent of
	// the flavor: the taps wrap whatever tool hooks the flavor installs,
	// including none.
	Trace func(rank int) *trace.Writer
	// Ctx, when non-nil, supervises the run: when it is cancelled the
	// MPI world is torn down (mpi.World.Cancel) so ranks blocked or
	// polling in MPI unblock with an abort error wrapping the context
	// cause. Ranks spinning in pure computation are not preempted — the
	// campaign watchdog abandons those after a grace window.
	Ctx context.Context
	// MaxSteps, when > 0, caps each rank's full MPI operations
	// (mpi.World.SetOpBudget): the uncontrolled-run logical step budget.
	// Controlled runs (Sched != nil) should instead cap the decision log
	// via sched.Controller.SetStepBudget, which bounds the schedule
	// itself.
	MaxSteps int64
}

// Session is one rank's execution context.
type Session struct {
	rank int
	size int

	Mem     *memspace.Memory
	Dev     *cuda.Device
	Comm    *mpi.Comm
	San     *tsan.Sanitizer  // nil under Vanilla
	TypeArt *typeart.Runtime // nil under Vanilla and TSan
	Cusan   *cusan.Runtime   // nil unless flavor has CuSan
	Must    *must.Runtime    // nil unless flavor has MUST

	flavor    Flavor
	loadInfo  *tsan.AccessInfo
	storeInfo *tsan.AccessInfo
	rec       *trace.Recorder  // nil unless Config.Trace supplied a writer
	inj       *faults.Injector // nil unless Config.Faults set
	degrade   *degradeState    // always non-nil; trips on checker panics
}

// Rank returns the session's MPI rank.
func (s *Session) Rank() int { return s.rank }

// Size returns the world size.
func (s *Session) Size() int { return s.size }

// Flavor returns the effective instrumentation flavor. A rank whose
// checker crashed and was contained (see Degradation) reports Vanilla:
// its tool hooks are no-ops from the trip point on.
func (s *Session) Flavor() Flavor {
	if s.degrade.tripped() {
		return Vanilla
	}
	return s.flavor
}

func newSession(cfg Config, rank int, world *mpi.World) (*Session, error) {
	s := &Session{
		rank:    rank,
		size:    world.Size(),
		Mem:     memspace.New(),
		flavor:  cfg.Flavor,
		inj:     cfg.Faults.Injector(rank),
		degrade: &degradeState{rank: rank},
	}
	if cfg.Flavor.HasTSan() {
		s.San = tsan.New(cfg.TSanCfg)
		s.loadInfo = &tsan.AccessInfo{Site: "host code", Object: "load"}
		s.storeInfo = &tsan.AccessInfo{Site: "host code", Object: "store"}
	}
	if cfg.Trace != nil {
		if w := cfg.Trace(rank); w != nil {
			s.rec = trace.NewRecorder(w)
		}
	}
	var cudaHooks cuda.Hooks
	if cfg.Flavor.HasCuSan() {
		s.TypeArt = typeart.NewRuntime(nil)
		s.Cusan = cusan.New(s.San, s.TypeArt, cfg.CusanOpts)
		// Panic containment wraps the tool hooks only; the recorder tap
		// below stays outside so tracing survives a checker crash.
		cudaHooks = guardedCudaHooks{inner: s.Cusan, ds: s.degrade}
	}
	if s.rec != nil {
		cudaHooks = s.rec.CudaHooks(cudaHooks)
	}
	mod := cfg.Module
	if mod == nil {
		mod = kir.NewModule()
	}
	cudaCfg := cfg.Cuda
	cudaCfg.Inject = s.inj
	dev, err := cuda.NewDevice(s.Mem, mod, cudaCfg, cudaHooks)
	if err != nil {
		return nil, fmt.Errorf("core: rank %d device: %w", rank, err)
	}
	s.Dev = dev
	var mpiHooks mpi.Hooks
	if cfg.Flavor.HasMUST() {
		s.Must = must.New(s.San, s.TypeArt, cfg.MustOpts)
		mpiHooks = guardedMPIHooks{inner: s.Must, ds: s.degrade}
	}
	if s.rec != nil {
		mpiHooks = s.rec.MPIHooks(mpiHooks)
	}
	comm, err := world.AttachRank(rank, s.Mem, mpiHooks)
	if err != nil {
		return nil, err
	}
	comm.SetInjector(s.inj)
	s.Comm = comm
	return s, nil
}

// --- instrumented host accessors -----------------------------------------
//
// Application host code dereferences simulated pointers through these;
// under a sanitized flavor each access is reported to TSan first, which
// is what Clang's -fsanitize=thread instrumentation does to host loads
// and stores (relevant for managed memory and MPI buffers, paper Fig. 5
// step 1).

// LoadF64 reads a float64 from host-accessible memory.
func (s *Session) LoadF64(a memspace.Addr) float64 {
	if s.rec != nil {
		s.rec.HostRead(a, 8)
	}
	s.sanRead(a, 8)
	return s.Mem.Float64(a)
}

// StoreF64 writes a float64.
func (s *Session) StoreF64(a memspace.Addr, v float64) {
	if s.rec != nil {
		s.rec.HostWrite(a, 8)
	}
	s.sanWrite(a, 8)
	s.Mem.SetFloat64(a, v)
}

// LoadI64 reads an int64.
func (s *Session) LoadI64(a memspace.Addr) int64 {
	if s.rec != nil {
		s.rec.HostRead(a, 8)
	}
	s.sanRead(a, 8)
	return s.Mem.Int64(a)
}

// StoreI64 writes an int64.
func (s *Session) StoreI64(a memspace.Addr, v int64) {
	if s.rec != nil {
		s.rec.HostWrite(a, 8)
	}
	s.sanWrite(a, 8)
	s.Mem.SetInt64(a, v)
}

// LoadI32 reads an int32.
func (s *Session) LoadI32(a memspace.Addr) int32 {
	if s.rec != nil {
		s.rec.HostRead(a, 4)
	}
	s.sanRead(a, 4)
	return s.Mem.Int32(a)
}

// StoreI32 writes an int32.
func (s *Session) StoreI32(a memspace.Addr, v int32) {
	if s.rec != nil {
		s.rec.HostWrite(a, 4)
	}
	s.sanWrite(a, 4)
	s.Mem.SetInt32(a, v)
}

// ReadRangeHost annotates a bulk host read (memcpy-style host code).
func (s *Session) ReadRangeHost(a memspace.Addr, n int64) {
	if s.rec != nil {
		s.rec.HostReadRange(a, n)
	}
	s.sanReadRange(a, n)
}

// WriteRangeHost annotates a bulk host write.
func (s *Session) WriteRangeHost(a memspace.Addr, n int64) {
	if s.rec != nil {
		s.rec.HostWriteRange(a, n)
	}
	s.sanWriteRange(a, n)
}

// --- typed allocation helpers (TypeART host instrumentation) --------------

func (s *Session) track(a memspace.Addr, id typeart.TypeID, count int64, kind memspace.Kind) {
	if s.rec != nil {
		s.rec.TypedAlloc(a, id, count, kind)
	}
	if s.TypeArt == nil {
		return
	}
	// CUDA allocations were already tracked (untyped) by CuSan's
	// allocation callback; refine them. Host allocations are fresh.
	if _, _, ok := s.TypeArt.Lookup(a); ok {
		_ = s.TypeArt.Retype(a, id, count)
		return
	}
	_ = s.TypeArt.Track(a, id, count, kind)
}

// HostAllocF64 allocates a pageable host float64 array (malloc analog).
func (s *Session) HostAllocF64(count int64) memspace.Addr {
	a := s.Mem.Alloc(count*8, memspace.KindHostPageable)
	s.track(a, typeart.TypeFloat64, count, memspace.KindHostPageable)
	return a
}

// HostAllocI32 allocates a pageable host int32 array.
func (s *Session) HostAllocI32(count int64) memspace.Addr {
	a := s.Mem.Alloc(count*4, memspace.KindHostPageable)
	s.track(a, typeart.TypeInt32, count, memspace.KindHostPageable)
	return a
}

// CudaMallocF64 allocates a device float64 array (cudaMalloc + typed
// view).
func (s *Session) CudaMallocF64(count int64) (memspace.Addr, error) {
	a, err := s.Dev.Malloc(count * 8)
	if err != nil {
		return 0, err
	}
	s.track(a, typeart.TypeFloat64, count, memspace.KindDevice)
	return a, nil
}

// CudaMallocI32 allocates a device int32 array.
func (s *Session) CudaMallocI32(count int64) (memspace.Addr, error) {
	a, err := s.Dev.Malloc(count * 4)
	if err != nil {
		return 0, err
	}
	s.track(a, typeart.TypeInt32, count, memspace.KindDevice)
	return a, nil
}

// PinnedAllocF64 allocates a pinned host float64 array (cudaHostAlloc).
func (s *Session) PinnedAllocF64(count int64) (memspace.Addr, error) {
	a, err := s.Dev.HostAlloc(count * 8)
	if err != nil {
		return 0, err
	}
	s.track(a, typeart.TypeFloat64, count, memspace.KindHostPinned)
	return a, nil
}

// ManagedAllocF64 allocates a managed float64 array (cudaMallocManaged).
func (s *Session) ManagedAllocF64(count int64) (memspace.Addr, error) {
	a, err := s.Dev.MallocManaged(count * 8)
	if err != nil {
		return 0, err
	}
	s.track(a, typeart.TypeFloat64, count, memspace.KindManaged)
	return a, nil
}

// --- results ---------------------------------------------------------------

// RankResult gathers one rank's measurements after the app returned.
type RankResult struct {
	Rank    int
	Err     error
	Races   int64
	Reports []*tsan.Report
	Issues  []*must.Issue

	// Degraded is non-nil when the rank's checker crashed and the crash
	// was contained: the rank finished the run as Vanilla from the trip
	// point on, and this diagnostic says where and why.
	Degraded *Degradation
	// Injected lists the faults the injection plan fired on this rank,
	// in firing order. Each carries the (seed, site, occurrence) triple
	// that replays it.
	Injected []*faults.Fault

	TSanStats   tsan.Stats
	CudaCtrs    cusan.Counters
	MPIStats    mpi.Stats
	MustStats   must.Stats
	AppBytes    int64 // live simulated allocation payload at finalize
	PeakBytes   int64
	ShadowBytes int64
}

// ModeledRSS is the deterministic RSS analog used for the memory
// overhead experiment (Fig. 11): application payload plus tool shadow
// state at MPI_Finalize time.
func (r *RankResult) ModeledRSS() int64 {
	return r.AppBytes + r.ShadowBytes
}

// Result is the whole job's outcome.
type Result struct {
	Flavor Flavor
	Ranks  []RankResult
}

// FirstError returns the first rank error, if any.
func (r *Result) FirstError() error {
	for i := range r.Ranks {
		if err := r.Ranks[i].Err; err != nil {
			return fmt.Errorf("rank %d: %w", r.Ranks[i].Rank, err)
		}
	}
	return nil
}

// TotalRaces sums race reports across ranks.
func (r *Result) TotalRaces() int64 {
	var n int64
	for i := range r.Ranks {
		n += r.Ranks[i].Races
	}
	return n
}

// TotalIssues sums MUST findings across ranks.
func (r *Result) TotalIssues() int64 {
	var n int64
	for i := range r.Ranks {
		n += int64(len(r.Ranks[i].Issues))
	}
	return n
}

// Run builds the instrumented job and executes app on every rank
// concurrently (mpirun analog). The app's Comm is finalized
// automatically after app returns.
func Run(cfg Config, app func(s *Session) error) (*Result, error) {
	ranks := cfg.Ranks
	if ranks <= 0 {
		ranks = 2
	}
	world := mpi.NewWorld(ranks)
	if cfg.Sched != nil {
		world.SetController(cfg.Sched)
	}
	if cfg.MaxSteps > 0 {
		world.SetOpBudget(cfg.MaxSteps)
	}
	if cfg.Ctx != nil {
		// Watchdog: a cancelled context tears the world down so blocked
		// ranks unblock; the monitor exits once every rank returned.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cfg.Ctx.Done():
				world.Cancel(context.Cause(cfg.Ctx))
			case <-stop:
			}
		}()
	}
	sessions := make([]*Session, ranks)
	for i := 0; i < ranks; i++ {
		s, err := newSession(cfg, i, world)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	res := &Result{Flavor: cfg.Flavor, Ranks: make([]RankResult, ranks)}
	var wg sync.WaitGroup
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sessions[i]
			rr := &res.Ranks[i]
			rr.Rank = i
			func() {
				defer func() {
					if p := recover(); p != nil {
						rr.Err = fmt.Errorf("rank %d panicked: %v", i, p)
					}
				}()
				rr.Err = app(s)
			}()
			if rr.Err == nil {
				if f := s.Mem.AccessFault(); f != nil {
					rr.Err = fmt.Errorf("rank %d: %w", i, f)
				}
			}
			if rr.Err != nil {
				// A dead rank can never meet its peers again; abort the
				// job so ranks blocked in MPI unblock with ErrAborted
				// instead of deadlocking (MPI_Abort-on-error semantics).
				world.Abort(i, rr.Err)
			}
			s.Dev.Close() // drains async-mode executors; eager no-op
			s.Comm.Finalize()
			if cfg.Sched != nil {
				// The rank is done for good: quiescence no longer waits on
				// it (other ranks may still need grants to finish).
				cfg.Sched.Finish(i)
			}
			if s.rec != nil {
				if err := s.rec.Flush(); err != nil && rr.Err == nil {
					rr.Err = fmt.Errorf("rank %d trace: %w", i, err)
				}
			}
			rr.MPIStats = s.Comm.Stats()
			rr.AppBytes = s.Mem.LiveBytes()
			rr.PeakBytes = s.Mem.PeakBytes()
			rr.Degraded = s.degrade.degradation()
			rr.Injected = s.inj.Fired()
			if s.San != nil {
				rr.Races = s.San.RaceCount()
				rr.Reports = s.San.Reports()
				rr.TSanStats = s.San.Stats()
				rr.ShadowBytes = s.San.ShadowBytes()
			}
			if s.Cusan != nil {
				rr.CudaCtrs = s.Cusan.Counters()
			}
			if s.Must != nil {
				rr.Issues = s.Must.Issues()
				rr.MustStats = s.Must.Stats()
			}
		}(i)
	}
	wg.Wait()
	return res, nil
}
