package core

import (
	"fmt"
	"runtime/debug"
	"sync"

	"cusango/internal/cuda"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// Graceful degradation (robustness plane).
//
// The tool runtimes — CuSan, MUST, TypeART and the TSan core they feed —
// are the components most likely to hit an internal invariant violation
// on a perturbed run: the application is the paper's subject, the checker
// is infrastructure. A checker crash must never take the application run
// down with it. Every tool hook invocation is therefore routed through a
// per-rank panic-recovery boundary: the first panic trips the rank into
// degraded mode, the session behaves like a Vanilla (uninstrumented)
// build from that point on, and the crash is preserved as a structured
// Degradation diagnostic on the RankResult instead of a process abort.
//
// The trace recorder is deliberately OUTSIDE the boundary: recording
// keeps working after degradation, so the event stream that led up to
// the checker crash can be replayed offline against a fixed checker.

// Degradation describes a contained checker crash. After it is recorded
// the rank's remaining tool hooks become no-ops and Session.Flavor
// reports Vanilla.
type Degradation struct {
	Rank  int
	Layer string // "cuda-hooks", "mpi-hooks" or "tsan"
	Hook  string // hook or accessor name that panicked
	Panic string // the recovered panic value
	Stack string // goroutine stack at recovery time
}

func (d *Degradation) String() string {
	return fmt.Sprintf("rank %d degraded to vanilla: %s/%s panicked: %s",
		d.Rank, d.Layer, d.Hook, d.Panic)
}

// degradeState is the per-rank trip latch. It is shared by every guarded
// hook of one session; hooks may fire from the async executor goroutine,
// so the latch is mutex-protected.
type degradeState struct {
	rank int

	mu sync.Mutex
	d  *Degradation
}

func (ds *degradeState) tripped() bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.d != nil
}

func (ds *degradeState) degradation() *Degradation {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.d
}

func (ds *degradeState) trip(layer, hook string, p any) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.d == nil {
		ds.d = &Degradation{
			Rank:  ds.rank,
			Layer: layer,
			Hook:  hook,
			Panic: fmt.Sprint(p),
			Stack: string(debug.Stack()),
		}
	}
}

// guard runs fn inside the recovery boundary. Once tripped, subsequent
// guarded calls are skipped entirely — the degraded session must not
// keep poking a checker whose invariants are already broken.
func (ds *degradeState) guard(layer, hook string, fn func()) {
	if ds.tripped() {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			ds.trip(layer, hook, p)
		}
	}()
	fn()
}

// --- guarded CUDA hook chain ----------------------------------------------

type guardedCudaHooks struct {
	inner cuda.Hooks
	ds    *degradeState
}

func (g guardedCudaHooks) AllocDone(a memspace.Addr, bytes int64, k memspace.Kind) {
	g.ds.guard("cuda-hooks", "AllocDone", func() { g.inner.AllocDone(a, bytes, k) })
}

func (g guardedCudaHooks) PreFree(a memspace.Addr, k memspace.Kind, syncsHost bool) {
	g.ds.guard("cuda-hooks", "PreFree", func() { g.inner.PreFree(a, k, syncsHost) })
}

func (g guardedCudaHooks) StreamCreated(s *cuda.Stream) {
	g.ds.guard("cuda-hooks", "StreamCreated", func() { g.inner.StreamCreated(s) })
}

func (g guardedCudaHooks) StreamDestroyed(s *cuda.Stream) {
	g.ds.guard("cuda-hooks", "StreamDestroyed", func() { g.inner.StreamDestroyed(s) })
}

func (g guardedCudaHooks) EventCreated(e *cuda.Event) {
	g.ds.guard("cuda-hooks", "EventCreated", func() { g.inner.EventCreated(e) })
}

func (g guardedCudaHooks) EventDestroyed(e *cuda.Event) {
	g.ds.guard("cuda-hooks", "EventDestroyed", func() { g.inner.EventDestroyed(e) })
}

func (g guardedCudaHooks) PreEventRecord(e *cuda.Event, s *cuda.Stream) {
	g.ds.guard("cuda-hooks", "PreEventRecord", func() { g.inner.PreEventRecord(e, s) })
}

func (g guardedCudaHooks) PreEventSynchronize(e *cuda.Event) {
	g.ds.guard("cuda-hooks", "PreEventSynchronize", func() { g.inner.PreEventSynchronize(e) })
}

func (g guardedCudaHooks) PreEventQuery(e *cuda.Event) {
	g.ds.guard("cuda-hooks", "PreEventQuery", func() { g.inner.PreEventQuery(e) })
}

func (g guardedCudaHooks) PreStreamWaitEvent(s *cuda.Stream, e *cuda.Event) {
	g.ds.guard("cuda-hooks", "PreStreamWaitEvent", func() { g.inner.PreStreamWaitEvent(s, e) })
}

func (g guardedCudaHooks) PreStreamSynchronize(s *cuda.Stream) {
	g.ds.guard("cuda-hooks", "PreStreamSynchronize", func() { g.inner.PreStreamSynchronize(s) })
}

func (g guardedCudaHooks) PreStreamQuery(s *cuda.Stream) {
	g.ds.guard("cuda-hooks", "PreStreamQuery", func() { g.inner.PreStreamQuery(s) })
}

func (g guardedCudaHooks) PreDeviceSynchronize() {
	g.ds.guard("cuda-hooks", "PreDeviceSynchronize", func() { g.inner.PreDeviceSynchronize() })
}

func (g guardedCudaHooks) PreKernelLaunch(l *cuda.KernelLaunch) {
	g.ds.guard("cuda-hooks", "PreKernelLaunch", func() { g.inner.PreKernelLaunch(l) })
}

func (g guardedCudaHooks) PreMemcpy(op *cuda.MemOp) {
	g.ds.guard("cuda-hooks", "PreMemcpy", func() { g.inner.PreMemcpy(op) })
}

func (g guardedCudaHooks) PreMemset(op *cuda.MemOp) {
	g.ds.guard("cuda-hooks", "PreMemset", func() { g.inner.PreMemset(op) })
}

// --- guarded MPI hook chain -----------------------------------------------

type guardedMPIHooks struct {
	inner mpi.Hooks
	ds    *degradeState
}

func (g guardedMPIHooks) PreSend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int) {
	g.ds.guard("mpi-hooks", "PreSend", func() { g.inner.PreSend(buf, count, dt, dest, tag) })
}

func (g guardedMPIHooks) PostSend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int) {
	g.ds.guard("mpi-hooks", "PostSend", func() { g.inner.PostSend(buf, count, dt, dest, tag) })
}

func (g guardedMPIHooks) PreRecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int) {
	g.ds.guard("mpi-hooks", "PreRecv", func() { g.inner.PreRecv(buf, count, dt, src, tag) })
}

func (g guardedMPIHooks) PostRecv(buf memspace.Addr, count int, dt mpi.Datatype, st mpi.Status) {
	g.ds.guard("mpi-hooks", "PostRecv", func() { g.inner.PostRecv(buf, count, dt, st) })
}

func (g guardedMPIHooks) PreIsend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int, req *mpi.Request) {
	g.ds.guard("mpi-hooks", "PreIsend", func() { g.inner.PreIsend(buf, count, dt, dest, tag, req) })
}

func (g guardedMPIHooks) PreIrecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int, req *mpi.Request) {
	g.ds.guard("mpi-hooks", "PreIrecv", func() { g.inner.PreIrecv(buf, count, dt, src, tag, req) })
}

func (g guardedMPIHooks) PreWait(req *mpi.Request) {
	g.ds.guard("mpi-hooks", "PreWait", func() { g.inner.PreWait(req) })
}

func (g guardedMPIHooks) PostWait(req *mpi.Request, st mpi.Status) {
	g.ds.guard("mpi-hooks", "PostWait", func() { g.inner.PostWait(req, st) })
}

func (g guardedMPIHooks) PreCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64) {
	g.ds.guard("mpi-hooks", "PreCollective", func() {
		g.inner.PreCollective(name, read, readBytes, write, writeBytes)
	})
}

func (g guardedMPIHooks) PostCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64) {
	g.ds.guard("mpi-hooks", "PostCollective", func() {
		g.inner.PostCollective(name, read, readBytes, write, writeBytes)
	})
}

func (g guardedMPIHooks) PreFinalize() {
	g.ds.guard("mpi-hooks", "PreFinalize", func() { g.inner.PreFinalize() })
}

// --- guarded sanitizer accessors ------------------------------------------
//
// Host loads/stores feed TSan directly (not through a hook interface), so
// the Session accessors use these helpers for the same containment.

func (s *Session) sanRead(a memspace.Addr, size int) {
	if s.San == nil {
		return
	}
	s.degrade.guard("tsan", "Read", func() { s.San.Read(a, size, s.loadInfo) })
}

func (s *Session) sanWrite(a memspace.Addr, size int) {
	if s.San == nil {
		return
	}
	s.degrade.guard("tsan", "Write", func() { s.San.Write(a, size, s.storeInfo) })
}

func (s *Session) sanReadRange(a memspace.Addr, n int64) {
	if s.San == nil {
		return
	}
	s.degrade.guard("tsan", "ReadRange", func() { s.San.ReadRange(a, n, s.loadInfo) })
}

func (s *Session) sanWriteRange(a memspace.Addr, n int64) {
	if s.San == nil {
		return
	}
	s.degrade.guard("tsan", "WriteRange", func() { s.San.WriteRange(a, n, s.storeInfo) })
}

// Degraded returns the rank's degradation diagnostic, or nil while the
// checker is healthy.
func (s *Session) Degraded() *Degradation { return s.degrade.degradation() }
