package core

import (
	"testing"

	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

var mpiF64 = mpi.Float64

func appModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("fill", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("buf"), i, e.ToFloat(i))
		})
	}))
	return m
}

// cudaRacyApp launches a kernel and sends the device buffer without
// synchronizing first (paper Fig. 4 without line 4).
func cudaRacyApp(s *Session) error {
	const n = 32
	buf, err := s.CudaMallocF64(n)
	if err != nil {
		return err
	}
	if s.Rank() == 0 {
		if err := s.Dev.LaunchKernel("fill", kinterp.Dim(1), kinterp.Dim(n),
			[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(n)}, nil); err != nil {
			return err
		}
		// MISSING: s.Dev.DeviceSynchronize()
		return s.Comm.Send(buf, n, mpiF64, 1, 0)
	}
	_, err = s.Comm.Recv(buf, n, mpiF64, 0, 0)
	return err
}

// cudaCorrectApp is the fixed variant.
func cudaCorrectApp(s *Session) error {
	const n = 32
	buf, err := s.CudaMallocF64(n)
	if err != nil {
		return err
	}
	if s.Rank() == 0 {
		if err := s.Dev.LaunchKernel("fill", kinterp.Dim(1), kinterp.Dim(n),
			[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(n)}, nil); err != nil {
			return err
		}
		s.Dev.DeviceSynchronize()
		return s.Comm.Send(buf, n, mpiF64, 1, 0)
	}
	_, err = s.Comm.Recv(buf, n, mpiF64, 0, 0)
	return err
}

// mpiRacyApp writes the buffer inside an Irecv's concurrent region.
func mpiRacyApp(s *Session) error {
	const n = 32
	buf := s.HostAllocF64(n)
	if s.Rank() == 0 {
		req, err := s.Comm.Irecv(buf, n, mpiF64, 1, 0)
		if err != nil {
			return err
		}
		s.StoreF64(buf, 1.0) // race
		_, err = s.Comm.Wait(req)
		return err
	}
	return s.Comm.Send(buf, n, mpiF64, 0, 0)
}

func runApp(t *testing.T, f Flavor, app func(*Session) error) *Result {
	t.Helper()
	res, err := Run(Config{Flavor: f, Ranks: 2, Module: appModule()}, app)
	if err != nil {
		t.Fatalf("Run(%v): %v", f, err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatalf("app under %v: %v", f, err)
	}
	return res
}

// TestDetectionMatrix is the reproduction's headline integration test:
// which flavor catches which class of bug (paper §I: tools that only
// observe a subset find some issues but not all).
func TestDetectionMatrix(t *testing.T) {
	cases := []struct {
		name   string
		app    func(*Session) error
		flavor Flavor
		want   bool
	}{
		{"cuda-race/vanilla", cudaRacyApp, Vanilla, false},
		{"cuda-race/tsan-only", cudaRacyApp, TSan, false}, // CUDA semantics invisible
		{"cuda-race/must-only", cudaRacyApp, MUST, false}, // blocking MPI + no CUDA model
		{"cuda-race/cusan", cudaRacyApp, CuSan, false},    // sees CUDA but not MPI access
		{"cuda-race/must+cusan", cudaRacyApp, MUSTCuSan, true},
		{"cuda-correct/must+cusan", cudaCorrectApp, MUSTCuSan, false},
		{"mpi-race/must", mpiRacyApp, MUST, true},
		{"mpi-race/must+cusan", mpiRacyApp, MUSTCuSan, true},
		{"mpi-race/tsan-only", mpiRacyApp, TSan, false},
		{"mpi-race/vanilla", mpiRacyApp, Vanilla, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runApp(t, tc.flavor, tc.app)
			got := res.TotalRaces() > 0
			if got != tc.want {
				t.Fatalf("races detected = %v, want %v (count %d)",
					got, tc.want, res.TotalRaces())
			}
		})
	}
}

func TestFlavorParsingAndPredicates(t *testing.T) {
	for _, f := range Flavors {
		got, err := ParseFlavor(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: %v %v", f, got, err)
		}
	}
	if _, err := ParseFlavor("bogus"); err == nil {
		t.Error("bogus flavor accepted")
	}
	if Vanilla.HasTSan() || !TSan.HasTSan() {
		t.Error("HasTSan wrong")
	}
	if !MUSTCuSan.HasMUST() || !MUSTCuSan.HasCuSan() || CuSan.HasMUST() || MUST.HasCuSan() {
		t.Error("flavor predicates wrong")
	}
}

func TestSessionWiringPerFlavor(t *testing.T) {
	for _, f := range Flavors {
		res, err := Run(Config{Flavor: f, Ranks: 1, Module: appModule()}, func(s *Session) error {
			if (s.San != nil) != f.HasTSan() {
				t.Errorf("%v: San presence wrong", f)
			}
			if (s.Cusan != nil) != f.HasCuSan() {
				t.Errorf("%v: Cusan presence wrong", f)
			}
			if (s.Must != nil) != f.HasMUST() {
				t.Errorf("%v: Must presence wrong", f)
			}
			if (s.TypeArt != nil) != f.HasCuSan() {
				t.Errorf("%v: TypeArt presence wrong", f)
			}
			return nil
		})
		if err != nil || res.FirstError() != nil {
			t.Fatalf("%v: %v %v", f, err, res.FirstError())
		}
	}
}

func TestInstrumentedAccessors(t *testing.T) {
	res, _ := Run(Config{Flavor: TSan, Ranks: 1}, func(s *Session) error {
		a := s.HostAllocF64(4)
		s.StoreF64(a, 2.5)
		if s.LoadF64(a) != 2.5 {
			t.Error("f64 roundtrip failed")
		}
		b := s.HostAllocI32(4)
		s.StoreI32(b, -9)
		if s.LoadI32(b) != -9 {
			t.Error("i32 roundtrip failed")
		}
		s.StoreI64(a+8, 77)
		if s.LoadI64(a+8) != 77 {
			t.Error("i64 roundtrip failed")
		}
		s.ReadRangeHost(a, 32)
		s.WriteRangeHost(a, 32)
		return nil
	})
	st := res.Ranks[0].TSanStats
	if st.ScalarReads != 3 || st.ScalarWrites != 3 {
		t.Fatalf("scalar access counts: %+v", st)
	}
	if st.ReadRangeCalls != 1 || st.WriteRangeCalls != 1 {
		t.Fatalf("range counts: %+v", st)
	}
}

func TestVanillaAccessorsSkipInstrumentation(t *testing.T) {
	res, _ := Run(Config{Flavor: Vanilla, Ranks: 1}, func(s *Session) error {
		a := s.HostAllocF64(1)
		s.StoreF64(a, 1)
		_ = s.LoadF64(a)
		return nil
	})
	if res.Ranks[0].TSanStats.ScalarReads != 0 {
		t.Fatal("vanilla must not touch a sanitizer")
	}
}

func TestTypedCudaAllocationsRefineTypeART(t *testing.T) {
	res, _ := Run(Config{Flavor: CuSan, Ranks: 1, Module: appModule()}, func(s *Session) error {
		a, err := s.CudaMallocF64(10)
		if err != nil {
			return err
		}
		rec, _, ok := s.TypeArt.Lookup(a)
		if !ok {
			t.Fatal("cuda allocation not tracked")
		}
		if rec.ElemSize != 8 || rec.Count != 10 {
			t.Fatalf("record not refined: %+v", rec)
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestResultAggregation(t *testing.T) {
	res := runApp(t, MUSTCuSan, cudaRacyApp)
	if res.TotalRaces() == 0 {
		t.Fatal("expected races")
	}
	rr := res.Ranks[0]
	if rr.CudaCtrs.KernelCalls != 1 {
		t.Fatalf("kernel counter = %d", rr.CudaCtrs.KernelCalls)
	}
	if rr.MPIStats.Sends != 1 {
		t.Fatalf("mpi sends = %d", rr.MPIStats.Sends)
	}
	if rr.AppBytes == 0 || rr.ShadowBytes == 0 {
		t.Fatalf("memory accounting: app=%d shadow=%d", rr.AppBytes, rr.ShadowBytes)
	}
	if rr.ModeledRSS() != rr.AppBytes+rr.ShadowBytes {
		t.Fatal("ModeledRSS mismatch")
	}
}

func TestAppPanicCaptured(t *testing.T) {
	res, err := Run(Config{Flavor: Vanilla, Ranks: 1}, func(s *Session) error {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestPinnedAndManagedHelpers(t *testing.T) {
	res, _ := Run(Config{Flavor: MUSTCuSan, Ranks: 1, Module: appModule()}, func(s *Session) error {
		p, err := s.PinnedAllocF64(4)
		if err != nil {
			return err
		}
		if memspace.KindOf(p) != memspace.KindHostPinned {
			t.Error("pinned kind wrong")
		}
		m, err := s.ManagedAllocF64(4)
		if err != nil {
			return err
		}
		if memspace.KindOf(m) != memspace.KindManaged {
			t.Error("managed kind wrong")
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}
