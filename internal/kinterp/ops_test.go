package kinterp

import (
	"testing"

	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// TestEveryOperator executes a single-thread kernel exercising every
// arithmetic operator, comparison predicate, conversion, and pointer
// width, and checks exact results — the interpreter's truth table.
func TestEveryOperator(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("truth", []kir.Param{
		{Name: "fo", Type: kir.TPtrF64},
		{Name: "io", Type: kir.TPtrI64},
		{Name: "wo", Type: kir.TPtrI32},
		{Name: "bo", Type: kir.TPtrU8},
	}, func(e *kir.Emitter) {
		slot := 0
		putF := func(v kir.Value) {
			e.StoreIdx(e.Arg("fo"), e.ConstI(int64(slot)), v)
			slot++
		}
		islot := 0
		putI := func(v kir.Value) {
			e.StoreIdx(e.Arg("io"), e.ConstI(int64(islot)), v)
			islot++
		}
		a := e.ConstF(7.5)
		b := e.ConstF(2.5)
		putF(e.Add(a, b))             // 10
		putF(e.Sub(a, b))             // 5
		putF(e.Mul(a, b))             // 18.75
		putF(e.Div(a, b))             // 3
		putF(e.Min(a, b))             // 2.5
		putF(e.Max(a, b))             // 7.5
		putF(e.ToFloat(e.ConstI(-3))) // -3

		x := e.ConstI(13)
		y := e.ConstI(5)
		putI(e.Add(x, y))  // 18
		putI(e.Sub(x, y))  // 8
		putI(e.Mul(x, y))  // 65
		putI(e.Div(x, y))  // 2
		putI(e.Rem(x, y))  // 3
		putI(e.Min(x, y))  // 5
		putI(e.Max(x, y))  // 13
		putI(e.AndI(x, y)) // 5
		putI(e.OrI(x, y))  // 13
		sh := e.Var(kir.TInt)
		e.FB.BinI(sh.Local(), kir.Shl, x.Local(), e.ConstI(2).Local())
		putI(sh) // 52
		sh2 := e.Var(kir.TInt)
		e.FB.BinI(sh2.Local(), kir.Shr, x.Local(), e.ConstI(1).Local())
		putI(sh2)                    // 6
		putI(e.ToInt(e.ConstF(9.9))) // 9 (truncation)

		// comparisons (0/1)
		putI(e.Eq(x, x)) // 1
		putI(e.Ne(x, y)) // 1
		putI(e.Lt(y, x)) // 1
		putI(e.Le(x, x)) // 1
		putI(e.Gt(y, x)) // 0
		putI(e.Ge(y, x)) // 0
		putI(e.Eq(a, b)) // 0 (float cmp)
		putI(e.Lt(b, a)) // 1

		// narrow pointer widths
		e.StoreIdx(e.Arg("wo"), e.ConstI(0), e.ConstI(-77))
		e.StoreIdx(e.Arg("bo"), e.ConstI(0), e.ConstI(200))
		w := e.LoadIdx(e.Arg("wo"), e.ConstI(0))
		bb := e.LoadIdx(e.Arg("bo"), e.ConstI(0))
		putI(w)  // -77 (sign-extended i32)
		putI(bb) // 200 (zero-extended u8)
	}))

	mem := memspace.New()
	fo := mem.Alloc(16*8, memspace.KindDevice)
	io := mem.Alloc(32*8, memspace.KindDevice)
	wo := mem.Alloc(4, memspace.KindDevice)
	bo := mem.Alloc(1, memspace.KindDevice)
	eng := engine(t, m, Config{})
	if err := eng.Launch("truth", Dim(1), Dim(1),
		[]Arg{Ptr(fo), Ptr(io), Ptr(wo), Ptr(bo)}, mem); err != nil {
		t.Fatal(err)
	}

	wantF := []float64{10, 5, 18.75, 3, 2.5, 7.5, -3}
	for i, w := range wantF {
		if got := mem.Float64(fo + memspace.Addr(i*8)); got != w {
			t.Errorf("float slot %d = %v, want %v", i, got, w)
		}
	}
	wantI := []int64{18, 8, 65, 2, 3, 5, 13, 5, 13, 52, 6, 9,
		1, 1, 1, 1, 0, 0, 0, 1, -77, 200}
	for i, w := range wantI {
		if got := mem.Int64(io + memspace.Addr(i*8)); got != w {
			t.Errorf("int slot %d = %v, want %v", i, got, w)
		}
	}
}

func TestDivByZeroAborts(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("crash", []kir.Param{
		{Name: "o", Type: kir.TPtrI64},
	}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("o"), e.ConstI(0), e.Div(e.ConstI(1), e.ConstI(0)))
	}))
	mem := memspace.New()
	o := mem.Alloc(8, memspace.KindDevice)
	eng := engine(t, m, Config{})
	if err := eng.Launch("crash", Dim(1), Dim(1), []Arg{Ptr(o)}, mem); err == nil {
		t.Fatal("integer division by zero must abort the kernel")
	}
	m2 := kir.NewModule()
	m2.Add(kir.KernelFunc("crash2", []kir.Param{
		{Name: "o", Type: kir.TPtrI64},
	}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("o"), e.ConstI(0), e.Rem(e.ConstI(1), e.ConstI(0)))
	}))
	eng2 := engine(t, m2, Config{})
	if err := eng2.Launch("crash2", Dim(1), Dim(1), []Arg{Ptr(o)}, mem); err == nil {
		t.Fatal("integer remainder by zero must abort the kernel")
	}
}

func TestFloatDivByZeroIsInf(t *testing.T) {
	// Float division follows IEEE semantics, as on the GPU.
	m := kir.NewModule()
	m.Add(kir.KernelFunc("inf", []kir.Param{
		{Name: "o", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("o"), e.ConstI(0), e.Div(e.ConstF(1), e.ConstF(0)))
	}))
	mem := memspace.New()
	o := mem.Alloc(8, memspace.KindDevice)
	eng := engine(t, m, Config{})
	if err := eng.Launch("inf", Dim(1), Dim(1), []Arg{Ptr(o)}, mem); err != nil {
		t.Fatal(err)
	}
	if got := mem.Float64(o); got <= 1e308 {
		t.Fatalf("1/0.0 = %v, want +Inf", got)
	}
}
