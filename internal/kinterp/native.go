package kinterp

import (
	"fmt"
	"sync"

	"cusango/internal/memspace"
)

// Native kernel execution.
//
// Clang compiles device code to machine code; this reproduction's
// interpreter stands in for the GPU, but interpretation inflates kernel
// cost by an order of magnitude relative to the tool's shadow-memory
// work, which would invert the paper's vanilla-versus-tool cost ratio.
// A kernel may therefore register a *native* implementation — a Go
// function executing a contiguous range of device threads — which the
// engine uses for execution while the kir.Function remains the input to
// verification and to the kaccess compiler analysis (exactly as the real
// toolchain analyzes IR but runs machine code).
//
// Equivalence between a kernel's IR and native implementations is a
// testable property; the apps' tests compare both modes element-wise.

// ThreadRange executes device threads [lo, hi) of a launch natively.
// Implementations derive per-thread geometry from the linear id exactly
// like the interpreter: gx = lin % (grid.X*block.X), gy = lin / ...
type ThreadRange func(g Geometry, lo, hi int, args []Arg, view *memspace.View) error

// Geometry describes one launch for native kernels.
type Geometry struct {
	Grid, Block Dim3
}

// GlobalWidth returns the launch width in threads.
func (g Geometry) GlobalWidth() int { return g.Grid.X * g.Block.X }

// Thread decomposes a linear thread id into (globalX, globalY).
func (g Geometry) Thread(lin int) (gx, gy int) {
	w := g.GlobalWidth()
	return lin % w, lin / w
}

// RegisterNative installs a native implementation for kernel name. The
// kernel must exist in the module and be a launchable entry.
func (e *Engine) RegisterNative(name string, fn ThreadRange) error {
	f := e.mod.Func(name)
	if f == nil || !f.Kernel {
		return fmt.Errorf("kinterp: RegisterNative: no kernel %q", name)
	}
	if fn == nil {
		return fmt.Errorf("kinterp: RegisterNative(%q): nil implementation", name)
	}
	if e.natives == nil {
		e.natives = make(map[string]ThreadRange)
	}
	e.natives[name] = fn
	return nil
}

// HasNative reports whether the kernel has a native implementation.
func (e *Engine) HasNative(name string) bool {
	_, ok := e.natives[name]
	return ok
}

// VecF64 is a helper for native kernels: a float64 view over simulated
// memory, resolved once per kernel range instead of per access.
type VecF64 struct {
	b []byte
}

// NewVecF64 resolves count float64 elements at addr.
func NewVecF64(view *memspace.View, addr memspace.Addr, count int64) (VecF64, error) {
	b, err := view.Bytes(addr, count*8)
	if err != nil {
		return VecF64{}, err
	}
	return VecF64{b: b}, nil
}

// Len returns the element count.
func (v VecF64) Len() int { return len(v.b) / 8 }

// At loads element i.
func (v VecF64) At(i int64) float64 {
	return lef64(v.b[i*8 : i*8+8])
}

// Set stores element i.
func (v VecF64) Set(i int64, x float64) {
	pef64(v.b[i*8:i*8+8], x)
}

// Add adds x to element i (single-threaded callers only; cross-worker
// accumulation must go through Engine.AtomicAddF64).
func (v VecF64) Add(i int64, x float64) {
	pef64(v.b[i*8:i*8+8], lef64(v.b[i*8:i*8+8])+x)
}

// AtomicAddF64 performs the engine-serialized atomic float add native
// kernels use for reductions (OpAtomicAddF analog).
func (e *Engine) AtomicAddF64(view *memspace.View, addr memspace.Addr, x float64) error {
	b, err := view.Bytes(addr, 8)
	if err != nil {
		return err
	}
	e.atomicMu.Lock()
	pef64(b, lef64(b)+x)
	e.atomicMu.Unlock()
	return nil
}

// globalAtomicMu serializes GlobalAtomicAddF64 across all native-kernel
// workers; per-range accumulation keeps it off the hot path.
var globalAtomicMu sync.Mutex

// GlobalAtomicAddF64 is the reduction primitive for native kernels
// (atomicAdd analog). Native implementations accumulate locally per
// thread range and publish once, so contention is negligible.
func GlobalAtomicAddF64(view *memspace.View, addr memspace.Addr, x float64) error {
	b, err := view.Bytes(addr, 8)
	if err != nil {
		return err
	}
	globalAtomicMu.Lock()
	pef64(b, lef64(b)+x)
	globalAtomicMu.Unlock()
	return nil
}
