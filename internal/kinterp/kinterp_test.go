package kinterp

import (
	"errors"
	"strings"
	"testing"

	"cusango/internal/kir"
	"cusango/internal/memspace"
)

func engine(t *testing.T, m *kir.Module, cfg Config) *Engine {
	t.Helper()
	e, err := New(m, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func copyModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("copy", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.LoadIdx(e.Arg("in"), i))
		})
	}))
	return m
}

func TestCopyKernel(t *testing.T) {
	mem := memspace.New()
	const n = 1000
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	for i := int64(0); i < n; i++ {
		mem.SetFloat64(in+memspace.Addr(i*8), float64(i)*1.5)
	}
	eng := engine(t, copyModule(), Config{})
	err := eng.Launch("copy", Dim(4), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i := int64(0); i < n; i++ {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != float64(i)*1.5 {
			t.Fatalf("out[%d] = %v", i, got)
		}
	}
}

func TestCopyKernelParallel(t *testing.T) {
	mem := memspace.New()
	const n = 100_000
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	for i := int64(0); i < n; i++ {
		mem.SetFloat64(in+memspace.Addr(i*8), float64(i))
	}
	eng := engine(t, copyModule(), Config{Workers: 8, SerialThreshold: 1})
	err := eng.Launch("copy", Dim((n+255)/256), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i := int64(0); i < n; i += 997 {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != float64(i) {
			t.Fatalf("out[%d] = %v", i, got)
		}
	}
}

func Test2DGrid(t *testing.T) {
	// out[y*w+x] = x*1000 + y over a 2D grid.
	m := kir.NewModule()
	m.Add(kir.KernelFunc("grid2d", []kir.Param{
		{Name: "out", Type: kir.TPtrI64},
		{Name: "w", Type: kir.TInt},
		{Name: "h", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		x := e.GlobalIDX()
		y := e.GlobalIDY()
		inX := e.Lt(x, e.Arg("w"))
		inY := e.Lt(y, e.Arg("h"))
		e.If(e.AndI(inX, inY), func() {
			idx := e.Add(e.Mul(y, e.Arg("w")), x)
			e.StoreIdx(e.Arg("out"), idx, e.Add(e.Mul(x, e.ConstI(1000)), y))
		})
	}))
	mem := memspace.New()
	const w, h = 37, 23
	out := mem.Alloc(w*h*8, memspace.KindDevice)
	eng := engine(t, m, Config{})
	err := eng.Launch("grid2d", Dim2(5, 4), Dim2(8, 8), []Arg{Ptr(out), Int(w), Int(h)}, mem)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	for y := int64(0); y < h; y++ {
		for x := int64(0); x < w; x++ {
			if got := mem.Int64(out + memspace.Addr((y*w+x)*8)); got != x*1000+y {
				t.Fatalf("out[%d,%d] = %d", x, y, got)
			}
		}
	}
}

func TestBuiltins(t *testing.T) {
	// Record every builtin for thread (tx=1, bx=2) of block dim 4, grid 3.
	m := kir.NewModule()
	m.Add(kir.KernelFunc("builtins", []kir.Param{
		{Name: "out", Type: kir.TPtrI64},
	}, func(e *kir.Emitter) {
		gid := e.GlobalIDX()
		isTarget := e.Eq(gid, e.ConstI(9)) // bx=2,tx=1 with bdx=4
		e.If(isTarget, func() {
			vals := []kir.Builtin{
				kir.ThreadIdxX, kir.BlockIdxX, kir.BlockDimX, kir.GridDimX,
				kir.ThreadIdxY, kir.BlockIdxY, kir.BlockDimY, kir.GridDimY,
			}
			for i, b := range vals {
				e.StoreIdx(e.Arg("out"), e.ConstI(int64(i)), e.Builtin(b))
			}
		})
	}))
	mem := memspace.New()
	out := mem.Alloc(8*8, memspace.KindDevice)
	eng := engine(t, m, Config{})
	if err := eng.Launch("builtins", Dim(3), Dim(4), []Arg{Ptr(out)}, mem); err != nil {
		t.Fatalf("launch: %v", err)
	}
	want := []int64{1, 2, 4, 3, 0, 0, 1, 1}
	for i, w := range want {
		if got := mem.Int64(out + memspace.Addr(i*8)); got != w {
			t.Errorf("builtin %d = %d, want %d", i, got, w)
		}
	}
}

func TestNestedCallWithReturn(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.DeviceFunc("square", []kir.Param{{Name: "x", Type: kir.TFloat}}, kir.TFloat,
		func(e *kir.Emitter) {
			e.ReturnVal(e.Mul(e.Arg("x"), e.Arg("x")))
		}))
	m.Add(kir.KernelFunc("sq", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			v := e.CallRet("square", kir.TFloat, e.LoadIdx(e.Arg("in"), i))
			e.StoreIdx(e.Arg("out"), i, v)
		})
	}))
	mem := memspace.New()
	in := mem.Alloc(80, memspace.KindDevice)
	out := mem.Alloc(80, memspace.KindDevice)
	for i := int64(0); i < 10; i++ {
		mem.SetFloat64(in+memspace.Addr(i*8), float64(i))
	}
	eng := engine(t, m, Config{})
	if err := eng.Launch("sq", Dim(1), Dim(16), []Arg{Ptr(out), Ptr(in), Int(10)}, mem); err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i := int64(0); i < 10; i++ {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != float64(i*i) {
			t.Fatalf("out[%d] = %v", i, got)
		}
	}
}

func TestAtomicAddReduction(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("sum", []kir.Param{
		{Name: "acc", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.AtomicAddF(e.Arg("acc"), e.LoadIdx(e.Arg("in"), i))
		})
	}))
	mem := memspace.New()
	const n = 10_000
	in := mem.Alloc(n*8, memspace.KindDevice)
	acc := mem.Alloc(8, memspace.KindDevice)
	for i := int64(0); i < n; i++ {
		mem.SetFloat64(in+memspace.Addr(i*8), 1.0)
	}
	eng := engine(t, m, Config{Workers: 8, SerialThreshold: 1})
	if err := eng.Launch("sum", Dim((n+127)/128), Dim(128), []Arg{Ptr(acc), Ptr(in), Int(n)}, mem); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if got := mem.Float64(acc); got != n {
		t.Fatalf("sum = %v, want %d", got, n)
	}
}

func TestLoopKernel(t *testing.T) {
	// Each thread sums its row of a matrix with a For loop.
	m := kir.NewModule()
	m.Add(kir.KernelFunc("rowsum", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "mat", Type: kir.TPtrF64},
		{Name: "w", Type: kir.TInt},
		{Name: "h", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		row := e.GlobalIDX()
		e.If(e.Lt(row, e.Arg("h")), func() {
			acc := e.Var(kir.TFloat)
			e.Assign(acc, e.ConstF(0))
			base := e.Mul(row, e.Arg("w"))
			e.For(e.ConstI(0), e.Arg("w"), e.ConstI(1), func(j kir.Value) {
				e.Assign(acc, e.Add(acc, e.LoadIdx(e.Arg("mat"), e.Add(base, j))))
			})
			e.StoreIdx(e.Arg("out"), row, acc)
		})
	}))
	mem := memspace.New()
	const w, h = 16, 8
	mat := mem.Alloc(w*h*8, memspace.KindDevice)
	out := mem.Alloc(h*8, memspace.KindDevice)
	for i := int64(0); i < w*h; i++ {
		mem.SetFloat64(mat+memspace.Addr(i*8), 2.0)
	}
	eng := engine(t, m, Config{})
	if err := eng.Launch("rowsum", Dim(1), Dim(8), []Arg{Ptr(out), Ptr(mat), Int(w), Int(h)}, mem); err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i := int64(0); i < h; i++ {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != 32.0 {
			t.Fatalf("out[%d] = %v", i, got)
		}
	}
}

func TestOutOfBoundsReported(t *testing.T) {
	mem := memspace.New()
	in := mem.Alloc(8, memspace.KindDevice)
	out := mem.Alloc(8, memspace.KindDevice)
	eng := engine(t, copyModule(), Config{})
	// n=100 but buffers hold one element: device-side OOB.
	err := eng.Launch("copy", Dim(1), Dim(128), []Arg{Ptr(out), Ptr(in), Int(100)}, mem)
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(err.Error(), "copy") {
		t.Fatalf("error lacks kernel name: %v", err)
	}
}

func TestRunawayKernelAborts(t *testing.T) {
	m := kir.NewModule()
	fb := kir.NewFunction("spin", nil, kir.TInvalid)
	fb.Kernel()
	fb.Br(0) // infinite loop
	m.Add(fb.Func())
	eng := engine(t, m, Config{MaxStepsPerThread: 1000})
	err := eng.Launch("spin", Dim(1), Dim(1), nil, memspace.New())
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	// The spin loop has no instructions, only terminators; ensure SOME
	// guard fired (step limit counts instructions, so an empty infinite
	// loop must still abort — guard against hangs).
	if !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestArgCheckErrors(t *testing.T) {
	eng := engine(t, copyModule(), Config{})
	mem := memspace.New()
	d := mem.Alloc(8, memspace.KindDevice)
	if err := eng.Launch("copy", Dim(1), Dim(1), []Arg{Ptr(d)}, mem); err == nil {
		t.Error("expected arity error")
	}
	if err := eng.Launch("copy", Dim(1), Dim(1), []Arg{Ptr(d), Int(1), Int(1)}, mem); err == nil {
		t.Error("expected type error")
	}
	if err := eng.Launch("ghost", Dim(1), Dim(1), nil, mem); err == nil {
		t.Error("expected unknown-kernel error")
	}
}

func TestLaunchDeviceFunctionRejected(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.DeviceFunc("helper", nil, kir.TInvalid, func(e *kir.Emitter) {}))
	eng := engine(t, m, Config{})
	if err := eng.Launch("helper", Dim(1), Dim(1), nil, memspace.New()); err == nil {
		t.Fatal("expected rejection of device-function launch")
	}
}

func TestZeroSizeLaunch(t *testing.T) {
	eng := engine(t, copyModule(), Config{})
	mem := memspace.New()
	d := mem.Alloc(8, memspace.KindDevice)
	if err := eng.Launch("copy", Dim(0), Dim(0), []Arg{Ptr(d), Ptr(d), Int(0)}, mem); err != nil {
		t.Fatalf("zero launch: %v", err)
	}
}

func TestDimHelpers(t *testing.T) {
	if Dim(8).Count() != 8 || Dim2(4, 3).Count() != 12 {
		t.Fatal("Count wrong")
	}
	if (Dim3{X: 0, Y: 0}).Count() != 1 {
		t.Fatal("zero dims normalize to 1")
	}
}

func BenchmarkCopyKernelSerial(b *testing.B) {
	mem := memspace.New()
	const n = 1 << 16
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	eng, _ := New(copyModule(), Config{Workers: 1})
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Launch("copy", Dim(n/256), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyKernelParallel(b *testing.B) {
	mem := memspace.New()
	const n = 1 << 16
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	eng, _ := New(copyModule(), Config{})
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Launch("copy", Dim(n/256), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem); err != nil {
			b.Fatal(err)
		}
	}
}
