// Package kinterp executes kir kernels over a CUDA-style launch grid
// against the simulated address space. It is the "GPU" of this
// reproduction: device threads are interpreted, optionally in parallel
// across a worker pool (the SM analog), while the host goroutine is the
// only party talking to the race detector — device-side work never
// touches TSan state, exactly as DMA and device execution bypass TSan's
// instrumentation in the real system (paper §II-B).
package kinterp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// Dim3 is a CUDA dim3 with the z dimension fixed at 1.
type Dim3 struct {
	X, Y int
}

// Dim returns a 1D dimension.
func Dim(x int) Dim3 { return Dim3{X: x, Y: 1} }

// Dim2 returns a 2D dimension.
func Dim2(x, y int) Dim3 { return Dim3{X: x, Y: y} }

// Count returns the number of threads/blocks the dimension describes.
func (d Dim3) Count() int {
	x, y := d.X, d.Y
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	return x * y
}

func (d Dim3) norm() Dim3 {
	if d.X <= 0 {
		d.X = 1
	}
	if d.Y <= 0 {
		d.Y = 1
	}
	return d
}

// ArgKind discriminates launch argument kinds.
type ArgKind uint8

// Launch argument kinds.
const (
	ArgFloat ArgKind = iota
	ArgInt
	ArgPtr
)

// Arg is one kernel launch argument.
type Arg struct {
	Kind ArgKind
	F    float64
	I    int64
	Ptr  memspace.Addr
}

// F64 constructs a float argument.
func F64(x float64) Arg { return Arg{Kind: ArgFloat, F: x} }

// Int constructs an int argument.
func Int(x int64) Arg { return Arg{Kind: ArgInt, I: x} }

// Ptr constructs a pointer argument.
func Ptr(a memspace.Addr) Arg { return Arg{Kind: ArgPtr, Ptr: a} }

// Config tunes the engine.
type Config struct {
	// Workers is the size of the execution pool; 0 means GOMAXPROCS.
	Workers int
	// SerialThreshold: launches with at most this many threads run on the
	// calling goroutine (avoids pool overhead for tiny kernels).
	SerialThreshold int
	// MaxStepsPerThread bounds interpretation steps per device thread to
	// catch runaway kernels; 0 means the default of 50M.
	MaxStepsPerThread int64
}

// Engine executes kernels of one module, interpreting them or running
// registered native implementations (see native.go).
type Engine struct {
	mod     *kir.Module
	cfg     Config
	natives map[string]ThreadRange
	// atomicMu serializes OpAtomicAddF across workers.
	atomicMu sync.Mutex
}

// DefaultSerialThreshold is the launch size below which kernels run
// inline on the calling goroutine.
const DefaultSerialThreshold = 2048

const defaultMaxSteps = 50_000_000

// New creates an engine for the verified module.
func New(mod *kir.Module, cfg Config) (*Engine, error) {
	if err := kir.Verify(mod); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SerialThreshold <= 0 {
		cfg.SerialThreshold = DefaultSerialThreshold
	}
	if cfg.MaxStepsPerThread <= 0 {
		cfg.MaxStepsPerThread = defaultMaxSteps
	}
	return &Engine{mod: mod, cfg: cfg}, nil
}

// Module returns the engine's module.
func (e *Engine) Module() *kir.Module { return e.mod }

// KernelError wraps an execution failure with kernel context.
type KernelError struct {
	Kernel string
	Thread int
	Err    error
}

func (e *KernelError) Error() string {
	return fmt.Sprintf("kinterp: kernel %q, thread %d: %v", e.Kernel, e.Thread, e.Err)
}

func (e *KernelError) Unwrap() error { return e.Err }

var (
	errMaxSteps   = errors.New("step limit exceeded (runaway kernel?)")
	errNilPtr     = errors.New("null or out-of-bounds pointer dereference")
	errDepth      = errors.New("device call stack too deep")
	errDivByZero  = errors.New("integer division by zero")
	errBadBuiltin = errors.New("unknown builtin")
)

// Launch executes kernel name over grid×block threads. Arguments must
// match the kernel signature (checked). mem must not be mutated
// structurally (alloc/free) during the launch.
func (e *Engine) Launch(name string, grid, block Dim3, args []Arg, mem *memspace.Memory) error {
	return e.LaunchView(name, grid, block, args, mem.NewView())
}

// LaunchView is Launch against a pre-built memory snapshot; the
// asynchronous device executor uses it so views are taken on the host
// goroutine at enqueue time.
func (e *Engine) LaunchView(name string, grid, block Dim3, args []Arg, view *memspace.View) error {
	f := e.mod.Func(name)
	if f == nil {
		return fmt.Errorf("kinterp: unknown kernel %q", name)
	}
	if !f.Kernel {
		return fmt.Errorf("kinterp: %q is a device function, not a kernel", name)
	}
	if err := checkArgs(f, args); err != nil {
		return err
	}
	grid, block = grid.norm(), block.norm()
	total := grid.Count() * block.Count()
	if total == 0 {
		return nil
	}

	if native, ok := e.natives[name]; ok {
		return e.launchNative(name, native, grid, block, total, args, view)
	}

	geom := geometry{grid: grid, block: block}

	if total <= e.cfg.SerialThreshold || e.cfg.Workers == 1 {
		w := newWorker(e, view, geom, f, args)
		return w.runRange(0, total)
	}

	workers := e.cfg.Workers
	if workers > total {
		workers = total
	}
	chunk := (total + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			w := newWorker(e, view.Clone(), geom, f, args)
			errs[wi] = w.runRange(lo, hi)
		}(wi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func checkArgs(f *kir.Function, args []Arg) error {
	if len(args) != len(f.Params) {
		return fmt.Errorf("kinterp: kernel %q: %d args, want %d", f.Name, len(args), len(f.Params))
	}
	for i, a := range args {
		p := f.Params[i]
		switch {
		case p.Type == kir.TFloat && a.Kind != ArgFloat:
			return fmt.Errorf("kinterp: kernel %q arg %d (%s): want float", f.Name, i, p.Name)
		case p.Type == kir.TInt && a.Kind != ArgInt:
			return fmt.Errorf("kinterp: kernel %q arg %d (%s): want int", f.Name, i, p.Name)
		case p.Type.IsPtr() && a.Kind != ArgPtr:
			return fmt.Errorf("kinterp: kernel %q arg %d (%s): want pointer", f.Name, i, p.Name)
		}
	}
	return nil
}

type geometry struct {
	grid, block Dim3
}

// frame is one interpreted activation record: parallel float/int register
// banks (pointers live in the int bank as raw addresses).
type frame struct {
	fregs []float64
	iregs []int64
}

type worker struct {
	eng   *Engine
	view  *memspace.View
	geom  geometry
	entry *kir.Function
	args  []Arg
	// frames are pooled by call depth.
	pool  []*frame
	steps int64
	// lin is the linear id of the thread currently executing; interval
	// counts the barriers it has passed. log, when non-nil (LaunchLogged),
	// receives every memory access.
	lin      int
	interval int32
	log      *AccessLog
}

func newWorker(e *Engine, v *memspace.View, g geometry, f *kir.Function, args []Arg) *worker {
	return &worker{eng: e, view: v, geom: g, entry: f, args: args}
}

func (w *worker) frameAt(depth, size int) *frame {
	for depth >= len(w.pool) {
		w.pool = append(w.pool, &frame{})
	}
	fr := w.pool[depth]
	if cap(fr.fregs) < size {
		fr.fregs = make([]float64, size)
		fr.iregs = make([]int64, size)
	}
	fr.fregs = fr.fregs[:size]
	fr.iregs = fr.iregs[:size]
	return fr
}

// thread geometry for one linear thread id.
type threadCtx struct {
	tx, ty, bx, by int64
	bdx, bdy       int64
	gdx, gdy       int64
}

func (w *worker) ctxFor(lin int) threadCtx {
	gw := w.geom.grid.X * w.geom.block.X // global width in threads
	gx := int64(lin % gw)
	gy := int64(lin / gw)
	bdx, bdy := int64(w.geom.block.X), int64(w.geom.block.Y)
	return threadCtx{
		tx: gx % bdx, bx: gx / bdx,
		ty: gy % bdy, by: gy / bdy,
		bdx: bdx, bdy: bdy,
		gdx: int64(w.geom.grid.X), gdy: int64(w.geom.grid.Y),
	}
}

func (w *worker) runRange(lo, hi int) error {
	maxSteps := w.eng.cfg.MaxStepsPerThread
	for lin := lo; lin < hi; lin++ {
		ctx := w.ctxFor(lin)
		w.steps = 0
		w.lin = lin
		w.interval = 0
		fr := w.frameAt(0, len(w.entry.LocalTypes))
		for i, a := range w.args {
			switch a.Kind {
			case ArgFloat:
				fr.fregs[i] = a.F
			case ArgInt:
				fr.iregs[i] = a.I
			case ArgPtr:
				fr.iregs[i] = int64(a.Ptr)
			}
		}
		if _, _, err := w.exec(w.entry, fr, ctx, 0, maxSteps); err != nil {
			return &KernelError{Kernel: w.entry.Name, Thread: lin, Err: err}
		}
		if w.log != nil {
			w.log.Totals = append(w.log.Totals, w.interval)
		}
	}
	return nil
}

const maxCallDepth = 64

// exec interprets one function activation; returns (retF, retI, err).
func (w *worker) exec(f *kir.Function, fr *frame, ctx threadCtx, depth int, maxSteps int64) (float64, int64, error) {
	if depth > maxCallDepth {
		return 0, 0, errDepth
	}
	bi := 0
	for {
		b := f.Blocks[bi]
		// Count the block transition itself so an empty infinite loop
		// still trips the step limit.
		w.steps++
		if w.steps > maxSteps {
			return 0, 0, errMaxSteps
		}
		for ii := range b.Instrs {
			w.steps++
			if w.steps > maxSteps {
				return 0, 0, errMaxSteps
			}
			in := &b.Instrs[ii]
			switch in.Op {
			case kir.OpConstF:
				fr.fregs[in.Dst] = in.FImm
			case kir.OpConstI:
				fr.iregs[in.Dst] = in.IImm
			case kir.OpMov:
				fr.fregs[in.Dst] = fr.fregs[in.A]
				fr.iregs[in.Dst] = fr.iregs[in.A]
			case kir.OpBinF:
				a, bb := fr.fregs[in.A], fr.fregs[in.B]
				var r float64
				switch in.Bin {
				case kir.Add:
					r = a + bb
				case kir.Sub:
					r = a - bb
				case kir.Mul:
					r = a * bb
				case kir.Div:
					r = a / bb
				case kir.Min:
					r = math.Min(a, bb)
				case kir.Max:
					r = math.Max(a, bb)
				}
				fr.fregs[in.Dst] = r
			case kir.OpBinI:
				a, bb := fr.iregs[in.A], fr.iregs[in.B]
				var r int64
				switch in.Bin {
				case kir.Add:
					r = a + bb
				case kir.Sub:
					r = a - bb
				case kir.Mul:
					r = a * bb
				case kir.Div:
					if bb == 0 {
						return 0, 0, errDivByZero
					}
					r = a / bb
				case kir.Rem:
					if bb == 0 {
						return 0, 0, errDivByZero
					}
					r = a % bb
				case kir.Min:
					r = a
					if bb < a {
						r = bb
					}
				case kir.Max:
					r = a
					if bb > a {
						r = bb
					}
				case kir.And:
					r = a & bb
				case kir.Or:
					r = a | bb
				case kir.Shl:
					r = a << uint(bb&63)
				case kir.Shr:
					r = a >> uint(bb&63)
				}
				fr.iregs[in.Dst] = r
			case kir.OpCmpF:
				fr.iregs[in.Dst] = b2i(cmpF(in.Pred, fr.fregs[in.A], fr.fregs[in.B]))
			case kir.OpCmpI:
				fr.iregs[in.Dst] = b2i(cmpI(in.Pred, fr.iregs[in.A], fr.iregs[in.B]))
			case kir.OpI2F:
				fr.fregs[in.Dst] = float64(fr.iregs[in.A])
			case kir.OpF2I:
				fr.iregs[in.Dst] = int64(fr.fregs[in.A])
			case kir.OpBuiltin:
				v, err := builtinVal(in.Builtin, ctx)
				if err != nil {
					return 0, 0, err
				}
				fr.iregs[in.Dst] = v
			case kir.OpGEP:
				es := f.LocalTypes[in.A].ElemSize()
				fr.iregs[in.Dst] = fr.iregs[in.A] + fr.iregs[in.B]*es
			case kir.OpLoad:
				pt := f.LocalTypes[in.A]
				addr := memspace.Addr(fr.iregs[in.A])
				bs, err := w.view.Bytes(addr, pt.ElemSize())
				if err != nil {
					return 0, 0, fmt.Errorf("%w: load at 0x%x", errNilPtr, uint64(addr))
				}
				if w.log != nil {
					w.record(addr, pt.ElemSize(), AccessRead)
				}
				switch pt {
				case kir.TPtrF64:
					fr.fregs[in.Dst] = math.Float64frombits(binary.LittleEndian.Uint64(bs))
				case kir.TPtrI64:
					fr.iregs[in.Dst] = int64(binary.LittleEndian.Uint64(bs))
				case kir.TPtrI32:
					fr.iregs[in.Dst] = int64(int32(binary.LittleEndian.Uint32(bs)))
				case kir.TPtrU8:
					fr.iregs[in.Dst] = int64(bs[0])
				}
			case kir.OpStore:
				pt := f.LocalTypes[in.A]
				addr := memspace.Addr(fr.iregs[in.A])
				bs, err := w.view.Bytes(addr, pt.ElemSize())
				if err != nil {
					return 0, 0, fmt.Errorf("%w: store at 0x%x", errNilPtr, uint64(addr))
				}
				if w.log != nil {
					w.record(addr, pt.ElemSize(), AccessWrite)
				}
				switch pt {
				case kir.TPtrF64:
					binary.LittleEndian.PutUint64(bs, math.Float64bits(fr.fregs[in.B]))
				case kir.TPtrI64:
					binary.LittleEndian.PutUint64(bs, uint64(fr.iregs[in.B]))
				case kir.TPtrI32:
					binary.LittleEndian.PutUint32(bs, uint32(fr.iregs[in.B]))
				case kir.TPtrU8:
					bs[0] = byte(fr.iregs[in.B])
				}
			case kir.OpAtomicAddF:
				addr := memspace.Addr(fr.iregs[in.A])
				bs, err := w.view.Bytes(addr, 8)
				if err != nil {
					return 0, 0, fmt.Errorf("%w: atomic add at 0x%x", errNilPtr, uint64(addr))
				}
				if w.log != nil {
					w.record(addr, 8, AccessAtomic)
				}
				w.eng.atomicMu.Lock()
				old := math.Float64frombits(binary.LittleEndian.Uint64(bs))
				binary.LittleEndian.PutUint64(bs, math.Float64bits(old+fr.fregs[in.B]))
				w.eng.atomicMu.Unlock()
			case kir.OpSyncthreads:
				// The interpreter runs each thread to completion
				// independently, so the barrier is a pure interval marker:
				// it partitions the thread's accesses into barrier
				// intervals for the race oracle. This is faithful for
				// kernels whose behavior does not depend on cross-thread
				// data flow within a launch (the serial oracle runs
				// threads in a fixed order either way).
				w.interval++
			case kir.OpCall:
				callee := w.eng.mod.Func(in.Callee)
				cfr := w.frameAt(depth+1, len(callee.LocalTypes))
				for ai, a := range in.Args {
					cfr.fregs[ai] = fr.fregs[a]
					cfr.iregs[ai] = fr.iregs[a]
				}
				rf, ri, err := w.exec(callee, cfr, ctx, depth+1, maxSteps)
				if err != nil {
					return 0, 0, err
				}
				if in.Dst >= 0 {
					fr.fregs[in.Dst] = rf
					fr.iregs[in.Dst] = ri
				}
			}
		}
		switch b.Term.Kind {
		case kir.TermBr:
			bi = b.Term.Target
		case kir.TermCondBr:
			if fr.iregs[b.Term.Cond] != 0 {
				bi = b.Term.Target
			} else {
				bi = b.Term.Else
			}
		case kir.TermRet:
			if b.Term.HasVal {
				return fr.fregs[b.Term.Val], fr.iregs[b.Term.Val], nil
			}
			return 0, 0, nil
		}
	}
}

// launchNative runs a registered native kernel, fanning the thread range
// across the worker pool for large launches.
func (e *Engine) launchNative(name string, fn ThreadRange, grid, block Dim3,
	total int, args []Arg, view *memspace.View) error {
	g := Geometry{Grid: grid, Block: block}
	wrap := func(err error) error {
		if err == nil {
			return nil
		}
		return &KernelError{Kernel: name, Err: err}
	}
	if total <= e.cfg.SerialThreshold || e.cfg.Workers == 1 {
		return wrap(fn(g, 0, total, args, view))
	}
	workers := e.cfg.Workers
	if workers > total {
		workers = total
	}
	chunk := (total + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			errs[wi] = fn(g, lo, hi, args, view.Clone())
		}(wi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wrap(err)
		}
	}
	return nil
}

func lef64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func pef64(b []byte, x float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(x))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpF(p kir.Pred, a, b float64) bool {
	switch p {
	case kir.Eq:
		return a == b
	case kir.Ne:
		return a != b
	case kir.Lt:
		return a < b
	case kir.Le:
		return a <= b
	case kir.Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpI(p kir.Pred, a, b int64) bool {
	switch p {
	case kir.Eq:
		return a == b
	case kir.Ne:
		return a != b
	case kir.Lt:
		return a < b
	case kir.Le:
		return a <= b
	case kir.Gt:
		return a > b
	default:
		return a >= b
	}
}

func builtinVal(b kir.Builtin, c threadCtx) (int64, error) {
	switch b {
	case kir.ThreadIdxX:
		return c.tx, nil
	case kir.ThreadIdxY:
		return c.ty, nil
	case kir.BlockIdxX:
		return c.bx, nil
	case kir.BlockIdxY:
		return c.by, nil
	case kir.BlockDimX:
		return c.bdx, nil
	case kir.BlockDimY:
		return c.bdy, nil
	case kir.GridDimX:
		return c.gdx, nil
	case kir.GridDimY:
		return c.gdy, nil
	case kir.GlobalIdX:
		return c.bx*c.bdx + c.tx, nil
	case kir.GlobalIdY:
		return c.by*c.bdy + c.ty, nil
	default:
		return 0, errBadBuiltin
	}
}
