package kinterp

import (
	"reflect"
	"testing"

	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// barrierModule: each thread writes buf[tid], syncs, then reads its
// neighbor buf[(tid+1)%blockDim] — the classic barrier-made-safe pattern.
func barrierModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("shift", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "out", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		tid := e.Builtin(kir.ThreadIdxX)
		gid := e.GlobalIDX()
		e.StoreIdx(e.Arg("buf"), gid, e.ToFloat(tid))
		e.Syncthreads()
		nb := e.Rem(e.Add(tid, e.ConstI(1)), e.Builtin(kir.BlockDimX))
		bdx := e.Builtin(kir.BlockDimX)
		base := e.Mul(e.Builtin(kir.BlockIdxX), bdx)
		e.StoreIdx(e.Arg("out"), gid, e.LoadIdx(e.Arg("buf"), e.Add(base, nb)))
	}))
	return m
}

func TestLaunchLoggedIntervalsAndOrder(t *testing.T) {
	m := barrierModule()
	eng := engine(t, m, Config{})
	mem := memspace.New()
	buf := mem.Alloc(16*8, memspace.KindDevice)
	out := mem.Alloc(16*8, memspace.KindDevice)
	log, err := eng.LaunchLogged("shift", Dim(2), Dim(4), []Arg{Ptr(buf), Ptr(out)}, mem)
	if err != nil {
		t.Fatalf("LaunchLogged: %v", err)
	}
	// 8 threads × 3 accesses (store, load, store).
	if len(log.Events) != 24 {
		t.Fatalf("events = %d, want 24", len(log.Events))
	}
	for i, ev := range log.Events {
		wantThread := int32(i / 3)
		if ev.Thread != wantThread {
			t.Fatalf("event %d thread = %d, want %d (serial order)", i, ev.Thread, wantThread)
		}
		wantBlock := wantThread / 4
		if ev.Block != wantBlock {
			t.Fatalf("event %d block = %d, want %d", i, ev.Block, wantBlock)
		}
		switch i % 3 {
		case 0: // pre-barrier store
			if ev.Interval != 0 || ev.Kind != AccessWrite {
				t.Fatalf("event %d = %+v, want interval 0 write", i, ev)
			}
		case 1: // post-barrier load
			if ev.Interval != 1 || ev.Kind != AccessRead {
				t.Fatalf("event %d = %+v, want interval 1 read", i, ev)
			}
		case 2: // post-barrier store to out
			if ev.Interval != 1 || ev.Kind != AccessWrite {
				t.Fatalf("event %d = %+v, want interval 1 write", i, ev)
			}
		}
	}
	// Serial logging must not change single-thread-visible semantics:
	// every thread wrote its own tid into buf[gid].
	for i := int64(0); i < 8; i++ {
		if got := mem.Float64(buf + memspace.Addr(i*8)); got != float64(i%4) {
			t.Fatalf("buf[%d] = %v, want %d", i, got, i%4)
		}
	}

	// Determinism: a second logged run produces the identical event list.
	mem2 := memspace.New()
	buf2 := mem2.Alloc(16*8, memspace.KindDevice)
	out2 := mem2.Alloc(16*8, memspace.KindDevice)
	log2, err := eng.LaunchLogged("shift", Dim(2), Dim(4), []Arg{Ptr(buf2), Ptr(out2)}, mem2)
	if err != nil {
		t.Fatal(err)
	}
	rebase := func(evs []AccessEvent, b1, o1, b2, o2 memspace.Addr) []AccessEvent {
		out := make([]AccessEvent, len(evs))
		for i, ev := range evs {
			if ev.Addr >= o1 && ev.Addr < o1+16*8 {
				ev.Addr = ev.Addr - o1 + o2
			} else {
				ev.Addr = ev.Addr - b1 + b2
			}
			out[i] = ev
		}
		return out
	}
	if !reflect.DeepEqual(rebase(log.Events, buf, out, buf2, out2), log2.Events) {
		t.Fatal("logged runs differ between identical launches")
	}
}

func TestLaunchLoggedAtomicKind(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("acc", []kir.Param{{Name: "sum", Type: kir.TPtrF64}}, func(e *kir.Emitter) {
		e.AtomicAddF(e.Arg("sum"), e.ConstF(1))
	}))
	eng := engine(t, m, Config{})
	mem := memspace.New()
	sum := mem.Alloc(8, memspace.KindDevice)
	log, err := eng.LaunchLogged("acc", Dim(2), Dim(3), []Arg{Ptr(sum)}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(log.Events))
	}
	for _, ev := range log.Events {
		if ev.Kind != AccessAtomic || ev.Addr != sum || ev.Size != 8 {
			t.Fatalf("bad atomic event %+v", ev)
		}
	}
	if got := mem.Float64(sum); got != 6 {
		t.Fatalf("sum = %v, want 6", got)
	}
}
