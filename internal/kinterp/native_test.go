package kinterp

import (
	"errors"
	"testing"

	"cusango/internal/memspace"
)

// nativeCopy mirrors the IR copy kernel of copyModule.
func nativeCopy(g Geometry, lo, hi int, args []Arg, view *memspace.View) error {
	n := args[2].I
	out, err := NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	in, err := NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	for lin := lo; lin < hi; lin++ {
		gx, _ := g.Thread(lin)
		if int64(gx) < n {
			out.Set(int64(gx), in.At(int64(gx)))
		}
	}
	return nil
}

func TestNativeRegistration(t *testing.T) {
	eng := engine(t, copyModule(), Config{})
	if eng.HasNative("copy") {
		t.Fatal("fresh engine should have no natives")
	}
	if err := eng.RegisterNative("ghost", nativeCopy); err == nil {
		t.Fatal("registering for unknown kernel must fail")
	}
	if err := eng.RegisterNative("copy", nil); err == nil {
		t.Fatal("nil implementation must fail")
	}
	if err := eng.RegisterNative("copy", nativeCopy); err != nil {
		t.Fatal(err)
	}
	if !eng.HasNative("copy") {
		t.Fatal("registration not visible")
	}
}

func TestNativeMatchesInterpretedOutput(t *testing.T) {
	const n = 1000
	runMode := func(native bool) []float64 {
		mem := memspace.New()
		in := mem.Alloc(n*8, memspace.KindDevice)
		out := mem.Alloc(n*8, memspace.KindDevice)
		for i := int64(0); i < n; i++ {
			mem.SetFloat64(in+memspace.Addr(i*8), float64(i)*1.25)
		}
		eng := engine(t, copyModule(), Config{})
		if native {
			if err := eng.RegisterNative("copy", nativeCopy); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Launch("copy", Dim(4), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		for i := int64(0); i < n; i++ {
			got[i] = mem.Float64(out + memspace.Addr(i*8))
		}
		return got
	}
	interp := runMode(false)
	native := runMode(true)
	for i := range interp {
		if interp[i] != native[i] {
			t.Fatalf("element %d: interpreted %v, native %v", i, interp[i], native[i])
		}
	}
}

func TestNativeParallelExecution(t *testing.T) {
	const n = 100_000
	mem := memspace.New()
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	for i := int64(0); i < n; i++ {
		mem.SetFloat64(in+memspace.Addr(i*8), float64(i))
	}
	eng := engine(t, copyModule(), Config{Workers: 4, SerialThreshold: 1})
	if err := eng.RegisterNative("copy", nativeCopy); err != nil {
		t.Fatal(err)
	}
	if err := eng.Launch("copy", Dim((n+255)/256), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i += 9973 {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != float64(i) {
			t.Fatalf("out[%d] = %v", i, got)
		}
	}
}

func TestNativeErrorWrapped(t *testing.T) {
	eng := engine(t, copyModule(), Config{})
	bad := func(g Geometry, lo, hi int, args []Arg, view *memspace.View) error {
		return errors.New("device fault")
	}
	if err := eng.RegisterNative("copy", bad); err != nil {
		t.Fatal(err)
	}
	mem := memspace.New()
	d := mem.Alloc(8, memspace.KindDevice)
	err := eng.Launch("copy", Dim(1), Dim(1), []Arg{Ptr(d), Ptr(d), Int(1)}, mem)
	var ke *KernelError
	if !errors.As(err, &ke) || ke.Kernel != "copy" {
		t.Fatalf("error = %v, want KernelError for copy", err)
	}
}

func TestVecF64Accessors(t *testing.T) {
	mem := memspace.New()
	a := mem.Alloc(32, memspace.KindDevice)
	view := mem.NewView()
	v, err := NewVecF64(view, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Fatalf("len = %d", v.Len())
	}
	v.Set(2, 6.5)
	if v.At(2) != 6.5 || mem.Float64(a+16) != 6.5 {
		t.Fatal("Set/At not aliasing memory")
	}
	v.Add(2, 1.5)
	if v.At(2) != 8.0 {
		t.Fatal("Add wrong")
	}
	if _, err := NewVecF64(view, a, 5); err == nil {
		t.Fatal("oversized view must fail")
	}
}

func TestGlobalAtomicAdd(t *testing.T) {
	mem := memspace.New()
	a := mem.Alloc(8, memspace.KindDevice)
	view := mem.NewView()
	for i := 0; i < 10; i++ {
		if err := GlobalAtomicAddF64(view, a, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := mem.Float64(a); got != 25 {
		t.Fatalf("sum = %v", got)
	}
	if err := GlobalAtomicAddF64(view, memspace.Addr(1), 1); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestGeometryThread(t *testing.T) {
	g := Geometry{Grid: Dim2(4, 3), Block: Dim2(8, 2)}
	if g.GlobalWidth() != 32 {
		t.Fatalf("width = %d", g.GlobalWidth())
	}
	gx, gy := g.Thread(0)
	if gx != 0 || gy != 0 {
		t.Fatal("thread 0 wrong")
	}
	gx, gy = g.Thread(33)
	if gx != 1 || gy != 1 {
		t.Fatalf("thread 33 = (%d,%d)", gx, gy)
	}
}

func BenchmarkNativeCopy(b *testing.B) {
	const n = 1 << 16
	mem := memspace.New()
	in := mem.Alloc(n*8, memspace.KindDevice)
	out := mem.Alloc(n*8, memspace.KindDevice)
	eng, _ := New(copyModule(), Config{Workers: 1})
	if err := eng.RegisterNative("copy", nativeCopy); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Launch("copy", Dim(n/256), Dim(256), []Arg{Ptr(out), Ptr(in), Int(n)}, mem); err != nil {
			b.Fatal(err)
		}
	}
}
