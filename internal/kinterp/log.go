package kinterp

import (
	"fmt"

	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// AccessKind classifies one logged device memory access.
type AccessKind uint8

// Access kinds. AccessAtomic is an atomic read-modify-write: two atomics
// to the same address never race with each other, but an atomic against a
// plain access does.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessAtomic
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "atomic"
	}
}

// AccessEvent is one per-thread memory access recorded by LaunchLogged:
// which thread (linear id) of which block touched which address, in which
// barrier interval (the number of syncthreads the thread had executed),
// and how. This is the raw material of the dynamic race oracle that
// audits the static checker (internal/kstatic).
type AccessEvent struct {
	// Thread is the linear thread id over the whole launch.
	Thread int32
	// Block is the linear block id (by*gridDim.x + bx).
	Block int32
	// Interval is the count of barriers the thread passed before the
	// access; same-block accesses in different intervals are ordered.
	Interval int32
	// Addr is the absolute byte address.
	Addr memspace.Addr
	// Size is the access width in bytes.
	Size int8
	// Kind is read/write/atomic.
	Kind AccessKind
}

// AccessLog collects the events of one logged launch in deterministic
// order: threads execute serially in ascending linear id, and each
// thread's events appear in program order.
type AccessLog struct {
	Events []AccessEvent
	// Totals[lin] is the number of barriers thread lin executed in total.
	// The oracle's ordering rule needs it: an interval-i access of one
	// thread happens before an interval-j access of a same-block thread
	// (i < j) only if the first thread went on to execute barrier i+1.
	Totals []int32
}

// LaunchLogged executes the kernel like Launch but serially (one thread
// at a time, ascending linear id) while recording every load, store and
// atomic into the returned log. Serial execution makes the log — and any
// data the kernel computes — a pure function of the module, geometry and
// arguments, which is what the differential oracle needs. Native kernel
// registrations are ignored here: logging requires interpretation.
func (e *Engine) LaunchLogged(name string, grid, block Dim3, args []Arg, mem *memspace.Memory) (*AccessLog, error) {
	f := e.mod.Func(name)
	if f == nil {
		return nil, fmt.Errorf("kinterp: unknown kernel %q", name)
	}
	if !f.Kernel {
		return nil, fmt.Errorf("kinterp: %q is a device function, not a kernel", name)
	}
	if err := checkArgs(f, args); err != nil {
		return nil, err
	}
	grid, block = grid.norm(), block.norm()
	total := grid.Count() * block.Count()
	log := &AccessLog{}
	if total == 0 {
		return log, nil
	}
	w := newWorker(e, mem.NewView(), geometry{grid: grid, block: block}, f, args)
	w.log = log
	if err := w.runRange(0, total); err != nil {
		return log, err
	}
	return log, nil
}

// record appends one access event for the currently executing thread.
func (w *worker) record(addr memspace.Addr, size int64, kind AccessKind) {
	ctx := w.ctxFor(w.lin)
	blk := ctx.by*int64(w.geom.grid.X) + ctx.bx
	w.log.Events = append(w.log.Events, AccessEvent{
		Thread:   int32(w.lin),
		Block:    int32(blk),
		Interval: w.interval,
		Addr:     addr,
		Size:     int8(size),
		Kind:     kind,
	})
}

// CountBarriers returns the number of syncthreads instructions that
// appear textually in the function (not the dynamic count).
func CountBarriers(f *kir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == kir.OpSyncthreads {
				n++
			}
		}
	}
	return n
}
