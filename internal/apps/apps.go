// Package apps is the mini-app registry: one place that knows how to
// build each application's device module and run it on a session, so
// the CLIs (cusan-run, cusan-bench, cusan-trace) share a single
// -app switch instead of duplicating per-app wiring.
package apps

import (
	"fmt"
	"sort"

	"cusango/internal/apps/halo2d"
	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/core"
	"cusango/internal/kir"
)

// Options is the cross-app configuration surface. Zero values mean
// "the app's default".
type Options struct {
	NX, NY int
	Iters  int
	// InjectRace enables the app's primary injected bug (the missing
	// CUDA-to-MPI synchronization, or halo2d's missing pack sync).
	InjectRace bool
	// SkipWait enables tealeaf's MPI-to-CUDA bug (use-before-Waitall);
	// ignored by the other apps.
	SkipWait bool
}

func override(dst *int, v int) {
	if v > 0 {
		*dst = v
	}
}

// App describes one registered mini-app.
type App struct {
	Name string
	// Module builds the app's device code.
	Module func() *kir.Module
	// Run executes the app on one rank and returns a one-line summary
	// (printed by rank 0).
	Run func(s *core.Session, opt Options) (string, error)
}

var registry = map[string]App{
	"jacobi": {
		Name:   "jacobi",
		Module: jacobi.Module,
		Run: func(s *core.Session, opt Options) (string, error) {
			cfg := jacobi.DefaultConfig()
			override(&cfg.NX, opt.NX)
			override(&cfg.NY, opt.NY)
			override(&cfg.Iters, opt.Iters)
			cfg.SkipSync = opt.InjectRace
			r, err := jacobi.Run(s, cfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("jacobi: %d iters, residual %.3e -> %.3e",
				r.Iters, r.FirstNorm, r.LastNorm), nil
		},
	},
	"tealeaf": {
		Name:   "tealeaf",
		Module: tealeaf.Module,
		Run: func(s *core.Session, opt Options) (string, error) {
			cfg := tealeaf.DefaultConfig()
			override(&cfg.NX, opt.NX)
			override(&cfg.NY, opt.NY)
			override(&cfg.Iters, opt.Iters)
			cfg.SkipSync = opt.InjectRace
			cfg.SkipWait = opt.SkipWait
			r, err := tealeaf.Run(s, cfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("tealeaf: %d CG iters, ||r||^2 %.3e -> %.3e",
				r.Iters, r.FirstRR, r.LastRR), nil
		},
	},
	"halo2d": {
		Name:   "halo2d",
		Module: halo2d.AppModule,
		Run: func(s *core.Session, opt Options) (string, error) {
			cfg := halo2d.DefaultConfig()
			override(&cfg.NX, opt.NX)
			override(&cfg.NY, opt.NY)
			override(&cfg.Iters, opt.Iters)
			cfg.SkipPackSync = opt.InjectRace
			r, err := halo2d.Run(s, cfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("halo2d: %d iters, %d exchanges, checksum %.6e",
				r.Iters, r.Exchanges, r.Checksum), nil
		},
	},
}

// Get resolves an app by name.
func Get(name string) (App, error) {
	a, ok := registry[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	return a, nil
}

// Names lists registered apps, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
