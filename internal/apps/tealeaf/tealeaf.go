// Package tealeaf is the reproduction of the paper's second mini-app:
// TeaLeaf [39], a heat-conduction solver that advances an implicit
// diffusion step with a conjugate-gradient (CG) iteration and exchanges
// halos with *non-blocking* MPI on device pointers (paper §V, "TeaLeaf
// uses non-blocking calls").
//
// The linear system is (I - k·Δ)u = b on a row-decomposed 2D grid with
// Dirichlet boundaries; one CG iteration issues ~7 kernels on the
// *default stream only* (Table I: Stream = 1 for TeaLeaf), two
// synchronous D2H copies of the dot products, and one non-blocking halo
// exchange (MPI_Irecv/Isend/Waitall) of the search direction p.
//
// Two injectable bugs mirror the paper's §III-D cases:
//
//	SkipWait — the matvec kernel launches before MPI_Waitall: a
//	           non-blocking-MPI-to-CUDA race (case ii);
//	SkipSync — the halo send starts without synchronizing the device:
//	           a CUDA-to-MPI race (case i).
package tealeaf

import (
	"fmt"
	"math"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// Config parameterizes a run.
type Config struct {
	// NX, NY are the global grid size (NY split across ranks).
	NX, NY int
	// Iters is the fixed CG iteration count.
	Iters int
	// K is the diffusion coefficient (conditioning knob).
	K float64
	// SkipWait launches the matvec before completing the halo receives.
	SkipWait bool
	// SkipSync starts the halo sends without device synchronization.
	SkipSync bool
	// Interpreted forces IR interpretation of the kernels instead of the
	// registered native implementations.
	Interpreted bool
	// BlockX is the kernel block width (default 128).
	BlockX int
}

// DefaultConfig returns the benchmark default (a smaller model than
// Jacobi's, as in the paper: "Tealeaf's model ... is a smaller domain").
func DefaultConfig() Config {
	return Config{NX: 96, NY: 96, Iters: 50, K: 0.1}
}

// Result reports a rank's outcome.
type Result struct {
	Rank    int
	Iters   int
	FirstRR float64
	LastRR  float64
}

// interiorGuard emits the bounds check shared by every kernel: ix in
// [1, nx-2], iy in [1, rows-2].
func interiorGuard(e *kir.Emitter, body func(idx kir.Value)) {
	ix := e.GlobalIDX()
	iy := e.GlobalIDY()
	one := e.ConstI(1)
	nx := e.Arg("nx")
	inX := e.AndI(e.Ge(ix, one), e.Le(ix, e.Sub(nx, e.ConstI(2))))
	inY := e.AndI(e.Ge(iy, one), e.Le(iy, e.Sub(e.Arg("rows"), e.ConstI(2))))
	e.If(e.AndI(inX, inY), func() {
		body(e.Add(e.Mul(iy, nx), ix))
	})
}

// Module builds the device code of the mini-app.
func Module() *kir.Module {
	m := kir.NewModule()

	dims := []kir.Param{{Name: "nx", Type: kir.TInt}, {Name: "rows", Type: kir.TInt}}
	withDims := func(ps ...kir.Param) []kir.Param { return append(ps, dims...) }

	// tl_init: b gets a hot square in the rank-local interior; u starts
	// at zero (allocations are zeroed), r = b, p = r.
	m.Add(kir.KernelFunc("tl_init", withDims(
		kir.Param{Name: "b", Type: kir.TPtrF64},
		kir.Param{Name: "r", Type: kir.TPtrF64},
		kir.Param{Name: "p", Type: kir.TPtrF64},
	), func(e *kir.Emitter) {
		interiorGuard(e, func(idx kir.Value) {
			ix := e.GlobalIDX()
			iy := e.GlobalIDY()
			nx := e.Arg("nx")
			rows := e.Arg("rows")
			v := e.Var(kir.TFloat)
			e.Assign(v, e.ConstF(0))
			// Hot square: middle half in both dimensions.
			lo := e.Div(nx, e.ConstI(4))
			hi := e.Sub(nx, lo)
			loY := e.Div(rows, e.ConstI(4))
			hiY := e.Sub(rows, loY)
			hot := e.AndI(
				e.AndI(e.Ge(ix, lo), e.Lt(ix, hi)),
				e.AndI(e.Ge(iy, loY), e.Lt(iy, hiY)),
			)
			e.If(hot, func() { e.Assign(v, e.ConstF(10)) })
			e.StoreIdx(e.Arg("b"), idx, v)
			e.StoreIdx(e.Arg("r"), idx, v)
			e.StoreIdx(e.Arg("p"), idx, v)
		})
	}))

	// tl_matvec: w = (1+4k)p - k(p_l + p_r + p_u + p_d).
	m.Add(kir.KernelFunc("tl_matvec", withDims(
		kir.Param{Name: "w", Type: kir.TPtrF64},
		kir.Param{Name: "p", Type: kir.TPtrF64},
		kir.Param{Name: "k", Type: kir.TFloat},
	), func(e *kir.Emitter) {
		interiorGuard(e, func(idx kir.Value) {
			one := e.ConstI(1)
			nx := e.Arg("nx")
			p := e.Arg("p")
			k := e.Arg("k")
			center := e.LoadIdx(p, idx)
			sum := e.Add(
				e.Add(e.LoadIdx(p, e.Sub(idx, one)), e.LoadIdx(p, e.Add(idx, one))),
				e.Add(e.LoadIdx(p, e.Sub(idx, nx)), e.LoadIdx(p, e.Add(idx, nx))),
			)
			diag := e.Add(e.ConstF(1), e.Mul(e.ConstF(4), k))
			e.StoreIdx(e.Arg("w"), idx, e.Sub(e.Mul(diag, center), e.Mul(k, sum)))
		})
	}))

	// tl_dot: acc[slot] += a·b over the interior.
	m.Add(kir.KernelFunc("tl_dot", withDims(
		kir.Param{Name: "acc", Type: kir.TPtrF64},
		kir.Param{Name: "slot", Type: kir.TInt},
		kir.Param{Name: "a", Type: kir.TPtrF64},
		kir.Param{Name: "b", Type: kir.TPtrF64},
	), func(e *kir.Emitter) {
		interiorGuard(e, func(idx kir.Value) {
			prod := e.Mul(e.LoadIdx(e.Arg("a"), idx), e.LoadIdx(e.Arg("b"), idx))
			e.AtomicAddF(e.GEP(e.Arg("acc"), e.Arg("slot")), prod)
		})
	}))

	// tl_axpy: y += alpha * x.
	m.Add(kir.KernelFunc("tl_axpy", withDims(
		kir.Param{Name: "y", Type: kir.TPtrF64},
		kir.Param{Name: "x", Type: kir.TPtrF64},
		kir.Param{Name: "alpha", Type: kir.TFloat},
	), func(e *kir.Emitter) {
		interiorGuard(e, func(idx kir.Value) {
			y := e.Arg("y")
			v := e.Add(e.LoadIdx(y, idx), e.Mul(e.Arg("alpha"), e.LoadIdx(e.Arg("x"), idx)))
			e.StoreIdx(y, idx, v)
		})
	}))

	// tl_p_update: p = r + beta * p.
	m.Add(kir.KernelFunc("tl_p_update", withDims(
		kir.Param{Name: "p", Type: kir.TPtrF64},
		kir.Param{Name: "r", Type: kir.TPtrF64},
		kir.Param{Name: "beta", Type: kir.TFloat},
	), func(e *kir.Emitter) {
		interiorGuard(e, func(idx kir.Value) {
			p := e.Arg("p")
			v := e.Add(e.LoadIdx(e.Arg("r"), idx), e.Mul(e.Arg("beta"), e.LoadIdx(p, idx)))
			e.StoreIdx(p, idx, v)
		})
	}))

	// tl_reset_dots: zero both accumulator slots.
	m.Add(kir.KernelFunc("tl_reset_dots", []kir.Param{
		{Name: "acc", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.ConstI(2)), func() {
			e.StoreIdx(e.Arg("acc"), i, e.ConstF(0))
		})
	}))

	return m
}

// solver bundles one rank's state.
type solver struct {
	s           *core.Session
	cfg         Config
	nx, rows    int64
	grid, block kinterp.Dim3
	x, r, p, w  memspace.Addr
	b           memspace.Addr
	dDots       memspace.Addr // 2 device doubles: [0]=p·w, [1]=r·r
	hDot        memspace.Addr // host staging
	hDotG       memspace.Addr // allreduce result
}

func (t *solver) launch(name string, args ...kinterp.Arg) error {
	full := append(args, kinterp.Int(t.nx), kinterp.Int(t.rows))
	return t.s.Dev.LaunchKernel(name, t.grid, t.block, full, nil)
}

// globalDot runs acc[slot] += a·b on the device, copies it to the host,
// and allreduces it.
func (t *solver) globalDot(slot int64, a, b memspace.Addr) (float64, error) {
	if err := t.launch("tl_dot",
		kinterp.Ptr(t.dDots), kinterp.Int(slot), kinterp.Ptr(a), kinterp.Ptr(b)); err != nil {
		return 0, err
	}
	// Synchronous D2H copy: implicit host synchronization with the
	// default stream (semantics table), no explicit sync call needed.
	if err := t.s.Dev.Memcpy(t.hDot, t.dDots+memspace.Addr(slot*8), 8); err != nil {
		return 0, err
	}
	if err := t.s.Comm.Allreduce(t.hDot, t.hDotG, 1, mpi.Float64, mpi.OpSum); err != nil {
		return 0, err
	}
	return t.s.LoadF64(t.hDotG), nil
}

// exchangeHalo posts the non-blocking halo exchange of p and (unless
// SkipWait) completes it.
func (t *solver) exchangeHalo() error {
	s := t.s
	rowAddr := func(row int64) memspace.Addr { return t.p + memspace.Addr(row*t.nx*8) }
	var reqs []*mpi.Request
	post := func(req *mpi.Request, err error) error {
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
		return nil
	}
	nxi := int(t.nx)
	if s.Rank() > 0 {
		if err := post(s.Comm.Irecv(rowAddr(0), nxi, mpi.Float64, s.Rank()-1, 1)); err != nil {
			return err
		}
		if err := post(s.Comm.Isend(rowAddr(1), nxi, mpi.Float64, s.Rank()-1, 0)); err != nil {
			return err
		}
	}
	if s.Rank() < s.Size()-1 {
		if err := post(s.Comm.Irecv(rowAddr(t.rows-1), nxi, mpi.Float64, s.Rank()+1, 0)); err != nil {
			return err
		}
		if err := post(s.Comm.Isend(rowAddr(t.rows-2), nxi, mpi.Float64, s.Rank()+1, 1)); err != nil {
			return err
		}
	}
	if t.cfg.SkipWait {
		// BUG: use the halo before the receives complete; Waitall runs
		// after the dependent kernel (paper §III-D case ii).
		if err := t.launch("tl_matvec",
			kinterp.Ptr(t.w), kinterp.Ptr(t.p), kinterp.F64(t.cfg.K)); err != nil {
			return err
		}
	}
	if err := s.Comm.WaitAll(reqs...); err != nil {
		return err
	}
	return nil
}

// Run executes the CG solve on one rank's session.
func Run(s *core.Session, cfg Config) (*Result, error) {
	if cfg.BlockX <= 0 {
		cfg.BlockX = 128
	}
	if cfg.K <= 0 {
		cfg.K = 0.1
	}
	nx := int64(cfg.NX)
	size := int64(s.Size())
	if int64(cfg.NY)%size != 0 {
		return nil, fmt.Errorf("tealeaf: NY=%d not divisible by %d ranks", cfg.NY, s.Size())
	}
	rows := int64(cfg.NY)/size + 2
	n := nx * rows

	if !cfg.Interpreted {
		if err := RegisterNatives(s); err != nil {
			return nil, err
		}
	}
	t := &solver{
		s: s, cfg: cfg, nx: nx, rows: rows,
		grid:  kinterp.Dim2(int(nx+int64(cfg.BlockX)-1)/cfg.BlockX, int(rows)),
		block: kinterp.Dim2(cfg.BlockX, 1),
	}
	var err error
	alloc := func(count int64) memspace.Addr {
		if err != nil {
			return 0
		}
		var a memspace.Addr
		a, err = s.CudaMallocF64(count)
		return a
	}
	t.x = alloc(n)
	t.r = alloc(n)
	t.p = alloc(n)
	t.w = alloc(n)
	t.b = alloc(n)
	t.dDots = alloc(2)
	if err != nil {
		return nil, err
	}
	t.hDot = s.HostAllocF64(1)
	t.hDotG = s.HostAllocF64(1)

	dev := s.Dev
	// Initialization: memsets mirror TeaLeaf's buffer clears, then the
	// field setup kernel. All on the default stream.
	for _, buf := range []memspace.Addr{t.x, t.w} {
		if err := dev.Memset(buf, 0, n*8); err != nil {
			return nil, err
		}
	}
	if err := t.launch("tl_init", kinterp.Ptr(t.b), kinterp.Ptr(t.r), kinterp.Ptr(t.p)); err != nil {
		return nil, err
	}
	if err := dev.LaunchKernel("tl_reset_dots", kinterp.Dim(1), kinterp.Dim(2),
		[]kinterp.Arg{kinterp.Ptr(t.dDots)}, nil); err != nil {
		return nil, err
	}

	res := &Result{Rank: s.Rank(), Iters: cfg.Iters}
	rr, err := t.globalDot(1, t.r, t.r)
	if err != nil {
		return nil, err
	}
	res.FirstRR = rr

	for it := 0; it < cfg.Iters; it++ {
		// CUDA-to-MPI synchronization: p was last written on the device.
		if !cfg.SkipSync {
			dev.DeviceSynchronize()
		}
		if err := t.exchangeHalo(); err != nil {
			return nil, err
		}
		if err := dev.LaunchKernel("tl_reset_dots", kinterp.Dim(1), kinterp.Dim(2),
			[]kinterp.Arg{kinterp.Ptr(t.dDots)}, nil); err != nil {
			return nil, err
		}
		if !cfg.SkipWait {
			if err := t.launch("tl_matvec",
				kinterp.Ptr(t.w), kinterp.Ptr(t.p), kinterp.F64(cfg.K)); err != nil {
				return nil, err
			}
		}
		pAp, err := t.globalDot(0, t.p, t.w)
		if err != nil {
			return nil, err
		}
		if pAp == 0 {
			break
		}
		alpha := rr / pAp
		if err := t.launch("tl_axpy", kinterp.Ptr(t.x), kinterp.Ptr(t.p), kinterp.F64(alpha)); err != nil {
			return nil, err
		}
		if err := t.launch("tl_axpy", kinterp.Ptr(t.r), kinterp.Ptr(t.w), kinterp.F64(-alpha)); err != nil {
			return nil, err
		}
		rrNew, err := t.globalDot(1, t.r, t.r)
		if err != nil {
			return nil, err
		}
		beta := rrNew / rr
		rr = rrNew
		res.LastRR = rr
		if err := t.launch("tl_p_update", kinterp.Ptr(t.p), kinterp.Ptr(t.r), kinterp.F64(beta)); err != nil {
			return nil, err
		}
	}
	dev.DeviceSynchronize()
	if math.IsNaN(res.LastRR) {
		return nil, fmt.Errorf("tealeaf: diverged (rr = NaN)")
	}
	return res, nil
}
