package tealeaf

import (
	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/memspace"
)

// Native ("compiled") implementations of the TeaLeaf kernels; the IR
// versions in Module() drive the compiler analysis. Equivalence is
// pinned by TestNativeMatchesInterpreter.

// RegisterNatives installs the native kernels on the session's device.
func RegisterNatives(s *core.Session) error {
	for name, fn := range map[string]kinterp.ThreadRange{
		"tl_init":       nativeInit,
		"tl_matvec":     nativeMatvec,
		"tl_dot":        nativeDot,
		"tl_axpy":       nativeAxpy,
		"tl_p_update":   nativePUpdate,
		"tl_reset_dots": nativeResetDots,
	} {
		if err := s.Dev.RegisterNative(name, fn); err != nil {
			return err
		}
	}
	return nil
}

// dims unpacks the trailing (nx, rows) arguments every kernel carries.
func dims(args []kinterp.Arg) (nx, rows int64) {
	return args[len(args)-2].I, args[len(args)-1].I
}

// interior reports whether (ix, iy) is an interior point and returns its
// linear index.
func interior(ix, iy, nx, rows int64) (int64, bool) {
	if ix < 1 || ix > nx-2 || iy < 1 || iy > rows-2 {
		return 0, false
	}
	return iy*nx + ix, true
}

func nativeInit(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	nx, rows := dims(args)
	n := nx * rows
	b, err := kinterp.NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	r, err := kinterp.NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	p, err := kinterp.NewVecF64(view, args[2].Ptr, n)
	if err != nil {
		return err
	}
	loX, hiX := nx/4, nx-nx/4
	loY, hiY := rows/4, rows-rows/4
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		idx, ok := interior(int64(gx), int64(gy), nx, rows)
		if !ok {
			continue
		}
		v := 0.0
		if int64(gx) >= loX && int64(gx) < hiX && int64(gy) >= loY && int64(gy) < hiY {
			v = 10.0
		}
		b.Set(idx, v)
		r.Set(idx, v)
		p.Set(idx, v)
	}
	return nil
}

func nativeMatvec(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	nx, rows := dims(args)
	n := nx * rows
	w, err := kinterp.NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	p, err := kinterp.NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	k := args[2].F
	diag := 1 + 4*k
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		idx, ok := interior(int64(gx), int64(gy), nx, rows)
		if !ok {
			continue
		}
		sum := (p.At(idx-1) + p.At(idx+1)) + (p.At(idx-nx) + p.At(idx+nx))
		w.Set(idx, diag*p.At(idx)-k*sum)
	}
	return nil
}

func nativeDot(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	nx, rows := dims(args)
	n := nx * rows
	slot := args[1].I
	a, err := kinterp.NewVecF64(view, args[2].Ptr, n)
	if err != nil {
		return err
	}
	b, err := kinterp.NewVecF64(view, args[3].Ptr, n)
	if err != nil {
		return err
	}
	var local float64
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		idx, ok := interior(int64(gx), int64(gy), nx, rows)
		if !ok {
			continue
		}
		local += a.At(idx) * b.At(idx)
	}
	if local != 0 {
		return kinterp.GlobalAtomicAddF64(view, args[0].Ptr+memspace.Addr(slot*8), local)
	}
	return nil
}

func nativeAxpy(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	nx, rows := dims(args)
	n := nx * rows
	y, err := kinterp.NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	x, err := kinterp.NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	alpha := args[2].F
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		idx, ok := interior(int64(gx), int64(gy), nx, rows)
		if !ok {
			continue
		}
		y.Set(idx, y.At(idx)+alpha*x.At(idx))
	}
	return nil
}

func nativePUpdate(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	nx, rows := dims(args)
	n := nx * rows
	p, err := kinterp.NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	r, err := kinterp.NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	beta := args[2].F
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		idx, ok := interior(int64(gx), int64(gy), nx, rows)
		if !ok {
			continue
		}
		p.Set(idx, r.At(idx)+beta*p.At(idx))
	}
	return nil
}

func nativeResetDots(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
	acc, err := kinterp.NewVecF64(view, args[0].Ptr, 2)
	if err != nil {
		return err
	}
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		if gy == 0 && gx < 2 {
			acc.Set(int64(gx), 0)
		}
	}
	return nil
}
