package tealeaf

import (
	"math"
	"testing"

	"cusango/internal/core"
	"cusango/internal/kaccess"
	"cusango/internal/kir"
)

func run(t *testing.T, flavor core.Flavor, cfg Config, ranks int) (*core.Result, []*Result) {
	t.Helper()
	results := make([]*Result, ranks)
	res, err := core.Run(core.Config{
		Flavor: flavor,
		Ranks:  ranks,
		Module: Module(),
	}, func(s *core.Session) error {
		r, err := Run(s, cfg)
		if err != nil {
			return err
		}
		results[s.Rank()] = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return res, results
}

func smallCfg() Config {
	return Config{NX: 32, NY: 32, Iters: 15, K: 0.1}
}

func TestCGConverges(t *testing.T) {
	_, rs := run(t, core.Vanilla, smallCfg(), 2)
	for _, r := range rs {
		if math.IsNaN(r.LastRR) || r.LastRR <= 0 {
			t.Fatalf("rank %d: rr = %v", r.Rank, r.LastRR)
		}
		if r.LastRR >= r.FirstRR/10 {
			t.Fatalf("rank %d: CG barely converged: %v -> %v", r.Rank, r.FirstRR, r.LastRR)
		}
	}
	if rs[0].LastRR != rs[1].LastRR {
		t.Fatalf("ranks disagree on global rr: %v vs %v", rs[0].LastRR, rs[1].LastRR)
	}
}

func TestCorrectVersionIsRaceFree(t *testing.T) {
	res, _ := run(t, core.MUSTCuSan, smallCfg(), 2)
	if n := res.TotalRaces(); n != 0 {
		for _, rr := range res.Ranks {
			for _, rep := range rr.Reports {
				t.Logf("rank %d:\n%s", rr.Rank, rep)
			}
		}
		t.Fatalf("correct TeaLeaf flagged with %d races", n)
	}
	if n := res.TotalIssues(); n != 0 {
		t.Fatalf("correct TeaLeaf has %d MUST issues: %v", n, res.Ranks[0].Issues)
	}
}

func TestSkipWaitRaceDetected(t *testing.T) {
	// MPI-to-CUDA: kernel consumes the halo before MPI_Waitall.
	cfg := smallCfg()
	cfg.SkipWait = true
	res, _ := run(t, core.MUSTCuSan, cfg, 2)
	if res.TotalRaces() == 0 {
		t.Fatal("matvec-before-Waitall not flagged")
	}
}

func TestSkipSyncRaceDetected(t *testing.T) {
	// CUDA-to-MPI: halo send starts without device synchronization.
	cfg := smallCfg()
	cfg.SkipSync = true
	res, _ := run(t, core.MUSTCuSan, cfg, 2)
	if res.TotalRaces() == 0 {
		t.Fatal("missing deviceSynchronize before Isend not flagged")
	}
}

func TestSkipWaitNeedsBothTools(t *testing.T) {
	// The Irecv-vs-kernel race spans MPI and CUDA semantics: CuSan alone
	// (no MPI model) and MUST alone (no CUDA model) both miss it.
	cfg := smallCfg()
	cfg.SkipWait = true
	for _, flavor := range []core.Flavor{core.CuSan, core.MUST} {
		res, _ := run(t, flavor, cfg, 2)
		if res.TotalRaces() != 0 {
			t.Fatalf("%v alone unexpectedly flagged the hybrid race", flavor)
		}
	}
}

func TestNumericsUnchangedByInstrumentation(t *testing.T) {
	_, van := run(t, core.Vanilla, smallCfg(), 2)
	_, full := run(t, core.MUSTCuSan, smallCfg(), 2)
	if van[0].LastRR != full[0].LastRR {
		// Parallel atomic reductions run on worker pools in both cases;
		// the serial threshold keeps these small runs deterministic.
		t.Fatalf("flavors diverge: %v vs %v", van[0].LastRR, full[0].LastRR)
	}
}

func TestDefaultStreamOnlyCounters(t *testing.T) {
	res, _ := run(t, core.MUSTCuSan, smallCfg(), 2)
	c := res.Ranks[0].CudaCtrs
	if c.Streams != 1 {
		t.Errorf("streams = %d, want 1 (TeaLeaf uses only the default stream)", c.Streams)
	}
	iters := int64(smallCfg().Iters)
	// Per iteration: reset + matvec + dot + 2 axpy + dot + p_update = 7.
	wantKernels := 7*iters + 3 // init: tl_init + reset + first rr dot
	if c.KernelCalls != wantKernels {
		t.Errorf("kernels = %d, want %d", c.KernelCalls, wantKernels)
	}
	// Two dot copies per iteration + the initial rr copy.
	if c.Memcpys != 2*iters+1 {
		t.Errorf("memcpys = %d, want %d", c.Memcpys, 2*iters+1)
	}
	if c.Memsets != 2 {
		t.Errorf("memsets = %d, want 2", c.Memsets)
	}
	// TeaLeaf Table I signature, on CuSan's own counters: HA = memcpys +
	// sync calls exactly ("632 happens-after events which is the number
	// of Memcpy and Synchronization calls"), HB = one arc per device op.
	if c.HAAnnotations != c.Memcpys+c.SyncCalls {
		t.Errorf("CuSan HA = %d, want memcpys+syncs = %d", c.HAAnnotations, c.Memcpys+c.SyncCalls)
	}
	if c.HBAnnotations != c.KernelCalls+c.Memcpys+c.Memsets {
		t.Errorf("CuSan HB = %d, want kernels+memcpys+memsets = %d",
			c.HBAnnotations, c.KernelCalls+c.Memcpys+c.Memsets)
	}
	// Two fiber switches per device operation.
	if c.FiberSwitches != 2*(c.KernelCalls+c.Memcpys+c.Memsets) {
		t.Errorf("CuSan switches = %d, want 2x device ops", c.FiberSwitches)
	}
}

func TestMPIFibersCreatedForNonBlocking(t *testing.T) {
	// "fibers for both non-blocking MPI and CUDA are required" (paper
	// §V-A on TeaLeaf).
	res, _ := run(t, core.MUSTCuSan, smallCfg(), 2)
	ms := res.Ranks[0].MustStats
	if ms.NonBlockingCalls == 0 || ms.FibersCreated == 0 {
		t.Fatalf("non-blocking modeling missing: %+v", ms)
	}
	if ms.FibersCreated > 4 {
		t.Errorf("fiber pool not reusing: %d fibers created", ms.FibersCreated)
	}
	if ms.Completions != ms.NonBlockingCalls {
		t.Errorf("completions %d != non-blocking calls %d", ms.Completions, ms.NonBlockingCalls)
	}
}

func TestFourRanks(t *testing.T) {
	cfg := Config{NX: 32, NY: 64, Iters: 10, K: 0.1}
	res, rs := run(t, core.MUSTCuSan, cfg, 4)
	if res.TotalRaces() != 0 {
		t.Fatalf("4-rank run flagged: %d races", res.TotalRaces())
	}
	for _, r := range rs {
		if r.LastRR >= r.FirstRR {
			t.Fatalf("rank %d did not converge", r.Rank)
		}
	}
}

func TestIndivisibleDomainRejected(t *testing.T) {
	res, err := core.Run(core.Config{Flavor: core.Vanilla, Ranks: 2, Module: Module()},
		func(s *core.Session) error {
			_, err := Run(s, Config{NX: 16, NY: 17, Iters: 1})
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil {
		t.Fatal("expected divisibility error")
	}
}

func BenchmarkTeaLeafVanilla(b *testing.B) {
	cfg := Config{NX: 48, NY: 48, Iters: 10, K: 0.1}
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Flavor: core.Vanilla, Ranks: 2, Module: Module()},
			func(s *core.Session) error {
				_, err := Run(s, cfg)
				return err
			})
		if err != nil || res.FirstError() != nil {
			b.Fatal(err, res.FirstError())
		}
	}
}

func BenchmarkTeaLeafMustCusan(b *testing.B) {
	cfg := Config{NX: 48, NY: 48, Iters: 10, K: 0.1}
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Flavor: core.MUSTCuSan, Ranks: 2, Module: Module()},
			func(s *core.Session) error {
				_, err := Run(s, cfg)
				return err
			})
		if err != nil || res.FirstError() != nil {
			b.Fatal(err, res.FirstError())
		}
	}
}

// TestNativeMatchesInterpreter pins the equivalence of the native
// kernels and their IR definitions end to end.
func TestNativeMatchesInterpreter(t *testing.T) {
	cfg := smallCfg()
	_, native := run(t, core.Vanilla, cfg, 2)
	cfg.Interpreted = true
	_, interp := run(t, core.Vanilla, cfg, 2)
	if native[0].LastRR != interp[0].LastRR || native[0].FirstRR != interp[0].FirstRR {
		t.Fatalf("native %v/%v vs interpreted %v/%v",
			native[0].FirstRR, native[0].LastRR,
			interp[0].FirstRR, interp[0].LastRR)
	}
}

// TestModuleTextRoundTrip mirrors the Jacobi round-trip guard for the
// TeaLeaf kernels.
func TestModuleTextRoundTrip(t *testing.T) {
	m := Module()
	parsed, err := kir.Parse(m.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if parsed.String() != m.String() {
		t.Fatal("reprint differs")
	}
	orig, _ := kaccess.Analyze(m)
	again, _ := kaccess.Analyze(parsed)
	if orig.String() != again.String() {
		t.Fatalf("analysis differs:\n%s\nvs\n%s", orig, again)
	}
}
