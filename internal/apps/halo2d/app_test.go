package halo2d

import "testing"

import "cusango/internal/core"

func TestProcessGrid(t *testing.T) {
	cases := []struct{ size, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {9, 3, 3}, {12, 4, 3},
	}
	for _, c := range cases {
		px, py := ProcessGrid(c.size)
		if px != c.px || py != c.py {
			t.Errorf("ProcessGrid(%d) = %dx%d, want %dx%d", c.size, px, py, c.px, c.py)
		}
		if px*py != c.size || px < py {
			t.Errorf("ProcessGrid(%d) = %dx%d: invalid grid", c.size, px, py)
		}
	}
}

func runApp(t *testing.T, ranks int, cfg Config) *core.Result {
	t.Helper()
	res, err := core.Run(core.Config{
		Flavor: core.MUSTCuSan, Ranks: ranks, Module: AppModule(),
	}, func(s *core.Session) error {
		_, err := Run(s, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAppCleanUnderFullTool(t *testing.T) {
	cfg := Config{NX: 24, NY: 24, Iters: 10}
	res := runApp(t, 2, cfg)
	if n := res.TotalRaces(); n != 0 {
		t.Errorf("clean app: %d races", n)
		for i := range res.Ranks {
			for _, r := range res.Ranks[i].Reports {
				t.Logf("rank %d: %s", i, r)
			}
		}
	}
	if n := res.TotalIssues(); n != 0 {
		t.Errorf("clean app: %d MUST findings", n)
	}
}

func TestAppFourRanks(t *testing.T) {
	cfg := Config{NX: 24, NY: 24, Iters: 6}
	res := runApp(t, 4, cfg)
	if n := res.TotalRaces(); n != 0 {
		t.Errorf("clean app on 2x2 grid: %d races", n)
	}
}

func TestAppSkipPackSyncRaces(t *testing.T) {
	cfg := Config{NX: 24, NY: 24, Iters: 10, SkipPackSync: true}
	res := runApp(t, 2, cfg)
	if res.TotalRaces() == 0 {
		t.Error("SkipPackSync: expected races, got none")
	}
}

func TestAppChecksumDeterministic(t *testing.T) {
	cfg := Config{NX: 24, NY: 24, Iters: 10}
	var want float64
	for trial := 0; trial < 2; trial++ {
		var got float64
		res, err := core.Run(core.Config{
			Flavor: core.MUSTCuSan, Ranks: 2, Module: AppModule(),
		}, func(s *core.Session) error {
			r, err := Run(s, cfg)
			if err != nil {
				return err
			}
			if s.Rank() == 0 {
				got = r.Checksum
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Fatal("zero checksum: walls did not diffuse inward")
		}
		if trial == 0 {
			want = got
		} else if got != want {
			t.Errorf("checksum not deterministic: %v then %v", want, got)
		}
	}
}
