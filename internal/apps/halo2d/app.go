package halo2d

import (
	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// This file turns the halo-exchange library into a runnable mini-app: a
// 2D diffusion relaxation on a PX x PY cartesian decomposition, so the
// column pack/unpack path (and its injected race) is exercised by
// cusan-run and cusan-bench alongside the row-split mini-apps.

// Config parameterizes an app run.
type Config struct {
	// NX and NY are the global interior size (split across the process
	// grid chosen by ProcessGrid).
	NX, NY int
	// Iters is the fixed iteration count.
	Iters int
	// SkipPackSync injects the missing pack-kernel-to-Isend
	// synchronization (paper §III-D case i).
	SkipPackSync bool
	// BlockX is the step-kernel block width (default 64).
	BlockX int
}

// DefaultConfig returns a size small enough for the interpreted kernels
// while still running hundreds of pack/unpack launches.
func DefaultConfig() Config {
	return Config{NX: 48, NY: 48, Iters: 60}
}

// Result reports a rank's outcome.
type Result struct {
	Rank      int
	Iters     int
	Exchanges int64
	// Checksum is the global field sum after the last iteration
	// (identical on every rank after the final Allreduce).
	Checksum float64
}

// ProcessGrid picks the decomposition for a world size: the largest
// PY <= sqrt(size) dividing size, so PX >= PY and even a two-rank world
// has east/west neighbors — i.e. the strided-column path always runs.
func ProcessGrid(size int) (px, py int) {
	py = 1
	for d := 2; d*d <= size; d++ {
		if size%d == 0 {
			py = d
		}
	}
	return size / py, py
}

// AppModule returns the library kernels plus the app's init and step
// kernels.
func AppModule() *kir.Module {
	m := Module()

	// halo2d_init: interior 0, the global domain walls 1.0. The four
	// wall flags mark which field edges are global boundaries.
	m.Add(kir.KernelFunc("halo2d_init", []kir.Param{
		{Name: "field", Type: kir.TPtrF64},
		{Name: "stride", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
		{Name: "westWall", Type: kir.TInt},
		{Name: "eastWall", Type: kir.TInt},
		{Name: "northWall", Type: kir.TInt},
		{Name: "southWall", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		stride := e.Arg("stride")
		rows := e.Arg("rows")
		zero := e.ConstI(0)
		e.If(e.AndI(e.Lt(ix, stride), e.Lt(iy, rows)), func() {
			v := e.Var(kir.TFloat)
			e.Assign(v, e.ConstF(0))
			w := e.AndI(e.Ne(e.Arg("westWall"), zero), e.Eq(ix, zero))
			ea := e.AndI(e.Ne(e.Arg("eastWall"), zero), e.Eq(ix, e.Sub(stride, e.ConstI(1))))
			n := e.AndI(e.Ne(e.Arg("northWall"), zero), e.Eq(iy, zero))
			s := e.AndI(e.Ne(e.Arg("southWall"), zero), e.Eq(iy, e.Sub(rows, e.ConstI(1))))
			e.If(e.OrI(e.OrI(w, ea), e.OrI(n, s)), func() {
				e.Assign(v, e.ConstF(1))
			})
			e.StoreIdx(e.Arg("field"), e.Add(e.Mul(iy, stride), ix), v)
		})
	}))

	// halo2d_step: 5-point average of in into out over the interior.
	m.Add(kir.KernelFunc("halo2d_step", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "stride", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		one := e.ConstI(1)
		stride := e.Arg("stride")
		inX := e.AndI(e.Ge(ix, one), e.Le(ix, e.Sub(stride, e.ConstI(2))))
		inY := e.AndI(e.Ge(iy, one), e.Le(iy, e.Sub(e.Arg("rows"), e.ConstI(2))))
		e.If(e.AndI(inX, inY), func() {
			idx := e.Add(e.Mul(iy, stride), ix)
			in := e.Arg("in")
			c := e.LoadIdx(in, idx)
			l := e.LoadIdx(in, e.Sub(idx, one))
			r := e.LoadIdx(in, e.Add(idx, one))
			u := e.LoadIdx(in, e.Sub(idx, stride))
			d := e.LoadIdx(in, e.Add(idx, stride))
			v := e.Mul(e.ConstF(0.2), e.Add(c, e.Add(e.Add(l, r), e.Add(u, d))))
			e.StoreIdx(e.Arg("out"), idx, v)
		})
	}))
	return m
}

// Run executes the mini-app on one rank's session. Per iteration: halo
// exchange of the current field (pack -> sync -> Isend/Irecv -> Waitall
// -> unpack), one stencil step into the other field, device sync, swap.
func Run(s *core.Session, cfg Config) (*Result, error) {
	if cfg.BlockX <= 0 {
		cfg.BlockX = 64
	}
	px, py := ProcessGrid(s.Size())
	d := Decomp{PX: px, PY: py, NX: cfg.NX, NY: cfg.NY}
	ex, err := NewExchanger(s, d)
	if err != nil {
		return nil, err
	}
	ex.SkipPackSync = cfg.SkipPackSync

	dev := s.Dev
	n := ex.FieldElems()
	a, err := s.CudaMallocF64(n)
	if err != nil {
		return nil, err
	}
	b, err := s.CudaMallocF64(n)
	if err != nil {
		return nil, err
	}

	cx, cy := d.Coords(s.Rank())
	grid := kinterp.Dim2(int(ex.stride+int64(cfg.BlockX)-1)/cfg.BlockX, int(ex.rows))
	block := kinterp.Dim2(cfg.BlockX, 1)
	initArgs := func(buf memspace.Addr) []kinterp.Arg {
		return []kinterp.Arg{
			kinterp.Ptr(buf), kinterp.Int(ex.stride), kinterp.Int(ex.rows),
			kinterp.Int(b2i(cx == 0)), kinterp.Int(b2i(cx == d.PX-1)),
			kinterp.Int(b2i(cy == 0)), kinterp.Int(b2i(cy == d.PY-1)),
		}
	}
	if err := dev.LaunchKernel("halo2d_init", grid, block, initArgs(a), nil); err != nil {
		return nil, err
	}
	if err := dev.LaunchKernel("halo2d_init", grid, block, initArgs(b), nil); err != nil {
		return nil, err
	}
	dev.DeviceSynchronize()

	res := &Result{Rank: s.Rank(), Iters: cfg.Iters}
	for it := 0; it < cfg.Iters; it++ {
		if err := ex.Exchange(a); err != nil {
			return nil, err
		}
		if err := dev.LaunchKernel("halo2d_step", grid, block, []kinterp.Arg{
			kinterp.Ptr(b), kinterp.Ptr(a), kinterp.Int(ex.stride), kinterp.Int(ex.rows),
		}, nil); err != nil {
			return nil, err
		}
		// All device work (unpack + step) must retire before the next
		// exchange's MPI writes the halo rows.
		dev.DeviceSynchronize()
		a, b = b, a
	}
	res.Exchanges = ex.Exchanges

	// Global checksum of the interior: D2H copy (host-synchronizing),
	// host sum, Allreduce.
	host := s.HostAllocF64(n)
	if err := dev.Memcpy(host, a, n*8); err != nil {
		return nil, err
	}
	var local float64
	for iy := int64(1); iy < ex.rows-1; iy++ {
		for ix := int64(1); ix < ex.stride-1; ix++ {
			local += s.LoadF64(host + memspace.Addr((iy*ex.stride+ix)*8))
		}
	}
	hLocal := s.HostAllocF64(1)
	hGlobal := s.HostAllocF64(1)
	s.StoreF64(hLocal, local)
	if err := s.Comm.Allreduce(hLocal, hGlobal, 1, mpi.Float64, mpi.OpSum); err != nil {
		return nil, err
	}
	res.Checksum = s.LoadF64(hGlobal)
	return res, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
