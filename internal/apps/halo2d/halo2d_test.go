package halo2d

import (
	"fmt"
	"strings"
	"testing"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// testModule adds a fill kernel next to the library kernels: every
// interior cell gets a value encoding its GLOBAL coordinates, so halo
// correctness is checkable exactly.
func testModule() *kir.Module {
	m := Module()
	m.Add(kir.KernelFunc("fill_coords", []kir.Param{
		{Name: "field", Type: kir.TPtrF64},
		{Name: "stride", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
		{Name: "gx0", Type: kir.TInt},
		{Name: "gy0", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		one := e.ConstI(1)
		inX := e.AndI(e.Ge(ix, one), e.Le(ix, e.Sub(e.Arg("stride"), e.ConstI(2))))
		inY := e.AndI(e.Ge(iy, one), e.Le(iy, e.Sub(e.Arg("rows"), e.ConstI(2))))
		e.If(e.AndI(inX, inY), func() {
			gx := e.Add(e.Arg("gx0"), e.Sub(ix, one))
			gy := e.Add(e.Arg("gy0"), e.Sub(iy, one))
			val := e.Add(e.Mul(gy, e.ConstI(10000)), gx)
			e.StoreIdx(e.Arg("field"), e.Add(e.Mul(iy, e.Arg("stride")), ix), e.ToFloat(val))
		})
	}))
	return m
}

// coordVal is the expected encoding of global cell (gx, gy).
func coordVal(gx, gy int64) float64 { return float64(gy*10000 + gx) }

// runGrid runs body on a PX x PY decomposition of a 12x12 domain.
func runGrid(t *testing.T, flavor core.Flavor, px, py int,
	body func(s *core.Session, ex *Exchanger, field memspace.Addr) error) *core.Result {
	t.Helper()
	d := Decomp{PX: px, PY: py, NX: 12, NY: 12}
	res, err := core.Run(core.Config{
		Flavor: flavor,
		Ranks:  px * py,
		Module: testModule(),
	}, func(s *core.Session) error {
		ex, err := NewExchanger(s, d)
		if err != nil {
			return err
		}
		field, err := s.CudaMallocF64(ex.FieldElems())
		if err != nil {
			return err
		}
		cx, cy := d.Coords(s.Rank())
		nxl, nyl := d.LocalSize()
		if err := s.Dev.LaunchKernel("fill_coords",
			kinterp.Dim2(1, int(ex.rows)), kinterp.Dim2(int(ex.stride), 1),
			[]kinterp.Arg{
				kinterp.Ptr(field), kinterp.Int(ex.stride), kinterp.Int(ex.rows),
				kinterp.Int(int64(cx * nxl)), kinterp.Int(int64(cy * nyl)),
			}, nil); err != nil {
			return err
		}
		s.Dev.DeviceSynchronize()
		return body(s, ex, field)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDecompGeometry(t *testing.T) {
	d := Decomp{PX: 3, PY: 2, NX: 12, NY: 10}
	if err := d.Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(5); err == nil {
		t.Fatal("wrong world size accepted")
	}
	if err := (Decomp{PX: 3, PY: 2, NX: 13, NY: 10}).Validate(6); err == nil {
		t.Fatal("indivisible domain accepted")
	}
	px, py := d.Coords(4)
	if px != 1 || py != 1 {
		t.Fatalf("Coords(4) = (%d,%d)", px, py)
	}
	if d.RankAt(1, 1) != 4 || d.RankAt(-1, 0) != -1 || d.RankAt(3, 0) != -1 {
		t.Fatal("RankAt wrong")
	}
	nx, ny := d.LocalSize()
	if nx != 4 || ny != 5 {
		t.Fatalf("LocalSize = %dx%d", nx, ny)
	}
}

// TestExchangeMovesCorrectValues checks every halo cell against the
// neighbor's global coordinates after one exchange on a 2x2 grid.
func TestExchangeMovesCorrectValues(t *testing.T) {
	var failures []string
	res := runGrid(t, core.Vanilla, 2, 2, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		if err := ex.Exchange(field); err != nil {
			return err
		}
		s.Dev.DeviceSynchronize()
		d := ex.d
		cx, cy := d.Coords(s.Rank())
		nxl, nyl := d.LocalSize()
		at := func(ix, iy int64) float64 {
			return s.Mem.Float64(field + memspace.Addr((iy*ex.stride+ix)*8))
		}
		check := func(ix, iy, gx, gy int64, what string) {
			if got := at(ix, iy); got != coordVal(gx, gy) {
				failures = append(failures,
					fmt.Sprintf("rank %d %s: field[%d,%d]=%v want (%d,%d)=%v",
						s.Rank(), what, ix, iy, got, gx, gy, coordVal(gx, gy)))
			}
		}
		gx0, gy0 := int64(cx*nxl), int64(cy*nyl)
		// north halo row (iy=0): neighbor's last interior row.
		if d.RankAt(cx, cy-1) >= 0 {
			for i := int64(0); i < int64(nxl); i++ {
				check(i+1, 0, gx0+i, gy0-1, "north")
			}
		}
		// south halo row.
		if d.RankAt(cx, cy+1) >= 0 {
			for i := int64(0); i < int64(nxl); i++ {
				check(i+1, ex.rows-1, gx0+i, gy0+int64(nyl), "south")
			}
		}
		// west halo column (packed/unpacked path).
		if d.RankAt(cx-1, cy) >= 0 {
			for j := int64(0); j < int64(nyl); j++ {
				check(0, j+1, gx0-1, gy0+j, "west")
			}
		}
		// east halo column.
		if d.RankAt(cx+1, cy) >= 0 {
			for j := int64(0); j < int64(nyl); j++ {
				check(ex.stride-1, j+1, gx0+int64(nxl), gy0+j, "east")
			}
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Error(f)
	}
}

func TestExchangeRaceFreeUnderFullInstrumentation(t *testing.T) {
	res := runGrid(t, core.MUSTCuSan, 2, 2, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		for i := 0; i < 3; i++ {
			if err := ex.Exchange(field); err != nil {
				return err
			}
			// Downstream consumer: a kernel reading the halo (launch
			// order covers the unpack kernels on the default stream).
			s.Dev.DeviceSynchronize()
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if n := res.TotalRaces(); n != 0 {
		for i := range res.Ranks {
			for _, rep := range res.Ranks[i].Reports {
				t.Logf("rank %d:\n%s", res.Ranks[i].Rank, rep)
			}
		}
		t.Fatalf("correct 2D exchange flagged: %d races", n)
	}
	if res.TotalIssues() != 0 {
		t.Fatalf("MUST issues on correct exchange: %v", res.Ranks[0].Issues)
	}
}

func TestSkipPackSyncDetected(t *testing.T) {
	// The pack kernel writes the staging buffer; Isend reads it without
	// synchronization: the library's injectable bug.
	res := runGrid(t, core.MUSTCuSan, 2, 1, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		ex.SkipPackSync = true
		return ex.Exchange(field)
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRaces() == 0 {
		t.Fatal("missing pack-to-send sync not flagged")
	}
	// The report must implicate the pack kernel and the Isend.
	found := false
	for i := range res.Ranks {
		for _, rep := range res.Ranks[i].Reports {
			str := rep.String()
			if contains(str, "halo2d_pack_col") && contains(str, "MPI_Isend") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("report does not implicate pack kernel vs MPI_Isend")
	}
}

func TestSkipPackSyncInvisibleWithoutCuSan(t *testing.T) {
	res := runGrid(t, core.MUST, 2, 1, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		ex.SkipPackSync = true
		return ex.Exchange(field)
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRaces() != 0 {
		t.Fatal("MUST alone cannot see the pack kernel; expected a miss")
	}
}

func TestOneByOneGridNoNeighbors(t *testing.T) {
	res := runGrid(t, core.MUSTCuSan, 1, 1, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		return ex.Exchange(field) // no neighbors: must be a no-op
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRaces() != 0 {
		t.Fatal("no-neighbor exchange flagged")
	}
}

func TestWideGrid4x1(t *testing.T) {
	res := runGrid(t, core.MUSTCuSan, 4, 1, func(s *core.Session, ex *Exchanger, field memspace.Addr) error {
		return ex.Exchange(field)
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRaces() != 0 {
		t.Fatalf("4x1 exchange flagged: %d", res.TotalRaces())
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
