// Package halo2d is a reusable CUDA-aware halo-exchange library over a
// two-dimensional domain decomposition — the communication pattern the
// paper's introduction motivates, in its general form.
//
// Unlike the row-split mini-apps (whose halo rows are contiguous and can
// be passed to MPI directly), a 2D decomposition exchanges COLUMNS,
// which are strided in memory: a pack kernel gathers the column into a
// contiguous device staging buffer, the buffer is sent with CUDA-aware
// MPI, and an unpack kernel scatters the received bytes into the halo
// column. Each step is a device operation with its own synchronization
// obligation, which multiplies the opportunities for the races CuSan
// exists to catch:
//
//	pack kernel -> (sync!) -> MPI_Isend of the staging buffer
//	MPI_Irecv -> MPI_Wait -> (launch order) -> unpack kernel
//
// The Exchanger owns the staging buffers and performs the full
// four-direction exchange; SkipPackSync injects the missing
// pack-to-send synchronization.
package halo2d

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// Decomp is a PX x PY cartesian decomposition of a global NX x NY grid.
type Decomp struct {
	PX, PY int // process grid
	NX, NY int // global interior size
}

// Coords returns rank's (px, py) position (row-major rank order).
func (d Decomp) Coords(rank int) (int, int) {
	return rank % d.PX, rank / d.PX
}

// RankAt returns the rank at (px, py), or -1 outside the process grid.
func (d Decomp) RankAt(px, py int) int {
	if px < 0 || px >= d.PX || py < 0 || py >= d.PY {
		return -1
	}
	return py*d.PX + px
}

// LocalSize returns the per-rank interior size.
func (d Decomp) LocalSize() (int, int) {
	return d.NX / d.PX, d.NY / d.PY
}

// Validate checks divisibility and the world size.
func (d Decomp) Validate(worldSize int) error {
	if d.PX*d.PY != worldSize {
		return fmt.Errorf("halo2d: %dx%d process grid needs %d ranks, world has %d",
			d.PX, d.PY, d.PX*d.PY, worldSize)
	}
	if d.NX%d.PX != 0 || d.NY%d.PY != 0 {
		return fmt.Errorf("halo2d: global %dx%d not divisible by %dx%d grid",
			d.NX, d.NY, d.PX, d.PY)
	}
	return nil
}

// Module returns the pack/unpack kernels. Merge it into the application
// module before building the device.
func Module() *kir.Module {
	m := kir.NewModule()
	AddKernels(m)
	return m
}

// AddKernels registers the library's kernels on an existing module.
func AddKernels(m *kir.Module) {
	// pack_col: buf[i] = field[(i+1)*stride + col] for i in [0, count).
	// The +1 skips the corner/halo row: packed elements are the interior
	// rows of the column.
	m.Add(kir.KernelFunc("halo2d_pack_col", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "field", Type: kir.TPtrF64},
		{Name: "col", Type: kir.TInt},
		{Name: "stride", Type: kir.TInt},
		{Name: "count", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("count")), func() {
			src := e.Add(e.Mul(e.Add(i, e.ConstI(1)), e.Arg("stride")), e.Arg("col"))
			e.StoreIdx(e.Arg("buf"), i, e.LoadIdx(e.Arg("field"), src))
		})
	}))
	m.Add(kir.KernelFunc("halo2d_unpack_col", []kir.Param{
		{Name: "field", Type: kir.TPtrF64},
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "col", Type: kir.TInt},
		{Name: "stride", Type: kir.TInt},
		{Name: "count", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("count")), func() {
			dst := e.Add(e.Mul(e.Add(i, e.ConstI(1)), e.Arg("stride")), e.Arg("col"))
			e.StoreIdx(e.Arg("field"), dst, e.LoadIdx(e.Arg("buf"), i))
		})
	}))
}

// Exchanger performs four-direction halo exchanges for one rank.
type Exchanger struct {
	s        *core.Session
	d        Decomp
	nxl, nyl int64
	stride   int64 // nxl + 2
	rows     int64 // nyl + 2
	// Column staging buffers (device): send/recv for west and east.
	sendW, sendE, recvW, recvE memspace.Addr
	// SkipPackSync injects the missing pack-kernel-to-Isend sync.
	SkipPackSync bool
	// Exchanges counts completed exchanges.
	Exchanges int64
}

// Tags per direction.
const (
	tagNorth = 10 + iota
	tagSouth
	tagWest
	tagEast
)

// NewExchanger allocates the staging buffers on the device.
func NewExchanger(s *core.Session, d Decomp) (*Exchanger, error) {
	if err := d.Validate(s.Size()); err != nil {
		return nil, err
	}
	nxl, nyl := d.LocalSize()
	ex := &Exchanger{
		s: s, d: d,
		nxl: int64(nxl), nyl: int64(nyl),
		stride: int64(nxl) + 2, rows: int64(nyl) + 2,
	}
	var err error
	alloc := func() memspace.Addr {
		if err != nil {
			return 0
		}
		var a memspace.Addr
		a, err = s.CudaMallocF64(ex.nyl)
		return a
	}
	ex.sendW, ex.sendE, ex.recvW, ex.recvE = alloc(), alloc(), alloc(), alloc()
	if err != nil {
		return nil, err
	}
	return ex, nil
}

// FieldElems returns the per-rank field size (interior + halo ring).
func (ex *Exchanger) FieldElems() int64 { return ex.stride * ex.rows }

// rowAddr returns the address of (row, col=0) in field.
func (ex *Exchanger) rowAddr(field memspace.Addr, row int64) memspace.Addr {
	return field + memspace.Addr(row*ex.stride*8)
}

func (ex *Exchanger) launch(kernel string, args ...kinterp.Arg) error {
	grid := kinterp.Dim(int(ex.nyl+127) / 128)
	return ex.s.Dev.LaunchKernel(kernel, grid, kinterp.Dim(128), args, nil)
}

// Exchange swaps all four halos of field with the cartesian neighbors.
// North/south rows are contiguous and communicated directly; west/east
// columns go through pack/unpack kernels and device staging buffers.
// The caller must have synchronized any device work that produced field;
// Exchange itself synchronizes its pack kernels before sending (unless
// SkipPackSync injects the bug).
func (ex *Exchanger) Exchange(field memspace.Addr) error {
	s := ex.s
	px, py := ex.d.Coords(s.Rank())
	north := ex.d.RankAt(px, py-1)
	south := ex.d.RankAt(px, py+1)
	west := ex.d.RankAt(px-1, py)
	east := ex.d.RankAt(px+1, py)

	// Pack the non-contiguous columns on the device FIRST. Note the
	// ordering constraint CuSan's conservative whole-allocation
	// annotation imposes (paper §V-B/§VI-D): the pack kernel's read
	// annotation covers the entire field, so it must not be in flight
	// while an MPI_Irecv writes the field's halo rows — packing strictly
	// before posting the receives keeps the correct version clean under
	// the tool, exactly as a real CuSan user would have to order it.
	packed := false
	if west >= 0 {
		if err := ex.launch("halo2d_pack_col",
			kinterp.Ptr(ex.sendW), kinterp.Ptr(field),
			kinterp.Int(1), kinterp.Int(ex.stride), kinterp.Int(ex.nyl)); err != nil {
			return err
		}
		packed = true
	}
	if east >= 0 {
		if err := ex.launch("halo2d_pack_col",
			kinterp.Ptr(ex.sendE), kinterp.Ptr(field),
			kinterp.Int(ex.stride-2), kinterp.Int(ex.stride), kinterp.Int(ex.nyl)); err != nil {
			return err
		}
		packed = true
	}
	// The pack kernels must complete before MPI reads the staging
	// buffers (paper §III-D case i). SkipPackSync injects the bug.
	if packed && !ex.SkipPackSync {
		ex.s.Dev.DeviceSynchronize()
	}

	var reqs []*mpi.Request
	post := func(req *mpi.Request, err error) error {
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
		return nil
	}

	// Receives (posted into halo rows / staging buffers).
	if north >= 0 {
		if err := post(s.Comm.Irecv(ex.rowAddr(field, 0)+8, int(ex.nxl), mpi.Float64, north, tagSouth)); err != nil {
			return err
		}
	}
	if south >= 0 {
		if err := post(s.Comm.Irecv(ex.rowAddr(field, ex.rows-1)+8, int(ex.nxl), mpi.Float64, south, tagNorth)); err != nil {
			return err
		}
	}
	if west >= 0 {
		if err := post(s.Comm.Irecv(ex.recvW, int(ex.nyl), mpi.Float64, west, tagEast)); err != nil {
			return err
		}
	}
	if east >= 0 {
		if err := post(s.Comm.Irecv(ex.recvE, int(ex.nyl), mpi.Float64, east, tagWest)); err != nil {
			return err
		}
	}

	// Sends: rows directly from the field, columns from staging buffers.
	if north >= 0 {
		if err := post(s.Comm.Isend(ex.rowAddr(field, 1)+8, int(ex.nxl), mpi.Float64, north, tagNorth)); err != nil {
			return err
		}
	}
	if south >= 0 {
		if err := post(s.Comm.Isend(ex.rowAddr(field, ex.rows-2)+8, int(ex.nxl), mpi.Float64, south, tagSouth)); err != nil {
			return err
		}
	}
	if west >= 0 {
		if err := post(s.Comm.Isend(ex.sendW, int(ex.nyl), mpi.Float64, west, tagWest)); err != nil {
			return err
		}
	}
	if east >= 0 {
		if err := post(s.Comm.Isend(ex.sendE, int(ex.nyl), mpi.Float64, east, tagEast)); err != nil {
			return err
		}
	}
	if err := s.Comm.WaitAll(reqs...); err != nil {
		return err
	}

	// Unpack received columns into the halo columns.
	if west >= 0 {
		if err := ex.launch("halo2d_unpack_col",
			kinterp.Ptr(field), kinterp.Ptr(ex.recvW),
			kinterp.Int(0), kinterp.Int(ex.stride), kinterp.Int(ex.nyl)); err != nil {
			return err
		}
	}
	if east >= 0 {
		if err := ex.launch("halo2d_unpack_col",
			kinterp.Ptr(field), kinterp.Ptr(ex.recvE),
			kinterp.Int(ex.stride-1), kinterp.Int(ex.stride), kinterp.Int(ex.nyl)); err != nil {
			return err
		}
	}
	ex.Exchanges++
	return nil
}
