// Package jacobi is the reproduction of the paper's first mini-app: the
// NVIDIA CUDA-aware MPI Jacobi solver [38] — a 2D Poisson/Laplace
// relaxation on a row-decomposed domain whose halo rows are exchanged
// with *blocking* MPI send-recv operations on device pointers (paper §V,
// "Jacobi uses blocking MPI send-recv operations").
//
// Structure per iteration (mirroring the sample):
//
//  1. jacobi_step kernel on a user compute stream: 5-point stencil into
//     the output buffer, accumulating the residual via atomic add;
//  2. reset kernel preparing the residual cell for the next iteration;
//  3. synchronous D2H memcpy of the residual (implicit host sync);
//  4. cudaDeviceSynchronize — the explicit CUDA-to-MPI synchronization
//     the paper's Fig. 4 is about;
//  5. halo exchange with MPI_Sendrecv on device pointers;
//  6. MPI_Allreduce of the residual; buffer swap.
//
// The racy variant (SkipSync) omits step 4 and makes step 3 asynchronous:
// the classic missing CUDA-to-MPI synchronization CuSan exists to catch.
package jacobi

import (
	"fmt"
	"math"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// Config parameterizes a run.
type Config struct {
	// NX and NY are the global domain size (NY is split across ranks).
	NX, NY int
	// Iters is the fixed iteration count (deterministic benchmark work).
	Iters int
	// SkipSync injects the missing-synchronization bug.
	SkipSync bool
	// Interpreted forces IR interpretation of the kernels instead of the
	// registered native implementations (equivalence testing and the
	// interpreter-cost ablation).
	Interpreted bool
	// BlockX is the kernel block width (default 128).
	BlockX int
}

// DefaultConfig returns the benchmark default: a scaled-down domain (the
// paper's model sizes target a V100; see DESIGN.md E1/E4) at the
// sample's iteration count, which reproduces the Table I counter values
// (602 memcpys, ~1200 kernel calls, ~1804 happens-before events).
func DefaultConfig() Config {
	return Config{NX: 512, NY: 256, Iters: 600}
}

// Result reports a rank's outcome.
type Result struct {
	Rank      int
	Iters     int
	FirstNorm float64
	LastNorm  float64
}

// Module builds the device code of the mini-app.
func Module() *kir.Module {
	m := kir.NewModule()

	// absdiff(a, b) -> |a-b| without branches: max(a-b, b-a).
	m.Add(kir.DeviceFunc("absdiff", []kir.Param{
		{Name: "a", Type: kir.TFloat},
		{Name: "b", Type: kir.TFloat},
	}, kir.TFloat, func(e *kir.Emitter) {
		d := e.Sub(e.Arg("a"), e.Arg("b"))
		nd := e.Sub(e.Arg("b"), e.Arg("a"))
		e.ReturnVal(e.Max(d, nd))
	}))

	// jacobi_step: interior stencil update + residual accumulation.
	// Buffers hold rows*nx elements; rows = local interior + 2 halo rows.
	// Interior is iy in [1, rows-2], ix in [1, nx-2].
	m.Add(kir.KernelFunc("jacobi_step", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "norm", Type: kir.TPtrF64},
		{Name: "nx", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		one := e.ConstI(1)
		nx := e.Arg("nx")
		inX := e.AndI(e.Ge(ix, one), e.Le(ix, e.Sub(nx, e.ConstI(2))))
		inY := e.AndI(e.Ge(iy, one), e.Le(iy, e.Sub(e.Arg("rows"), e.ConstI(2))))
		e.If(e.AndI(inX, inY), func() {
			idx := e.Add(e.Mul(iy, nx), ix)
			in := e.Arg("in")
			l := e.LoadIdx(in, e.Sub(idx, one))
			r := e.LoadIdx(in, e.Add(idx, one))
			u := e.LoadIdx(in, e.Sub(idx, nx))
			d := e.LoadIdx(in, e.Add(idx, nx))
			v := e.Mul(e.ConstF(0.25), e.Add(e.Add(l, r), e.Add(u, d)))
			e.StoreIdx(e.Arg("out"), idx, v)
			diff := e.CallRet("absdiff", kir.TFloat, v, e.LoadIdx(in, idx))
			e.AtomicAddF(e.Arg("norm"), diff)
		})
	}))

	// init_field: walls fixed at 1.0, interior 0. topWall/botWall mark
	// global boundary rows (rank 0 / last rank).
	m.Add(kir.KernelFunc("init_field", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "nx", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
		{Name: "topWall", Type: kir.TInt},
		{Name: "botWall", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		nx := e.Arg("nx")
		rows := e.Arg("rows")
		inDom := e.AndI(e.Lt(ix, nx), e.Lt(iy, rows))
		e.If(inDom, func() {
			zero := e.ConstI(0)
			v := e.Var(kir.TFloat)
			e.Assign(v, e.ConstF(0))
			wall := e.OrI(e.Eq(ix, zero), e.Eq(ix, e.Sub(nx, e.ConstI(1))))
			top := e.AndI(e.Ne(e.Arg("topWall"), zero), e.Eq(iy, zero))
			bot := e.AndI(e.Ne(e.Arg("botWall"), zero), e.Eq(iy, e.Sub(rows, e.ConstI(1))))
			e.If(e.OrI(wall, e.OrI(top, bot)), func() {
				e.Assign(v, e.ConstF(1))
			})
			e.StoreIdx(e.Arg("buf"), e.Add(e.Mul(iy, nx), ix), v)
		})
	}))

	// reset_norm: one thread zeroes the accumulator.
	m.Add(kir.KernelFunc("reset_norm", []kir.Param{
		{Name: "norm", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		e.If(e.Eq(e.GlobalIDX(), e.ConstI(0)), func() {
			e.StoreIdx(e.Arg("norm"), e.ConstI(0), e.ConstF(0))
		})
	}))

	return m
}

// Run executes the solver on one rank's session. The domain's NY rows
// are split evenly; each rank holds rows = NY/size + 2 halo rows.
func Run(s *core.Session, cfg Config) (*Result, error) {
	if cfg.BlockX <= 0 {
		cfg.BlockX = 128
	}
	nx := int64(cfg.NX)
	size := int64(s.Size())
	if int64(cfg.NY)%size != 0 {
		return nil, fmt.Errorf("jacobi: NY=%d not divisible by %d ranks", cfg.NY, s.Size())
	}
	nyl := int64(cfg.NY) / size
	rows := nyl + 2
	n := nx * rows

	dev := s.Dev
	if !cfg.Interpreted {
		if err := RegisterNatives(s); err != nil {
			return nil, err
		}
	}
	a, err := s.CudaMallocF64(n)
	if err != nil {
		return nil, err
	}
	aNew, err := s.CudaMallocF64(n)
	if err != nil {
		return nil, err
	}
	dNorm, err := s.CudaMallocF64(1)
	if err != nil {
		return nil, err
	}
	hNorm := s.HostAllocF64(1)
	hNormGlobal := s.HostAllocF64(1)

	top := s.Rank() == 0
	bot := s.Rank() == s.Size()-1
	grid := kinterp.Dim2(int(nx+int64(cfg.BlockX)-1)/cfg.BlockX, int(rows))
	block := kinterp.Dim2(cfg.BlockX, 1)

	initArgs := func(buf memspace.Addr) []kinterp.Arg {
		return []kinterp.Arg{
			kinterp.Ptr(buf), kinterp.Int(nx), kinterp.Int(rows),
			kinterp.Int(b2i(top)), kinterp.Int(b2i(bot)),
		}
	}
	// Initialization on the default stream; the two memsets of the field
	// buffers mirror the sample (Table I: Memset = 2).
	if err := dev.Memset(a, 0, n*8); err != nil {
		return nil, err
	}
	if err := dev.Memset(aNew, 0, n*8); err != nil {
		return nil, err
	}
	if err := dev.LaunchKernel("init_field", grid, block, initArgs(a), nil); err != nil {
		return nil, err
	}
	if err := dev.LaunchKernel("init_field", grid, block, initArgs(aNew), nil); err != nil {
		return nil, err
	}
	s.StoreF64(hNormGlobal, 0)
	dev.DeviceSynchronize()

	// Compute stream: a non-blocking user stream — all stencil work runs
	// here, host-side residual copies on the default stream, explicit
	// cudaStreamSynchronize before touching device data from the host.
	// This reproduces the Table I counter algebra of the sample:
	// HB events = kernels + memcpys + memsets (one arc per operation),
	// HA events = synchronization calls + host-syncing memcpys.
	stream := dev.StreamCreate(true)

	res := &Result{Rank: s.Rank(), Iters: cfg.Iters}
	for it := 0; it < cfg.Iters; it++ {
		if err := dev.LaunchKernel("jacobi_step", grid, block, []kinterp.Arg{
			kinterp.Ptr(aNew), kinterp.Ptr(a), kinterp.Ptr(dNorm),
			kinterp.Int(nx), kinterp.Int(rows),
		}, stream); err != nil {
			return nil, err
		}

		// CUDA-to-host synchronization before the host (and MPI) touch
		// device data (paper Fig. 4 line 4). The racy variant omits it.
		if !cfg.SkipSync {
			if err := dev.StreamSynchronize(stream); err != nil {
				return nil, err
			}
		}

		// Residual to host. The synchronous D2H copy blocks the host;
		// the racy variant uses the async variant, which does not.
		if cfg.SkipSync {
			if err := dev.MemcpyAsync(hNorm, dNorm, 8, stream); err != nil {
				return nil, err
			}
		} else {
			if err := dev.Memcpy(hNorm, dNorm, 8); err != nil {
				return nil, err
			}
		}
		// Prepare the accumulator for the next iteration. The launch is
		// ordered after the (host-synchronous) copy by program order on
		// the host, carried onto the stream by the launch.
		if err := dev.LaunchKernel("reset_norm", kinterp.Dim(1), kinterp.Dim(1),
			[]kinterp.Arg{kinterp.Ptr(dNorm)}, stream); err != nil {
			return nil, err
		}

		// Halo exchange with blocking send-recv on device pointers:
		// first interior row up, last interior row down.
		rowAddr := func(buf memspace.Addr, row int64) memspace.Addr {
			return buf + memspace.Addr(row*nx*8)
		}
		if s.Rank() > 0 {
			if _, err := s.Comm.Sendrecv(
				rowAddr(aNew, 1), int(nx), mpi.Float64, s.Rank()-1, 0,
				rowAddr(aNew, 0), int(nx), mpi.Float64, s.Rank()-1, 1,
			); err != nil {
				return nil, err
			}
		}
		if s.Rank() < s.Size()-1 {
			if _, err := s.Comm.Sendrecv(
				rowAddr(aNew, rows-2), int(nx), mpi.Float64, s.Rank()+1, 1,
				rowAddr(aNew, rows-1), int(nx), mpi.Float64, s.Rank()+1, 0,
			); err != nil {
				return nil, err
			}
		}

		// Global residual.
		if err := s.Comm.Allreduce(hNorm, hNormGlobal, 1, mpi.Float64, mpi.OpSum); err != nil {
			return nil, err
		}
		norm := s.LoadF64(hNormGlobal)
		norm = math.Sqrt(norm) / float64(cfg.NX*cfg.NY)
		if it == 0 {
			res.FirstNorm = norm
		}
		res.LastNorm = norm

		a, aNew = aNew, a
	}
	dev.DeviceSynchronize()
	return res, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
