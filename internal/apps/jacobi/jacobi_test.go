package jacobi

import (
	"math"
	"testing"

	"cusango/internal/core"
	"cusango/internal/cuda"
	"cusango/internal/kaccess"
	"cusango/internal/kir"
)

func run(t *testing.T, flavor core.Flavor, cfg Config, ranks int) (*core.Result, []*Result) {
	t.Helper()
	results := make([]*Result, ranks)
	res, err := core.Run(core.Config{
		Flavor: flavor,
		Ranks:  ranks,
		Module: Module(),
	}, func(s *core.Session) error {
		r, err := Run(s, cfg)
		if err != nil {
			return err
		}
		results[s.Rank()] = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return res, results
}

func smallCfg() Config {
	return Config{NX: 64, NY: 32, Iters: 30}
}

func TestConvergesVanilla(t *testing.T) {
	_, rs := run(t, core.Vanilla, smallCfg(), 2)
	for _, r := range rs {
		if r.LastNorm <= 0 || math.IsNaN(r.LastNorm) {
			t.Fatalf("rank %d: bad norm %v", r.Rank, r.LastNorm)
		}
		if r.LastNorm >= r.FirstNorm {
			t.Fatalf("rank %d: residual did not decrease: %v -> %v",
				r.Rank, r.FirstNorm, r.LastNorm)
		}
	}
	// Allreduce makes all ranks agree on the global norm.
	if rs[0].LastNorm != rs[1].LastNorm {
		t.Fatalf("ranks disagree: %v vs %v", rs[0].LastNorm, rs[1].LastNorm)
	}
}

func TestSameResultAcrossFlavors(t *testing.T) {
	// Instrumentation must not change the numerics.
	_, van := run(t, core.Vanilla, smallCfg(), 2)
	_, full := run(t, core.MUSTCuSan, smallCfg(), 2)
	if math.Abs(van[0].LastNorm-full[0].LastNorm) > 1e-12 {
		t.Fatalf("flavors diverge: vanilla %v vs must+cusan %v",
			van[0].LastNorm, full[0].LastNorm)
	}
}

func TestCorrectVersionIsRaceFree(t *testing.T) {
	res, _ := run(t, core.MUSTCuSan, smallCfg(), 2)
	if n := res.TotalRaces(); n != 0 {
		for _, rr := range res.Ranks {
			for _, rep := range rr.Reports {
				t.Logf("rank %d:\n%s", rr.Rank, rep)
			}
		}
		t.Fatalf("correct Jacobi flagged with %d races", n)
	}
	if n := res.TotalIssues(); n != 0 {
		t.Fatalf("correct Jacobi has %d MUST issues: %v", n, res.Ranks[0].Issues)
	}
}

func TestRacyVersionIsDetected(t *testing.T) {
	cfg := smallCfg()
	cfg.SkipSync = true
	res, _ := run(t, core.MUSTCuSan, cfg, 2)
	if res.TotalRaces() == 0 {
		t.Fatal("missing-sync Jacobi not flagged")
	}
}

func TestRacyVersionInvisibleToMUSTAlone(t *testing.T) {
	// The CUDA-to-MPI race needs CuSan's CUDA model: MUST alone (blocking
	// MPI annotations only) cannot see the kernel side.
	cfg := smallCfg()
	cfg.SkipSync = true
	res, _ := run(t, core.MUST, cfg, 2)
	if res.TotalRaces() != 0 {
		t.Fatalf("MUST alone should miss the CUDA-side race, got %d", res.TotalRaces())
	}
}

func TestSingleRank(t *testing.T) {
	cfg := Config{NX: 32, NY: 16, Iters: 10}
	res, rs := run(t, core.MUSTCuSan, cfg, 1)
	if res.TotalRaces() != 0 {
		t.Fatalf("1-rank run flagged: %d", res.TotalRaces())
	}
	if rs[0].LastNorm >= rs[0].FirstNorm {
		t.Fatal("1-rank run did not converge")
	}
}

func TestFourRanks(t *testing.T) {
	cfg := Config{NX: 64, NY: 64, Iters: 20}
	res, rs := run(t, core.MUSTCuSan, cfg, 4)
	if res.TotalRaces() != 0 {
		t.Fatalf("4-rank run flagged: %d races\n%v", res.TotalRaces(), res.Ranks[1].Reports)
	}
	for _, r := range rs {
		if r.LastNorm >= r.FirstNorm {
			t.Fatalf("rank %d did not converge", r.Rank)
		}
	}
}

func TestIndivisibleDomainRejected(t *testing.T) {
	cfg := Config{NX: 32, NY: 31, Iters: 1}
	res, err := core.Run(core.Config{Flavor: core.Vanilla, Ranks: 2, Module: Module()},
		func(s *core.Session) error {
			_, err := Run(s, cfg)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestTableICounterShape(t *testing.T) {
	// Counter structure per rank: kernels = 2/iter + 2 init,
	// memcpys = 1/iter, memsets = 2, streams = 2 (default + compute),
	// syncs = deviceSync(1/iter + 2) + memcpy-induced? (memcpy sync is
	// counted under memcpys; SyncCalls counts explicit calls only).
	cfg := smallCfg()
	res, _ := run(t, core.MUSTCuSan, cfg, 2)
	c := res.Ranks[0].CudaCtrs
	iters := int64(cfg.Iters)
	if c.KernelCalls != 2*iters+2 {
		t.Errorf("kernels = %d, want %d", c.KernelCalls, 2*iters+2)
	}
	if c.Memcpys != iters {
		t.Errorf("memcpys = %d, want %d", c.Memcpys, iters)
	}
	if c.Memsets != 2 {
		t.Errorf("memsets = %d, want 2", c.Memsets)
	}
	if c.Streams != 2 {
		t.Errorf("streams = %d, want 2", c.Streams)
	}
	// streamSync per iteration + deviceSync at init and teardown.
	if c.SyncCalls != iters+2 {
		t.Errorf("syncs = %d, want %d", c.SyncCalls, iters+2)
	}
	// The paper's Table I algebra: one happens-before arc per device
	// operation (kernels + memcpys + memsets)...
	wantHB := c.KernelCalls + c.Memcpys + c.Memsets
	st0 := res.Ranks[0].TSanStats
	if st0.HappensBefore != wantHB {
		t.Errorf("HB = %d, want kernels+memcpys+memsets = %d", st0.HappensBefore, wantHB)
	}
	// ...and happens-after from synchronization calls (1 per stream
	// sync; the init deviceSync sees 1 stream, the final one 2) plus
	// host-syncing memcpys.
	wantHA := (c.SyncCalls - 2) + 1 + 2 + c.Memcpys
	if st0.HappensAfter != wantHA {
		t.Errorf("HA = %d, want syncs+memcpys = %d", st0.HappensAfter, wantHA)
	}
	st := res.Ranks[0].TSanStats
	if st.FiberSwitches == 0 || st.HappensBefore == 0 || st.HappensAfter == 0 {
		t.Errorf("tsan stats empty: %+v", st)
	}
	// The paper's Table I signature: more happens-before than
	// happens-after events (default-stream ops release to peers).
	if st.HappensBefore <= st.HappensAfter {
		t.Errorf("HB (%d) should exceed HA (%d)", st.HappensBefore, st.HappensAfter)
	}
}

func BenchmarkJacobiVanilla(b *testing.B) {
	cfg := Config{NX: 128, NY: 64, Iters: 20}
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Flavor: core.Vanilla, Ranks: 2, Module: Module()},
			func(s *core.Session) error {
				_, err := Run(s, cfg)
				return err
			})
		if err != nil || res.FirstError() != nil {
			b.Fatal(err, res.FirstError())
		}
	}
}

func BenchmarkJacobiMustCusan(b *testing.B) {
	cfg := Config{NX: 128, NY: 64, Iters: 20}
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Flavor: core.MUSTCuSan, Ranks: 2, Module: Module()},
			func(s *core.Session) error {
				_, err := Run(s, cfg)
				return err
			})
		if err != nil || res.FirstError() != nil {
			b.Fatal(err, res.FirstError())
		}
	}
}

// TestNativeMatchesInterpreter pins the equivalence of the native
// ("compiled") kernels and their IR definitions: the solver must produce
// bit-identical residuals in both execution modes.
func TestNativeMatchesInterpreter(t *testing.T) {
	cfg := smallCfg()
	_, native := run(t, core.Vanilla, cfg, 2)
	cfg.Interpreted = true
	_, interp := run(t, core.Vanilla, cfg, 2)
	if native[0].LastNorm != interp[0].LastNorm || native[0].FirstNorm != interp[0].FirstNorm {
		t.Fatalf("native %v/%v vs interpreted %v/%v",
			native[0].FirstNorm, native[0].LastNorm,
			interp[0].FirstNorm, interp[0].LastNorm)
	}
}

// TestAsyncDeviceMode runs the solver with genuinely asynchronous stream
// execution (cuda.Config.AsyncStreams): a correctly synchronized program
// must produce the same residuals as the eager mode.
func TestAsyncDeviceMode(t *testing.T) {
	cfg := smallCfg()
	results := make([]*Result, 2)
	res, err := core.Run(core.Config{
		Flavor: core.MUSTCuSan,
		Ranks:  2,
		Module: Module(),
		Cuda:   cuda.Config{AsyncStreams: true},
	}, func(s *core.Session) error {
		r, err := Run(s, cfg)
		if err != nil {
			return err
		}
		results[s.Rank()] = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRaces() != 0 {
		t.Fatalf("correct program flagged under async mode: %d", res.TotalRaces())
	}
	_, eager := run(t, core.MUSTCuSan, cfg, 2)
	if results[0].LastNorm != eager[0].LastNorm {
		t.Fatalf("async %v != eager %v", results[0].LastNorm, eager[0].LastNorm)
	}
}

// TestModuleTextRoundTrip guards the IR text format against the real app
// kernels: parse(print(Module())) must preserve both the compiler
// analysis results and the printed form.
func TestModuleTextRoundTrip(t *testing.T) {
	m := Module()
	parsed, err := kir.Parse(m.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if parsed.String() != m.String() {
		t.Fatal("reprint differs")
	}
	orig, err := kaccess.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	again, err := kaccess.Analyze(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if orig.String() != again.String() {
		t.Fatalf("analysis differs:\n%s\nvs\n%s", orig, again)
	}
}
