package jacobi

import (
	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/memspace"
)

// Native ("compiled") implementations of the Jacobi kernels. The IR
// versions in Module() remain the input to the compiler access analysis;
// these execute. Equivalence of the two is pinned by
// TestNativeMatchesInterpreter.

// RegisterNatives installs the native kernels on the session's device.
func RegisterNatives(s *core.Session) error {
	for name, fn := range map[string]kinterp.ThreadRange{
		"jacobi_step": nativeJacobiStep,
		"init_field":  nativeInitField,
		"reset_norm":  nativeResetNorm,
	} {
		if err := s.Dev.RegisterNative(name, fn); err != nil {
			return err
		}
	}
	return nil
}

func nativeJacobiStep(g kinterp.Geometry, lo, hi int, args []kinterp.Arg,
	view *memspace.View) error {
	nx := args[3].I
	rows := args[4].I
	n := nx * rows
	out, err := kinterp.NewVecF64(view, args[0].Ptr, n)
	if err != nil {
		return err
	}
	in, err := kinterp.NewVecF64(view, args[1].Ptr, n)
	if err != nil {
		return err
	}
	var localNorm float64
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		ix, iy := int64(gx), int64(gy)
		if ix < 1 || ix > nx-2 || iy < 1 || iy > rows-2 {
			continue
		}
		idx := iy*nx + ix
		v := 0.25 * ((in.At(idx-1) + in.At(idx+1)) + (in.At(idx-nx) + in.At(idx+nx)))
		out.Set(idx, v)
		// absdiff(v, in[idx]) = max(v-in, in-v), matching the IR helper.
		d := v - in.At(idx)
		nd := in.At(idx) - v
		if nd > d {
			d = nd
		}
		localNorm += d
	}
	// One atomic accumulation per thread range instead of per element:
	// same result under addition, far fewer serialized sections.
	if localNorm != 0 {
		return kinterp.GlobalAtomicAddF64(view, args[2].Ptr, localNorm)
	}
	return nil
}

func nativeInitField(g kinterp.Geometry, lo, hi int, args []kinterp.Arg,
	view *memspace.View) error {
	nx := args[1].I
	rows := args[2].I
	topWall := args[3].I != 0
	botWall := args[4].I != 0
	buf, err := kinterp.NewVecF64(view, args[0].Ptr, nx*rows)
	if err != nil {
		return err
	}
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		ix, iy := int64(gx), int64(gy)
		if ix >= nx || iy >= rows {
			continue
		}
		v := 0.0
		if ix == 0 || ix == nx-1 ||
			(topWall && iy == 0) || (botWall && iy == rows-1) {
			v = 1.0
		}
		buf.Set(iy*nx+ix, v)
	}
	return nil
}

func nativeResetNorm(g kinterp.Geometry, lo, hi int, args []kinterp.Arg,
	view *memspace.View) error {
	for lin := lo; lin < hi; lin++ {
		gx, gy := g.Thread(lin)
		if gx == 0 && gy == 0 {
			norm, err := kinterp.NewVecF64(view, args[0].Ptr, 1)
			if err != nil {
				return err
			}
			norm.Set(0, 0)
		}
	}
	return nil
}
