package bench

import (
	"fmt"
	"time"

	"cusango/internal/campaign"
	"cusango/internal/testsuite"
	"cusango/internal/tsan"
)

// CampaignScaling measures worker-count scaling of the campaign
// scheduler on the chaos workload: the full classified suite under
// seeded fault schedules, both shadow engines, dispatched at 1, 2, 4,
// and 8 workers. Speedup is reported against the serial run. On a
// single-core host the speedup column degenerates to ~1.0x — the table
// notes the observed parallelism so the numbers stay honest.
func CampaignScaling(cfg Config) (*Table, error) {
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	jobs := testsuite.ChaosJobs(testsuite.Cases(), seeds, 0.05,
		[]tsan.Engine{tsan.EngineBatched, tsan.EngineSlow})

	t := &Table{
		Title:   "Campaign worker-count scaling (chaos workload)",
		Headers: []string{"workers", "jobs", "wall", "jobs/s", "speedup"},
	}
	var serial time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		rep := campaign.Run(jobs, testsuite.ExecuteJob, campaign.Options{Workers: workers})
		if pass, fail, errs := rep.Counts(); fail+errs > 0 {
			return nil, fmt.Errorf("bench: campaign workload not clean: pass=%d fail=%d error=%d",
				pass, fail, errs)
		}
		if workers == 1 {
			serial = rep.Wall
		}
		speedup := float64(serial) / float64(rep.Wall)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", len(jobs)),
			rep.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(jobs))/rep.Wall.Seconds()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d chaos jobs: %d seeds x 2 engines x %d cases, rate 0.05",
			len(jobs), len(seeds), len(testsuite.Cases())),
		"speedup is vs the 1-worker run on this host; it tracks available cores")
	return t, nil
}
