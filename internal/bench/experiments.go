package bench

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/cusan"
)

// Paper reference values (SC-W 2024, §V), printed alongside measured
// numbers so the shape comparison is immediate.
var (
	paperFig10 = map[App]map[core.Flavor]float64{
		Jacobi:  {core.TSan: 2.27, core.MUST: 4.63, core.CuSan: 36.06, core.MUSTCuSan: 37.89},
		TeaLeaf: {core.TSan: 1.01, core.MUST: 4.20, core.CuSan: 3.77, core.MUSTCuSan: 6.97},
	}
	paperFig11 = map[App]map[core.Flavor]float64{
		Jacobi:  {core.TSan: 1.20, core.MUST: 1.17, core.CuSan: 1.71, core.MUSTCuSan: 1.77},
		TeaLeaf: {core.TSan: 1.00, core.MUST: 1.03, core.CuSan: 1.25, core.MUSTCuSan: 1.29},
	}
	// Table I, per MPI process, as reported by CuSan in the paper.
	paperTable1 = map[App]map[string]float64{
		Jacobi: {
			"Stream": 2, "Memset": 2, "Memcpy": 602, "Synchronization calls": 900,
			"Kernel calls": 1200, "Switch To Fiber": 3622, "AnnotateHappensBefore": 1804,
			"AnnotateHappensAfter": 1515, "Memory Read Range": 2102, "Memory Write Range": 2403,
			"Memory Read Size [avg KB]": 19705.62, "Memory Write Size [avg KB]": 16421.35,
		},
		TeaLeaf: {
			"Stream": 1, "Memset": 36, "Memcpy": 102, "Synchronization calls": 530,
			"Kernel calls": 767, "Switch To Fiber": 1882, "AnnotateHappensBefore": 905,
			"AnnotateHappensAfter": 632, "Memory Read Range": 623, "Memory Write Range": 1074,
			"Memory Read Size [avg KB]": 15.98, "Memory Write Size [avg KB]": 17.58,
		},
	}
)

// overheadFlavors is the evaluation matrix of Fig. 10/11.
var overheadFlavors = []core.Flavor{core.TSan, core.MUST, core.CuSan, core.MUSTCuSan}

// overheadApps returns the apps an overhead experiment iterates.
func overheadApps(cfg Config) []App {
	if len(cfg.Apps) > 0 {
		return cfg.Apps
	}
	return []App{Jacobi, TeaLeaf}
}

// paperRef formats a paper reference value, "-" when the paper has none
// (apps beyond the paper's pair).
func paperRef(m map[App]map[core.Flavor]float64, app App, fl core.Flavor) string {
	if v, ok := m[app][fl]; ok {
		return f2(v)
	}
	return "-"
}

// Fig10 measures relative runtime overhead per flavor for both apps.
func Fig10(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Fig. 10 — relative runtime overhead [T_flavor / T_vanilla]",
		Headers: []string{"app", "flavor", "wall", "rel", "paper"},
		Notes: []string{
			fmt.Sprintf("avg of %d run(s) after %d warmup; %d ranks", cfg.Runs, cfg.Warmup, cfg.Ranks),
			"absolute factors differ (interpreted device on CPU); the ordering and app contrast are the reproduced shape",
		},
	}
	for _, app := range overheadApps(cfg) {
		base, err := Measure(app, core.Vanilla, cfg, cusan.Options{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{app.String(), "vanilla", secs(base.Wall), "1.00", "1.00"})
		for _, fl := range overheadFlavors {
			m, err := Measure(app, fl, cfg, cusan.Options{})
			if err != nil {
				return nil, err
			}
			rel := m.Wall.Seconds() / base.Wall.Seconds()
			t.Rows = append(t.Rows, []string{
				app.String(), fl.String(), secs(m.Wall), f2(rel), paperRef(paperFig10, app, fl),
			})
		}
	}
	return t, nil
}

// Fig11 measures relative memory overhead (modeled RSS at finalize).
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Fig. 11 — relative memory overhead [M_flavor / M_vanilla]",
		Headers: []string{"app", "flavor", "rss[MB]", "rel", "paper"},
		Notes: []string{
			"modeled RSS = live simulated allocations + tool shadow state at MPI_Finalize (deterministic RSS analog)",
		},
	}
	memCfg := cfg
	memCfg.Runs, memCfg.Warmup = 1, 0 // memory is deterministic
	for _, app := range overheadApps(cfg) {
		base, err := Measure(app, core.Vanilla, memCfg, cusan.Options{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{app.String(), "vanilla", mb(base.RSS), "1.00", "1.00"})
		for _, fl := range overheadFlavors {
			m, err := Measure(app, fl, memCfg, cusan.Options{})
			if err != nil {
				return nil, err
			}
			rel := float64(m.RSS) / float64(base.RSS)
			t.Rows = append(t.Rows, []string{
				app.String(), fl.String(), mb(m.RSS), f2(rel), paperRef(paperFig11, app, fl),
			})
		}
	}
	return t, nil
}

// Table1 reports the CUDA and TSan runtime event counters for one MPI
// process under MUST & CuSan.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table I — CUDA and TSan runtime event counters (one MPI process, MUST & CuSan)",
		Headers: []string{"metric", "Jacobi", "paper", "TeaLeaf", "paper"},
		Notes: []string{
			"measured with the scaled-down default models; the paper column is the authors' testbed",
			"TSan rows count the calls CuSan itself issued (as in the paper's reporting)",
		},
	}
	oneCfg := cfg
	oneCfg.Runs, oneCfg.Warmup = 1, 0
	get := func(app App) (cusan.Counters, error) {
		m, err := Measure(app, core.MUSTCuSan, oneCfg, cusan.Options{})
		if err != nil {
			return cusan.Counters{}, err
		}
		return m.Result.Ranks[0].CudaCtrs, nil
	}
	jc, err := get(Jacobi)
	if err != nil {
		return nil, err
	}
	tc, err := get(TeaLeaf)
	if err != nil {
		return nil, err
	}
	row := func(metric string, j, tl float64, format func(float64) string) {
		t.Rows = append(t.Rows, []string{
			metric, format(j), format(paperTable1[Jacobi][metric]),
			format(tl), format(paperTable1[TeaLeaf][metric]),
		})
	}
	ival := func(x float64) string { return fmt.Sprintf("%.0f", x) }
	row("Stream", float64(jc.Streams), float64(tc.Streams), ival)
	row("Memset", float64(jc.Memsets), float64(tc.Memsets), ival)
	row("Memcpy", float64(jc.Memcpys), float64(tc.Memcpys), ival)
	row("Synchronization calls", float64(jc.SyncCalls), float64(tc.SyncCalls), ival)
	row("Kernel calls", float64(jc.KernelCalls), float64(tc.KernelCalls), ival)
	row("Switch To Fiber", float64(jc.FiberSwitches), float64(tc.FiberSwitches), ival)
	row("AnnotateHappensBefore", float64(jc.HBAnnotations), float64(tc.HBAnnotations), ival)
	row("AnnotateHappensAfter", float64(jc.HAAnnotations), float64(tc.HAAnnotations), ival)
	row("Memory Read Range", float64(jc.ReadRanges), float64(tc.ReadRanges), ival)
	row("Memory Write Range", float64(jc.WriteRanges), float64(tc.WriteRanges), ival)
	row("Memory Read Size [avg KB]", jc.AvgReadKB(), tc.AvgReadKB(), f2)
	row("Memory Write Size [avg KB]", jc.AvgWriteKB(), tc.AvgWriteKB(), f2)
	// Shadow-engine counters have no paper analog (the batched range
	// engine is this reproduction's addition); the paper column stays "-".
	rowNP := func(metric string, j, tl float64) {
		t.Rows = append(t.Rows, []string{metric, ival(j), "-", ival(tl), "-"})
	}
	rowNP("Shadow pages touched", float64(jc.EnginePages), float64(tc.EnginePages))
	rowNP("Shadow granules processed", float64(jc.EngineGranules), float64(tc.EngineGranules))
	rowNP("Fast-path granules", float64(jc.EngineFastGranules), float64(tc.EngineFastGranules))
	rowNP("Range-cache hits", float64(jc.RangeCacheHits), float64(tc.RangeCacheHits))
	rowNP("Range-cache misses", float64(jc.RangeCacheMisses), float64(tc.RangeCacheMisses))
	return t, nil
}

// Fig12 runs the Jacobi scaling study: relative CuSan overhead and total
// tracked bytes as a function of the global domain size.
func Fig12(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Fig. 12 — Jacobi scaling: relative runtime and TSan-tracked bytes vs. domain size",
		Headers: []string{"domain", "vanilla", "cusan", "rel", "tsan read[MB]", "tsan write[MB]"},
		Notes: []string{
			"tracked bytes are the totals over both MPI processes, as in the paper's right axis",
			"paper sweep: 512x256 ... 8192x4096 on a V100 (rel. runtime ~6x..>100x); sizes here are scaled to the interpreted device, same doubling ladder",
		},
	}
	for _, size := range cfg.Fig12Sizes {
		scfg := cfg
		scfg.JacobiCfg.NX, scfg.JacobiCfg.NY = size[0], size[1]
		base, err := Measure(Jacobi, core.Vanilla, scfg, cusan.Options{})
		if err != nil {
			return nil, err
		}
		m, err := Measure(Jacobi, core.CuSan, scfg, cusan.Options{})
		if err != nil {
			return nil, err
		}
		var readB, writeB int64
		for i := range m.Result.Ranks {
			readB += m.Result.Ranks[i].CudaCtrs.ReadBytes
			writeB += m.Result.Ranks[i].CudaCtrs.WriteBytes
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", size[0], size[1]),
			secs(base.Wall), secs(m.Wall),
			f2(m.Wall.Seconds() / base.Wall.Seconds()),
			mb(readB), mb(writeB),
		})
	}
	return t, nil
}

// Ablation reproduces §V-B ("completely removing memory annotations ...
// brings the overhead down to almost vanilla") and the §VI-D
// boundary-tracking proposal.
func Ablation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation (§V-B, §VI-D) — Jacobi under CuSan variants",
		Headers: []string{"variant", "wall", "rel vs vanilla", "tracked write[MB]"},
		Notes: []string{
			"no-memory-tracking keeps all fiber/sync modeling but annotates no ranges (paper: overhead drops to almost vanilla)",
			"boundary-only tracks the first/last 4KiB of each kernel argument (future-work optimization; may miss interior races)",
		},
	}
	base, err := Measure(Jacobi, core.Vanilla, cfg, cusan.Options{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"vanilla", secs(base.Wall), "1.00", "0.0"})
	variants := []struct {
		name string
		opts cusan.Options
	}{
		{"cusan (full tracking)", cusan.Options{}},
		{"cusan, no memory tracking", cusan.Options{DisableMemoryTracking: true}},
		{"cusan, boundary-only 4KiB", cusan.Options{BoundaryBytes: 4096}},
	}
	for _, v := range variants {
		m, err := Measure(Jacobi, core.CuSan, cfg, v.opts)
		if err != nil {
			return nil, err
		}
		var writeB int64
		for i := range m.Result.Ranks {
			writeB += m.Result.Ranks[i].CudaCtrs.WriteBytes
		}
		t.Rows = append(t.Rows, []string{
			v.name, secs(m.Wall), f2(m.Wall.Seconds() / base.Wall.Seconds()), mb(writeB),
		})
	}
	return t, nil
}
