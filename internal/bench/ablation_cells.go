package bench

import (
	"fmt"
	"time"

	"cusango/internal/core"
	"cusango/internal/cusan"
	"cusango/internal/tsan"
)

// CellsAblation measures the shadow-memory design choice DESIGN.md calls
// out: the number of shadow cells kept per 8-byte granule (TSan uses 4;
// this reproduction defaults to 2). More cells remember more concurrent
// accessors (fewer evictions, fewer potentially missed races) at a
// proportional memory cost and a small runtime cost.
func CellsAblation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation — shadow cells per granule (TSan design point: 4; default here: 2)",
		Headers: []string{"cells", "wall", "rel vs vanilla", "shadow[MB]", "races"},
		Notes: []string{
			"Jacobi under MUST & CuSan; the correct program must stay at 0 races at every setting",
		},
	}
	base, err := Measure(Jacobi, core.Vanilla, cfg, cusan.Options{})
	if err != nil {
		return nil, err
	}
	for _, cells := range []int{1, 2, 4} {
		tcfg := cfg.TSanCfg
		tcfg.CellsPerGranule = cells
		m, err := measureWithTSan(Jacobi, cfg, tcfg)
		if err != nil {
			return nil, err
		}
		var shadow int64
		for i := range m.Result.Ranks {
			if s := m.Result.Ranks[i].ShadowBytes; s > shadow {
				shadow = s
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cells),
			secs(m.Wall),
			f2(m.Wall.Seconds() / base.Wall.Seconds()),
			mb(shadow),
			fmt.Sprintf("%d", m.Result.TotalRaces()),
		})
	}
	return t, nil
}

// MeasureTSan is Measure under MUST & CuSan with a custom sanitizer
// configuration (exported for the perf harness's engine scenarios).
func MeasureTSan(app App, cfg Config, tcfg tsan.Config) (*Measurement, error) {
	return measureWithTSan(app, cfg, tcfg)
}

// measureWithTSan is Measure under MUST & CuSan with a custom sanitizer
// configuration.
func measureWithTSan(app App, cfg Config, tcfg tsan.Config) (*Measurement, error) {
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := runOnceTSan(app, core.MUSTCuSan, cfg, cusan.Options{}, tcfg); err != nil {
			return nil, err
		}
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	var acc *Measurement
	for i := 0; i < runs; i++ {
		m, err := runOnceTSan(app, core.MUSTCuSan, cfg, cusan.Options{}, tcfg)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = m
		} else {
			acc.Wall += m.Wall
		}
	}
	acc.Wall /= time.Duration(runs)
	acc.Runs = runs
	return acc, nil
}
