// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's §V against the simulated substrate —
// runtime overhead (Fig. 10), memory overhead (Fig. 11), CUDA/TSan event
// counters (Table I), the Jacobi domain-size scaling study (Fig. 12) —
// plus the §V-B/§VI-D ablations.
//
// Absolute times come from an interpreted device on CPU cores, so only
// the *relative* factors and their shape are comparable to the paper;
// each table prints the paper's reference numbers next to the measured
// ones (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cusango/internal/apps/halo2d"
	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/core"
	"cusango/internal/cusan"
	"cusango/internal/tsan"
)

// App selects a mini-app.
type App uint8

// Mini-apps under evaluation. Jacobi and TeaLeaf are the paper's two
// (§V); Halo2D is this reproduction's strided-column exchange app, so
// its rows have no paper reference column.
const (
	Jacobi App = iota
	TeaLeaf
	Halo2D
)

func (a App) String() string {
	switch a {
	case Jacobi:
		return "Jacobi"
	case TeaLeaf:
		return "TeaLeaf"
	default:
		return "Halo2D"
	}
}

// ParseApp resolves a mini-app name (case-insensitive).
func ParseApp(s string) (App, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "jacobi":
		return Jacobi, nil
	case "tealeaf":
		return TeaLeaf, nil
	case "halo2d":
		return Halo2D, nil
	default:
		return Jacobi, fmt.Errorf("bench: unknown app %q", s)
	}
}

// Config tunes the harness.
type Config struct {
	// Ranks is the number of MPI processes (paper: 2 nodes x 1 GPU).
	Ranks int
	// Runs is the number of measured runs; the average is reported
	// (paper: 4 runs plus one uncounted warmup).
	Runs int
	// Warmup runs are executed and discarded.
	Warmup int
	// Apps selects which mini-apps the overhead experiments iterate
	// (default: Jacobi and TeaLeaf, the paper's pair).
	Apps []App
	// JacobiCfg, TeaLeafCfg and Halo2DCfg parameterize the apps.
	JacobiCfg  jacobi.Config
	TeaLeafCfg tealeaf.Config
	Halo2DCfg  halo2d.Config
	// Fig12Sizes is the Jacobi domain sweep (global NX x NY pairs).
	Fig12Sizes [][2]int
	// TSanCfg is the sanitizer configuration every measurement runs
	// under (cusan-bench -engine slow selects the reference walk here);
	// experiment-specific ablations override individual fields.
	TSanCfg tsan.Config
}

// DefaultConfig returns the benchmark defaults (scaled-down analogs of
// the paper's models; see DESIGN.md).
func DefaultConfig() Config {
	return Config{
		Ranks:      2,
		Runs:       2,
		Warmup:     1,
		Apps:       []App{Jacobi, TeaLeaf},
		JacobiCfg:  jacobi.DefaultConfig(),
		TeaLeafCfg: tealeaf.DefaultConfig(),
		Halo2DCfg:  halo2d.DefaultConfig(),
		Fig12Sizes: [][2]int{{64, 32}, {128, 64}, {256, 128}, {512, 256}, {1024, 512}},
	}
}

// ReducedConfig returns the scaled-down workload the perf harness and
// the top-level benchmarks share: large enough that overhead ratios
// keep the paper's shape, small enough that R repeats of every flavor
// fit a CI gate. Changing these sizes changes canonical BENCH params —
// refresh bench/baselines afterwards.
func ReducedConfig() Config {
	return Config{
		Ranks:      2,
		Runs:       1,
		Warmup:     0,
		JacobiCfg:  jacobi.Config{NX: 128, NY: 64, Iters: 50},
		TeaLeafCfg: tealeaf.Config{NX: 48, NY: 48, Iters: 20, K: 0.1},
		Halo2DCfg:  halo2d.Config{NX: 48, NY: 48, Iters: 40},
		Fig12Sizes: [][2]int{{64, 32}, {128, 64}, {256, 128}},
	}
}

// Measurement is one (app, flavor) data point.
type Measurement struct {
	App    App
	Flavor core.Flavor
	Wall   time.Duration
	RSS    int64 // modeled RSS, max over ranks
	Result *core.Result
	Runs   int
}

// runOnce executes the app once under the flavor and measures it.
func runOnce(app App, flavor core.Flavor, cfg Config, opts cusan.Options) (*Measurement, error) {
	return runOnceTSan(app, flavor, cfg, opts, cfg.TSanCfg)
}

// runOnceTSan is runOnce with an explicit sanitizer configuration
// (shadow-cell ablation).
func runOnceTSan(app App, flavor core.Flavor, cfg Config, opts cusan.Options, tcfg tsan.Config) (*Measurement, error) {
	var (
		res *core.Result
		err error
	)
	start := time.Now()
	switch app {
	case Jacobi:
		res, err = core.Run(core.Config{
			Flavor: flavor, Ranks: cfg.Ranks, Module: jacobi.Module(), CusanOpts: opts, TSanCfg: tcfg,
		}, func(s *core.Session) error {
			_, err := jacobi.Run(s, cfg.JacobiCfg)
			return err
		})
	case Halo2D:
		res, err = core.Run(core.Config{
			Flavor: flavor, Ranks: cfg.Ranks, Module: halo2d.AppModule(), CusanOpts: opts, TSanCfg: tcfg,
		}, func(s *core.Session) error {
			_, err := halo2d.Run(s, cfg.Halo2DCfg)
			return err
		})
	default:
		res, err = core.Run(core.Config{
			Flavor: flavor, Ranks: cfg.Ranks, Module: tealeaf.Module(), CusanOpts: opts, TSanCfg: tcfg,
		}, func(s *core.Session) error {
			_, err := tealeaf.Run(s, cfg.TeaLeafCfg)
			return err
		})
	}
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	if err := res.FirstError(); err != nil {
		return nil, err
	}
	var rss int64
	for i := range res.Ranks {
		if m := res.Ranks[i].ModeledRSS(); m > rss {
			rss = m
		}
	}
	return &Measurement{App: app, Flavor: flavor, Wall: wall, RSS: rss, Result: res}, nil
}

// Measure runs warmup + measured runs and returns the averaged point.
func Measure(app App, flavor core.Flavor, cfg Config, opts cusan.Options) (*Measurement, error) {
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := runOnce(app, flavor, cfg, opts); err != nil {
			return nil, err
		}
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	var acc *Measurement
	for i := 0; i < runs; i++ {
		m, err := runOnce(app, flavor, cfg, opts)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = m
		} else {
			acc.Wall += m.Wall
			if m.RSS > acc.RSS {
				acc.RSS = m.RSS
			}
		}
	}
	acc.Wall /= time.Duration(runs)
	acc.Runs = runs
	return acc, nil
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(x float64) string         { return fmt.Sprintf("%.2f", x) }
func mb(b int64) string           { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }
