package bench

import (
	"fmt"

	"cusango/internal/tsan"
)

// EngineAblation compares the shadow-range engines end to end: the
// batched page-walking engine (default), the batched engine with the
// per-fiber range cache disabled, and the granule-at-a-time reference
// walk that doubles as the differential oracle. The engine counters
// come from the cusan Table-I snapshot of rank 0.
func EngineAblation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Shadow engine — batched range engine vs. reference walk (Jacobi, MUST & CuSan)",
		Headers: []string{"engine", "wall", "rel vs slow", "pages", "granules", "fast%", "cache hit%"},
		Notes: []string{
			"fast% = interior granules stored via the full-mask fast path; slow engine reports no counters",
			"both engines produce identical race reports and shadow state (see internal/tsan differential tests)",
		},
	}
	variants := []struct {
		name string
		tcfg tsan.Config
	}{
		{"slow (reference)", tsan.Config{Engine: tsan.EngineSlow}},
		{"batched, no range cache", tsan.Config{DisableRangeCache: true}},
		{"batched (default)", tsan.Config{}},
	}
	var slowWall float64
	for _, v := range variants {
		tcfg := cfg.TSanCfg
		tcfg.Engine = v.tcfg.Engine
		tcfg.DisableRangeCache = v.tcfg.DisableRangeCache
		m, err := measureWithTSan(Jacobi, cfg, tcfg)
		if err != nil {
			return nil, err
		}
		if slowWall == 0 {
			slowWall = m.Wall.Seconds()
		}
		c := m.Result.Ranks[0].CudaCtrs
		fastPct, hitPct := "-", "-"
		if c.EngineGranules > 0 {
			fastPct = f2(100 * float64(c.EngineFastGranules) / float64(c.EngineGranules))
		}
		if lookups := c.RangeCacheHits + c.RangeCacheMisses; lookups > 0 {
			hitPct = f2(100 * float64(c.RangeCacheHits) / float64(lookups))
		}
		t.Rows = append(t.Rows, []string{
			v.name, secs(m.Wall),
			f2(m.Wall.Seconds() / slowWall),
			fmt.Sprintf("%d", c.EnginePages),
			fmt.Sprintf("%d", c.EngineGranules),
			fastPct, hitPct,
		})
	}
	return t, nil
}
