package bench

import (
	"fmt"
	"testing"

	"cusango/internal/campaign"
	"cusango/internal/testsuite"
	"cusango/internal/tsan"
)

// BenchmarkCampaign measures campaign dispatch of the chaos workload
// at increasing worker counts; b.N scales the seed list so each
// iteration is one full sweep.
func BenchmarkCampaign(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			jobs := testsuite.ChaosJobs(testsuite.Cases(), []uint64{1, 2, 3}, 0.05,
				[]tsan.Engine{tsan.EngineBatched})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := campaign.Run(jobs, testsuite.ExecuteJob,
					campaign.Options{Workers: workers})
				if len(rep.Records) != len(jobs) {
					b.Fatalf("%d records for %d jobs", len(rep.Records), len(jobs))
				}
			}
			b.ReportMetric(float64(len(jobs)), "jobs/op")
		})
	}
}

// TestCampaignScalingTable: the experiment runs clean and reports one
// row per worker count.
func TestCampaignScalingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos workload four times")
	}
	tab, err := CampaignScaling(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("row %v does not match headers %v", row, tab.Headers)
		}
	}
}
