package bench

import (
	"fmt"
	"strings"
	"testing"

	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/core"
	"cusango/internal/cusan"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Ranks:      2,
		Runs:       1,
		Warmup:     0,
		JacobiCfg:  jacobi.Config{NX: 64, NY: 32, Iters: 10},
		TeaLeafCfg: tealeaf.Config{NX: 32, NY: 32, Iters: 5, K: 0.1},
		Fig12Sizes: [][2]int{{32, 16}, {64, 32}},
	}
}

func TestMeasureVanillaAndFull(t *testing.T) {
	cfg := tinyConfig()
	for _, app := range []App{Jacobi, TeaLeaf} {
		base, err := Measure(app, core.Vanilla, cfg, cusan.Options{})
		if err != nil {
			t.Fatalf("%v vanilla: %v", app, err)
		}
		full, err := Measure(app, core.MUSTCuSan, cfg, cusan.Options{})
		if err != nil {
			t.Fatalf("%v full: %v", app, err)
		}
		if base.Wall <= 0 || full.Wall <= 0 {
			t.Fatalf("%v: non-positive wall times", app)
		}
		if full.RSS <= base.RSS {
			t.Errorf("%v: instrumented RSS (%d) should exceed vanilla (%d)",
				app, full.RSS, base.RSS)
		}
		if full.Result.TotalRaces() != 0 {
			t.Errorf("%v: benchmark workload raced: %d", app, full.Result.TotalRaces())
		}
	}
}

func TestFig10Table(t *testing.T) {
	tab, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 2 apps x (vanilla + 4 flavors)
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Fig. 10", "vanilla", "must+cusan", "Jacobi", "TeaLeaf", "36.06"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig11Table(t *testing.T) {
	tab, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Memory ratios must be >= 1 for instrumented flavors and largest
	// for the CuSan flavors (the paper's shape).
	parse := func(row []string) float64 {
		var x float64
		if _, err := fmtSscan(row[3], &x); err != nil {
			t.Fatalf("bad rel cell %q", row[3])
		}
		return x
	}
	for _, row := range tab.Rows {
		if rel := parse(row); rel < 0.99 {
			t.Errorf("memory ratio < 1: %v", row)
		}
	}
}

func TestTable1HasAllMetrics(t *testing.T) {
	tab, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 17 {
		t.Fatalf("rows = %d, want 12 Table I metrics + 5 shadow-engine rows", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Switch To Fiber", "AnnotateHappensBefore", "Memory Read Size",
		"Shadow pages touched", "Range-cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestEngineAblation(t *testing.T) {
	tab, err := EngineAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 engine variants", len(tab.Rows))
	}
	// The slow reference walk reports no engine counters; both batched
	// variants must.
	if tab.Rows[0][4] != "0" {
		t.Errorf("slow engine reported granules: %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:] {
		if row[4] == "0" {
			t.Errorf("batched variant reported no granules: %v", row)
		}
	}
	// The default batched engine hits the range cache on Jacobi's
	// repeated kernel-argument annotations; the no-cache variant cannot.
	if tab.Rows[1][6] != "-" && tab.Rows[1][6] != "0.00" {
		t.Errorf("no-cache variant reported cache hits: %v", tab.Rows[1])
	}
}

func TestFig12ScalesTrackedBytes(t *testing.T) {
	tab, err := Fig12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Tracked bytes must grow with the domain (the paper's right axis).
	var prev float64
	for i, row := range tab.Rows {
		var mbRead float64
		if _, err := fmtSscan(row[4], &mbRead); err != nil {
			t.Fatalf("bad MB cell %q", row[4])
		}
		if i > 0 && mbRead <= prev {
			t.Errorf("tracked bytes did not grow: %v -> %v", prev, mbRead)
		}
		prev = mbRead
	}
}

func TestAblationReducesTracking(t *testing.T) {
	cfg := tinyConfig()
	// Large enough that 4KiB boundary tracking is far below full
	// tracking (the tiny domain would make them indistinguishable).
	cfg.JacobiCfg = jacobi.Config{NX: 256, NY: 128, Iters: 10}
	tab, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var full, none, boundary float64
	for _, row := range tab.Rows {
		var mbW float64
		if _, err := fmtSscan(row[3], &mbW); err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		switch {
		case strings.Contains(row[0], "full"):
			full = mbW
		case strings.Contains(row[0], "no memory"):
			none = mbW
		case strings.Contains(row[0], "boundary"):
			boundary = mbW
		}
	}
	if none != 0 {
		t.Errorf("no-tracking variant tracked %v MB", none)
	}
	if full <= 0 {
		t.Errorf("full variant tracked nothing")
	}
	if boundary >= full || boundary <= 0 {
		t.Errorf("boundary variant tracked %v MB (full %v)", boundary, full)
	}
}

// fmtSscan parses a float table cell.
func fmtSscan(s string, x *float64) (int, error) {
	return fmt.Sscan(s, x)
}

func TestCellsAblation(t *testing.T) {
	tab, err := CellsAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (K=1,2,4)", len(tab.Rows))
	}
	var prevShadow float64
	for i, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("correct workload raced at %s cells: %s", row[0], row[4])
		}
		var shadow float64
		if _, err := fmtSscan(row[3], &shadow); err != nil {
			t.Fatalf("bad shadow cell %q", row[3])
		}
		if i > 0 && shadow <= prevShadow {
			t.Errorf("shadow footprint must grow with cells: %v -> %v", prevShadow, shadow)
		}
		prevShadow = shadow
	}
}
