// Package explore enumerates the schedule space of a controlled run
// (internal/sched) by stateless model checking: it repeatedly executes
// the program under a replayed choice prefix, reads the decision log the
// run produced, and branches on every untried alternative after the
// prefix. Enumeration is breadth-first over prefix length, so the first
// racy schedule found is a minimal one.
//
// Pruning is a conservative rank-granularity dynamic partial-order
// reduction: an alternative grant "B instead of A at decision i" is
// skipped when the log shows B granted later anyway and the activity
// window between the two grants is rank-disjoint from B's own execution
// segment — then the two orders commute and the alternative schedule is
// a permutation of one already explored. Poll stutters (defer granted
// again with no intervening activity) are pruned inside the controller
// by its sleep-set rule and surface here in Outcome.Forced.
//
// Naive mode disables both prunings (modulo a finite defer budget to
// keep poll loops bounded) and exists to differentially validate DPOR:
// both modes must agree exactly on which schedules are racy.
package explore

import (
	"fmt"

	"cusango/internal/sched"
)

// Options bounds one exploration.
type Options struct {
	// MaxSchedules caps the number of executed schedules; <= 0 means
	// unlimited. Exceeding the cap sets Result.Complete = false.
	MaxSchedules int
	// PreemptionBound, when > 0, skips prefixes with more than this many
	// non-default choices (Chess-style iterative bounding); skipped
	// branches set Result.Complete = false. 0 disables the bound.
	PreemptionBound int
	// Naive disables DPOR pruning (full enumeration), for differential
	// testing.
	Naive bool
	// DeferBudget is forwarded to the controller in naive mode: how many
	// consecutive no-activity poll defers to allow before forcing
	// completion. Ignored (0: sleep-set rule) unless Naive.
	DeferBudget int
}

// Outcome is what one controlled execution reports back to the explorer.
type Outcome struct {
	// Races is the run's race-report count.
	Races int64
	// Stuck marks a scheduler-detected deadlock on this schedule.
	Stuck bool
	// Err is a non-schedule failure (checker error, replay divergence).
	Err error
	// Log and Acts are the controller's decision and activity logs.
	Log  []sched.Point
	Acts []sched.Act
	// Forced counts stutter-pruned poll defers (sleep-set rule).
	Forced int
	// Budget marks a schedule cut short by the controller's step budget
	// (supervision): its tail is unexplored, so the exploration is
	// incomplete but the run is not an error.
	Budget bool
}

// Result summarizes an exploration.
type Result struct {
	// Explored is the number of schedules actually executed.
	Explored int
	// Pruned counts branches proven redundant (DPOR commutation plus
	// stutter-forced poll completions).
	Pruned int
	// Racy is the number of explored schedules with at least one race.
	Racy int
	// MinRacySpec is the replayable spec of the first (minimal) racy
	// schedule, "" if none.
	MinRacySpec string
	// DefaultRaces is the race count of the default (empty-prefix)
	// schedule.
	DefaultRaces int64
	// Stuck counts schedules that deadlocked.
	Stuck int
	// Budgeted counts schedules cut short by the controller's step
	// budget; any makes the exploration incomplete.
	Budgeted int
	// Complete reports that the whole schedule space was covered: no
	// budget exhaustion, no preemption-bound skip, no failed run.
	Complete bool
	// Errs holds distinct run failures (capped).
	Errs []string
}

func (r *Result) String() string {
	if r.Racy == 0 && r.Complete {
		return fmt.Sprintf("race-free across all %d schedules (%d pruned by DPOR)", r.Explored, r.Pruned)
	}
	if r.Racy > 0 {
		return fmt.Sprintf("racy: %d/%d schedules race (%d pruned), minimal schedule %q",
			r.Racy, r.Explored, r.Pruned, r.MinRacySpec)
	}
	return fmt.Sprintf("race-free in %d explored schedules (incomplete; %d pruned)", r.Explored, r.Pruned)
}

const maxErrs = 8

// Run explores the schedule space of run, a deterministic controlled
// execution of the program under the given choice prefix (defaults past
// the prefix). run must build a fresh controller per call.
func Run(opt Options, run func(prefix []sched.Choice) Outcome) Result {
	res := Result{Complete: true}
	// Shortest-prefix-first queue (children are always strictly longer
	// than their parent, so the depth cursor only moves forward); this is
	// what makes the first racy schedule found a minimal one.
	queue := map[int][][]sched.Choice{0: {nil}}
	pending, depth := 1, 0
	for pending > 0 {
		if opt.MaxSchedules > 0 && res.Explored >= opt.MaxSchedules {
			res.Complete = false
			break
		}
		for len(queue[depth]) == 0 {
			depth++
		}
		prefix := queue[depth][0]
		queue[depth] = queue[depth][1:]
		pending--
		out := run(prefix)
		res.Explored++
		res.Pruned += out.Forced
		if res.Explored == 1 {
			res.DefaultRaces = out.Races
		}
		if out.Err != nil {
			res.Complete = false
			if len(res.Errs) < maxErrs {
				res.Errs = append(res.Errs, fmt.Sprintf("schedule %q: %v", sched.FormatSpec(out.Log), out.Err))
			}
			continue
		}
		if out.Budget {
			// The schedule was cut off mid-flight: its tail (and any
			// branches in it) is unexplored, so coverage is incomplete,
			// but the truncation is a supervision verdict, not a failure.
			res.Budgeted++
			res.Complete = false
			continue
		}
		if out.Stuck {
			res.Stuck++
		}
		if out.Races > 0 {
			res.Racy++
			if res.MinRacySpec == "" {
				res.MinRacySpec = sched.FormatSpec(out.Log)
			}
		}
		for i := len(prefix); i < len(out.Log); i++ {
			p := &out.Log[i]
			for j := 1; j < p.Arity; j++ {
				child := append(sched.Choices(out.Log[:i]), sched.Choice{Kind: p.Kind, Index: j})
				if opt.PreemptionBound > 0 && sched.NonDefault(child) > opt.PreemptionBound {
					res.Complete = false
					continue
				}
				if !opt.Naive && p.Kind == sched.Grant && canPrune(&out, i, j) {
					res.Pruned++
					continue
				}
				queue[i+1] = append(queue[i+1], child)
				pending++
			}
		}
	}
	return res
}

// canPrune reports whether granting alternative j at Grant point i is
// provably equivalent to the explored schedule: the alternative settler
// b is granted later in the log anyway, nothing in the window between
// the two grants touches b, and b's own execution segment is
// rank-disjoint from the window — so the two orders commute.
func canPrune(out *Outcome, i, j int) bool {
	g := &out.Log[i]
	if j >= len(g.Vals) {
		return false
	}
	b := g.Vals[j]
	jpos := -1
	for k := i + 1; k < len(out.Log); k++ {
		p := &out.Log[k]
		if p.Kind == sched.Grant && p.Chosen < len(p.Vals) && p.Vals[p.Chosen] == b {
			jpos = k
			break
		}
	}
	if jpos < 0 {
		return false
	}
	// Window acts: everything between the two grant decisions. Any
	// involvement of b — or a wildcard target — kills commutation.
	involved := map[int]bool{}
	for _, a := range out.Acts[g.ActOff:out.Log[jpos].ActOff] {
		if a.Actor == b || a.Target == b || a.Target == -1 {
			return false
		}
		involved[a.Actor] = true
		involved[a.Target] = true
	}
	// b's segment: from its grant to the next grant (or run end). It must
	// not touch any rank the window involved.
	end := len(out.Acts)
	for k := jpos + 1; k < len(out.Log); k++ {
		if out.Log[k].Kind == sched.Grant {
			end = out.Log[k].ActOff
			break
		}
	}
	for _, a := range out.Acts[out.Log[jpos].ActOff:end] {
		if a.Target == -1 || involved[a.Actor] || involved[a.Target] {
			return false
		}
	}
	return true
}
