package explore

import (
	"sort"
	"sync"
	"testing"

	"cusango/internal/sched"
)

// Micro-program harness: tiny rank programs against a bare controller
// and an in-test mailbox, with hand-counted schedule spaces. These pin
// the enumeration and DPOR arithmetic exactly — explored and pruned
// counts are asserted, not just verdicts.

type micro struct {
	ctl  *sched.Controller
	mu   sync.Mutex
	msgs map[int][]int // dest -> sources, in send order
}

// send is non-blocking (buffered transport analog).
func (m *micro) send(src, dst int) {
	m.mu.Lock()
	m.msgs[dst] = append(m.msgs[dst], src)
	m.mu.Unlock()
	m.ctl.Activity(src, dst)
}

// recvAny is a wildcard receive: a Match decision over the distinct
// sources with a pending message (parks until one exists). Returns the
// matched source, or -1 on abort/stuck.
func (m *micro) recvAny(rank int) int {
	var srcs []int
	idx, err := m.ctl.Settle(rank, sched.Match, "recv", func() []sched.Option {
		m.mu.Lock()
		defer m.mu.Unlock()
		seen := make(map[int]bool)
		srcs = srcs[:0]
		for _, s := range m.msgs[rank] {
			if !seen[s] {
				seen[s] = true
				srcs = append(srcs, s)
			}
		}
		sort.Ints(srcs)
		opts := make([]sched.Option, len(srcs))
		for i, s := range srcs {
			opts[i] = sched.Opt("src", s)
		}
		return opts
	})
	if err != nil {
		return -1
	}
	src := srcs[idx]
	m.mu.Lock()
	for i, s := range m.msgs[rank] {
		if s == src {
			m.msgs[rank] = append(m.msgs[rank][:i], m.msgs[rank][i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	return src
}

// poll is a Test analog: parks while no message is pending, then
// chooses complete (consume, true) versus defer (false).
func (m *micro) poll(rank int) bool {
	idx, err := m.ctl.Settle(rank, sched.Poll, "poll", func() []sched.Option {
		m.mu.Lock()
		defer m.mu.Unlock()
		if len(m.msgs[rank]) == 0 {
			return nil
		}
		return []sched.Option{sched.Opt("complete", m.msgs[rank][0]), sched.DeferOpt()}
	})
	if err != nil || idx == 1 {
		return false
	}
	m.mu.Lock()
	m.msgs[rank] = m.msgs[rank][1:]
	m.mu.Unlock()
	return true
}

type microProgram struct {
	name string
	n    int
	// body runs one rank and returns its rank-local observation (matched
	// sources, poll outcomes) — the only thing a racy-predicate may read,
	// mirroring that race detection is rank-local.
	body func(m *micro, rank int) []int
	racy func(obs [][]int) bool

	// Hand-counted schedule spaces.
	wantExplored, wantPruned           int // DPOR + sleep-set
	wantNaiveExplored, wantNaivePruned int // full enumeration (defer budget 2)
	wantRacy                           bool
}

func (p microProgram) run(prefix []sched.Choice, naive bool) Outcome {
	rep := sched.NewReplayer(prefix)
	ctl := sched.NewController(p.n, rep)
	if naive {
		ctl.SetDeferBudget(2)
	}
	m := &micro{ctl: ctl, msgs: make(map[int][]int)}
	obs := make([][]int, p.n)
	var wg sync.WaitGroup
	for r := 0; r < p.n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			obs[r] = p.body(m, r)
			ctl.Finish(r)
		}(r)
	}
	wg.Wait()
	out := Outcome{
		Log:    ctl.Log(),
		Acts:   ctl.Acts(),
		Forced: ctl.Forced(),
		Stuck:  ctl.Stuck(),
		Err:    rep.Err(),
	}
	if p.racy != nil && p.racy(obs) {
		out.Races = 1
	}
	return out
}

func microPrograms() []microProgram {
	return []microProgram{
		{
			// One sender, one wildcard receiver: a single schedule, no
			// choices with arity > 1 (the grant and the match are forced).
			name: "pair",
			n:    2,
			body: func(m *micro, rank int) []int {
				if rank == 0 {
					m.send(0, 1)
					return nil
				}
				return []int{m.recvAny(1)}
			},
			wantExplored: 1, wantPruned: 0,
			wantNaiveExplored: 1, wantNaivePruned: 0,
		},
		{
			// Two senders race into one double wildcard receiver: the first
			// match is a real arity-2 choice, the second is forced. Both
			// orders are behaviorally distinct (different observation), so
			// DPOR must not prune: 2 schedules either way. Racy iff source
			// 1 is matched first.
			name: "wildcard-race",
			n:    3,
			body: func(m *micro, rank int) []int {
				switch rank {
				case 0:
					m.send(0, 2)
				case 1:
					m.send(1, 2)
				default:
					return []int{m.recvAny(2), m.recvAny(2)}
				}
				return nil
			},
			racy:         func(obs [][]int) bool { return obs[2][0] == 1 },
			wantExplored: 2, wantPruned: 0,
			wantNaiveExplored: 2, wantNaivePruned: 0,
			wantRacy: true,
		},
		{
			// Poll loop: complete now, or defer once and be stutter-forced
			// on re-settle (no intervening activity). Sleep set: 2 schedules
			// + 1 forced completion. Naive (defer budget 2) additionally
			// explores the double defer before forcing: 3 schedules.
			// Racy iff the poll ever deferred — the differential proves the
			// sleep-set rule keeps the deferred-schedule behavior.
			name: "poll-stutter",
			n:    2,
			body: func(m *micro, rank int) []int {
				if rank == 0 {
					m.send(0, 1)
					return nil
				}
				defers := 0
				for !m.poll(1) {
					defers++
				}
				return []int{defers}
			},
			racy:         func(obs [][]int) bool { return obs[1][0] > 0 },
			wantExplored: 2, wantPruned: 1,
			wantNaiveExplored: 3, wantNaivePruned: 1,
			wantRacy: true,
		},
		{
			// Two fully independent pairs: the grant order between them is
			// an arity-2 choice, but the two orders commute (rank-disjoint
			// windows), so DPOR prunes the alternative: 1 schedule vs the
			// naive 2.
			name: "disjoint-pairs",
			n:    4,
			body: func(m *micro, rank int) []int {
				switch rank {
				case 0:
					m.send(0, 1)
				case 2:
					m.send(2, 3)
				case 1:
					return []int{m.recvAny(1)}
				case 3:
					return []int{m.recvAny(3)}
				}
				return nil
			},
			wantExplored: 1, wantPruned: 1,
			wantNaiveExplored: 2, wantNaivePruned: 0,
		},
		{
			// Dependent chain: granting r2 first changes its candidate set
			// (r1's send to r2 has not happened yet), so the grant windows
			// are NOT disjoint and DPOR must keep the branch. Spaces:
			// default (r1 first: r2 then picks among {0,1}) = 2 schedules,
			// plus the r2-first order = 3 in both modes. Racy iff r2's
			// first match is source 1.
			name: "dependent-grant",
			n:    3,
			body: func(m *micro, rank int) []int {
				switch rank {
				case 0:
					m.send(0, 1)
					m.send(0, 2)
				case 1:
					src := m.recvAny(1)
					m.send(1, 2)
					return []int{src}
				default:
					return []int{m.recvAny(2), m.recvAny(2)}
				}
				return nil
			},
			racy:         func(obs [][]int) bool { return obs[2][0] == 1 },
			wantExplored: 3, wantPruned: 0,
			wantNaiveExplored: 3, wantNaivePruned: 0,
			wantRacy: true,
		},
	}
}

// TestMicroScheduleSpaces pins the exact explored/pruned counts of each
// hand-counted micro-program, in both DPOR and naive mode.
func TestMicroScheduleSpaces(t *testing.T) {
	for _, p := range microPrograms() {
		dpor := Run(Options{MaxSchedules: 64}, func(pre []sched.Choice) Outcome { return p.run(pre, false) })
		naive := Run(Options{MaxSchedules: 64, Naive: true, DeferBudget: 2},
			func(pre []sched.Choice) Outcome { return p.run(pre, true) })
		if len(dpor.Errs) != 0 || len(naive.Errs) != 0 {
			t.Errorf("%s: run errors: dpor=%v naive=%v", p.name, dpor.Errs, naive.Errs)
			continue
		}
		if dpor.Explored != p.wantExplored || dpor.Pruned != p.wantPruned {
			t.Errorf("%s: DPOR explored/pruned = %d/%d, want %d/%d",
				p.name, dpor.Explored, dpor.Pruned, p.wantExplored, p.wantPruned)
		}
		if naive.Explored != p.wantNaiveExplored || naive.Pruned != p.wantNaivePruned {
			t.Errorf("%s: naive explored/pruned = %d/%d, want %d/%d",
				p.name, naive.Explored, naive.Pruned, p.wantNaiveExplored, p.wantNaivePruned)
		}
		if !dpor.Complete || !naive.Complete {
			t.Errorf("%s: incomplete exploration (dpor=%v naive=%v)", p.name, dpor.Complete, naive.Complete)
		}
		// Differential: pruning must never drop a racy schedule.
		if (dpor.Racy > 0) != p.wantRacy {
			t.Errorf("%s: DPOR racy=%d, want racy=%v", p.name, dpor.Racy, p.wantRacy)
		}
		if (naive.Racy > 0) != p.wantRacy {
			t.Errorf("%s: naive racy=%d, want racy=%v", p.name, naive.Racy, p.wantRacy)
		}
		if dpor.Stuck != 0 || naive.Stuck != 0 {
			t.Errorf("%s: stuck schedules: dpor=%d naive=%d", p.name, dpor.Stuck, naive.Stuck)
		}
	}
}

// TestMicroDeterministicReplay: every micro-program's schedules replay
// to identical logs from their specs.
func TestMicroDeterministicReplay(t *testing.T) {
	for _, p := range microPrograms() {
		out := p.run(nil, false)
		if out.Err != nil {
			t.Fatalf("%s: %v", p.name, out.Err)
		}
		spec := sched.FormatSpec(out.Log)
		prefix, err := sched.ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: ParseSpec(%q): %v", p.name, spec, err)
		}
		for i := 0; i < 3; i++ {
			again := p.run(prefix, false)
			if got := sched.FormatSpec(again.Log); got != spec || again.Races != out.Races {
				t.Fatalf("%s: replay %d diverged: %q races=%d, want %q races=%d",
					p.name, i, got, again.Races, spec, out.Races)
			}
		}
	}
}

// TestMinimalRacySchedule: BFS order makes the first racy schedule a
// shortest-prefix one.
func TestMinimalRacySchedule(t *testing.T) {
	for _, p := range microPrograms() {
		if !p.wantRacy {
			continue
		}
		res := Run(Options{MaxSchedules: 64}, func(pre []sched.Choice) Outcome { return p.run(pre, false) })
		if res.MinRacySpec == "" {
			t.Errorf("%s: racy program has no minimal racy spec", p.name)
			continue
		}
		min, err := sched.ParseSpec(res.MinRacySpec)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		// Re-verify minimality by naive enumeration: no racy schedule has
		// fewer non-default choices.
		naive := Run(Options{MaxSchedules: 64, Naive: true, DeferBudget: 2},
			func(pre []sched.Choice) Outcome { return p.run(pre, true) })
		if naiveMin, err := sched.ParseSpec(naive.MinRacySpec); err == nil {
			if sched.NonDefault(naiveMin) < sched.NonDefault(min) {
				t.Errorf("%s: DPOR minimal %q has more deviations than naive minimal %q",
					p.name, res.MinRacySpec, naive.MinRacySpec)
			}
		}
	}
}

// TestBudgetStopsExploration: a budget of 1 explores exactly the
// default schedule and reports incompleteness when branches remained.
func TestBudgetStopsExploration(t *testing.T) {
	p := microPrograms()[1] // wildcard-race: 2 schedules
	res := Run(Options{MaxSchedules: 1}, func(pre []sched.Choice) Outcome { return p.run(pre, false) })
	if res.Explored != 1 {
		t.Fatalf("explored %d, want 1", res.Explored)
	}
	if res.Complete {
		t.Fatal("budget-capped run claims completeness")
	}
}

// TestPreemptionBound: bounding non-default choices to 0 via bound 1 on
// the poll program still explores the single-deviation schedules but
// not the double-defer naive tail.
func TestPreemptionBound(t *testing.T) {
	p := microPrograms()[2] // poll-stutter
	res := Run(Options{MaxSchedules: 64, Naive: true, DeferBudget: 2, PreemptionBound: 1},
		func(pre []sched.Choice) Outcome { return p.run(pre, true) })
	// Naive space is 3 (default, one defer, two defers); bound 1 skips
	// the two-defer schedule.
	if res.Explored != 2 {
		t.Fatalf("explored %d, want 2", res.Explored)
	}
	if res.Complete {
		t.Fatal("bounded run claims completeness despite skipped branches")
	}
}

// TestStuckDetection: a receiver with no sender deadlocks; the
// controller must detect it rather than hang, and the explorer reports
// it.
func TestStuckDetection(t *testing.T) {
	p := microProgram{
		name: "orphan-recv",
		n:    2,
		body: func(m *micro, rank int) []int {
			if rank == 0 {
				return nil // sends nothing
			}
			return []int{m.recvAny(1)}
		},
	}
	res := Run(Options{MaxSchedules: 8}, func(pre []sched.Choice) Outcome { return p.run(pre, false) })
	if res.Stuck != 1 || res.Explored != 1 {
		t.Fatalf("stuck=%d explored=%d, want 1/1", res.Stuck, res.Explored)
	}
}
