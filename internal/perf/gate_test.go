package perf

import (
	"testing"

	"cusango/internal/cusan"
)

// queueScenario returns a scenario whose successive Run calls pop
// values off the queue (repeating the last one when exhausted), so a
// test can script "regress on the first pass, recover on the retry".
func queueScenario(name string, vals []float64, ctrs *cusan.Counters) Scenario {
	i := 0
	return Scenario{
		Name:    name,
		Doc:     "synthetic",
		Params:  "synthetic",
		Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			v := vals[len(vals)-1]
			if i < len(vals) {
				v = vals[i]
			}
			i++
			return map[string]float64{"m": v}, ctrs, nil
		},
	}
}

// one repeat, zero warmup: every Gate pass consumes exactly one queue
// entry, so the scripts below are deterministic.
var gateRC = RunConfig{Repeats: 1, Warmup: -1}

func mkBaseline(t *testing.T, sc Scenario) map[string]*Result {
	t.Helper()
	r, err := RunScenario(sc, gateRC)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Result{sc.Name: r}
}

func TestGateClean(t *testing.T) {
	base := mkBaseline(t, queueScenario("s", []float64{1.0}, nil))
	sc := queueScenario("s", []float64{1.0}, nil)
	out, err := Gate(base, []Scenario{sc}, GateOptions{Run: gateRC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass() || len(out.Retried) != 0 {
		t.Fatalf("clean gate: pass=%v retried=%v", out.Pass(), out.Retried)
	}
}

func TestGateFlukeCleared(t *testing.T) {
	base := mkBaseline(t, queueScenario("s", []float64{1.0}, nil))
	// First pass regresses (10x), the confirmation run is clean again.
	sc := queueScenario("s", []float64{10.0, 1.0}, nil)
	out, err := Gate(base, []Scenario{sc}, GateOptions{Run: gateRC, Retries: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass() {
		t.Fatalf("fluke should be cleared, got confirmed=%v", out.Confirmed)
	}
	if len(out.Flukes) != 1 || out.Flukes[0].Metric != "m" {
		t.Fatalf("fluke not recorded: %+v", out.Flukes)
	}
	if len(out.Retried) != 1 || out.Retried[0] != "s" {
		t.Fatalf("retried = %v", out.Retried)
	}
}

func TestGateConfirmedRegression(t *testing.T) {
	base := mkBaseline(t, queueScenario("s", []float64{1.0}, nil))
	// Regresses on the first pass AND the retry: confirmed.
	sc := queueScenario("s", []float64{10.0, 10.0}, nil)
	out, err := Gate(base, []Scenario{sc}, GateOptions{Run: gateRC, Retries: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pass() {
		t.Fatalf("persistent regression must fail the gate")
	}
	if len(out.Confirmed) != 1 || out.Confirmed[0].Metric != "m" {
		t.Fatalf("confirmed = %+v", out.Confirmed)
	}
	if len(out.Flukes) != 0 {
		t.Fatalf("unexpected flukes: %+v", out.Flukes)
	}
}

func TestGateMultipleRetriesAllMustRegress(t *testing.T) {
	base := mkBaseline(t, queueScenario("s", []float64{1.0}, nil))
	// Regresses twice, clears on the final confirmation pass: a metric
	// must regress in EVERY pass to be confirmed.
	sc := queueScenario("s", []float64{10.0, 10.0, 1.0}, nil)
	out, err := Gate(base, []Scenario{sc}, GateOptions{Run: gateRC, Retries: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass() {
		t.Fatalf("metric cleared on pass 3, gate should pass; confirmed=%v", out.Confirmed)
	}
	if len(out.Flukes) != 1 {
		t.Fatalf("flukes = %+v", out.Flukes)
	}
}

func TestGateDriftNotRetriedAway(t *testing.T) {
	base := mkBaseline(t, queueScenario("s", []float64{1.0}, &cusan.Counters{KernelCalls: 5}))
	// Same timings, drifted counters: deterministic finding, no retry
	// can clear it.
	sc := queueScenario("s", []float64{1.0}, &cusan.Counters{KernelCalls: 6})
	out, err := Gate(base, []Scenario{sc}, GateOptions{Run: gateRC, Retries: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pass() {
		t.Fatalf("counter drift must fail the gate")
	}
	if len(out.Drifts) != 1 {
		t.Fatalf("drifts = %+v", out.Drifts)
	}
	if len(out.Retried) != 0 {
		t.Fatalf("drift alone must not trigger metric retries, got %v", out.Retried)
	}
}
