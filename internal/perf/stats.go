package perf

import "sort"

// Median returns the middle of the sorted samples (average of the two
// middles for even counts); 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median, unscaled
// (no 1.4826 normal-consistency factor — the comparator multiplies it
// by an explicit per-metric factor instead). 0 for fewer than two
// samples: a single observation carries no spread information.
func MAD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}

// Summarize computes the robust summary over the repeat samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return Summary{
		Median: Median(xs),
		MAD:    MAD(xs),
		Min:    min,
		Max:    max,
		Mean:   sum / float64(len(xs)),
	}
}
