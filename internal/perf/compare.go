package perf

import (
	"bytes"
	"fmt"
	"math"
	"sort"
)

// Comparison statuses.
const (
	StatusOK           = "ok"          // within the noise envelope
	StatusRegression   = "regression"  // outside, in the worse direction
	StatusImprovement  = "improvement" // outside, in the better direction
	StatusZeroBaseline = "zero-base"   // baseline median 0, ratio undefined
	StatusNoBaseline   = "no-baseline" // scenario/metric absent from baseline
	StatusNoCurrent    = "no-current"  // scenario/metric absent from fresh run
)

// Per-class default thresholds. A metric regresses when its fresh
// median lands outside
//
//	base.Median * (1 ± relTol) ± madMult * base.MAD
//
// in the worse direction: the relative tolerance absorbs systematic
// drift (different runner generations), the MAD term absorbs the
// run-to-run jitter the baseline itself exhibited. Count/bytes metrics
// are deterministic, so their envelope is (nearly) zero and drift in
// either direction is a finding.
var classDefaults = map[Class]struct {
	relTol, madMult float64
}{
	ClassRatio: {0.25, 3},
	ClassCount: {0.001, 0},
	ClassBytes: {0.001, 0},
	ClassTime:  {0.30, 4},
	ClassRate:  {0.30, 4},
}

// CompareOptions tunes the comparator.
type CompareOptions struct {
	// RelTol, when > 0, overrides every gated metric's relative
	// tolerance.
	RelTol float64
	// MADMult, when >= 0, overrides every gated metric's MAD
	// multiplier (use < 0 for per-metric defaults).
	MADMult float64
	// Strict also gates ClassTime/ClassRate metrics (off by default:
	// absolute timings do not transfer between machines, so baselines
	// recorded elsewhere would flap).
	Strict bool
}

// DefaultCompareOptions returns the per-metric-defaults configuration.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{RelTol: 0, MADMult: -1}
}

// thresholds resolves the effective tolerance pair for a metric.
func (opt CompareOptions) thresholds(spec MetricSpec) (relTol, madMult float64) {
	def := classDefaults[spec.Class]
	relTol, madMult = def.relTol, def.madMult
	if spec.RelTol > 0 {
		relTol = spec.RelTol
	}
	if spec.MADMult > 0 {
		madMult = spec.MADMult
	}
	if opt.RelTol > 0 {
		relTol = opt.RelTol
	}
	if opt.MADMult >= 0 {
		madMult = opt.MADMult
	}
	return relTol, madMult
}

// gated reports whether the metric participates in gating.
func (opt CompareOptions) gated(spec MetricSpec) bool {
	if spec.Trend {
		return false
	}
	switch spec.Class {
	case ClassRatio, ClassCount, ClassBytes:
		return true
	default:
		return opt.Strict
	}
}

// MetricDelta is one metric's baseline-vs-fresh comparison.
type MetricDelta struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Class    Class   `json:"class"`
	Gated    bool    `json:"gated"`
	Base     float64 `json:"base"` // baseline median
	BaseMAD  float64 `json:"base_mad"`
	Cur      float64 `json:"cur"` // fresh median
	// RelChange is (cur-base)/base, NaN-safe (0 when base is 0).
	RelChange float64 `json:"rel_change"`
	// Bound is the envelope edge the fresh median was judged against
	// (the worse-direction edge).
	Bound  float64 `json:"bound"`
	Status string  `json:"status"`
}

func (d MetricDelta) String() string {
	return fmt.Sprintf("%-11s %-18s %-32s base=%-12.4g cur=%-12.4g %+6.1f%% bound=%.4g",
		d.Status, d.Scenario, d.Metric, d.Base, d.Cur, 100*d.RelChange, d.Bound)
}

// Drift records a canonical-section mismatch between baseline and
// fresh run — deterministic facts that changed, which no tolerance can
// excuse.
type Drift struct {
	Scenario string `json:"scenario"`
	Detail   string `json:"detail"`
}

// Comparison aggregates a full compare pass.
type Comparison struct {
	Deltas []MetricDelta `json:"deltas"`
	Drifts []Drift       `json:"drifts"`
}

// Regressions returns the gated deltas that regressed.
func (c *Comparison) Regressions() []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Gated && d.Status == StatusRegression {
			out = append(out, d)
		}
	}
	return out
}

// Clean reports whether the comparison found no gated regression and
// no canonical drift.
func (c *Comparison) Clean() bool {
	return len(c.Regressions()) == 0 && len(c.Drifts) == 0
}

// Compare diffs fresh scenario results against baselines. Scenarios
// present on only one side produce informational no-baseline /
// no-current deltas (a new scenario must not break the gate; a
// retired one is caught by baseline hygiene, not CI).
func Compare(base, cur map[string]*Result, opt CompareOptions) *Comparison {
	cmp := &Comparison{}
	names := make([]string, 0, len(base)+len(cur))
	seen := map[string]bool{}
	for n := range base {
		names = append(names, n)
		seen[n] = true
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := base[name], cur[name]
		switch {
		case c == nil:
			cmp.Deltas = append(cmp.Deltas, MetricDelta{
				Scenario: name, Metric: "*", Status: StatusNoCurrent,
			})
		case b == nil:
			cmp.Deltas = append(cmp.Deltas, MetricDelta{
				Scenario: name, Metric: "*", Status: StatusNoBaseline,
			})
		default:
			compareScenario(cmp, b, c, opt)
		}
	}
	return cmp
}

func compareScenario(cmp *Comparison, base, cur *Result, opt CompareOptions) {
	name := base.Canonical.Scenario
	cmp.Drifts = append(cmp.Drifts, canonicalDrift(base, cur)...)
	for _, spec := range base.Canonical.Metrics {
		bs, bok := base.SummaryOf(spec.Name)
		cs, cok := cur.SummaryOf(spec.Name)
		d := MetricDelta{
			Scenario: name,
			Metric:   spec.Name,
			Class:    spec.Class,
			Gated:    opt.gated(spec),
		}
		switch {
		case !bok:
			d.Status, d.Gated = StatusNoBaseline, false
		case !cok:
			// A metric the baseline promises but the fresh run did not
			// produce is a harness defect — gate it.
			d.Status = StatusRegression
			d.Base, d.BaseMAD = bs.Median, bs.MAD
		default:
			d.Base, d.BaseMAD, d.Cur = bs.Median, bs.MAD, cs.Median
			d.RelChange = relChange(bs.Median, cs.Median)
			d.Status, d.Bound = judge(spec, bs, cs, opt)
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
}

// judge applies the noise model to one metric.
func judge(spec MetricSpec, base, cur Summary, opt CompareOptions) (status string, bound float64) {
	relTol, madMult := opt.thresholds(spec)
	exact := spec.Class == ClassCount || spec.Class == ClassBytes

	if base.Median == 0 {
		if cur.Median == 0 {
			return StatusOK, 0
		}
		if exact {
			// A deterministic quantity that was zero and no longer is —
			// drift, whatever the magnitude.
			return StatusRegression, 0
		}
		return StatusZeroBaseline, 0
	}

	slack := math.Abs(base.Median)*relTol + madMult*base.MAD
	if exact {
		// Deterministic metrics drift in either direction; both are
		// findings (e.g. an event silently not counted "improves" the
		// count).
		bound = base.Median + slack
		if math.Abs(cur.Median-base.Median) > slack {
			return StatusRegression, bound
		}
		return StatusOK, bound
	}

	worse := cur.Median > base.Median+slack // lower is better
	better := cur.Median < base.Median-slack
	bound = base.Median + slack
	if spec.Better == BetterHigher {
		worse, better = cur.Median < base.Median-slack, cur.Median > base.Median+slack
		bound = base.Median - slack
	}
	switch {
	case worse:
		return StatusRegression, bound
	case better:
		return StatusImprovement, bound
	default:
		return StatusOK, bound
	}
}

func relChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

// canonicalDrift compares the deterministic sections field by field so
// the report names what moved instead of dumping two JSON blobs.
func canonicalDrift(base, cur *Result) []Drift {
	name := base.Canonical.Scenario
	var out []Drift
	if base.Canonical.V != cur.Canonical.V || base.Canonical.Format != cur.Canonical.Format {
		out = append(out, Drift{name, fmt.Sprintf("format %s/v%d vs %s/v%d",
			base.Canonical.Format, base.Canonical.V, cur.Canonical.Format, cur.Canonical.V)})
	}
	if base.Canonical.Params != cur.Canonical.Params {
		out = append(out, Drift{name, fmt.Sprintf("params %q vs %q",
			base.Canonical.Params, cur.Canonical.Params)})
	}
	if !metricSpecsEqual(base.Canonical.Metrics, cur.Canonical.Metrics) {
		out = append(out, Drift{name, "metric catalog changed (refresh the baseline)"})
	}
	if d := countersDrift(base, cur); d != "" {
		out = append(out, Drift{name, d})
	}
	return out
}

func metricSpecsEqual(a, b []MetricSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countersDrift byte-compares the counter snapshots (both sides
// marshal deterministically) and names the first differing field.
func countersDrift(base, cur *Result) string {
	bc, cc := base.Canonical.Counters, cur.Canonical.Counters
	switch {
	case bc == nil && cc == nil:
		return ""
	case bc == nil || cc == nil:
		return "counter snapshot appeared/disappeared"
	}
	bb, err1 := base.CanonicalJSON()
	cb, err2 := cur.CanonicalJSON()
	if err1 != nil || err2 != nil || !bytes.Equal(bb, cb) {
		for _, f := range counterFields(bc, cc) {
			return "counters drift: " + f
		}
		// Canonical bytes differ for a non-counter reason already
		// reported above.
		return ""
	}
	return ""
}
