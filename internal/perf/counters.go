package perf

import (
	"encoding/json"
	"fmt"
	"sort"

	"cusango/internal/cusan"
)

// counterFields lists "name: base -> cur" strings for every counter
// field that differs between the two snapshots, sorted by field name.
// Both snapshots go through their JSON encoding so the comparison
// tracks exactly what the canonical section serializes.
func counterFields(base, cur *cusan.Counters) []string {
	bm, cm := counterMap(base), counterMap(cur)
	names := make([]string, 0, len(bm))
	for n := range bm {
		names = append(names, n)
	}
	for n := range cm {
		if _, ok := bm[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []string
	for _, n := range names {
		if bm[n] != cm[n] {
			out = append(out, fmt.Sprintf("%s: %v -> %v", n, bm[n], cm[n]))
		}
	}
	return out
}

func counterMap(c *cusan.Counters) map[string]float64 {
	out := map[string]float64{}
	if c == nil {
		return out
	}
	b, err := json.Marshal(c)
	if err != nil {
		return out
	}
	_ = json.Unmarshal(b, &out)
	return out
}
