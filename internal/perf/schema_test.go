package perf

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cusango/internal/cusan"
)

var update = flag.Bool("update", false, "rewrite the golden BENCH file")

// goldenResult is a fully-pinned Result: every field fixed, so its
// encoding is a pure function of the schema. If this test breaks, the
// on-disk format changed — bump FormatVersion and refresh every
// committed baseline, or revert the schema change.
func goldenResult() *Result {
	return &Result{
		Canonical: Canonical{
			V:        FormatVersion,
			Format:   Format,
			Scenario: "golden",
			Params:   "app=golden nx=8 ny=4 iters=2",
			Metrics: []MetricSpec{
				{Name: "wall_s", Unit: "s", Class: ClassTime, Better: BetterLower},
				{Name: "speedup", Unit: "x", Class: ClassRatio, Better: BetterHigher, RelTol: 0.30, MADMult: 4},
				{Name: "events", Unit: "events", Class: ClassCount, Better: BetterLower},
				{Name: "parallel", Unit: "x", Class: ClassRatio, Better: BetterHigher, Trend: true},
			},
			Counters: &cusan.Counters{
				Memcpys: 3, SyncCalls: 10, KernelCalls: 4,
				ReadRanges: 12, WriteRanges: 8, ReadBytes: 4096, WriteBytes: 2048,
			},
		},
		Volatile: Volatile{
			Env: Env{
				GoVersion: "go1.99", GOOS: "linux", GOARCH: "amd64",
				NumCPU: 8, GOMAXPROCS: 8, BuildSalt: "deadbeef",
			},
			Repeats: 3,
			Warmup:  1,
			Samples: map[string][]float64{
				"wall_s":   {0.5, 0.6, 0.55},
				"speedup":  {2.0, 2.1, 1.9},
				"events":   {100, 100, 100},
				"parallel": {3.5, 3.6, 3.4},
			},
			Summary: map[string]Summary{
				"wall_s":   Summarize([]float64{0.5, 0.6, 0.55}),
				"speedup":  Summarize([]float64{2.0, 2.1, 1.9}),
				"events":   Summarize([]float64{100, 100, 100}),
				"parallel": Summarize([]float64{3.5, 3.6, 3.4}),
			},
			WallUS: 1234567,
		},
	}
}

// TestGoldenEncoding pins the exact BENCH_*.json byte encoding.
func TestGoldenEncoding(t *testing.T) {
	got, err := goldenResult().Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "BENCH_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("BENCH encoding drifted from the golden file.\n"+
			"If intentional: bump FormatVersion, refresh committed baselines, and rerun with -update.\n"+
			"got:\n%s\nwant:\n%s", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err1 := goldenResult().Encode()
	b, err2 := goldenResult().Encode()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestFileName(t *testing.T) {
	if got := FileName("range-engine"); got != "BENCH_range-engine.json" {
		t.Fatalf("FileName = %q", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := goldenResult()
	path, err := WriteFile(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_golden.json" {
		t.Fatalf("path = %q", path)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Encode()
	b, _ := back.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("round trip changed the result")
	}

	m, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["golden"] == nil {
		t.Fatalf("ReadDir = %v", m)
	}
}

func TestReadFileRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	r := goldenResult()
	r.Canonical.V = FormatVersion + 1
	b, _ := r.Encode()
	path := filepath.Join(dir, "BENCH_golden.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestReadDirRejectsDuplicateScenario(t *testing.T) {
	dir := t.TempDir()
	r := goldenResult()
	b, _ := r.Encode()
	for _, name := range []string{"BENCH_golden.json", "BENCH_golden2.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("duplicate scenario accepted")
	}
}

// TestCommittedBaselinesParse keeps the checked-in baselines loadable:
// a schema change that silently orphans them should fail here, not in
// CI's gate step.
func TestCommittedBaselinesParse(t *testing.T) {
	dir := filepath.Join("..", "..", "bench", "baselines")
	if _, err := os.Stat(dir); err != nil {
		t.Skip("no committed baselines in this checkout")
	}
	m, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("baseline directory exists but holds no BENCH files")
	}
	for name, r := range m {
		if len(r.Canonical.Metrics) == 0 {
			t.Errorf("%s: empty metric catalog", name)
		}
		for _, spec := range r.Canonical.Metrics {
			if _, ok := r.SummaryOf(spec.Name); !ok {
				t.Errorf("%s: metric %q promised but not summarized", name, spec.Name)
			}
		}
	}
}
