package perf

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"cusango/internal/apps/halo2d"
	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/bench"
	"cusango/internal/campaign"
	"cusango/internal/core"
	"cusango/internal/cusan"
	"cusango/internal/kir"
	"cusango/internal/kstatic"
	"cusango/internal/memspace"
	"cusango/internal/testsuite"
	"cusango/internal/trace"
	"cusango/internal/tsan"
)

// The scenario catalog. Workload sizes come from bench.ReducedConfig
// so one knob controls the perf harness and the top-level benchmarks;
// iteration counts below are fixed constants because adaptive looping
// would make the canonical counter snapshots nondeterministic.

// Range-engine sweep shape: a Jacobi-scale kernel-argument annotation,
// iterated per engine variant. Iteration counts differ per variant so
// each loop runs long enough to time while the deterministic counter
// snapshot (taken from the batched run only) stays fixed.
const (
	reRangeBytes   = 64 << 10
	reItersBatched = 8192
	reItersNoCache = 1024
	reItersSlow    = 512
)

// Scenarios returns the full catalog in canonical order.
func Scenarios() []Scenario {
	scs := []Scenario{
		rangeEngineScenario(),
		campaignWorkersScenario(),
		traceThroughputScenario(),
		staticAnalysisScenario(),
	}
	for _, app := range []bench.App{bench.Jacobi, bench.TeaLeaf, bench.Halo2D} {
		scs = append(scs, fig10Scenario(app))
	}
	for _, app := range []bench.App{bench.Jacobi, bench.TeaLeaf, bench.Halo2D} {
		scs = append(scs, fig11Scenario(app))
	}
	scs = append(scs, fig12Scenario())
	for _, app := range []bench.App{bench.Jacobi, bench.TeaLeaf} {
		scs = append(scs, table1Scenario(app))
	}
	return scs
}

// Select resolves a comma-separated scenario list ("" or "all" = every
// scenario).
func Select(csv string) ([]Scenario, error) {
	all := Scenarios()
	if csv == "" || csv == "all" {
		return all, nil
	}
	var out []Scenario
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		sc, ok := lookupIn(all, name)
		if !ok {
			return nil, fmt.Errorf("perf: unknown scenario %q", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

func appName(app bench.App) string { return strings.ToLower(app.String()) }

// --- range-engine ---------------------------------------------------------

func rangeEngineScenario() Scenario {
	return Scenario{
		Name: "range-engine",
		Doc:  "shadow-range annotation hot path: batched page walker vs reference walk",
		Params: fmt.Sprintf("range=%dB iters=%d/%d/%d cells=default",
			reRangeBytes, reItersBatched, reItersNoCache, reItersSlow),
		Metrics: []MetricSpec{
			{Name: "batched_ns_op", Unit: "ns/op", Class: ClassTime, Better: BetterLower},
			{Name: "nocache_ns_op", Unit: "ns/op", Class: ClassTime, Better: BetterLower},
			{Name: "slow_ns_op", Unit: "ns/op", Class: ClassTime, Better: BetterLower},
			// The headline engine win (PR 1 acceptance bar: >= 2x). The
			// walker-vs-walker ratio is the stable one; the cached
			// ratios swing wider, so they carry larger tolerances.
			{Name: "walk_speedup_vs_slow", Unit: "x", Class: ClassRatio, Better: BetterHigher, RelTol: 0.30, MADMult: 4},
			{Name: "cached_speedup_vs_slow", Unit: "x", Class: ClassRatio, Better: BetterHigher, RelTol: 0.80, MADMult: 5},
			{Name: "cache_benefit", Unit: "x", Class: ClassRatio, Better: BetterHigher, RelTol: 0.80, MADMult: 5},
		},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			run := func(cfg tsan.Config, iters int) (float64, tsan.Stats) {
				s := tsan.New(cfg)
				info := &tsan.AccessInfo{Site: "perf range-engine", Object: "arg 0"}
				addr := memspace.Addr(3 << 40)
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					s.WriteRange(addr, reRangeBytes, info)
				}
				return float64(time.Since(t0).Nanoseconds()) / float64(iters), s.Stats()
			}
			batched, bst := run(tsan.Config{}, reItersBatched)
			nocache, _ := run(tsan.Config{DisableRangeCache: true}, reItersNoCache)
			slow, _ := run(tsan.Config{Engine: tsan.EngineSlow}, reItersSlow)
			if batched <= 0 || nocache <= 0 || slow <= 0 {
				return nil, nil, fmt.Errorf("non-positive timing sample")
			}
			ctrs := cusan.CountersFromStats(bst)
			return map[string]float64{
				"batched_ns_op":          batched,
				"nocache_ns_op":          nocache,
				"slow_ns_op":             slow,
				"walk_speedup_vs_slow":   slow / nocache,
				"cached_speedup_vs_slow": slow / batched,
				"cache_benefit":          nocache / batched,
			}, &ctrs, nil
		},
	}
}

// --- campaign-workers -----------------------------------------------------

func campaignWorkersScenario() Scenario {
	const chaosSeeds = 2
	const chaosRate = 0.05
	parallel := runtime.NumCPU()
	if parallel > 8 {
		parallel = 8
	}
	if parallel < 2 {
		parallel = 2
	}
	return Scenario{
		Name: "campaign-workers",
		Doc:  "campaign scheduler: dispatch overhead at 1 worker, scaling at N",
		// parallel worker count is volatile (machine-dependent) so it
		// must NOT appear in Params; the gated metrics don't depend on it.
		Params: fmt.Sprintf("kind=chaos seeds=%d rate=%.2f engines=batched", chaosSeeds, chaosRate),
		Metrics: []MetricSpec{
			{Name: "serial_wall_s", Unit: "s", Class: ClassTime, Better: BetterLower},
			{Name: "parallel_wall_s", Unit: "s", Class: ClassTime, Better: BetterLower},
			// Scheduler cost: campaign.Run at 1 worker vs a bare loop
			// over the same jobs. ~1.0x when the dispatch layer is free.
			{Name: "dispatch_overhead", Unit: "x", Class: ClassRatio, Better: BetterLower, RelTol: 0.50, MADMult: 5},
			// Speedup tracks the runner's core count, not the code —
			// trend-only.
			{Name: "parallel_speedup", Unit: "x", Class: ClassRatio, Better: BetterHigher, Trend: true},
			{Name: "parallel_jobs_per_s", Unit: "jobs/s", Class: ClassRate, Better: BetterHigher},
		},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			seeds := make([]uint64, chaosSeeds)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			jobs := testsuite.ChaosJobs(testsuite.Cases(), seeds, chaosRate,
				[]tsan.Engine{tsan.EngineBatched})
			t0 := time.Now()
			for _, j := range jobs {
				if r := testsuite.ExecuteJob(j); r == nil || r.Verdict != campaign.VerdictPass {
					return nil, nil, fmt.Errorf("chaos job %s not clean", j.Identity())
				}
			}
			plainWall := time.Since(t0)
			serial := campaign.Run(jobs, testsuite.ExecuteJob, campaign.Options{Workers: 1})
			par := campaign.Run(jobs, testsuite.ExecuteJob, campaign.Options{Workers: parallel})
			for _, rep := range []*campaign.Report{serial, par} {
				if pass, fail, errs := rep.Counts(); fail+errs > 0 {
					return nil, nil, fmt.Errorf("campaign workload not clean: pass=%d fail=%d error=%d",
						pass, fail, errs)
				}
			}
			return map[string]float64{
				"serial_wall_s":       serial.Wall.Seconds(),
				"parallel_wall_s":     par.Wall.Seconds(),
				"dispatch_overhead":   serial.Wall.Seconds() / plainWall.Seconds(),
				"parallel_speedup":    serial.Wall.Seconds() / par.Wall.Seconds(),
				"parallel_jobs_per_s": par.JobsPerSecond(),
			}, nil, nil
		},
	}
}

// --- trace-throughput -----------------------------------------------------

func traceThroughputScenario() Scenario {
	hcfg := bench.ReducedConfig().Halo2DCfg
	return Scenario{
		Name: "trace-throughput",
		Doc:  "event-trace record and offline replay throughput (halo2d under the full tool)",
		Params: fmt.Sprintf("app=halo2d nx=%d ny=%d iters=%d ranks=2 flavor=mustcusan",
			hcfg.NX, hcfg.NY, hcfg.Iters),
		Metrics: []MetricSpec{
			// Event totals are deterministic; byte totals wobble by a
			// few varint widths because event timestamps are wall-clock
			// deltas — hence the tolerance instead of exactness.
			{Name: "trace_events", Unit: "events", Class: ClassCount, Better: BetterLower},
			{Name: "trace_bytes", Unit: "B", Class: ClassBytes, Better: BetterLower, RelTol: 0.10, MADMult: 3},
			{Name: "bytes_per_event", Unit: "B/event", Class: ClassBytes, Better: BetterLower, RelTol: 0.10, MADMult: 3},
			{Name: "record_overhead", Unit: "x", Class: ClassRatio, Better: BetterLower},
			{Name: "record_events_per_s", Unit: "events/s", Class: ClassRate, Better: BetterHigher},
			{Name: "replay_events_per_s", Unit: "events/s", Class: ClassRate, Better: BetterHigher},
		},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			run := func(traced bool) (time.Duration, [][]byte, *cusan.Counters, error) {
				const ranks = 2
				bufs := make([]*bytes.Buffer, ranks)
				ccfg := core.Config{
					Flavor: core.MUSTCuSan, Ranks: ranks, Module: halo2d.AppModule(),
				}
				if traced {
					ccfg.Trace = func(rank int) *trace.Writer {
						bufs[rank] = &bytes.Buffer{}
						return trace.NewWriter(bufs[rank], trace.Header{
							Rank: rank, WorldSize: ranks, Label: "perf trace-throughput",
						})
					}
				}
				t0 := time.Now()
				res, err := core.Run(ccfg, func(s *core.Session) error {
					_, err := halo2d.Run(s, hcfg)
					return err
				})
				wall := time.Since(t0)
				if err == nil {
					err = res.FirstError()
				}
				if err != nil {
					return 0, nil, nil, err
				}
				blobs := make([][]byte, ranks)
				for i, b := range bufs {
					if b != nil {
						blobs[i] = b.Bytes()
					}
				}
				ctrs := res.Ranks[0].CudaCtrs
				return wall, blobs, &ctrs, nil
			}
			plainWall, _, _, err := run(false)
			if err != nil {
				return nil, nil, err
			}
			tracedWall, blobs, ctrs, err := run(true)
			if err != nil {
				return nil, nil, err
			}
			var events, bytesTotal int64
			traces := make([]*trace.Trace, 0, len(blobs))
			for rank, blob := range blobs {
				tr, err := trace.Decode(blob)
				if err != nil {
					return nil, nil, fmt.Errorf("decode rank %d: %w", rank, err)
				}
				events += int64(len(tr.Events))
				bytesTotal += int64(len(blob))
				traces = append(traces, tr)
			}
			if events == 0 {
				return nil, nil, fmt.Errorf("recorded no events")
			}
			t0 := time.Now()
			for rank, tr := range traces {
				if _, err := trace.Replay(tr, trace.ReplayConfig{}); err != nil {
					return nil, nil, fmt.Errorf("replay rank %d: %w", rank, err)
				}
			}
			replayWall := time.Since(t0)
			return map[string]float64{
				"trace_events":        float64(events),
				"trace_bytes":         float64(bytesTotal),
				"bytes_per_event":     float64(bytesTotal) / float64(events),
				"record_overhead":     tracedWall.Seconds() / plainWall.Seconds(),
				"record_events_per_s": float64(events) / tracedWall.Seconds(),
				"replay_events_per_s": float64(events) / replayWall.Seconds(),
			}, ctrs, nil
		},
	}
}

// --- static-analysis ------------------------------------------------------

// Static race-checker workload: the four registered modules (suite +
// apps) plus a deterministic batch of generated kernels — the same
// population the differential tests sweep. Verdict counts are exact;
// the timing loop re-analyzes the whole population a fixed number of
// times so the per-kernel figure is a median over real work.
const (
	saGenModules  = 64
	saStaticIters = 16
)

func staticAnalysisScenario() Scenario {
	return Scenario{
		Name: "static-analysis",
		Doc:  "static intra-kernel race checker: per-kernel analysis cost vs the dynamic oracle",
		Params: fmt.Sprintf("modules=suite,jacobi,tealeaf,halo2d gen=%d iters=%d",
			saGenModules, saStaticIters),
		Metrics: []MetricSpec{
			// The verdict census over a fixed population is exact: any
			// drift is an analysis precision change, not noise.
			{Name: "kernels", Unit: "kernels", Class: ClassCount, Better: BetterHigher},
			{Name: "racefree", Unit: "kernels", Class: ClassCount, Better: BetterHigher},
			{Name: "races", Unit: "kernels", Class: ClassCount, Better: BetterLower},
			{Name: "unknown", Unit: "kernels", Class: ClassCount, Better: BetterLower},
			// Acceptance bar: sub-millisecond median per-kernel analysis.
			{Name: "static_us_per_kernel", Unit: "us/kernel", Class: ClassTime, Better: BetterLower},
			{Name: "oracle_us_per_kernel", Unit: "us/kernel", Class: ClassTime, Better: BetterLower},
			{Name: "static_speedup_vs_oracle", Unit: "x", Class: ClassRatio, Better: BetterHigher, RelTol: 0.80, MADMult: 5},
		},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			mods := []*kir.Module{
				testsuite.Module(), jacobi.Module(), tealeaf.Module(), halo2d.AppModule(),
			}
			for seed := uint64(1); seed <= saGenModules; seed++ {
				mods = append(mods, kstatic.GenModule(seed))
			}
			var kernels, racefree, races, unknown int
			t0 := time.Now()
			for i := 0; i < saStaticIters; i++ {
				kernels, racefree, races, unknown = 0, 0, 0, 0
				for _, m := range mods {
					rep, err := kstatic.Analyze(m)
					if err != nil {
						return nil, nil, err
					}
					for _, kr := range rep.Kernels {
						kernels++
						switch kr.Verdict {
						case kstatic.VerdictRaceFree:
							racefree++
						case kstatic.VerdictRace:
							races++
						default:
							unknown++
						}
					}
				}
			}
			staticWall := time.Since(t0)
			if kernels == 0 {
				return nil, nil, fmt.Errorf("no kernels analyzed")
			}
			t0 = time.Now()
			for _, m := range mods {
				for _, f := range m.Kernels() {
					if _, err := kstatic.RunOracle(m, f.Name); err != nil {
						return nil, nil, fmt.Errorf("oracle %s: %w", f.Name, err)
					}
				}
			}
			oracleWall := time.Since(t0)
			staticUS := float64(staticWall.Microseconds()) / float64(saStaticIters*kernels)
			oracleUS := float64(oracleWall.Microseconds()) / float64(kernels)
			if staticUS <= 0 || oracleUS <= 0 {
				return nil, nil, fmt.Errorf("non-positive timing sample")
			}
			return map[string]float64{
				"kernels":                  float64(kernels),
				"racefree":                 float64(racefree),
				"races":                    float64(races),
				"unknown":                  float64(unknown),
				"static_us_per_kernel":     staticUS,
				"oracle_us_per_kernel":     oracleUS,
				"static_speedup_vs_oracle": oracleUS / staticUS,
			}, nil, nil
		},
	}
}

// --- fig10 (runtime overhead) ---------------------------------------------

var overheadFlavors = []core.Flavor{core.TSan, core.MUST, core.CuSan, core.MUSTCuSan}

func fig10Scenario(app bench.App) Scenario {
	cfg := bench.ReducedConfig()
	name := appName(app)
	specs := []MetricSpec{
		{Name: "vanilla_wall_s", Unit: "s", Class: ClassTime, Better: BetterLower},
	}
	for _, fl := range overheadFlavors {
		specs = append(specs, MetricSpec{
			Name: "rel_" + strings.ToLower(fl.String()), Unit: "x",
			Class: ClassRatio, Better: BetterLower, RelTol: 0.40, MADMult: 4,
		})
	}
	return Scenario{
		Name:    "fig10-" + name,
		Doc:     "relative runtime overhead per flavor (paper Fig. 10 shape)",
		Params:  appParams(app, cfg),
		Metrics: specs,
		Run: func() (map[string]float64, *cusan.Counters, error) {
			base, err := bench.Measure(app, core.Vanilla, cfg, cusan.Options{})
			if err != nil {
				return nil, nil, err
			}
			vals := map[string]float64{"vanilla_wall_s": base.Wall.Seconds()}
			var ctrs *cusan.Counters
			for _, fl := range overheadFlavors {
				m, err := bench.Measure(app, fl, cfg, cusan.Options{})
				if err != nil {
					return nil, nil, err
				}
				vals["rel_"+strings.ToLower(fl.String())] = m.Wall.Seconds() / base.Wall.Seconds()
				if fl == core.MUSTCuSan {
					c := m.Result.Ranks[0].CudaCtrs
					ctrs = &c
				}
			}
			return vals, ctrs, nil
		},
	}
}

// --- fig11 (memory overhead, deterministic) -------------------------------

func fig11Scenario(app bench.App) Scenario {
	cfg := bench.ReducedConfig()
	name := appName(app)
	specs := []MetricSpec{
		{Name: "rss_vanilla_mb", Unit: "MB", Class: ClassBytes, Better: BetterLower},
	}
	for _, fl := range overheadFlavors {
		specs = append(specs, MetricSpec{
			Name: "relmem_" + strings.ToLower(fl.String()), Unit: "x",
			Class: ClassRatio, Better: BetterLower, RelTol: 0.005, MADMult: 0,
		})
	}
	return Scenario{
		Name:          "fig11-" + name,
		Doc:           "relative modeled-RSS overhead per flavor (paper Fig. 11; deterministic)",
		Params:        appParams(app, cfg),
		Metrics:       specs,
		Deterministic: true,
		Run: func() (map[string]float64, *cusan.Counters, error) {
			base, err := bench.Measure(app, core.Vanilla, cfg, cusan.Options{})
			if err != nil {
				return nil, nil, err
			}
			vals := map[string]float64{"rss_vanilla_mb": float64(base.RSS) / (1 << 20)}
			var ctrs *cusan.Counters
			for _, fl := range overheadFlavors {
				m, err := bench.Measure(app, fl, cfg, cusan.Options{})
				if err != nil {
					return nil, nil, err
				}
				vals["relmem_"+strings.ToLower(fl.String())] = float64(m.RSS) / float64(base.RSS)
				if fl == core.MUSTCuSan {
					c := m.Result.Ranks[0].CudaCtrs
					ctrs = &c
				}
			}
			return vals, ctrs, nil
		},
	}
}

// --- fig12 (Jacobi domain scaling) ----------------------------------------

func fig12Scenario() Scenario {
	cfg := bench.ReducedConfig()
	sizes := cfg.Fig12Sizes
	var specs []MetricSpec
	for _, size := range sizes {
		tag := fmt.Sprintf("%dx%d", size[0], size[1])
		specs = append(specs,
			MetricSpec{Name: "rel_" + tag, Unit: "x", Class: ClassRatio, Better: BetterLower, RelTol: 0.40, MADMult: 4},
			MetricSpec{Name: "tracked_write_mb_" + tag, Unit: "MB", Class: ClassBytes, Better: BetterLower},
		)
	}
	return Scenario{
		Name:    "fig12-jacobi",
		Doc:     "Jacobi domain-size scaling: CuSan overhead and tracked bytes (paper Fig. 12)",
		Params:  fmt.Sprintf("sizes=%v iters=%d ranks=%d", sizes, cfg.JacobiCfg.Iters, cfg.Ranks),
		Metrics: specs,
		Run: func() (map[string]float64, *cusan.Counters, error) {
			vals := map[string]float64{}
			var ctrs *cusan.Counters
			for _, size := range sizes {
				scfg := cfg
				scfg.JacobiCfg.NX, scfg.JacobiCfg.NY = size[0], size[1]
				base, err := bench.Measure(bench.Jacobi, core.Vanilla, scfg, cusan.Options{})
				if err != nil {
					return nil, nil, err
				}
				m, err := bench.Measure(bench.Jacobi, core.CuSan, scfg, cusan.Options{})
				if err != nil {
					return nil, nil, err
				}
				var writeB int64
				for i := range m.Result.Ranks {
					writeB += m.Result.Ranks[i].CudaCtrs.WriteBytes
				}
				tag := fmt.Sprintf("%dx%d", size[0], size[1])
				vals["rel_"+tag] = m.Wall.Seconds() / base.Wall.Seconds()
				vals["tracked_write_mb_"+tag] = float64(writeB) / (1 << 20)
				c := m.Result.Ranks[0].CudaCtrs
				ctrs = &c
			}
			return vals, ctrs, nil
		},
	}
}

// --- table1 (event counters, deterministic) -------------------------------

func table1Scenario(app bench.App) Scenario {
	cfg := bench.ReducedConfig()
	name := appName(app)
	count := func(n string) MetricSpec {
		return MetricSpec{Name: n, Unit: "events", Class: ClassCount, Better: BetterLower}
	}
	return Scenario{
		Name:   "table1-" + name,
		Doc:    "CUDA/TSan event counters per MPI process (paper Table I; deterministic)",
		Params: appParams(app, cfg),
		Metrics: []MetricSpec{
			count("memcpys"), count("memsets"), count("sync_calls"), count("kernel_calls"),
			count("fiber_switches"), count("hb_annotations"), count("ha_annotations"),
			count("read_ranges"), count("write_ranges"),
			{Name: "avg_read_kb", Unit: "KB", Class: ClassCount, Better: BetterLower},
			{Name: "avg_write_kb", Unit: "KB", Class: ClassCount, Better: BetterLower},
		},
		Deterministic: true,
		Run: func() (map[string]float64, *cusan.Counters, error) {
			m, err := bench.Measure(app, core.MUSTCuSan, cfg, cusan.Options{})
			if err != nil {
				return nil, nil, err
			}
			c := m.Result.Ranks[0].CudaCtrs
			return map[string]float64{
				"memcpys":        float64(c.Memcpys),
				"memsets":        float64(c.Memsets),
				"sync_calls":     float64(c.SyncCalls),
				"kernel_calls":   float64(c.KernelCalls),
				"fiber_switches": float64(c.FiberSwitches),
				"hb_annotations": float64(c.HBAnnotations),
				"ha_annotations": float64(c.HAAnnotations),
				"read_ranges":    float64(c.ReadRanges),
				"write_ranges":   float64(c.WriteRanges),
				"avg_read_kb":    c.AvgReadKB(),
				"avg_write_kb":   c.AvgWriteKB(),
			}, &c, nil
		},
	}
}

// appParams renders the canonical workload line for an app scenario.
func appParams(app bench.App, cfg bench.Config) string {
	switch app {
	case bench.Jacobi:
		return fmt.Sprintf("app=jacobi nx=%d ny=%d iters=%d ranks=%d",
			cfg.JacobiCfg.NX, cfg.JacobiCfg.NY, cfg.JacobiCfg.Iters, cfg.Ranks)
	case bench.TeaLeaf:
		return fmt.Sprintf("app=tealeaf nx=%d ny=%d iters=%d ranks=%d",
			cfg.TeaLeafCfg.NX, cfg.TeaLeafCfg.NY, cfg.TeaLeafCfg.Iters, cfg.Ranks)
	default:
		return fmt.Sprintf("app=halo2d nx=%d ny=%d iters=%d ranks=%d",
			cfg.Halo2DCfg.NX, cfg.Halo2DCfg.NY, cfg.Halo2DCfg.Iters, cfg.Ranks)
	}
}
