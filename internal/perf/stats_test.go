package perf

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"negative", []float64{-5, -1, -3}, -3},
		{"duplicates", []float64{2, 2, 2, 9}, 2},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("%s: Median(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestMAD(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single carries no spread", []float64{42}, 0},
		{"identical", []float64{5, 5, 5}, 0},
		// median 2, deviations {1,0,1} -> median deviation 1
		{"simple", []float64{1, 2, 3}, 1},
		// median 10, deviations {9,0,0,9} -> 4.5
		{"outlier pair", []float64{1, 10, 10, 19}, 4.5},
	}
	for _, c := range cases {
		if got := MAD(c.xs); got != c.want {
			t.Errorf("%s: MAD(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	want := Summary{Median: 2.5, MAD: 1, Min: 1, Max: 4, Mean: 2.5}
	if s != want {
		t.Fatalf("Summarize = %+v, want %+v", s, want)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestSummarizeMean(t *testing.T) {
	s := Summarize([]float64{1, 2, 6})
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("Mean = %v, want 3", s.Mean)
	}
}
