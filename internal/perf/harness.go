package perf

import (
	"fmt"
	"math"
	"time"

	"cusango/internal/cusan"
)

// Scenario is one named, repeatable measurement. Run executes a single
// repeat and returns one sample per metric in the catalog, plus an
// optional deterministic counter snapshot. Run must be a pure function
// of the build (no configuration leaks in), so the canonical section
// assembled from it is byte-stable.
type Scenario struct {
	Name string
	Doc  string
	// Params is the canonical workload description stamped into the
	// file; it must change whenever the workload shape changes.
	Params  string
	Metrics []MetricSpec
	// Deterministic marks scenarios whose samples cannot vary (counter
	// and modeled-memory scenarios): the harness runs them once,
	// whatever the requested repeat count.
	Deterministic bool
	Run           func() (map[string]float64, *cusan.Counters, error)
}

// RunConfig tunes the harness.
type RunConfig struct {
	// Repeats is the measured repeat count R (default 3).
	Repeats int
	// Warmup repeats are executed and discarded (default 1).
	Warmup int
}

// withDefaults resolves zero fields. Warmup uses -1 for "explicit 0".
func (rc RunConfig) withDefaults() RunConfig {
	if rc.Repeats <= 0 {
		rc.Repeats = 3
	}
	if rc.Warmup < 0 {
		rc.Warmup = 0
	} else if rc.Warmup == 0 {
		rc.Warmup = 1
	}
	return rc
}

// RunScenario executes warmup + R repeats and assembles the Result:
// per-repeat samples, robust summaries, the canonical catalog, and the
// environment snapshot. The counter snapshot comes from the first
// measured repeat; any later repeat disagreeing with it is an error
// (the scenario violated its determinism contract).
func RunScenario(sc Scenario, rc RunConfig) (*Result, error) {
	rc = rc.withDefaults()
	repeats, warmup := rc.Repeats, rc.Warmup
	if sc.Deterministic {
		repeats, warmup = 1, 0
	}
	start := time.Now()
	for i := 0; i < warmup; i++ {
		if _, _, err := sc.Run(); err != nil {
			return nil, fmt.Errorf("perf: %s: warmup: %w", sc.Name, err)
		}
	}
	samples := make(map[string][]float64, len(sc.Metrics))
	var counters *cusan.Counters
	for i := 0; i < repeats; i++ {
		vals, ctrs, err := sc.Run()
		if err != nil {
			return nil, fmt.Errorf("perf: %s: repeat %d: %w", sc.Name, i, err)
		}
		for _, spec := range sc.Metrics {
			v, ok := vals[spec.Name]
			if !ok {
				return nil, fmt.Errorf("perf: %s: repeat %d produced no %q", sc.Name, i, spec.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("perf: %s: metric %q is %v", sc.Name, spec.Name, v)
			}
			samples[spec.Name] = append(samples[spec.Name], v)
		}
		if len(vals) != len(sc.Metrics) {
			return nil, fmt.Errorf("perf: %s: repeat %d produced %d values, catalog has %d",
				sc.Name, i, len(vals), len(sc.Metrics))
		}
		if i == 0 {
			counters = ctrs
		} else if err := sameCounters(counters, ctrs); err != nil {
			return nil, fmt.Errorf("perf: %s: repeat %d: %w", sc.Name, i, err)
		}
	}
	summary := make(map[string]Summary, len(samples))
	for name, xs := range samples {
		summary[name] = Summarize(xs)
	}
	return &Result{
		Canonical: Canonical{
			V:        FormatVersion,
			Format:   Format,
			Scenario: sc.Name,
			Params:   sc.Params,
			Metrics:  sc.Metrics,
			Counters: counters,
		},
		Volatile: Volatile{
			Env:     CaptureEnv(),
			Repeats: repeats,
			Warmup:  warmup,
			Samples: samples,
			Summary: summary,
			WallUS:  time.Since(start).Microseconds(),
		},
	}, nil
}

// sameCounters enforces the determinism contract on counter snapshots.
func sameCounters(a, b *cusan.Counters) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("counter snapshot flapped between repeats")
	}
	if a == nil {
		return nil
	}
	if diffs := counterFields(a, b); len(diffs) > 0 {
		return fmt.Errorf("nondeterministic counters: %s", diffs[0])
	}
	return nil
}

// RunAll runs the given scenarios and returns the results keyed by
// name. logf (optional) receives one progress line per scenario.
func RunAll(scs []Scenario, rc RunConfig, logf func(format string, args ...any)) (map[string]*Result, error) {
	out := make(map[string]*Result, len(scs))
	for _, sc := range scs {
		t0 := time.Now()
		r, err := RunScenario(sc, rc)
		if err != nil {
			return nil, err
		}
		out[sc.Name] = r
		if logf != nil {
			logf("perf: %-22s %d repeat(s) in %s", sc.Name, r.Volatile.Repeats,
				time.Since(t0).Round(time.Millisecond))
		}
	}
	return out, nil
}
