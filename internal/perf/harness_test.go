package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cusango/internal/cusan"
)

func constScenario(name string, v float64, ctrs *cusan.Counters) Scenario {
	return Scenario{
		Name:    name,
		Doc:     "synthetic",
		Params:  "synthetic",
		Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			return map[string]float64{"m": v}, ctrs, nil
		},
	}
}

func TestRunScenarioCanonicalByteIdentity(t *testing.T) {
	sc := constScenario("s", 1.5, &cusan.Counters{KernelCalls: 7, ReadBytes: 4096})
	a, err := RunScenario(sc, RunConfig{Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, RunConfig{Repeats: 5, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	ab, err1 := a.CanonicalJSON()
	bb, err2 := b.CanonicalJSON()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Canonical bytes must not depend on repeat count, warmup, or any
	// wall-clock fact — that is the whole contract.
	if !bytes.Equal(ab, bb) {
		t.Fatalf("canonical sections differ:\n%s\n%s", ab, bb)
	}
}

func TestRunScenarioDeterministicRunsOnce(t *testing.T) {
	calls := 0
	sc := Scenario{
		Name: "det", Doc: "d", Params: "p", Deterministic: true,
		Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassCount, Better: BetterLower}},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			calls++
			return map[string]float64{"m": 1}, nil, nil
		},
	}
	r, err := RunScenario(sc, RunConfig{Repeats: 10, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || r.Volatile.Repeats != 1 || r.Volatile.Warmup != 0 {
		t.Fatalf("deterministic scenario ran %d times (repeats=%d warmup=%d), want exactly once",
			calls, r.Volatile.Repeats, r.Volatile.Warmup)
	}
}

func TestRunScenarioNondeterministicCountersRejected(t *testing.T) {
	n := int64(0)
	sc := Scenario{
		Name: "s", Doc: "d", Params: "p",
		Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			n++
			return map[string]float64{"m": 1}, &cusan.Counters{KernelCalls: n}, nil
		},
	}
	_, err := RunScenario(sc, RunConfig{Repeats: 2, Warmup: -1})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic counters") {
		t.Fatalf("want nondeterministic-counters error, got %v", err)
	}
}

func TestRunScenarioCounterFlapRejected(t *testing.T) {
	first := true
	sc := Scenario{
		Name: "s", Doc: "d", Params: "p",
		Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}},
		Run: func() (map[string]float64, *cusan.Counters, error) {
			var c *cusan.Counters
			if first {
				c = &cusan.Counters{}
				first = false
			}
			return map[string]float64{"m": 1}, c, nil
		},
	}
	_, err := RunScenario(sc, RunConfig{Repeats: 2, Warmup: -1})
	if err == nil || !strings.Contains(err.Error(), "flapped") {
		t.Fatalf("want snapshot-flap error, got %v", err)
	}
}

func TestRunScenarioRejectsBadSamples(t *testing.T) {
	mk := func(vals map[string]float64) Scenario {
		return Scenario{
			Name: "s", Doc: "d", Params: "p",
			Metrics: []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}},
			Run: func() (map[string]float64, *cusan.Counters, error) {
				return vals, nil, nil
			},
		}
	}
	for name, vals := range map[string]map[string]float64{
		"nan":      {"m": math.NaN()},
		"inf":      {"m": math.Inf(1)},
		"missing":  {},
		"surprise": {"m": 1, "extra": 2},
	} {
		if _, err := RunScenario(mk(vals), RunConfig{Repeats: 1, Warmup: -1}); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestRunAllKeysByName(t *testing.T) {
	scs := []Scenario{constScenario("a", 1, nil), constScenario("b", 2, nil)}
	var lines []string
	out, err := RunAll(scs, RunConfig{Repeats: 1, Warmup: -1},
		func(f string, a ...any) { lines = append(lines, f) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["a"] == nil || out["b"] == nil {
		t.Fatalf("RunAll = %v", out)
	}
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2", len(lines))
	}
	if got := out["b"].Volatile.Summary["m"].Median; got != 2 {
		t.Fatalf("b median = %v", got)
	}
}
