package perf

import (
	"fmt"
	"sort"
)

// GateOptions configures the enforcement pass.
type GateOptions struct {
	Run RunConfig
	Cmp CompareOptions
	// Retries is how many confirmation passes a regressed scenario
	// gets before the regression is confirmed (default 1). Each retry
	// re-runs the scenario fresh; a metric must regress in the first
	// pass AND every retry to count — a single-fluke CI blip is
	// rejected.
	Retries int
}

// GateOutcome is the gate's full verdict.
type GateOutcome struct {
	// First is the comparison of the initial fresh run.
	First *Comparison
	// Confirmed are regressions that survived every retry.
	Confirmed []MetricDelta
	// Flukes are first-pass regressions a retry cleared.
	Flukes []MetricDelta
	// Drifts are canonical-section mismatches (deterministic; never
	// retried away).
	Drifts []Drift
	// Results is the initial fresh run, for saving as an artifact.
	Results map[string]*Result
	// Retried lists the scenarios that got confirmation passes.
	Retried []string
}

// Pass reports whether the gate should exit zero.
func (g *GateOutcome) Pass() bool {
	return len(g.Confirmed) == 0 && len(g.Drifts) == 0
}

// Gate runs the scenarios fresh, compares against the baseline, and
// gives every regressed scenario opt.Retries fresh confirmation runs:
// only metrics that regress in every pass are confirmed. Canonical
// drift is deterministic and confirmed immediately.
func Gate(baseline map[string]*Result, scs []Scenario, opt GateOptions,
	logf func(format string, args ...any)) (*GateOutcome, error) {
	if opt.Retries <= 0 {
		opt.Retries = 1
	}
	results, err := RunAll(scs, opt.Run, logf)
	if err != nil {
		return nil, err
	}
	first := Compare(baseline, results, opt.Cmp)
	out := &GateOutcome{First: first, Results: results, Drifts: first.Drifts}

	regs := first.Regressions()
	if len(regs) == 0 {
		return out, nil
	}

	// Regressed metrics, grouped by scenario, keyed for confirmation.
	type key struct{ scenario, metric string }
	pending := map[key]MetricDelta{}
	byScenario := map[string]bool{}
	for _, d := range regs {
		pending[key{d.Scenario, d.Metric}] = d
		byScenario[d.Scenario] = true
	}
	scenarios := make([]string, 0, len(byScenario))
	for name := range byScenario {
		scenarios = append(scenarios, name)
	}
	sort.Strings(scenarios)
	out.Retried = scenarios

	for pass := 0; pass < opt.Retries && len(pending) > 0; pass++ {
		for _, name := range scenarios {
			sc, ok := lookupIn(scs, name)
			if !ok {
				// Regression on a scenario we cannot re-run (fresh run
				// lacked it entirely) — stands confirmed.
				continue
			}
			if logf != nil {
				logf("perf: gate retry %d/%d: %s", pass+1, opt.Retries, name)
			}
			res, err := RunScenario(sc, opt.Run)
			if err != nil {
				return nil, fmt.Errorf("perf: gate retry %s: %w", name, err)
			}
			rerun := Compare(
				map[string]*Result{name: baseline[name]},
				map[string]*Result{name: res},
				opt.Cmp,
			)
			still := map[key]bool{}
			for _, d := range rerun.Regressions() {
				still[key{d.Scenario, d.Metric}] = true
			}
			for k, d := range pending {
				if k.scenario != name {
					continue
				}
				if !still[k] {
					out.Flukes = append(out.Flukes, d)
					delete(pending, k)
				}
			}
		}
	}

	for _, d := range regs {
		if _, ok := pending[key{d.Scenario, d.Metric}]; ok {
			out.Confirmed = append(out.Confirmed, d)
		}
	}
	sortDeltas(out.Confirmed)
	sortDeltas(out.Flukes)
	return out, nil
}

func lookupIn(scs []Scenario, name string) (Scenario, bool) {
	for _, sc := range scs {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

func sortDeltas(ds []MetricDelta) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Scenario != ds[j].Scenario {
			return ds[i].Scenario < ds[j].Scenario
		}
		return ds[i].Metric < ds[j].Metric
	})
}
