// Package perf is the machine-readable performance harness: it runs
// named benchmark scenarios (shadow-range engine sweep, campaign
// worker scaling, trace record/replay throughput, and the paper's
// Fig. 10/11/12 and Table I app experiments) for R repeats and emits
// canonical, schema-versioned BENCH_<scenario>.json files; a
// noise-aware comparator diffs a fresh run against committed baselines
// and the gate turns confirmed regressions into a nonzero exit.
//
// The file format follows the campaign report's discipline
// (DESIGN.md §10): every fact is either canonical — a pure function of
// the scenario identity and the build's deterministic behaviour
// (metric catalog, workload parameters, Table I counter snapshots) —
// or volatile — wall-clock measurements, robust summary statistics,
// and environment metadata. Two record runs on the same build produce
// byte-identical canonical sections; only the volatile section moves.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"cusango/internal/campaign"
	"cusango/internal/cusan"
)

// FormatVersion identifies the BENCH_*.json schema. Bump on any change
// to field names, metric semantics, or section layout.
const FormatVersion = 2

// Format is the format tag stamped into every file.
const Format = "cusan-perf/v2"

// Class buckets metrics by how trustworthy they are across machines,
// which drives the comparator's default thresholds and gating.
type Class string

const (
	// ClassTime is an absolute wall-clock measurement. Machine-dependent:
	// recorded for trending, gated only under CompareOptions.Strict.
	ClassTime Class = "time"
	// ClassRate is a throughput measurement (items/s, MB/s). Same
	// machine-dependence as ClassTime.
	ClassRate Class = "rate"
	// ClassRatio is a self-normalized quotient of two measurements taken
	// in the same run on the same machine (overhead factors, speedups).
	// Machine-independent to first order; gated by default.
	ClassRatio Class = "ratio"
	// ClassCount is a deterministic event count (Table I counters,
	// trace event totals). Gated tightly: any drift is a behaviour
	// change, not noise.
	ClassCount Class = "count"
	// ClassBytes is a deterministic size (modeled RSS, tracked bytes).
	// Gated like ClassCount.
	ClassBytes Class = "bytes"
)

// Direction of improvement.
const (
	BetterLower  = "lower"
	BetterHigher = "higher"
)

// MetricSpec is the canonical identity of one metric: what is measured,
// in what unit, and how the gate should judge it. RelTol/MADMult
// override the class defaults when non-zero (see CompareOptions).
type MetricSpec struct {
	Name   string `json:"name"`
	Unit   string `json:"unit"`
	Class  Class  `json:"class"`
	Better string `json:"better"`
	// Trend marks a metric as trend-only: recorded and compared but
	// never gated (e.g. parallel speedup, which tracks the runner's
	// core count rather than the code).
	Trend bool `json:"trend,omitempty"`
	// RelTol is the per-metric relative tolerance override (0 = class
	// default).
	RelTol float64 `json:"rel_tol,omitempty"`
	// MADMult is the per-metric MAD-multiplier override (0 = class
	// default).
	MADMult float64 `json:"mad_mult,omitempty"`
}

// Summary holds the robust per-metric statistics over the repeats.
// Median and MAD (median absolute deviation, unscaled) drive the
// comparator; min is the classical "best observed" floor.
type Summary struct {
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// Canonical is the byte-stable section: a pure function of the
// scenario identity and the build's deterministic behaviour.
type Canonical struct {
	V        int    `json:"v"`
	Format   string `json:"format"`
	Scenario string `json:"scenario"`
	// Params is the canonical one-line description of the workload
	// (sizes, iteration counts, worker counts).
	Params  string       `json:"params"`
	Metrics []MetricSpec `json:"metrics"`
	// Counters is the deterministic Table I counter snapshot of the
	// scenario's representative run (nil for scenarios without one).
	// Any drift here is a behaviour change the gate must flag.
	Counters *cusan.Counters `json:"counters,omitempty"`
}

// Env records where a measurement was taken. Volatile: two machines —
// or two builds — legitimately differ here.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BuildSalt identifies the build (VCS revision when stamped; see
	// campaign.BuildSalt).
	BuildSalt string `json:"build_salt"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BuildSalt:  campaign.BuildSalt(),
	}
}

// Volatile is the run-to-run section: samples, summaries, environment.
type Volatile struct {
	Env     Env `json:"env"`
	Repeats int `json:"repeats"`
	Warmup  int `json:"warmup"`
	// Samples holds the per-repeat raw values, metric name -> samples
	// in repeat order.
	Samples map[string][]float64 `json:"samples"`
	// Summary holds the robust statistics per metric.
	Summary map[string]Summary `json:"summary"`
	// WallUS is the total scenario wall time including warmup.
	WallUS int64 `json:"wall_us"`
}

// Result is one scenario's recorded outcome — one BENCH_<scenario>.json.
type Result struct {
	Canonical Canonical `json:"canonical"`
	Volatile  Volatile  `json:"volatile"`
}

// CanonicalJSON returns the canonical section's byte encoding — the
// part of the file that must be identical across record runs on the
// same build.
func (r *Result) CanonicalJSON() ([]byte, error) {
	return json.Marshal(&r.Canonical)
}

// SummaryOf returns the metric's summary (zero value when absent).
func (r *Result) SummaryOf(metric string) (Summary, bool) {
	s, ok := r.Volatile.Summary[metric]
	return s, ok
}

// FileName is the canonical file name for a scenario's result.
func FileName(scenario string) string {
	return "BENCH_" + scenario + ".json"
}

// Encode renders the result as indented JSON with a trailing newline.
// encoding/json writes struct fields in declaration order and map keys
// sorted, so the encoding is a deterministic function of the values.
func (r *Result) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the result into dir under its canonical file name,
// atomically (write to a temp file, then rename).
func WriteFile(dir string, r *Result) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(r.Canonical.Scenario))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile parses one BENCH_*.json and validates its version tag.
func ReadFile(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Canonical.V != FormatVersion || r.Canonical.Format != Format {
		return nil, fmt.Errorf("perf: %s: format %q v%d (want %q v%d)",
			path, r.Canonical.Format, r.Canonical.V, Format, FormatVersion)
	}
	if r.Canonical.Scenario == "" {
		return nil, fmt.Errorf("perf: %s: missing scenario name", path)
	}
	return &r, nil
}

// ReadDir loads every BENCH_*.json in dir, keyed by scenario name.
func ReadDir(dir string) (map[string]*Result, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]*Result, len(paths))
	for _, p := range paths {
		if strings.HasSuffix(p, ".tmp") {
			continue
		}
		r, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := out[r.Canonical.Scenario]; dup {
			return nil, fmt.Errorf("perf: scenario %q appears twice in %s (v%d)",
				r.Canonical.Scenario, dir, prev.Canonical.V)
		}
		out[r.Canonical.Scenario] = r
	}
	return out, nil
}
