package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the standard pprof hooks the CLIs (-cpuprofile /
// -memprofile) share: it starts a CPU profile immediately and returns
// a stop function that finishes the CPU profile and writes the heap
// profile. Either path may be empty. Callers must run stop before
// os.Exit — the cmd mains route every exit through it so a gated
// regression is immediately profilable.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if firstErr != nil {
			return fmt.Errorf("perf: profile: %w", firstErr)
		}
		return nil
	}, nil
}
