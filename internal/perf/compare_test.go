package perf

import (
	"testing"

	"cusango/internal/cusan"
)

// mkResult builds a synthetic baseline/current result for the
// comparator tests: one scenario, the given metric catalog, a single
// sample per metric (so median = the sample, MAD = 0 unless overridden
// via more samples).
func mkResult(scenario string, metrics []MetricSpec, samples map[string][]float64) *Result {
	summary := make(map[string]Summary, len(samples))
	for name, xs := range samples {
		summary[name] = Summarize(xs)
	}
	return &Result{
		Canonical: Canonical{
			V: FormatVersion, Format: Format,
			Scenario: scenario, Params: "synthetic",
			Metrics: metrics,
		},
		Volatile: Volatile{Samples: samples, Summary: summary, Repeats: 1},
	}
}

func oneDelta(t *testing.T, cmp *Comparison, metric string) MetricDelta {
	t.Helper()
	for _, d := range cmp.Deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for metric %q in %+v", metric, cmp.Deltas)
	return MetricDelta{}
}

func TestJudgeRatioEnvelope(t *testing.T) {
	// Defaults for ratio: relTol 0.25, madMult 3. Baseline median 10,
	// MAD 1 -> slack = 2.5 + 3 = 5.5; regression bound 15.5.
	spec := []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}}
	base := mkResult("s", spec, map[string][]float64{"m": {9, 10, 11}})
	// Force the intended MAD: {9,10,11} has MAD 1.
	if mad := base.Volatile.Summary["m"].MAD; mad != 1 {
		t.Fatalf("test setup: MAD = %v, want 1", mad)
	}
	cases := []struct {
		cur    float64
		status string
	}{
		{15.5, StatusOK},          // exactly at the bound: inside
		{15.6, StatusRegression},  // just over
		{4.5, StatusOK},           // exactly at the better-side edge
		{4.4, StatusImprovement},  // just past it
		{10.0, StatusOK},          // unchanged
		{100.0, StatusRegression}, // grossly over
	}
	for _, c := range cases {
		cur := mkResult("s", spec, map[string][]float64{"m": {c.cur}})
		cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
			DefaultCompareOptions())
		d := oneDelta(t, cmp, "m")
		if d.Status != c.status {
			t.Errorf("cur=%v: status %q, want %q (bound %v)", c.cur, d.Status, c.status, d.Bound)
		}
		if !d.Gated {
			t.Errorf("cur=%v: ratio metric should be gated", c.cur)
		}
	}
}

func TestJudgeBetterHigher(t *testing.T) {
	spec := []MetricSpec{{Name: "spd", Unit: "x", Class: ClassRatio, Better: BetterHigher,
		RelTol: 0.10, MADMult: 0}}
	base := mkResult("s", spec, map[string][]float64{"spd": {10}})
	// slack = 1; lower than 9 regresses, higher than 11 improves.
	for cur, want := range map[float64]string{
		8.9:  StatusRegression,
		9.0:  StatusOK,
		11.0: StatusOK,
		11.1: StatusImprovement,
	} {
		c := mkResult("s", spec, map[string][]float64{"spd": {cur}})
		cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": c},
			DefaultCompareOptions())
		if d := oneDelta(t, cmp, "spd"); d.Status != want {
			t.Errorf("cur=%v: status %q, want %q", cur, d.Status, want)
		}
	}
}

func TestJudgeCountTwoSided(t *testing.T) {
	// Count metrics are deterministic: drift in EITHER direction is a
	// regression (an event silently not counted "improves" the count).
	spec := []MetricSpec{{Name: "n", Unit: "events", Class: ClassCount, Better: BetterLower}}
	base := mkResult("s", spec, map[string][]float64{"n": {1000}})
	for cur, want := range map[float64]string{
		1000: StatusOK,
		1002: StatusRegression, // over the 0.001 relTol envelope
		998:  StatusRegression, // under it, still a finding
	} {
		c := mkResult("s", spec, map[string][]float64{"n": {cur}})
		cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": c},
			DefaultCompareOptions())
		if d := oneDelta(t, cmp, "n"); d.Status != want {
			t.Errorf("cur=%v: status %q, want %q", cur, d.Status, want)
		}
	}
}

func TestJudgeZeroBaseline(t *testing.T) {
	specRatio := []MetricSpec{{Name: "r", Unit: "x", Class: ClassRatio, Better: BetterLower}}
	specCount := []MetricSpec{{Name: "n", Unit: "events", Class: ClassCount, Better: BetterLower}}

	// Both zero: fine.
	base := mkResult("s", specRatio, map[string][]float64{"r": {0}})
	cur := mkResult("s", specRatio, map[string][]float64{"r": {0}})
	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if d := oneDelta(t, cmp, "r"); d.Status != StatusOK {
		t.Errorf("0 -> 0: status %q, want ok", d.Status)
	}

	// Ratio from zero: undefined, informational only.
	cur = mkResult("s", specRatio, map[string][]float64{"r": {5}})
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if d := oneDelta(t, cmp, "r"); d.Status != StatusZeroBaseline {
		t.Errorf("ratio 0 -> 5: status %q, want %q", d.Status, StatusZeroBaseline)
	}
	if len(cmp.Regressions()) != 0 {
		t.Errorf("zero-base ratio must not gate")
	}

	// Deterministic count appearing from zero: drift, gated.
	base = mkResult("s", specCount, map[string][]float64{"n": {0}})
	cur = mkResult("s", specCount, map[string][]float64{"n": {3}})
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if d := oneDelta(t, cmp, "n"); d.Status != StatusRegression {
		t.Errorf("count 0 -> 3: status %q, want regression", d.Status)
	}
}

func TestCompareMissingScenario(t *testing.T) {
	spec := []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}}
	r := mkResult("here", spec, map[string][]float64{"m": {1}})

	// Baseline promises a scenario the fresh run lacks.
	cmp := Compare(map[string]*Result{"here": r}, map[string]*Result{}, DefaultCompareOptions())
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Status != StatusNoCurrent {
		t.Fatalf("missing current: %+v", cmp.Deltas)
	}
	// A brand-new scenario must not break the gate.
	cmp = Compare(map[string]*Result{}, map[string]*Result{"here": r}, DefaultCompareOptions())
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Status != StatusNoBaseline {
		t.Fatalf("missing baseline: %+v", cmp.Deltas)
	}
	if !cmp.Clean() {
		t.Fatalf("new scenario should not gate")
	}
}

func TestCompareMissingMetricGates(t *testing.T) {
	// A metric the baseline promises but the fresh run lost is a
	// harness defect -> gated regression.
	spec := []MetricSpec{
		{Name: "kept", Unit: "x", Class: ClassRatio, Better: BetterLower},
		{Name: "lost", Unit: "x", Class: ClassRatio, Better: BetterLower},
	}
	base := mkResult("s", spec, map[string][]float64{"kept": {1}, "lost": {1}})
	cur := mkResult("s", spec, map[string][]float64{"kept": {1}})
	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	d := oneDelta(t, cmp, "lost")
	if d.Status != StatusRegression || !d.Gated {
		t.Fatalf("lost metric: %+v, want gated regression", d)
	}
}

func TestStrictGatesTimeMetrics(t *testing.T) {
	spec := []MetricSpec{{Name: "wall", Unit: "s", Class: ClassTime, Better: BetterLower}}
	base := mkResult("s", spec, map[string][]float64{"wall": {1.0}})
	cur := mkResult("s", spec, map[string][]float64{"wall": {10.0}})

	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	d := oneDelta(t, cmp, "wall")
	if d.Gated {
		t.Fatalf("time metric gated without -strict")
	}
	if d.Status != StatusRegression {
		t.Fatalf("time metric should still report regression status, got %q", d.Status)
	}
	if len(cmp.Regressions()) != 0 {
		t.Fatalf("ungated regression leaked into Regressions()")
	}

	opt := DefaultCompareOptions()
	opt.Strict = true
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur}, opt)
	if d := oneDelta(t, cmp, "wall"); !d.Gated {
		t.Fatalf("-strict must gate time metrics")
	}
	if len(cmp.Regressions()) != 1 {
		t.Fatalf("strict regression not counted")
	}
}

func TestTrendNeverGates(t *testing.T) {
	spec := []MetricSpec{{Name: "spd", Unit: "x", Class: ClassRatio, Better: BetterHigher, Trend: true}}
	base := mkResult("s", spec, map[string][]float64{"spd": {8}})
	cur := mkResult("s", spec, map[string][]float64{"spd": {1}})
	opt := DefaultCompareOptions()
	opt.Strict = true // not even strict gates a trend metric
	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur}, opt)
	if d := oneDelta(t, cmp, "spd"); d.Gated {
		t.Fatalf("trend metric must never gate")
	}
}

func TestCompareOptionOverrides(t *testing.T) {
	// Per-metric override (RelTol 0.50) loosens the class default;
	// the global CLI override (-rel-tol) then trumps the metric.
	spec := []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower,
		RelTol: 0.50, MADMult: 0}}
	base := mkResult("s", spec, map[string][]float64{"m": {10}})
	cur := mkResult("s", spec, map[string][]float64{"m": {14}})

	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if d := oneDelta(t, cmp, "m"); d.Status != StatusOK {
		t.Fatalf("within per-metric 50%% tolerance: %q", d.Status)
	}

	opt := CompareOptions{RelTol: 0.10, MADMult: -1}
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur}, opt)
	if d := oneDelta(t, cmp, "m"); d.Status != StatusRegression {
		t.Fatalf("global -rel-tol 0.10 must trump the per-metric 0.50: %q", d.Status)
	}

	// MADMult 0 suppresses the MAD term entirely.
	base = mkResult("s", spec, map[string][]float64{"m": {9, 10, 11}}) // MAD 1
	cur = mkResult("s", spec, map[string][]float64{"m": {10.5}})
	opt = CompareOptions{RelTol: 0.01, MADMult: 0}
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur}, opt)
	if d := oneDelta(t, cmp, "m"); d.Status != StatusRegression {
		t.Fatalf("MADMult 0 should drop the MAD slack: %q", d.Status)
	}
}

func TestCanonicalDrift(t *testing.T) {
	spec := []MetricSpec{{Name: "m", Unit: "x", Class: ClassRatio, Better: BetterLower}}
	base := mkResult("s", spec, map[string][]float64{"m": {1}})

	// Params change.
	cur := mkResult("s", spec, map[string][]float64{"m": {1}})
	cur.Canonical.Params = "other"
	cmp := Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if len(cmp.Drifts) != 1 {
		t.Fatalf("params drift not flagged: %+v", cmp.Drifts)
	}

	// Metric catalog change.
	cur = mkResult("s", append(spec, MetricSpec{Name: "new", Unit: "x",
		Class: ClassRatio, Better: BetterLower}), map[string][]float64{"m": {1}, "new": {1}})
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if len(cmp.Drifts) != 1 {
		t.Fatalf("catalog drift not flagged: %+v", cmp.Drifts)
	}

	// Counter drift names the field that moved.
	base.Canonical.Counters = &cusan.Counters{KernelCalls: 100}
	cur = mkResult("s", spec, map[string][]float64{"m": {1}})
	cur.Canonical.Counters = &cusan.Counters{KernelCalls: 101}
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if len(cmp.Drifts) != 1 {
		t.Fatalf("counter drift not flagged: %+v", cmp.Drifts)
	}
	if want := "counters drift: kernel_calls: 100 -> 101"; cmp.Drifts[0].Detail != want {
		t.Fatalf("drift detail %q, want %q", cmp.Drifts[0].Detail, want)
	}
	if cmp.Clean() {
		t.Fatalf("drift must fail Clean()")
	}

	// Snapshot disappearing is drift too.
	cur.Canonical.Counters = nil
	cmp = Compare(map[string]*Result{"s": base}, map[string]*Result{"s": cur},
		DefaultCompareOptions())
	if len(cmp.Drifts) != 1 {
		t.Fatalf("vanished snapshot not flagged: %+v", cmp.Drifts)
	}
}
