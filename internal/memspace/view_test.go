package memspace

import (
	"sync"
	"testing"
)

func TestViewResolveAndBytes(t *testing.T) {
	m := New()
	a := m.Alloc(128, KindDevice)
	b := m.Alloc(64, KindHostPinned)
	v := m.NewView()

	if seg := v.Resolve(a + 100); seg == nil || seg.Base != a {
		t.Fatal("view resolve failed")
	}
	if seg := v.Resolve(b); seg == nil || seg.Base != b {
		t.Fatal("view resolve of second segment failed")
	}
	if v.Resolve(Addr(42)) != nil {
		t.Fatal("junk address resolved")
	}
	bs, err := v.Bytes(a+8, 16)
	if err != nil || len(bs) != 16 {
		t.Fatalf("view bytes: %v len %d", err, len(bs))
	}
	if _, err := v.Bytes(a, 129); err == nil {
		t.Fatal("oversized view range accepted")
	}
	if _, err := v.Bytes(a, -1); err == nil {
		t.Fatal("negative view range accepted")
	}
}

func TestViewAliasesLiveMemory(t *testing.T) {
	m := New()
	a := m.Alloc(8, KindDevice)
	v := m.NewView()
	bs, err := v.Bytes(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFloat64(a, 4.25)
	if lef := m.Float64(a); lef != 4.25 {
		t.Fatal("sanity")
	}
	bs[7] = 0 // clear the exponent byte through the view
	if m.Float64(a) == 4.25 {
		t.Fatal("view does not alias live memory")
	}
}

func TestViewSnapshotIgnoresLaterAllocs(t *testing.T) {
	m := New()
	a := m.Alloc(8, KindDevice)
	v := m.NewView()
	b := m.Alloc(8, KindDevice)
	if v.Resolve(a) == nil {
		t.Fatal("existing segment missing from view")
	}
	if v.Resolve(b) != nil {
		t.Fatal("later allocation visible in old view")
	}
}

func TestViewCloneIndependentCache(t *testing.T) {
	m := New()
	a := m.Alloc(64, KindDevice)
	b := m.Alloc(64, KindDevice)
	v := m.NewView()
	c := v.Clone()
	// Warm different cache entries; both must still resolve everything.
	if v.Resolve(a) == nil || c.Resolve(b) == nil {
		t.Fatal("clone resolve failed")
	}
	if v.Resolve(b) == nil || c.Resolve(a) == nil {
		t.Fatal("cross resolve failed")
	}
}

func TestViewConcurrentReaders(t *testing.T) {
	// Many goroutines resolving through independent clones: must be
	// race-free (validated under -race) and correct.
	m := New()
	var addrs []Addr
	for i := 0; i < 50; i++ {
		addrs = append(addrs, m.Alloc(256, KindDevice))
	}
	base := m.NewView()
	var wg sync.WaitGroup
	errs := make([]bool, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := base.Clone()
			for i, a := range addrs {
				seg := v.Resolve(a + Addr(i%256))
				if seg == nil || seg.Base != a {
					errs[w] = true
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, bad := range errs {
		if bad {
			t.Fatalf("worker %d failed resolution", w)
		}
	}
}
