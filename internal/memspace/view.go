package memspace

import "sort"

// View is an immutable snapshot of the segment table for concurrent
// readers. The kernel interpreter creates one View per worker goroutine so
// that device "threads" can resolve pointers without synchronizing on the
// Memory object (whose Resolve cache is single-threaded).
//
// Segments in a View alias the live allocations: loads and stores through
// a View are visible to the owning Memory and vice versa. Allocating or
// freeing while Views exist is the caller's bug (the simulated CUDA
// runtime never mutates the address space while a kernel is in flight).
type View struct {
	segs []*Segment
	last *Segment
}

// NewView snapshots the current segment table.
func (m *Memory) NewView() *View {
	segs := make([]*Segment, len(m.segs))
	copy(segs, m.segs)
	return &View{segs: segs}
}

// Clone returns an independent View (own cache) over the same snapshot.
func (v *View) Clone() *View {
	return &View{segs: v.segs}
}

// Resolve returns the segment containing a, or nil.
func (v *View) Resolve(a Addr) *Segment {
	if s := v.last; s != nil && s.Contains(a) {
		return s
	}
	i := sort.Search(len(v.segs), func(i int) bool { return v.segs[i].Base > a })
	i--
	if i >= 0 && v.segs[i].Contains(a) {
		v.last = v.segs[i]
		return v.segs[i]
	}
	return nil
}

// Bytes returns a byte view of [a, a+n), or nil with an error if the range
// is not contained in a single segment.
func (v *View) Bytes(a Addr, n int64) ([]byte, error) {
	seg := v.Resolve(a)
	if seg == nil || n < 0 || a+Addr(n) > seg.End() || a+Addr(n) < a {
		return nil, &AccessError{Op: "view-range", Addr: a, Len: n}
	}
	off := int64(a - seg.Base)
	return seg.data[off : off+n : off+n], nil
}
