// Package memspace implements the simulated unified virtual address (UVA)
// space that every rank of a cusango program runs against.
//
// All application data — host-pageable, host-pinned (page-locked), device,
// and CUDA-managed memory — lives inside one Memory object per rank.
// Pointers are plain Addr values. As with CUDA's UVA design, the memory
// kind of any pointer is recoverable from the address alone (the address
// space is partitioned per kind), which is what allows the simulated
// CUDA-aware MPI library to accept device pointers directly and what lets
// TypeART and CuSan classify pointers without side channels.
package memspace

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Addr is a simulated 64-bit virtual address. The zero value is the null
// pointer and is never a valid allocation address.
type Addr uint64

// Kind classifies where an allocation lives and how it was allocated.
// It determines implicit synchronization behaviour of CUDA memory
// operations (paper §III-C).
type Kind uint8

const (
	// KindInvalid marks an address that belongs to no live allocation.
	KindInvalid Kind = iota
	// KindHostPageable is ordinary host memory (malloc analog).
	KindHostPageable
	// KindHostPinned is page-locked host memory (cudaHostAlloc analog).
	KindHostPinned
	// KindDevice is device-resident memory (cudaMalloc analog).
	KindDevice
	// KindManaged is CUDA-managed memory (cudaMallocManaged analog),
	// accessible from host and device.
	KindManaged
)

func (k Kind) String() string {
	switch k {
	case KindHostPageable:
		return "host-pageable"
	case KindHostPinned:
		return "host-pinned"
	case KindDevice:
		return "device"
	case KindManaged:
		return "managed"
	default:
		return "invalid"
	}
}

// Base addresses of the per-kind regions. Each region is 2^40 bytes, far
// larger than any simulation will allocate; the partition makes KindOf a
// pure address computation, mirroring UVA.
const (
	regionShift             = 40
	baseHostPageable Addr   = 1 << regionShift
	baseHostPinned   Addr   = 2 << regionShift
	baseDevice       Addr   = 3 << regionShift
	baseManaged      Addr   = 4 << regionShift
	regionMask       uint64 = (1 << regionShift) - 1
)

// KindOf reports the memory kind encoded in an address. It does not check
// whether the address belongs to a live allocation; use Memory.Resolve for
// that.
func KindOf(a Addr) Kind {
	switch a >> regionShift {
	case 1:
		return KindHostPageable
	case 2:
		return KindHostPinned
	case 3:
		return KindDevice
	case 4:
		return KindManaged
	default:
		return KindInvalid
	}
}

// IsDeviceAccessible reports whether a pointer of this kind may be passed
// to a kernel.
func (k Kind) IsDeviceAccessible() bool {
	return k == KindDevice || k == KindManaged || k == KindHostPinned
}

// IsHostAccessible reports whether host code may dereference a pointer of
// this kind directly.
func (k Kind) IsHostAccessible() bool {
	return k == KindHostPageable || k == KindHostPinned || k == KindManaged
}

// Segment describes one live allocation.
type Segment struct {
	Base Addr
	Size int64
	Kind Kind
	data []byte
}

// Data returns the segment's backing bytes. The slice aliases the live
// allocation; writes through it are visible to subsequent loads.
func (s *Segment) Data() []byte { return s.data }

// End returns the first address past the segment.
func (s *Segment) End() Addr { return s.Base + Addr(s.Size) }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(a Addr) bool { return a >= s.Base && a < s.End() }

// AccessError describes an out-of-bounds or invalid-pointer access.
type AccessError struct {
	Op   string
	Addr Addr
	Len  int64
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("memspace: invalid %s of %d byte(s) at 0x%x (%s region)",
		e.Op, e.Len, uint64(e.Addr), KindOf(e.Addr))
}

// Memory is one rank's simulated address space. It is not safe for
// concurrent mutation; the kernel interpreter obtains raw byte views via
// Bytes before fanning out across workers.
type Memory struct {
	next [5]Addr // bump pointer per kind (indexed by Kind)
	segs []*Segment
	// lastHit caches the most recently resolved segment; host programs
	// exhibit extreme locality, and this keeps the hot path allocation-free.
	lastHit *Segment

	allocHooks []AllocHook
	freeHooks  []FreeHook

	liveBytes int64
	peakBytes int64

	// fault is the first invalid scalar access (sticky; see AccessFault).
	fault *AccessError
}

// AllocHook observes allocations (the TypeART instrumentation analog keys
// off these).
type AllocHook func(seg *Segment)

// FreeHook observes frees.
type FreeHook func(seg *Segment)

// New creates an empty address space.
func New() *Memory {
	m := &Memory{}
	m.next[KindHostPageable] = baseHostPageable
	m.next[KindHostPinned] = baseHostPinned
	m.next[KindDevice] = baseDevice
	m.next[KindManaged] = baseManaged
	return m
}

// OnAlloc registers a hook invoked after every allocation.
func (m *Memory) OnAlloc(h AllocHook) { m.allocHooks = append(m.allocHooks, h) }

// OnFree registers a hook invoked before every free.
func (m *Memory) OnFree(h FreeHook) { m.freeHooks = append(m.freeHooks, h) }

const allocAlign = 64 // cache-line-ish alignment, keeps granules aligned

// Alloc reserves size bytes of the given kind and returns the base address.
// The memory is zeroed. Alloc panics if kind is invalid or size < 0; a
// zero-size allocation returns a unique, non-dereferenceable address.
func (m *Memory) Alloc(size int64, kind Kind) Addr {
	if kind == KindInvalid || kind > KindManaged {
		panic(fmt.Sprintf("memspace: Alloc with invalid kind %d", kind))
	}
	if size < 0 {
		panic(fmt.Sprintf("memspace: Alloc with negative size %d", size))
	}
	base := m.next[kind]
	reserve := (size + allocAlign - 1) &^ (allocAlign - 1)
	if reserve == 0 {
		reserve = allocAlign
	}
	m.next[kind] += Addr(reserve)
	if m.next[kind]>>regionShift != base>>regionShift {
		panic(fmt.Sprintf("memspace: %v region exhausted", kind))
	}
	seg := &Segment{Base: base, Size: size, Kind: kind, data: make([]byte, size)}
	m.insert(seg)
	m.liveBytes += size
	if m.liveBytes > m.peakBytes {
		m.peakBytes = m.liveBytes
	}
	for _, h := range m.allocHooks {
		h(seg)
	}
	return base
}

// Free releases the allocation with the given base address. It is an error
// (returned, not panicked, so correctness tools can report it) to free an
// interior pointer, a dangling pointer, or null.
func (m *Memory) Free(base Addr) error {
	i := m.find(base)
	if i < 0 || m.segs[i].Base != base {
		return &AccessError{Op: "free", Addr: base, Len: 0}
	}
	seg := m.segs[i]
	for _, h := range m.freeHooks {
		h(seg)
	}
	m.liveBytes -= seg.Size
	m.segs = append(m.segs[:i], m.segs[i+1:]...)
	if m.lastHit == seg {
		m.lastHit = nil
	}
	return nil
}

// insert keeps segs sorted by base address.
func (m *Memory) insert(seg *Segment) {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].Base > seg.Base })
	m.segs = append(m.segs, nil)
	copy(m.segs[i+1:], m.segs[i:])
	m.segs[i] = seg
}

// find returns the index of the segment containing a, or -1.
func (m *Memory) find(a Addr) int {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].Base > a })
	i--
	if i >= 0 && m.segs[i].Contains(a) {
		return i
	}
	return -1
}

// Resolve returns the live segment containing a (interior pointers are
// fine), or nil if a points into no live allocation.
func (m *Memory) Resolve(a Addr) *Segment {
	if s := m.lastHit; s != nil && s.Contains(a) {
		return s
	}
	if i := m.find(a); i >= 0 {
		m.lastHit = m.segs[i]
		return m.segs[i]
	}
	return nil
}

// Bytes returns a mutable byte view of [a, a+n). The whole range must lie
// inside a single live allocation.
func (m *Memory) Bytes(a Addr, n int64) ([]byte, error) {
	if n < 0 {
		return nil, &AccessError{Op: "range", Addr: a, Len: n}
	}
	seg := m.Resolve(a)
	if seg == nil || a+Addr(n) > seg.End() || a+Addr(n) < a {
		return nil, &AccessError{Op: "range", Addr: a, Len: n}
	}
	off := int64(a - seg.Base)
	return seg.data[off : off+n : off+n], nil
}

// access is the scalar-accessor range check. On an invalid range it
// records the first fault (sticky) and returns nil instead of panicking;
// loads then read zero and stores become no-ops, and the fault surfaces
// through AccessFault at the end of the run. This mirrors how a real
// process would fault on the access: the run is doomed either way, but
// the tool gets to report it as a structured application fault rather
// than crashing the checker.
func (m *Memory) access(a Addr, n int64, op string) []byte {
	b, err := m.Bytes(a, n)
	if err != nil {
		if m.fault == nil {
			ae := err.(*AccessError)
			m.fault = &AccessError{Op: op, Addr: ae.Addr, Len: ae.Len}
		}
		return nil
	}
	return b
}

// AccessFault returns the first invalid scalar access recorded by the
// load/store accessors, or nil if all accesses were in bounds.
func (m *Memory) AccessFault() *AccessError { return m.fault }

// LiveBytes returns the currently allocated payload bytes.
func (m *Memory) LiveBytes() int64 { return m.liveBytes }

// PeakBytes returns the high-water mark of allocated payload bytes.
func (m *Memory) PeakBytes() int64 { return m.peakBytes }

// NumSegments returns the number of live allocations.
func (m *Memory) NumSegments() int { return len(m.segs) }

// Segments returns the live allocations in address order. The returned
// slice is a copy; the *Segment values are live.
func (m *Memory) Segments() []*Segment {
	out := make([]*Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// --- scalar accessors -------------------------------------------------
//
// These are the raw (uninstrumented) loads and stores. Application host
// code goes through core.Session accessors, which add TSan instrumentation
// when the flavor asks for it — the analog of compiling with -fsanitize=thread.

// Float64 loads a float64 at a. An invalid address records a sticky
// fault (see AccessFault) and loads zero.
func (m *Memory) Float64(a Addr) float64 {
	b := m.access(a, 8, "load")
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// SetFloat64 stores v at a. An invalid address records a sticky fault
// and drops the store.
func (m *Memory) SetFloat64(a Addr, v float64) {
	if b := m.access(a, 8, "store"); b != nil {
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	}
}

// Int64 loads an int64 at a.
func (m *Memory) Int64(a Addr) int64 {
	b := m.access(a, 8, "load")
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// SetInt64 stores v at a.
func (m *Memory) SetInt64(a Addr, v int64) {
	if b := m.access(a, 8, "store"); b != nil {
		binary.LittleEndian.PutUint64(b, uint64(v))
	}
}

// Int32 loads an int32 at a.
func (m *Memory) Int32(a Addr) int32 {
	b := m.access(a, 4, "load")
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}

// SetInt32 stores v at a.
func (m *Memory) SetInt32(a Addr, v int32) {
	if b := m.access(a, 4, "store"); b != nil {
		binary.LittleEndian.PutUint32(b, uint32(v))
	}
}

// Byte loads a single byte at a.
func (m *Memory) Byte(a Addr) byte {
	b := m.access(a, 1, "load")
	if b == nil {
		return 0
	}
	return b[0]
}

// SetByte stores a single byte at a.
func (m *Memory) SetByte(a Addr, v byte) {
	if b := m.access(a, 1, "store"); b != nil {
		b[0] = v
	}
}

// Copy copies n bytes from src to dst. Ranges may be in different kinds
// (this is what cudaMemcpy and the CUDA-aware MPI transport use). dst and
// src may overlap.
func (m *Memory) Copy(dst, src Addr, n int64) error {
	db, err := m.Bytes(dst, n)
	if err != nil {
		return err
	}
	sb, err := m.Bytes(src, n)
	if err != nil {
		return err
	}
	copy(db, sb)
	return nil
}

// Set fills n bytes at a with v (the cudaMemset payload behaviour).
func (m *Memory) Set(a Addr, v byte, n int64) error {
	b, err := m.Bytes(a, n)
	if err != nil {
		return err
	}
	for i := range b {
		b[i] = v
	}
	return nil
}
