package memspace

import (
	"testing"
	"testing/quick"
)

func TestKindOf(t *testing.T) {
	m := New()
	cases := []Kind{KindHostPageable, KindHostPinned, KindDevice, KindManaged}
	for _, k := range cases {
		a := m.Alloc(128, k)
		if got := KindOf(a); got != k {
			t.Errorf("KindOf(alloc %v) = %v", k, got)
		}
		if got := KindOf(a + 127); got != k {
			t.Errorf("KindOf(interior %v) = %v", k, got)
		}
	}
	if KindOf(0) != KindInvalid {
		t.Errorf("KindOf(0) should be invalid")
	}
	if KindOf(Addr(1)) != KindInvalid {
		t.Errorf("KindOf(1) should be invalid")
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindDevice.IsDeviceAccessible() || KindDevice.IsHostAccessible() {
		t.Error("device kind predicates wrong")
	}
	if KindHostPageable.IsDeviceAccessible() || !KindHostPageable.IsHostAccessible() {
		t.Error("pageable kind predicates wrong")
	}
	if !KindManaged.IsDeviceAccessible() || !KindManaged.IsHostAccessible() {
		t.Error("managed kind predicates wrong")
	}
	if !KindHostPinned.IsDeviceAccessible() || !KindHostPinned.IsHostAccessible() {
		t.Error("pinned kind predicates wrong")
	}
}

func TestAllocDistinct(t *testing.T) {
	m := New()
	a := m.Alloc(100, KindDevice)
	b := m.Alloc(100, KindDevice)
	if a == b {
		t.Fatal("allocations share an address")
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocZeroSize(t *testing.T) {
	m := New()
	a := m.Alloc(0, KindHostPageable)
	b := m.Alloc(0, KindHostPageable)
	if a == b {
		t.Fatal("zero-size allocations must have distinct addresses")
	}
	if _, err := m.Bytes(a, 1); err == nil {
		t.Fatal("zero-size allocation must not be dereferenceable")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	a := m.Alloc(64, KindHostPageable)
	m.SetFloat64(a, 3.25)
	if got := m.Float64(a); got != 3.25 {
		t.Errorf("Float64 = %v", got)
	}
	m.SetInt64(a+8, -77)
	if got := m.Int64(a + 8); got != -77 {
		t.Errorf("Int64 = %v", got)
	}
	m.SetInt32(a+16, 123456)
	if got := m.Int32(a + 16); got != 123456 {
		t.Errorf("Int32 = %v", got)
	}
	m.SetByte(a+20, 0xAB)
	if got := m.Byte(a + 20); got != 0xAB {
		t.Errorf("Byte = %v", got)
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New()
	a := m.Alloc(256, KindDevice)
	b, err := m.Bytes(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d not zero: %d", i, v)
		}
	}
}

func TestStickyAccessFault(t *testing.T) {
	m := New()
	a := m.Alloc(16, KindHostPageable)
	if m.AccessFault() != nil {
		t.Fatal("fresh memory reports a fault")
	}
	if got := m.Float64(a + 16); got != 0 {
		t.Errorf("out-of-bounds load = %v, want 0", got)
	}
	f := m.AccessFault()
	if f == nil || f.Op != "load" || f.Addr != a+16 {
		t.Fatalf("AccessFault = %+v, want load at 0x%x", f, uint64(a+16))
	}
	// The first fault is sticky: a later store fault doesn't replace it.
	m.SetByte(0, 1)
	if g := m.AccessFault(); g != f {
		t.Fatalf("fault replaced: %+v", g)
	}
	// Valid accesses still work after a fault.
	m.SetInt64(a, 42)
	if m.Int64(a) != 42 {
		t.Fatal("valid access broken after fault")
	}
}

func TestResolveInterior(t *testing.T) {
	m := New()
	a := m.Alloc(1000, KindDevice)
	seg := m.Resolve(a + 999)
	if seg == nil || seg.Base != a {
		t.Fatal("interior resolve failed")
	}
	if m.Resolve(a+1000) != nil && m.Resolve(a+1000).Base == a {
		t.Fatal("resolve past end must not hit the same segment")
	}
}

func TestOutOfBounds(t *testing.T) {
	m := New()
	a := m.Alloc(16, KindHostPageable)
	if _, err := m.Bytes(a, 17); err == nil {
		t.Error("expected out-of-bounds error")
	}
	if _, err := m.Bytes(a+8, 9); err == nil {
		t.Error("expected out-of-bounds error for tail overrun")
	}
	if _, err := m.Bytes(0, 1); err == nil {
		t.Error("expected error for null pointer")
	}
	if _, err := m.Bytes(a, -1); err == nil {
		t.Error("expected error for negative length")
	}
}

func TestFree(t *testing.T) {
	m := New()
	a := m.Alloc(16, KindDevice)
	if err := m.Free(a + 4); err == nil {
		t.Error("freeing interior pointer must fail")
	}
	if err := m.Free(a); err != nil {
		t.Errorf("free: %v", err)
	}
	if err := m.Free(a); err == nil {
		t.Error("double free must fail")
	}
	if m.Resolve(a) != nil {
		t.Error("freed segment still resolvable")
	}
}

func TestHooks(t *testing.T) {
	m := New()
	var allocs, frees int
	m.OnAlloc(func(*Segment) { allocs++ })
	m.OnFree(func(*Segment) { frees++ })
	a := m.Alloc(8, KindDevice)
	b := m.Alloc(8, KindManaged)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if allocs != 2 || frees != 2 {
		t.Errorf("hooks: allocs=%d frees=%d", allocs, frees)
	}
}

func TestLiveAndPeakBytes(t *testing.T) {
	m := New()
	a := m.Alloc(100, KindDevice)
	m.Alloc(50, KindHostPageable)
	if m.LiveBytes() != 150 || m.PeakBytes() != 150 {
		t.Fatalf("live=%d peak=%d", m.LiveBytes(), m.PeakBytes())
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if m.LiveBytes() != 50 || m.PeakBytes() != 150 {
		t.Fatalf("after free: live=%d peak=%d", m.LiveBytes(), m.PeakBytes())
	}
}

func TestCopyAcrossKinds(t *testing.T) {
	m := New()
	h := m.Alloc(32, KindHostPageable)
	d := m.Alloc(32, KindDevice)
	for i := int64(0); i < 4; i++ {
		m.SetFloat64(h+Addr(i*8), float64(i)+0.5)
	}
	if err := m.Copy(d, h, 32); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if got := m.Float64(d + Addr(i*8)); got != float64(i)+0.5 {
			t.Errorf("elem %d = %v", i, got)
		}
	}
}

func TestCopyOutOfBounds(t *testing.T) {
	m := New()
	h := m.Alloc(8, KindHostPageable)
	d := m.Alloc(32, KindDevice)
	if err := m.Copy(d, h, 16); err == nil {
		t.Error("copy reading past src must fail")
	}
	if err := m.Copy(h, d, 16); err == nil {
		t.Error("copy writing past dst must fail")
	}
}

func TestSet(t *testing.T) {
	m := New()
	d := m.Alloc(16, KindDevice)
	if err := m.Set(d, 0x7f, 16); err != nil {
		t.Fatal(err)
	}
	for i := Addr(0); i < 16; i++ {
		if m.Byte(d+i) != 0x7f {
			t.Fatalf("byte %d not set", i)
		}
	}
	if err := m.Set(d, 1, 17); err == nil {
		t.Error("set past end must fail")
	}
}

func TestSegmentsSorted(t *testing.T) {
	m := New()
	for i := 0; i < 20; i++ {
		m.Alloc(int64(8+i), KindDevice)
		m.Alloc(int64(8+i), KindHostPageable)
	}
	segs := m.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i-1].Base >= segs[i].Base {
			t.Fatal("segments not sorted")
		}
	}
	if len(segs) != 40 {
		t.Fatalf("expected 40 segments, got %d", len(segs))
	}
}

// Property: for any sequence of allocations, every address inside every
// live allocation resolves to exactly that allocation, and loads after a
// store round-trip.
func TestPropertyResolve(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		m := New()
		kinds := []Kind{KindHostPageable, KindHostPinned, KindDevice, KindManaged}
		type rec struct {
			base Addr
			size int64
		}
		var recs []rec
		for i, s := range sizes {
			size := int64(s%1024) + 1
			base := m.Alloc(size, kinds[i%len(kinds)])
			recs = append(recs, rec{base, size})
		}
		for _, r := range recs {
			for _, off := range []int64{0, r.size / 2, r.size - 1} {
				seg := m.Resolve(r.base + Addr(off))
				if seg == nil || seg.Base != r.base {
					return false
				}
			}
			m.SetByte(r.base, 0x5a)
			if m.Byte(r.base) != 0x5a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Free removes exactly the freed allocation and leaves all others
// resolvable.
func TestPropertyFreeIsolation(t *testing.T) {
	f := func(n uint8, freeMask uint32) bool {
		count := int(n%24) + 2
		m := New()
		bases := make([]Addr, count)
		for i := range bases {
			bases[i] = m.Alloc(64, KindDevice)
		}
		freed := make([]bool, count)
		for i := range bases {
			if freeMask&(1<<uint(i)) != 0 {
				if err := m.Free(bases[i]); err != nil {
					return false
				}
				freed[i] = true
			}
		}
		for i, b := range bases {
			seg := m.Resolve(b)
			if freed[i] && seg != nil && seg.Base == b {
				return false
			}
			if !freed[i] && (seg == nil || seg.Base != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolveHot(b *testing.B) {
	m := New()
	var a Addr
	for i := 0; i < 100; i++ {
		a = m.Alloc(4096, KindDevice)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Resolve(a + Addr(i%4096))
	}
}

func BenchmarkScalarStore(b *testing.B) {
	m := New()
	a := m.Alloc(4096, KindHostPageable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetFloat64(a+Addr((i%512)*8), 1.0)
	}
}
