package trace

import (
	"fmt"
	"math"

	"cusango/internal/cuda"
	"cusango/internal/cusan"
	"cusango/internal/kaccess"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/must"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// ReplayConfig tunes the offline analysis pipeline.
type ReplayConfig struct {
	// TSanCfg configures the sanitizer (Engine selects the batched or the
	// slow reference shadow engine for differential debugging).
	TSanCfg tsan.Config
	// CusanOpts configures the CuSan runtime.
	CusanOpts cusan.Options
	// MustOpts configures the MUST runtime.
	MustOpts must.Options
}

// ReplayResult is the outcome of re-analyzing one rank's trace.
type ReplayResult struct {
	Rank      int
	WorldSize int
	Label     string

	Races   int64
	Reports []*tsan.Report
	Issues  []*must.Issue

	Counters  cusan.Counters
	MustStats must.Stats
	Events    int
}

// Replay drives a recorded per-rank event stream through a fresh
// cusan/must/tsan/typeart pipeline, offline and single-threaded.
//
// Determinism: the trace holds the rank's events in the exact order the
// live pipeline's annotations ran (hooks fire on the host goroutine at
// interception time, and the taps record before forwarding). Replaying
// them in order therefore issues the identical sanitizer call sequence
// against an identical initial state, which yields identical race
// classifications and tool findings — regardless of the flavor the
// recording ran under, since the interception stream itself is
// flavor-independent. The access-info identity structure mirrors
// core.Session (one load and one store info per rank; the tool runtimes
// cache their own infos), so report deduplication matches the live run.
func Replay(tr *Trace, cfg ReplayConfig) (*ReplayResult, error) {
	r := &replayer{
		san:     tsan.New(cfg.TSanCfg),
		streams: make(map[int64]*cuda.Stream),
		events:  make(map[int64]*cuda.Event),
		reqs:    make(map[uint64]*mpi.Request),
	}
	r.ta = typeart.NewRuntime(nil)
	r.cus = cusan.New(r.san, r.ta, cfg.CusanOpts)
	r.mus = must.New(r.san, r.ta, cfg.MustOpts)
	r.loadInfo = &tsan.AccessInfo{Site: "host code", Object: "load"}
	r.storeInfo = &tsan.AccessInfo{Site: "host code", Object: "store"}

	for i := range tr.Events {
		if err := r.apply(&tr.Events[i]); err != nil {
			return nil, fmt.Errorf("trace: event %d (%s): %w", i, tr.Events[i].Op, err)
		}
	}
	return &ReplayResult{
		Rank:      tr.Header.Rank,
		WorldSize: tr.Header.WorldSize,
		Label:     tr.Header.Label,
		Races:     r.san.RaceCount(),
		Reports:   r.san.Reports(),
		Issues:    r.mus.Issues(),
		Counters:  r.cus.Counters(),
		MustStats: r.mus.Stats(),
		Events:    len(tr.Events),
	}, nil
}

type replayer struct {
	san *tsan.Sanitizer
	ta  *typeart.Runtime
	cus *cusan.Runtime
	mus *must.Runtime

	streams map[int64]*cuda.Stream
	events  map[int64]*cuda.Event
	reqs    map[uint64]*mpi.Request

	loadInfo  *tsan.AccessInfo
	storeInfo *tsan.AccessInfo
}

// stream returns the fabricated handle for a recorded stream id,
// creating it on first use (traces recorded before this version, or
// streams created before recording started, have no OpStreamCreated).
func (r *replayer) stream(id int64, flags uint8) *cuda.Stream {
	if s, ok := r.streams[id]; ok {
		return s
	}
	s := cuda.NewStreamHandle(int(id), flags&FlagNonBlocking != 0)
	r.streams[id] = s
	return s
}

func (r *replayer) event(id int64) *cuda.Event {
	if e, ok := r.events[id]; ok {
		return e
	}
	e := cuda.NewEventHandle(int(id))
	r.events[id] = e
	return e
}

func dtBack(dt DT) mpi.Datatype {
	return mpi.Datatype{Name: dt.Name, Size: dt.Size, TypeartID: typeart.TypeID(dt.TypeartID)}
}

// req returns the fabricated request for a recorded id. Id 0 (a request
// initiated before recording started) yields a fresh unknown handle,
// which the MUST runtime ignores in PostWait — the same no-op the live
// run performed.
func (r *replayer) req(ev *Event, kind mpi.ReqKind) *mpi.Request {
	if ev.Req == 0 {
		return mpi.NewRequestHandle(kind, 0, 0, mpi.Byte, 0, 0)
	}
	if q, ok := r.reqs[ev.Req]; ok {
		return q
	}
	q := mpi.NewRequestHandle(kind, memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT),
		int(ev.Peer), int(ev.Tag))
	r.reqs[ev.Req] = q
	return q
}

func (r *replayer) apply(ev *Event) error {
	switch ev.Op {
	// --- CUDA ---------------------------------------------------------
	case OpAllocDone:
		r.cus.AllocDone(memspace.Addr(ev.Addr), ev.Size, memspace.Kind(ev.Kind))
	case OpFree:
		r.cus.PreFree(memspace.Addr(ev.Addr), memspace.Kind(ev.Kind), ev.Flags&FlagSyncsHost != 0)
	case OpStreamCreated:
		r.cus.StreamCreated(r.stream(ev.Stream, ev.Flags))
	case OpStreamDestroyed:
		r.cus.StreamDestroyed(r.stream(ev.Stream, ev.Flags))
	case OpEventCreated:
		r.cus.EventCreated(r.event(ev.CudaEvt))
	case OpEventDestroyed:
		r.cus.EventDestroyed(r.event(ev.CudaEvt))
	case OpEventRecord:
		r.cus.PreEventRecord(r.event(ev.CudaEvt), r.stream(ev.Stream, ev.Flags))
	case OpEventSync:
		r.cus.PreEventSynchronize(r.event(ev.CudaEvt))
	case OpEventQuery:
		r.cus.PreEventQuery(r.event(ev.CudaEvt))
	case OpStreamWaitEvent:
		r.cus.PreStreamWaitEvent(r.stream(ev.Stream, ev.Flags), r.event(ev.CudaEvt))
	case OpStreamSync:
		r.cus.PreStreamSynchronize(r.stream(ev.Stream, ev.Flags))
	case OpStreamQuery:
		r.cus.PreStreamQuery(r.stream(ev.Stream, ev.Flags))
	case OpDeviceSync:
		r.cus.PreDeviceSynchronize()
	case OpKernelLaunch:
		r.cus.PreKernelLaunch(r.launch(ev))
	case OpMemcpy:
		r.cus.PreMemcpy(&cuda.MemOp{
			Dst: memspace.Addr(ev.Addr), Src: memspace.Addr(ev.Addr2), Bytes: ev.Size,
			DstKind: memspace.Kind(ev.Kind), SrcKind: memspace.Kind(ev.Kind2),
			Async: ev.Flags&FlagAsync != 0, SyncsHost: ev.Flags&FlagSyncsHost != 0,
			Stream: r.stream(ev.Stream, ev.Flags),
		})
	case OpMemset:
		r.cus.PreMemset(&cuda.MemOp{
			Dst: memspace.Addr(ev.Addr), Bytes: ev.Size,
			DstKind: memspace.Kind(ev.Kind), SrcKind: memspace.KindInvalid,
			Async: ev.Flags&FlagAsync != 0, SyncsHost: ev.Flags&FlagSyncsHost != 0,
			Stream: r.stream(ev.Stream, ev.Flags),
		})

	// --- MPI ----------------------------------------------------------
	case OpSend:
		r.mus.PreSend(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT), int(ev.Peer), int(ev.Tag))
	case OpSendDone:
		r.mus.PostSend(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT), int(ev.Peer), int(ev.Tag))
	case OpRecvPost:
		r.mus.PreRecv(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT), int(ev.Peer), int(ev.Tag))
	case OpRecvDone:
		r.mus.PostRecv(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT), mpi.Status{
			Source: int(ev.Src), Tag: int(ev.SrcTag), Count: int(ev.RecvCount),
		})
	case OpIsend:
		req := r.req(ev, mpi.ReqSend)
		r.mus.PreIsend(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT),
			int(ev.Peer), int(ev.Tag), req)
	case OpIrecv:
		req := r.req(ev, mpi.ReqRecv)
		r.mus.PreIrecv(memspace.Addr(ev.Addr), int(ev.Count), dtBack(ev.DT),
			int(ev.Peer), int(ev.Tag), req)
	case OpWait:
		r.mus.PreWait(r.req(ev, mpi.ReqSend))
	case OpWaitDone:
		req := r.req(ev, mpi.ReqSend)
		r.mus.PostWait(req, mpi.Status{
			Source: int(ev.Src), Tag: int(ev.SrcTag), Count: int(ev.RecvCount),
		})
		delete(r.reqs, ev.Req)
	case OpCollPre:
		r.mus.PreCollective(ev.Name, memspace.Addr(ev.Addr), ev.Size,
			memspace.Addr(ev.WAddr), ev.WSize)
	case OpCollPost:
		r.mus.PostCollective(ev.Name, memspace.Addr(ev.Addr), ev.Size,
			memspace.Addr(ev.WAddr), ev.WSize)
	case OpFinalize:
		r.mus.PreFinalize()

	// --- host instrumentation -----------------------------------------
	case OpHostRead:
		r.san.Read(memspace.Addr(ev.Addr), int(ev.Size), r.loadInfo)
	case OpHostWrite:
		r.san.Write(memspace.Addr(ev.Addr), int(ev.Size), r.storeInfo)
	case OpHostReadRange:
		r.san.ReadRange(memspace.Addr(ev.Addr), ev.Size, r.loadInfo)
	case OpHostWriteRange:
		r.san.WriteRange(memspace.Addr(ev.Addr), ev.Size, r.storeInfo)
	case OpTypedAlloc:
		// Mirror core.Session.track: refine an allocation CuSan already
		// registered untyped, or track a fresh host allocation.
		a := memspace.Addr(ev.Addr)
		if _, _, ok := r.ta.Lookup(a); ok {
			_ = r.ta.Retype(a, typeart.TypeID(ev.TypeID), ev.Count)
		} else {
			_ = r.ta.Track(a, typeart.TypeID(ev.TypeID), ev.Count, memspace.Kind(ev.Kind))
		}
	default:
		return fmt.Errorf("unsupported op %d", ev.Op)
	}
	return nil
}

// launch rebuilds the instrumented kernel-launch callback argument.
func (r *replayer) launch(ev *Event) *cuda.KernelLaunch {
	l := &cuda.KernelLaunch{
		Name:   ev.Name,
		Grid:   kinterp.Dim2(int(ev.GridX), int(ev.GridY)),
		Block:  kinterp.Dim2(int(ev.BlockX), int(ev.BlockY)),
		Args:   make([]kinterp.Arg, len(ev.Args)),
		Params: make([]kir.Param, len(ev.Args)),
		Access: make([]kaccess.Access, len(ev.Args)),
		Stream: r.stream(ev.Stream, ev.Flags),
	}
	for i := range ev.Args {
		a := &ev.Args[i]
		l.Args[i] = kinterp.Arg{
			Kind: kinterp.ArgKind(a.Kind),
			F:    math.Float64frombits(a.Bits),
			I:    a.Int,
			Ptr:  memspace.Addr(a.Ptr),
		}
		l.Params[i] = kir.Param{Name: a.Param}
		l.Access[i] = kaccess.Access(a.Access)
	}
	return l
}
