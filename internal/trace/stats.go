package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes one decoded trace: per-op record counts, data-volume
// totals, kernel-launch counts by name, per-stream operation histograms,
// and the non-blocking request high-water mark.
type Stats struct {
	Rank      int
	WorldSize int
	Label     string
	Events    int
	// DurationNS is the recorded time span (last event - first event).
	DurationNS int64

	OpCounts map[Op]int64

	// Data volumes in bytes.
	MemcpyBytes int64
	MemsetBytes int64
	SentBytes   int64 // blocking + non-blocking sends
	RecvBytes   int64 // completed receives (status counts)

	// KernelLaunches counts launches per kernel name.
	KernelLaunches map[string]int64
	// StreamOps counts device-side operations (launch/memcpy/memset)
	// enqueued per stream id.
	StreamOps map[int64]int64
	// Collectives counts calls per collective name.
	Collectives map[string]int64

	// MaxInFlightReqs is the high-water mark of simultaneously
	// outstanding non-blocking requests.
	MaxInFlightReqs int
}

// ComputeStats scans a trace.
func ComputeStats(tr *Trace) *Stats {
	st := &Stats{
		Rank:           tr.Header.Rank,
		WorldSize:      tr.Header.WorldSize,
		Label:          tr.Header.Label,
		Events:         len(tr.Events),
		OpCounts:       make(map[Op]int64),
		KernelLaunches: make(map[string]int64),
		StreamOps:      make(map[int64]int64),
		Collectives:    make(map[string]int64),
	}
	if n := len(tr.Events); n > 0 {
		st.DurationNS = tr.Events[n-1].Time - tr.Events[0].Time
	}
	inflight := 0
	// The completing MPI_Wait record carries no datatype; remember each
	// Irecv's element size so its completion can be credited in bytes.
	recvElem := make(map[uint64]int64)
	for i := range tr.Events {
		ev := &tr.Events[i]
		st.OpCounts[ev.Op]++
		switch ev.Op {
		case OpKernelLaunch:
			st.KernelLaunches[ev.Name]++
			st.StreamOps[ev.Stream]++
		case OpMemcpy:
			st.MemcpyBytes += ev.Size
			st.StreamOps[ev.Stream]++
		case OpMemset:
			st.MemsetBytes += ev.Size
			st.StreamOps[ev.Stream]++
		case OpSend, OpIsend:
			st.SentBytes += ev.Count * ev.DT.Size
		case OpIrecv:
			recvElem[ev.Req] = ev.DT.Size
		case OpRecvDone:
			st.RecvBytes += ev.RecvCount * ev.DT.Size
		case OpWaitDone:
			if sz, ok := recvElem[ev.Req]; ok {
				st.RecvBytes += ev.RecvCount * sz
				delete(recvElem, ev.Req)
			}
		case OpCollPre:
			st.Collectives[ev.Name]++
		}
		switch ev.Op {
		case OpIsend, OpIrecv:
			inflight++
			if inflight > st.MaxInFlightReqs {
				st.MaxInFlightReqs = inflight
			}
		case OpWaitDone:
			if inflight > 0 {
				inflight--
			}
		}
	}
	return st
}

// Format renders the summary as aligned text.
func (st *Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rank %d/%d", st.Rank, st.WorldSize)
	if st.Label != "" {
		fmt.Fprintf(&b, " (%s)", st.Label)
	}
	fmt.Fprintf(&b, ": %d events over %.3f ms\n", st.Events, float64(st.DurationNS)/1e6)

	b.WriteString("per-op record counts:\n")
	ops := make([]Op, 0, len(st.OpCounts))
	for op := range st.OpCounts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Fprintf(&b, "  %-24s %10d\n", op, st.OpCounts[op])
	}

	fmt.Fprintf(&b, "bytes: memcpy=%d memset=%d sent=%d recv=%d\n",
		st.MemcpyBytes, st.MemsetBytes, st.SentBytes, st.RecvBytes)

	if len(st.KernelLaunches) > 0 {
		b.WriteString("kernel launches:\n")
		names := make([]string, 0, len(st.KernelLaunches))
		for n := range st.KernelLaunches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-24s %10d\n", n, st.KernelLaunches[n])
		}
	}
	if len(st.StreamOps) > 0 {
		b.WriteString("device ops per stream:\n")
		ids := make([]int64, 0, len(st.StreamOps))
		for id := range st.StreamOps {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			name := fmt.Sprintf("stream %d", id)
			if id == 0 {
				name = "default stream"
			}
			fmt.Fprintf(&b, "  %-24s %10d\n", name, st.StreamOps[id])
		}
	}
	if len(st.Collectives) > 0 {
		b.WriteString("collectives:\n")
		names := make([]string, 0, len(st.Collectives))
		for n := range st.Collectives {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-24s %10d\n", n, st.Collectives[n])
		}
	}
	fmt.Fprintf(&b, "max in-flight requests: %d\n", st.MaxInFlightReqs)
	return b.String()
}
