package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Decoding limits: hostile inputs must not force large allocations
// before validation.
const (
	maxStringLen  = 1 << 20
	maxKernelArgs = 1 << 16
)

// ErrFormat reports a malformed or truncated trace.
var ErrFormat = errors.New("trace: malformed input")

type dec struct {
	b    []byte
	strs []string
	last int64
}

func (d *dec) u() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) i() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) k() (uint8, error) {
	v, err := d.u()
	if err != nil || v > 0xff {
		return 0, ErrFormat
	}
	return uint8(v), nil
}

// raw reads a length-prefixed byte string (header label, OpString body).
func (d *dec) raw() (string, error) {
	n, err := d.u()
	if err != nil || n > maxStringLen || n > uint64(len(d.b)) {
		return "", ErrFormat
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// str reads a string-table reference.
func (d *dec) str() (string, error) {
	id, err := d.u()
	if err != nil || id >= uint64(len(d.strs)) {
		return "", ErrFormat
	}
	return d.strs[id], nil
}

func (d *dec) dt() (DT, error) {
	var dt DT
	var err error
	if dt.Name, err = d.str(); err != nil {
		return dt, err
	}
	if dt.Size, err = d.i(); err != nil {
		return dt, err
	}
	if dt.TypeartID, err = d.i(); err != nil {
		return dt, err
	}
	return dt, nil
}

func (d *dec) header() (Header, error) {
	var h Header
	if len(d.b) < len(Magic) || !bytes.Equal(d.b[:len(Magic)], Magic[:]) {
		return h, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	d.b = d.b[len(Magic):]
	ver, err := d.u()
	if err != nil {
		return h, err
	}
	if ver != Version {
		return h, fmt.Errorf("trace: unsupported version %d (have %d)", ver, Version)
	}
	rank, err := d.i()
	if err != nil {
		return h, err
	}
	size, err := d.i()
	if err != nil {
		return h, err
	}
	h.Rank, h.WorldSize = int(rank), int(size)
	if h.Label, err = d.raw(); err != nil {
		return h, err
	}
	return h, nil
}

// event decodes one record body (opcode already consumed).
func (d *dec) event(op Op) (Event, error) {
	ev := Event{Op: op}
	delta, err := d.u()
	if err != nil || delta > 1<<62 {
		return ev, ErrFormat
	}
	d.last += int64(delta)
	ev.Time = d.last

	fail := func(err error) (Event, error) { return ev, err }
	switch op {
	case OpAllocDone:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
	case OpFree:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpStreamCreated, OpStreamDestroyed, OpStreamSync, OpStreamQuery:
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpEventCreated, OpEventDestroyed, OpEventSync, OpEventQuery:
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
	case OpEventRecord:
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpStreamWaitEvent:
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
	case OpDeviceSync, OpFinalize:
	case OpKernelLaunch:
		if ev.Name, err = d.str(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.GridX, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.GridY, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.BlockX, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.BlockY, err = d.i(); err != nil {
			return fail(err)
		}
		nargs, err := d.u()
		if err != nil || nargs > maxKernelArgs || nargs > uint64(len(d.b)) {
			return fail(ErrFormat)
		}
		if nargs > 0 {
			ev.Args = make([]KernelArg, nargs)
		}
		for i := range ev.Args {
			a := &ev.Args[i]
			if a.Kind, err = d.k(); err != nil {
				return fail(err)
			}
			if a.Ptr, err = d.u(); err != nil {
				return fail(err)
			}
			if a.Int, err = d.i(); err != nil {
				return fail(err)
			}
			if a.Bits, err = d.u(); err != nil {
				return fail(err)
			}
			if a.Param, err = d.str(); err != nil {
				return fail(err)
			}
			if a.Access, err = d.k(); err != nil {
				return fail(err)
			}
		}
	case OpMemcpy:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Addr2, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Kind2, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
	case OpMemset:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
	case OpSend, OpSendDone, OpRecvPost:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Peer, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Tag, err = d.i(); err != nil {
			return fail(err)
		}
	case OpRecvDone:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Src, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.SrcTag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.RecvCount, err = d.i(); err != nil {
			return fail(err)
		}
	case OpIsend, OpIrecv:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Peer, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Tag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
	case OpWait:
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
	case OpWaitDone:
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Src, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.SrcTag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.RecvCount, err = d.i(); err != nil {
			return fail(err)
		}
	case OpCollPre, OpCollPost:
		if ev.Name, err = d.str(); err != nil {
			return fail(err)
		}
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.WAddr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.WSize, err = d.i(); err != nil {
			return fail(err)
		}
	case OpHostRead, OpHostWrite, OpHostReadRange, OpHostWriteRange:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
	case OpTypedAlloc:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.TypeID, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("%w: unknown op %d", ErrFormat, op))
	}
	return ev, nil
}

// Decode parses a complete .cutrace blob.
func Decode(data []byte) (*Trace, error) {
	tr, _, err := decode(data, false)
	return tr, err
}

// SalvageInfo describes how much of a damaged trace DecodeSalvage
// recovered.
type SalvageInfo struct {
	// Truncated is true when decoding stopped before the end of the
	// input (torn tail record, bad opcode, corrupt string table, ...).
	Truncated bool
	// ValidBytes is the length of the input prefix that decoded cleanly
	// (always ends on a record boundary; includes the header).
	ValidBytes int
	// TotalBytes is the input length.
	TotalBytes int
	// Events is the number of events recovered.
	Events int
	// Reason says why decoding stopped ("" for a clean trace).
	Reason string
}

// DecodeSalvage decodes the longest valid prefix of a possibly damaged
// .cutrace blob — the crash-recovery path for traces whose writer died
// mid-record (torn tail) or whose storage was corrupted. The header must
// be intact: without it there is no rank identity and nothing worth
// recovering, so header damage is a hard error. Everything decoded up to
// the first damaged record is returned along with where and why decoding
// stopped.
func DecodeSalvage(data []byte) (*Trace, *SalvageInfo, error) {
	return decode(data, true)
}

func decode(data []byte, salvage bool) (*Trace, *SalvageInfo, error) {
	d := &dec{b: data}
	h, err := d.header()
	if err != nil {
		return nil, nil, err
	}
	tr := &Trace{Header: h}
	info := &SalvageInfo{TotalBytes: len(data)}
	fail := func(err error) (*Trace, *SalvageInfo, error) {
		if !salvage {
			return nil, nil, err
		}
		info.Truncated = true
		info.Events = len(tr.Events)
		info.Reason = err.Error()
		return tr, info, nil
	}
	for len(d.b) > 0 {
		// mark is the last good record boundary: the salvaged prefix
		// ends here if this record turns out to be damaged.
		mark := len(data) - len(d.b)
		info.ValidBytes = mark
		opv, err := d.u()
		if err != nil || opv == 0 || opv > uint64(opMax) {
			return fail(fmt.Errorf("%w: bad opcode at offset %d", ErrFormat, mark))
		}
		if Op(opv) == OpString {
			s, err := d.raw()
			if err != nil {
				return fail(fmt.Errorf("%w: string table at offset %d", ErrFormat, mark))
			}
			d.strs = append(d.strs, s)
			continue
		}
		ev, err := d.event(Op(opv))
		if err != nil {
			return fail(fmt.Errorf("%w: %s record at offset %d", ErrFormat, Op(opv), mark))
		}
		tr.Events = append(tr.Events, ev)
	}
	info.ValidBytes = len(data)
	info.Events = len(tr.Events)
	return tr, info, nil
}
