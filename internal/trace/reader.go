package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Decoding limits: hostile inputs must not force large allocations
// before validation.
const (
	maxStringLen  = 1 << 20
	maxKernelArgs = 1 << 16
)

// ErrFormat reports a malformed or truncated trace.
var ErrFormat = errors.New("trace: malformed input")

type dec struct {
	b    []byte
	strs []string
	last int64
}

func (d *dec) u() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) i() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) k() (uint8, error) {
	v, err := d.u()
	if err != nil || v > 0xff {
		return 0, ErrFormat
	}
	return uint8(v), nil
}

// raw reads a length-prefixed byte string (header label, OpString body).
func (d *dec) raw() (string, error) {
	n, err := d.u()
	if err != nil || n > maxStringLen || n > uint64(len(d.b)) {
		return "", ErrFormat
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// str reads a string-table reference.
func (d *dec) str() (string, error) {
	id, err := d.u()
	if err != nil || id >= uint64(len(d.strs)) {
		return "", ErrFormat
	}
	return d.strs[id], nil
}

func (d *dec) dt() (DT, error) {
	var dt DT
	var err error
	if dt.Name, err = d.str(); err != nil {
		return dt, err
	}
	if dt.Size, err = d.i(); err != nil {
		return dt, err
	}
	if dt.TypeartID, err = d.i(); err != nil {
		return dt, err
	}
	return dt, nil
}

func (d *dec) header() (Header, error) {
	var h Header
	if len(d.b) < len(Magic) || !bytes.Equal(d.b[:len(Magic)], Magic[:]) {
		return h, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	d.b = d.b[len(Magic):]
	ver, err := d.u()
	if err != nil {
		return h, err
	}
	if ver != Version {
		return h, fmt.Errorf("trace: unsupported version %d (have %d)", ver, Version)
	}
	rank, err := d.i()
	if err != nil {
		return h, err
	}
	size, err := d.i()
	if err != nil {
		return h, err
	}
	h.Rank, h.WorldSize = int(rank), int(size)
	if h.Label, err = d.raw(); err != nil {
		return h, err
	}
	return h, nil
}

// event decodes one record body (opcode already consumed).
func (d *dec) event(op Op) (Event, error) {
	ev := Event{Op: op}
	delta, err := d.u()
	if err != nil || delta > 1<<62 {
		return ev, ErrFormat
	}
	d.last += int64(delta)
	ev.Time = d.last

	fail := func(err error) (Event, error) { return ev, err }
	switch op {
	case OpAllocDone:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
	case OpFree:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpStreamCreated, OpStreamDestroyed, OpStreamSync, OpStreamQuery:
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpEventCreated, OpEventDestroyed, OpEventSync, OpEventQuery:
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
	case OpEventRecord:
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
	case OpStreamWaitEvent:
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.CudaEvt, err = d.i(); err != nil {
			return fail(err)
		}
	case OpDeviceSync, OpFinalize:
	case OpKernelLaunch:
		if ev.Name, err = d.str(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.GridX, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.GridY, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.BlockX, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.BlockY, err = d.i(); err != nil {
			return fail(err)
		}
		nargs, err := d.u()
		if err != nil || nargs > maxKernelArgs || nargs > uint64(len(d.b)) {
			return fail(ErrFormat)
		}
		if nargs > 0 {
			ev.Args = make([]KernelArg, nargs)
		}
		for i := range ev.Args {
			a := &ev.Args[i]
			if a.Kind, err = d.k(); err != nil {
				return fail(err)
			}
			if a.Ptr, err = d.u(); err != nil {
				return fail(err)
			}
			if a.Int, err = d.i(); err != nil {
				return fail(err)
			}
			if a.Bits, err = d.u(); err != nil {
				return fail(err)
			}
			if a.Param, err = d.str(); err != nil {
				return fail(err)
			}
			if a.Access, err = d.k(); err != nil {
				return fail(err)
			}
		}
	case OpMemcpy:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Addr2, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Kind2, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
	case OpMemset:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Flags, err = d.k(); err != nil {
			return fail(err)
		}
		if ev.Stream, err = d.i(); err != nil {
			return fail(err)
		}
	case OpSend, OpSendDone, OpRecvPost:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Peer, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Tag, err = d.i(); err != nil {
			return fail(err)
		}
	case OpRecvDone:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Src, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.SrcTag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.RecvCount, err = d.i(); err != nil {
			return fail(err)
		}
	case OpIsend, OpIrecv:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.DT, err = d.dt(); err != nil {
			return fail(err)
		}
		if ev.Peer, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Tag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
	case OpWait:
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
	case OpWaitDone:
		if ev.Req, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Src, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.SrcTag, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.RecvCount, err = d.i(); err != nil {
			return fail(err)
		}
	case OpCollPre, OpCollPost:
		if ev.Name, err = d.str(); err != nil {
			return fail(err)
		}
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.WAddr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.WSize, err = d.i(); err != nil {
			return fail(err)
		}
	case OpHostRead, OpHostWrite, OpHostReadRange, OpHostWriteRange:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.Size, err = d.i(); err != nil {
			return fail(err)
		}
	case OpTypedAlloc:
		if ev.Addr, err = d.u(); err != nil {
			return fail(err)
		}
		if ev.TypeID, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Count, err = d.i(); err != nil {
			return fail(err)
		}
		if ev.Kind, err = d.k(); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("%w: unknown op %d", ErrFormat, op))
	}
	return ev, nil
}

// Decode parses a complete .cutrace blob.
func Decode(data []byte) (*Trace, error) {
	d := &dec{b: data}
	h, err := d.header()
	if err != nil {
		return nil, err
	}
	tr := &Trace{Header: h}
	for len(d.b) > 0 {
		opv, err := d.u()
		if err != nil || opv == 0 || opv > uint64(opMax) {
			return nil, fmt.Errorf("%w: bad opcode", ErrFormat)
		}
		if Op(opv) == OpString {
			s, err := d.raw()
			if err != nil {
				return nil, err
			}
			d.strs = append(d.strs, s)
			continue
		}
		ev, err := d.event(Op(opv))
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}
