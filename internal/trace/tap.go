package trace

import (
	"math"
	"time"

	"cusango/internal/cuda"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/typeart"
)

// Recorder captures one rank's event stream through a Writer. The hook
// taps record each event *before* forwarding it to the wrapped tool
// runtime, so the recorded order is exactly the annotation order the
// live pipeline saw — the invariant deterministic replay rests on.
//
// All CUDA and MPI hooks fire on the rank's host goroutine at
// interception time (in both eager and async device modes), so a
// Recorder needs no locking; like a Session, it belongs to one rank.
type Recorder struct {
	w     *Writer
	start time.Time

	// reqIDs assigns stable per-rank ids to in-flight requests; id 0 is
	// reserved for "unknown" (initiated before recording started).
	reqIDs map[*mpi.Request]uint64
	reqSeq uint64
}

// NewRecorder wraps a Writer.
func NewRecorder(w *Writer) *Recorder {
	return &Recorder{
		w:      w,
		start:  time.Now(),
		reqIDs: make(map[*mpi.Request]uint64),
	}
}

// Flush drains the underlying writer and returns its sticky error.
func (r *Recorder) Flush() error { return r.w.Flush() }

func (r *Recorder) emit(ev *Event) {
	ev.Time = time.Since(r.start).Nanoseconds()
	r.w.Emit(ev)
}

func streamFields(s *cuda.Stream) (int64, uint8) {
	var flags uint8
	if s.NonBlocking() {
		flags |= FlagNonBlocking
	}
	return int64(s.ID()), flags
}

func dtOf(dt mpi.Datatype) DT {
	return DT{Name: dt.Name, Size: dt.Size, TypeartID: int64(dt.TypeartID)}
}

// --- host-side instrumentation (called from core.Session) ----------------

// HostRead records a scalar host load of n bytes.
func (r *Recorder) HostRead(a memspace.Addr, n int64) {
	r.emit(&Event{Op: OpHostRead, Addr: uint64(a), Size: n})
}

// HostWrite records a scalar host store of n bytes.
func (r *Recorder) HostWrite(a memspace.Addr, n int64) {
	r.emit(&Event{Op: OpHostWrite, Addr: uint64(a), Size: n})
}

// HostReadRange records a bulk host read.
func (r *Recorder) HostReadRange(a memspace.Addr, n int64) {
	r.emit(&Event{Op: OpHostReadRange, Addr: uint64(a), Size: n})
}

// HostWriteRange records a bulk host write.
func (r *Recorder) HostWriteRange(a memspace.Addr, n int64) {
	r.emit(&Event{Op: OpHostWriteRange, Addr: uint64(a), Size: n})
}

// TypedAlloc records a TypeART allocation callback.
func (r *Recorder) TypedAlloc(a memspace.Addr, id typeart.TypeID, count int64, kind memspace.Kind) {
	r.emit(&Event{Op: OpTypedAlloc, Addr: uint64(a), TypeID: int64(id), Count: count, Kind: uint8(kind)})
}

// --- CUDA tap -------------------------------------------------------------

// CudaHooks returns a cuda.Hooks that records every callback and then
// forwards it to inner (nil inner records only).
func (r *Recorder) CudaHooks(inner cuda.Hooks) cuda.Hooks {
	if inner == nil {
		inner = cuda.BaseHooks{}
	}
	return &cudaTap{rec: r, inner: inner}
}

type cudaTap struct {
	rec   *Recorder
	inner cuda.Hooks
}

var _ cuda.Hooks = (*cudaTap)(nil)

func (t *cudaTap) AllocDone(addr memspace.Addr, bytes int64, kind memspace.Kind) {
	t.rec.emit(&Event{Op: OpAllocDone, Addr: uint64(addr), Size: bytes, Kind: uint8(kind)})
	t.inner.AllocDone(addr, bytes, kind)
}

func (t *cudaTap) PreFree(addr memspace.Addr, kind memspace.Kind, syncsHost bool) {
	var flags uint8
	if syncsHost {
		flags |= FlagSyncsHost
	}
	t.rec.emit(&Event{Op: OpFree, Addr: uint64(addr), Kind: uint8(kind), Flags: flags})
	t.inner.PreFree(addr, kind, syncsHost)
}

func (t *cudaTap) StreamCreated(s *cuda.Stream) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpStreamCreated, Stream: id, Flags: flags})
	t.inner.StreamCreated(s)
}

func (t *cudaTap) StreamDestroyed(s *cuda.Stream) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpStreamDestroyed, Stream: id, Flags: flags})
	t.inner.StreamDestroyed(s)
}

func (t *cudaTap) EventCreated(e *cuda.Event) {
	t.rec.emit(&Event{Op: OpEventCreated, CudaEvt: int64(e.ID())})
	t.inner.EventCreated(e)
}

func (t *cudaTap) EventDestroyed(e *cuda.Event) {
	t.rec.emit(&Event{Op: OpEventDestroyed, CudaEvt: int64(e.ID())})
	t.inner.EventDestroyed(e)
}

func (t *cudaTap) PreEventRecord(e *cuda.Event, s *cuda.Stream) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpEventRecord, CudaEvt: int64(e.ID()), Stream: id, Flags: flags})
	t.inner.PreEventRecord(e, s)
}

func (t *cudaTap) PreEventSynchronize(e *cuda.Event) {
	t.rec.emit(&Event{Op: OpEventSync, CudaEvt: int64(e.ID())})
	t.inner.PreEventSynchronize(e)
}

func (t *cudaTap) PreEventQuery(e *cuda.Event) {
	t.rec.emit(&Event{Op: OpEventQuery, CudaEvt: int64(e.ID())})
	t.inner.PreEventQuery(e)
}

func (t *cudaTap) PreStreamWaitEvent(s *cuda.Stream, e *cuda.Event) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpStreamWaitEvent, Stream: id, Flags: flags, CudaEvt: int64(e.ID())})
	t.inner.PreStreamWaitEvent(s, e)
}

func (t *cudaTap) PreStreamSynchronize(s *cuda.Stream) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpStreamSync, Stream: id, Flags: flags})
	t.inner.PreStreamSynchronize(s)
}

func (t *cudaTap) PreStreamQuery(s *cuda.Stream) {
	id, flags := streamFields(s)
	t.rec.emit(&Event{Op: OpStreamQuery, Stream: id, Flags: flags})
	t.inner.PreStreamQuery(s)
}

func (t *cudaTap) PreDeviceSynchronize() {
	t.rec.emit(&Event{Op: OpDeviceSync})
	t.inner.PreDeviceSynchronize()
}

func (t *cudaTap) PreKernelLaunch(l *cuda.KernelLaunch) {
	id, flags := streamFields(l.Stream)
	args := make([]KernelArg, len(l.Args))
	for i := range l.Args {
		a := &l.Args[i]
		ka := KernelArg{Kind: uint8(a.Kind), Ptr: uint64(a.Ptr), Int: a.I, Bits: math.Float64bits(a.F)}
		if i < len(l.Params) {
			ka.Param = l.Params[i].Name
		}
		if i < len(l.Access) {
			ka.Access = uint8(l.Access[i])
		}
		args[i] = ka
	}
	t.rec.emit(&Event{
		Op: OpKernelLaunch, Name: l.Name, Stream: id, Flags: flags,
		GridX: int64(l.Grid.X), GridY: int64(l.Grid.Y),
		BlockX: int64(l.Block.X), BlockY: int64(l.Block.Y),
		Args: args,
	})
	t.inner.PreKernelLaunch(l)
}

func memOpFlags(op *cuda.MemOp) uint8 {
	var flags uint8
	if op.Async {
		flags |= FlagAsync
	}
	if op.SyncsHost {
		flags |= FlagSyncsHost
	}
	return flags
}

func (t *cudaTap) PreMemcpy(op *cuda.MemOp) {
	id, sflags := streamFields(op.Stream)
	t.rec.emit(&Event{
		Op: OpMemcpy, Addr: uint64(op.Dst), Addr2: uint64(op.Src), Size: op.Bytes,
		Kind: uint8(op.DstKind), Kind2: uint8(op.SrcKind),
		Flags: memOpFlags(op) | sflags, Stream: id,
	})
	t.inner.PreMemcpy(op)
}

func (t *cudaTap) PreMemset(op *cuda.MemOp) {
	id, sflags := streamFields(op.Stream)
	t.rec.emit(&Event{
		Op: OpMemset, Addr: uint64(op.Dst), Size: op.Bytes, Kind: uint8(op.DstKind),
		Flags: memOpFlags(op) | sflags, Stream: id,
	})
	t.inner.PreMemset(op)
}

// --- MPI tap --------------------------------------------------------------

// MPIHooks returns an mpi.Hooks that records every callback and then
// forwards it to inner (nil inner records only).
func (r *Recorder) MPIHooks(inner mpi.Hooks) mpi.Hooks {
	if inner == nil {
		inner = mpi.BaseHooks{}
	}
	return &mpiTap{rec: r, inner: inner}
}

type mpiTap struct {
	rec   *Recorder
	inner mpi.Hooks
}

var _ mpi.Hooks = (*mpiTap)(nil)

func (t *mpiTap) p2p(op Op, buf memspace.Addr, count int, dt mpi.Datatype, peer, tag int) *Event {
	return &Event{
		Op: op, Addr: uint64(buf), Count: int64(count), DT: dtOf(dt),
		Peer: int64(peer), Tag: int64(tag),
	}
}

func (t *mpiTap) PreSend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int) {
	t.rec.emit(t.p2p(OpSend, buf, count, dt, dest, tag))
	t.inner.PreSend(buf, count, dt, dest, tag)
}

func (t *mpiTap) PostSend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int) {
	t.rec.emit(t.p2p(OpSendDone, buf, count, dt, dest, tag))
	t.inner.PostSend(buf, count, dt, dest, tag)
}

func (t *mpiTap) PreRecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int) {
	t.rec.emit(t.p2p(OpRecvPost, buf, count, dt, src, tag))
	t.inner.PreRecv(buf, count, dt, src, tag)
}

func (t *mpiTap) PostRecv(buf memspace.Addr, count int, dt mpi.Datatype, st mpi.Status) {
	t.rec.emit(&Event{
		Op: OpRecvDone, Addr: uint64(buf), Count: int64(count), DT: dtOf(dt),
		Src: int64(st.Source), SrcTag: int64(st.Tag), RecvCount: int64(st.Count),
	})
	t.inner.PostRecv(buf, count, dt, st)
}

func (t *mpiTap) nextReqID(req *mpi.Request) uint64 {
	t.rec.reqSeq++
	t.rec.reqIDs[req] = t.rec.reqSeq
	return t.rec.reqSeq
}

func (t *mpiTap) reqID(req *mpi.Request) uint64 {
	return t.rec.reqIDs[req] // 0 = initiated before recording started
}

func (t *mpiTap) PreIsend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int, req *mpi.Request) {
	ev := t.p2p(OpIsend, buf, count, dt, dest, tag)
	ev.Req = t.nextReqID(req)
	t.rec.emit(ev)
	t.inner.PreIsend(buf, count, dt, dest, tag, req)
}

func (t *mpiTap) PreIrecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int, req *mpi.Request) {
	ev := t.p2p(OpIrecv, buf, count, dt, src, tag)
	ev.Req = t.nextReqID(req)
	t.rec.emit(ev)
	t.inner.PreIrecv(buf, count, dt, src, tag, req)
}

func (t *mpiTap) PreWait(req *mpi.Request) {
	t.rec.emit(&Event{Op: OpWait, Req: t.reqID(req)})
	t.inner.PreWait(req)
}

func (t *mpiTap) PostWait(req *mpi.Request, st mpi.Status) {
	id := t.reqID(req)
	t.rec.emit(&Event{
		Op: OpWaitDone, Req: id,
		Src: int64(st.Source), SrcTag: int64(st.Tag), RecvCount: int64(st.Count),
	})
	delete(t.rec.reqIDs, req)
	t.inner.PostWait(req, st)
}

func (t *mpiTap) coll(op Op, name string, read memspace.Addr, readBytes int64,
	write memspace.Addr, writeBytes int64) *Event {
	return &Event{
		Op: op, Name: name, Addr: uint64(read), Size: readBytes,
		WAddr: uint64(write), WSize: writeBytes,
	}
}

func (t *mpiTap) PreCollective(name string, read memspace.Addr, readBytes int64,
	write memspace.Addr, writeBytes int64) {
	t.rec.emit(t.coll(OpCollPre, name, read, readBytes, write, writeBytes))
	t.inner.PreCollective(name, read, readBytes, write, writeBytes)
}

func (t *mpiTap) PostCollective(name string, read memspace.Addr, readBytes int64,
	write memspace.Addr, writeBytes int64) {
	t.rec.emit(t.coll(OpCollPost, name, read, readBytes, write, writeBytes))
	t.inner.PostCollective(name, read, readBytes, write, writeBytes)
}

func (t *mpiTap) PreFinalize() {
	t.rec.emit(&Event{Op: OpFinalize})
	t.inner.PreFinalize()
}
