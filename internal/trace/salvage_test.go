package trace

import (
	"bytes"
	"strings"
	"testing"
)

// mustEncode encodes or fails the test.
func mustEncode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	data, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSalvageCleanTrace: an undamaged trace salvages completely.
func TestSalvageCleanTrace(t *testing.T) {
	data := mustEncode(t, sampleTrace())
	tr, info, err := DecodeSalvage(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated || info.ValidBytes != len(data) || info.Reason != "" {
		t.Fatalf("clean trace salvage info = %+v", info)
	}
	if info.Events != len(sampleTrace().Events) || len(tr.Events) != info.Events {
		t.Fatalf("clean salvage recovered %d events, want %d", info.Events, len(sampleTrace().Events))
	}
}

// TestSalvageTornRecord: cutting inside the tail record recovers every
// earlier record and reports the stop point; the reported valid prefix
// itself decodes cleanly with the strict decoder.
func TestSalvageTornRecord(t *testing.T) {
	full := mustEncode(t, sampleTrace())
	torn := full[:len(full)-3]
	tr, info, err := DecodeSalvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated {
		t.Fatal("torn tail not reported")
	}
	if info.ValidBytes >= len(torn) || info.ValidBytes == 0 {
		t.Fatalf("ValidBytes = %d of %d", info.ValidBytes, len(torn))
	}
	want := len(sampleTrace().Events)
	if len(tr.Events) >= want || len(tr.Events) == 0 {
		t.Fatalf("salvaged %d events of %d", len(tr.Events), want)
	}
	if info.Reason == "" {
		t.Fatal("no stop reason")
	}
	strict, err := Decode(torn[:info.ValidBytes])
	if err != nil {
		t.Fatalf("valid prefix rejected by strict decoder: %v", err)
	}
	if len(strict.Events) != info.Events {
		t.Fatalf("strict prefix decode: %d events, salvage said %d", len(strict.Events), info.Events)
	}
}

// TestSalvageTornStringTable: a cut inside an OpString definition stops
// salvage at the record boundary before it with a string-table reason.
func TestSalvageTornStringTable(t *testing.T) {
	h := Header{Rank: 0, WorldSize: 1, Label: "st"}
	headerLen := len(mustEncode(t, &Trace{Header: h}))
	long := strings.Repeat("k", 200)
	full := mustEncode(t, &Trace{Header: h, Events: []Event{
		{Op: OpKernelLaunch, Time: 1, Name: long, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1},
	}})
	// Cut inside the interned name body: past the OpString opcode and
	// length varint but long before the 200 bytes of payload end.
	torn := full[:headerLen+10]
	tr, info, err := DecodeSalvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.ValidBytes != headerLen || len(tr.Events) != 0 {
		t.Fatalf("torn string table: info=%+v events=%d", info, len(tr.Events))
	}
	if !strings.Contains(info.Reason, "string table") {
		t.Fatalf("reason = %q", info.Reason)
	}
}

// TestSalvageTornHeader: header damage is a hard error — there is no
// rank identity to attribute a salvaged prefix to.
func TestSalvageTornHeader(t *testing.T) {
	full := mustEncode(t, sampleTrace())
	for _, cut := range []int{0, 3, len(Magic)} {
		tr, info, err := DecodeSalvage(full[:cut])
		if err == nil || tr != nil || info != nil {
			t.Fatalf("cut=%d: salvage of torn header = (%v, %+v, %v), want hard error", cut, tr, info, err)
		}
	}
}

// TestSalvageFixedPoint: re-encoding a salvaged prefix is canonical —
// it decodes to the same events and re-encodes byte-identically.
func TestSalvageFixedPoint(t *testing.T) {
	full := mustEncode(t, sampleTrace())
	torn := full[:len(full)*2/3]
	tr, info, err := DecodeSalvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || len(tr.Events) == 0 {
		t.Fatalf("unexpected salvage shape: %+v", info)
	}
	e1 := mustEncode(t, tr)
	tr2, err := Decode(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustEncode(t, tr2)
	if !bytes.Equal(e1, e2) {
		t.Fatalf("salvaged re-encode not a fixed point: %d vs %d bytes", len(e1), len(e2))
	}
	if len(tr2.Events) != len(tr.Events) {
		t.Fatalf("re-encode changed event count: %d vs %d", len(tr2.Events), len(tr.Events))
	}
}

// TestWriterDropsUnencodable: an unencodable record is rolled back
// atomically — counted, and invisible to the decoder — while records
// before and after it survive.
func TestWriterDropsUnencodable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Rank: 0, WorldSize: 1})
	w.Emit(&Event{Op: OpDeviceSync, Time: 5})
	w.Emit(&Event{Op: Op(200), Time: 6})  // beyond opMax
	w.Emit(&Event{Op: OpString, Time: 7}) // reserved opcode
	w.Emit(&Event{Op: OpFinalize, Time: 8})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", w.Dropped())
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("stream torn by dropped record: %v", err)
	}
	if len(tr.Events) != 2 || tr.Events[0].Op != OpDeviceSync || tr.Events[1].Op != OpFinalize {
		t.Fatalf("surviving events = %v", tr.Events)
	}
	// Delta-time state must have been rolled back too: the surviving
	// records keep their original timestamps.
	if tr.Events[0].Time != 5 || tr.Events[1].Time != 8 {
		t.Fatalf("timestamps disturbed: %d, %d", tr.Events[0].Time, tr.Events[1].Time)
	}
}
