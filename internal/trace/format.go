// Package trace is the event-trace subsystem: a compact, versioned
// binary format (.cutrace) for the per-rank CUDA+MPI interception event
// stream the correctness tooling consumes (paper §III–IV), plus a
// Writer tap for recording live runs, a deterministic offline Replayer
// that re-drives the cusan/must/tsan pipeline from a recorded trace,
// per-trace statistics, and a Chrome trace_event timeline exporter.
//
// The key property the format preserves is the paper's observation that
// the race analysis is a pure function of the API event stream and its
// synchronization semantics: every callback CuSan and MUST receive
// (cuda.Hooks, mpi.Hooks), every instrumented host memory access, and
// every typed-allocation callback is recorded in per-rank program
// order. Replaying that stream through fresh tool runtimes therefore
// yields race classifications identical to the live run, without
// re-executing the application.
//
// Encoding: a fixed 8-byte magic, a varint-encoded header, then a flat
// sequence of varint-encoded records. Strings (kernel names, collective
// names, datatype names, kernel parameter names) are interned in a
// string table built inline: the writer emits an opString record the
// first time a string is used, assigning ids sequentially, and all
// later references are by id. Unsigned fields use uvarint, fields that
// can be negative (ranks, tags — MPI_ANY_SOURCE is -1) use zigzag
// varint, and every event carries a non-negative delta-encoded
// timestamp, so encoding is a canonical function of the event sequence:
// encode(decode(encode(events))) is byte-identical to encode(events).
package trace

// Magic identifies a .cutrace file (8 bytes, version-independent).
var Magic = [8]byte{'c', 'u', 't', 'r', 'a', 'c', 'e', 0}

// Version is the current format version. Readers reject newer versions.
const Version = 1

// Op identifies a record type. The numeric values are the stable
// on-disk event IDs — append new ops, never renumber.
type Op uint8

// Record opcodes.
const (
	// OpString defines the next sequential string-table entry. It is
	// internal to the encoding and never surfaced as an Event.
	OpString Op = 1

	// CUDA interception events (cuda.Hooks).
	OpAllocDone       Op = 2  // Addr, Size, Kind
	OpFree            Op = 3  // Addr, Kind, Flags(syncsHost)
	OpStreamCreated   Op = 4  // Stream, Flags(nonBlocking)
	OpStreamDestroyed Op = 5  // Stream, Flags
	OpEventCreated    Op = 6  // CudaEvt
	OpEventDestroyed  Op = 7  // CudaEvt
	OpEventRecord     Op = 8  // CudaEvt, Stream, Flags
	OpEventSync       Op = 9  // CudaEvt
	OpEventQuery      Op = 10 // CudaEvt (successful queries only)
	OpStreamWaitEvent Op = 11 // Stream, Flags, CudaEvt
	OpStreamSync      Op = 12 // Stream, Flags
	OpStreamQuery     Op = 13 // Stream, Flags (successful queries only)
	OpDeviceSync      Op = 14 //
	OpKernelLaunch    Op = 15 // Name, Stream, Flags, Grid/Block, Args
	OpMemcpy          Op = 16 // Addr(dst), Addr2(src), Size, Kind, Kind2, Flags, Stream
	OpMemset          Op = 17 // Addr, Size, Kind, Flags, Stream

	// MPI interception events (mpi.Hooks).
	OpSend     Op = 18 // Addr, Count, DT, Peer, Tag (pre)
	OpSendDone Op = 19 // Addr, Count, DT, Peer, Tag (post)
	OpRecvPost Op = 20 // Addr, Count, DT, Peer, Tag (pre)
	OpRecvDone Op = 21 // Addr, Count, DT, Src, SrcTag, RecvCount (post)
	OpIsend    Op = 22 // Addr, Count, DT, Peer, Tag, Req
	OpIrecv    Op = 23 // Addr, Count, DT, Peer, Tag, Req
	OpWait     Op = 24 // Req (pre)
	OpWaitDone Op = 25 // Req, Src, SrcTag, RecvCount (post)
	OpCollPre  Op = 26 // Name, Addr(read), Size(readBytes), WAddr, WSize
	OpCollPost Op = 27 // Name, Addr, Size, WAddr, WSize
	OpFinalize Op = 28 //

	// Host-side instrumentation events (compiler-inserted TSan and
	// TypeART callbacks in host code).
	OpHostRead       Op = 29 // Addr, Size (scalar)
	OpHostWrite      Op = 30 // Addr, Size (scalar)
	OpHostReadRange  Op = 31 // Addr, Size
	OpHostWriteRange Op = 32 // Addr, Size
	OpTypedAlloc     Op = 33 // Addr, TypeID, Count, Kind

	opMax = OpTypedAlloc
)

var opNames = map[Op]string{
	OpAllocDone:       "cudaMalloc",
	OpFree:            "cudaFree",
	OpStreamCreated:   "cudaStreamCreate",
	OpStreamDestroyed: "cudaStreamDestroy",
	OpEventCreated:    "cudaEventCreate",
	OpEventDestroyed:  "cudaEventDestroy",
	OpEventRecord:     "cudaEventRecord",
	OpEventSync:       "cudaEventSynchronize",
	OpEventQuery:      "cudaEventQuery",
	OpStreamWaitEvent: "cudaStreamWaitEvent",
	OpStreamSync:      "cudaStreamSynchronize",
	OpStreamQuery:     "cudaStreamQuery",
	OpDeviceSync:      "cudaDeviceSynchronize",
	OpKernelLaunch:    "cudaLaunchKernel",
	OpMemcpy:          "cudaMemcpy",
	OpMemset:          "cudaMemset",
	OpSend:            "MPI_Send",
	OpSendDone:        "MPI_Send.done",
	OpRecvPost:        "MPI_Recv",
	OpRecvDone:        "MPI_Recv.done",
	OpIsend:           "MPI_Isend",
	OpIrecv:           "MPI_Irecv",
	OpWait:            "MPI_Wait",
	OpWaitDone:        "MPI_Wait.done",
	OpCollPre:         "MPI_Collective",
	OpCollPost:        "MPI_Collective.done",
	OpFinalize:        "MPI_Finalize",
	OpHostRead:        "host.read",
	OpHostWrite:       "host.write",
	OpHostReadRange:   "host.read_range",
	OpHostWriteRange:  "host.write_range",
	OpTypedAlloc:      "typeart.alloc",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "op?"
}

// IsCuda reports whether the op is a CUDA interception event.
func (o Op) IsCuda() bool { return o >= OpAllocDone && o <= OpMemset }

// IsMPI reports whether the op is an MPI interception event.
func (o Op) IsMPI() bool { return o >= OpSend && o <= OpFinalize }

// IsHost reports whether the op is a host instrumentation event.
func (o Op) IsHost() bool { return o >= OpHostRead && o <= OpTypedAlloc }

// Event flag bits.
const (
	// FlagAsync marks asynchronous memory operations (cudaMemcpyAsync,
	// cudaMemsetAsync).
	FlagAsync uint8 = 1 << iota
	// FlagSyncsHost carries the semantics-table verdict: the call blocks
	// the host (paper §III-B2/§III-C).
	FlagSyncsHost
	// FlagNonBlocking marks a stream created with cudaStreamNonBlocking
	// (exempt from legacy default-stream barriers).
	FlagNonBlocking
)

// Header describes one per-rank trace.
type Header struct {
	// Rank and WorldSize identify the recorded process.
	Rank, WorldSize int
	// Label is a free-form provenance string ("jacobi flavor=must+cusan").
	Label string
}

// DT is the recorded MPI datatype (mpi.Datatype without the package
// dependency, so decoding needs no MPI state).
type DT struct {
	Name      string
	Size      int64
	TypeartID int64
}

// KernelArg is one recorded kernel-launch argument with its access
// attribute from the device-code analysis (paper Fig. 9).
type KernelArg struct {
	Kind   uint8  // kinterp.ArgKind
	Ptr    uint64 // ArgPtr value
	Int    int64  // ArgInt value
	Bits   uint64 // ArgFloat value (IEEE-754 bits)
	Param  string // formal parameter name
	Access uint8  // kaccess.Access bitset
}

// Event is one decoded trace record. Field usage per Op is documented
// on the opcode constants; unused fields are zero.
type Event struct {
	Op   Op
	Time int64 // nanoseconds since trace start (monotone)

	Addr  uint64 // dst / buffer / allocation base
	Addr2 uint64 // memcpy source
	Size  int64  // byte count / scalar access size / collective read bytes
	Kind  uint8  // memspace.Kind of Addr
	Kind2 uint8  // memspace.Kind of Addr2
	Flags uint8

	Stream  int64  // CUDA stream id
	CudaEvt int64  // CUDA event id
	Req     uint64 // MPI request id (0 = unknown/pre-recording)

	Count int64 // element count
	Peer  int64 // dest/src rank (may be mpi.AnySource)
	Tag   int64 // may be mpi.AnyTag

	Name string // kernel or collective name
	DT   DT

	Src, SrcTag, RecvCount int64 // completion status (OpRecvDone, OpWaitDone)

	WAddr uint64 // collective write buffer
	WSize int64  // collective write bytes

	GridX, GridY, BlockX, BlockY int64
	Args                         []KernelArg

	TypeID int64 // TypeART type id (OpTypedAlloc)
}

// Trace is one fully decoded per-rank trace.
type Trace struct {
	Header Header
	Events []Event
}
