package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// enc is the shared record encoder: it owns the output buffer, the
// string table, and the time-delta state, so the streaming Writer and
// the one-shot Encode produce byte-identical output for the same event
// sequence.
type enc struct {
	buf  []byte
	strs map[string]uint64
	last int64
}

func newEnc() *enc { return &enc{strs: make(map[string]uint64)} }

func (e *enc) u(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) k(v uint8)  { e.u(uint64(v)) }

// intern returns the string's table id, emitting its OpString definition
// record first if this is the string's first use. Definitions always
// appear between event records, never inside one.
func (e *enc) intern(s string) uint64 {
	if id, ok := e.strs[s]; ok {
		return id
	}
	id := uint64(len(e.strs))
	e.u(uint64(OpString))
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
	e.strs[s] = id
	return id
}

func (e *enc) header(h Header) {
	e.buf = append(e.buf, Magic[:]...)
	e.u(Version)
	e.i(int64(h.Rank))
	e.i(int64(h.WorldSize))
	e.u(uint64(len(h.Label)))
	e.buf = append(e.buf, h.Label...)
}

func (e *enc) dtDef(dt DT) uint64 { return e.intern(dt.Name) }

func (e *enc) dt(dt DT, nameID uint64) {
	e.u(nameID)
	e.i(dt.Size)
	e.i(dt.TypeartID)
}

// event appends one encoded record. String definitions for the record
// are emitted first, then the record itself references them by id, so a
// decoder can frame records by opcode alone.
//
// The opcode is validated before anything is appended or interned: an
// unencodable event must leave the buffer, string table, and time-delta
// state untouched, so a streaming Writer can drop the record without
// tearing the stream (a partial record would render everything after it
// undecodable).
func (e *enc) event(ev *Event) error {
	if ev.Op <= OpString || ev.Op > opMax {
		return fmt.Errorf("trace: cannot encode op %d", ev.Op)
	}
	var nameID, dtID uint64
	var argIDs []uint64
	switch ev.Op {
	case OpKernelLaunch:
		nameID = e.intern(ev.Name)
		argIDs = make([]uint64, len(ev.Args))
		for i := range ev.Args {
			argIDs[i] = e.intern(ev.Args[i].Param)
		}
	case OpCollPre, OpCollPost:
		nameID = e.intern(ev.Name)
	case OpSend, OpSendDone, OpRecvPost, OpRecvDone, OpIsend, OpIrecv:
		dtID = e.dtDef(ev.DT)
	}

	e.u(uint64(ev.Op))
	delta := ev.Time - e.last
	if delta < 0 {
		delta = 0
	}
	e.last += delta
	e.u(uint64(delta))

	switch ev.Op {
	case OpAllocDone:
		e.u(ev.Addr)
		e.i(ev.Size)
		e.k(ev.Kind)
	case OpFree:
		e.u(ev.Addr)
		e.k(ev.Kind)
		e.k(ev.Flags)
	case OpStreamCreated, OpStreamDestroyed, OpStreamSync, OpStreamQuery:
		e.i(ev.Stream)
		e.k(ev.Flags)
	case OpEventCreated, OpEventDestroyed, OpEventSync, OpEventQuery:
		e.i(ev.CudaEvt)
	case OpEventRecord:
		e.i(ev.CudaEvt)
		e.i(ev.Stream)
		e.k(ev.Flags)
	case OpStreamWaitEvent:
		e.i(ev.Stream)
		e.k(ev.Flags)
		e.i(ev.CudaEvt)
	case OpDeviceSync, OpFinalize:
	case OpKernelLaunch:
		e.u(nameID)
		e.i(ev.Stream)
		e.k(ev.Flags)
		e.i(ev.GridX)
		e.i(ev.GridY)
		e.i(ev.BlockX)
		e.i(ev.BlockY)
		e.u(uint64(len(ev.Args)))
		for i := range ev.Args {
			a := &ev.Args[i]
			e.k(a.Kind)
			e.u(a.Ptr)
			e.i(a.Int)
			e.u(a.Bits)
			e.u(argIDs[i])
			e.k(a.Access)
		}
	case OpMemcpy:
		e.u(ev.Addr)
		e.u(ev.Addr2)
		e.i(ev.Size)
		e.k(ev.Kind)
		e.k(ev.Kind2)
		e.k(ev.Flags)
		e.i(ev.Stream)
	case OpMemset:
		e.u(ev.Addr)
		e.i(ev.Size)
		e.k(ev.Kind)
		e.k(ev.Flags)
		e.i(ev.Stream)
	case OpSend, OpSendDone, OpRecvPost:
		e.u(ev.Addr)
		e.i(ev.Count)
		e.dt(ev.DT, dtID)
		e.i(ev.Peer)
		e.i(ev.Tag)
	case OpRecvDone:
		e.u(ev.Addr)
		e.i(ev.Count)
		e.dt(ev.DT, dtID)
		e.i(ev.Src)
		e.i(ev.SrcTag)
		e.i(ev.RecvCount)
	case OpIsend, OpIrecv:
		e.u(ev.Addr)
		e.i(ev.Count)
		e.dt(ev.DT, dtID)
		e.i(ev.Peer)
		e.i(ev.Tag)
		e.u(ev.Req)
	case OpWait:
		e.u(ev.Req)
	case OpWaitDone:
		e.u(ev.Req)
		e.i(ev.Src)
		e.i(ev.SrcTag)
		e.i(ev.RecvCount)
	case OpCollPre, OpCollPost:
		e.u(nameID)
		e.u(ev.Addr)
		e.i(ev.Size)
		e.u(ev.WAddr)
		e.i(ev.WSize)
	case OpHostRead, OpHostWrite, OpHostReadRange, OpHostWriteRange:
		e.u(ev.Addr)
		e.i(ev.Size)
	case OpTypedAlloc:
		e.u(ev.Addr)
		e.i(ev.TypeID)
		e.i(ev.Count)
		e.k(ev.Kind)
	default:
		return fmt.Errorf("trace: cannot encode op %d", ev.Op)
	}
	return nil
}

// Encode serializes a whole trace. The output is canonical: encoding the
// result of Decode yields byte-identical output.
func Encode(tr *Trace) ([]byte, error) {
	e := newEnc()
	e.header(tr.Header)
	for i := range tr.Events {
		if err := e.event(&tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// flushThreshold is the buffered-bytes level at which the streaming
// Writer drains to the underlying io.Writer.
const flushThreshold = 1 << 16

// Writer streams a per-rank trace to an io.Writer. It is not safe for
// concurrent use; the event stream of one rank is emitted from that
// rank's goroutine only. I/O errors are sticky and surfaced by Flush;
// unencodable records are rolled back and counted (Dropped) instead of
// poisoning the stream, so everything emitted before and after a bad
// record stays decodable.
type Writer struct {
	out     io.Writer
	e       *enc
	err     error
	dropped int64
	written int64
}

// NewWriter creates a writer and encodes the header.
func NewWriter(out io.Writer, h Header) *Writer {
	w := &Writer{out: out, e: newEnc()}
	w.e.header(h)
	return w
}

// Emit appends one event record. A record that cannot be encoded is
// dropped atomically: the buffer and delta state are restored to the
// previous record boundary and the drop is counted.
func (w *Writer) Emit(ev *Event) {
	if w.err != nil {
		return
	}
	n, last := len(w.e.buf), w.e.last
	if err := w.e.event(ev); err != nil {
		w.e.buf = w.e.buf[:n]
		w.e.last = last
		w.dropped++
		return
	}
	if len(w.e.buf) >= flushThreshold {
		w.drain()
	}
}

// Dropped reports how many records Emit rejected and rolled back.
func (w *Writer) Dropped() int64 { return w.dropped }

// BytesWritten reports bytes successfully handed to the underlying
// io.Writer (buffered bytes are excluded until drained).
func (w *Writer) BytesWritten() int64 { return w.written }

func (w *Writer) drain() {
	if len(w.e.buf) == 0 {
		return
	}
	if n, err := w.out.Write(w.e.buf); err != nil && w.err == nil {
		w.err = err
	} else {
		w.written += int64(n)
	}
	w.e.buf = w.e.buf[:0]
}

// Flush drains buffered records and returns the sticky error, if any.
func (w *Writer) Flush() error {
	if w.err == nil {
		w.drain()
	}
	return w.err
}
