package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleTrace exercises every opcode, string interning (repeated and
// fresh names), kernel arguments of all kinds, and flag combinations.
func sampleTrace() *Trace {
	dt := DT{Name: "MPI_DOUBLE", Size: 8, TypeartID: 23}
	evs := []Event{
		{Op: OpAllocDone, Time: 10, Addr: 0x30000000000, Size: 512, Kind: 3},
		{Op: OpTypedAlloc, Time: 12, Addr: 0x30000000000, TypeID: 23, Count: 64, Kind: 3},
		{Op: OpStreamCreated, Time: 20, Stream: 1, Flags: FlagNonBlocking},
		{Op: OpEventCreated, Time: 30, CudaEvt: 1},
		{Op: OpKernelLaunch, Time: 40, Name: "k_write", Stream: 1, Flags: FlagNonBlocking,
			GridX: 4, GridY: 2, BlockX: 128, BlockY: 1,
			Args: []KernelArg{
				{Kind: 2, Ptr: 0x30000000000, Param: "buf", Access: 1},
				{Kind: 1, Int: 64, Param: "n"},
				{Kind: 0, Bits: 0x3FF0000000000000, Param: "alpha"},
			}},
		{Op: OpEventRecord, Time: 50, CudaEvt: 1, Stream: 1, Flags: FlagNonBlocking},
		{Op: OpStreamWaitEvent, Time: 60, Stream: 0, CudaEvt: 1},
		{Op: OpEventSync, Time: 70, CudaEvt: 1},
		{Op: OpEventQuery, Time: 71, CudaEvt: 1},
		{Op: OpMemcpy, Time: 80, Addr: 0x20000000000, Addr2: 0x30000000000, Size: 512,
			Kind: 1, Kind2: 3, Flags: FlagSyncsHost, Stream: 0},
		{Op: OpMemset, Time: 90, Addr: 0x30000000000, Size: 512, Kind: 3,
			Flags: FlagAsync, Stream: 1},
		{Op: OpStreamSync, Time: 100, Stream: 1, Flags: FlagNonBlocking},
		{Op: OpStreamQuery, Time: 101, Stream: 1, Flags: FlagNonBlocking},
		{Op: OpDeviceSync, Time: 110},
		{Op: OpHostWrite, Time: 120, Addr: 0x20000000000, Size: 8},
		{Op: OpHostRead, Time: 121, Addr: 0x20000000000, Size: 8},
		{Op: OpHostWriteRange, Time: 122, Addr: 0x20000000000, Size: 512},
		{Op: OpHostReadRange, Time: 123, Addr: 0x20000000000, Size: 512},
		{Op: OpSend, Time: 130, Addr: 0x30000000000, Count: 64, DT: dt, Peer: 1, Tag: 7},
		{Op: OpSendDone, Time: 140, Addr: 0x30000000000, Count: 64, DT: dt, Peer: 1, Tag: 7},
		{Op: OpRecvPost, Time: 150, Addr: 0x30000000200, Count: 64, DT: dt, Peer: -1, Tag: -1},
		{Op: OpRecvDone, Time: 160, Addr: 0x30000000200, Count: 64, DT: dt,
			Src: 1, SrcTag: 7, RecvCount: 64},
		{Op: OpIsend, Time: 170, Addr: 0x30000000000, Count: 32, DT: dt, Peer: 1, Tag: 8, Req: 1},
		{Op: OpIrecv, Time: 180, Addr: 0x30000000200, Count: 32, DT: dt, Peer: 1, Tag: 9, Req: 2},
		{Op: OpWait, Time: 190, Req: 1},
		{Op: OpWaitDone, Time: 200, Req: 1, Src: -1, SrcTag: -1, RecvCount: -1},
		{Op: OpWait, Time: 210, Req: 2},
		{Op: OpWaitDone, Time: 220, Req: 2, Src: 1, SrcTag: 9, RecvCount: 32},
		{Op: OpCollPre, Time: 230, Name: "MPI_Allreduce", Addr: 0x20000000000, Size: 8,
			WAddr: 0x20000000040, WSize: 8},
		{Op: OpCollPost, Time: 240, Name: "MPI_Allreduce", Addr: 0x20000000000, Size: 8,
			WAddr: 0x20000000040, WSize: 8},
		{Op: OpKernelLaunch, Time: 250, Name: "k_write", Stream: 0,
			GridX: 1, GridY: 1, BlockX: 1, BlockY: 1},
		{Op: OpEventDestroyed, Time: 260, CudaEvt: 1},
		{Op: OpStreamDestroyed, Time: 270, Stream: 1, Flags: FlagNonBlocking},
		{Op: OpFree, Time: 280, Addr: 0x30000000000, Kind: 3, Flags: FlagSyncsHost},
		{Op: OpFinalize, Time: 290},
	}
	return &Trace{
		Header: Header{Rank: 1, WorldSize: 2, Label: "sample"},
		Events: evs,
	}
}

func TestOpCoverage(t *testing.T) {
	seen := map[Op]bool{}
	for _, ev := range sampleTrace().Events {
		seen[ev.Op] = true
	}
	for op := OpAllocDone; op <= opMax; op++ {
		if !seen[op] {
			t.Errorf("sampleTrace misses op %s", op)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Errorf("header: got %+v, want %+v", got.Header, tr.Header)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events: got %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if !reflect.DeepEqual(got.Events[i], tr.Events[i]) {
			t.Errorf("event %d:\n got  %+v\n want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReEncodeByteIdentical(t *testing.T) {
	tr := sampleTrace()
	e1, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Decode(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Encode(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(e1), len(e2))
	}
}

func TestWriterMatchesEncode(t *testing.T) {
	tr := sampleTrace()
	want, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, tr.Header)
	for i := range tr.Events {
		w.Emit(&tr.Events[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("streaming writer output differs from Encode: %d vs %d bytes",
			buf.Len(), len(want))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a trace"),
		Magic[:],                     // header truncated after magic
		append(Magic[:], 99),         // unsupported version
		append(Magic[:], 1, 2, 4, 0), // valid header, then nothing: OK actually
	}
	for i, data := range cases[:4] {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
	// Valid header + truncated record must error, not panic.
	good, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(good) - 1; cut > len(Magic); cut -= 7 {
		if _, err := Decode(good[:cut]); err == nil {
			// Truncation at a record boundary is legitimately decodable.
			continue
		}
	}
}

func TestStats(t *testing.T) {
	st := ComputeStats(sampleTrace())
	if st.Events != len(sampleTrace().Events) {
		t.Errorf("events: %d", st.Events)
	}
	if st.KernelLaunches["k_write"] != 2 {
		t.Errorf("kernel launches: %v", st.KernelLaunches)
	}
	if st.SentBytes != 64*8+32*8 {
		t.Errorf("sent bytes: %d", st.SentBytes)
	}
	if st.RecvBytes != 64*8+32*8 {
		t.Errorf("recv bytes: %d", st.RecvBytes)
	}
	if st.MaxInFlightReqs != 2 {
		t.Errorf("max in-flight: %d", st.MaxInFlightReqs)
	}
	if st.Collectives["MPI_Allreduce"] != 1 {
		t.Errorf("collectives: %v", st.Collectives)
	}
	out := st.Format()
	for _, want := range []string{"rank 1/2 (sample)", "k_write", "MPI_Allreduce"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestExportChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome([]*Trace{sampleTrace()}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event without pid: %v", ev)
		}
	}
	// Slices, metadata, and both ends of at least one flow arc.
	for _, ph := range []string{"X", "M", "s", "f"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in export (have %v)", ph, phases)
		}
	}
}

func TestReplaySampleTrace(t *testing.T) {
	// The sample stream is semantically plausible; replay must process
	// every event without error.
	rr, err := Replay(sampleTrace(), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Events != len(sampleTrace().Events) {
		t.Errorf("replayed %d events, want %d", rr.Events, len(sampleTrace().Events))
	}
	if rr.Rank != 1 || rr.WorldSize != 2 || rr.Label != "sample" {
		t.Errorf("header: %+v", rr)
	}
}
