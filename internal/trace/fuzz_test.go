package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzTraceDecode drives arbitrary bytes through the decoder. The
// decoder must never panic or over-allocate; and for every input it
// accepts, the canonical-encoding property must hold: encoding the
// decoded trace yields a blob that decodes to the same trace and
// re-encodes byte-identically (delta times are monotone and clamped
// after one decode, varints minimal, string table in first-use order —
// so the first re-encode is already the fixed point).
func FuzzTraceDecode(f *testing.F) {
	// Seeds: the full-coverage sample, an empty trace, a few
	// deliberately-broken prefixes, and salvageable torn tails.
	if data, err := Encode(sampleTrace()); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-3])   // torn tail record
		f.Add(data[:len(data)*2/3]) // torn mid-stream
	}
	if data, err := Encode(&Trace{Header: Header{Rank: 0, WorldSize: 1}}); err == nil {
		f.Add(data)
	}
	f.Add(Magic[:])
	f.Add([]byte("cutrace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Salvage must never panic; whenever it accepts the header, the
		// prefix it blesses must decode cleanly with the strict decoder
		// and yield exactly the events salvage reported.
		if str, info, serr := DecodeSalvage(data); serr == nil {
			ptr, perr := Decode(data[:info.ValidBytes])
			if perr != nil {
				t.Fatalf("salvaged prefix rejected by strict decode: %v", perr)
			}
			if len(ptr.Events) != info.Events || len(str.Events) != info.Events {
				t.Fatalf("salvage event counts disagree: strict=%d info=%d salvaged=%d",
					len(ptr.Events), info.Events, len(str.Events))
			}
			if !info.Truncated && info.ValidBytes != len(data) {
				t.Fatalf("non-truncated salvage stopped early: %+v", info)
			}
		}
		tr, err := Decode(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		e1, err := Encode(tr)
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := Decode(e1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		e2, err := Encode(tr2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("canonical encoding not a fixed point: %d vs %d bytes", len(e1), len(e2))
		}
		if tr2.Header != tr.Header || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("canonical encoding changed the trace: %d vs %d events",
				len(tr.Events), len(tr2.Events))
		}
	})
}

// TestWriteSeedCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzTraceDecode. Run with TRACE_WRITE_CORPUS=1 after
// changing the format (and bump Version).
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("TRACE_WRITE_CORPUS") == "" {
		t.Skip("set TRACE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	full, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	empty, err := Encode(&Trace{Header: Header{Rank: 3, WorldSize: 4, Label: "empty"}})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed-full-coverage": full,
		"seed-empty-trace":   empty,
		"seed-truncated":     full[:len(full)/2],
		"seed-torn-tail":     full[:len(full)-3],
		"seed-torn-stream":   full[:len(full)*2/3],
		"seed-magic-only":    Magic[:],
		"seed-bad-version":   append(append([]byte{}, Magic[:]...), 0xff, 0x01),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
