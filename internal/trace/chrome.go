package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export (the JSON format chrome://tracing and
// Perfetto load): one process per rank, one thread track per CUDA
// stream plus a host track and a lane per concurrently in-flight
// non-blocking MPI request. Synchronization is drawn as flow arrows:
// cudaEventRecord -> the waits that consume it, and request initiation
// -> its completing MPI_Wait.
//
// Durations are nominal — the trace records interception times, not
// device occupancy — so a slice spans from its enqueue to the next
// event on the same track (minimum 1 us), which reads naturally on a
// timeline without claiming hardware precision.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track ids inside one rank's process.
const (
	tidHost     int64 = 0
	tidStream0  int64 = 1       // stream track = tidStream0 + stream id
	tidReqLane0 int64 = 1 << 16 // request lanes sit far above stream ids
)

const minSliceUS = 1.0

func us(ns int64) float64 { return float64(ns) / 1e3 }

// ExportChrome renders one or more per-rank traces as a single Chrome
// trace_event JSON document.
func ExportChrome(traces []*Trace, w io.Writer) error {
	out := &chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, tr := range traces {
		exportRank(tr, out)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// slice is an open interval on one track, closed by track progression.
type openSlice struct {
	idx int // index into out.TraceEvents
	ts  float64
}

func exportRank(tr *Trace, out *chromeFile) {
	pid := tr.Header.Rank
	meta := func(name string, tid int64, value string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": value},
		})
	}
	pname := fmt.Sprintf("rank %d", pid)
	if tr.Header.Label != "" {
		pname += " — " + tr.Header.Label
	}
	meta("process_name", tidHost, pname)
	meta("thread_name", tidHost, "host / MPI")

	namedStreams := map[int64]bool{}
	streamTrack := func(id int64) int64 {
		if !namedStreams[id] {
			namedStreams[id] = true
			name := fmt.Sprintf("CUDA stream %d", id)
			if id == 0 {
				name = "CUDA default stream"
			}
			meta("thread_name", tidStream0+id, name)
		}
		return tidStream0 + id
	}

	// Request lanes: reused slots so concurrent requests stack visually.
	var lanes []bool // busy flags
	reqSliceIdx := map[uint64]int{}
	acquireLane := func() int64 {
		for i, busy := range lanes {
			if !busy {
				lanes[i] = true
				return tidReqLane0 + int64(i)
			}
		}
		lanes = append(lanes, true)
		i := len(lanes) - 1
		meta("thread_name", tidReqLane0+int64(i), fmt.Sprintf("MPI requests (lane %d)", i))
		return tidReqLane0 + int64(i)
	}

	// open holds the last slice per track, closed by the next event on
	// that track (nominal duration model).
	open := map[int64]*openSlice{}
	emit := func(name, cat string, tid int64, ts float64, args map[string]any) int {
		if o := open[tid]; o != nil {
			d := ts - o.ts
			if d < minSliceUS {
				d = minSliceUS
			}
			out.TraceEvents[o.idx].Dur = d
			delete(open, tid)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Phase: "X", TS: ts, Dur: minSliceUS, PID: pid, TID: tid, Args: args,
		})
		idx := len(out.TraceEvents) - 1
		open[tid] = &openSlice{idx: idx, ts: ts}
		return idx
	}
	flow := func(phase, id string, tid int64, ts float64) {
		ev := chromeEvent{
			Name: "sync", Cat: "sync", Phase: phase, TS: ts, PID: pid, TID: tid, ID: id,
		}
		if phase == "f" {
			ev.BP = "e"
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	// eventFlows tracks the flow id of the latest record per CUDA event.
	eventFlows := map[int64]string{}
	flowSeq := 0
	newFlowID := func(kind string, key int64) string {
		flowSeq++
		return fmt.Sprintf("r%d-%s%d-%d", pid, kind, key, flowSeq)
	}

	// Pending blocking-call slices on the host track (Pre -> Post pairs).
	var pendingHost []int

	for i := range tr.Events {
		ev := &tr.Events[i]
		ts := us(ev.Time)
		switch ev.Op {
		case OpKernelLaunch:
			emit(ev.Name, "kernel", streamTrack(ev.Stream), ts, map[string]any{
				"grid":  fmt.Sprintf("%dx%d", ev.GridX, ev.GridY),
				"block": fmt.Sprintf("%dx%d", ev.BlockX, ev.BlockY),
			})
		case OpMemcpy:
			emit("memcpy", "mem", streamTrack(ev.Stream), ts, map[string]any{"bytes": ev.Size})
		case OpMemset:
			emit("memset", "mem", streamTrack(ev.Stream), ts, map[string]any{"bytes": ev.Size})
		case OpAllocDone, OpFree, OpStreamCreated, OpStreamDestroyed,
			OpEventCreated, OpEventDestroyed:
			emit(ev.Op.String(), "cuda", tidHost, ts, nil)
		case OpEventRecord:
			emit(ev.Op.String(), "cuda", streamTrack(ev.Stream), ts, nil)
			id := newFlowID("evt", ev.CudaEvt)
			eventFlows[ev.CudaEvt] = id
			flow("s", id, streamTrack(ev.Stream), ts)
		case OpEventSync, OpEventQuery:
			emit(ev.Op.String(), "sync", tidHost, ts, nil)
			if id, ok := eventFlows[ev.CudaEvt]; ok {
				flow("f", id, tidHost, ts)
			}
		case OpStreamWaitEvent:
			tid := streamTrack(ev.Stream)
			emit(ev.Op.String(), "sync", tid, ts, nil)
			if id, ok := eventFlows[ev.CudaEvt]; ok {
				flow("f", id, tid, ts)
			}
		case OpStreamSync, OpStreamQuery, OpDeviceSync:
			emit(ev.Op.String(), "sync", tidHost, ts, nil)
		case OpSend, OpRecvPost, OpCollPre, OpWait:
			idx := emit(ev.Op.String(), "mpi", tidHost, ts, nil)
			pendingHost = append(pendingHost, idx)
		case OpSendDone, OpRecvDone, OpCollPost, OpWaitDone:
			// Close the matching Pre slice at this completion time.
			if n := len(pendingHost); n > 0 {
				idx := pendingHost[n-1]
				pendingHost = pendingHost[:n-1]
				d := ts - out.TraceEvents[idx].TS
				if d < minSliceUS {
					d = minSliceUS
				}
				out.TraceEvents[idx].Dur = d
				if o := open[tidHost]; o != nil && o.idx == idx {
					delete(open, tidHost)
				}
			}
			if ev.Op == OpWaitDone && ev.Req != 0 {
				if idx, ok := reqSliceIdx[ev.Req]; ok {
					d := ts - out.TraceEvents[idx].TS
					if d < minSliceUS {
						d = minSliceUS
					}
					out.TraceEvents[idx].Dur = d
					lane := out.TraceEvents[idx].TID - tidReqLane0
					if lane >= 0 && lane < int64(len(lanes)) {
						lanes[lane] = false
					}
					flow("f", fmt.Sprintf("r%d-req%d", pid, ev.Req), tidHost, ts)
					delete(reqSliceIdx, ev.Req)
				}
			}
		case OpIsend, OpIrecv:
			tid := acquireLane()
			name := "MPI_Isend"
			if ev.Op == OpIrecv {
				name = "MPI_Irecv"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "mpi", Phase: "X", TS: ts, Dur: minSliceUS,
				PID: pid, TID: tid,
				Args: map[string]any{"peer": ev.Peer, "tag": ev.Tag, "count": ev.Count, "dt": ev.DT.Name},
			})
			reqSliceIdx[ev.Req] = len(out.TraceEvents) - 1
			flow("s", fmt.Sprintf("r%d-req%d", pid, ev.Req), tid, ts)
		case OpFinalize:
			emit("MPI_Finalize", "mpi", tidHost, ts, nil)
		default:
			// Host scalar/range accesses and typed allocations are far too
			// dense to plot individually; stats covers them.
		}
	}
}
