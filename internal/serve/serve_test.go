package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cusango/internal/campaign"
	"cusango/internal/testsuite"
)

// smallMatrix is a fast real-executor matrix: six mpi-modes cases on
// the batched engine, classification only.
func smallMatrix() Request {
	zero := 0
	return Request{
		Kinds:   []string{"suite"},
		Filter:  "mpi-modes/",
		Engines: []string{"fast"},
		Seeds:   &zero,
	}
}

// offlineJSONL renders the matrix the way cusan-campaign would: same
// job expansion, same engine, canonical WriteJSONL.
func offlineJSONL(t *testing.T, req Request, exec func(campaign.Job) *campaign.Record, salt string, cache *campaign.Cache) []byte {
	t.Helper()
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatalf("expand offline matrix: %v", err)
	}
	rep := campaign.Run(jobs, exec, campaign.Options{Workers: 4, Cache: cache, Salt: salt})
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf, false); err != nil {
		t.Fatalf("offline WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Salt == "" {
		cfg.Salt = "test-salt"
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Drain)
	return srv, hs
}

func submit(t *testing.T, base string, req Request, tenant string) SubmitResponse {
	t.Helper()
	resp := submitRaw(t, base, req, tenant)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("submit: decode: %v", err)
	}
	return sr
}

func submitRaw(t *testing.T, base string, req Request, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest("POST", base+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hreq.Header.Set("X-API-Key", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return resp
}

func streamAll(t *testing.T, base, id string, from int) []byte {
	t.Helper()
	url := fmt.Sprintf("%s/v1/campaigns/%s/stream", base, id)
	if from > 0 {
		url += fmt.Sprintf("?from=%d", from)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return data
}

func campaignStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

// TestStreamByteIdentity is the service-boundary determinism pin: the
// streamed JSONL of a completed campaign must be byte-identical to the
// offline canonical report for the same matrix and salt.
func TestStreamByteIdentity(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})
	req := smallMatrix()

	sr := submit(t, hs.URL, req, "")
	streamed := streamAll(t, hs.URL, sr.ID, 0)
	want := offlineJSONL(t, req, testsuite.ExecuteJob, "test-salt", nil)
	if !bytes.Equal(streamed, want) {
		t.Fatalf("streamed JSONL differs from offline report:\nstreamed:\n%s\noffline:\n%s", streamed, want)
	}
	if sr.Jobs == 0 {
		t.Fatal("matrix expanded to zero jobs")
	}
}

// TestWarmResubmission: an identical matrix resubmitted against the
// shared cache executes zero jobs and streams identical bytes.
func TestWarmResubmission(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})
	req := smallMatrix()

	first := submit(t, hs.URL, req, "")
	cold := streamAll(t, hs.URL, first.ID, 0)
	coldStatus := campaignStatus(t, hs.URL, first.ID)
	if coldStatus.Executed != first.Jobs || coldStatus.CacheHits != 0 {
		t.Fatalf("cold run: executed=%d hits=%d, want executed=%d hits=0",
			coldStatus.Executed, coldStatus.CacheHits, first.Jobs)
	}

	second := submit(t, hs.URL, req, "")
	if second.ID == first.ID {
		t.Fatalf("resubmission reused campaign ID %s", first.ID)
	}
	warm := streamAll(t, hs.URL, second.ID, 0)
	warmStatus := campaignStatus(t, hs.URL, second.ID)
	if warmStatus.Executed != 0 || warmStatus.CacheHits != second.Jobs {
		t.Fatalf("warm run: executed=%d hits=%d, want executed=0 hits=%d",
			warmStatus.Executed, warmStatus.CacheHits, second.Jobs)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm stream differs from cold stream:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

// fakeExec is a deterministic pure-function executor for queue/drain
// tests: verdict and races derive from the job identity alone.
func fakeExec(j campaign.Job) *campaign.Record {
	r := &campaign.Record{Verdict: campaign.VerdictPass, Races: len(j.Case) % 3}
	if strings.Contains(j.Case, "nosync") {
		r.Findings = append(r.Findings,
			campaign.NewFinding("misclassification", j.Case, "synthetic finding"))
		r.Verdict = campaign.VerdictFail
	}
	return r
}

// TestDrainAndResume: drain mid-campaign — in-flight jobs finish, the
// stream ends with a drain marker, and a restarted server resumes the
// remainder so the concatenated stream equals the offline report.
func TestDrainAndResume(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := t.TempDir()

	var mu sync.Mutex
	started := 0
	blocked := make(chan struct{}, 16)
	release := make(chan struct{})
	gated := func(j campaign.Job) *campaign.Record {
		mu.Lock()
		started++
		n := started
		mu.Unlock()
		if n > 3 {
			select {
			case blocked <- struct{}{}:
			default:
			}
			<-release
		}
		return fakeExec(j)
	}

	zero := 0
	req := Request{Kinds: []string{"suite"}, Engines: []string{"fast"}, Seeds: &zero}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	total := len(jobs)
	if total < 6 {
		t.Fatalf("need a matrix with several jobs, got %d", total)
	}

	srv, err := New(Config{
		Workers: 2, Salt: "drain-salt", CacheDir: cacheDir, StateDir: stateDir, Exec: gated,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	sr := submit(t, hs.URL, req, "tenant-a")

	// Open the stream before draining so the client observes the marker.
	streamResp, err := http.Get(hs.URL + "/v1/campaigns/" + sr.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()

	// Wait until both workers are blocked in exec (3 done, 2 in flight),
	// then drain: the blocked jobs must complete, the rest must not run.
	<-blocked
	<-blocked
	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()
	waitDraining(t, hs.URL) // dispatch has stopped; now release the in-flight jobs
	close(release)
	<-drained

	firstBody, err := io.ReadAll(streamResp.Body)
	if err != nil {
		t.Fatalf("read drained stream: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(firstBody, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	var marker struct {
		Type       string `json:"type"`
		Campaign   string `json:"campaign"`
		ResumeFrom int    `json:"resume_from"`
	}
	if err := json.Unmarshal(last, &marker); err != nil || marker.Type != "drain" {
		t.Fatalf("stream did not end with a drain marker, last line: %s", last)
	}
	if marker.Campaign != sr.ID {
		t.Fatalf("marker campaign %q, want %q", marker.Campaign, sr.ID)
	}
	doneFirst := marker.ResumeFrom - 1 // lines delivered minus header
	if doneFirst < 3 || doneFirst >= total {
		t.Fatalf("first run delivered %d records, want in [3, %d)", doneFirst, total)
	}
	hs.Close()

	// Restart: the manifest resumes the campaign under its original ID;
	// the finished prefix comes from the shared cache.
	srv2, err := New(Config{
		Workers: 2, Salt: "drain-salt", CacheDir: cacheDir, StateDir: stateDir, Exec: fakeExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	defer srv2.Drain()

	rest := streamAll(t, hs2.URL, sr.ID, marker.ResumeFrom)
	got := append(append([]byte(nil), firstBody[:len(firstBody)-len(last)-1]...), rest...)

	want := offlineJSONL(t, req, fakeExec, "offline-salt", nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs from offline report:\ngot:\n%s\nwant:\n%s", got, want)
	}

	st := campaignStatus(t, hs2.URL, sr.ID)
	if st.Status != StatusDone {
		t.Fatalf("resumed campaign status %q, want done", st.Status)
	}
	if st.Executed != total-doneFirst {
		t.Fatalf("resume executed %d jobs, want %d (cache must cover the finished prefix)",
			st.Executed, total-doneFirst)
	}
	if st.CacheHits != doneFirst {
		t.Fatalf("resume cache hits %d, want %d", st.CacheHits, doneFirst)
	}
}

// TestBackpressure: backlog and tenant quota return 429, draining 503.
// The runner stays blocked in its first job throughout, so the queue
// and outstanding counts are exact.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	gated := func(j campaign.Job) *campaign.Record {
		<-block
		return fakeExec(j)
	}
	srv, err := New(Config{Workers: 1, Salt: "bp", Backlog: 3, TenantQuota: 2, Exec: gated})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	zero := 0
	req := Request{Kinds: []string{"suite"}, Filter: "mpi-modes/", Engines: []string{"fast"}, Seeds: &zero}

	// Runner takes tenant-a's campaign and blocks; "hog" then fills its
	// quota of 2 with queued campaigns (backlog 2/3).
	submit(t, hs.URL, req, "a")
	waitRunning(t, hs.URL)
	submit(t, hs.URL, req, "hog")
	submit(t, hs.URL, req, "hog")

	resp := submitRaw(t, hs.URL, req, "hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant quota: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	// A different tenant still fits (backlog 3/3)...
	submit(t, hs.URL, req, "b")
	// ...but the next one overflows the backlog, whoever asks.
	resp = submitRaw(t, hs.URL, req, "c")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlog overflow: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	go srv.Drain()
	waitDraining(t, hs.URL)
	resp = submitRaw(t, hs.URL, req, "d")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	close(block) // release the in-flight job so the drain completes
}

func serverStatus(t *testing.T, base string) ServerStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	defer resp.Body.Close()
	var st ServerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

func waitRunning(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if len(serverStatus(t, base).Running) > 0 {
			return
		}
	}
	t.Fatal("runner never picked up the campaign")
}

func waitDraining(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if serverStatus(t, base).Draining {
			return
		}
	}
	t.Fatal("server never started draining")
}

// TestFindingsIndex: findings reported by any campaign are queryable
// by fingerprint, with cross-campaign dedup on one entry.
func TestFindingsIndex(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2, Exec: fakeExec})
	zero := 0
	req := Request{Kinds: []string{"suite"}, Filter: "nosync", Engines: []string{"fast"}, Seeds: &zero}

	a := submit(t, hs.URL, req, "")
	streamAll(t, hs.URL, a.ID, 0)
	b := submit(t, hs.URL, req, "")
	streamAll(t, hs.URL, b.ID, 0)

	// Recover a fingerprint from the stream's finding trailer line.
	body := streamAll(t, hs.URL, a.ID, 0)
	var fp string
	for _, line := range bytes.Split(body, []byte("\n")) {
		var rec struct {
			Type string `json:"type"`
			FP   string `json:"fp"`
		}
		if json.Unmarshal(line, &rec) == nil && rec.Type == "finding" {
			fp = rec.FP
			break
		}
	}
	if fp == "" {
		t.Fatal("no finding line in stream")
	}

	resp, err := http.Get(hs.URL + "/v1/findings/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("findings: status %d", resp.StatusCode)
	}
	var entry FindingEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.FP != fp || entry.Jobs < 2 || len(entry.Campaigns) != 2 {
		t.Fatalf("finding entry %+v: want fp=%s, >=2 jobs, 2 campaigns", entry, fp)
	}
	if entry.Campaigns[0] != a.ID && entry.Campaigns[1] != a.ID {
		t.Fatalf("finding campaigns %v missing %s", entry.Campaigns, a.ID)
	}

	resp2, err := http.Get(hs.URL + "/v1/findings/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", resp2.StatusCode)
	}
	_ = srv
}

// TestBadRequests: malformed bodies and unmatchable matrices are 400s.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, Exec: fakeExec})
	for name, body := range map[string]string{
		"bad json":      "{",
		"unknown field": `{"bogus": 1}`,
		"bad kind":      `{"kinds": ["nope"]}`,
		"bad engine":    `{"engines": ["warp"]}`,
		"bad filter":    `{"filter": "no-such-case"}`,
		"zero jobs":     `{"kinds": ["chaos"], "seeds": 0}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", resp.StatusCode)
	}
}

// TestQueuePriority: higher priority runs first; ties keep FIFO.
func TestQueuePriority(t *testing.T) {
	var q queue
	mk := func(pri int, seq int64) *campaignState {
		return &campaignState{ID: fmt.Sprintf("p%d-s%d", pri, seq), Priority: pri, Seq: seq}
	}
	q.push(mk(0, 1))
	q.push(mk(5, 2))
	q.push(mk(5, 3))
	q.push(mk(1, 4))
	var got []string
	for st := q.pop(); st != nil; st = q.pop() {
		got = append(got, st.ID)
	}
	want := []string{"p5-s2", "p5-s3", "p1-s4", "p0-s1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("pop order %v, want %v", got, want)
	}
}
