package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Manifests make the backlog durable: every accepted campaign writes
// one before it is acknowledged, and deletes it only when the trailer
// has been emitted. A daemon killed mid-campaign therefore restarts
// with the incomplete and the never-started campaigns re-queued under
// their original IDs; the shared result cache turns the already-
// finished jobs of an interrupted campaign into warm hits, so a resume
// replays the stream byte-identically and executes only the remainder.

// manifestVersion guards the on-disk schema.
const manifestVersion = 1

// manifest is the durable form of one queued or running campaign.
type manifest struct {
	V        int     `json:"v"`
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Priority int     `json:"priority"`
	Seq      int64   `json:"seq"`
	Req      Request `json:"req"`
}

func manifestPath(dir, id string) string {
	return filepath.Join(dir, id+".manifest.json")
}

// writeManifest persists st atomically and durably (tmp + fsync +
// rename): after a kill -9 the file either exists with complete
// contents or not at all, never truncated.
func writeManifest(dir string, st *campaignState) error {
	m := manifest{
		V: manifestVersion, ID: st.ID, Tenant: st.Tenant,
		Priority: st.Priority, Seq: st.Seq, Req: st.Req,
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	path := manifestPath(dir, st.ID)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// removeManifest deletes the manifest for id; missing is fine.
func removeManifest(dir, id string) {
	_ = os.Remove(manifestPath(dir, id))
}

// loadManifests reads every manifest under dir in resume order
// (priority desc, seq asc). Unreadable or version-mismatched files are
// skipped with a warning on stderr — a corrupt manifest must not keep
// the daemon from starting.
func loadManifests(dir string) []manifest {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".manifest.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.V != manifestVersion || m.ID == "" {
			fmt.Fprintf(os.Stderr, "cusan-serve: skipping bad manifest %s\n", e.Name())
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
