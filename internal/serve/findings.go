package serve

import (
	"sort"
	"sync"

	"cusango/internal/campaign"
)

// findingIndex is the cross-campaign finding store: every finding that
// any job of any campaign reported, keyed by its stable SHA-256
// fingerprint. The fingerprint hashes (kind, case, detail) only, so
// the same defect observed by different campaigns, seeds, or engines
// lands on one entry — GET /v1/findings/{fp} answers "has this defect
// ever been seen, and where" with a map lookup.
type findingIndex struct {
	mu sync.Mutex
	by map[string]*FindingEntry
}

// FindingEntry is the JSON shape of GET /v1/findings/{fp}.
type FindingEntry struct {
	campaign.Finding
	// Jobs counts job records that reported the finding.
	Jobs int `json:"jobs"`
	// Campaigns lists the campaign IDs that observed it, sorted.
	Campaigns []string `json:"campaigns"`
}

func newFindingIndex() *findingIndex {
	return &findingIndex{by: make(map[string]*FindingEntry)}
}

// add indexes one job record's findings under its campaign ID.
func (x *findingIndex) add(campaignID string, r *campaign.Record) {
	if len(r.Findings) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, f := range r.Findings {
		e, ok := x.by[f.FP]
		if !ok {
			e = &FindingEntry{Finding: f}
			x.by[f.FP] = e
		}
		e.Jobs++
		if i := sort.SearchStrings(e.Campaigns, campaignID); i == len(e.Campaigns) || e.Campaigns[i] != campaignID {
			e.Campaigns = append(e.Campaigns, "")
			copy(e.Campaigns[i+1:], e.Campaigns[i:])
			e.Campaigns[i] = campaignID
		}
	}
}

// get returns a copy of the entry for fp, or nil.
func (x *findingIndex) get(fp string) *FindingEntry {
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.by[fp]
	if !ok {
		return nil
	}
	cp := *e
	cp.Campaigns = append([]string(nil), e.Campaigns...)
	return &cp
}

// size is the distinct-fingerprint count.
func (x *findingIndex) size() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.by)
}
