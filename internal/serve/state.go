package serve

import (
	"sync"

	"cusango/internal/campaign"
)

// Campaign lifecycle states.
const (
	StatusQueued  = "queued"  // accepted, waiting for the runner
	StatusRunning = "running" // jobs executing
	StatusDone    = "done"    // all jobs finished, trailer emitted
	StatusDrained = "drained" // interrupted by shutdown; resumes on restart
)

// campaignState is one submitted campaign: its immutable identity and
// the mutable stream of report lines. Lines accumulate in report
// order — header first, then job records in enumeration order, then
// the finding/summary trailer — so a client that concatenates
// lines[0:] reads exactly the offline canonical JSONL report.
type campaignState struct {
	ID       string
	Tenant   string
	Priority int
	Seq      int64 // submit order; FIFO tiebreak within a priority
	Req      Request
	Jobs     int

	mu     sync.Mutex
	cond   *sync.Cond
	status string
	lines  [][]byte
	// done counts job records appended so far (excludes header/trailer).
	done int
	// executed and cacheHits are this campaign's split of done.
	executed  int
	cacheHits int
	// attempts counts supervised execution attempts; retried counts jobs
	// that needed more than one (a wall-clock fact — reported live, never
	// part of the canonical line stream).
	attempts int
	retried  int
	errMsg   string
}

func newCampaignState(id, tenant string, priority int, seq int64, req Request, jobs int) *campaignState {
	st := &campaignState{
		ID: id, Tenant: tenant, Priority: priority, Seq: seq,
		Req: req, Jobs: jobs, status: StatusQueued,
	}
	st.cond = sync.NewCond(&st.mu)
	// The header line depends only on the job count, so it is streamable
	// the moment the campaign is accepted.
	st.lines = append(st.lines, campaign.HeaderLine(jobs))
	return st
}

// appendLine publishes one report line and wakes stream followers.
func (st *campaignState) appendLine(line []byte) {
	st.mu.Lock()
	st.lines = append(st.lines, line)
	st.cond.Broadcast()
	st.mu.Unlock()
}

// appendRecord publishes one job-record line and updates the progress
// counters in the same critical section.
func (st *campaignState) appendRecord(line []byte, cached bool) {
	st.mu.Lock()
	st.lines = append(st.lines, line)
	st.done++
	if cached {
		st.cacheHits++
	} else {
		st.executed++
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// noteAttempt records one supervised execution attempt (1-based per
// job; attempt 2 marks the job retried).
func (st *campaignState) noteAttempt(attempt int) {
	st.mu.Lock()
	st.attempts++
	if attempt == 2 {
		st.retried++
	}
	st.mu.Unlock()
}

// setStatus transitions the lifecycle state and wakes followers.
func (st *campaignState) setStatus(status, errMsg string) {
	st.mu.Lock()
	st.status = status
	if errMsg != "" {
		st.errMsg = errMsg
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// wake broadcasts without a state change (drain begin, client cancel).
func (st *campaignState) wake() {
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// snapshot returns the mutable fields under the lock.
func (st *campaignState) snapshot() (status string, lines, done, executed, hits, attempts, retried int, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status, len(st.lines), st.done, st.executed, st.cacheHits, st.attempts, st.retried, st.errMsg
}

// Status is the JSON shape of GET /v1/campaigns/{id}.
type Status struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Tenant    string `json:"tenant"`
	Priority  int    `json:"priority,omitempty"`
	Jobs      int    `json:"jobs"`
	Done      int    `json:"done"`
	Executed  int    `json:"executed"`
	CacheHits int    `json:"cache_hits"`
	// Attempts counts supervised execution attempts across the
	// campaign's jobs; Retried counts jobs that needed more than one.
	Attempts int    `json:"attempts"`
	Retried  int    `json:"retried"`
	Lines    int    `json:"lines"`
	Error    string `json:"error,omitempty"`
}

func (st *campaignState) statusJSON() Status {
	status, lines, done, executed, hits, attempts, retried, errMsg := st.snapshot()
	return Status{
		ID: st.ID, Status: status, Tenant: st.Tenant, Priority: st.Priority,
		Jobs: st.Jobs, Done: done, Executed: executed, CacheHits: hits,
		Attempts: attempts, Retried: retried,
		Lines: lines, Error: errMsg,
	}
}
