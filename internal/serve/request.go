package serve

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"cusango/internal/campaign"
	"cusango/internal/testsuite"
	"cusango/internal/tsan"
)

// Request is the job-matrix specification a client submits with
// POST /v1/campaigns. The fields mirror the cusan-campaign flags one
// for one, and the expansion into jobs is the CLI's expansion — same
// enumerators, same order — which is what makes the streamed report
// byte-identical to the offline one for the same matrix and salt.
type Request struct {
	// Kinds are expanded in the given order: suite, chaos, replay,
	// explore. Empty means the CLI default (suite, chaos, replay).
	Kinds []string `json:"kinds,omitempty"`
	// Filter is a substring filter on case names.
	Filter string `json:"filter,omitempty"`
	// Engines are the shadow engines to sweep (default fast, slow).
	Engines []string `json:"engines,omitempty"`
	// Seeds is the chaos seed count, seeds 1..N. Absent means the CLI
	// default (25); an explicit 0 disables chaos seeding.
	Seeds *int `json:"seeds,omitempty"`
	// FaultsRate is the chaos per-site fault rate (default 0.05).
	FaultsRate *float64 `json:"faults_rate,omitempty"`
	// ExploreBudget caps schedules per explore job (0 = suite default).
	ExploreBudget int `json:"explore_budget,omitempty"`
	// ExploreBound is the explore preemption bound (0 = unbounded).
	ExploreBound int `json:"explore_bound,omitempty"`
	// Priority orders the queue: higher runs first; ties FIFO.
	Priority int `json:"priority,omitempty"`
}

// defaults mirror the cusan-campaign flag defaults.
const (
	defaultSeeds      = 25
	defaultFaultsRate = 0.05
)

func defaultKinds() []string   { return []string{"suite", "chaos", "replay"} }
func defaultEngines() []string { return []string{"fast", "slow"} }

// normalized returns a copy with defaults applied, so two requests
// that expand to the same matrix share one canonical form.
func (r Request) normalized() Request {
	cp := r
	if len(cp.Kinds) == 0 {
		cp.Kinds = defaultKinds()
	}
	if len(cp.Engines) == 0 {
		cp.Engines = defaultEngines()
	}
	if cp.Seeds == nil {
		n := defaultSeeds
		cp.Seeds = &n
	}
	if cp.FaultsRate == nil {
		f := defaultFaultsRate
		cp.FaultsRate = &f
	}
	return cp
}

// MatrixID is a stable content hash of the normalized matrix
// specification plus the build salt — the campaign-level analog of
// Job.CacheKey. Identical resubmissions share it.
func (r Request) MatrixID(salt string) string {
	n := r.normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "cusan-serve-matrix/v1|%s|kinds=%s|filter=%s|engines=%s|seeds=%d|rate=%g|eb=%d|ep=%d",
		salt, strings.Join(n.Kinds, ","), n.Filter, strings.Join(n.Engines, ","),
		*n.Seeds, *n.FaultsRate, n.ExploreBudget, n.ExploreBound)
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// Jobs expands the request into campaign jobs, mirroring
// cusan-campaign's enumeration exactly. A request that expands to no
// jobs, names an unknown kind or engine, or filters every case away
// is a *BadRequestError*.
func (r Request) Jobs() ([]campaign.Job, error) {
	n := r.normalized()

	var engines []tsan.Engine
	for _, name := range n.Engines {
		eng, err := tsan.ParseEngine(strings.TrimSpace(name))
		if err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		engines = append(engines, eng)
	}
	if *n.Seeds < 0 || *n.FaultsRate < 0 || *n.FaultsRate > 1 {
		return nil, &BadRequestError{Msg: "seeds must be >= 0, faults_rate in [0,1]"}
	}

	cases := testsuite.Cases()
	if n.Filter != "" {
		kept := cases[:0]
		for _, c := range cases {
			if strings.Contains(c.Name, n.Filter) {
				kept = append(kept, c)
			}
		}
		cases = kept
		if len(cases) == 0 {
			return nil, &BadRequestError{Msg: fmt.Sprintf("no case matches filter %q", n.Filter)}
		}
	}
	seedList := make([]uint64, *n.Seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}

	var jobs []campaign.Job
	for _, kind := range n.Kinds {
		switch strings.TrimSpace(kind) {
		case testsuite.KindSuite:
			jobs = append(jobs, testsuite.SuiteJobs(cases, engines)...)
		case testsuite.KindChaos:
			jobs = append(jobs, testsuite.ChaosJobs(cases, seedList, *n.FaultsRate, engines)...)
		case testsuite.KindReplay:
			jobs = append(jobs, testsuite.ReplayJobs(cases, engines)...)
		case testsuite.KindExplore:
			jobs = append(jobs, testsuite.ExploreJobs(cases, engines, n.ExploreBudget, n.ExploreBound)...)
		default:
			return nil, &BadRequestError{Msg: fmt.Sprintf("unknown kind %q", kind)}
		}
	}
	if len(jobs) == 0 {
		return nil, &BadRequestError{Msg: "matrix expands to zero jobs"}
	}
	return jobs, nil
}

// BadRequestError marks a client-side matrix error (HTTP 400).
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }
