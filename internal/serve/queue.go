package serve

import "sort"

// queue is the campaign backlog: a priority queue ordered by
// (priority desc, submit sequence asc) with a bound. It is not
// self-locking — the Server's mutex guards it — because admission
// decisions (backlog bound, tenant quota) and the push must be atomic.
type queue struct {
	items []*campaignState
	bound int
}

// full reports whether the backlog bound is reached.
func (q *queue) full() bool { return q.bound > 0 && len(q.items) >= q.bound }

// push inserts in priority order. Equal priorities keep submit order,
// so the sort must be stable in Seq — we insert at the first position
// with strictly lower priority.
func (q *queue) push(st *campaignState) {
	i := sort.Search(len(q.items), func(i int) bool {
		return q.items[i].Priority < st.Priority ||
			(q.items[i].Priority == st.Priority && q.items[i].Seq > st.Seq)
	})
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = st
}

// pop removes the head (highest priority, earliest submit), nil when
// empty.
func (q *queue) pop() *campaignState {
	return q.remove(0)
}

// popFair removes the fairest item of the top priority class: among
// the campaigns sharing the highest queued priority, the one whose
// tenant has been served the fewest campaigns so far (earliest submit
// breaks ties, since the class is Seq-ordered). Priority still trumps
// fairness — a starving tenant's low-priority campaign never overtakes
// another tenant's high-priority one.
func (q *queue) popFair(served map[string]int64) *campaignState {
	if len(q.items) == 0 {
		return nil
	}
	best, top := 0, q.items[0].Priority
	for i, it := range q.items {
		if it.Priority != top {
			break
		}
		if served[it.Tenant] < served[q.items[best].Tenant] {
			best = i
		}
	}
	return q.remove(best)
}

func (q *queue) remove(i int) *campaignState {
	if i < 0 || i >= len(q.items) {
		return nil
	}
	st := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return st
}

// depth is the queued-campaign count.
func (q *queue) depth() int { return len(q.items) }

// position reports st's 0-based place in line, -1 if not queued.
func (q *queue) position(st *campaignState) int {
	for i, it := range q.items {
		if it == st {
			return i
		}
	}
	return -1
}
