package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// HTTP surface. All responses are JSON; the stream endpoint is
// newline-delimited JSON (NDJSON) with chunked transfer.
//
//	POST /v1/campaigns               submit a matrix  -> 202 {id,...}
//	GET  /v1/campaigns/{id}          status           -> 200 Status
//	GET  /v1/campaigns/{id}/stream   JSONL records    -> 200 NDJSON
//	GET  /v1/findings/{fp}           finding by FP    -> 200 FindingEntry
//	GET  /v1/status                  daemon health    -> 200 ServerStatus
//
// The tenant is the X-API-Key header ("anonymous" when absent).
// Admission rejections: 400 bad matrix, 429 backlog/quota (with
// Retry-After), 503 draining.

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/findings/{fp}", s.handleFinding)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// OverloadResponse is the JSON body of a 429 rejection: enough for a
// client to back off intelligently instead of hammering a fixed delay.
type OverloadResponse struct {
	Error string `json:"error"`
	// QueueDepth is the current backlog; Position is where a resubmission
	// would land in it (== QueueDepth for a lowest-priority submit).
	QueueDepth int `json:"queue_depth"`
	Position   int `json:"position"`
	// RetryAfter mirrors the Retry-After header, in seconds.
	RetryAfter int `json:"retry_after"`
}

// writeOverload rejects with 429 and a Retry-After computed from the
// actual congestion rather than a constant: the deeper the backlog
// relative to the campaign runners (backlog pressure) or the fuller the
// tenant's quota window (quota pressure), the longer the hint.
func (s *Server) writeOverload(w http.ResponseWriter, err error, tenant string) {
	s.mu.Lock()
	depth := s.q.depth()
	out := s.outstanding[tenant]
	s.mu.Unlock()
	after := 1 + depth/s.concurrency
	if errors.Is(err, ErrQuota) && s.tenantQuota > 0 {
		// The tenant's own campaigns gate readmission, not the global
		// queue: wait for roughly the over-quota excess to finish.
		if a := 1 + out - s.tenantQuota; a > after {
			after = a
		}
	}
	if after > 60 {
		after = 60
	}
	w.Header().Set("Retry-After", strconv.Itoa(after))
	writeJSON(w, http.StatusTooManyRequests, OverloadResponse{
		Error:      err.Error(),
		QueueDepth: depth,
		Position:   depth,
		RetryAfter: after,
	})
}

func tenantOf(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

// SubmitResponse is the JSON shape of POST /v1/campaigns.
type SubmitResponse struct {
	ID       string `json:"id"`
	Jobs     int    `json:"jobs"`
	Status   string `json:"status"`
	Position int    `json:"position"` // 0-based place in the queue
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tenant := tenantOf(r)
	st, pos, err := s.Submit(req, tenant)
	switch {
	case err == nil:
	case errors.Is(err, ErrBacklog), errors.Is(err, ErrQuota):
		s.writeOverload(w, err, tenant)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		var bad *BadRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, bad.Msg)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	status, _, _, _, _, _, _, _ := st.snapshot()
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: st.ID, Jobs: st.Jobs, Status: status, Position: pos,
	})
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st := s.Campaign(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, st.statusJSON())
}

func (s *Server) handleFinding(w http.ResponseWriter, r *http.Request) {
	e := s.Finding(r.PathValue("fp"))
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown fingerprint")
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// handleStream streams the campaign's report lines from ?from=N (a
// line offset; the header is line 0) to the end of the report. For a
// completed campaign the body from offset 0 is byte-identical to the
// offline canonical JSONL report; the summary trailer is the natural
// terminal line. During a drain the stream ends early with a
// `"type":"drain"` marker carrying the offset to resume from after
// restart. A disconnected client just reconnects with the offset it
// reached.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	st := s.Campaign(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative line offset")
			return
		}
		from = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A canceled client cannot interrupt cond.Wait directly; a watcher
	// goroutine converts the cancellation into a broadcast. It exits
	// with the handler (the request context completes then).
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		st.wake()
	}()

	i := from
	for {
		st.mu.Lock()
		// Wait while the campaign may still produce lines we have not
		// got: running campaigns always may (drain lets in-flight jobs
		// finish, and each landing record broadcasts); queued ones only
		// until the drain begins. Terminal states never grow their line
		// list — status is set only after the last append, under this
		// lock — so a terminal snapshot with the batch drained is final.
		for ctx.Err() == nil && i >= len(st.lines) &&
			(st.status == StatusRunning || (st.status == StatusQueued && !s.draining.Load())) {
			st.cond.Wait()
		}
		batch := st.lines[min(i, len(st.lines)):]
		status := st.status
		st.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return
			}
			i++
		}
		if len(batch) > 0 {
			flusher.Flush()
		}
		switch {
		case status == StatusDone:
			// The summary line just went out; it is the terminal record.
			return
		case status == StatusDrained, status == StatusQueued && s.draining.Load():
			fmt.Fprintf(w, `{"v":1,"type":"drain","campaign":%q,"status":%q,"resume_from":%d}`+"\n",
				st.ID, status, i)
			flusher.Flush()
			return
		}
	}
}
