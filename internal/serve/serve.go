// Package serve is the checking-as-a-service layer: a long-lived
// daemon fronting the campaign engine (internal/campaign) with a JSON
// HTTP API. Clients submit job matrices, stream per-job JSONL records
// as they land, query findings by stable fingerprint across all
// campaigns, and share one process-wide content-addressed result
// cache — a warm resubmission of an identical matrix executes zero
// jobs.
//
// The load-bearing property is that determinism survives the service
// boundary: the line stream of a completed campaign, concatenated, is
// byte-identical to `cusan-campaign` offline output for the same
// matrix and build salt. That holds by construction — the daemon
// expands matrices with the CLI's own enumerators, receives records
// through the campaign engine's enumeration-order callback, and
// encodes every line with the same exported encoders WriteJSONL uses.
//
// Up to Concurrency campaigns run at once, drawn from the priority
// queue under tenant-fair round-robin (within a priority class, the
// tenant served the fewest campaigns goes first) and sharing one
// Workers-wide job pool, so a tenant's wide campaign cannot monopolize
// the machine. Job execution is supervised (internal/campaign
// Supervise): per-attempt wall-clock deadlines, logical step budgets,
// and bounded deterministic retry for infra-class failures.
//
// Shutdown is a graceful drain: in-flight jobs finish, queued
// campaigns persist resumable manifests, stream clients get a clean
// terminal record, and a restarted daemon re-queues the remainder —
// the shared cache turns the finished prefix into warm hits, so the
// resumed stream is a byte-exact continuation. The same manifest +
// cache machinery makes the daemon kill -9 safe: manifests and cache
// entries are fsynced before rename, so a hard crash loses at most
// uncached in-flight results, and the restarted stream is still a
// byte-exact continuation.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cusango/internal/campaign"
	"cusango/internal/core"
	"cusango/internal/testsuite"
)

// Config configures a daemon instance.
type Config struct {
	// Workers bounds the process-wide job pool shared by all running
	// campaigns; <= 0 means NumCPU.
	Workers int
	// Concurrency is how many campaigns may run at once; <= 0 means 1.
	// They share the Workers-wide job pool, so raising it trades one
	// campaign's latency for cross-tenant fairness, not for more load.
	Concurrency int
	// Salt is the cache build salt ("" = core.BuildSalt()). It must
	// match the offline CLI's salt for cache sharing and byte-identity
	// across the service boundary. Supervision limits that change
	// verdicts (MaxSteps) are mixed in automatically, exactly as
	// cusan-campaign does.
	Salt string
	// CacheDir backs the shared result cache; "" keeps it in memory
	// (still shared across campaigns, but not across restarts).
	CacheDir string
	// StateDir persists campaign manifests for drain/resume; "" keeps
	// the backlog in memory only.
	StateDir string
	// Backlog bounds the queued-campaign count; 0 means DefaultBacklog.
	Backlog int
	// TenantQuota bounds queued+running campaigns per API key; 0 means
	// DefaultTenantQuota. Negative disables the quota.
	TenantQuota int
	// JobTimeout bounds one job attempt's wall clock; 0 disables the
	// watchdog. Timed-out jobs report the deterministic timeout record
	// (it names only the configured deadline) and are retried.
	JobTimeout time.Duration
	// Retries bounds supervised re-executions of infra-class failures
	// (watchdog kills, contained panics); 0 disables retry.
	Retries int
	// MaxSteps caps each job's logical steps (0 = unlimited); exceeding
	// it is the deterministic "budget" verdict.
	MaxSteps int64
	// Exec overrides the job executor (tests); nil = the supervised
	// testsuite executor.
	Exec func(campaign.Job) *campaign.Record
}

// Defaults for the admission bounds.
const (
	DefaultBacklog     = 64
	DefaultTenantQuota = 8
)

// Overload errors map to HTTP 429.
var (
	// ErrBacklog rejects a submission because the queue is full.
	ErrBacklog = errors.New("backlog full, retry later")
	// ErrQuota rejects a submission over the per-tenant quota.
	ErrQuota = errors.New("tenant quota exceeded, retry later")
	// ErrDraining rejects a submission during shutdown (HTTP 503).
	ErrDraining = errors.New("server is draining")
)

// Server is the daemon: admission control, the priority queue, the
// campaign runners, the finding index, and the shared cache.
type Server struct {
	workers     int
	concurrency int
	salt        string
	stateDir    string
	backlog     int
	tenantQuota int
	limits      campaign.Limits
	maxSteps    int64
	cache       *campaign.Cache
	findings    *findingIndex
	exec        campaign.ExecFunc

	// sem is the process-wide job pool: every running campaign's worker
	// must hold a slot to execute a job, so total in-flight jobs stay
	// bounded by Workers no matter how many campaigns run concurrently.
	sem chan struct{}

	mu          sync.Mutex
	q           queue
	campaigns   map[string]*campaignState
	running     map[string]*campaignState
	served      map[string]int64 // tenant -> campaigns started (fairness)
	seq         int64
	outstanding map[string]int // tenant -> queued+running campaigns
	doneCount   int

	// draining is atomic so stream followers can read it while holding
	// a campaign's lock without nesting the server lock under it.
	// Invariant: draining true implies drainCh is closed (Drain closes
	// the channel first), so anyone who observes the flag can rely on
	// the dispatch interrupt already being visible to the engine.
	draining  atomic.Bool
	drainOnce sync.Once

	newWork chan struct{} // nudges the runners; buffered
	drainCh chan struct{} // closed once on Drain; campaign.Run Interrupt
	stopped chan struct{} // closed when every runner goroutine has exited

	busy          atomic.Int64 // jobs executing right now
	totalExecuted atomic.Int64
	totalHits     atomic.Int64
	totalRetried  atomic.Int64 // attempts beyond each job's first
}

// New builds a Server, resumes any manifests in StateDir, and starts
// the campaign runner goroutines. Call Drain to stop them.
func New(cfg Config) (*Server, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = 1
	}
	salt := cfg.Salt
	if salt == "" {
		salt = core.BuildSalt()
	}
	// Mix verdict-changing supervision limits into the salt exactly as
	// the offline CLI does, so byte-identity and cache sharing survive
	// the service boundary under supervision too.
	salt = campaign.LimitsSalt(salt, cfg.MaxSteps)
	backlog := cfg.Backlog
	if backlog == 0 {
		backlog = DefaultBacklog
	}
	quota := cfg.TenantQuota
	if quota == 0 {
		quota = DefaultTenantQuota
	}
	var exec campaign.ExecFunc
	if cfg.Exec != nil {
		override := cfg.Exec
		exec = func(_ context.Context, j campaign.Job) *campaign.Record { return override(j) }
	} else {
		exec = testsuite.Executor(cfg.MaxSteps)
	}
	var cache *campaign.Cache
	if cfg.CacheDir != "" {
		var err error
		if cache, err = campaign.OpenDir(cfg.CacheDir); err != nil {
			return nil, err
		}
	} else {
		cache = campaign.NewMemCache()
	}
	s := &Server{
		workers:     workers,
		concurrency: concurrency,
		salt:        salt,
		stateDir:    cfg.StateDir,
		backlog:     backlog,
		tenantQuota: quota,
		limits:      campaign.Limits{Timeout: cfg.JobTimeout, Retries: cfg.Retries},
		maxSteps:    cfg.MaxSteps,
		cache:       cache,
		findings:    newFindingIndex(),
		exec:        exec,
		sem:         make(chan struct{}, workers),
		campaigns:   make(map[string]*campaignState),
		running:     make(map[string]*campaignState),
		served:      make(map[string]int64),
		outstanding: make(map[string]int),
		newWork:     make(chan struct{}, concurrency),
		drainCh:     make(chan struct{}),
		stopped:     make(chan struct{}),
	}
	s.q.bound = backlog
	if s.stateDir != "" {
		if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
			return nil, err
		}
		s.resume()
	}
	var wg sync.WaitGroup
	wg.Add(concurrency)
	for i := 0; i < concurrency; i++ {
		go func() {
			defer wg.Done()
			s.runLoop()
		}()
	}
	go func() {
		wg.Wait()
		close(s.stopped)
	}()
	return s, nil
}

// Salt reports the cache salt in effect (for logs and -version).
func (s *Server) Salt() string { return s.salt }

// resume re-queues every manifest in the state dir under its original
// identity and ordering. An unexpandable manifest (the suite changed
// under it) is dropped with a warning — it would never run.
func (s *Server) resume() {
	for _, m := range loadManifests(s.stateDir) {
		jobs, err := m.Req.Jobs()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cusan-serve: dropping unresumable campaign %s: %v\n", m.ID, err)
			removeManifest(s.stateDir, m.ID)
			continue
		}
		st := newCampaignState(m.ID, m.Tenant, m.Priority, m.Seq, m.Req, len(jobs))
		s.campaigns[st.ID] = st
		s.q.push(st)
		s.outstanding[st.Tenant]++
		if m.Seq >= s.seq {
			s.seq = m.Seq
		}
	}
}

// Submit validates and enqueues a campaign for tenant, returning the
// state and its queue position. Admission errors: *BadRequestError
// (400), ErrBacklog/ErrQuota (429), ErrDraining (503).
func (s *Server) Submit(req Request, tenant string) (*campaignState, int, error) {
	jobs, err := req.Jobs()
	if err != nil {
		return nil, 0, err
	}
	if tenant == "" {
		tenant = "anonymous"
	}

	if s.draining.Load() {
		return nil, 0, ErrDraining
	}
	s.mu.Lock()
	switch {
	case s.q.full():
		s.mu.Unlock()
		return nil, 0, ErrBacklog
	case s.tenantQuota >= 0 && s.outstanding[tenant] >= s.tenantQuota:
		s.mu.Unlock()
		return nil, 0, ErrQuota
	}
	s.seq++
	id := fmt.Sprintf("c%04d-%s", s.seq, req.MatrixID(s.salt))
	st := newCampaignState(id, tenant, req.Priority, s.seq, req, len(jobs))
	s.campaigns[id] = st
	s.q.push(st)
	s.outstanding[tenant]++
	pos := s.q.position(st)
	s.mu.Unlock()

	if s.stateDir != "" {
		if err := writeManifest(s.stateDir, st); err != nil {
			fmt.Fprintf(os.Stderr, "cusan-serve: manifest write failed for %s: %v\n", id, err)
		}
	}
	select {
	case s.newWork <- struct{}{}:
	default:
	}
	return st, pos, nil
}

// Campaign looks up a campaign by ID.
func (s *Server) Campaign(id string) *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// Finding looks up a finding entry by fingerprint.
func (s *Server) Finding(fp string) *FindingEntry { return s.findings.get(fp) }

// runLoop is one campaign runner: Concurrency of them pull from the
// queue, so up to that many campaigns execute at once over the shared
// job pool.
func (s *Server) runLoop() {
	for {
		st := s.nextCampaign()
		if st == nil {
			return
		}
		s.runCampaign(st)
	}
}

// nextCampaign blocks until a campaign is queued or the drain begins.
func (s *Server) nextCampaign() *campaignState {
	for {
		if s.draining.Load() {
			return nil
		}
		s.mu.Lock()
		if st := s.q.popFair(s.served); st != nil {
			s.running[st.ID] = st
			s.served[st.Tenant]++
			s.mu.Unlock()
			return st
		}
		s.mu.Unlock()
		select {
		case <-s.newWork:
		case <-s.drainCh:
		}
	}
}

// runCampaign executes one campaign through the engine, streaming each
// record's canonical JSONL line to followers as it lands.
func (s *Server) runCampaign(st *campaignState) {
	finish := func(status string) {
		s.mu.Lock()
		delete(s.running, st.ID)
		if status == StatusDone {
			s.doneCount++
			if s.outstanding[st.Tenant]--; s.outstanding[st.Tenant] <= 0 {
				delete(s.outstanding, st.Tenant)
			}
		}
		s.mu.Unlock()
		if status == StatusDone && s.stateDir != "" {
			removeManifest(s.stateDir, st.ID)
		}
	}

	jobs, err := st.Req.Jobs()
	if err != nil {
		// Validated at submit; only a suite change underneath a resumed
		// manifest gets here.
		st.setStatus(StatusDone, "matrix no longer expandable: "+err.Error())
		finish(StatusDone)
		return
	}
	st.setStatus(StatusRunning, "")

	opt := campaign.Options{
		Workers:   s.workers,
		Cache:     s.cache,
		Salt:      s.salt,
		Interrupt: s.drainCh,
		OnRecord: func(i int, r *campaign.Record) {
			line, err := r.JSONL(false)
			if err != nil {
				// Record marshaling cannot realistically fail; keep line
				// indices dense anyway so resume offsets stay honest.
				line = []byte(fmt.Sprintf(`{"v":%d,"type":"job","verdict":"error","app_fault":%q}`+"\n",
					campaign.FormatVersion, "encode: "+err.Error()))
			}
			st.appendRecord(line, r.Cached)
			s.findings.add(st.ID, r)
			if r.Cached {
				s.totalHits.Add(1)
			} else {
				s.totalExecuted.Add(1)
			}
		},
	}
	// Per-campaign supervision: the shared limits plus this campaign's
	// attempt accounting. Each worker holds a pool slot for the full
	// supervised job (all attempts), so a retry storm cannot multiply
	// in-flight work past Workers.
	lim := s.limits
	lim.OnAttempt = func(j campaign.Job, attempt int, r *campaign.Record) {
		st.noteAttempt(attempt)
		if attempt > 1 {
			s.totalRetried.Add(1)
		}
	}
	sup := campaign.Supervise(s.exec, lim)
	exec := func(j campaign.Job) *campaign.Record {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.busy.Add(1)
		defer s.busy.Add(-1)
		return sup(j)
	}

	rep := campaign.Run(jobs, exec, opt)
	if rep.Interrupted {
		// Drain: the manifest stays, the tenant stays accounted, and the
		// finished prefix is in the shared cache for the resume.
		st.setStatus(StatusDrained, "")
		finish(StatusDrained)
		return
	}
	trailer, err := rep.TrailerLines(false)
	if err == nil {
		for _, line := range bytes.SplitAfter(trailer, []byte("\n")) {
			if len(line) > 0 {
				st.appendLine(line)
			}
		}
	}
	st.setStatus(StatusDone, "")
	finish(StatusDone)
}

// Drain begins a graceful shutdown and blocks until every runner has
// stopped: the in-flight jobs of running campaigns complete, queued
// campaigns keep their manifests, and every stream follower is woken
// to emit its terminal record. Safe to call more than once.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.drainCh)
		s.draining.Store(true)
	})
	<-s.stopped
	s.mu.Lock()
	states := make([]*campaignState, 0, len(s.campaigns))
	for _, st := range s.campaigns {
		states = append(states, st)
	}
	s.mu.Unlock()
	for _, st := range states {
		st.wake()
	}
}

// ServerStatus is the JSON shape of GET /v1/status.
type ServerStatus struct {
	QueueDepth  int      `json:"queue_depth"`
	Running     []string `json:"running,omitempty"` // running campaign IDs, sorted
	Done        int      `json:"done"`              // campaigns completed
	Draining    bool     `json:"draining"`
	Workers     int      `json:"workers"`
	Concurrency int      `json:"concurrency"` // campaign runners
	Busy        int      `json:"busy"`        // jobs executing now
	Utilization float64  `json:"utilization"`
	Executed    int64    `json:"executed"` // jobs run since start
	CacheHits   int64    `json:"cache_hits"`
	// Retried counts supervised attempts beyond each job's first.
	Retried      int64   `json:"retried"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Findings     int     `json:"findings"` // distinct fingerprints
	Salt         string  `json:"salt"`
}

// Status snapshots the daemon.
func (s *Server) Status() ServerStatus {
	s.mu.Lock()
	depth, done := s.q.depth(), s.doneCount
	running := make([]string, 0, len(s.running))
	for id := range s.running {
		running = append(running, id)
	}
	s.mu.Unlock()
	sort.Strings(running)
	draining := s.draining.Load()
	busy := s.busy.Load()
	executed, hits := s.totalExecuted.Load(), s.totalHits.Load()
	st := ServerStatus{
		QueueDepth:  depth,
		Running:     running,
		Done:        done,
		Draining:    draining,
		Workers:     s.workers,
		Concurrency: s.concurrency,
		Busy:        int(busy),
		Utilization: float64(busy) / float64(s.workers),
		Executed:    executed,
		CacheHits:   hits,
		Retried:     s.totalRetried.Load(),
		Findings:    s.findings.size(),
		Salt:        s.salt,
	}
	if total := executed + hits; total > 0 {
		st.CacheHitRate = float64(hits) / float64(total)
	}
	return st
}
