package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cusango/internal/campaign"
)

func filteredMatrix(filter string) Request {
	zero := 0
	return Request{Kinds: []string{"suite"}, Filter: filter, Engines: []string{"fast"}, Seeds: &zero}
}

// TestConcurrentCampaignsInterleave: under -concurrency 2 two tenants'
// campaigns run at once over the shared job pool — the executor
// refuses to let any job finish until jobs from BOTH campaigns are in
// flight simultaneously, so completion proves interleaved progress,
// not just back-to-back scheduling.
func TestConcurrentCampaignsInterleave(t *testing.T) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	inflight := map[string]bool{}
	released := false
	gated := func(j campaign.Job) *campaign.Record {
		prefix := strings.SplitN(strings.TrimPrefix(j.Case, "mpi-modes/"), "_", 2)[0]
		mu.Lock()
		inflight[prefix] = true
		if len(inflight) >= 2 {
			released = true
			cond.Broadcast()
		}
		for !released {
			cond.Wait()
		}
		mu.Unlock()
		return fakeExec(j)
	}

	// Workers 4 so one campaign's jobs cannot monopolize the pool and
	// deadlock the both-in-flight gate (each matrix has 2 jobs).
	srv, hs := newTestServer(t, Config{Workers: 4, Concurrency: 2, Exec: gated})
	reqA := filteredMatrix("mpi-modes/ssend")
	reqB := filteredMatrix("mpi-modes/waitany")

	a := submit(t, hs.URL, reqA, "tenant-a")
	b := submit(t, hs.URL, reqB, "tenant-b")
	if a.Jobs != 2 || b.Jobs != 2 {
		t.Fatalf("matrices expanded to %d and %d jobs, want 2 each", a.Jobs, b.Jobs)
	}

	gotA := streamAll(t, hs.URL, a.ID, 0)
	gotB := streamAll(t, hs.URL, b.ID, 0)
	if !bytes.Equal(gotA, offlineJSONL(t, reqA, fakeExec, "test-salt", nil)) {
		t.Fatal("campaign A stream differs from offline report")
	}
	if !bytes.Equal(gotB, offlineJSONL(t, reqB, fakeExec, "test-salt", nil)) {
		t.Fatal("campaign B stream differs from offline report")
	}
	if st := srv.Status(); st.Concurrency != 2 {
		t.Fatalf("ServerStatus.Concurrency = %d, want 2", st.Concurrency)
	}
}

// TestFairScheduling: with one runner, a tenant that queued two
// campaigns yields its second slot to a tenant that queued one —
// lowest-served-tenant wins within a priority class, so one noisy
// tenant cannot monopolize the queue.
func TestFairScheduling(t *testing.T) {
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	gated := func(j campaign.Job) *campaign.Record {
		if strings.Contains(j.Case, "ssend") {
			<-release // holds the first campaign until all others are queued
		}
		mu.Lock()
		order = append(order, j.Case)
		mu.Unlock()
		return fakeExec(j)
	}
	_, hs := newTestServer(t, Config{Workers: 1, Concurrency: 1, Exec: gated})

	first := submit(t, hs.URL, filteredMatrix("mpi-modes/ssend"), "tenant-a")
	waitRunning(t, hs.URL)
	hog1 := submit(t, hs.URL, filteredMatrix("waitany"), "hog")
	hog2 := submit(t, hs.URL, filteredMatrix("iprobe_poll"), "hog")
	fair := submit(t, hs.URL, filteredMatrix("probe_recv"), "tenant-b")
	close(release)
	for _, sr := range []SubmitResponse{first, hog1, hog2, fair} {
		streamAll(t, hs.URL, sr.ID, 0) // blocks until that campaign completes
	}

	mu.Lock()
	defer mu.Unlock()
	idx := func(substr string) int {
		for i, c := range order {
			if strings.Contains(c, substr) {
				return i
			}
		}
		t.Fatalf("no job matching %q ran (order: %v)", substr, order)
		return -1
	}
	// hog's first campaign was queued first and runs first; then the
	// fair scheduler prefers tenant-b (served 0) over hog's second.
	if !(idx("waitany") < idx("probe_recv_kernel") && idx("probe_recv_kernel") < idx("iprobe_poll")) {
		t.Fatalf("fair scheduling violated, execution order: %v", order)
	}
}

// TestCrashRecovery is the kill -9 acceptance check, in-process: a
// server with two campaigns mid-flight is abandoned without any drain
// (its fsynced manifests and cache entries are all that survive, as
// after a kill -9), and a fresh server on the same state + cache
// directories resumes both under their original IDs with streams
// byte-identical to the offline reports.
func TestCrashRecovery(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := t.TempDir()

	// First server: each campaign's first job completes (and is cached);
	// every other job hangs forever, pinning the moment kill -9 lands.
	var mu sync.Mutex
	passed := map[string]bool{}
	hang := make(chan struct{}) // never closed: the "process" dies blocked
	gated := func(j campaign.Job) *campaign.Record {
		prefix := strings.SplitN(j.Case, "/", 2)[0]
		mu.Lock()
		first := !passed[prefix]
		passed[prefix] = true
		mu.Unlock()
		if !first {
			<-hang
		}
		return fakeExec(j)
	}
	// Workers 8 > total jobs of either matrix, so the hanging jobs of
	// one campaign cannot exhaust the pool before the other campaign's
	// first job gets a slot.
	srv1, err := New(Config{
		Workers: 8, Concurrency: 2, Salt: "crash-salt",
		CacheDir: cacheDir, StateDir: stateDir, Exec: gated,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())

	reqA := filteredMatrix("mpi-modes/")
	reqB := filteredMatrix("mpi-to-cuda/irecv")
	a := submit(t, hs1.URL, reqA, "tenant-a")
	b := submit(t, hs1.URL, reqB, "tenant-b")
	// Wait for both first jobs to land durably in the shared cache (one
	// entry per campaign); everything else is parked in <-hang, so the
	// abandoned server can write nothing more after the "kill".
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first jobs never reached the cache (%d entries)", len(entries))
		}
		time.Sleep(time.Millisecond)
	}
	// kill -9: no Drain, no cleanup — just sever the HTTP front and
	// abandon the server with its workers still blocked.
	hs1.CloseClientConnections()
	hs1.Close()

	srv2, err := New(Config{
		Workers: 2, Concurrency: 2, Salt: "crash-salt",
		CacheDir: cacheDir, StateDir: stateDir, Exec: fakeExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	defer srv2.Drain()

	for _, c := range []struct {
		sr  SubmitResponse
		req Request
	}{{a, reqA}, {b, reqB}} {
		got := streamAll(t, hs2.URL, c.sr.ID, 0)
		want := offlineJSONL(t, c.req, fakeExec, "other-salt", nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("campaign %s: resumed stream differs from offline report:\ngot:\n%s\nwant:\n%s",
				c.sr.ID, got, want)
		}
		st := campaignStatus(t, hs2.URL, c.sr.ID)
		if st.Status != StatusDone {
			t.Fatalf("campaign %s: status %q after resume, want done", c.sr.ID, st.Status)
		}
		if st.CacheHits == 0 {
			t.Fatalf("campaign %s: resume executed everything — the pre-crash prefix was not cached", c.sr.ID)
		}
	}
}

// TestRetryAccounting: an infra-class failure is retried and the extra
// attempts are visible in both the campaign and server status — while
// the streamed bytes stay identical to a never-flaky offline run,
// because retries cannot change canonical records.
func TestRetryAccounting(t *testing.T) {
	var mu sync.Mutex
	failed := false
	flaky := func(j campaign.Job) *campaign.Record {
		mu.Lock()
		first := !failed
		if strings.Contains(j.Case, "ssend_nosync") && first {
			failed = true
			mu.Unlock()
			return &campaign.Record{
				Verdict:  campaign.VerdictError,
				AppFault: campaign.InfraPrefix + "synthetic worker loss",
			}
		}
		mu.Unlock()
		return fakeExec(j)
	}
	_, hs := newTestServer(t, Config{Workers: 2, Retries: 2, Exec: flaky})

	req := smallMatrix()
	sr := submit(t, hs.URL, req, "tenant-a")
	got := streamAll(t, hs.URL, sr.ID, 0)
	if !bytes.Equal(got, offlineJSONL(t, req, fakeExec, "test-salt", nil)) {
		t.Fatal("retried campaign stream differs from clean offline report")
	}

	st := campaignStatus(t, hs.URL, sr.ID)
	if st.Retried != 1 {
		t.Fatalf("campaign retried = %d, want 1", st.Retried)
	}
	if st.Attempts != sr.Jobs+1 {
		t.Fatalf("campaign attempts = %d, want %d (jobs + one retry)", st.Attempts, sr.Jobs+1)
	}
	if ss := serverStatus(t, hs.URL); ss.Retried != 1 {
		t.Fatalf("server retried = %d, want 1", ss.Retried)
	}
}

// TestOverloadResponse: a 429 carries a Retry-After computed from the
// actual congestion plus a JSON body with the queue depth — not the
// old hardcoded constant.
func TestOverloadResponse(t *testing.T) {
	block := make(chan struct{})
	gated := func(j campaign.Job) *campaign.Record {
		<-block
		return fakeExec(j)
	}
	defer close(block)
	_, hs := newTestServer(t, Config{Workers: 1, Backlog: 3, TenantQuota: 2, Exec: gated})

	req := smallMatrix()
	submit(t, hs.URL, req, "a")
	waitRunning(t, hs.URL)
	submit(t, hs.URL, req, "hog")
	submit(t, hs.URL, req, "hog")

	decode := func(resp *http.Response) OverloadResponse {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		var or OverloadResponse
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatalf("decode 429 body: %v", err)
		}
		header, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || header != or.RetryAfter {
			t.Fatalf("Retry-After header %q != body retry_after %d", resp.Header.Get("Retry-After"), or.RetryAfter)
		}
		return or
	}

	// Quota rejection: hog has 2 outstanding of quota 2 — the hint must
	// reflect its own congestion (1 + excess = at least the backlog
	// formula's 1 + depth/concurrency = 3).
	or := decode(submitRaw(t, hs.URL, req, "hog"))
	if or.QueueDepth != 2 || or.RetryAfter < 3 {
		t.Fatalf("quota 429: %+v, want queue_depth=2 retry_after>=3", or)
	}
	if !strings.Contains(or.Error, "quota") {
		t.Fatalf("quota 429 error = %q", or.Error)
	}

	// Fill the backlog, then overflow it: the hint scales with depth.
	submit(t, hs.URL, req, "b")
	or = decode(submitRaw(t, hs.URL, req, "c"))
	if or.QueueDepth != 3 || or.Position != 3 || or.RetryAfter != 4 {
		t.Fatalf("backlog 429: %+v, want queue_depth=3 position=3 retry_after=4 (1 + 3/1)", or)
	}
}
