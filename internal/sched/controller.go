package sched

import (
	"strconv"
	"sync"
)

// Controller serializes a controlled run's decision points.
//
// Rank lifecycle: every rank starts Running. A rank parks by blocking on
// a completion channel (Block; it is re-marked Running by the waker's
// Wake, synchronously with the channel signal) or by settling at a
// decision point (Settle; it resumes when a grant delivers its choice).
// When every rank is parked — the quiescent state — whichever goroutine
// parked last coordinates: it evaluates the settlers' candidate sets,
// asks the Chooser which viable settler to grant (a Grant point) and
// which of that settler's options to take (a Match/Poll/Pick point), and
// wakes the settler with its choice. The settler applies the choice and
// runs on until it parks again, which triggers the next grant.
//
// Two invariants make the decision log deterministic:
//
//   - candidate sets are only read at quiescence, when no rank can be
//     mid-flight mutating mailboxes, so they are a pure function of the
//     choices made so far;
//   - a waker marks its waiter Running *before* signalling the channel
//     (Wake), so there is no window in which a woken rank is physically
//     runnable while the controller still counts it parked (which would
//     let a grant read a candidate set the woken rank is about to
//     change).
//
// Lock order: mailbox locks are taken before the controller lock (Wake
// and Activity are called under them); the coordinator therefore drops
// the controller lock while evaluating ready() callbacks, which is safe
// precisely because evaluation only happens at quiescence.
type Controller struct {
	mu   sync.Mutex
	cond *sync.Cond

	chooser Chooser
	n       int
	state   []rankState
	settles []*settleReq

	// blockedOn maps a completion key (its channel) to the ranks parked
	// on it; signaled remembers keys whose Wake arrived before (or
	// without) a Block, so the late Block falls through.
	blockedOn map[any][]int
	signaled  map[any]struct{}

	log  []Point
	acts []Act

	// Poll stutter control: deferAt[r] is 1+len(acts) at rank r's last
	// poll defer; while the activity log hasn't grown, re-granting the
	// defer would repeat the identical state (a sleep-set stutter), so
	// the defer option is stripped and counted as pruned. deferBudget
	// > 0 (naive full enumeration) instead allows that many consecutive
	// stutter defers before stripping.
	deferAt     []int
	deferRun    []int
	deferBudget int
	forced      int

	// budget > 0 caps the decision-log length (a logical step budget):
	// at the first quiescent state with len(log) >= budget the run is
	// declared over-budget and torn down like a stuck schedule. Because
	// the log is a pure function of the schedule, the budget verdict is
	// deterministic — no wall clock involved.
	budget    int
	budgetHit bool

	granting    bool
	stuck       bool
	aborted     bool
	notifyStuck bool
	onStuck     func()
}

type rankState uint8

const (
	running rankState = iota
	blocked
	settling
	finished
)

type settleReq struct {
	kind  Kind
	op    string
	ready func() []Option

	granted bool
	opts    []Option
	chosen  int
	err     error
}

// Option is one grantable option of a settling decision point.
type Option struct {
	label string
	val   int
	// isDefer marks the poll "report not-ready" option, subject to the
	// stutter rule.
	isDefer bool
}

// Opt builds a plain settle option; val is the option's integer payload
// (candidate source, request index) surfaced in Point.Vals.
func Opt(label string, val int) Option {
	return Option{label: label, val: val}
}

// DeferOpt builds the poll defer option (always list it last).
func DeferOpt() Option {
	return Option{label: "defer", val: -1, isDefer: true}
}

// NewController builds a controller for n ranks deciding via chooser
// (nil = the default schedule).
func NewController(n int, chooser Chooser) *Controller {
	if chooser == nil {
		chooser = DefaultChooser{}
	}
	c := &Controller{
		chooser:   chooser,
		n:         n,
		state:     make([]rankState, n),
		settles:   make([]*settleReq, n),
		blockedOn: make(map[any][]int),
		signaled:  make(map[any]struct{}),
		deferAt:   make([]int, n),
		deferRun:  make([]int, n),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// SetOnStuck installs the deadlock hook, called (unlocked) once when the
// controller declares the schedule stuck; it should abort the job so
// channel-parked ranks unblock.
func (c *Controller) SetOnStuck(fn func()) {
	c.mu.Lock()
	c.onStuck = fn
	c.mu.Unlock()
}

// SetStepBudget caps the decision-log length at n (0 = unlimited). A
// run whose log reaches the cap is torn down at the next quiescent
// state: Settle returns ErrBudget and the onStuck hook fires so
// channel-parked ranks unblock. The verdict is a pure function of the
// schedule, so it is byte-identical across workers and repeats.
func (c *Controller) SetStepBudget(n int) {
	c.mu.Lock()
	c.budget = n
	c.mu.Unlock()
}

// BudgetHit reports whether the run was terminated by its step budget.
func (c *Controller) BudgetHit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetHit
}

// SetDeferBudget switches the poll stutter rule to naive mode: a matched
// poll may defer k consecutive times with no intervening activity before
// completion is forced. 0 (the default) forces completion at the first
// stutter — the sleep-set rule.
func (c *Controller) SetDeferBudget(k int) {
	c.mu.Lock()
	c.deferBudget = k
	c.mu.Unlock()
}

// Log returns the decision log (call after the run completes).
func (c *Controller) Log() []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Point(nil), c.log...)
}

// Acts returns the activity log (call after the run completes).
func (c *Controller) Acts() []Act {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Act(nil), c.acts...)
}

// Forced counts stutter-forced poll completions — branches pruned by the
// sleep-set rule (or by the naive defer budget).
func (c *Controller) Forced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.forced
}

// Stuck reports whether the schedule deadlocked.
func (c *Controller) Stuck() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stuck
}

// --- rank lifecycle -------------------------------------------------------

// Block marks rank parked on key just before it blocks on the matching
// channel. If the key was already signaled the rank stays Running and
// the caller's select will fall straight through.
// haltedLocked reports that the controller has gone inert: no further
// decisions are made and no new state is recorded.
func (c *Controller) haltedLocked() bool {
	return c.aborted || c.stuck || c.budgetHit
}

func (c *Controller) Block(rank int, key any) {
	c.mu.Lock()
	if c.haltedLocked() {
		c.mu.Unlock()
		return
	}
	if _, ok := c.signaled[key]; ok {
		c.mu.Unlock()
		return
	}
	c.state[rank] = blocked
	c.blockedOn[key] = append(c.blockedOn[key], rank)
	c.maybeGrantLocked()
	c.unlockAndNotify()
}

// Wake signals key on behalf of actor: every rank parked on it is
// re-marked Running, synchronously, before the caller closes (or sends
// on) the underlying channel. hint names the expected waiter when the
// caller knows it and none is parked yet (-1 = unknown, recorded as a
// wildcard activity that blocks pruning).
func (c *Controller) Wake(actor int, key any, hint int) {
	c.mu.Lock()
	if c.haltedLocked() {
		c.mu.Unlock()
		return
	}
	c.signaled[key] = struct{}{}
	waiters := c.blockedOn[key]
	delete(c.blockedOn, key)
	if len(waiters) == 0 {
		c.acts = append(c.acts, Act{Actor: actor, Target: hint})
		c.mu.Unlock()
		return
	}
	for _, r := range waiters {
		if c.state[r] == blocked {
			c.state[r] = running
		}
		c.acts = append(c.acts, Act{Actor: actor, Target: r})
	}
	c.mu.Unlock()
}

// Activity records a cross-rank effect that signals no channel (an
// unmatched delivery landing in a mailbox): it wakes settlers' viability
// and feeds the explorer's independence analysis.
func (c *Controller) Activity(actor, target int) {
	c.mu.Lock()
	if !c.haltedLocked() {
		c.acts = append(c.acts, Act{Actor: actor, Target: target})
	}
	c.mu.Unlock()
}

// Finish marks rank done for good.
func (c *Controller) Finish(rank int) {
	c.mu.Lock()
	c.state[rank] = finished
	c.settles[rank] = nil
	if !c.haltedLocked() {
		c.maybeGrantLocked()
	}
	c.unlockAndNotify()
}

// AbortAll tears the controlled run down (job abort): every parked rank
// is released, settlers return ErrAborted, and the controller goes
// inert.
func (c *Controller) AbortAll() {
	c.mu.Lock()
	c.aborted = true
	for r := range c.state {
		if c.state[r] == blocked {
			c.state[r] = running
		}
	}
	c.blockedOn = make(map[any][]int)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// --- decision points ------------------------------------------------------

// Settle parks rank at a decision point of the given kind. ready is
// evaluated by the coordinator at quiescent states and returns the
// currently grantable options (nil/empty = not viable yet: an unmatched
// poll, a wildcard with no candidate). Settle returns the chosen option
// index once granted; the caller applies it. ready must not call back
// into the controller and runs while every rank is parked.
func (c *Controller) Settle(rank int, kind Kind, op string, ready func() []Option) (int, error) {
	c.mu.Lock()
	// Cause priority: budget and stuck are declared by the controller
	// itself and only ever followed by an AbortAll during teardown, so
	// when either flag is up it is the first cause and wins over the
	// abort flag — keeping the returned error independent of how far the
	// teardown has proceeded when this rank observes it.
	if c.budgetHit {
		c.mu.Unlock()
		return 0, ErrBudget
	}
	if c.stuck {
		c.mu.Unlock()
		return 0, ErrStuck
	}
	if c.aborted {
		c.mu.Unlock()
		return 0, ErrAborted
	}
	st := &settleReq{kind: kind, op: op, ready: ready}
	c.settles[rank] = st
	c.state[rank] = settling
	c.maybeGrantLocked()
	for !st.granted && !c.haltedLocked() {
		c.cond.Wait()
	}
	c.settles[rank] = nil
	var err error
	switch {
	case st.granted:
		err = st.err
	case c.budgetHit:
		c.state[rank] = running
		err = ErrBudget
	case c.stuck:
		c.state[rank] = running
		err = ErrStuck
	default:
		c.state[rank] = running
		err = ErrAborted
	}
	chosen := st.chosen
	c.unlockAndNotify()
	return chosen, err
}

// --- the coordinator ------------------------------------------------------

// maybeGrantLocked runs on whichever goroutine just parked: if the
// system is quiescent it selects and delivers the next decision.
func (c *Controller) maybeGrantLocked() {
	if c.granting || c.haltedLocked() {
		return
	}
	parked := 0
	for r := 0; r < c.n; r++ {
		switch c.state[r] {
		case running:
			return // not quiescent
		case blocked, settling:
			parked++
		}
	}
	if parked == 0 {
		return // everyone finished
	}
	if c.budget > 0 && len(c.log) >= c.budget {
		c.declareBudgetLocked()
		return
	}
	var settlers []int
	for r := 0; r < c.n; r++ {
		if c.state[r] == settling {
			settlers = append(settlers, r)
		}
	}
	if len(settlers) == 0 {
		c.declareStuckLocked()
		return
	}

	// Evaluate candidate sets with the lock dropped: every rank is
	// parked, so nothing mutates shared state concurrently, and ready()
	// may take mailbox locks without inverting the lock order.
	c.granting = true
	c.mu.Unlock()
	type viable struct {
		rank int
		opts []Option
	}
	var vs []viable
	for _, r := range settlers {
		if opts := c.settles[r].ready(); len(opts) > 0 {
			vs = append(vs, viable{rank: r, opts: opts})
		}
	}
	c.mu.Lock()
	c.granting = false
	if c.haltedLocked() {
		return
	}
	if len(vs) == 0 {
		c.declareStuckLocked()
		return
	}

	// Grant decision: which viable settler proceeds. Logged even when
	// forced so replay prefixes align with log positions.
	glabels := make([]string, len(vs))
	gvals := make([]int, len(vs))
	for i, v := range vs {
		glabels[i] = "rank=" + strconv.Itoa(v.rank)
		gvals[i] = v.rank
	}
	g := vs[c.decideLocked(Grant, -1, "grant", glabels, gvals)]
	st := c.settles[g.rank]

	// Stutter rule: a poll that deferred and re-settled with no
	// intervening activity would repeat the identical state; strip the
	// defer option (sleep set) or, in naive mode, charge the budget.
	opts := g.opts
	if st.kind == Poll && c.deferAt[g.rank] != 0 && c.deferAt[g.rank] == len(c.acts) {
		if c.deferBudget == 0 || c.deferRun[g.rank] >= c.deferBudget {
			trimmed := opts[:0:0]
			for _, o := range opts {
				if !o.isDefer {
					trimmed = append(trimmed, o)
				}
			}
			if len(trimmed) > 0 && len(trimmed) < len(opts) {
				opts = trimmed
				c.forced++
			}
		}
	}

	labels := make([]string, len(opts))
	vals := make([]int, len(opts))
	for i, o := range opts {
		labels[i] = o.label
		vals[i] = o.val
	}
	idx := c.decideLocked(st.kind, g.rank, st.op, labels, vals)
	c.acts = append(c.acts, Act{Actor: g.rank, Target: g.rank})
	if opts[idx].isDefer {
		c.deferAt[g.rank] = len(c.acts)
		c.deferRun[g.rank]++
	} else {
		c.deferAt[g.rank] = 0
		c.deferRun[g.rank] = 0
	}

	st.granted = true
	st.opts = opts
	st.chosen = idx
	c.state[g.rank] = running
	c.cond.Broadcast()
}

// decideLocked consults the chooser and appends to the decision log.
func (c *Controller) decideLocked(kind Kind, rank int, op string, labels []string, vals []int) int {
	p := Point{
		Seq:    len(c.log),
		Rank:   rank,
		Kind:   kind,
		Op:     op,
		Arity:  len(labels),
		Labels: labels,
		Vals:   vals,
		ActOff: len(c.acts),
	}
	idx := c.chooser.Choose(&p)
	if idx < 0 || idx >= len(labels) {
		idx = 0
	}
	p.Chosen = idx
	c.log = append(c.log, p)
	return idx
}

func (c *Controller) declareStuckLocked() {
	c.stuck = true
	c.notifyStuck = true
	c.cond.Broadcast()
}

// declareBudgetLocked ends the run over-budget. It reuses the stuck
// notification path (the hook tears the MPI world down so ranks parked
// on channels unblock) but keeps stuck false: Stuck() means deadlock,
// BudgetHit() means supervision.
func (c *Controller) declareBudgetLocked() {
	c.budgetHit = true
	c.notifyStuck = true
	c.cond.Broadcast()
}

// unlockAndNotify releases the lock and fires the stuck hook outside it
// (the hook aborts the MPI world, whose locks order before ours).
func (c *Controller) unlockAndNotify() {
	fire := false
	if c.notifyStuck {
		c.notifyStuck = false
		fire = true
	}
	fn := c.onStuck
	c.mu.Unlock()
	if fire && fn != nil {
		fn()
	}
}
