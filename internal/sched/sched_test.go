package sched

import (
	"strings"
	"testing"
)

func TestSpecRoundtrip(t *testing.T) {
	log := []Point{
		{Kind: Grant, Chosen: 0},
		{Kind: Match, Chosen: 1},
		{Kind: Poll, Chosen: 0},
		{Kind: Pick, Chosen: 2},
		{Kind: Delay, Chosen: 0},
	}
	spec := FormatSpec(log)
	if spec != "g0.m1.p0.w2.d0" {
		t.Fatalf("FormatSpec = %q", spec)
	}
	got, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Choices(log)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("choice %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSpecDefault(t *testing.T) {
	if FormatSpec(nil) != DefaultSpec {
		t.Fatalf("empty log renders as %q", FormatSpec(nil))
	}
	for _, s := range []string{"", DefaultSpec, "  default  "} {
		got, err := ParseSpec(s)
		if err != nil || len(got) != 0 {
			t.Fatalf("ParseSpec(%q) = %v, %v", s, got, err)
		}
	}
}

func TestSpecRejectsGarbage(t *testing.T) {
	for _, s := range []string{"x0", "g", "g-1", "gx", "g0..m1", "g0.q2"} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", s)
		}
	}
}

func TestNonDefault(t *testing.T) {
	prefix := []Choice{{Grant, 0}, {Match, 2}, {Poll, 0}, {Poll, 1}}
	if n := NonDefault(prefix); n != 2 {
		t.Fatalf("NonDefault = %d, want 2", n)
	}
}

func TestReplayerBeyondPrefixDefaults(t *testing.T) {
	r := NewReplayer([]Choice{{Match, 1}})
	if got := r.Choose(&Point{Kind: Match, Arity: 2}); got != 1 {
		t.Fatalf("prefix choice = %d", got)
	}
	if got := r.Choose(&Point{Kind: Grant, Arity: 3}); got != 0 {
		t.Fatalf("beyond-prefix choice = %d", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestReplayerKindDivergence(t *testing.T) {
	r := NewReplayer([]Choice{{Poll, 0}})
	r.Choose(&Point{Kind: Match, Arity: 2})
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("want kind divergence, got %v", err)
	}
}

func TestReplayerArityDivergence(t *testing.T) {
	r := NewReplayer([]Choice{{Match, 5}})
	if got := r.Choose(&Point{Kind: Match, Arity: 2}); got != 0 {
		t.Fatalf("out-of-range choice fell back to %d, want 0", got)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want arity divergence, got %v", err)
	}
}

func TestReplayerUnconsumedPrefix(t *testing.T) {
	r := NewReplayer([]Choice{{Grant, 0}, {Match, 1}})
	r.Choose(&Point{Kind: Grant, Arity: 1})
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("want unconsumed-prefix divergence, got %v", err)
	}
}
