// Package sched virtualizes the runtime's nondeterministic completion
// choices behind a single decision-point interface, so that a run's
// schedule — which settling rank proceeds at each quiescent state, which
// candidate message a wildcard receive matches, whether a poll that
// could complete reports completion or defers, which completed request a
// Waitany returns — becomes an explicit, replayable sequence of small
// integers instead of an accident of goroutine scheduling.
//
// The model is the stable-state scheduling of MPI model checkers (and of
// GPUMC's stateless model checking, see PAPERS.md): ranks run freely
// through deterministic code, park when they block or reach a decision
// point, and decisions are granted one at a time only when the system is
// quiescent (no rank can make further progress). At quiescence the
// candidate set of every decision is a pure function of the choices made
// so far, which is what makes the global decision log deterministic and
// a schedule spec (see FormatSpec) sufficient to replay a run
// byte-identically.
package sched

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates decision points.
type Kind uint8

// Decision-point kinds.
const (
	// Grant picks which settling rank proceeds at a quiescent state.
	Grant Kind = iota
	// Match picks which candidate message a wildcard receive (or probe)
	// takes, among the first matching packet of each source.
	Match
	// Poll picks a Test/Iprobe outcome: complete (or which candidate to
	// complete, for a held wildcard) versus defer.
	Poll
	// Pick picks which completed request a Waitany returns.
	Pick
	// Delay is the logical analog of completion jitter: arity 1, never
	// explored — jitter shifts wall-clock time, not visible order.
	Delay
)

var kindLetters = [...]byte{'g', 'm', 'p', 'w', 'd'}
var kindNames = [...]string{"grant", "match", "poll", "pick", "delay"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Letter is the kind's one-letter schedule-spec code.
func (k Kind) Letter() byte { return kindLetters[k] }

func kindOfLetter(b byte) (Kind, bool) {
	for i, l := range kindLetters {
		if l == b {
			return Kind(i), true
		}
	}
	return 0, false
}

// Point is one decision-point occurrence in the global decision log.
// Every point — including forced ones with a single option — is logged
// and consumes one chooser position, so a replay prefix aligns with log
// positions one-to-one.
type Point struct {
	// Seq is the point's position in the decision log.
	Seq int
	// Rank is the deciding rank (-1 for Grant points, which decide
	// between ranks).
	Rank int
	Kind Kind
	// Op labels the operation ("recv", "test", "waitany", ...).
	Op string
	// Arity is the option count; Labels describes each option.
	Arity  int
	Labels []string
	// Vals carries per-option integer payloads (settler ranks for Grant
	// points, candidate sources for Match points; nil otherwise).
	Vals []int
	// Chosen is the selected option index.
	Chosen int
	// ActOff is the activity-log offset when the decision was made; the
	// explorer's partial-order reduction reads activity windows from it.
	ActOff int
}

func (p *Point) String() string {
	lab := ""
	if p.Chosen < len(p.Labels) {
		lab = " " + p.Labels[p.Chosen]
	}
	return fmt.Sprintf("%c%d[%s r%d/%d%s]", p.Kind.Letter(), p.Chosen, p.Op, p.Rank, p.Arity, lab)
}

// Act is one cross-rank effect (a delivery, a wake, a granted decision):
// Actor did something observable to Target. Target -1 means "possibly
// anyone" and blocks partial-order pruning across it.
type Act struct {
	Actor, Target int
}

// Choice is one prefix entry of a schedule spec.
type Choice struct {
	Kind  Kind
	Index int
}

// Chooser decides one Point; implementations must be deterministic.
// Choose runs under the controller lock at a quiescent state.
type Chooser interface {
	Choose(p *Point) int
}

// DefaultChooser always takes option 0 — the default schedule.
type DefaultChooser struct{}

// Choose implements Chooser.
func (DefaultChooser) Choose(*Point) int { return 0 }

// Replayer replays a choice prefix and takes option 0 beyond it,
// recording a divergence error if the run's decision sequence does not
// match the prefix (wrong kind, out-of-range index).
type Replayer struct {
	prefix []Choice
	pos    int
	err    error
}

// NewReplayer builds a Replayer over the given prefix (nil = default
// schedule).
func NewReplayer(prefix []Choice) *Replayer {
	return &Replayer{prefix: prefix}
}

// Choose implements Chooser.
func (r *Replayer) Choose(p *Point) int {
	i := r.pos
	r.pos++
	if i >= len(r.prefix) {
		return 0
	}
	ch := r.prefix[i]
	if ch.Kind != p.Kind {
		if r.err == nil {
			r.err = fmt.Errorf("sched: replay divergence at %d: spec has %s, run reached %s(%s)",
				i, ch.Kind, p.Kind, p.Op)
		}
		return 0
	}
	if ch.Index < 0 || ch.Index >= p.Arity {
		if r.err == nil {
			r.err = fmt.Errorf("sched: replay divergence at %d: choice %c%d out of range (arity %d)",
				i, ch.Kind.Letter(), ch.Index, p.Arity)
		}
		return 0
	}
	return ch.Index
}

// Err returns the first divergence observed, if any. A prefix the run
// did not fully consume is also a divergence: the spec promises more
// decisions than the run reached.
func (r *Replayer) Err() error {
	if r.err == nil && r.pos < len(r.prefix) {
		return fmt.Errorf("sched: replay divergence: spec has %d choices, run decided only %d",
			len(r.prefix), r.pos)
	}
	return r.err
}

// DefaultSpec is the spec string of the empty (all-defaults) schedule.
const DefaultSpec = "default"

// FormatSpec renders a decision log as a replayable schedule spec:
// one '<kind letter><chosen>' token per logged point, dot-joined, e.g.
// "g0.m1.p0". The empty log renders as DefaultSpec.
func FormatSpec(log []Point) string {
	if len(log) == 0 {
		return DefaultSpec
	}
	var b strings.Builder
	for i := range log {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteByte(log[i].Kind.Letter())
		b.WriteString(strconv.Itoa(log[i].Chosen))
	}
	return b.String()
}

// Choices extracts the choice sequence of a log prefix, suitable for
// replay.
func Choices(log []Point) []Choice {
	out := make([]Choice, len(log))
	for i := range log {
		out[i] = Choice{Kind: log[i].Kind, Index: log[i].Chosen}
	}
	return out
}

// ParseSpec parses a schedule spec produced by FormatSpec. "" and
// DefaultSpec parse to an empty prefix.
func ParseSpec(s string) ([]Choice, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == DefaultSpec {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	out := make([]Choice, 0, len(parts))
	for i, tok := range parts {
		if len(tok) < 2 {
			return nil, fmt.Errorf("sched: bad schedule token %q at %d", tok, i)
		}
		k, ok := kindOfLetter(tok[0])
		if !ok {
			return nil, fmt.Errorf("sched: unknown decision kind %q at %d", tok[:1], i)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sched: bad choice index %q at %d", tok[1:], i)
		}
		out = append(out, Choice{Kind: k, Index: n})
	}
	return out, nil
}

// NonDefault counts the non-default choices of a prefix — the
// preemption-bound metric (see Controller and internal/explore).
func NonDefault(prefix []Choice) int {
	n := 0
	for _, c := range prefix {
		if c.Index != 0 {
			n++
		}
	}
	return n
}

// Sentinel errors surfaced by Settle/Block when the controlled run can
// no longer proceed.
var (
	// ErrStuck reports a scheduler-detected deadlock or livelock: the
	// system is quiescent and no decision point is viable.
	ErrStuck = errors.New("sched: schedule stuck (no viable decision at quiescence)")
	// ErrAborted reports that the controlled job aborted (a rank died).
	ErrAborted = errors.New("sched: controlled job aborted")
	// ErrBudget reports that the run hit its logical step budget
	// (SetStepBudget): the decision log reached the configured length,
	// so the supervisor tore the run down. Deterministic by
	// construction — the log is a pure function of the schedule.
	ErrBudget = errors.New("sched: step budget exceeded")
)
