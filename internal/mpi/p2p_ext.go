package mpi

import (
	"fmt"
	"reflect"

	"cusango/internal/memspace"
)

// Extended point-to-point operations: synchronous-mode send (MPI_Ssend),
// Waitany, and Probe/Iprobe.

// probeWaiter is a parked MPI_Probe.
type probeWaiter struct {
	src, tag int
	found    chan Status
}

// notifyProbes completes parked probes that match p. Must run with the
// mailbox locked.
func (mb *mailbox) notifyProbes(p *packet) {
	kept := mb.probes[:0]
	for _, w := range mb.probes {
		if envelopeMatch(w.src, w.tag, p) {
			mb.wake(p.src, w.found, mb.owner)
			w.found <- statusOf(p)
		} else {
			kept = append(kept, w)
		}
	}
	mb.probes = kept
}

func statusOf(p *packet) Status {
	n := 0
	if p.dt.Size > 0 {
		n = int(int64(len(p.data)) / p.dt.Size)
	}
	return Status{Source: p.src, Tag: p.tag, Count: n}
}

// deliverSync posts a packet that carries a rendezvous channel: it is
// closed when a receive matches the packet (synchronous-mode send
// semantics).
func (mb *mailbox) deliverSync(p *packet) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.notifyProbes(p)
	for i, r := range mb.recvs {
		if envelopeMatch(r.src, r.tag, p) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			r.pkt = p
			mb.wake(p.src, r.done, mb.owner)
			close(r.done)
			mb.wake(p.src, p.rendezvous, p.src)
			close(p.rendezvous)
			return
		}
	}
	mb.activity(p.src, mb.owner)
	mb.sends = append(mb.sends, p)
}

// Ssend performs a synchronous-mode send (MPI_Ssend): it returns only
// after the matching receive has been posted, so completion implies the
// receiver reached the communication.
func (c *Comm) Ssend(buf memspace.Addr, count int, dt Datatype, dest, tag int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.checkPeer(dest, false); err != nil {
		return err
	}
	if err := c.enter(); err != nil {
		return err
	}
	// Interception: access semantics identical to a standard send.
	c.hooks.PreSend(buf, count, dt, dest, tag)
	data, err := c.readBuf(buf, count, dt)
	if err != nil {
		return err
	}
	p := &packet{src: c.rank, tag: tag, dt: dt, data: data, rendezvous: make(chan struct{})}
	c.world.boxes[dest].deliverSync(p)
	// Rendezvous is impossible only once the receiver is dead: its
	// receive posts happen-before its death flag, so no match by then
	// means no match ever.
	if err := c.waitAbortable(p.rendezvous, func() bool { return c.world.rankGone(dest) }); err != nil {
		return err
	}
	c.stats.Sends++
	c.stats.BytesSent += int64(len(data))
	c.countBufferKind(buf)
	c.hooks.PostSend(buf, count, dt, dest, tag)
	return nil
}

// Waitany blocks until one of the requests completes, completes it, and
// returns its index (MPI_Waitany).
func (c *Comm) Waitany(reqs []*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, fmt.Errorf("%w: Waitany with no requests", ErrRequest)
	}
	for i, r := range reqs {
		if r == nil || r.comm != c {
			return -1, Status{}, fmt.Errorf("%w: request %d foreign or nil", ErrRequest, i)
		}
		if r.done {
			return -1, Status{}, fmt.Errorf("%w: request %d already completed", ErrRequest, i)
		}
	}
	if err := c.enter(); err != nil {
		return -1, Status{}, err
	}
	// Send requests complete immediately (buffered transport).
	for i, r := range reqs {
		if r.kind == ReqSend {
			st, err := c.Wait(r)
			return i, st, err
		}
	}
	if c.world.ctl != nil {
		// Which completed request Waitany returns is a schedule choice.
		return c.waitanyControlled(reqs)
	}
	// All receives: select over their matching channels.
	cases := make([]reflect.SelectCase, len(reqs))
	for i, r := range reqs {
		cases[i] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(r.post.done),
		}
	}
	// An already-complete request wins over a concurrent job abort, and
	// Waitany keeps waiting while any constituent receive can still be
	// matched: it fails only when every request is provably dead (its
	// source — every other rank, for a wildcard — died without
	// delivering a match). Each recorded death re-evaluates.
	poll := append(append([]reflect.SelectCase{}, cases...),
		reflect.SelectCase{Dir: reflect.SelectDefault})
	for {
		if chosen, _, _ := reflect.Select(poll); chosen < len(reqs) {
			st, err := c.Wait(reqs[chosen])
			return chosen, st, err
		}
		gen := c.world.goneWatch()
		if chosen, _, _ := reflect.Select(poll); chosen < len(reqs) {
			st, err := c.Wait(reqs[chosen])
			return chosen, st, err
		}
		allDead := true
		for _, r := range reqs {
			if !c.recvImpossible(r.post.src)() {
				allDead = false
				break
			}
		}
		if c.world.tornDown() || allDead {
			if chosen, _, _ := reflect.Select(poll); chosen < len(reqs) {
				st, err := c.Wait(reqs[chosen])
				return chosen, st, err
			}
			return -1, Status{}, c.world.abortError()
		}
		sel := append(append([]reflect.SelectCase{}, cases...),
			reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(gen)})
		if chosen, _, _ := reflect.Select(sel); chosen < len(reqs) {
			st, err := c.Wait(reqs[chosen])
			return chosen, st, err
		}
	}
}

// findMatch scans this rank's mailbox for a delivered message matching
// (src, tag) without consuming it.
func (c *Comm) findMatch(src, tag int) (bool, Status) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, p := range mb.sends {
		if envelopeMatch(src, tag, p) {
			return true, statusOf(p)
		}
	}
	return false, Status{}
}

// Iprobe checks non-blockingly for a matching incoming message without
// receiving it (MPI_Iprobe). Like Test, a poll is not a failure point:
// no fault site fires here, so occurrence numbering is independent of
// how many times a polling loop spins before its message arrives. Once
// a job abort is visible the poll fails — after one final re-scan, so
// a message the dead rank delivered before dying is still found.
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	if err := c.checkPeer(src, true); err != nil {
		return false, Status{}, err
	}
	if c.world.ctl != nil {
		// Whether a poll sees the message is a schedule choice; an
		// unmatchable poll parks (a fruitless iteration is unobservable).
		return c.iprobeControlled(src, tag)
	}
	if ok, st := c.findMatch(src, tag); ok {
		return true, st, nil
	}
	// No match: fail the poll only once a match can provably never
	// arrive — the probed source (every other rank, for a wildcard) is
	// dead and delivered nothing matching. A still-alive source may
	// simply not have sent yet; failing on an unrelated rank's death
	// would make the probe's outcome a wall-clock race.
	if c.world.tornDown() || c.recvImpossible(src)() {
		if ok, st := c.findMatch(src, tag); ok {
			return true, st, nil
		}
		return false, Status{}, c.world.abortError()
	}
	return false, Status{}, nil
}

// Probe blocks until a matching message is available, without receiving
// it (MPI_Probe). A subsequent Recv with the returned envelope consumes
// the message.
func (c *Comm) Probe(src, tag int) (Status, error) {
	if err := c.checkPeer(src, true); err != nil {
		return Status{}, err
	}
	if err := c.enter(); err != nil {
		return Status{}, err
	}
	if c.world.ctl != nil && (src == AnySource || tag == AnyTag) {
		// Which candidate a wildcard probe reports is a schedule choice.
		return c.probeControlled(src, tag)
	}
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	for _, p := range mb.sends {
		if envelopeMatch(src, tag, p) {
			st := statusOf(p)
			mb.mu.Unlock()
			return st, nil
		}
	}
	w := &probeWaiter{src: src, tag: tag, found: make(chan Status, 1)}
	mb.probes = append(mb.probes, w)
	mb.mu.Unlock()
	if ctl := c.world.ctl; ctl != nil {
		ctl.Block(c.rank, w.found)
	}
	// Completion wins over a concurrent abort, and the probe keeps
	// waiting past unrelated deaths: it fails only once the probed
	// source (every other rank, for a wildcard) is dead without having
	// delivered a match.
	for {
		gen := c.world.goneWatch()
		select {
		case st := <-w.found:
			return st, nil
		default:
		}
		if c.world.tornDown() || c.recvImpossible(src)() {
			select {
			case st := <-w.found:
				return st, nil
			default:
				return Status{}, c.world.abortError()
			}
		}
		select {
		case st := <-w.found:
			return st, nil
		case <-gen:
		}
	}
}
