package mpi

import (
	"fmt"

	"cusango/internal/faults"
	"cusango/internal/memspace"
)

// ReqKind discriminates request kinds.
type ReqKind uint8

// Request kinds.
const (
	ReqSend ReqKind = iota
	ReqRecv
)

func (k ReqKind) String() string {
	if k == ReqSend {
		return "isend"
	}
	return "irecv"
}

// Request is a non-blocking operation handle (MPI_Request analog).
type Request struct {
	kind  ReqKind
	buf   memspace.Addr
	count int
	dt    Datatype
	peer  int
	tag   int

	comm *Comm
	post *recvPost // recv only
	// held marks a wildcard receive under a schedule controller: the
	// match is not posted eagerly but settled as a Match decision at the
	// completion call (Wait/Test/Waitany), where the candidate choice is
	// a schedule branch.
	held bool
	done bool
	st   Status
}

// Kind returns whether the request is a send or a receive.
func (r *Request) Kind() ReqKind { return r.kind }

// Buffer returns the posted buffer address.
func (r *Request) Buffer() memspace.Addr { return r.buf }

// Count returns the posted element count.
func (r *Request) Count() int { return r.count }

// Datatype returns the posted datatype.
func (r *Request) Datatype() Datatype { return r.dt }

// Peer returns the destination (send) or source (recv, may be AnySource).
func (r *Request) Peer() int { return r.peer }

// Tag returns the posted tag.
func (r *Request) Tag() int { return r.tag }

// Done reports whether the request has completed (been waited on).
func (r *Request) Done() bool { return r.done }

func (r *Request) String() string {
	return fmt.Sprintf("%s(buf=0x%x count=%d %s peer=%d tag=%d)",
		r.kind, uint64(r.buf), r.count, r.dt.Name, r.peer, r.tag)
}

func (c *Comm) track(r *Request) {
	if c.live == nil {
		c.live = make(map[*Request]struct{})
	}
	c.live[r] = struct{}{}
}

// Isend starts a non-blocking standard-mode send. The user must not
// modify the buffer until the request completes; the correctness tooling
// (MUST) enforces this by annotating the buffer read on an MPI fiber.
// Functionally the message is captured eagerly (buffered semantics).
func (c *Comm) Isend(buf memspace.Addr, count int, dt Datatype, dest, tag int) (*Request, error) {
	if count < 0 {
		return nil, ErrCount
	}
	if err := c.checkPeer(dest, false); err != nil {
		return nil, err
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	req := &Request{kind: ReqSend, buf: buf, count: count, dt: dt, peer: dest, tag: tag, comm: c}
	c.hooks.PreIsend(buf, count, dt, dest, tag, req)
	data, err := c.readBuf(buf, count, dt)
	if err != nil {
		return nil, err
	}
	c.world.boxes[dest].deliver(&packet{src: c.rank, tag: tag, dt: dt, data: data})
	c.stats.Isends++
	c.stats.BytesSent += int64(len(data))
	c.countBufferKind(buf)
	c.track(req)
	return req, nil
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(buf memspace.Addr, count int, dt Datatype, src, tag int) (*Request, error) {
	if count < 0 {
		return nil, ErrCount
	}
	if err := c.checkPeer(src, true); err != nil {
		return nil, err
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	req := &Request{kind: ReqRecv, buf: buf, count: count, dt: dt, peer: src, tag: tag, comm: c}
	c.hooks.PreIrecv(buf, count, dt, src, tag, req)
	if c.world.ctl != nil && (src == AnySource || tag == AnyTag) {
		req.held = true
	} else {
		req.post = &recvPost{src: src, tag: tag, done: make(chan struct{})}
		c.world.boxes[c.rank].post(req.post)
	}
	c.stats.Irecvs++
	c.countBufferKind(buf)
	c.track(req)
	return req, nil
}

// Wait blocks until the request completes (MPI_Wait). Waiting twice on
// the same request is an error (our requests are not persistent).
func (c *Comm) Wait(req *Request) (Status, error) {
	if req == nil || req.comm != c {
		return Status{}, fmt.Errorf("%w: foreign or nil request", ErrRequest)
	}
	if req.done {
		return Status{}, fmt.Errorf("%w: already completed (%s)", ErrRequest, req)
	}
	if err := c.enter(); err != nil {
		return Status{}, err
	}
	c.hooks.PreWait(req)
	var st Status
	switch req.kind {
	case ReqSend:
		// Buffered send: complete as soon as posted.
		st = Status{Source: c.rank, Tag: req.tag, Count: req.count}
	case ReqRecv:
		if req.held {
			if err := c.waitHeld(req); err != nil {
				return Status{}, err
			}
		}
		if err := c.waitAbortable(req.post.done, c.recvImpossible(req.post.src)); err != nil {
			return Status{}, err
		}
		var err error
		st, err = c.completeRecv(req.buf, req.count, req.dt, req.post.pkt)
		if err != nil {
			return st, err
		}
		c.stats.Recvs++
	}
	req.done = true
	req.st = st
	delete(c.live, req)
	c.stats.Waits++
	c.hooks.PostWait(req, st)
	return st, nil
}

// WaitAll waits for every request in order (MPI_Waitall).
func (c *Comm) WaitAll(reqs ...*Request) error {
	for _, r := range reqs {
		if _, err := c.Wait(r); err != nil {
			return err
		}
	}
	return nil
}

// Test polls a request (MPI_Test). With the eager transport, a send is
// always complete and a receive is complete once matched.
//
// A poll is not a failure point: Test fires no rank-abort site and the
// delayed-completion site fires only for a request that could complete,
// so fault-site occurrence numbering stays a pure function of program
// order — the number of fruitless iterations a Test busy-wait performs
// before its message arrives is wall-clock noise and must not shift
// which occurrence a fault plan hits.
func (c *Comm) Test(req *Request) (bool, Status, error) {
	if req == nil || req.comm != c {
		return false, Status{}, fmt.Errorf("%w: foreign or nil request", ErrRequest)
	}
	if req.done {
		return true, req.st, nil
	}
	if c.world.ctl != nil {
		// Complete-versus-defer is a schedule choice (the delayed-
		// completion fault's logical analog); an unmatchable poll parks.
		return c.testControlled(req)
	}
	if req.kind == ReqRecv {
		select {
		case <-req.post.done:
		default:
			// Not matched yet. Fail the poll only once the match can
			// provably never arrive — the source rank (every other rank,
			// for a wildcard) is dead and its deliveries, which happen-
			// before its death flag, did not include one. A still-alive
			// source may simply not have sent yet, and a poll loop must
			// keep reporting "not yet" rather than racing an unrelated
			// rank's death — a Test loop must not spin forever waiting
			// for a message a dead rank will never send, but it equally
			// must not fail on a message that is still coming.
			if c.world.tornDown() || c.recvImpossible(req.post.src)() {
				select {
				case <-req.post.done:
				default:
					return false, Status{}, c.world.abortError()
				}
			} else {
				return false, Status{}, nil
			}
		}
	}
	// Delayed completion: report "not yet" even though the request could
	// complete — legal under MPI progress semantics, so the tool's
	// verdict must be unaffected.
	if f := c.inj.Fire(faults.MPIDelayCompletion); f != nil {
		return false, Status{}, nil
	}
	st, err := c.Wait(req)
	if err != nil {
		return false, Status{}, err
	}
	return true, st, nil
}
