package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"cusango/internal/memspace"
)

// Collectives. All ranks of the communicator must call collectives in the
// same order; the matching engine pairs the i-th collective call of every
// rank and verifies the operation names agree (a mismatch is the classic
// MPI collective-ordering bug, reported as ErrCollectiveMismatch).

type collOp struct {
	name     string
	contribs [][]byte
	came     []bool // per-rank arrival, for the death predicate
	arrived  int
	result   []byte
	err      error
	done     chan struct{}
}

// getColl pairs the caller's seq-th collective with its peers'.
func (w *World) getColl(seq int64, name string) *collOp {
	w.collMu.Lock()
	defer w.collMu.Unlock()
	op, ok := w.colls[seq]
	if !ok {
		op = &collOp{name: name, contribs: make([][]byte, w.size),
			came: make([]bool, w.size), done: make(chan struct{})}
		w.colls[seq] = op
	}
	return op
}

// contribute registers this rank's payload (or its local failure, so
// peers do not deadlock waiting for a rank that errored out before
// contributing); the last arriver finalizes. A job abort releases
// waiting ranks with the abort error — a dead rank never arrives.
func (w *World) contribute(op *collOp, seq int64, rank int, name string, data []byte,
	localErr error, finalize func(op *collOp)) error {
	w.collMu.Lock()
	if localErr != nil && op.err == nil {
		op.err = fmt.Errorf("mpi: rank %d failed in %s: %w", rank, name, localErr)
	}
	if op.name != name && op.err == nil {
		op.err = fmt.Errorf("%w: %q vs %q", ErrCollectiveMismatch, op.name, name)
	}
	op.contribs[rank] = data
	op.came[rank] = true
	op.arrived++
	last := op.arrived == w.size
	if last {
		if op.err == nil {
			finalize(op)
		}
		delete(w.colls, seq)
	}
	w.collMu.Unlock()
	if last {
		if w.ctl != nil {
			// A completing collective affects every rank (including ones
			// still on their way to the call): record a wildcard activity,
			// then wake the parked waiters before the close.
			w.ctl.Activity(rank, -1)
			w.ctl.Wake(rank, op.done, -1)
		}
		close(op.done)
		return nil
	}
	if w.ctl != nil {
		w.ctl.Block(rank, op.done)
	}
	// Completion wins over a concurrent abort, and the collective fails
	// only once it can provably never complete: some participant died
	// before arriving at this instance. A rank that arrived and died
	// later already contributed (its arrival mark happens-before its
	// death flag), so its death does not doom the operation — failing
	// on it would race the death's visibility against the remaining
	// arrivals.
	impossible := func() bool {
		w.collMu.Lock()
		defer w.collMu.Unlock()
		for r := 0; r < w.size; r++ {
			if !op.came[r] && w.rankGone(r) {
				return true
			}
		}
		return false
	}
	for {
		gen := w.goneWatch()
		select {
		case <-op.done:
			return nil
		default:
		}
		if w.tornDown() || impossible() {
			select {
			case <-op.done:
				return nil
			default:
				return w.abortError()
			}
		}
		select {
		case <-op.done:
			return nil
		case <-gen:
		}
	}
}

// Barrier blocks until all ranks arrive (MPI_Barrier).
func (c *Comm) Barrier() error {
	if err := c.enter(); err != nil {
		return err
	}
	c.hooks.PreCollective("MPI_Barrier", 0, 0, 0, 0)
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, "MPI_Barrier")
	if err := c.world.contribute(op, seq, c.rank, "MPI_Barrier", nil, nil, func(*collOp) {}); err != nil {
		return err
	}
	c.stats.Collectives++
	c.hooks.PostCollective("MPI_Barrier", 0, 0, 0, 0)
	return op.err
}

// Bcast broadcasts count elements from root's buf into every rank's buf
// (MPI_Bcast).
func (c *Comm) Bcast(buf memspace.Addr, count int, dt Datatype, root int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.checkPeer(root, false); err != nil {
		return err
	}
	if err := c.enter(); err != nil {
		return err
	}
	bytes := int64(count) * dt.Size
	var readA, writeA memspace.Addr
	var readN, writeN int64
	if c.rank == root {
		readA, readN = buf, bytes
	} else {
		writeA, writeN = buf, bytes
	}
	c.hooks.PreCollective("MPI_Bcast", readA, readN, writeA, writeN)

	var payload []byte
	var localErr error
	if c.rank == root {
		payload, localErr = c.readBuf(buf, count, dt)
	}
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, "MPI_Bcast")
	if err := c.world.contribute(op, seq, c.rank, "MPI_Bcast", payload, localErr, func(op *collOp) {
		op.result = op.contribs[root]
	}); err != nil {
		return err
	}
	if op.err != nil {
		return op.err
	}
	if c.rank != root {
		if int64(len(op.result)) != bytes {
			return fmt.Errorf("%w: bcast size mismatch: root sent %d bytes, posted %d",
				ErrTruncate, len(op.result), bytes)
		}
		if err := c.writeBuf(buf, op.result); err != nil {
			return err
		}
	}
	c.stats.Collectives++
	c.countBufferKind(buf)
	c.hooks.PostCollective("MPI_Bcast", readA, readN, writeA, writeN)
	return nil
}

// Allreduce reduces count elements element-wise across ranks and stores
// the result in every rank's recvBuf (MPI_Allreduce).
func (c *Comm) Allreduce(sendBuf, recvBuf memspace.Addr, count int, dt Datatype, op Op) error {
	return c.reduceImpl("MPI_Allreduce", sendBuf, recvBuf, count, dt, op, -1)
}

// Reduce reduces to root only (MPI_Reduce).
func (c *Comm) Reduce(sendBuf, recvBuf memspace.Addr, count int, dt Datatype, op Op, root int) error {
	if err := c.checkPeer(root, false); err != nil {
		return err
	}
	return c.reduceImpl("MPI_Reduce", sendBuf, recvBuf, count, dt, op, root)
}

func (c *Comm) reduceImpl(name string, sendBuf, recvBuf memspace.Addr, count int,
	dt Datatype, rop Op, root int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.enter(); err != nil {
		return err
	}
	bytes := int64(count) * dt.Size
	writes := root < 0 || root == c.rank
	var writeA memspace.Addr
	var writeN int64
	if writes {
		writeA, writeN = recvBuf, bytes
	}
	c.hooks.PreCollective(name, sendBuf, bytes, writeA, writeN)

	payload, localErr := c.readBuf(sendBuf, count, dt)
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, name)
	if err := c.world.contribute(op, seq, c.rank, name, payload, localErr, func(op *collOp) {
		acc := make([]byte, len(op.contribs[0]))
		copy(acc, op.contribs[0])
		for r := 1; r < len(op.contribs); r++ {
			reduceInto(acc, op.contribs[r], dt, rop)
		}
		op.result = acc
	}); err != nil {
		return err
	}
	if op.err != nil {
		return op.err
	}
	if writes {
		if err := c.writeBuf(recvBuf, op.result); err != nil {
			return err
		}
	}
	c.stats.Collectives++
	c.countBufferKind(sendBuf)
	c.hooks.PostCollective(name, sendBuf, bytes, writeA, writeN)
	return nil
}

// Allgather concatenates every rank's count elements into recvBuf
// (size*count elements) on all ranks (MPI_Allgather).
func (c *Comm) Allgather(sendBuf, recvBuf memspace.Addr, count int, dt Datatype) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.enter(); err != nil {
		return err
	}
	bytes := int64(count) * dt.Size
	total := bytes * int64(c.world.size)
	c.hooks.PreCollective("MPI_Allgather", sendBuf, bytes, recvBuf, total)

	payload, localErr := c.readBuf(sendBuf, count, dt)
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, "MPI_Allgather")
	if err := c.world.contribute(op, seq, c.rank, "MPI_Allgather", payload, localErr, func(op *collOp) {
		var out []byte
		for _, part := range op.contribs {
			out = append(out, part...)
		}
		op.result = out
	}); err != nil {
		return err
	}
	if op.err != nil {
		return op.err
	}
	if err := c.writeBuf(recvBuf, op.result); err != nil {
		return err
	}
	c.stats.Collectives++
	c.countBufferKind(recvBuf)
	c.hooks.PostCollective("MPI_Allgather", sendBuf, bytes, recvBuf, total)
	return nil
}

// reduceInto applies acc = acc (op) src element-wise.
func reduceInto(acc, src []byte, dt Datatype, op Op) {
	switch dt.TypeartID {
	case Float64.TypeartID:
		for i := 0; i+8 <= len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(applyF(a, b, op)))
		}
	case Float32.TypeartID:
		for i := 0; i+4 <= len(acc); i += 4 {
			a := math.Float32frombits(binary.LittleEndian.Uint32(acc[i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(acc[i:], math.Float32bits(float32(applyF(float64(a), float64(b), op))))
		}
	case Int64.TypeartID:
		for i := 0; i+8 <= len(acc); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(acc[i:], uint64(applyI(a, b, op)))
		}
	case Int32.TypeartID:
		for i := 0; i+4 <= len(acc); i += 4 {
			a := int64(int32(binary.LittleEndian.Uint32(acc[i:])))
			b := int64(int32(binary.LittleEndian.Uint32(src[i:])))
			binary.LittleEndian.PutUint32(acc[i:], uint32(int32(applyI(a, b, op))))
		}
	default: // bytes
		for i := range acc {
			acc[i] = byte(applyI(int64(acc[i]), int64(src[i]), op))
		}
	}
}

func applyF(a, b float64, op Op) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		return a * b
	}
}

func applyI(a, b int64, op Op) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		return a * b
	}
}

// Gather concatenates every rank's count elements into root's recvBuf
// (size*count elements) on the root only (MPI_Gather).
func (c *Comm) Gather(sendBuf, recvBuf memspace.Addr, count int, dt Datatype, root int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.checkPeer(root, false); err != nil {
		return err
	}
	if err := c.enter(); err != nil {
		return err
	}
	bytes := int64(count) * dt.Size
	var writeA memspace.Addr
	var writeN int64
	if c.rank == root {
		writeA, writeN = recvBuf, bytes*int64(c.world.size)
	}
	c.hooks.PreCollective("MPI_Gather", sendBuf, bytes, writeA, writeN)

	payload, localErr := c.readBuf(sendBuf, count, dt)
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, "MPI_Gather")
	if err := c.world.contribute(op, seq, c.rank, "MPI_Gather", payload, localErr, func(op *collOp) {
		var out []byte
		for _, part := range op.contribs {
			out = append(out, part...)
		}
		op.result = out
	}); err != nil {
		return err
	}
	if op.err != nil {
		return op.err
	}
	if c.rank == root {
		if err := c.writeBuf(recvBuf, op.result); err != nil {
			return err
		}
	}
	c.stats.Collectives++
	c.countBufferKind(sendBuf)
	c.hooks.PostCollective("MPI_Gather", sendBuf, bytes, writeA, writeN)
	return nil
}

// Scatter distributes size*count elements from root's sendBuf, count per
// rank, into every rank's recvBuf (MPI_Scatter).
func (c *Comm) Scatter(sendBuf, recvBuf memspace.Addr, count int, dt Datatype, root int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.checkPeer(root, false); err != nil {
		return err
	}
	if err := c.enter(); err != nil {
		return err
	}
	bytes := int64(count) * dt.Size
	var readA memspace.Addr
	var readN int64
	if c.rank == root {
		readA, readN = sendBuf, bytes*int64(c.world.size)
	}
	c.hooks.PreCollective("MPI_Scatter", readA, readN, recvBuf, bytes)

	var payload []byte
	var localErr error
	if c.rank == root {
		payload, localErr = c.readBuf(sendBuf, count*c.world.size, dt)
	}
	seq := c.collSeq
	c.collSeq++
	op := c.world.getColl(seq, "MPI_Scatter")
	if err := c.world.contribute(op, seq, c.rank, "MPI_Scatter", payload, localErr, func(op *collOp) {
		op.result = op.contribs[root]
	}); err != nil {
		return err
	}
	if op.err != nil {
		return op.err
	}
	if int64(len(op.result)) != bytes*int64(c.world.size) {
		return fmt.Errorf("%w: scatter size mismatch: root provided %d bytes, need %d",
			ErrTruncate, len(op.result), bytes*int64(c.world.size))
	}
	chunk := op.result[int64(c.rank)*bytes : (int64(c.rank)+1)*bytes]
	if err := c.writeBuf(recvBuf, chunk); err != nil {
		return err
	}
	c.stats.Collectives++
	c.countBufferKind(recvBuf)
	c.hooks.PostCollective("MPI_Scatter", readA, readN, recvBuf, bytes)
	return nil
}
