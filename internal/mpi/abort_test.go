package mpi

import (
	"errors"
	"strings"
	"testing"

	"cusango/internal/faults"
	"cusango/internal/memspace"
)

// attach builds a world of n ranks with plain memories and returns the
// comms (no hooks, no injectors).
func attach(t *testing.T, w *World) []*Comm {
	t.Helper()
	comms := make([]*Comm, w.Size())
	for i := range comms {
		c, err := w.AttachRank(i, memspace.New(), nil)
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	return comms
}

// TestAbortUnblocksRecv: a rank blocked in Recv unblocks with ErrAborted
// when another rank aborts the job.
func TestAbortUnblocksRecv(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	buf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	errCh := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(buf, 8, Float64, 1, 0)
		errCh <- err
	}()
	w.Abort(1, errors.New("rank died"))
	err := <-errCh
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Recv returned %v, want ErrAborted", err)
	}
	// Future calls fail fast too.
	if err := comms[0].Barrier(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort Barrier returned %v, want ErrAborted", err)
	}
	if w.Aborted() == nil {
		t.Fatal("Aborted() nil after abort")
	}
}

// TestAbortUnblocksCollective: a rank waiting in a collective unblocks.
func TestAbortUnblocksCollective(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	errCh := make(chan error, 1)
	go func() { errCh <- comms[0].Barrier() }()
	w.Abort(1, nil)
	if err := <-errCh; !errors.Is(err, ErrAborted) {
		t.Fatalf("Barrier returned %v, want ErrAborted", err)
	}
}

// TestInjectedRankAbort: the mpi-abort site kills the job from inside an
// MPI call; the injected fault is recoverable from both ranks' errors.
func TestInjectedRankAbort(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	plan, err := faults.Parse("mpi-abort@0:r1")
	if err != nil {
		t.Fatal(err)
	}
	comms[1].SetInjector(plan.Injector(1))

	errCh := make(chan error, 1)
	go func() { errCh <- comms[0].Barrier() }()
	err1 := comms[1].Barrier()
	f, ok := faults.Extract(err1)
	if !ok || f.Site != faults.MPIRankAbort || f.Occurrence != 0 {
		t.Fatalf("aborting rank error %v, want injected mpi-abort fault", err1)
	}
	err0 := <-errCh
	if !errors.Is(err0, ErrAborted) {
		t.Fatalf("peer error %v, want ErrAborted", err0)
	}
	if _, ok := faults.Extract(err0); !ok {
		t.Fatalf("peer error %v should carry the causing fault", err0)
	}
}

// TestInjectedTruncate: the mpi-truncate site surfaces as ErrTruncate
// carrying the fault.
func TestInjectedTruncate(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	plan, err := faults.Parse("mpi-truncate@0:r1")
	if err != nil {
		t.Fatal(err)
	}
	comms[1].SetInjector(plan.Injector(1))

	sbuf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	rbuf := comms[1].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[0].Send(sbuf, 8, Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	_, rerr := comms[1].Recv(rbuf, 8, Float64, 0, 0)
	if !errors.Is(rerr, ErrTruncate) {
		t.Fatalf("Recv returned %v, want ErrTruncate", rerr)
	}
	if _, ok := faults.Extract(rerr); !ok {
		t.Fatalf("truncate error %v should carry the fault", rerr)
	}
}

// TestInjectedDelayCompletion: the mpi-delay site makes Test report
// incomplete once, then the request completes normally with intact data.
func TestInjectedDelayCompletion(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	plan, err := faults.Parse("mpi-delay@0:r1")
	if err != nil {
		t.Fatal(err)
	}
	comms[1].SetInjector(plan.Injector(1))

	sbuf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	rbuf := comms[1].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[0].mem.Set(sbuf, 0xAB, 64); err != nil {
		t.Fatal(err)
	}
	req, err := comms[1].Irecv(rbuf, 8, Float64, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := comms[0].Send(sbuf, 8, Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	done, _, err := comms[1].Test(req)
	if err != nil || done {
		t.Fatalf("first Test = (%v, %v), want delayed incomplete", done, err)
	}
	done, st, err := comms[1].Test(req)
	if err != nil || !done || st.Count != 8 {
		t.Fatalf("second Test = (%v, %+v, %v), want complete", done, st, err)
	}
	b, err := comms[1].mem.Bytes(rbuf, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0xAB {
			t.Fatalf("byte %d = %#x after delayed completion", i, v)
		}
	}
}

// TestAbortFirstWins: only the first abort's cause is kept.
func TestAbortFirstWins(t *testing.T) {
	w := NewWorld(2)
	w.Abort(0, errors.New("first"))
	w.Abort(1, errors.New("second"))
	if err := w.Aborted(); err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("Aborted = %v", err)
	} else if got := err.Error(); !strings.Contains(got, "first") || strings.Contains(got, "second") {
		t.Fatalf("abort error %q, want first cause only", got)
	}
}

// TestAbortPrefersCompletion: a message the dead rank delivered before
// dying is still receivable after the abort is visible — completion
// wins over the abort, which is what makes faulted verdicts a pure
// function of the fault plan (the campaign determinism guarantee).
func TestAbortPrefersCompletion(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	sbuf := comms[1].mem.Alloc(64, memspace.KindHostPageable)
	rbuf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[1].Send(sbuf, 8, Float64, 0, 0); err != nil {
		t.Fatal(err)
	}
	w.Abort(1, errors.New("rank died after sending"))

	// The delivered message completes; the next (unmatched) Recv aborts.
	if st, err := comms[0].Recv(rbuf, 8, Float64, 1, 0); err != nil || st.Count != 8 {
		t.Fatalf("Recv of pre-abort delivery = (%+v, %v), want completion", st, err)
	}
	if _, err := comms[0].Recv(rbuf, 8, Float64, 1, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("unmatched post-abort Recv returned %v, want ErrAborted", err)
	}
}

// TestTestTerminatesOnAbort: a Test poll on an unmatched request fails
// with the abort error once the abort is visible (no infinite spin),
// but still completes a request the dead rank matched before dying.
func TestTestTerminatesOnAbort(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	buf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	unmatched, err := comms[0].Irecv(buf, 8, Float64, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf2 := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	matched, err := comms[0].Irecv(buf2, 8, Float64, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sbuf := comms[1].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[1].Send(sbuf, 8, Float64, 0, 2); err != nil {
		t.Fatal(err)
	}
	w.Abort(1, errors.New("rank died"))

	if done, _, err := comms[0].Test(matched); err != nil || !done {
		t.Fatalf("Test of matched request = (%v, %v), want completion", done, err)
	}
	if _, _, err := comms[0].Test(unmatched); !errors.Is(err, ErrAborted) {
		t.Fatalf("Test of unmatched request returned %v, want ErrAborted", err)
	}
}

// TestIprobeTerminatesOnAbort: an Iprobe poll still finds a pre-abort
// delivery, and fails (rather than reporting "no message" forever) for
// an envelope the dead rank never sent.
func TestIprobeTerminatesOnAbort(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	sbuf := comms[1].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[1].Send(sbuf, 8, Float64, 0, 7); err != nil {
		t.Fatal(err)
	}
	w.Abort(1, errors.New("rank died"))

	if ok, st, err := comms[0].Iprobe(1, 7); err != nil || !ok || st.Count != 8 {
		t.Fatalf("Iprobe of pre-abort delivery = (%v, %+v, %v), want found", ok, st, err)
	}
	if _, _, err := comms[0].Iprobe(1, 99); !errors.Is(err, ErrAborted) {
		t.Fatalf("Iprobe of never-sent envelope returned %v, want ErrAborted", err)
	}
}

// TestPostAbortBufferedSend: a buffered send after an abort still
// succeeds — it never blocks on the dead peer, so it can complete, and
// completion always wins.
func TestPostAbortBufferedSend(t *testing.T) {
	w := NewWorld(2)
	comms := attach(t, w)
	w.Abort(1, errors.New("rank died"))
	sbuf := comms[0].mem.Alloc(64, memspace.KindHostPageable)
	if err := comms[0].Send(sbuf, 8, Float64, 1, 0); err != nil {
		t.Fatalf("post-abort buffered Send returned %v, want success", err)
	}
}
