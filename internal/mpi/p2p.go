package mpi

import (
	"fmt"
	"sync"

	"cusango/internal/faults"
	"cusango/internal/memspace"
	"cusango/internal/sched"
)

// Point-to-point matching engine.
//
// Each destination rank owns a mailbox of unmatched posted sends
// (packets) and unmatched posted receives. Matching follows MPI rules:
// a receive matches the earliest-posted send whose (source, tag) agree,
// honouring AnySource/AnyTag wildcards, which preserves the
// non-overtaking guarantee for identical envelopes.

type recvPost struct {
	src, tag int
	done     chan struct{}
	pkt      *packet // set under the mailbox lock before closing done
}

type mailbox struct {
	mu     sync.Mutex
	sends  []*packet
	recvs  []*recvPost
	probes []*probeWaiter

	// owner/ctl are set when the world is placed under a schedule
	// controller (World.SetController); owner is the destination rank.
	owner int
	ctl   *sched.Controller
}

func newMailbox() *mailbox { return &mailbox{} }

// wake re-marks ranks parked on key runnable before the caller signals
// the underlying channel (no-op without a controller). Must be called
// before the close/send so the controller never sees a false
// quiescence.
func (mb *mailbox) wake(actor int, key any, hint int) {
	if mb.ctl != nil {
		mb.ctl.Wake(actor, key, hint)
	}
}

// activity records a cross-rank effect that signals no channel (an
// unmatched delivery), feeding settler viability re-evaluation and the
// explorer's independence analysis.
func (mb *mailbox) activity(actor, target int) {
	if mb.ctl != nil {
		mb.ctl.Activity(actor, target)
	}
}

func envelopeMatch(wantSrc, wantTag int, p *packet) bool {
	if wantSrc != AnySource && wantSrc != p.src {
		return false
	}
	if wantTag != AnyTag && wantTag != p.tag {
		return false
	}
	return true
}

// deliver posts a packet to the mailbox, completing the earliest
// matching posted receive if any, and waking matching probes.
func (mb *mailbox) deliver(p *packet) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.notifyProbes(p)
	for i, r := range mb.recvs {
		if envelopeMatch(r.src, r.tag, p) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			r.pkt = p
			mb.wake(p.src, r.done, mb.owner)
			close(r.done)
			return
		}
	}
	mb.activity(p.src, mb.owner)
	mb.sends = append(mb.sends, p)
}

// post registers a receive, matching the earliest already-delivered
// packet if any.
func (mb *mailbox) post(r *recvPost) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, p := range mb.sends {
		if envelopeMatch(r.src, r.tag, p) {
			mb.sends = append(mb.sends[:i], mb.sends[i+1:]...)
			r.pkt = p
			mb.wake(mb.owner, r.done, mb.owner)
			close(r.done)
			if p.rendezvous != nil {
				mb.wake(mb.owner, p.rendezvous, p.src)
				close(p.rendezvous)
			}
			return
		}
	}
	mb.recvs = append(mb.recvs, r)
}

// unmatchedSends reports leftover packets (diagnostics).
func (mb *mailbox) unmatchedSends() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.sends)
}

// --- blocking point-to-point --------------------------------------------

// Send performs a blocking standard-mode send (buffered semantics: the
// message is captured at call time and the call returns once the buffer
// is reusable, which is immediately).
func (c *Comm) Send(buf memspace.Addr, count int, dt Datatype, dest, tag int) error {
	if count < 0 {
		return ErrCount
	}
	if err := c.checkPeer(dest, false); err != nil {
		return err
	}
	if err := c.enter(); err != nil {
		return err
	}
	c.hooks.PreSend(buf, count, dt, dest, tag)
	data, err := c.readBuf(buf, count, dt)
	if err != nil {
		return err
	}
	c.world.boxes[dest].deliver(&packet{src: c.rank, tag: tag, dt: dt, data: data})
	c.stats.Sends++
	c.stats.BytesSent += int64(len(data))
	c.countBufferKind(buf)
	c.hooks.PostSend(buf, count, dt, dest, tag)
	return nil
}

// Recv performs a blocking receive. src may be AnySource and tag AnyTag.
func (c *Comm) Recv(buf memspace.Addr, count int, dt Datatype, src, tag int) (Status, error) {
	if count < 0 {
		return Status{}, ErrCount
	}
	if err := c.checkPeer(src, true); err != nil {
		return Status{}, err
	}
	if err := c.enter(); err != nil {
		return Status{}, err
	}
	c.hooks.PreRecv(buf, count, dt, src, tag)
	if c.world.ctl != nil && (src == AnySource || tag == AnyTag) {
		// Which candidate a wildcard matches is a schedule choice.
		return c.recvControlled(buf, count, dt, src, tag)
	}
	r := &recvPost{src: src, tag: tag, done: make(chan struct{})}
	c.world.boxes[c.rank].post(r)
	if err := c.waitAbortable(r.done, c.recvImpossible(src)); err != nil {
		return Status{}, err
	}
	st, err := c.completeRecv(buf, count, dt, r.pkt)
	if err != nil {
		return st, err
	}
	c.stats.Recvs++
	c.countBufferKind(buf)
	c.hooks.PostRecv(buf, count, dt, st)
	return st, nil
}

// completeRecv copies a matched packet into the posted buffer.
func (c *Comm) completeRecv(buf memspace.Addr, count int, dt Datatype, p *packet) (Status, error) {
	posted := int64(count) * dt.Size
	if f := c.inj.Fire(faults.MPITruncateRecv); f != nil {
		return Status{}, fmt.Errorf("%w: posted %d bytes (%w)", ErrTruncate, posted, f)
	}
	if int64(len(p.data)) > posted {
		return Status{}, fmt.Errorf("%w: got %d bytes, posted %d", ErrTruncate, len(p.data), posted)
	}
	if err := c.writeBuf(buf, p.data); err != nil {
		return Status{}, err
	}
	c.stats.BytesRecv += int64(len(p.data))
	n := 0
	if dt.Size > 0 {
		n = int(int64(len(p.data)) / dt.Size)
	}
	return Status{Source: p.src, Tag: p.tag, Count: n}, nil
}

// Sendrecv performs the combined blocking send/receive (deadlock-free
// halo exchange primitive): the receive is posted first, the send
// executes, then the receive completes.
func (c *Comm) Sendrecv(
	sendBuf memspace.Addr, sendCount int, sendType Datatype, dest, sendTag int,
	recvBuf memspace.Addr, recvCount int, recvType Datatype, src, recvTag int,
) (Status, error) {
	if sendCount < 0 || recvCount < 0 {
		return Status{}, ErrCount
	}
	if err := c.checkPeer(dest, false); err != nil {
		return Status{}, err
	}
	if err := c.checkPeer(src, true); err != nil {
		return Status{}, err
	}
	if err := c.enter(); err != nil {
		return Status{}, err
	}
	// Interception: a Sendrecv is a send and a receive.
	c.hooks.PreSend(sendBuf, sendCount, sendType, dest, sendTag)
	c.hooks.PreRecv(recvBuf, recvCount, recvType, src, recvTag)

	ctlWild := c.world.ctl != nil && (src == AnySource || recvTag == AnyTag)
	var r *recvPost
	if !ctlWild {
		r = &recvPost{src: src, tag: recvTag, done: make(chan struct{})}
		c.world.boxes[c.rank].post(r)
	}

	data, err := c.readBuf(sendBuf, sendCount, sendType)
	if err != nil {
		return Status{}, err
	}
	c.world.boxes[dest].deliver(&packet{src: c.rank, tag: sendTag, dt: sendType, data: data})
	c.stats.Sends++
	c.stats.BytesSent += int64(len(data))
	c.countBufferKind(sendBuf)
	c.hooks.PostSend(sendBuf, sendCount, sendType, dest, sendTag)

	if ctlWild {
		// The wildcard receive half settles as a Match decision (the send
		// above already went out, so peers can make progress).
		return c.recvControlled(recvBuf, recvCount, recvType, src, recvTag)
	}
	if err := c.waitAbortable(r.done, c.recvImpossible(src)); err != nil {
		return Status{}, err
	}
	st, err := c.completeRecv(recvBuf, recvCount, recvType, r.pkt)
	if err != nil {
		return st, err
	}
	c.stats.Recvs++
	c.countBufferKind(recvBuf)
	c.hooks.PostRecv(recvBuf, recvCount, recvType, st)
	return st, nil
}

// UnmatchedSends reports packets delivered to this rank that no receive
// ever matched (job-teardown diagnostics).
func (c *Comm) UnmatchedSends() int {
	return c.world.boxes[c.rank].unmatchedSends()
}
