package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cusango/internal/memspace"
)

func TestSsendRendezvous(t *testing.T) {
	var recvPosted atomic.Bool
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindHostPageable, 42)
			if err := c.Ssend(buf, 1, Float64, 1, 0); err != nil {
				return err
			}
			// Synchronous mode: the receive must have been posted by the
			// time Ssend returned.
			if !recvPosted.Load() {
				t.Error("Ssend returned before the matching receive was posted")
			}
			return nil
		}
		time.Sleep(20 * time.Millisecond) // let the sender block
		buf := mem.Alloc(8, memspace.KindHostPageable)
		recvPosted.Store(true)
		_, err := c.Recv(buf, 1, Float64, 0, 0)
		if err == nil && mem.Float64(buf) != 42 {
			t.Errorf("payload = %v", mem.Float64(buf))
		}
		return err
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSsendMatchesAlreadyPostedRecv(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			// Give rank 1 time to post the Irecv first.
			time.Sleep(10 * time.Millisecond)
			buf := allocF64(mem, memspace.KindHostPageable, 7)
			return c.Ssend(buf, 1, Float64, 1, 0)
		}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		req, err := c.Irecv(buf, 1, Float64, 0, 0)
		if err != nil {
			return err
		}
		_, err = c.Wait(req)
		return err
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWaitany(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			// Only the tag-2 message is sent; Waitany must pick it.
			buf := allocF64(mem, memspace.KindHostPageable, 5)
			return c.Send(buf, 1, Float64, 1, 2)
		}
		a := mem.Alloc(8, memspace.KindHostPageable)
		b := mem.Alloc(8, memspace.KindHostPageable)
		r1, err := c.Irecv(a, 1, Float64, 0, 1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(b, 1, Float64, 0, 2)
		if err != nil {
			return err
		}
		idx, st, err := c.Waitany([]*Request{r1, r2})
		if err != nil {
			return err
		}
		if idx != 1 || st.Tag != 2 || mem.Float64(b) != 5 {
			t.Errorf("waitany: idx=%d st=%+v val=%v", idx, st, mem.Float64(b))
		}
		// Unblock the leftover request for teardown: sender side is done,
		// so cancel by completing it from a self-send... simplest: another
		// message from rank 1 cannot arrive; instead verify it is still
		// pending and leave it (leak checks are MUST's job).
		if r1.Done() {
			t.Error("unchosen request must stay pending")
		}
		_ = c.PendingRequests()
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyErrors(t *testing.T) {
	errs := RunRanks(1, func(c *Comm, mem *memspace.Memory) error {
		if _, _, err := c.Waitany(nil); !errors.Is(err, ErrRequest) {
			t.Error("empty Waitany must fail")
		}
		if _, _, err := c.Waitany([]*Request{nil}); !errors.Is(err, ErrRequest) {
			t.Error("nil request must fail")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyPrefersSends(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindHostPageable, 1)
			recv := mem.Alloc(8, memspace.KindHostPageable)
			rs, err := c.Isend(buf, 1, Float64, 1, 0)
			if err != nil {
				return err
			}
			rr, err := c.Irecv(recv, 1, Float64, 1, 5)
			if err != nil {
				return err
			}
			idx, _, err := c.Waitany([]*Request{rr, rs})
			if err != nil {
				return err
			}
			if idx != 1 {
				t.Errorf("buffered send should complete first, got idx %d", idx)
			}
			if _, err := c.Wait(rr); err != nil {
				return err
			}
			return nil
		}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		if _, err := c.Recv(buf, 1, Float64, 0, 0); err != nil {
			return err
		}
		return c.Send(buf, 1, Float64, 0, 5)
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestProbeAndIprobe(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			// Nothing arrived yet: Iprobe says no.
			found, _, err := c.Iprobe(1, 3)
			if err != nil {
				return err
			}
			if found {
				t.Error("Iprobe found a message before any send")
			}
			// Blocking probe: returns once the message is available.
			st, err := c.Probe(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Source != 1 || st.Tag != 3 || st.Count != 2 {
				t.Errorf("probe status = %+v", st)
			}
			// The message is still there: Iprobe agrees, and Recv gets it.
			found, st2, err := c.Iprobe(1, 3)
			if err != nil || !found || st2.Count != 2 {
				t.Errorf("iprobe after probe: %v %+v %v", found, st2, err)
			}
			buf := mem.Alloc(16, memspace.KindHostPageable)
			_, err = c.Recv(buf, 2, Float64, st.Source, st.Tag)
			return err
		}
		time.Sleep(10 * time.Millisecond) // let rank 0 park in Probe
		buf := allocF64(mem, memspace.KindHostPageable, 1, 2)
		return c.Send(buf, 2, Float64, 0, 3)
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestProbeBadRank(t *testing.T) {
	errs := RunRanks(1, func(c *Comm, mem *memspace.Memory) error {
		if _, err := c.Probe(7, 0); !errors.Is(err, ErrRank) {
			t.Error("probe of bad rank must fail")
		}
		if _, _, err := c.Iprobe(7, 0); !errors.Is(err, ErrRank) {
			t.Error("iprobe of bad rank must fail")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
