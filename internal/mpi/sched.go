package mpi

import (
	"fmt"
	"sort"
	"strconv"

	"cusango/internal/memspace"
	"cusango/internal/sched"
)

// Controlled scheduling (internal/sched integration).
//
// Under a controller, every nondeterministic completion choice of the
// library becomes an explicit decision point: wildcard receives and
// probes settle as Match points over the candidate messages, Test and
// Iprobe settle as Poll points (complete versus defer, parking while no
// completion is possible — behaviourally identical for the poll loops
// the suite uses, since a fruitless poll iteration has no observable
// effect), and Waitany settles as a Pick point over the completed
// requests. Deterministic completions (specific-envelope matching,
// collectives, rendezvous) stay on their channel paths, bracketed by
// Block/Wake so the controller tracks quiescence.

// SetController places the world under a schedule controller. Call
// before any rank communicates; the controller must be built for
// exactly this world's size.
func (w *World) SetController(ctl *sched.Controller) {
	w.ctl = ctl
	for i, mb := range w.boxes {
		mb.owner = i
		mb.ctl = ctl
	}
	ctl.SetOnStuck(func() { w.abortStuck(ctl) })
}

// abortStuck tears the job down when the controller halts the current
// schedule: either a proven deadlock (ranks unblock with an abort error
// wrapping sched.ErrStuck, so verdicts can tell a genuine deadlock from
// a fault-induced abort) or an exhausted step budget (wrapping
// sched.ErrBudget — the supervision verdict).
func (w *World) abortStuck(ctl *sched.Controller) {
	cause := error(sched.ErrStuck)
	if ctl.BudgetHit() {
		cause = sched.ErrBudget
	}
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	w.cancelLocked(cause)
}

// schedErr maps a controller error to the library's abort errors.
func (c *Comm) schedErr(err error) error {
	if err == sched.ErrStuck {
		return fmt.Errorf("%w: %w", ErrAborted, sched.ErrStuck)
	}
	if err == sched.ErrBudget {
		return fmt.Errorf("%w: %w", ErrAborted, sched.ErrBudget)
	}
	if aerr := c.world.Aborted(); aerr != nil {
		return aerr
	}
	return ErrAborted
}

// candidatePackets returns the wildcard-matching candidates of a
// mailbox: the earliest matching packet of each source (MPI
// non-overtaking fixes the per-source choice; the schedule only picks
// the source), in ascending source order so option indices are stable
// across schedules. Caller holds mb.mu.
func candidatePackets(sends []*packet, src, tag int) []*packet {
	seen := make(map[int]bool)
	var out []*packet
	for _, p := range sends {
		if !envelopeMatch(src, tag, p) || seen[p.src] {
			continue
		}
		seen[p.src] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].src < out[j].src })
	return out
}

// take consumes a previously chosen candidate packet, completing its
// rendezvous if the sender is parked on one.
func (mb *mailbox) take(p *packet) {
	mb.mu.Lock()
	for i, q := range mb.sends {
		if q == p {
			mb.sends = append(mb.sends[:i], mb.sends[i+1:]...)
			break
		}
	}
	if p.rendezvous != nil {
		mb.wake(mb.owner, p.rendezvous, p.src)
		close(p.rendezvous)
	}
	mb.mu.Unlock()
}

func srcTagLabel(p *packet) string {
	return "src=" + strconv.Itoa(p.src) + ",tag=" + strconv.Itoa(p.tag)
}

// matchControlled settles a wildcard receive as a Match decision and
// consumes the chosen packet. It parks until at least one candidate is
// available.
func (c *Comm) matchControlled(op string, src, tag int) (*packet, error) {
	mb := c.world.boxes[c.rank]
	var pkts []*packet
	idx, err := c.world.ctl.Settle(c.rank, sched.Match, op, func() []sched.Option {
		mb.mu.Lock()
		pkts = candidatePackets(mb.sends, src, tag)
		mb.mu.Unlock()
		opts := make([]sched.Option, len(pkts))
		for i, p := range pkts {
			opts[i] = sched.Opt(srcTagLabel(p), p.src)
		}
		return opts
	})
	if err != nil {
		return nil, c.schedErr(err)
	}
	p := pkts[idx]
	mb.take(p)
	return p, nil
}

// recvControlled is the controlled path of a blocking wildcard receive.
func (c *Comm) recvControlled(buf memspace.Addr, count int, dt Datatype, src, tag int) (Status, error) {
	p, err := c.matchControlled("recv", src, tag)
	if err != nil {
		return Status{}, err
	}
	st, err := c.completeRecv(buf, count, dt, p)
	if err != nil {
		return st, err
	}
	c.stats.Recvs++
	c.countBufferKind(buf)
	c.hooks.PostRecv(buf, count, dt, st)
	return st, nil
}

// waitHeld completes a held wildcard Irecv inside Wait: a Match point
// over the candidates, then the normal completion path (the chosen
// packet is installed as the request's post so Wait's bookkeeping is
// identical to the uncontrolled path).
func (c *Comm) waitHeld(req *Request) error {
	p, err := c.matchControlled("wait", req.peer, req.tag)
	if err != nil {
		return err
	}
	c.installHeld(req, p)
	return nil
}

// installHeld turns a held request into a completed posted one.
func (c *Comm) installHeld(req *Request, p *packet) {
	done := make(chan struct{})
	close(done)
	req.post = &recvPost{src: req.peer, tag: req.tag, done: done, pkt: p}
	req.held = false
}

// testControlled settles Test as a Poll point: parked while the request
// cannot complete (a fruitless poll iteration is unobservable), then a
// choice between completing and deferring once it can. The controller's
// stutter rule keeps repeated defers from looping forever.
func (c *Comm) testControlled(req *Request) (bool, Status, error) {
	if req.kind == ReqSend {
		st, err := c.Wait(req)
		if err != nil {
			return false, Status{}, err
		}
		return true, st, nil
	}
	mb := c.world.boxes[c.rank]
	var pkts []*packet
	idx, err := c.world.ctl.Settle(c.rank, sched.Poll, "test", func() []sched.Option {
		if req.held {
			mb.mu.Lock()
			pkts = candidatePackets(mb.sends, req.peer, req.tag)
			mb.mu.Unlock()
			if len(pkts) == 0 {
				return nil
			}
			opts := make([]sched.Option, 0, len(pkts)+1)
			for _, p := range pkts {
				opts = append(opts, sched.Opt(srcTagLabel(p), p.src))
			}
			return append(opts, sched.DeferOpt())
		}
		pkts = nil
		select {
		case <-req.post.done:
			return []sched.Option{sched.Opt("complete", 0), sched.DeferOpt()}
		default:
			return nil
		}
	})
	if err != nil {
		return false, Status{}, c.schedErr(err)
	}
	if req.held {
		if idx >= len(pkts) {
			return false, Status{}, nil // deferred
		}
		p := pkts[idx]
		mb.take(p)
		c.installHeld(req, p)
	} else if idx == 1 {
		return false, Status{}, nil // deferred
	}
	st, err := c.Wait(req)
	if err != nil {
		return false, Status{}, err
	}
	return true, st, nil
}

// iprobeControlled settles Iprobe as a non-consuming Poll point.
func (c *Comm) iprobeControlled(src, tag int) (bool, Status, error) {
	mb := c.world.boxes[c.rank]
	var sts []Status
	idx, err := c.world.ctl.Settle(c.rank, sched.Poll, "iprobe", func() []sched.Option {
		mb.mu.Lock()
		pkts := candidatePackets(mb.sends, src, tag)
		mb.mu.Unlock()
		if len(pkts) == 0 {
			sts = nil
			return nil
		}
		sts = sts[:0]
		opts := make([]sched.Option, 0, len(pkts)+1)
		for _, p := range pkts {
			opts = append(opts, sched.Opt(srcTagLabel(p), p.src))
			sts = append(sts, statusOf(p))
		}
		return append(opts, sched.DeferOpt())
	})
	if err != nil {
		return false, Status{}, c.schedErr(err)
	}
	if idx >= len(sts) {
		return false, Status{}, nil // deferred: report "no message yet"
	}
	return true, sts[idx], nil
}

// probeControlled settles a wildcard Probe as a non-consuming Match
// point, parking until a candidate arrives.
func (c *Comm) probeControlled(src, tag int) (Status, error) {
	mb := c.world.boxes[c.rank]
	var sts []Status
	idx, err := c.world.ctl.Settle(c.rank, sched.Match, "probe", func() []sched.Option {
		mb.mu.Lock()
		pkts := candidatePackets(mb.sends, src, tag)
		mb.mu.Unlock()
		sts = sts[:0]
		opts := make([]sched.Option, len(pkts))
		for i, p := range pkts {
			opts[i] = sched.Opt(srcTagLabel(p), p.src)
			sts = append(sts, statusOf(p))
		}
		return opts
	})
	if err != nil {
		return Status{}, c.schedErr(err)
	}
	return sts[idx], nil
}

// waitanyControlled settles Waitany as a Pick point over the requests
// that could complete, parking until one can. A held wildcard request
// picked here completes with its lowest-source candidate (a further
// Match split adds nothing for the suite's specific-envelope usage).
func (c *Comm) waitanyControlled(reqs []*Request) (int, Status, error) {
	mb := c.world.boxes[c.rank]
	var picks []int
	idx, err := c.world.ctl.Settle(c.rank, sched.Pick, "waitany", func() []sched.Option {
		picks = picks[:0]
		var opts []sched.Option
		for i, r := range reqs {
			if r.held {
				mb.mu.Lock()
				n := len(candidatePackets(mb.sends, r.peer, r.tag))
				mb.mu.Unlock()
				if n == 0 {
					continue
				}
			} else {
				select {
				case <-r.post.done:
				default:
					continue
				}
			}
			opts = append(opts, sched.Opt("req="+strconv.Itoa(i), i))
			picks = append(picks, i)
		}
		return opts
	})
	if err != nil {
		return -1, Status{}, c.schedErr(err)
	}
	i := picks[idx]
	st, err := c.Wait(reqs[i])
	return i, st, err
}
