// Package mpi is an in-process, CUDA-aware MPI simulation: ranks are
// goroutines over their own simulated address spaces, exchanging messages
// through a matching engine with MPI point-to-point semantics (source/tag
// matching with wildcards, non-overtaking order), non-blocking requests,
// and the collectives the mini-apps need.
//
// CUDA-awareness follows the UVA design the paper describes (§III-D): a
// buffer argument is just an address, and the library internally
// distinguishes host from device memory by the pointer's memory kind —
// device pointers are communicated directly, no staging through host
// buffers is required of the user.
//
// The Hooks interface is the PMPI-style interception layer MUST installs
// (paper §II-B): every call reports its buffer, datatype, and request
// arguments before/after executing.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"cusango/internal/faults"
	"cusango/internal/memspace"
	"cusango/internal/sched"
	"cusango/internal/typeart"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Sentinel errors.
var (
	// ErrRank reports an out-of-range rank argument.
	ErrRank = errors.New("mpi: invalid rank")
	// ErrCount reports a negative element count.
	ErrCount = errors.New("mpi: invalid count")
	// ErrTruncate reports a received message longer than the posted
	// buffer (MPI_ERR_TRUNCATE).
	ErrTruncate = errors.New("mpi: message truncated")
	// ErrRequest reports misuse of a request (double wait, nil request).
	ErrRequest = errors.New("mpi: invalid request")
	// ErrCollectiveMismatch reports ranks disagreeing on the collective
	// operation being performed.
	ErrCollectiveMismatch = errors.New("mpi: collective call mismatch across ranks")
	// ErrBuffer reports a buffer range outside any live allocation.
	ErrBuffer = errors.New("mpi: invalid buffer")
	// ErrAborted reports that the job was aborted (a rank died or called
	// the MPI_Abort analog); pending and future calls on every rank fail
	// with it instead of deadlocking.
	ErrAborted = errors.New("mpi: job aborted")
	// ErrStepBudget reports that a rank exceeded the job's logical step
	// budget (SetOpBudget): it started more full MPI operations than the
	// supervisor allows. Each rank's operation sequence is its program
	// order, so the budget verdict is deterministic — no wall clock.
	ErrStepBudget = errors.New("mpi: step budget exceeded")
)

// Datatype describes an MPI basic datatype.
type Datatype struct {
	Name string
	Size int64
	// TypeartID is the corresponding TypeART type for MUST's datatype
	// compatibility check.
	TypeartID typeart.TypeID
}

// Predefined datatypes.
var (
	Byte    = Datatype{Name: "MPI_BYTE", Size: 1, TypeartID: typeart.TypeUint8}
	Int32   = Datatype{Name: "MPI_INT", Size: 4, TypeartID: typeart.TypeInt32}
	Int64   = Datatype{Name: "MPI_LONG_LONG", Size: 8, TypeartID: typeart.TypeInt64}
	Float32 = Datatype{Name: "MPI_FLOAT", Size: 4, TypeartID: typeart.TypeFloat32}
	Float64 = Datatype{Name: "MPI_DOUBLE", Size: 8, TypeartID: typeart.TypeFloat64}
)

// Op is a reduction operator.
type Op uint8

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) String() string {
	return [...]string{"MPI_SUM", "MPI_MAX", "MPI_MIN", "MPI_PROD"}[o]
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	// Count is the received element count.
	Count int
}

// Stats counts library-level events per rank.
type Stats struct {
	Sends, Recvs      int64
	Isends, Irecvs    int64
	Waits             int64
	Collectives       int64
	BytesSent         int64
	BytesRecv         int64
	DeviceBufferCalls int64 // calls whose buffer was device or managed
	HostBufferCalls   int64
}

// Hooks is the interception interface MUST implements. All callbacks run
// on the calling rank's goroutine.
type Hooks interface {
	PreSend(buf memspace.Addr, count int, dt Datatype, dest, tag int)
	PostSend(buf memspace.Addr, count int, dt Datatype, dest, tag int)
	PreRecv(buf memspace.Addr, count int, dt Datatype, src, tag int)
	PostRecv(buf memspace.Addr, count int, dt Datatype, st Status)
	PreIsend(buf memspace.Addr, count int, dt Datatype, dest, tag int, req *Request)
	PreIrecv(buf memspace.Addr, count int, dt Datatype, src, tag int, req *Request)
	PreWait(req *Request)
	PostWait(req *Request, st Status)
	// PreCollective reports a collective with its local read buffer
	// (0/empty when none) and write buffer (likewise); PostCollective
	// fires after local completion.
	PreCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64)
	PostCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64)
	PreFinalize()
}

// BaseHooks implements Hooks with no-ops; embed it for partial
// implementations.
type BaseHooks struct{}

// PreSend implements Hooks.
func (BaseHooks) PreSend(memspace.Addr, int, Datatype, int, int) {}

// PostSend implements Hooks.
func (BaseHooks) PostSend(memspace.Addr, int, Datatype, int, int) {}

// PreRecv implements Hooks.
func (BaseHooks) PreRecv(memspace.Addr, int, Datatype, int, int) {}

// PostRecv implements Hooks.
func (BaseHooks) PostRecv(memspace.Addr, int, Datatype, Status) {}

// PreIsend implements Hooks.
func (BaseHooks) PreIsend(memspace.Addr, int, Datatype, int, int, *Request) {}

// PreIrecv implements Hooks.
func (BaseHooks) PreIrecv(memspace.Addr, int, Datatype, int, int, *Request) {}

// PreWait implements Hooks.
func (BaseHooks) PreWait(*Request) {}

// PostWait implements Hooks.
func (BaseHooks) PostWait(*Request, Status) {}

// PreCollective implements Hooks.
func (BaseHooks) PreCollective(string, memspace.Addr, int64, memspace.Addr, int64) {}

// PostCollective implements Hooks.
func (BaseHooks) PostCollective(string, memspace.Addr, int64, memspace.Addr, int64) {}

// PreFinalize implements Hooks.
func (BaseHooks) PreFinalize() {}

var _ Hooks = BaseHooks{}

// packet is one in-flight message.
type packet struct {
	src, tag int
	dt       Datatype
	data     []byte
	// rendezvous, when non-nil, is closed once a receive matches the
	// packet (synchronous-mode send).
	rendezvous chan struct{}
}

// World is the communication universe of one simulated job.
type World struct {
	size  int
	boxes []*mailbox

	// ctl, when non-nil, virtualizes every completion choice as a
	// decision point (see SetController and internal/sched).
	ctl *sched.Controller

	collMu sync.Mutex
	colls  map[int64]*collOp

	// abort plane: aborted closes once when any rank aborts the job;
	// abortErr is written before the close and immutable afterwards.
	// The per-rank gone channels record *which* ranks can never act
	// again — they died (first death also aborts the job, but later
	// deaths are still recorded) or finalized cleanly. An operation
	// blocked after an abort fails only once the ranks whose
	// participation it still needs are provably gone, so whether it
	// errors or completes is a function of the fault plan, never of how
	// fast an unrelated rank's death became visible. goneGen is a
	// broadcast edge: it is closed and replaced on every recorded
	// departure (and on a stuck-schedule teardown), waking blocked
	// operations to re-evaluate their impossibility predicate.
	abortMu  sync.Mutex
	aborted  chan struct{}
	abortErr error
	goneCh   []chan struct{}
	goneGen  chan struct{}
	tearDown bool // aborted without a rank death (deadlocked schedule)

	// opBudget > 0 caps the number of full MPI operations each rank may
	// start (the uncontrolled-run analog of the controller's step
	// budget). Set before ranks communicate; immutable afterwards.
	opBudget int64
}

// NewWorld creates a world for size ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, colls: make(map[int64]*collOp), aborted: make(chan struct{}),
		goneGen: make(chan struct{})}
	for i := 0; i < size; i++ {
		w.boxes = append(w.boxes, newMailbox())
		w.goneCh = append(w.goneCh, make(chan struct{}))
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Abort marks the job aborted on behalf of rank (the MPI_Abort analog,
// also used when a rank's application code dies). Every rank blocked in
// a matching or collective call that can no longer complete unblocks
// with ErrAborted, and future blocking calls and polls fail the same
// way once their operation is provably dead. Operations that can still
// complete — buffered sends, receives matched by messages the dead rank
// delivered before dying — are allowed to finish first: completion
// always wins over a concurrent abort, which is what makes a faulted
// run's behaviour a pure function of the fault plan rather than of
// goroutine scheduling (the campaign scheduler's byte-identical-report
// guarantee relies on this). The first abort wins; later ones are
// no-ops.
func (w *World) Abort(rank int, cause error) {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	// Record this rank's departure even if the job is already aborted:
	// impossibility predicates need to know exactly which ranks can no
	// longer act. Everything the rank delivered or contributed
	// happens-before this close (its MPI activity and its Abort run on
	// one goroutine).
	w.markGoneLocked(rank)
	select {
	case <-w.aborted:
		return
	default:
	}
	if cause != nil {
		w.abortErr = fmt.Errorf("%w by rank %d: %w", ErrAborted, rank, cause)
	} else {
		w.abortErr = fmt.Errorf("%w by rank %d", ErrAborted, rank)
	}
	if w.ctl != nil {
		// Release settlers and mark channel-parked ranks runnable before
		// the physical unblock below, so the controller never grants into
		// a tearing-down world.
		w.ctl.AbortAll()
	}
	close(w.aborted)
}

// SetOpBudget caps the number of full MPI operations each rank may
// start (0 = unlimited). A rank that exceeds the cap fails its next
// operation with ErrStepBudget and aborts the job; because each rank's
// operation sequence is its own program order, which operation trips is
// a pure function of the program, byte-identical across workers and
// repeats. Call before any rank communicates.
func (w *World) SetOpBudget(n int64) { w.opBudget = n }

// Cancel tears the job down from outside (supervision: a watchdog
// deadline or context cancellation), without attributing the abort to
// any rank. Every blocked or polling operation fails with an abort
// error wrapping cause; completion in flight still wins. The first
// abort wins; a Cancel after a rank death is a no-op.
func (w *World) Cancel(cause error) {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	w.cancelLocked(cause)
}

// cancelLocked is the deathless-teardown core shared by Cancel and the
// stuck/budget hooks. Caller holds abortMu.
func (w *World) cancelLocked(cause error) {
	select {
	case <-w.aborted:
		return
	default:
	}
	if cause != nil {
		w.abortErr = fmt.Errorf("%w: %w", ErrAborted, cause)
	} else {
		w.abortErr = fmt.Errorf("%w: cancelled", ErrAborted)
	}
	// No rank died: flag the teardown and wake every blocked operation
	// through the death edge so impossibility predicates are bypassed.
	w.tearDown = true
	close(w.goneGen)
	w.goneGen = make(chan struct{})
	if w.ctl != nil {
		w.ctl.AbortAll()
	}
	close(w.aborted)
}

// Aborted returns the job's abort error, or nil while it is healthy.
func (w *World) Aborted() error {
	select {
	case <-w.aborted:
		return w.abortErr
	default:
		return nil
	}
}

// abortError returns the job abort error under the lock. Callers hold a
// proof their operation can never complete — usually a recorded death
// or the teardown flag, which guarantee the error is set. The fallback
// covers the one deathless corner (a single-rank wildcard receive with
// nothing in flight is impossible without anyone dying).
func (w *World) abortError() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	if w.abortErr == nil {
		return fmt.Errorf("%w: operation can never complete", ErrAborted)
	}
	return w.abortErr
}

// markGoneLocked records that rank can never act again (death or clean
// finalize) and wakes blocked operations to re-evaluate. Caller holds
// abortMu.
func (w *World) markGoneLocked(rank int) {
	if rank < 0 || rank >= w.size {
		return
	}
	select {
	case <-w.goneCh[rank]:
		return
	default:
	}
	close(w.goneCh[rank])
	close(w.goneGen)
	w.goneGen = make(chan struct{})
}

// goneWatch returns the current departure-broadcast edge: it is closed
// on the next recorded departure (or teardown). Departures recorded
// before the snapshot are already visible through rankGone.
func (w *World) goneWatch() <-chan struct{} {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.goneGen
}

// rankGone reports whether rank can never act again: it died (aborted
// or errored out) or finalized cleanly. Everything the rank delivered,
// posted, or contributed happens-before this flag.
func (w *World) rankGone(rank int) bool {
	select {
	case <-w.goneCh[rank]:
		return true
	default:
		return false
	}
}

// othersGone reports whether every rank except self is gone — the
// impossibility condition for wildcard matching (self cannot deliver to
// itself while it is blocked waiting).
func (w *World) othersGone(self int) bool {
	for r := 0; r < w.size; r++ {
		if r != self && !w.rankGone(r) {
			return false
		}
	}
	return true
}

// tornDown reports whether the job was aborted without a rank death
// (a deadlocked schedule being dismantled): every blocked operation
// must fail regardless of its impossibility predicate.
func (w *World) tornDown() bool {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.tearDown
}

// AttachRank binds rank's address space and interception hooks, returning
// its communicator (MPI_COMM_WORLD view). hooks may be nil.
func (w *World) AttachRank(rank int, mem *memspace.Memory, hooks Hooks) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("%w: %d of %d", ErrRank, rank, w.size)
	}
	if hooks == nil {
		hooks = BaseHooks{}
	}
	return &Comm{world: w, rank: rank, mem: mem, hooks: hooks}, nil
}

// Comm is one rank's view of the world (MPI_COMM_WORLD).
type Comm struct {
	world *World
	rank  int
	mem   *memspace.Memory
	hooks Hooks
	inj   *faults.Injector

	collSeq   int64
	stats     Stats
	finalized bool
	// ops counts full MPI operations started, against world.opBudget.
	ops int64
	// live tracks incomplete requests for MUST's leak check.
	live map[*Request]struct{}
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of the per-rank counters.
func (c *Comm) Stats() Stats { return c.stats }

// SetHooks replaces the interception hooks (toolchain link step).
func (c *Comm) SetHooks(h Hooks) {
	if h == nil {
		h = BaseHooks{}
	}
	c.hooks = h
}

// SetInjector installs a deterministic fault injector for this rank's
// MPI calls (nil uninstalls). See internal/faults.
func (c *Comm) SetInjector(in *faults.Injector) { c.inj = in }

// enter runs the per-call bookkeeping shared by every full MPI
// operation: the rank-abort fault site can fire, killing the job as if
// this rank died at this call. There is deliberately no global
// "aborted?" fast-fail here — whether an unrelated rank's death has
// become visible at this instant is a wall-clock race, and failing on
// it would make a rank's progress (and therefore its fault-site
// occurrence counters and race verdicts) scheduling-dependent. A job
// abort is instead observed at completion points (waitAbortable, Test,
// Iprobe), where "this operation can never complete" is a deterministic
// property of the fault plan: the specific ranks whose participation
// the operation still needs are dead (see waitAbortable).
func (c *Comm) enter() error {
	if f := c.inj.Fire(faults.MPIRankAbort); f != nil {
		c.world.Abort(c.rank, f)
		return fmt.Errorf("rank %d aborted: %w", c.rank, f)
	}
	if f := c.inj.Fire(faults.SchedStall); f != nil {
		// The rank wedges at this call, modelling a hung process: it
		// unblocks only when the job is torn down from outside (watchdog
		// Cancel, a step budget, or another rank's abort). Under a
		// controller the park is registered so quiescence detection — and
		// with it the logical step budget — still works.
		if ctl := c.world.ctl; ctl != nil {
			ctl.Block(c.rank, c.world.aborted)
		}
		<-c.world.aborted
		return fmt.Errorf("rank %d stalled: %w (%w)", c.rank, f, c.world.abortError())
	}
	if b := c.world.opBudget; b > 0 {
		c.ops++
		if c.ops > b {
			err := fmt.Errorf("%w: rank %d started more than %d MPI operations",
				ErrStepBudget, c.rank, b)
			c.world.Abort(c.rank, err)
			return err
		}
	}
	return nil
}

// waitAbortable blocks on ch, unblocking with the abort error only once
// impossible reports that ch can provably never close. Completion
// always wins over an abort, and a death that does NOT make the
// operation impossible (a third rank died but the rank this operation
// needs is still alive) keeps the wait alive — in an N-rank job,
// failing on an unrelated rank's death would make the outcome a
// wall-clock race between that death's visibility and the needed rank's
// progress. Soundness of the predicate rests on the per-rank ordering
// edge: everything a dead rank delivered, posted, or contributed
// happens-before its death flag (its MPI activity and its World.Abort
// run on one goroutine), so when the needed rank's death is visible and
// ch is still not ready, the completion is provably never coming. The
// impossible callback must be a monotone function of the death flags
// (and any state the dying ranks mutated before dying) so re-evaluation
// on each death edge converges.
func (c *Comm) waitAbortable(ch chan struct{}, impossible func() bool) error {
	select {
	case <-ch:
		return nil
	default:
	}
	if ctl := c.world.ctl; ctl != nil {
		// Park under the controller; the signalling side re-marks this
		// rank runnable (Wake) before closing ch, so the controller never
		// sees a false quiescence. If ch was signalled already, Block is a
		// no-op and the select falls straight through.
		ctl.Block(c.rank, ch)
	}
	for {
		gen := c.world.goneWatch()
		select {
		case <-ch:
			return nil
		default:
		}
		if c.world.tornDown() || impossible() {
			select {
			case <-ch:
				return nil
			default:
			}
			return c.world.abortError()
		}
		select {
		case <-ch:
			return nil
		case <-gen:
			// A death (or teardown) was recorded; loop to re-evaluate.
		}
	}
}

// recvImpossible is the impossibility predicate of a posted receive:
// the source can never deliver a match. For a specific source that is
// its departure (death or finalize); a wildcard receive needs every
// other rank gone.
func (c *Comm) recvImpossible(src int) func() bool {
	return func() bool {
		if src == AnySource {
			return c.world.othersGone(c.rank)
		}
		return c.world.rankGone(src)
	}
}

// PendingRequests returns the number of incomplete requests (requests
// never waited on), for finalize-time leak checks.
func (c *Comm) PendingRequests() int { return len(c.live) }

// Finalize runs finalize-time hooks. Further communication is a bug.
func (c *Comm) Finalize() {
	if c.finalized {
		return
	}
	c.hooks.PreFinalize()
	c.finalized = true
	// The rank can never act again: record its departure so peers
	// blocked on a message or collective only this rank could have
	// provided fail deterministically instead of waiting forever.
	// Everything the rank delivered happens-before this mark.
	c.world.abortMu.Lock()
	c.world.markGoneLocked(c.rank)
	c.world.abortMu.Unlock()
}

// Finalized reports whether Finalize ran.
func (c *Comm) Finalized() bool { return c.finalized }

func (c *Comm) countBufferKind(a memspace.Addr) {
	switch memspace.KindOf(a) {
	case memspace.KindDevice, memspace.KindManaged:
		c.stats.DeviceBufferCalls++
	default:
		c.stats.HostBufferCalls++
	}
}

func (c *Comm) checkPeer(rank int, wildcardOK bool) error {
	if wildcardOK && rank == AnySource {
		return nil
	}
	if rank < 0 || rank >= c.world.size {
		return fmt.Errorf("%w: peer %d of %d", ErrRank, rank, c.world.size)
	}
	return nil
}

// readBuf copies count elements out of the caller's memory.
func (c *Comm) readBuf(buf memspace.Addr, count int, dt Datatype) ([]byte, error) {
	n := int64(count) * dt.Size
	src, err := c.mem.Bytes(buf, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBuffer, err)
	}
	out := make([]byte, n)
	copy(out, src)
	return out, nil
}

// writeBuf copies data into the caller's memory.
func (c *Comm) writeBuf(buf memspace.Addr, data []byte) error {
	dst, err := c.mem.Bytes(buf, int64(len(data)))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBuffer, err)
	}
	copy(dst, data)
	return nil
}
