// Package mpi is an in-process, CUDA-aware MPI simulation: ranks are
// goroutines over their own simulated address spaces, exchanging messages
// through a matching engine with MPI point-to-point semantics (source/tag
// matching with wildcards, non-overtaking order), non-blocking requests,
// and the collectives the mini-apps need.
//
// CUDA-awareness follows the UVA design the paper describes (§III-D): a
// buffer argument is just an address, and the library internally
// distinguishes host from device memory by the pointer's memory kind —
// device pointers are communicated directly, no staging through host
// buffers is required of the user.
//
// The Hooks interface is the PMPI-style interception layer MUST installs
// (paper §II-B): every call reports its buffer, datatype, and request
// arguments before/after executing.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"cusango/internal/faults"
	"cusango/internal/memspace"
	"cusango/internal/sched"
	"cusango/internal/typeart"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Sentinel errors.
var (
	// ErrRank reports an out-of-range rank argument.
	ErrRank = errors.New("mpi: invalid rank")
	// ErrCount reports a negative element count.
	ErrCount = errors.New("mpi: invalid count")
	// ErrTruncate reports a received message longer than the posted
	// buffer (MPI_ERR_TRUNCATE).
	ErrTruncate = errors.New("mpi: message truncated")
	// ErrRequest reports misuse of a request (double wait, nil request).
	ErrRequest = errors.New("mpi: invalid request")
	// ErrCollectiveMismatch reports ranks disagreeing on the collective
	// operation being performed.
	ErrCollectiveMismatch = errors.New("mpi: collective call mismatch across ranks")
	// ErrBuffer reports a buffer range outside any live allocation.
	ErrBuffer = errors.New("mpi: invalid buffer")
	// ErrAborted reports that the job was aborted (a rank died or called
	// the MPI_Abort analog); pending and future calls on every rank fail
	// with it instead of deadlocking.
	ErrAborted = errors.New("mpi: job aborted")
)

// Datatype describes an MPI basic datatype.
type Datatype struct {
	Name string
	Size int64
	// TypeartID is the corresponding TypeART type for MUST's datatype
	// compatibility check.
	TypeartID typeart.TypeID
}

// Predefined datatypes.
var (
	Byte    = Datatype{Name: "MPI_BYTE", Size: 1, TypeartID: typeart.TypeUint8}
	Int32   = Datatype{Name: "MPI_INT", Size: 4, TypeartID: typeart.TypeInt32}
	Int64   = Datatype{Name: "MPI_LONG_LONG", Size: 8, TypeartID: typeart.TypeInt64}
	Float32 = Datatype{Name: "MPI_FLOAT", Size: 4, TypeartID: typeart.TypeFloat32}
	Float64 = Datatype{Name: "MPI_DOUBLE", Size: 8, TypeartID: typeart.TypeFloat64}
)

// Op is a reduction operator.
type Op uint8

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) String() string {
	return [...]string{"MPI_SUM", "MPI_MAX", "MPI_MIN", "MPI_PROD"}[o]
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	// Count is the received element count.
	Count int
}

// Stats counts library-level events per rank.
type Stats struct {
	Sends, Recvs      int64
	Isends, Irecvs    int64
	Waits             int64
	Collectives       int64
	BytesSent         int64
	BytesRecv         int64
	DeviceBufferCalls int64 // calls whose buffer was device or managed
	HostBufferCalls   int64
}

// Hooks is the interception interface MUST implements. All callbacks run
// on the calling rank's goroutine.
type Hooks interface {
	PreSend(buf memspace.Addr, count int, dt Datatype, dest, tag int)
	PostSend(buf memspace.Addr, count int, dt Datatype, dest, tag int)
	PreRecv(buf memspace.Addr, count int, dt Datatype, src, tag int)
	PostRecv(buf memspace.Addr, count int, dt Datatype, st Status)
	PreIsend(buf memspace.Addr, count int, dt Datatype, dest, tag int, req *Request)
	PreIrecv(buf memspace.Addr, count int, dt Datatype, src, tag int, req *Request)
	PreWait(req *Request)
	PostWait(req *Request, st Status)
	// PreCollective reports a collective with its local read buffer
	// (0/empty when none) and write buffer (likewise); PostCollective
	// fires after local completion.
	PreCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64)
	PostCollective(name string, read memspace.Addr, readBytes int64, write memspace.Addr, writeBytes int64)
	PreFinalize()
}

// BaseHooks implements Hooks with no-ops; embed it for partial
// implementations.
type BaseHooks struct{}

// PreSend implements Hooks.
func (BaseHooks) PreSend(memspace.Addr, int, Datatype, int, int) {}

// PostSend implements Hooks.
func (BaseHooks) PostSend(memspace.Addr, int, Datatype, int, int) {}

// PreRecv implements Hooks.
func (BaseHooks) PreRecv(memspace.Addr, int, Datatype, int, int) {}

// PostRecv implements Hooks.
func (BaseHooks) PostRecv(memspace.Addr, int, Datatype, Status) {}

// PreIsend implements Hooks.
func (BaseHooks) PreIsend(memspace.Addr, int, Datatype, int, int, *Request) {}

// PreIrecv implements Hooks.
func (BaseHooks) PreIrecv(memspace.Addr, int, Datatype, int, int, *Request) {}

// PreWait implements Hooks.
func (BaseHooks) PreWait(*Request) {}

// PostWait implements Hooks.
func (BaseHooks) PostWait(*Request, Status) {}

// PreCollective implements Hooks.
func (BaseHooks) PreCollective(string, memspace.Addr, int64, memspace.Addr, int64) {}

// PostCollective implements Hooks.
func (BaseHooks) PostCollective(string, memspace.Addr, int64, memspace.Addr, int64) {}

// PreFinalize implements Hooks.
func (BaseHooks) PreFinalize() {}

var _ Hooks = BaseHooks{}

// packet is one in-flight message.
type packet struct {
	src, tag int
	dt       Datatype
	data     []byte
	// rendezvous, when non-nil, is closed once a receive matches the
	// packet (synchronous-mode send).
	rendezvous chan struct{}
}

// World is the communication universe of one simulated job.
type World struct {
	size  int
	boxes []*mailbox

	// ctl, when non-nil, virtualizes every completion choice as a
	// decision point (see SetController and internal/sched).
	ctl *sched.Controller

	collMu sync.Mutex
	colls  map[int64]*collOp

	// abort plane: aborted closes once when any rank aborts the job;
	// abortErr is written before the close and immutable afterwards.
	abortMu  sync.Mutex
	aborted  chan struct{}
	abortErr error
}

// NewWorld creates a world for size ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, colls: make(map[int64]*collOp), aborted: make(chan struct{})}
	for i := 0; i < size; i++ {
		w.boxes = append(w.boxes, newMailbox())
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Abort marks the job aborted on behalf of rank (the MPI_Abort analog,
// also used when a rank's application code dies). Every rank blocked in
// a matching or collective call that can no longer complete unblocks
// with ErrAborted, and future blocking calls and polls fail the same
// way once their operation is provably dead. Operations that can still
// complete — buffered sends, receives matched by messages the dead rank
// delivered before dying — are allowed to finish first: completion
// always wins over a concurrent abort, which is what makes a faulted
// run's behaviour a pure function of the fault plan rather than of
// goroutine scheduling (the campaign scheduler's byte-identical-report
// guarantee relies on this). The first abort wins; later ones are
// no-ops.
func (w *World) Abort(rank int, cause error) {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	select {
	case <-w.aborted:
		return
	default:
	}
	if cause != nil {
		w.abortErr = fmt.Errorf("%w by rank %d: %w", ErrAborted, rank, cause)
	} else {
		w.abortErr = fmt.Errorf("%w by rank %d", ErrAborted, rank)
	}
	if w.ctl != nil {
		// Release settlers and mark channel-parked ranks runnable before
		// the physical unblock below, so the controller never grants into
		// a tearing-down world.
		w.ctl.AbortAll()
	}
	close(w.aborted)
}

// Aborted returns the job's abort error, or nil while it is healthy.
func (w *World) Aborted() error {
	select {
	case <-w.aborted:
		return w.abortErr
	default:
		return nil
	}
}

// AttachRank binds rank's address space and interception hooks, returning
// its communicator (MPI_COMM_WORLD view). hooks may be nil.
func (w *World) AttachRank(rank int, mem *memspace.Memory, hooks Hooks) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("%w: %d of %d", ErrRank, rank, w.size)
	}
	if hooks == nil {
		hooks = BaseHooks{}
	}
	return &Comm{world: w, rank: rank, mem: mem, hooks: hooks}, nil
}

// Comm is one rank's view of the world (MPI_COMM_WORLD).
type Comm struct {
	world *World
	rank  int
	mem   *memspace.Memory
	hooks Hooks
	inj   *faults.Injector

	collSeq   int64
	stats     Stats
	finalized bool
	// live tracks incomplete requests for MUST's leak check.
	live map[*Request]struct{}
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of the per-rank counters.
func (c *Comm) Stats() Stats { return c.stats }

// SetHooks replaces the interception hooks (toolchain link step).
func (c *Comm) SetHooks(h Hooks) {
	if h == nil {
		h = BaseHooks{}
	}
	c.hooks = h
}

// SetInjector installs a deterministic fault injector for this rank's
// MPI calls (nil uninstalls). See internal/faults.
func (c *Comm) SetInjector(in *faults.Injector) { c.inj = in }

// enter runs the per-call bookkeeping shared by every full MPI
// operation: the rank-abort fault site can fire, killing the job as if
// this rank died at this call. There is deliberately no global
// "aborted?" fast-fail here — whether an unrelated rank's death has
// become visible at this instant is a wall-clock race, and failing on
// it would make a rank's progress (and therefore its fault-site
// occurrence counters and race verdicts) scheduling-dependent. A job
// abort is instead observed at completion points (waitAbortable, Test,
// Iprobe), where "this operation can never complete" is a deterministic
// property of the fault plan.
func (c *Comm) enter() error {
	if f := c.inj.Fire(faults.MPIRankAbort); f != nil {
		c.world.Abort(c.rank, f)
		return fmt.Errorf("rank %d aborted: %w", c.rank, f)
	}
	return nil
}

// waitAbortable blocks on ch, unblocking with the abort error if the
// job dies first. Completion always wins over an abort: everything the
// dead rank delivered happens-before its abort flag (its deliveries and
// its World.Abort run on one goroutine, and observing the closed abort
// channel establishes the edge), so when the abort is visible and ch is
// still not ready, the completion is provably never coming.
func (c *Comm) waitAbortable(ch chan struct{}) error {
	select {
	case <-ch:
		return nil
	default:
	}
	if ctl := c.world.ctl; ctl != nil {
		// Park under the controller; the signalling side re-marks this
		// rank runnable (Wake) before closing ch, so the controller never
		// sees a false quiescence. If ch was signalled already, Block is a
		// no-op and the select falls straight through.
		ctl.Block(c.rank, ch)
	}
	select {
	case <-ch:
		return nil
	case <-c.world.aborted:
		select {
		case <-ch:
			return nil
		default:
		}
		return c.world.abortErr
	}
}

// PendingRequests returns the number of incomplete requests (requests
// never waited on), for finalize-time leak checks.
func (c *Comm) PendingRequests() int { return len(c.live) }

// Finalize runs finalize-time hooks. Further communication is a bug.
func (c *Comm) Finalize() {
	if c.finalized {
		return
	}
	c.hooks.PreFinalize()
	c.finalized = true
}

// Finalized reports whether Finalize ran.
func (c *Comm) Finalized() bool { return c.finalized }

func (c *Comm) countBufferKind(a memspace.Addr) {
	switch memspace.KindOf(a) {
	case memspace.KindDevice, memspace.KindManaged:
		c.stats.DeviceBufferCalls++
	default:
		c.stats.HostBufferCalls++
	}
}

func (c *Comm) checkPeer(rank int, wildcardOK bool) error {
	if wildcardOK && rank == AnySource {
		return nil
	}
	if rank < 0 || rank >= c.world.size {
		return fmt.Errorf("%w: peer %d of %d", ErrRank, rank, c.world.size)
	}
	return nil
}

// readBuf copies count elements out of the caller's memory.
func (c *Comm) readBuf(buf memspace.Addr, count int, dt Datatype) ([]byte, error) {
	n := int64(count) * dt.Size
	src, err := c.mem.Bytes(buf, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBuffer, err)
	}
	out := make([]byte, n)
	copy(out, src)
	return out, nil
}

// writeBuf copies data into the caller's memory.
func (c *Comm) writeBuf(buf memspace.Addr, data []byte) error {
	dst, err := c.mem.Bytes(buf, int64(len(data)))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBuffer, err)
	}
	copy(dst, data)
	return nil
}
