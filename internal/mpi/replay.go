package mpi

import "cusango/internal/memspace"

// NewRequestHandle returns a detached request handle for offline trace
// replay (internal/trace): it carries the posted arguments the MUST
// runtime reads (kind, buffer, count, datatype, peer, tag) but belongs
// to no communicator, so it must never be passed back into Comm methods.
func NewRequestHandle(kind ReqKind, buf memspace.Addr, count int, dt Datatype, peer, tag int) *Request {
	return &Request{kind: kind, buf: buf, count: count, dt: dt, peer: peer, tag: tag}
}
