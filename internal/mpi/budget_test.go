package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cusango/internal/memspace"
)

// runBudgetRanks mirrors RunRanks but exposes the world so supervision
// hooks (SetOpBudget, Cancel) can be exercised.
func runBudgetRanks(size int, setup func(w *World), body func(c *Comm, mem *memspace.Memory) error) []error {
	w := NewWorld(size)
	setup(w)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		mem := memspace.New()
		comm, err := w.AttachRank(rank, mem, nil)
		if err != nil {
			errs[rank] = err
			continue
		}
		wg.Add(1)
		go func(rank int, comm *Comm, mem *memspace.Memory) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
			}()
			errs[rank] = body(comm, mem)
		}(rank, comm, mem)
	}
	wg.Wait()
	return errs
}

// TestOpBudgetExceeded: a rank that starts more full MPI operations
// than the budget allows dies with ErrStepBudget, deterministically at
// the same operation index on every run.
func TestOpBudgetExceeded(t *testing.T) {
	const budget = 5
	for run := 0; run < 3; run++ {
		var made int
		errs := runBudgetRanks(2, func(w *World) { w.SetOpBudget(budget) },
			func(c *Comm, mem *memspace.Memory) error {
				buf := mem.Alloc(8, memspace.KindHostPageable)
				for i := 0; ; i++ {
					var err error
					if c.Rank() == 0 {
						err = c.Send(buf, 1, Float64, 1, i)
					} else {
						_, err = c.Recv(buf, 1, Float64, 0, i)
					}
					if err != nil {
						if c.Rank() == 0 {
							made = i
						}
						return err
					}
				}
			})
		if !errors.Is(errs[0], ErrStepBudget) && !errors.Is(errs[1], ErrStepBudget) {
			t.Fatalf("run %d: no rank hit the budget: %v", run, errs)
		}
		// The budget is per-rank in program order: the rank that trips it
		// always does so after exactly `budget` completed operations.
		if errors.Is(errs[0], ErrStepBudget) && made != budget {
			t.Fatalf("run %d: rank 0 tripped after %d ops, want %d", run, made, budget)
		}
		for rank, err := range errs {
			if err == nil {
				t.Fatalf("run %d: rank %d survived a budget abort", run, rank)
			}
			if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrStepBudget) {
				t.Fatalf("run %d: rank %d died of %v, want budget or abort", run, rank, err)
			}
		}
	}
}

// TestOpBudgetSufficient: a budget the program fits inside changes
// nothing.
func TestOpBudgetSufficient(t *testing.T) {
	errs := runBudgetRanks(2, func(w *World) { w.SetOpBudget(100) },
		func(c *Comm, mem *memspace.Memory) error {
			buf := mem.Alloc(8, memspace.KindHostPageable)
			for i := 0; i < 10; i++ {
				if c.Rank() == 0 {
					if err := c.Send(buf, 1, Float64, 1, i); err != nil {
						return err
					}
				} else if _, err := c.Recv(buf, 1, Float64, 0, i); err != nil {
					return err
				}
			}
			return nil
		})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestCancelUnblocksHungRanks: Cancel (the watchdog path) tears down a
// world whose ranks are blocked forever — a Recv with no sender — and
// every rank's error carries the supplied cause.
func TestCancelUnblocksHungRanks(t *testing.T) {
	cause := errors.New("watchdog: deadline")
	w := NewWorld(2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	started := make(chan struct{}, 2)
	for rank := 0; rank < 2; rank++ {
		mem := memspace.New()
		comm, err := w.AttachRank(rank, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rank int, comm *Comm, mem *memspace.Memory) {
			defer wg.Done()
			buf := mem.Alloc(8, memspace.KindHostPageable)
			started <- struct{}{}
			_, errs[rank] = comm.Recv(buf, 1, Float64, (rank+1)%2, 0) // both wait: deadlock
		}(rank, comm, mem)
	}
	<-started
	<-started
	w.Cancel(cause)
	wg.Wait()
	for rank, err := range errs {
		if !errors.Is(err, ErrAborted) || !errors.Is(err, cause) {
			t.Fatalf("rank %d: err = %v, want abort wrapping the watchdog cause", rank, err)
		}
	}
	// Cancel after the fact is a no-op and must not panic.
	w.Cancel(errors.New("second"))
	if got := w.Aborted(); !errors.Is(got, cause) {
		t.Fatalf("Aborted() = %v, want the first cause to win", got)
	}
}
