package mpi

import (
	"fmt"
	"sync"

	"cusango/internal/memspace"
)

// RunRanks is a convenience launcher (mpirun analog) for tests and small
// programs: it creates a world of size ranks, gives each rank its own
// address space and communicator, runs body on one goroutine per rank,
// and returns the per-rank results (index = rank).
//
// The full toolchain (internal/core) builds worlds explicitly so it can
// attach instrumented sessions; RunRanks is the uninstrumented path.
func RunRanks(size int, body func(c *Comm, mem *memspace.Memory) error) []error {
	w := NewWorld(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		mem := memspace.New()
		comm, err := w.AttachRank(rank, mem, nil)
		if err != nil {
			errs[rank] = err
			continue
		}
		wg.Add(1)
		go func(rank int, comm *Comm, mem *memspace.Memory) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
			}()
			errs[rank] = body(comm, mem)
		}(rank, comm, mem)
	}
	wg.Wait()
	return errs
}

// FirstError returns the first non-nil error of a per-rank result slice.
func FirstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
