package mpi

import (
	"errors"
	"sync/atomic"
	"testing"

	"cusango/internal/memspace"
)

func allocF64(mem *memspace.Memory, kind memspace.Kind, vals ...float64) memspace.Addr {
	a := mem.Alloc(int64(len(vals))*8, kind)
	for i, v := range vals {
		mem.SetFloat64(a+memspace.Addr(i*8), v)
	}
	return a
}

func readF64(mem *memspace.Memory, a memspace.Addr, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mem.Float64(a + memspace.Addr(i*8))
	}
	return out
}

func TestBlockingSendRecv(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindHostPageable, 1, 2, 3)
			return c.Send(buf, 3, Float64, 1, 7)
		}
		buf := mem.Alloc(24, memspace.KindHostPageable)
		st, err := c.Recv(buf, 3, Float64, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
			t.Errorf("status = %+v", st)
		}
		got := readF64(mem, buf, 3)
		if got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("payload = %v", got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestCUDAAwareDeviceBuffers(t *testing.T) {
	// Device pointers passed directly to MPI (the paper's §III-D point).
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			dbuf := allocF64(mem, memspace.KindDevice, 4.5, 5.5)
			if err := c.Send(dbuf, 2, Float64, 1, 0); err != nil {
				return err
			}
			if c.Stats().DeviceBufferCalls != 1 {
				t.Error("device buffer call not counted")
			}
			return nil
		}
		dbuf := mem.Alloc(16, memspace.KindDevice)
		if _, err := c.Recv(dbuf, 2, Float64, 0, 0); err != nil {
			return err
		}
		got := readF64(mem, dbuf, 2)
		if got[0] != 4.5 || got[1] != 5.5 {
			t.Errorf("device payload = %v", got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Two sends with different tags; receives posted in opposite tag
	// order must match by tag, not arrival order.
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			a := allocF64(mem, memspace.KindHostPageable, 10)
			b := allocF64(mem, memspace.KindHostPageable, 20)
			if err := c.Send(a, 1, Float64, 1, 1); err != nil {
				return err
			}
			return c.Send(b, 1, Float64, 1, 2)
		}
		buf := mem.Alloc(16, memspace.KindHostPageable)
		if _, err := c.Recv(buf, 1, Float64, 0, 2); err != nil {
			return err
		}
		if got := mem.Float64(buf); got != 20 {
			t.Errorf("tag-2 payload = %v", got)
		}
		if _, err := c.Recv(buf+8, 1, Float64, 0, 1); err != nil {
			return err
		}
		if got := mem.Float64(buf + 8); got != 10 {
			t.Errorf("tag-1 payload = %v", got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameEnvelope(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				buf := allocF64(mem, memspace.KindHostPageable, float64(i))
				if err := c.Send(buf, 1, Float64, 1, 0); err != nil {
					return err
				}
			}
			return nil
		}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		for i := 0; i < 5; i++ {
			if _, err := c.Recv(buf, 1, Float64, 0, 0); err != nil {
				return err
			}
			if got := mem.Float64(buf); got != float64(i) {
				t.Errorf("message %d = %v (overtaking!)", i, got)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	errs := RunRanks(3, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() != 0 {
			buf := allocF64(mem, memspace.KindHostPageable, float64(c.Rank()))
			return c.Send(buf, 1, Float64, 0, c.Rank()*10)
		}
		got := map[int]bool{}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		for i := 0; i < 2; i++ {
			st, err := c.Recv(buf, 1, Float64, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Tag != st.Source*10 {
				t.Errorf("status inconsistent: %+v", st)
			}
			got[st.Source] = true
		}
		if !got[1] || !got[2] {
			t.Errorf("sources seen: %v", got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingIsendIrecvWait(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindDevice, 3.25)
			req, err := c.Isend(buf, 1, Float64, 1, 0)
			if err != nil {
				return err
			}
			_, err = c.Wait(req)
			return err
		}
		buf := mem.Alloc(8, memspace.KindDevice)
		req, err := c.Irecv(buf, 1, Float64, 0, 0)
		if err != nil {
			return err
		}
		st, err := c.Wait(req)
		if err != nil {
			return err
		}
		if st.Count != 1 || mem.Float64(buf) != 3.25 {
			t.Errorf("irecv payload = %v st=%+v", mem.Float64(buf), st)
		}
		if !req.Done() {
			t.Error("request not marked done")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTwiceFails(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindHostPageable, 1)
			req, err := c.Isend(buf, 1, Float64, 1, 0)
			if err != nil {
				return err
			}
			if _, err := c.Wait(req); err != nil {
				return err
			}
			if _, err := c.Wait(req); !errors.Is(err, ErrRequest) {
				t.Error("double wait must fail")
			}
			return nil
		}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		_, err := c.Recv(buf, 1, Float64, 0, 0)
		return err
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestTestPolling(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			// Delay the send until rank 1 signals via a first message.
			sig := mem.Alloc(8, memspace.KindHostPageable)
			if _, err := c.Recv(sig, 1, Float64, 1, 9); err != nil {
				return err
			}
			buf := allocF64(mem, memspace.KindHostPageable, 7)
			return c.Send(buf, 1, Float64, 1, 0)
		}
		buf := mem.Alloc(8, memspace.KindHostPageable)
		req, err := c.Irecv(buf, 1, Float64, 0, 0)
		if err != nil {
			return err
		}
		done, _, err := c.Test(req)
		if err != nil {
			return err
		}
		if done {
			t.Error("Test true before matching send was posted")
		}
		sig := allocF64(mem, memspace.KindHostPageable, 0)
		if err := c.Send(sig, 1, Float64, 0, 9); err != nil {
			return err
		}
		for {
			done, st, err := c.Test(req)
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 || mem.Float64(buf) != 7 {
					t.Errorf("payload after test = %v", mem.Float64(buf))
				}
				return nil
			}
		}
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvHaloExchange(t *testing.T) {
	const ranks = 4
	errs := RunRanks(ranks, func(c *Comm, mem *memspace.Memory) error {
		right := (c.Rank() + 1) % ranks
		left := (c.Rank() - 1 + ranks) % ranks
		send := allocF64(mem, memspace.KindDevice, float64(c.Rank()))
		recv := mem.Alloc(8, memspace.KindDevice)
		st, err := c.Sendrecv(send, 1, Float64, right, 0, recv, 1, Float64, left, 0)
		if err != nil {
			return err
		}
		if st.Source != left {
			t.Errorf("rank %d: source = %d, want %d", c.Rank(), st.Source, left)
		}
		if got := mem.Float64(recv); got != float64(left) {
			t.Errorf("rank %d: halo = %v, want %d", c.Rank(), got, left)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := allocF64(mem, memspace.KindHostPageable, 1, 2, 3, 4)
			return c.Send(buf, 4, Float64, 1, 0)
		}
		buf := mem.Alloc(16, memspace.KindHostPageable)
		_, err := c.Recv(buf, 2, Float64, 0, 0)
		if !errors.Is(err, ErrTruncate) {
			t.Errorf("err = %v, want truncation", err)
		}
		return nil
	})
	_ = errs
}

func TestInvalidArgs(t *testing.T) {
	errs := RunRanks(1, func(c *Comm, mem *memspace.Memory) error {
		buf := mem.Alloc(8, memspace.KindHostPageable)
		if err := c.Send(buf, 1, Float64, 5, 0); !errors.Is(err, ErrRank) {
			t.Error("send to bad rank must fail")
		}
		if err := c.Send(buf, -1, Float64, 0, 0); !errors.Is(err, ErrCount) {
			t.Error("negative count must fail")
		}
		if err := c.Send(memspace.Addr(99), 1, Float64, 0, 0); !errors.Is(err, ErrBuffer) {
			t.Error("junk buffer must fail")
		}
		if err := c.Send(buf, 2, Float64, 0, 0); !errors.Is(err, ErrBuffer) {
			t.Error("count beyond allocation must fail")
		}
		if _, err := c.Wait(nil); !errors.Is(err, ErrRequest) {
			t.Error("nil request must fail")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var phase atomic.Int64
	errs := RunRanks(4, func(c *Comm, mem *memspace.Memory) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase.Load(); got != 4 {
			t.Errorf("barrier released with phase=%d", got)
		}
		return c.Barrier()
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	errs := RunRanks(3, func(c *Comm, mem *memspace.Memory) error {
		buf := mem.Alloc(24, memspace.KindDevice)
		if c.Rank() == 1 {
			for i := 0; i < 3; i++ {
				mem.SetFloat64(buf+memspace.Addr(i*8), float64(100+i))
			}
		}
		if err := c.Bcast(buf, 3, Float64, 1); err != nil {
			return err
		}
		got := readF64(mem, buf, 3)
		for i, v := range got {
			if v != float64(100+i) {
				t.Errorf("rank %d: bcast[%d] = %v", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const ranks = 4
	errs := RunRanks(ranks, func(c *Comm, mem *memspace.Memory) error {
		send := allocF64(mem, memspace.KindHostPageable, float64(c.Rank()), 1)
		recv := mem.Alloc(16, memspace.KindHostPageable)
		if err := c.Allreduce(send, recv, 2, Float64, OpSum); err != nil {
			return err
		}
		got := readF64(mem, recv, 2)
		if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1*4
			t.Errorf("rank %d: allreduce = %v", c.Rank(), got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMinProdInt(t *testing.T) {
	errs := RunRanks(3, func(c *Comm, mem *memspace.Memory) error {
		send := mem.Alloc(4, memspace.KindHostPageable)
		mem.SetInt32(send, int32(c.Rank()+2)) // 2,3,4
		recv := mem.Alloc(4, memspace.KindHostPageable)
		for _, tc := range []struct {
			op   Op
			want int32
		}{{OpMax, 4}, {OpMin, 2}, {OpProd, 24}, {OpSum, 9}} {
			if err := c.Allreduce(send, recv, 1, Int32, tc.op); err != nil {
				return err
			}
			if got := mem.Int32(recv); got != tc.want {
				t.Errorf("rank %d: %v = %d, want %d", c.Rank(), tc.op, got, tc.want)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestReduceToRoot(t *testing.T) {
	errs := RunRanks(3, func(c *Comm, mem *memspace.Memory) error {
		send := allocF64(mem, memspace.KindHostPageable, 2)
		recv := allocF64(mem, memspace.KindHostPageable, -1)
		if err := c.Reduce(send, recv, 1, Float64, OpSum, 2); err != nil {
			return err
		}
		got := mem.Float64(recv)
		if c.Rank() == 2 && got != 6 {
			t.Errorf("root result = %v", got)
		}
		if c.Rank() != 2 && got != -1 {
			t.Errorf("non-root rank %d recv buffer modified: %v", c.Rank(), got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const ranks = 3
	errs := RunRanks(ranks, func(c *Comm, mem *memspace.Memory) error {
		send := allocF64(mem, memspace.KindHostPageable, float64(c.Rank()*10))
		recv := mem.Alloc(ranks*8, memspace.KindHostPageable)
		if err := c.Allgather(send, recv, 1, Float64); err != nil {
			return err
		}
		got := readF64(mem, recv, ranks)
		for i, v := range got {
			if v != float64(i*10) {
				t.Errorf("rank %d: allgather[%d] = %v", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		buf := allocF64(mem, memspace.KindHostPageable, 1)
		if c.Rank() == 0 {
			return c.Bcast(buf, 1, Float64, 0)
		}
		return c.Barrier()
	})
	sawMismatch := false
	for _, err := range errs {
		if errors.Is(err, ErrCollectiveMismatch) {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Fatalf("mismatch not detected: %v", errs)
	}
}

func TestPendingRequestsTracked(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		if c.Rank() == 0 {
			buf := mem.Alloc(8, memspace.KindHostPageable)
			req, err := c.Irecv(buf, 1, Float64, 1, 0)
			if err != nil {
				return err
			}
			if c.PendingRequests() != 1 {
				t.Errorf("pending = %d, want 1", c.PendingRequests())
			}
			if _, err := c.Wait(req); err != nil {
				return err
			}
			if c.PendingRequests() != 0 {
				t.Errorf("pending after wait = %d", c.PendingRequests())
			}
			return nil
		}
		buf := allocF64(mem, memspace.KindHostPageable, 5)
		return c.Send(buf, 1, Float64, 0, 0)
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestHooksFire(t *testing.T) {
	h := &hookCounter{}
	w := NewWorld(2)
	var errsCh [2]chan error
	for rank := 0; rank < 2; rank++ {
		errsCh[rank] = make(chan error, 1)
		mem := memspace.New()
		comm, err := w.AttachRank(rank, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		comm.SetHooks(h)
		go func(rank int, c *Comm, mem *memspace.Memory) {
			errsCh[rank] <- func() error {
				defer c.Finalize()
				buf := mem.Alloc(8, memspace.KindHostPageable)
				if rank == 0 {
					if err := c.Send(buf, 1, Float64, 1, 0); err != nil {
						return err
					}
				} else {
					req, err := c.Irecv(buf, 1, Float64, 0, 0)
					if err != nil {
						return err
					}
					if _, err := c.Wait(req); err != nil {
						return err
					}
				}
				return c.Barrier()
			}()
		}(rank, comm, mem)
	}
	for _, ch := range errsCh {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if h.sends.Load() != 1 || h.recvs.Load() != 1 || h.waits.Load() != 1 {
		t.Errorf("hook counts: sends=%d recvs=%d waits=%d",
			h.sends.Load(), h.recvs.Load(), h.waits.Load())
	}
	if h.colls.Load() != 2 || h.finals.Load() != 2 {
		t.Errorf("colls=%d finals=%d", h.colls.Load(), h.finals.Load())
	}
}

// hookCounter counts selected interception events (thread-safe: hooks run
// on multiple rank goroutines here because the instance is shared).
type hookCounter struct {
	BaseHooks
	sends, recvs, waits, colls, finals atomic.Int64
}

func (h *hookCounter) PreSend(memspace.Addr, int, Datatype, int, int) { h.sends.Add(1) }
func (h *hookCounter) PreIrecv(memspace.Addr, int, Datatype, int, int, *Request) {
	h.recvs.Add(1)
}
func (h *hookCounter) PostWait(*Request, Status) { h.waits.Add(1) }
func (h *hookCounter) PreCollective(string, memspace.Addr, int64, memspace.Addr, int64) {
	h.colls.Add(1)
}
func (h *hookCounter) PreFinalize() { h.finals.Add(1) }

func TestStatsCounters(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		buf := allocF64(mem, memspace.KindDevice, 1)
		if c.Rank() == 0 {
			if err := c.Send(buf, 1, Float64, 1, 0); err != nil {
				return err
			}
			st := c.Stats()
			if st.Sends != 1 || st.BytesSent != 8 || st.DeviceBufferCalls != 1 {
				t.Errorf("stats = %+v", st)
			}
			return nil
		}
		_, err := c.Recv(buf, 1, Float64, 0, 0)
		return err
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestPanicInRankIsCaptured(t *testing.T) {
	errs := RunRanks(1, func(c *Comm, mem *memspace.Memory) error {
		panic("boom")
	})
	if errs[0] == nil {
		t.Fatal("panic not captured")
	}
}

func TestGather(t *testing.T) {
	const ranks = 3
	errs := RunRanks(ranks, func(c *Comm, mem *memspace.Memory) error {
		send := allocF64(mem, memspace.KindDevice, float64(c.Rank()+1), float64(10*(c.Rank()+1)))
		recv := mem.Alloc(ranks*16, memspace.KindDevice)
		if err := c.Gather(send, recv, 2, Float64, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			got := readF64(mem, recv, 6)
			want := []float64{1, 10, 2, 20, 3, 30}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("gather[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const ranks = 3
	errs := RunRanks(ranks, func(c *Comm, mem *memspace.Memory) error {
		var send memspace.Addr
		if c.Rank() == 0 {
			send = allocF64(mem, memspace.KindHostPageable, 100, 200, 300)
		} else {
			send = mem.Alloc(8, memspace.KindHostPageable) // unused on non-roots
		}
		recv := mem.Alloc(8, memspace.KindDevice)
		if err := c.Scatter(send, recv, 1, Float64, 0); err != nil {
			return err
		}
		if got := mem.Float64(recv); got != float64(100*(c.Rank()+1)) {
			t.Errorf("rank %d: scatter = %v", c.Rank(), got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestScatterRootBufferTooSmall(t *testing.T) {
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		send := allocF64(mem, memspace.KindHostPageable, 1) // 1 elem, need 2
		recv := mem.Alloc(8, memspace.KindHostPageable)
		err := c.Scatter(send, recv, 1, Float64, 0)
		if c.Rank() == 0 && err == nil {
			t.Error("undersized root scatter buffer accepted")
		}
		return nil
	})
	_ = errs // the non-root may be left waiting on a mismatch; errors checked above
}

func TestCollectiveLocalErrorDoesNotDeadlockPeers(t *testing.T) {
	// A rank failing locally (bad buffer) inside a collective must not
	// strand the other ranks: the failure propagates to everyone.
	errs := RunRanks(2, func(c *Comm, mem *memspace.Memory) error {
		buf := mem.Alloc(8, memspace.KindHostPageable)
		if c.Rank() == 0 {
			// Root passes an invalid buffer.
			return c.Bcast(memspace.Addr(12345), 1, Float64, 0)
		}
		return c.Bcast(buf, 1, Float64, 0)
	})
	for rank, err := range errs {
		if err == nil {
			t.Errorf("rank %d did not observe the collective failure", rank)
		}
	}
}
