// Soundness differential: the static checker against the exact dynamic
// oracle, over every suite and app kernel plus a few hundred generated
// ones. The contract (package doc) is directional:
//
//   - race-free must never be contradicted by the oracle on any geometry;
//   - race must be confirmed by the oracle whenever the witness geometry
//     actually executed.
//
// External test package: it pulls in testsuite and the apps, which the
// library must not depend on.
package kstatic_test

import (
	"testing"

	"cusango/internal/apps/halo2d"
	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/kaccess"
	"cusango/internal/kir"
	"cusango/internal/kstatic"
	"cusango/internal/testsuite"
)

// checkSoundness runs the static checker and the oracle over every
// kernel of m and asserts the differential contract.
func checkSoundness(t *testing.T, label string, m *kir.Module) {
	t.Helper()
	rep, err := kstatic.Analyze(m)
	if err != nil {
		t.Fatalf("%s: Analyze: %v", label, err)
	}
	for _, kr := range rep.Kernels {
		orc, err := kstatic.RunOracle(m, kr.Kernel)
		if err != nil {
			t.Fatalf("%s/%s: oracle: %v", label, kr.Kernel, err)
		}
		switch kr.Verdict {
		case kstatic.VerdictRaceFree:
			if orc.HasRace() {
				t.Errorf("%s/%s: SOUNDNESS VIOLATION: static race-free but oracle found %d race(s), first: %s",
					label, kr.Kernel, len(orc.Races), orc.Races[0])
			}
		case kstatic.VerdictRace:
			if kr.Witness == nil {
				t.Errorf("%s/%s: race verdict without witness", label, kr.Kernel)
				continue
			}
			if orc.CheckedGeom(kr.Witness.Geom) && !orc.HasRace() {
				t.Errorf("%s/%s: static witness %s but oracle saw no race (checked %v)",
					label, kr.Kernel, kr.Witness, orc.Checked)
			}
		}
	}
}

// checkArgAgreement asserts kstatic's independently computed per-arg
// may-read/may-write sets match kaccess's exactly (mutual inclusion):
// same lattice, different implementations, unique least fixpoint.
func checkArgAgreement(t *testing.T, label string, m *kir.Module) {
	t.Helper()
	rep, err := kstatic.Analyze(m)
	if err != nil {
		t.Fatalf("%s: kstatic: %v", label, err)
	}
	acc, err := kaccess.Analyze(m)
	if err != nil {
		t.Fatalf("%s: kaccess: %v", label, err)
	}
	for _, kr := range rep.Kernels {
		sum := acc.Summary(kr.Kernel)
		if sum == nil {
			t.Errorf("%s/%s: no kaccess summary", label, kr.Kernel)
			continue
		}
		for i, a := range kr.Args {
			ka := sum.Params[i]
			if a.Read != ka.MayRead() {
				t.Errorf("%s/%s arg %q: kstatic read=%v, kaccess read=%v",
					label, kr.Kernel, a.Name, a.Read, ka.MayRead())
			}
			if a.Write != ka.MayWrite() {
				t.Errorf("%s/%s arg %q: kstatic write=%v, kaccess write=%v",
					label, kr.Kernel, a.Name, a.Write, ka.MayWrite())
			}
		}
	}
}

func namedModules() map[string]*kir.Module {
	return map[string]*kir.Module{
		"suite":        testsuite.Module(),
		"apps/jacobi":  jacobi.Module(),
		"apps/tealeaf": tealeaf.Module(),
		"apps/halo2d":  halo2d.AppModule(),
	}
}

func TestDifferentialSuiteAndApps(t *testing.T) {
	for label, m := range namedModules() {
		checkSoundness(t, label, m)
		checkArgAgreement(t, label, m)
	}
}

func TestDifferentialGenerated(t *testing.T) {
	const n = 250
	counts := map[kstatic.Verdict]int{}
	for seed := uint64(1); seed <= n; seed++ {
		m := kstatic.GenModule(seed)
		checkSoundness(t, "gen", m)
		checkArgAgreement(t, "gen", m)
		rep, err := kstatic.Analyze(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		counts[rep.Kernels[0].Verdict]++
	}
	// The generator must exercise all three verdict paths — a distribution
	// collapse would silently gut this test.
	t.Logf("generated verdicts: race-free=%d race=%d unknown=%d",
		counts[kstatic.VerdictRaceFree], counts[kstatic.VerdictRace], counts[kstatic.VerdictUnknown])
	for v, want := range map[kstatic.Verdict]int{
		kstatic.VerdictRaceFree: 10,
		kstatic.VerdictRace:     10,
		kstatic.VerdictUnknown:  10,
	} {
		if counts[v] < want {
			t.Errorf("only %d/%d generated kernels got verdict %s (want >= %d)", counts[v], n, v, want)
		}
	}
}
