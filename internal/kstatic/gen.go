package kstatic

import (
	"cusango/internal/kir"
)

// Deterministic random kernel generation for the differential soundness
// tests and the fuzzer: GenModule(seed) is a pure function of the seed
// (own splitmix64 stream, no math/rand, no global state). Generated
// kernels mix the shapes the checker must handle — plain affine stores
// and loads, guarded accesses, barriers, small loops, atomics, the
// occasional non-affine index or y-dimension use — while keeping every
// index inside [0, OracleElems) under the oracle's argument binding
// (integer params = total threads ≤ 16, coefficients and constants
// small and non-negative), so the oracle checks rather than skips.

type genRand struct{ s uint64 }

func (g *genRand) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (g *genRand) intn(n int) int { return int(g.next() % uint64(n)) }

// GenModule builds one single-kernel module from seed. The kernel is
// named "k" and has parameters (a f64*, b f64*, n i64).
func GenModule(seed uint64) *kir.Module {
	r := &genRand{s: seed}
	m := kir.NewModule()
	params := []kir.Param{
		{Name: "a", Type: kir.TPtrF64},
		{Name: "b", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}
	m.Add(kir.KernelFunc("k", params, func(e *kir.Emitter) {
		g := &gen{r: r, e: e, useY: r.intn(8) == 0}
		nStmts := 1 + r.intn(5)
		for i := 0; i < nStmts; i++ {
			g.stmt(0)
		}
		e.Return()
	}))
	return m
}

type gen struct {
	r    *genRand
	e    *kir.Emitter
	useY bool
}

// index builds a small non-negative affine (or, rarely, non-affine)
// index expression, bounded below OracleElems for every oracle binding.
func (g *gen) index() kir.Value {
	e := g.e
	var base kir.Value
	switch g.r.intn(6) {
	case 0:
		base = e.Builtin(kir.ThreadIdxX)
	case 1:
		base = e.Builtin(kir.BlockIdxX)
	case 2:
		// bid*bdim + tid spelled out (exercises the mulE rewrite)
		base = e.Add(e.Mul(e.Builtin(kir.BlockIdxX), e.Builtin(kir.BlockDimX)), e.Builtin(kir.ThreadIdxX))
	case 3:
		if g.useY {
			base = e.Add(e.Mul(e.GlobalIDY(), e.ConstI(4)), e.GlobalIDX())
		} else {
			base = e.GlobalIDX()
		}
	default:
		base = e.GlobalIDX()
	}
	// idx = coeff*base + off, coeff in 1..4, off in 0..7: with base < 16
	// (total threads) the worst case is 4*15+7+16 < OracleElems.
	coeff := int64(1 + g.r.intn(4))
	off := int64(g.r.intn(8))
	idx := base
	if coeff != 1 {
		idx = e.Mul(idx, e.ConstI(coeff))
	}
	if off != 0 {
		idx = e.Add(idx, e.ConstI(off))
	}
	if g.r.intn(10) == 0 {
		// Non-affine spice: idx = idx % 8 + n (Rem is ⊤ statically but
		// well-defined dynamically and stays in bounds).
		idx = e.Add(e.Rem(idx, e.ConstI(8)), e.Arg("n"))
	}
	return idx
}

func (g *gen) buf() kir.Value {
	if g.r.intn(2) == 0 {
		return g.e.Arg("a")
	}
	return g.e.Arg("b")
}

// stmt emits one random statement; depth bounds nesting.
func (g *gen) stmt(depth int) {
	e := g.e
	switch c := g.r.intn(10); {
	case c < 3: // store
		e.StoreIdx(g.buf(), g.index(), e.ConstF(float64(g.r.intn(5))))
	case c < 5: // load (into a throwaway)
		e.LoadIdx(g.buf(), g.index())
	case c == 5: // atomic
		e.AtomicAddF(e.GEP(g.buf(), g.index()), e.ConstF(1))
	case c == 6: // barrier
		e.Syncthreads()
	case c == 7 && depth < 2: // guarded statement
		cond := e.Lt(e.GlobalIDX(), e.ConstI(int64(1+g.r.intn(8))))
		e.If(cond, func() { g.stmt(depth + 1) })
	case c == 8 && depth < 2: // small loop, stride 1 or 2
		step := int64(1 + g.r.intn(2))
		e.For(e.ConstI(0), e.ConstI(int64(2+g.r.intn(3))), e.ConstI(step), func(i kir.Value) {
			// loop-indexed access: buf[base + i]
			e.StoreIdx(g.buf(), e.Add(g.index(), i), e.ConstF(2))
		})
	default: // arithmetic chaff
		v := e.Add(e.Builtin(kir.ThreadIdxX), e.ConstI(1))
		e.Mul(v, e.ConstI(3))
	}
}
