package kstatic

import (
	"strings"
	"testing"

	"cusango/internal/kir"
)

func analyzeOne(t *testing.T, f *kir.Function) *KernelReport {
	t.Helper()
	m := kir.NewModule()
	m.Add(f)
	rep, err := Analyze(m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	kr := rep.Kernel(f.Name)
	if kr == nil {
		t.Fatalf("no report for %q", f.Name)
	}
	return kr
}

func pf64(name string) kir.Param { return kir.Param{Name: name, Type: kir.TPtrF64} }

// Each thread touches only its own element: proved race-free.
func TestOwnElementRaceFree(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_own", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		gid := e.GlobalIDX()
		v := e.LoadIdx(e.Arg("a"), gid)
		e.StoreIdx(e.Arg("a"), gid, e.Add(v, e.ConstF(1)))
		e.Return()
	}))
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_own: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
	if kr.Accesses != 2 || kr.Intervals != 1 || kr.Divergent || kr.UsesY {
		t.Fatalf("k_own facts: %+v", kr)
	}
}

// Even/odd interleave: store a[2g] vs load a[2g+1] — a parity (GCD)
// proof, not a per-thread-slot one.
func TestParityRaceFree(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_parity", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		g2 := e.Mul(e.GlobalIDX(), e.ConstI(2))
		e.LoadIdx(e.Arg("a"), e.Add(g2, e.ConstI(1)))
		e.StoreIdx(e.Arg("a"), g2, e.ConstF(0))
		e.Return()
	}))
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_parity: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
}

// a[threadIdx.x]: distinct blocks collide — race, with a confirmable
// witness pinning the whole witness path.
func TestThreadIdxRace(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_race", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("a"), e.Builtin(kir.ThreadIdxX), e.ConstF(1))
		e.Return()
	}))
	if kr.Verdict != VerdictRace {
		t.Fatalf("k_race: got %s (%s), want race", kr.Verdict, kr.Reason)
	}
	w := kr.Witness
	if w == nil {
		t.Fatal("race verdict without witness")
	}
	if w.Thread1 == w.Thread2 {
		t.Fatalf("witness threads equal: %v", w)
	}
	if w.Param != "a" || w.Kind1 != AccWrite || w.Kind2 != AccWrite {
		t.Fatalf("witness: %v", w)
	}
	// The witness must be realizable: both threads' offsets evaluate to
	// Offset under the claimed geometry.
	if w.Geom.GridX < 2 {
		t.Fatalf("threadIdx collisions need 2+ blocks, got %v", w.Geom)
	}
}

// Barrier splits the kernel into two intervals; same-element reload
// after the barrier stays race-free and the segmentation is reported.
func TestBarrierIntervalsReported(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_shift", []kir.Param{pf64("a"), pf64("b")}, func(e *kir.Emitter) {
		gid := e.GlobalIDX()
		e.StoreIdx(e.Arg("a"), gid, e.ConstF(2))
		e.Syncthreads()
		v := e.LoadIdx(e.Arg("a"), gid)
		e.StoreIdx(e.Arg("b"), gid, v)
		e.Return()
	}))
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_shift: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
	if kr.Barriers != 1 || kr.Intervals != 2 || kr.Divergent {
		t.Fatalf("k_shift segmentation: %+v", kr)
	}
}

// Neighbor load across a barrier: the barrier orders same-block pairs
// but adjacent global ids span block boundaries — a real race the
// checker must witness cross-block.
func TestNeighborRaceDespiteBarrier(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_nbr", []kir.Param{pf64("a"), pf64("b")}, func(e *kir.Emitter) {
		gid := e.GlobalIDX()
		e.StoreIdx(e.Arg("a"), gid, e.ConstF(2))
		e.Syncthreads()
		v := e.LoadIdx(e.Arg("a"), e.Add(gid, e.ConstI(1)))
		e.StoreIdx(e.Arg("b"), gid, v)
		e.Return()
	}))
	if kr.Verdict != VerdictRace {
		t.Fatalf("k_nbr: got %s (%s), want race", kr.Verdict, kr.Reason)
	}
	w := kr.Witness
	if w == nil || w.Param != "a" {
		t.Fatalf("witness: %v", w)
	}
	// Same-block pairs are barrier-ordered; the witness must therefore
	// cross blocks.
	g := w.Geom
	gw := g.GridX * g.BlockX
	b1 := (w.Thread1 % gw) / g.BlockX
	b2 := (w.Thread2 % gw) / g.BlockX
	if b1 == b2 {
		t.Fatalf("witness threads share block %d: %v", b1, w)
	}
}

// A barrier under a thread-dependent guard makes interval segmentation
// divergent; disjointness proofs that need no ordering still go through.
func TestDivergentBarrierStillProvable(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_divbar", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		gid := e.GlobalIDX()
		e.If(e.Lt(gid, e.ConstI(2)), func() {
			e.Syncthreads()
		})
		e.StoreIdx(e.Arg("a"), gid, e.ConstF(1))
		e.Return()
	}))
	if !kr.Divergent {
		t.Fatalf("expected divergent segmentation: %+v", kr)
	}
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_divbar: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
}

// Atomics never race with atomics; an atomic against a plain load does.
func TestAtomicRules(t *testing.T) {
	atomic := analyzeOne(t, kir.KernelFunc("k_atomic", []kir.Param{pf64("s")}, func(e *kir.Emitter) {
		e.AtomicAddF(e.GEP(e.Arg("s"), e.ConstI(0)), e.ConstF(1))
		e.Return()
	}))
	if atomic.Verdict != VerdictRaceFree {
		t.Fatalf("k_atomic: got %s (%s), want race-free", atomic.Verdict, atomic.Reason)
	}
	mixed := analyzeOne(t, kir.KernelFunc("k_mixed", []kir.Param{pf64("s"), pf64("o")}, func(e *kir.Emitter) {
		v := e.LoadIdx(e.Arg("s"), e.ConstI(0))
		e.AtomicAddF(e.GEP(e.Arg("s"), e.ConstI(0)), e.ConstF(1))
		e.StoreIdx(e.Arg("o"), e.GlobalIDX(), v)
		e.Return()
	}))
	if mixed.Verdict != VerdictRace {
		t.Fatalf("k_mixed: got %s (%s), want race", mixed.Verdict, mixed.Reason)
	}
}

// A store reachable by only some threads (guarded) must not drive a
// race claim even when offsets collide — only thread 0 actually writes,
// so claiming a race would be a phantom. Verdict degrades to unknown.
func TestGuardedAccessNoPhantomRace(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_guarded", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		e.If(e.Lt(e.GlobalIDX(), e.ConstI(1)), func() {
			e.StoreIdx(e.Arg("a"), e.ConstI(0), e.ConstF(1))
		})
		e.Return()
	}))
	if kr.Verdict != VerdictUnknown {
		t.Fatalf("k_guarded: got %s (%s), want unknown", kr.Verdict, kr.Reason)
	}
	if kr.Witness != nil {
		t.Fatalf("guarded access produced a witness: %v", kr.Witness)
	}
}

// Loop with even strides: reads sweep the even elements (offset
// 2·gid + 2i, an induction term), the only write hits each thread's own
// odd element. The parity proof must hold with the induction variable in
// play — iterations range over all of ℤ, and gcd reasoning still
// separates even from odd.
func TestLoopParityRaceFree(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_loop_parity", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		g2 := e.Mul(e.GlobalIDX(), e.ConstI(2))
		e.For(e.ConstI(0), e.ConstI(3), e.ConstI(1), func(i kir.Value) {
			e.LoadIdx(e.Arg("a"), e.Add(g2, e.Mul(i, e.ConstI(2))))
		})
		e.StoreIdx(e.Arg("a"), e.Add(g2, e.ConstI(1)), e.ConstF(0))
		e.Return()
	}))
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_loop_parity: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
}

// Unit-stride loops overlap across threads in the ℤ-relaxation: verdict
// must degrade to unknown, never to a phantom race (induction-bearing
// offsets cannot witness).
func TestLoopOverlapUnknown(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_loop", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		g4 := e.Mul(e.GlobalIDX(), e.ConstI(4))
		e.For(e.ConstI(0), e.ConstI(4), e.ConstI(1), func(i kir.Value) {
			e.StoreIdx(e.Arg("a"), e.Add(g4, i), e.ConstF(0))
		})
		e.Return()
	}))
	if kr.Verdict != VerdictUnknown {
		t.Fatalf("k_loop: got %s (%s), want unknown", kr.Verdict, kr.Reason)
	}
	if kr.Witness != nil {
		t.Fatalf("induction offset produced a witness: %v", kr.Witness)
	}
}

// Non-affine indexing (Rem) is ⊤: unknown, not a guess.
func TestNonAffineUnknown(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_rem", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("a"), e.Rem(e.GlobalIDX(), e.ConstI(8)), e.ConstF(1))
		e.Return()
	}))
	if kr.Verdict != VerdictUnknown {
		t.Fatalf("k_rem: got %s (%s), want unknown", kr.Verdict, kr.Reason)
	}
}

// 2-D kernels: UsesY is reported. Row-major indexing with a fixed row
// stride is NOT provable — verdicts quantify over all launches, and a
// blockDim.x wider than the stride folds rows together — so the honest
// answer is unknown. A 2-D all-atomic kernel is provable.
func TestUsesYReported(t *testing.T) {
	rowMajor := analyzeOne(t, kir.KernelFunc("k_2d", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		idx := e.Add(e.Mul(e.GlobalIDY(), e.ConstI(64)), e.GlobalIDX())
		e.StoreIdx(e.Arg("a"), idx, e.ConstF(1))
		e.Return()
	}))
	if !rowMajor.UsesY {
		t.Fatalf("expected UsesY: %+v", rowMajor)
	}
	if rowMajor.Verdict != VerdictUnknown {
		t.Fatalf("k_2d: got %s (%s), want unknown", rowMajor.Verdict, rowMajor.Reason)
	}
	atomic2d := analyzeOne(t, kir.KernelFunc("k_2d_atomic", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		idx := e.Add(e.Mul(e.GlobalIDY(), e.ConstI(4)), e.GlobalIDX())
		e.AtomicAddF(e.GEP(e.Arg("a"), idx), e.ConstF(1))
		e.Return()
	}))
	if !atomic2d.UsesY || atomic2d.Verdict != VerdictRaceFree {
		t.Fatalf("k_2d_atomic: got %s (%s) usesY=%v, want race-free usesY=true",
			atomic2d.Verdict, atomic2d.Reason, atomic2d.UsesY)
	}
}

// The explicit bid*bdim+tid spelling must analyze exactly like the
// globalId builtin (the mulE rewrite).
func TestBidBdimTidRewrite(t *testing.T) {
	kr := analyzeOne(t, kir.KernelFunc("k_spelled", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		gid := e.Add(e.Mul(e.Builtin(kir.BlockIdxX), e.Builtin(kir.BlockDimX)), e.Builtin(kir.ThreadIdxX))
		e.StoreIdx(e.Arg("a"), gid, e.ConstF(1))
		e.Return()
	}))
	if kr.Verdict != VerdictRaceFree {
		t.Fatalf("k_spelled: got %s (%s), want race-free", kr.Verdict, kr.Reason)
	}
}

// Analysis is a pure function of the module: two runs render identically.
func TestAnalyzeDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := GenModule(seed)
		r1, err := Analyze(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := Analyze(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("seed %d: nondeterministic report:\n%s\nvs\n%s", seed, r1, r2)
		}
	}
}

// GenModule is a pure function of the seed.
func TestGenModuleDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		if GenModule(seed).String() != GenModule(seed).String() {
			t.Fatalf("seed %d: GenModule nondeterministic", seed)
		}
	}
}

// Report.String mentions each kernel exactly once with its verdict.
func TestReportString(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("k_a", []kir.Param{pf64("a")}, func(e *kir.Emitter) {
		e.StoreIdx(e.Arg("a"), e.GlobalIDX(), e.ConstF(1))
		e.Return()
	}))
	rep, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "k_a: race-free") {
		t.Fatalf("report: %q", s)
	}
}
