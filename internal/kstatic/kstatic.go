// Package kstatic is the static intra-kernel data-race checker: the
// cheap second modality next to interpretation (ROADMAP "static kernel
// race analysis"). It reasons symbolically over internal/kir — no
// execution — and decides, per kernel, one of three verdicts:
//
//   - race-free: every pair of potentially-conflicting accesses is
//     proven disjoint across distinct threads (affine offset reasoning,
//     stride/offset GCD arguments, barrier-interval ordering);
//   - race: a concrete witness exists — two thread ids of a small
//     launch geometry touching the same element, at least one write;
//   - unknown: conservative fallback (non-affine indices, loops the
//     widening cannot bound, data-dependent guards, callees with memory
//     effects).
//
// Soundness direction: race-free is a proof under the execution model
// below, race carries a replayable witness, and everything else is
// unknown — the checker never guesses. The dynamic oracle
// (RunOracle, over the instrumented interpreter) audits exactly this
// contract in the differential tests and the `static` campaign kind.
//
// Execution model (documented in DESIGN.md §15): distinct pointer
// parameters never alias; a kernel that reads no y-dimension builtins is
// analyzed for 1-D launches (unused dimensions fixed at 1); syncthreads
// orders same-block accesses across barrier intervals when every path
// reaches each block with the same barrier count; atomics do not race
// with atomics.
package kstatic

import (
	"fmt"
	"strings"

	"cusango/internal/kir"
)

// Verdict is the per-kernel analysis outcome.
type Verdict uint8

// Verdicts, ordered so the zero value is the conservative one.
const (
	VerdictUnknown Verdict = iota
	VerdictRaceFree
	VerdictRace
)

func (v Verdict) String() string {
	switch v {
	case VerdictRaceFree:
		return "race-free"
	case VerdictRace:
		return "race"
	default:
		return "unknown"
	}
}

// AccKind classifies a static access record.
type AccKind uint8

// Static access kinds (mirrors the oracle's event kinds).
const (
	AccRead AccKind = iota
	AccWrite
	AccAtomic
)

func (k AccKind) String() string {
	switch k {
	case AccRead:
		return "read"
	case AccWrite:
		return "write"
	default:
		return "atomic"
	}
}

// conflicts reports whether two access kinds can form a race: at least
// one side mutates, and atomic pairs are exempt.
func conflicts(a, b AccKind) bool {
	if a == AccRead && b == AccRead {
		return false
	}
	if a == AccAtomic && b == AccAtomic {
		return false
	}
	return true
}

// Geom is one concrete launch geometry used for witness search and by
// the dynamic oracle.
type Geom struct {
	GridX, GridY, BlockX, BlockY int
}

// Threads returns the launch's total thread count.
func (g Geom) Threads() int { return g.GridX * g.GridY * g.BlockX * g.BlockY }

func (g Geom) String() string {
	return fmt.Sprintf("grid=%dx%d block=%dx%d", g.GridX, g.GridY, g.BlockX, g.BlockY)
}

// Geometries returns the small launch geometries the checker and the
// oracle share: witness claims are made against exactly the set the
// oracle enumerates, so a static race is dynamically confirmable.
func Geometries(usesY bool) []Geom {
	if usesY {
		return []Geom{
			{1, 2, 2, 2},
			{2, 2, 2, 2},
			{1, 1, 2, 2},
			{2, 1, 2, 2},
		}
	}
	return []Geom{
		{1, 1, 4, 1},
		{2, 1, 2, 1},
		{2, 1, 4, 1},
		{4, 1, 2, 1},
	}
}

// Witness is a concrete racing pair: two distinct threads of geometry
// Geom whose accesses hit the same element of parameter Param.
type Witness struct {
	Param   string
	Geom    Geom
	Thread1 int
	Thread2 int
	// Offset is the byte offset within the parameter's allocation.
	Offset int64
	Kind1  AccKind
	Kind2  AccKind
}

func (w *Witness) String() string {
	return fmt.Sprintf("%s+%d: thread %d (%s) vs thread %d (%s) at %s",
		w.Param, w.Offset, w.Thread1, w.Kind1, w.Thread2, w.Kind2, w.Geom)
}

// ArgAccess is the kernel-level may-access attribute of one parameter,
// derived by this package's own fixpoint (audited against kaccess).
type ArgAccess struct {
	Name  string
	Read  bool
	Write bool
}

// KernelReport is the static verdict and supporting facts for one kernel.
type KernelReport struct {
	Kernel  string
	Verdict Verdict
	// Reason explains unknown verdicts and annotates the others.
	Reason string
	// Barriers counts syncthreads instructions in the kernel body.
	Barriers int
	// Intervals is the barrier-interval count (1 = no barriers). Zero
	// when Divergent: no consistent segmentation exists.
	Intervals int
	// Divergent: some block is reachable with differing barrier counts
	// (barrier in a loop or conditional), so interval ordering is unusable.
	Divergent bool
	// UsesY: the kernel reads y-dimension builtins; verdicts then cover
	// 2-D launches (otherwise 1-D launches with y dimensions of 1).
	UsesY bool
	// Accesses counts the static access records analyzed.
	Accesses int
	// Witness is set exactly when Verdict == VerdictRace.
	Witness *Witness
	// Args holds the per-parameter may-read/may-write sets.
	Args []ArgAccess
}

// Report is the module-level analysis result.
type Report struct {
	Kernels []*KernelReport
	byName  map[string]*KernelReport
}

// Kernel returns the named kernel's report, or nil.
func (r *Report) Kernel(name string) *KernelReport { return r.byName[name] }

// String renders one line per kernel, deterministically.
func (r *Report) String() string {
	var b strings.Builder
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%s: %s", k.Kernel, k.Verdict)
		if k.Divergent {
			fmt.Fprintf(&b, " barriers=%d divergent", k.Barriers)
		} else {
			fmt.Fprintf(&b, " intervals=%d", k.Intervals)
		}
		fmt.Fprintf(&b, " accesses=%d", k.Accesses)
		if k.Witness != nil {
			fmt.Fprintf(&b, " witness{%s}", k.Witness)
		}
		if k.Reason != "" {
			fmt.Fprintf(&b, " (%s)", k.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze verifies the module and statically checks every kernel. The
// result is a pure function of the module: no randomness, no execution.
func Analyze(m *kir.Module) (*Report, error) {
	if err := kir.Verify(m); err != nil {
		return nil, err
	}
	sums, err := summarize(m)
	if err != nil {
		return nil, err
	}
	rep := &Report{byName: make(map[string]*KernelReport)}
	for _, f := range m.Functions() {
		if !f.Kernel {
			continue
		}
		kr := analyzeKernel(m, f, sums)
		rep.Kernels = append(rep.Kernels, kr)
		rep.byName[f.Name] = kr
	}
	return rep, nil
}

// rec is one static access record: an access site with its symbolic
// address, barrier interval and guard status.
type rec struct {
	// mask is the set of pointer params possibly dereferenced; param is
	// the single aliased param, or -1 when the mask is not a singleton.
	mask  uint64
	param int
	// off is the affine byte offset from the param base (meaningful only
	// when param >= 0); ⊤ makes the record opaque.
	off  expr
	kind AccKind
	// interval is the barrier interval of the enclosing block.
	interval int
	// guarded: the enclosing block is avoidable (some entry→ret path
	// skips it), so the access is not guaranteed to execute.
	guarded bool
}

// affine reports whether the record supports offset reasoning.
func (r *rec) affine() bool { return r.param >= 0 && r.off.ok }

func analyzeKernel(m *kir.Module, f *kir.Function, sums map[string]*funcSummary) *KernelReport {
	kr := &KernelReport{Kernel: f.Name, Barriers: countBarriers(f), UsesY: usesYDim(f)}
	kr.Args = argAccesses(f, sums[f.Name])

	intervals, divergent := barrierIntervals(f)
	kr.Divergent = divergent
	if !divergent {
		max := 0
		for bi, iv := range intervals {
			if iv < 0 {
				continue // unreachable block
			}
			// A block's last interval is its entry count plus its own
			// barriers.
			for _, ins := range f.Blocks[bi].Instrs {
				if ins.Op == kir.OpSyncthreads {
					iv++
				}
			}
			if iv > max {
				max = iv
			}
		}
		kr.Intervals = max + 1
	}

	// Callees with memory effects (or barriers) put their accesses
	// outside the affine domain; per-arg attributes remain exact, the
	// race verdict does not.
	bail := ""
	sum := sums[f.Name]
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op != kir.OpCall {
				continue
			}
			cs := sums[ins.Callee]
			if cs != nil && (cs.touchesMem || cs.barrier) {
				bail = fmt.Sprintf("calls %q which has memory or barrier effects", ins.Callee)
			}
		}
	}
	if sum != nil && sum.unattributed {
		bail = "memory access through an unattributed pointer"
	}

	recs, meltdown := collectRecs(f, sums, intervals, divergent, unavoidableBlocks(f))
	kr.Accesses = len(recs)
	if meltdown {
		bail = "abstract interpretation did not converge"
	}
	if bail != "" {
		kr.Verdict = VerdictUnknown
		kr.Reason = bail
		return kr
	}

	geoms := Geometries(kr.UsesY)
	unknownReason := ""
	for p := range f.Params {
		if !f.Params[p].Type.IsPtr() {
			continue
		}
		through := make([]*rec, 0, len(recs))
		for _, r := range recs {
			if r.mask&(1<<uint(p)) != 0 {
				through = append(through, r)
			}
		}
		for i := 0; i < len(through); i++ {
			for j := i; j < len(through); j++ {
				a, b := through[i], through[j]
				if !conflicts(a.kind, b.kind) {
					continue
				}
				if !a.affine() || !b.affine() || a.param != p || b.param != p {
					if unknownReason == "" {
						unknownReason = fmt.Sprintf("non-affine access pair through %q", f.Params[p].Name)
					}
					continue
				}
				if excludedPair(a, b, kr.UsesY, divergent) {
					continue
				}
				// Candidate race: try to realize it on the shared
				// geometries; claims need both sides guaranteed to
				// execute and fully concrete offsets.
				if !a.guarded && !b.guarded && !a.off.hasIV() && !b.off.hasIV() {
					if w := searchWitness(f, p, a, b, geoms, divergent); w != nil {
						kr.Verdict = VerdictRace
						kr.Witness = w
						kr.Reason = "concrete witness on shared geometry set"
						return kr
					}
				}
				if unknownReason == "" {
					unknownReason = fmt.Sprintf("unprovable access pair through %q", f.Params[p].Name)
				}
			}
		}
	}
	if unknownReason != "" {
		kr.Verdict = VerdictUnknown
		kr.Reason = unknownReason
		return kr
	}
	kr.Verdict = VerdictRaceFree
	kr.Reason = "all conflicting pairs proven disjoint"
	return kr
}

func countBarriers(f *kir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == kir.OpSyncthreads {
				n++
			}
		}
	}
	return n
}

// usesYDim reports whether the kernel body reads any y-dimension builtin.
func usesYDim(f *kir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != kir.OpBuiltin {
				continue
			}
			switch in.Builtin {
			case kir.ThreadIdxY, kir.BlockIdxY, kir.BlockDimY, kir.GridDimY, kir.GlobalIdY:
				return true
			}
		}
	}
	return false
}

// argAccesses converts a funcSummary into the public per-arg attributes.
func argAccesses(f *kir.Function, sum *funcSummary) []ArgAccess {
	out := make([]ArgAccess, len(f.Params))
	for i, p := range f.Params {
		out[i] = ArgAccess{Name: p.Name}
		if sum != nil {
			out[i].Read = sum.params[i]&bitRead != 0
			out[i].Write = sum.params[i]&bitWrite != 0
		}
	}
	return out
}

// barrierIntervals assigns each block the number of barriers executed on
// entry. divergent is set when two paths disagree for some block — then
// no consistent segmentation exists (barrier inside a loop or branch)
// and interval ordering must not be used.
func barrierIntervals(f *kir.Function) (in []int, divergent bool) {
	in = make([]int, len(f.Blocks))
	for i := range in {
		in[i] = -1
	}
	in[0] = 0
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := f.Blocks[bi]
		out := in[bi]
		for _, ins := range b.Instrs {
			if ins.Op == kir.OpSyncthreads {
				out++
			}
		}
		for _, si := range blockSuccs(b) {
			switch in[si] {
			case -1:
				in[si] = out
				work = append(work, si)
			case out:
				// consistent
			default:
				divergent = true
			}
		}
	}
	return in, divergent
}

// unavoidableBlocks marks blocks every terminating execution must pass:
// block B is unavoidable iff no entry→ret path exists that skips B.
func unavoidableBlocks(f *kir.Function) []bool {
	n := len(f.Blocks)
	out := make([]bool, n)
	seen := make([]bool, n)
	for bi := 0; bi < n; bi++ {
		for i := range seen {
			seen[i] = false
		}
		// DFS from entry avoiding bi; can we still reach a ret?
		reachedRet := false
		if bi != 0 {
			stack := []int{0}
			seen[0] = true
			for len(stack) > 0 && !reachedRet {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				b := f.Blocks[cur]
				if b.Term.Kind == kir.TermRet {
					reachedRet = true
					break
				}
				for _, si := range blockSuccs(b) {
					if si != bi && !seen[si] {
						seen[si] = true
						stack = append(stack, si)
					}
				}
			}
		}
		out[bi] = !reachedRet
	}
	return out
}
