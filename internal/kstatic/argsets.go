package kstatic

import (
	"fmt"

	"cusango/internal/kir"
)

// This file derives per-argument may-read/may-write sets independently of
// internal/kaccess: same lattice (per-local bitmask of possibly-aliased
// pointer parameters), deliberately different implementation (round-robin
// block sweeps instead of a worklist, recursion-free), so the two passes
// can audit each other. Because the lattice is finite and the transfer
// functions monotone, a correct implementation has a unique least
// fixpoint — the differential test asserts both passes land on it.

// accessBits is a per-parameter read/write bitset.
type accessBits uint8

const (
	bitRead accessBits = 1 << iota
	bitWrite
)

// funcSummary is the interprocedural summary of one function.
type funcSummary struct {
	// params holds may-access bits per formal parameter.
	params []accessBits
	// barrier: the function (transitively) executes syncthreads.
	barrier bool
	// unattributed: some memory access went through a pointer with an
	// empty alias mask (a null/zero pointer at runtime); the race
	// analysis must not claim race-freedom past it.
	unattributed bool
	// touchesMem: any load/store/atomic anywhere in the function or its
	// callees.
	touchesMem bool
}

func (s *funcSummary) equal(o *funcSummary) bool {
	if s.barrier != o.barrier || s.unattributed != o.unattributed || s.touchesMem != o.touchesMem {
		return false
	}
	for i := range s.params {
		if s.params[i] != o.params[i] {
			return false
		}
	}
	return true
}

const maxParams = 64

// summarize computes summaries for every function to a fixpoint over the
// call graph.
func summarize(m *kir.Module) (map[string]*funcSummary, error) {
	sums := make(map[string]*funcSummary)
	funcs := m.Functions()
	for _, f := range funcs {
		if len(f.Params) > maxParams {
			return nil, fmt.Errorf("kstatic: function %q has %d params, max %d", f.Name, len(f.Params), maxParams)
		}
		sums[f.Name] = &funcSummary{params: make([]accessBits, len(f.Params))}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			ns := summarizeFunc(f, sums)
			if !ns.equal(sums[f.Name]) {
				sums[f.Name] = ns
				changed = true
			}
		}
	}
	return sums, nil
}

// summarizeFunc recomputes one function's summary under the current
// callee summaries.
func summarizeFunc(f *kir.Function, sums map[string]*funcSummary) *funcSummary {
	nLocals := len(f.LocalTypes)
	in := make([][]uint64, len(f.Blocks))
	entry := make([]uint64, nLocals)
	for i, p := range f.Params {
		if p.Type.IsPtr() {
			entry[i] = 1 << uint(i)
		}
	}
	in[0] = entry

	// Round-robin sweeps until in-states stabilize. Masks only grow, so
	// this terminates.
	for {
		changed := false
		for bi, b := range f.Blocks {
			if in[bi] == nil {
				continue
			}
			out := make([]uint64, nLocals)
			copy(out, in[bi])
			maskTransfer(f, b, out, sums, nil)
			for _, si := range blockSuccs(b) {
				if in[si] == nil {
					in[si] = make([]uint64, nLocals)
					copy(in[si], out)
					changed = true
					continue
				}
				for i, m := range out {
					if in[si][i]|m != in[si][i] {
						in[si][i] |= m
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	sum := &funcSummary{params: make([]accessBits, len(f.Params))}
	scratch := make([]uint64, nLocals)
	for bi, b := range f.Blocks {
		if in[bi] == nil {
			continue // unreachable
		}
		copy(scratch, in[bi])
		maskTransfer(f, b, scratch, sums, sum)
	}
	return sum
}

// maskTransfer applies one block to the mask state; when sum is non-nil
// it also folds accesses and effects into the summary.
func maskTransfer(f *kir.Function, b *kir.Block, state []uint64, sums map[string]*funcSummary, sum *funcSummary) {
	record := func(mask uint64, bits accessBits) {
		if sum == nil {
			return
		}
		sum.touchesMem = true
		if mask == 0 {
			sum.unattributed = true
			return
		}
		for i := 0; mask != 0; i++ {
			if mask&1 != 0 {
				sum.params[i] |= bits
			}
			mask >>= 1
		}
	}
	for _, ins := range b.Instrs {
		switch ins.Op {
		case kir.OpMov, kir.OpGEP:
			state[ins.Dst] = state[ins.A]
		case kir.OpLoad:
			record(state[ins.A], bitRead)
			state[ins.Dst] = 0
		case kir.OpStore:
			record(state[ins.A], bitWrite)
		case kir.OpAtomicAddF:
			record(state[ins.A], bitRead|bitWrite)
		case kir.OpSyncthreads:
			if sum != nil {
				sum.barrier = true
			}
		case kir.OpCall:
			callee := sums[ins.Callee]
			var argUnion uint64
			for ai, a := range ins.Args {
				if callee != nil && ai < len(callee.params) {
					if bits := callee.params[ai]; bits != 0 {
						record(state[a], bits)
					}
				}
				argUnion |= state[a]
			}
			if sum != nil && callee != nil {
				sum.barrier = sum.barrier || callee.barrier
				sum.unattributed = sum.unattributed || callee.unattributed
				sum.touchesMem = sum.touchesMem || callee.touchesMem
			}
			if ins.Dst >= 0 {
				if f.LocalTypes[ins.Dst].IsPtr() {
					state[ins.Dst] = argUnion
				} else {
					state[ins.Dst] = 0
				}
			}
		default:
			// Value-producing scalar ops clear the destination's mask;
			// OpSyncthreads and OpStore (zero-valued Dst) are handled
			// above and must not reach here.
			if ins.Dst >= 0 {
				state[ins.Dst] = 0
			}
		}
	}
}

func blockSuccs(b *kir.Block) []int {
	switch b.Term.Kind {
	case kir.TermBr:
		return []int{b.Term.Target}
	case kir.TermCondBr:
		return []int{b.Term.Target, b.Term.Else}
	default:
		return nil
	}
}
