package kstatic

import "cusango/internal/kir"

// Witness search: a race verdict is only claimed when the colliding pair
// can be realized concretely on one of the shared small geometries — the
// same set the dynamic oracle replays, with integer parameters bound the
// same way (total thread count). Candidate records reaching here are
// affine, induction-free and unguarded, so their offsets evaluate
// exactly and the accesses are guaranteed to execute; the oracle must
// therefore observe the collision unless the launch itself errors.

// threadCtx builds the evaluation context of linear thread id lin under
// geometry g, mirroring the interpreter's thread linearization.
func threadCtx(lin int, g Geom, params []int64) evalCtx {
	gw := g.GridX * g.BlockX
	gx := lin % gw
	gy := lin / gw
	return evalCtx{
		tx: int64(gx % g.BlockX), bx: int64(gx / g.BlockX),
		ty: int64(gy % g.BlockY), by: int64(gy / g.BlockY),
		bdx: int64(g.BlockX), bdy: int64(g.BlockY),
		gdx: int64(g.GridX), gdy: int64(g.GridY),
		params: params,
	}
}

func blockOf(c *evalCtx) int64 { return c.by*c.gdx + c.bx }

// searchWitness looks for two distinct threads whose offsets coincide.
// Same-block pairs are skipped when barrier intervals order them (or
// when the segmentation is divergent and nothing can be claimed).
// Offsets must land inside the oracle's allocation so the witness stays
// dynamically confirmable. Deterministic: first hit in (geometry,
// thread1, thread2) order wins.
func searchWitness(f *kir.Function, p int, a, b *rec, geoms []Geom, divergent bool) *Witness {
	limit := int64(OracleElems) * int64(f.Params[p].Type.ElemSize())
	for _, g := range geoms {
		total := g.Threads()
		params := make([]int64, len(f.Params))
		for i, pr := range f.Params {
			if pr.Type == kir.TInt {
				params[i] = int64(total)
			}
		}
		for t1 := 0; t1 < total; t1++ {
			c1 := threadCtx(t1, g, params)
			o1, ok := a.off.eval(&c1)
			if !ok || o1 < 0 || o1 >= limit {
				continue
			}
			for t2 := 0; t2 < total; t2++ {
				if t2 == t1 {
					continue
				}
				c2 := threadCtx(t2, g, params)
				o2, ok := b.off.eval(&c2)
				if !ok || o1 != o2 {
					continue
				}
				if blockOf(&c1) == blockOf(&c2) {
					if divergent {
						continue // same-block ordering unknowable: claim nothing
					}
					if a.interval != b.interval {
						continue // ordered by a barrier, not a race
					}
				}
				return &Witness{
					Param:   f.Params[p].Name,
					Geom:    g,
					Thread1: t1,
					Thread2: t2,
					Offset:  o1,
					Kind1:   a.kind,
					Kind2:   b.kind,
				}
			}
		}
	}
	return nil
}
