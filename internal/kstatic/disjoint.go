package kstatic

// Pairwise disjointness proofs. For two access records a, b through the
// same pointer parameter, the checker asks: can distinct threads t1 ≠ t2
// of one launch satisfy off_a(t1) == off_b(t2)? If provably not — for
// every launch geometry — the pair is excluded.
//
// The question is encoded as one linear Diophantine equation per
// scenario (same block / distinct blocks) over difference variables.
// Every relaxation below only ENLARGES the solution set (uniform values
// and induction instances range over all of ℤ, thread-coordinate
// differences are unconstrained except where stated), so an "unsolvable"
// answer — the only one acted on — is a proof.
//
// Scenario same-block (Δblock = 0): globalId collapses to
// blockBase + threadIdx, so Δglobal = Δthread and the per-dimension
// thread coefficient is c[tid] + c[gid]. Distinctness requires some
// Δthread dimension nonzero.
//
// Scenario cross-block (x): ΔblockIdx.x ≠ 0, which (threads being
// in-range, 0 ≤ tid < blockDim) forces Δglobal.x ≠ 0 too. The pair is
// excluded for this scenario if the equation is unsolvable with
// Δglobal.x ≠ 0, or unsolvable with Δblock.x ≠ 0 — either kills every
// assignment having both nonzero. The y scenario is symmetric and only
// arises for kernels that read y builtins (others are analyzed under
// 1-D launches).

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func gcdAll(cs []int64) int64 {
	var g int64
	for _, c := range cs {
		g = gcd64(g, c)
	}
	return g
}

// anySolution reports whether Σ ci·xi = -K has any integer solution.
func anySolution(K int64, coeffs []int64) bool {
	g := gcdAll(coeffs)
	if g == 0 {
		return K == 0
	}
	return K%g == 0
}

// solvableWithSomeNonzero reports whether Σ ci·xi = -K has an integer
// solution in which at least one variable indexed by group is nonzero.
func solvableWithSomeNonzero(K int64, coeffs []int64, group []int) bool {
	for _, j := range group {
		m := coeffs[j]
		var gp int64 // gcd of the other coefficients
		for i, c := range coeffs {
			if i != j {
				gp = gcd64(gp, c)
			}
		}
		if gp == 0 {
			// Only xj can contribute: m·d = -K with d ≠ 0.
			if m == 0 {
				if K == 0 {
					return true
				}
			} else if K != 0 && K%m == 0 {
				return true
			}
			continue
		}
		// Need d ≠ 0 with K + m·d ≡ 0 (mod gp); solvable iff
		// gcd(m, gp) | K (the solution progression always contains a
		// nonzero d).
		if K%gcd64(m, gp) == 0 {
			return true
		}
	}
	return false
}

// threadKinds are the per-thread coordinate kinds, x then y.
var threadKinds = [...]termKind{tkTIDX, tkTIDY, tkBIDX, tkBIDY, tkGIDX, tkGIDY}

// equalThreadCoeffs reports whether a and b agree on every thread-varying
// coefficient — then the Δ-form collapses the pair to one equation over
// coordinate differences.
func equalThreadCoeffs(a, b expr) bool {
	for _, k := range threadKinds {
		if a.coeff(k, 0) != b.coeff(k, 0) {
			return false
		}
	}
	return true
}

// freeDiffVars collects the always-free variables of the Δ-form:
// coefficient differences of shared uniform terms (blockDim, gridDim,
// integer params — same value on both sides of one launch) plus every
// induction term of either side separately (the two accesses may sit at
// different iterations, so instances never cancel).
func freeDiffVars(a, b expr) []int64 {
	var out []int64
	seen := make(map[term]bool)
	for t, ca := range a.t {
		if t.kind.threadVarying() {
			continue
		}
		if t.kind == tkIV {
			out = append(out, ca)
			continue
		}
		seen[t] = true
		if d := ca - b.coeff(t.kind, t.idx); d != 0 {
			out = append(out, d)
		}
	}
	for t, cb := range b.t {
		if t.kind.threadVarying() {
			continue
		}
		if t.kind == tkIV {
			out = append(out, cb)
			continue
		}
		if !seen[t] && cb != 0 {
			out = append(out, -cb)
		}
	}
	return out
}

// excludedPair proves (or fails to prove) that records a and b can never
// collide across two distinct threads of any launch. Sound side:
// returning true is a proof under the execution model; returning false
// claims nothing.
func excludedPair(a, b *rec, usesY, divergent bool) bool {
	offA, offB := a.off, b.off

	if equalThreadCoeffs(offA, offB) {
		free := freeDiffVars(offA, offB)
		K := offA.c0 - offB.c0

		// Same-block scenario: ordered by barriers, or unsolvable.
		sameOK := !divergent && a.interval != b.interval
		if !sameOK {
			cTX := offA.coeff(tkTIDX, 0) + offA.coeff(tkGIDX, 0)
			cTY := offA.coeff(tkTIDY, 0) + offA.coeff(tkGIDY, 0)
			coeffs := append(append([]int64{}, free...), cTX, cTY)
			group := []int{len(free)}
			if usesY {
				group = append(group, len(free)+1)
			}
			sameOK = !solvableWithSomeNonzero(K, coeffs, group)
		}
		if !sameOK {
			return false
		}

		// Cross-block scenarios: per dimension, distinct blocks force
		// both Δblock and Δglobal nonzero in that dimension.
		coeffs := append(append([]int64{}, free...),
			offA.coeff(tkTIDX, 0), offA.coeff(tkTIDY, 0),
			offA.coeff(tkGIDX, 0), offA.coeff(tkGIDY, 0),
			offA.coeff(tkBIDX, 0), offA.coeff(tkBIDY, 0))
		n := len(free)
		iGX, iGY, iBX, iBY := n+2, n+3, n+4, n+5
		crossXExcluded := !solvableWithSomeNonzero(K, coeffs, []int{iGX}) ||
			!solvableWithSomeNonzero(K, coeffs, []int{iBX})
		if !crossXExcluded {
			return false
		}
		if usesY {
			crossYExcluded := !solvableWithSomeNonzero(K, coeffs, []int{iGY}) ||
				!solvableWithSomeNonzero(K, coeffs, []int{iBY})
			if !crossYExcluded {
				return false
			}
		}
		return true
	}

	// Unequal thread coefficients: both sides' coordinates are
	// independent variables; exclusion only through global
	// unsolvability (a GCD/parity argument: e.g. 2·gid vs 2·gid+1).
	K := offA.c0 - offB.c0
	var coeffs []int64
	for _, k := range threadKinds {
		coeffs = append(coeffs, offA.coeff(k, 0))
	}
	for _, k := range threadKinds {
		coeffs = append(coeffs, offB.coeff(k, 0))
	}
	coeffs = append(coeffs, freeDiffVars(offA, offB)...)
	return !anySolution(K, coeffs)
}
