package kstatic

import (
	"fmt"

	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// The dynamic differential oracle: run the kernel under the logging
// interpreter on every shared small geometry and report exact racing
// pairs from the access log. Soundness contract it audits:
//
//   - static race-free  ⇒  the oracle finds no race on any geometry;
//   - static race       ⇒  the oracle finds a race, provided the
//     witness geometry actually ran (was not Skipped).
//
// OracleElems sizes each pointer argument's buffer; integer arguments
// are bound to the launch's total thread count and float arguments to
// 1.0 — the exact binding witness search assumes.
const OracleElems = 1024

// OracleRace is one dynamically observed racing pair, attributed to a
// kernel parameter and element-aligned byte offset.
type OracleRace struct {
	Param   string
	Offset  int64
	Geom    Geom
	Thread1 int32
	Thread2 int32
	Kind1   AccessKind
	Kind2   AccessKind
}

// AccessKind here aliases the interpreter's event kind.
type AccessKind = kinterp.AccessKind

func (r *OracleRace) String() string {
	return fmt.Sprintf("%s+%d: thread %d (%s) vs thread %d (%s) at %s",
		r.Param, r.Offset, r.Thread1, r.Kind1, r.Thread2, r.Kind2, r.Geom)
}

// OracleResult aggregates one kernel's dynamic check over all geometries.
type OracleResult struct {
	// Races holds distinct (geometry, param, offset) racing sites, first
	// observed pair each, in deterministic order.
	Races []*OracleRace
	// Checked lists geometries that executed to completion.
	Checked []Geom
	// Skipped lists geometries whose launch errored (out-of-bounds under
	// the oracle's argument binding, step limit, ...): no claim there.
	Skipped []Geom
	// Events counts all logged accesses across checked geometries.
	Events int
}

// HasRace reports whether any geometry raced.
func (r *OracleResult) HasRace() bool { return len(r.Races) > 0 }

// CheckedGeom reports whether g executed to completion.
func (r *OracleResult) CheckedGeom(g Geom) bool {
	for _, c := range r.Checked {
		if c == g {
			return true
		}
	}
	return false
}

// RunOracle interprets the named kernel on every shared geometry with
// logging and scans the logs for conflicting unordered access pairs.
// The result is deterministic: serial execution, in-order pair scan.
func RunOracle(m *kir.Module, kernel string) (*OracleResult, error) {
	f := m.Func(kernel)
	if f == nil || !f.Kernel {
		return nil, fmt.Errorf("kstatic: no kernel %q", kernel)
	}
	eng, err := kinterp.New(m, kinterp.Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	res := &OracleResult{}
	for _, g := range Geometries(usesYDim(f)) {
		mem := memspace.New()
		total := g.Threads()
		bases := make([]memspace.Addr, len(f.Params))
		sizes := make([]int64, len(f.Params))
		args := make([]kinterp.Arg, len(f.Params))
		for i, p := range f.Params {
			switch {
			case p.Type.IsPtr():
				sizes[i] = int64(OracleElems) * p.Type.ElemSize()
				bases[i] = mem.Alloc(sizes[i], memspace.KindDevice)
				args[i] = kinterp.Ptr(bases[i])
			case p.Type == kir.TInt:
				args[i] = kinterp.Int(int64(total))
			default:
				args[i] = kinterp.F64(1)
			}
		}
		log, err := eng.LaunchLogged(kernel,
			kinterp.Dim2(g.GridX, g.GridY), kinterp.Dim2(g.BlockX, g.BlockY), args, mem)
		if err != nil {
			res.Skipped = append(res.Skipped, g)
			continue
		}
		res.Checked = append(res.Checked, g)
		res.Events += len(log.Events)
		scanLog(res, f, g, log, bases, sizes)
	}
	return res, nil
}

// scanLog finds conflicting unordered same-address pairs in one launch's
// log and appends them (deduplicated per racing site) to res.
func scanLog(res *OracleResult, f *kir.Function, g Geom, log *kinterp.AccessLog, bases []memspace.Addr, sizes []int64) {
	byAddr := make(map[memspace.Addr][]int32, len(log.Events))
	for i, ev := range log.Events {
		byAddr[ev.Addr] = append(byAddr[ev.Addr], int32(i))
	}
	type site struct {
		param  int
		offset int64
	}
	seen := make(map[site]bool)
	for i := range log.Events {
		e1 := &log.Events[i]
		for _, j := range byAddr[e1.Addr] {
			if int(j) <= i {
				continue
			}
			e2 := &log.Events[j]
			if e1.Thread == e2.Thread || !conflictEvents(e1.Kind, e2.Kind) {
				continue
			}
			if e1.Block == e2.Block && orderedEvents(e1, e2, log.Totals) {
				continue
			}
			param, off := attribute(f, bases, sizes, e1.Addr)
			s := site{param: param, offset: off}
			if seen[s] {
				continue
			}
			seen[s] = true
			name := fmt.Sprintf("addr(%#x)", uint64(e1.Addr))
			if param >= 0 {
				name = f.Params[param].Name
			}
			res.Races = append(res.Races, &OracleRace{
				Param: name, Offset: off, Geom: g,
				Thread1: e1.Thread, Thread2: e2.Thread,
				Kind1: e1.Kind, Kind2: e2.Kind,
			})
		}
	}
}

// conflictEvents mirrors the static conflict rule on dynamic kinds.
func conflictEvents(a, b AccessKind) bool {
	if a == kinterp.AccessRead && b == kinterp.AccessRead {
		return false
	}
	if a == kinterp.AccessAtomic && b == kinterp.AccessAtomic {
		return false
	}
	return true
}

// orderedEvents reports whether barrier intervals order two same-block
// events: they sit in different intervals AND the earlier-interval
// thread actually executed the separating barrier (its total barrier
// count exceeds its access's interval). Serial interpretation cannot
// observe ordering directly, so this reconstructs the happens-before a
// real lock-step execution would have.
func orderedEvents(e1, e2 *kinterp.AccessEvent, totals []int32) bool {
	if e1.Interval == e2.Interval {
		return false
	}
	lo := e1
	if e2.Interval < e1.Interval {
		lo = e2
	}
	if int(lo.Thread) >= len(totals) {
		return false
	}
	return totals[lo.Thread] >= lo.Interval+1
}

// attribute maps an absolute address back to (param index, byte offset);
// param is -1 when the address lies in no argument buffer.
func attribute(f *kir.Function, bases []memspace.Addr, sizes []int64, a memspace.Addr) (int, int64) {
	for i := range f.Params {
		if sizes[i] == 0 {
			continue
		}
		off := int64(a) - int64(bases[i])
		if off >= 0 && off < sizes[i] {
			return i, off
		}
	}
	return -1, int64(a)
}
