package kstatic

import (
	"math/bits"

	"cusango/internal/kir"
)

// The kernel-body abstract interpretation: every local carries an affine
// expr (scalars: the value; pointers: the byte offset from the aliased
// parameter's base) plus the pointer alias mask. States join at
// control-flow merges; loop-carried locals whose per-iteration delta is
// a constant are widened with an induction term (the delta becomes the
// term's coefficient), everything else saturates to ⊤.

type absState struct {
	vals []expr
	mask []uint64
}

func (s *absState) clone() *absState {
	c := &absState{vals: make([]expr, len(s.vals)), mask: make([]uint64, len(s.mask))}
	copy(c.mask, s.mask)
	for i, v := range s.vals {
		c.vals[i] = v.clone()
	}
	return c
}

func entryState(f *kir.Function) *absState {
	n := len(f.LocalTypes)
	st := &absState{vals: make([]expr, n), mask: make([]uint64, n)}
	for i := range st.vals {
		st.vals[i] = topE() // uninitialized locals hold arbitrary values
	}
	for i, p := range f.Params {
		switch {
		case p.Type.IsPtr():
			st.mask[i] = 1 << uint(i)
			st.vals[i] = constE(0)
		case p.Type == kir.TInt:
			st.vals[i] = symE(tkParam, i)
		}
	}
	return st
}

// widener allocates induction-term instances, one per (join block,
// local) pair, so re-joins of the same loop-carried local converge.
type widener struct {
	ivForKey map[[2]int]int
	count    int
}

func newWidener() *widener { return &widener{ivForKey: make(map[[2]int]int)} }

// joinInto merges src into dst at block bi, widening loop-carried
// constants into induction terms. Reports whether dst changed. When
// force is set, unequal values go straight to ⊤ (convergence backstop).
func joinInto(dst, src *absState, bi int, w *widener, force bool) bool {
	changed := false
	for i, m := range src.mask {
		if dst.mask[i]|m != dst.mask[i] {
			dst.mask[i] |= m
			changed = true
		}
	}
	for i := range src.vals {
		if dst.vals[i].equal(src.vals[i]) {
			continue
		}
		if !dst.vals[i].ok {
			continue // already ⊤
		}
		if containedIn(src.vals[i], dst.vals[i]) {
			// src already lies inside dst's induction lattice — e.g. the
			// loop-entry edge (i = 0) re-joining a widened head state
			// (i = 0 + stride·k), or the back edge once converged.
			continue
		}
		if containedIn(dst.vals[i], src.vals[i]) {
			// The incoming value strictly widens dst (a widened loop-head
			// state propagating into the body): adopt it.
			dst.vals[i] = src.vals[i].clone()
			changed = true
			continue
		}
		if !force {
			if d, ok := subE(src.vals[i], dst.vals[i]).isConst(); ok && d != 0 {
				key := [2]int{bi, i}
				if _, seen := w.ivForKey[key]; !seen {
					id := w.count
					w.count++
					w.ivForKey[key] = id
					nv := dst.vals[i].clone()
					if nv.t == nil {
						nv.t = make(map[term]int64, 1)
					}
					nv.t[term{kind: tkIV, idx: id}] = d
					dst.vals[i] = nv.norm()
					changed = true
					continue
				}
				// Already widened here and still not contained: the
				// stride is inconsistent — fall through to ⊤.
			}
		}
		dst.vals[i] = topE()
		changed = true
	}
	return changed
}

// containedIn reports src ⊑ dst when dst carries induction terms: dst
// denotes the lattice base + Σ ak·zk (zk ∈ ℤ); src is inside iff every
// coefficient of src − base — constant, shared symbols, and src's own
// free induction terms alike — is divisible by g = gcd(ak).
func containedIn(src, dst expr) bool {
	if !src.ok || !dst.ok {
		return false
	}
	var g int64
	for t, c := range dst.t {
		if t.kind == tkIV {
			g = gcd64(g, c)
		}
	}
	if g == 0 {
		return false
	}
	if (src.c0-dst.c0)%g != 0 {
		return false
	}
	for t, c := range dst.t {
		if t.kind == tkIV {
			continue
		}
		if (src.coeff(t.kind, t.idx)-c)%g != 0 {
			return false
		}
	}
	for t, c := range src.t {
		if t.kind == tkIV {
			continue
		}
		if dst.t[t] != 0 {
			continue // compared above
		}
		if c%g != 0 {
			return false
		}
	}
	return true
}

// transferAbs interprets one block over st. emit (optional) receives
// every memory access with its alias mask and symbolic byte offset;
// onBarrier (optional) fires per syncthreads so the collector can track
// intra-block interval advances.
func transferAbs(f *kir.Function, b *kir.Block, st *absState, sums map[string]*funcSummary,
	emit func(mask uint64, off expr, k AccKind), onBarrier func()) {
	for ii := range b.Instrs {
		ins := &b.Instrs[ii]
		switch ins.Op {
		case kir.OpConstI:
			st.vals[ins.Dst] = constE(ins.IImm)
			st.mask[ins.Dst] = 0
		case kir.OpConstF:
			st.vals[ins.Dst] = topE() // float values are not tracked
			st.mask[ins.Dst] = 0
		case kir.OpMov:
			st.vals[ins.Dst] = st.vals[ins.A].clone()
			st.mask[ins.Dst] = st.mask[ins.A]
		case kir.OpBinI:
			a, bb := st.vals[ins.A], st.vals[ins.B]
			var r expr
			switch ins.Bin {
			case kir.Add:
				r = addE(a, bb)
			case kir.Sub:
				r = subE(a, bb)
			case kir.Mul:
				r = mulE(a, bb)
			case kir.Shl:
				if c, ok := bb.isConst(); ok {
					r = shlE(a, c)
				} else {
					r = topE()
				}
			case kir.Div:
				if c, ok := bb.isConst(); ok && c == 1 {
					r = a.clone()
				} else {
					r = topE()
				}
			default: // Rem, Min, Max, And, Or, Shr
				r = topE()
			}
			st.vals[ins.Dst] = r
			st.mask[ins.Dst] = 0
		case kir.OpBuiltin:
			st.vals[ins.Dst] = builtinExpr(ins.Builtin)
			st.mask[ins.Dst] = 0
		case kir.OpGEP:
			es := f.LocalTypes[ins.A].ElemSize()
			off := addE(st.vals[ins.A], scaleE(st.vals[ins.B], es))
			st.mask[ins.Dst] = st.mask[ins.A]
			st.vals[ins.Dst] = off
		case kir.OpLoad:
			if emit != nil {
				emit(st.mask[ins.A], st.vals[ins.A], AccRead)
			}
			st.vals[ins.Dst] = topE()
			st.mask[ins.Dst] = 0
		case kir.OpStore:
			if emit != nil {
				emit(st.mask[ins.A], st.vals[ins.A], AccWrite)
			}
		case kir.OpAtomicAddF:
			if emit != nil {
				emit(st.mask[ins.A], st.vals[ins.A], AccAtomic)
			}
		case kir.OpSyncthreads:
			if onBarrier != nil {
				onBarrier()
			}
		case kir.OpCall:
			cs := sums[ins.Callee]
			var argUnion uint64
			for ai, a := range ins.Args {
				if emit != nil && cs != nil && ai < len(cs.params) {
					// Callee-side accesses surface as opaque records (the
					// kernel verdict already bails on memory-effect
					// callees; these keep the access count honest).
					if cs.params[ai]&bitRead != 0 {
						emit(st.mask[a], topE(), AccRead)
					}
					if cs.params[ai]&bitWrite != 0 {
						emit(st.mask[a], topE(), AccWrite)
					}
				}
				argUnion |= st.mask[a]
			}
			if ins.Dst >= 0 {
				st.vals[ins.Dst] = topE()
				if f.LocalTypes[ins.Dst].IsPtr() {
					st.mask[ins.Dst] = argUnion
				} else {
					st.mask[ins.Dst] = 0
				}
			}
		default:
			// OpBinF, OpCmpF, OpCmpI, OpI2F, OpF2I: untracked results.
			if ins.Dst >= 0 {
				st.vals[ins.Dst] = topE()
				st.mask[ins.Dst] = 0
			}
		}
	}
}

func builtinExpr(b kir.Builtin) expr {
	switch b {
	case kir.ThreadIdxX:
		return symE(tkTIDX, 0)
	case kir.ThreadIdxY:
		return symE(tkTIDY, 0)
	case kir.BlockIdxX:
		return symE(tkBIDX, 0)
	case kir.BlockIdxY:
		return symE(tkBIDY, 0)
	case kir.BlockDimX:
		return symE(tkBDX, 0)
	case kir.BlockDimY:
		return symE(tkBDY, 0)
	case kir.GridDimX:
		return symE(tkGDX, 0)
	case kir.GridDimY:
		return symE(tkGDY, 0)
	case kir.GlobalIdX:
		return symE(tkGIDX, 0)
	case kir.GlobalIdY:
		return symE(tkGIDY, 0)
	default:
		return topE()
	}
}

// collectRecs runs the value fixpoint and then one collection pass over
// the converged in-states, producing every static access record.
// meltdown reports a failure to converge (then no verdict may rely on
// the records).
func collectRecs(f *kir.Function, sums map[string]*funcSummary, intervals []int,
	divergent bool, unavoid []bool) ([]*rec, bool) {
	in := make([]*absState, len(f.Blocks))
	in[0] = entryState(f)
	w := newWidener()
	maxPasses := 8*len(f.Blocks) + 64
	converged := false
	for pass := 0; pass < maxPasses; pass++ {
		force := pass > maxPasses/2
		changed := false
		for bi, b := range f.Blocks {
			if in[bi] == nil {
				continue
			}
			out := in[bi].clone()
			transferAbs(f, b, out, sums, nil, nil)
			for _, si := range blockSuccs(b) {
				if in[si] == nil {
					in[si] = out.clone()
					changed = true
					continue
				}
				if joinInto(in[si], out, si, w, force) {
					changed = true
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}

	var recs []*rec
	for bi, b := range f.Blocks {
		if in[bi] == nil {
			continue // unreachable
		}
		iv := 0
		if !divergent && intervals[bi] >= 0 {
			iv = intervals[bi]
		}
		guarded := !unavoid[bi]
		st := in[bi].clone()
		emit := func(mask uint64, off expr, k AccKind) {
			r := &rec{mask: mask, param: -1, off: topE(), kind: k, interval: iv, guarded: guarded}
			if mask != 0 && mask&(mask-1) == 0 {
				r.param = bits.TrailingZeros64(mask)
				r.off = off.clone()
			}
			recs = append(recs, r)
		}
		transferAbs(f, b, st, sums, emit, func() { iv++ })
	}
	return recs, !converged
}
