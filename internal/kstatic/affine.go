package kstatic

// The affine abstract domain: integer expressions of the form
//
//	c0 + Σ ci·ti
//
// where each ti is a symbolic term — a thread-geometry builtin
// (threadIdx/blockIdx/globalId, which vary per thread), a uniform
// quantity (blockDim/gridDim or an integer kernel parameter, equal for
// every thread of a launch), or a loop induction instance introduced by
// widening (an unconstrained integer multiplier: the term's coefficient
// is the loop stride). Anything that cannot be expressed exactly is ⊤
// (ok == false); the checker never approximates a value it keeps.

// termKind enumerates symbolic term kinds. Thread-varying kinds come
// first so threadVarying() is a simple comparison.
type termKind uint8

const (
	tkTIDX termKind = iota
	tkTIDY
	tkBIDX
	tkBIDY
	tkGIDX
	tkGIDY
	// uniform per launch from here on
	tkBDX
	tkBDY
	tkGDX
	tkGDY
	// tkParam is an integer kernel parameter (term.idx = param index).
	tkParam
	// tkIV is a loop induction instance (term.idx = instance id); it
	// ranges over all integers, a sound superset of the real trip counts.
	tkIV
)

// threadVarying reports whether the term differs between threads of one
// launch.
func (k termKind) threadVarying() bool { return k <= tkGIDY }

// term is one symbolic variable.
type term struct {
	kind termKind
	idx  int
}

// expr is an affine expression or ⊤.
type expr struct {
	ok bool
	c0 int64
	t  map[term]int64 // nil for constant expressions
}

// maxCoeff bounds coefficient magnitudes; anything beyond saturates to ⊤
// so the int64 arithmetic below cannot overflow.
const maxCoeff = int64(1) << 40

func topE() expr { return expr{} }

func constE(c int64) expr {
	if c > maxCoeff || c < -maxCoeff {
		return topE()
	}
	return expr{ok: true, c0: c}
}

func symE(k termKind, idx int) expr {
	return expr{ok: true, t: map[term]int64{{kind: k, idx: idx}: 1}}
}

func (e expr) clone() expr {
	if !e.ok || e.t == nil {
		return e
	}
	t := make(map[term]int64, len(e.t))
	for k, v := range e.t {
		t[k] = v
	}
	return expr{ok: true, c0: e.c0, t: t}
}

// isConst returns the constant value when the expression has no terms.
func (e expr) isConst() (int64, bool) {
	if !e.ok || len(e.t) != 0 {
		return 0, false
	}
	return e.c0, true
}

// singleTerm matches c·t with no constant part.
func (e expr) singleTerm() (term, int64, bool) {
	if !e.ok || e.c0 != 0 || len(e.t) != 1 {
		return term{}, 0, false
	}
	for k, v := range e.t {
		return k, v, true
	}
	return term{}, 0, false
}

func (e expr) coeff(k termKind, idx int) int64 {
	if e.t == nil {
		return 0
	}
	return e.t[term{kind: k, idx: idx}]
}

// hasIV reports whether any induction-instance term remains: such
// expressions can be proven disjoint but never drive a race witness (the
// instance value is not tied to a concrete execution).
func (e expr) hasIV() bool {
	for k := range e.t {
		if k.kind == tkIV {
			return true
		}
	}
	return false
}

func (e expr) equal(o expr) bool {
	if e.ok != o.ok {
		return false
	}
	if !e.ok {
		return true
	}
	if e.c0 != o.c0 || len(e.t) != len(o.t) {
		return false
	}
	for k, v := range e.t {
		if o.t[k] != v {
			return false
		}
	}
	return true
}

// norm drops zero coefficients and saturates to ⊤ on overflow.
func (e expr) norm() expr {
	if !e.ok {
		return e
	}
	if e.c0 > maxCoeff || e.c0 < -maxCoeff {
		return topE()
	}
	for k, v := range e.t {
		if v == 0 {
			delete(e.t, k)
			continue
		}
		if v > maxCoeff || v < -maxCoeff {
			return topE()
		}
	}
	if len(e.t) == 0 {
		e.t = nil
	}
	return e
}

func addE(a, b expr) expr {
	if !a.ok || !b.ok {
		return topE()
	}
	r := a.clone()
	r.c0 += b.c0
	for k, v := range b.t {
		if r.t == nil {
			r.t = make(map[term]int64, len(b.t))
		}
		r.t[k] += v
	}
	return r.norm()
}

func negE(a expr) expr { return scaleE(a, -1) }

func subE(a, b expr) expr { return addE(a, negE(b)) }

func scaleE(a expr, c int64) expr {
	if !a.ok {
		return topE()
	}
	if c > maxCoeff || c < -maxCoeff {
		return topE()
	}
	r := a.clone()
	r.c0 *= c
	for k := range r.t {
		r.t[k] *= c
	}
	return r.norm()
}

// mulE multiplies two affine expressions, staying affine when one side is
// constant. One non-constant product is recognized exactly:
// blockIdx·blockDim rewrites to globalId − threadIdx (per dimension),
// which keeps the ubiquitous `bid*bdim + tid` indexing affine.
func mulE(a, b expr) expr {
	if c, ok := a.isConst(); ok {
		return scaleE(b, c)
	}
	if c, ok := b.isConst(); ok {
		return scaleE(a, c)
	}
	if r, ok := bidTimesBdim(a, b); ok {
		return r
	}
	if r, ok := bidTimesBdim(b, a); ok {
		return r
	}
	return topE()
}

// bidTimesBdim matches (c·blockIdx.d) × (blockDim.d) and returns
// c·(globalId.d − threadIdx.d).
func bidTimesBdim(a, b expr) (expr, bool) {
	ta, ca, okA := a.singleTerm()
	tb, cb, okB := b.singleTerm()
	if !okA || !okB || cb != 1 {
		return expr{}, false
	}
	switch {
	case ta.kind == tkBIDX && tb.kind == tkBDX:
		return scaleE(subE(symE(tkGIDX, 0), symE(tkTIDX, 0)), ca), true
	case ta.kind == tkBIDY && tb.kind == tkBDY:
		return scaleE(subE(symE(tkGIDY, 0), symE(tkTIDY, 0)), ca), true
	}
	return expr{}, false
}

// shlE is a·2^b for constant shifts.
func shlE(a expr, sh int64) expr {
	if sh < 0 || sh > 40 {
		return topE()
	}
	return scaleE(a, int64(1)<<uint(sh))
}

// evalCtx binds symbols to concrete values for witness search.
type evalCtx struct {
	tx, ty, bx, by int64
	bdx, bdy       int64
	gdx, gdy       int64
	params         []int64 // integer kernel parameter bindings
}

// eval computes the concrete value, failing on ⊤ or induction terms.
func (e expr) eval(c *evalCtx) (int64, bool) {
	if !e.ok {
		return 0, false
	}
	v := e.c0
	for k, co := range e.t {
		var s int64
		switch k.kind {
		case tkTIDX:
			s = c.tx
		case tkTIDY:
			s = c.ty
		case tkBIDX:
			s = c.bx
		case tkBIDY:
			s = c.by
		case tkGIDX:
			s = c.bx*c.bdx + c.tx
		case tkGIDY:
			s = c.by*c.bdy + c.ty
		case tkBDX:
			s = c.bdx
		case tkBDY:
			s = c.bdy
		case tkGDX:
			s = c.gdx
		case tkGDY:
			s = c.gdy
		case tkParam:
			if k.idx >= len(c.params) {
				return 0, false
			}
			s = c.params[k.idx]
		default: // tkIV
			return 0, false
		}
		v += co * s
	}
	return v, true
}
