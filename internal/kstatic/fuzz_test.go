package kstatic_test

import (
	"testing"

	"cusango/internal/kir"
	"cusango/internal/kstatic"
)

// FuzzKstatic feeds arbitrary KIR text through parse → static analysis:
// the checker must never panic and must be deterministic — two runs over
// the same module render identical reports.
func FuzzKstatic(f *testing.F) {
	f.Add("kernel k(f64* a) {\n  locals %1:i64 %2:f64* %3:f64\nb0:\n  %1 = threadIdx.x\n  %2 = gep %0, %1\n  %3 = load %2\n  store %2, %3\n  ret\n}\n")
	f.Add("kernel k(f64* a) {\n  locals %1:i64 %2:f64 %3:f64* %4:f64\nb0:\n  %1 = globalId.x\n  %2 = constf 1\n  %3 = gep %0, %1\n  store %3, %2\n  syncthreads\n  %4 = load %3\n  ret\n}\n")
	f.Add("kernel k(f64* a, i64 n) {\n  locals %2:i64 %3:i64 %4:i64 %5:f64* %6:f64\nb0:\n  %2 = globalId.x\n  %3 = consti 2\n  %4 = muli %2, %3\n  %5 = gep %0, %4\n  %6 = constf 0\n  store %5, %6\n  ret\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := kir.Parse(src)
		if err != nil {
			return
		}
		r1, err := kstatic.Analyze(m)
		if err != nil {
			return // verifier rejections are fine; panics are not
		}
		r2, err := kstatic.Analyze(m)
		if err != nil {
			t.Fatalf("second Analyze failed after first succeeded: %v", err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("nondeterministic analysis:\n%s\nvs\n%s", r1, r2)
		}
	})
}
