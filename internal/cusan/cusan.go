// Package cusan is the reproduction's core contribution: the CuSan
// runtime (paper §IV), which receives the compiler-inserted CUDA API
// callbacks (cuda.Hooks) and exposes CUDA's concurrency, synchronization,
// and memory-access semantics to the race detector via TSan's fiber and
// annotation API.
//
// Concurrency model (paper §IV-A):
//   - every CUDA stream is a TSan fiber, mirroring the device's
//     independent execution relative to the host;
//   - a kernel launch switches to the stream's fiber, annotates each
//     pointer argument's memory range with the read/write attribute
//     computed by the device-code analysis (extent from TypeART), starts
//     a happens-before arc on the stream, and switches back;
//   - explicit synchronization (device/stream/event sync, stream query)
//     terminates arcs with happens-after on the host;
//   - implicit synchronization (memcpy/memset/free) follows the
//     semantics table in the cuda package;
//   - legacy default-stream semantics insert the logical barriers of
//     paper Fig. 3 between the default stream and blocking user streams.
package cusan

import (
	"fmt"
	"strings"

	"cusango/internal/cuda"
	"cusango/internal/kinterp"
	"cusango/internal/memspace"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// Sync-key classes (disjoint key spaces inside the detector).
const (
	keyClassStreamArc uint8 = 1
	keyClassEvent     uint8 = 2
)

// Options tunes the runtime; zero value is the paper's default behaviour.
type Options struct {
	// DisableMemoryTracking turns off kernel/memop memory-range
	// annotations while keeping all fiber and synchronization modeling —
	// the paper's §V-B ablation ("completely removing memory annotations
	// ... brings the overhead down to almost vanilla").
	DisableMemoryTracking bool
	// BoundaryBytes, when > 0, annotates only the first and last
	// BoundaryBytes of each kernel argument range instead of the whole
	// allocation — the §VI-D future-work optimization of focusing on the
	// boundary regions exchanged via MPI. Races in the interior of an
	// allocation can be missed in this mode.
	BoundaryBytes int64
	// PerThreadDefaultStream models --default-stream=per-thread
	// (paper §VI-B): the default stream loses its legacy barrier
	// semantics against user streams.
	PerThreadDefaultStream bool
}

// Counters are the CUDA-side event counters CuSan reports (Table I).
// The TSan-related fields count only the calls CuSan itself issued, so
// they are separable from MUST's annotations when both tools run.
// The JSON tags define the counter export schema consumed by the perf
// harness's BENCH_*.json canonical sections (internal/perf); renaming
// a tag is a schema change and must bump perf.FormatVersion.
type Counters struct {
	Streams     int64 `json:"streams"`
	Memsets     int64 `json:"memsets"`
	Memcpys     int64 `json:"memcpys"`
	SyncCalls   int64 `json:"sync_calls"`
	KernelCalls int64 `json:"kernel_calls"`
	EventsSeen  int64 `json:"events_seen"`
	// ExtentMisses counts pointer arguments whose allocation extent could
	// not be resolved through TypeART (annotation skipped).
	ExtentMisses int64 `json:"extent_misses"`

	// TSan API calls issued by CuSan (Table I, lower half).
	FiberSwitches int64 `json:"fiber_switches"`
	HBAnnotations int64 `json:"hb_annotations"`
	HAAnnotations int64 `json:"ha_annotations"`
	ReadRanges    int64 `json:"read_ranges"`
	WriteRanges   int64 `json:"write_ranges"`
	ReadBytes     int64 `json:"read_bytes"`
	WriteBytes    int64 `json:"write_bytes"`

	// Shadow range-engine counters, snapshotted from the sanitizer at
	// Counters() time (Table I extension: what the annotation traffic
	// above costs inside the detector). Unlike the call counters these
	// cover all annotation sources sharing the sanitizer, and stay zero
	// under the slow reference engine.
	EnginePages        int64 `json:"engine_pages"`
	EngineGranules     int64 `json:"engine_granules"`
	EngineFastGranules int64 `json:"engine_fast_granules"`
	EngineSameGranules int64 `json:"engine_same_granules"`
	RangeCacheHits     int64 `json:"range_cache_hits"`
	RangeCacheMisses   int64 `json:"range_cache_misses"`
	// ReleasesBatched counts release annotations satisfied by the
	// detector's epoch-batched fast path (one clock-component store
	// instead of a full vector join).
	ReleasesBatched int64 `json:"releases_batched"`
	// BatchOps counts range annotations submitted through the batched
	// parallel checking entry point (kernel-argument batches).
	BatchOps int64 `json:"batch_ops"`
	// ShadowPagesShed counts pages dropped by the sanitizer's shadow
	// budget; non-zero means the run traded completeness (possible
	// missed races) for bounded memory.
	ShadowPagesShed int64 `json:"shadow_pages_shed"`
}

// CountersFromStats lifts a raw sanitizer snapshot into the exported
// counter schema: the annotation-call and range-engine rows that exist
// outside a CuSan runtime (used by detector-only workloads such as the
// perf harness's range-engine sweep).
func CountersFromStats(st tsan.Stats) Counters {
	return Counters{
		FiberSwitches:      st.FiberSwitches,
		HBAnnotations:      st.HappensBefore,
		HAAnnotations:      st.HappensAfter,
		ReadRanges:         st.ReadRangeCalls,
		WriteRanges:        st.WriteRangeCalls,
		ReadBytes:          st.ReadBytes,
		WriteBytes:         st.WriteBytes,
		EnginePages:        st.EnginePages,
		EngineGranules:     st.EngineGranules,
		EngineFastGranules: st.EngineFastGranules,
		EngineSameGranules: st.EngineSameGranules,
		RangeCacheHits:     st.RangeCacheHits,
		RangeCacheMisses:   st.RangeCacheMisses,
		ReleasesBatched:    st.ReleasesBatched,
		BatchOps:           st.BatchOps,
		ShadowPagesShed:    st.ShadowPagesShed,
	}
}

// AvgReadKB returns the average bytes per CuSan read-range call in KiB.
func (c *Counters) AvgReadKB() float64 {
	if c.ReadRanges == 0 {
		return 0
	}
	return float64(c.ReadBytes) / float64(c.ReadRanges) / 1024
}

// AvgWriteKB returns the average bytes per CuSan write-range call in KiB.
func (c *Counters) AvgWriteKB() float64 {
	if c.WriteRanges == 0 {
		return 0
	}
	return float64(c.WriteBytes) / float64(c.WriteRanges) / 1024
}

type streamState struct {
	stream *Stream
	fiber  *tsan.Fiber
}

// Stream mirrors the identity cusan needs from a cuda stream.
type Stream struct {
	ID          int
	NonBlocking bool
	Default     bool
}

// Runtime is the per-rank CuSan runtime. Install it on a cuda.Device via
// SetHooks (the toolchain's "link against the CuSan runtime" step).
type Runtime struct {
	san  *tsan.Sanitizer
	ta   *typeart.Runtime
	opts Options

	streams map[int]*streamState
	// events maps event id -> last recorded stream id (paper §IV-A:
	// "a lookup table for CUDA events to its stream").
	events map[int]int
	// memAttrs is the memory-creation-attribute lookup (paper §IV-A).
	memAttrs map[memspace.Addr]memspace.Kind

	ctr Counters

	// batchOps is the reusable kernel-argument annotation batch buffer.
	batchOps []tsan.RangeOp

	// access-info caches, so hot paths don't allocate.
	kernelInfos map[string][]*tsan.AccessInfo
	memcpyRead  *tsan.AccessInfo
	memcpyWrite *tsan.AccessInfo
	memsetWrite *tsan.AccessInfo
	freeWrite   *tsan.AccessInfo
}

var _ cuda.Hooks = (*Runtime)(nil)

// New creates a CuSan runtime bound to a sanitizer and a TypeART runtime
// (required for allocation extents, paper §II-C/§IV).
func New(san *tsan.Sanitizer, ta *typeart.Runtime, opts Options) *Runtime {
	r := &Runtime{
		san:         san,
		ta:          ta,
		opts:        opts,
		streams:     make(map[int]*streamState),
		events:      make(map[int]int),
		memAttrs:    make(map[memspace.Addr]memspace.Kind),
		kernelInfos: make(map[string][]*tsan.AccessInfo),
		memcpyRead:  &tsan.AccessInfo{Site: "cudaMemcpy", Object: "source"},
		memcpyWrite: &tsan.AccessInfo{Site: "cudaMemcpy", Object: "destination"},
		memsetWrite: &tsan.AccessInfo{Site: "cudaMemset", Object: "destination"},
		freeWrite:   &tsan.AccessInfo{Site: "cudaFree", Object: "allocation"},
	}
	// The default stream is always tracked (paper §IV-A); the stream
	// counter reports tracked streams, so it starts at one.
	r.trackStream(&Stream{ID: 0, Default: true})
	r.ctr.Streams = 1
	return r
}

// Counters returns a snapshot of the CUDA event counters, with the
// sanitizer's range-engine counters folded in.
func (r *Runtime) Counters() Counters {
	c := r.ctr
	st := r.san.Stats()
	c.EnginePages = st.EnginePages
	c.EngineGranules = st.EngineGranules
	c.EngineFastGranules = st.EngineFastGranules
	c.EngineSameGranules = st.EngineSameGranules
	c.RangeCacheHits = st.RangeCacheHits
	c.RangeCacheMisses = st.RangeCacheMisses
	c.ReleasesBatched = st.ReleasesBatched
	c.BatchOps = st.BatchOps
	c.ShadowPagesShed = st.ShadowPagesShed
	return c
}

// Sanitizer exposes the underlying detector (for reports and TSan stats).
func (r *Runtime) Sanitizer() *tsan.Sanitizer { return r.san }

// MemAttr returns the recorded creation attribute of an allocation base.
func (r *Runtime) MemAttr(a memspace.Addr) (memspace.Kind, bool) {
	k, ok := r.memAttrs[a]
	return k, ok
}

func (r *Runtime) trackStream(s *Stream) *streamState {
	st, ok := r.streams[s.ID]
	if ok {
		return st
	}
	name := "CUDA default stream"
	if !s.Default {
		name = fmt.Sprintf("CUDA stream %d", s.ID)
	}
	st = &streamState{stream: s, fiber: r.san.CreateFiber(name)}
	r.streams[s.ID] = st
	return st
}

func streamOf(s *cuda.Stream) *Stream {
	return &Stream{ID: s.ID(), NonBlocking: s.NonBlocking(), Default: s.IsDefault()}
}

func arcKey(streamID int) tsan.SyncKey { return tsan.MakeKey(keyClassStreamArc, uint64(streamID)) }

// Counted TSan call wrappers: Table I reports the TSan API traffic CuSan
// generates, independent of other tools sharing the sanitizer.

func (r *Runtime) switchTo(f *tsan.Fiber, sync bool) {
	r.ctr.FiberSwitches++
	if sync {
		r.san.SwitchFiberSync(f)
	} else {
		r.san.SwitchFiber(f)
	}
}

func (r *Runtime) release(key tsan.SyncKey) {
	r.ctr.HBAnnotations++
	r.san.HappensBefore(key)
}

func (r *Runtime) acquire(key tsan.SyncKey) {
	r.ctr.HAAnnotations++
	r.san.HappensAfter(key)
}
func eventKey(eventID int) tsan.SyncKey { return tsan.MakeKey(keyClassEvent, uint64(eventID)) }

// blockingPeers returns every tracked stream that participates in legacy
// default-stream barriers with the given stream: for the default stream
// these are all blocking (non-"non-blocking") user streams; for a
// blocking user stream it is the default stream. Non-blocking streams
// have no peers, and per-thread-default-stream mode disables the
// barriers entirely (paper §III-A, §VI-B).
func (r *Runtime) blockingPeers(s *Stream) []*streamState {
	if r.opts.PerThreadDefaultStream || s.NonBlocking {
		return nil
	}
	var peers []*streamState
	if s.Default {
		for id, st := range r.streams {
			if id != 0 && !st.stream.NonBlocking {
				peers = append(peers, st)
			}
		}
	} else {
		peers = append(peers, r.streams[0])
	}
	return peers
}

// --- stream / event lifecycle hooks ------------------------------------

// StreamCreated tracks a user stream on demand at creation time.
func (r *Runtime) StreamCreated(s *cuda.Stream) {
	r.ctr.Streams++
	r.trackStream(streamOf(s))
}

// StreamDestroyed keeps the fiber alive (past accesses may still race)
// but forgets the stream for barrier purposes.
func (r *Runtime) StreamDestroyed(s *cuda.Stream) {
	delete(r.streams, s.ID())
}

// EventCreated notes the event.
func (r *Runtime) EventCreated(e *cuda.Event) { r.ctr.EventsSeen++ }

// EventDestroyed forgets the event->stream association.
func (r *Runtime) EventDestroyed(e *cuda.Event) { delete(r.events, e.ID()) }

// --- device-side operations --------------------------------------------

// enterStream performs the host->fiber transition for an operation
// enqueued on a stream. The switch carries synchronization in the
// host->device direction (CUDA guarantees prior host work is visible to
// the enqueued operation), then legacy default-stream barriers are
// applied by acquiring every blocking peer's arc.
func (r *Runtime) enterStream(st *streamState) {
	r.switchTo(st.fiber, true)
	for _, peer := range r.blockingPeers(st.stream) {
		r.acquire(arcKey(peer.stream.ID))
	}
}

// leaveStream starts the operation's happens-before arc on the stream
// and switches back to the host fiber. A default-stream operation also
// starts an arc on every blocking user stream, because default-stream
// work blocks all succeeding operations on those streams (paper §V-A,
// Table I discussion).
func (r *Runtime) leaveStream(st *streamState) {
	r.release(arcKey(st.stream.ID))
	for _, peer := range r.blockingPeers(st.stream) {
		if st.stream.Default {
			r.release(arcKey(peer.stream.ID))
		}
	}
	r.switchTo(r.san.HostFiber(), false)
}

// annotateRange marks [a, a+n) with the given access on the current
// fiber, honouring the memory-tracking ablation and the boundary-only
// optimization.
func (r *Runtime) annotateRange(a memspace.Addr, n int64, write bool, info *tsan.AccessInfo) {
	if r.opts.DisableMemoryTracking || n <= 0 {
		return
	}
	if b := r.opts.BoundaryBytes; b > 0 && n > 2*b {
		if write {
			r.ctr.WriteRanges += 2
			r.ctr.WriteBytes += 2 * b
			r.san.WriteRange(a, b, info)
			r.san.WriteRange(a+memspace.Addr(n-b), b, info)
		} else {
			r.ctr.ReadRanges += 2
			r.ctr.ReadBytes += 2 * b
			r.san.ReadRange(a, b, info)
			r.san.ReadRange(a+memspace.Addr(n-b), b, info)
		}
		return
	}
	if write {
		r.ctr.WriteRanges++
		r.ctr.WriteBytes += n
		r.san.WriteRange(a, n, info)
	} else {
		r.ctr.ReadRanges++
		r.ctr.ReadBytes += n
		r.san.ReadRange(a, n, info)
	}
}

// appendRangeOp queues one range annotation for a kernel-argument
// batch, applying the same ablation and boundary-only splitting (and
// counter accounting) as annotateRange.
func (r *Runtime) appendRangeOp(ops []tsan.RangeOp, a memspace.Addr, n int64,
	write bool, info *tsan.AccessInfo) []tsan.RangeOp {
	if r.opts.DisableMemoryTracking || n <= 0 {
		return ops
	}
	if b := r.opts.BoundaryBytes; b > 0 && n > 2*b {
		if write {
			r.ctr.WriteRanges += 2
			r.ctr.WriteBytes += 2 * b
		} else {
			r.ctr.ReadRanges += 2
			r.ctr.ReadBytes += 2 * b
		}
		return append(ops,
			tsan.RangeOp{Addr: a, Len: b, Write: write, Info: info},
			tsan.RangeOp{Addr: a + memspace.Addr(n-b), Len: b, Write: write, Info: info})
	}
	if write {
		r.ctr.WriteRanges++
		r.ctr.WriteBytes += n
	} else {
		r.ctr.ReadRanges++
		r.ctr.ReadBytes += n
	}
	return append(ops, tsan.RangeOp{Addr: a, Len: n, Write: write, Info: info})
}

// PreKernelLaunch implements the kernel-call protocol of paper §IV-A(b).
// The argument annotations of one launch are all issued by the stream
// fiber at one epoch, so they are submitted as a single AnnotateBatch —
// the sanitizer checks them in parallel when its page index is sharded,
// and one at a time otherwise.
func (r *Runtime) PreKernelLaunch(l *cuda.KernelLaunch) {
	r.ctr.KernelCalls++
	st := r.trackStream(streamOf(l.Stream))
	infos := r.kernelArgInfos(l)
	r.enterStream(st)
	ops := r.batchOps[:0]
	for i, arg := range l.Args {
		if arg.Kind != kinterp.ArgPtr || arg.Ptr == 0 {
			continue
		}
		acc := l.Access[i]
		if !acc.MayRead() && !acc.MayWrite() {
			continue
		}
		extent, ok := r.ta.RemainingBytes(arg.Ptr)
		if !ok {
			r.ctr.ExtentMisses++
			continue
		}
		if acc.MayRead() {
			ops = r.appendRangeOp(ops, arg.Ptr, extent, false, infos[i])
		}
		if acc.MayWrite() {
			ops = r.appendRangeOp(ops, arg.Ptr, extent, true, infos[i])
		}
	}
	if len(ops) > 0 {
		r.san.AnnotateBatch(ops)
	}
	r.batchOps = ops[:0]
	r.leaveStream(st)
}

func (r *Runtime) kernelArgInfos(l *cuda.KernelLaunch) []*tsan.AccessInfo {
	infos, ok := r.kernelInfos[l.Name]
	if ok {
		return infos
	}
	infos = make([]*tsan.AccessInfo, len(l.Params))
	for i, p := range l.Params {
		infos[i] = &tsan.AccessInfo{
			Site:   "kernel " + l.Name,
			Object: fmt.Sprintf("arg %d (%s)", i, p.Name),
		}
	}
	r.kernelInfos[l.Name] = infos
	return infos
}

// PreMemcpy models cudaMemcpy(Async): the copy executes on its stream
// (reading src, writing dst) and, when the semantics table says so,
// synchronizes the host (paper §IV-A(d)).
func (r *Runtime) PreMemcpy(op *cuda.MemOp) {
	r.ctr.Memcpys++
	st := r.trackStream(streamOf(op.Stream))
	r.enterStream(st)
	r.annotateRange(op.Src, op.Bytes, false, r.memcpyRead)
	r.annotateRange(op.Dst, op.Bytes, true, r.memcpyWrite)
	r.leaveStream(st)
	if op.SyncsHost {
		r.synchronizeStream(st)
	}
}

// PreMemset models cudaMemset(Async).
func (r *Runtime) PreMemset(op *cuda.MemOp) {
	r.ctr.Memsets++
	st := r.trackStream(streamOf(op.Stream))
	r.enterStream(st)
	r.annotateRange(op.Dst, op.Bytes, true, r.memsetWrite)
	r.leaveStream(st)
	if op.SyncsHost {
		r.synchronizeStream(st)
	}
}

// --- synchronization hooks ----------------------------------------------

// synchronizeStream terminates the stream's happens-before arc on the
// host. Synchronizing the default stream also terminates the arcs of all
// blocking user streams, which must have completed (paper §IV-A(e)).
func (r *Runtime) synchronizeStream(st *streamState) {
	r.acquire(arcKey(st.stream.ID))
	if st.stream.Default {
		for _, peer := range r.blockingPeers(st.stream) {
			r.acquire(arcKey(peer.stream.ID))
		}
	}
}

// PreStreamSynchronize handles cudaStreamSynchronize.
func (r *Runtime) PreStreamSynchronize(s *cuda.Stream) {
	r.ctr.SyncCalls++
	r.synchronizeStream(r.trackStream(streamOf(s)))
}

// PreStreamQuery handles cudaStreamQuery: a successful query can be used
// as a busy-wait, so it must count as synchronization (paper §III-B1).
func (r *Runtime) PreStreamQuery(s *cuda.Stream) {
	r.ctr.SyncCalls++
	r.synchronizeStream(r.trackStream(streamOf(s)))
}

// PreDeviceSynchronize handles cudaDeviceSynchronize: iterate over all
// existing streams and terminate each arc (paper §IV-A(c)).
func (r *Runtime) PreDeviceSynchronize() {
	r.ctr.SyncCalls++
	for _, st := range r.streams {
		r.acquire(arcKey(st.stream.ID))
	}
}

// PreEventRecord places a marker: the stream fiber releases into the
// event's sync key, capturing all work enqueued so far.
func (r *Runtime) PreEventRecord(e *cuda.Event, s *cuda.Stream) {
	st := r.trackStream(streamOf(s))
	r.events[e.ID()] = s.ID()
	r.switchTo(st.fiber, false)
	r.release(eventKey(e.ID()))
	r.switchTo(r.san.HostFiber(), false)
}

// PreEventSynchronize terminates the event's arc on the host.
func (r *Runtime) PreEventSynchronize(e *cuda.Event) {
	r.ctr.SyncCalls++
	r.acquire(eventKey(e.ID()))
}

// PreEventQuery: a successful query is usable as a busy-wait; treated as
// synchronization like stream query.
func (r *Runtime) PreEventQuery(e *cuda.Event) {
	r.ctr.SyncCalls++
	r.acquire(eventKey(e.ID()))
}

// PreStreamWaitEvent orders future work on s after the event: the
// stream's fiber acquires the event key (paper §III-B1).
func (r *Runtime) PreStreamWaitEvent(s *cuda.Stream, e *cuda.Event) {
	r.ctr.SyncCalls++
	st := r.trackStream(streamOf(s))
	r.switchTo(st.fiber, false)
	r.acquire(eventKey(e.ID()))
	r.switchTo(r.san.HostFiber(), false)
}

// --- allocation hooks (TypeART extension, paper §IV-C) -------------------

// AllocDone records the CUDA allocation in TypeART (as a byte array — a
// typed view may be registered later via typeart.Runtime.Retype) and in
// the memory-attribute table.
func (r *Runtime) AllocDone(a memspace.Addr, bytes int64, kind memspace.Kind) {
	r.memAttrs[a] = kind
	// Duplicate tracking (e.g. a typed toolchain helper already
	// registered the allocation) is not an error here.
	_ = r.ta.Track(a, typeart.TypeUint8, bytes, kind)
}

// PreFree models cudaFree's device-wide synchronization, marks the freed
// range as written (catching use-after-free style races with in-flight
// device work), and releases the TypeART record.
func (r *Runtime) PreFree(a memspace.Addr, kind memspace.Kind, syncsHost bool) {
	if syncsHost {
		r.ctr.SyncCalls++
		for _, st := range r.streams {
			r.acquire(arcKey(st.stream.ID))
		}
	}
	if extent, ok := r.ta.RemainingBytes(a); ok {
		r.annotateRange(a, extent, true, r.freeWrite)
	}
	delete(r.memAttrs, a)
	_ = r.ta.Release(a)
}

// FormatCounters renders the Table I-style per-process report the paper
// shows for CuSan's event counters.
func (r *Runtime) FormatCounters() string {
	c := r.Counters()
	var b strings.Builder
	b.WriteString("CUDA runtime events:\n")
	fmt.Fprintf(&b, "  Stream                      %8d\n", c.Streams)
	fmt.Fprintf(&b, "  Memset                      %8d\n", c.Memsets)
	fmt.Fprintf(&b, "  Memcpy                      %8d\n", c.Memcpys)
	fmt.Fprintf(&b, "  Synchronization calls       %8d\n", c.SyncCalls)
	fmt.Fprintf(&b, "  Kernel calls                %8d\n", c.KernelCalls)
	b.WriteString("TSan API calls:\n")
	fmt.Fprintf(&b, "  Switch To Fiber             %8d\n", c.FiberSwitches)
	fmt.Fprintf(&b, "  AnnotateHappensBefore       %8d\n", c.HBAnnotations)
	fmt.Fprintf(&b, "  AnnotateHappensAfter        %8d\n", c.HAAnnotations)
	fmt.Fprintf(&b, "  Memory Read Range           %8d\n", c.ReadRanges)
	fmt.Fprintf(&b, "  Memory Write Range          %8d\n", c.WriteRanges)
	fmt.Fprintf(&b, "  Memory Read Size [avg KB]   %11.2f\n", c.AvgReadKB())
	fmt.Fprintf(&b, "  Memory Write Size [avg KB]  %11.2f\n", c.AvgWriteKB())
	b.WriteString("Shadow engine:\n")
	fmt.Fprintf(&b, "  Pages touched               %8d\n", c.EnginePages)
	fmt.Fprintf(&b, "  Granules processed          %8d\n", c.EngineGranules)
	fmt.Fprintf(&b, "  Fast-path granules          %8d\n", c.EngineFastGranules)
	fmt.Fprintf(&b, "  Screened-same granules      %8d\n", c.EngineSameGranules)
	fmt.Fprintf(&b, "  Range-cache hits            %8d\n", c.RangeCacheHits)
	fmt.Fprintf(&b, "  Range-cache misses          %8d\n", c.RangeCacheMisses)
	fmt.Fprintf(&b, "  Batched releases            %8d\n", c.ReleasesBatched)
	fmt.Fprintf(&b, "  Batch range ops             %8d\n", c.BatchOps)
	fmt.Fprintf(&b, "  Shadow pages shed           %8d\n", c.ShadowPagesShed)
	return b.String()
}
