package cusan

import (
	"strings"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// env bundles one instrumented rank: sanitizer + typeart + cusan + device.
type env struct {
	san *tsan.Sanitizer
	ta  *typeart.Runtime
	rt  *Runtime
	dev *cuda.Device
	mem *memspace.Memory
}

func testModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("writer", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("buf"), i, e.ToFloat(i))
		})
	}))
	m.Add(kir.KernelFunc("reader", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.LoadIdx(e.Arg("buf"), i))
		})
	}))
	return m
}

func newEnv(t *testing.T, opts Options) *env {
	t.Helper()
	mem := memspace.New()
	san := tsan.New(tsan.Config{})
	ta := typeart.NewRuntime(nil)
	rt := New(san, ta, opts)
	dev, err := cuda.NewDevice(mem, testModule(), cuda.Config{}, rt)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return &env{san: san, ta: ta, rt: rt, dev: dev, mem: mem}
}

const n = 64

func (e *env) allocDev(t *testing.T) memspace.Addr {
	t.Helper()
	a, err := e.dev.Malloc(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func (e *env) launch(t *testing.T, kernel string, s *cuda.Stream, ptrs ...memspace.Addr) {
	t.Helper()
	args := make([]kinterp.Arg, 0, len(ptrs)+1)
	for _, p := range ptrs {
		args = append(args, kinterp.Ptr(p))
	}
	args = append(args, kinterp.Int(n))
	if err := e.dev.LaunchKernel(kernel, kinterp.Dim(1), kinterp.Dim(n), args, s); err != nil {
		t.Fatalf("launch %s: %v", kernel, err)
	}
}

// hostRead models TSan-instrumented host code reading the buffer
// (e.g. an intercepted MPI_Send of a device pointer would annotate the
// same way via MUST; here we annotate directly).
func (e *env) hostRead(a memspace.Addr) {
	e.san.ReadRange(a, n*8, &tsan.AccessInfo{Site: "host", Object: "read"})
}

func (e *env) hostWrite(a memspace.Addr) {
	e.san.WriteRange(a, n*8, &tsan.AccessInfo{Site: "host", Object: "write"})
}

func TestKernelThenHostReadWithoutSyncRaces(t *testing.T) {
	// Paper Fig. 4 without line 4: kernel writes, host uses the data
	// without cudaDeviceSynchronize.
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	e.hostRead(buf)
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race: kernel write vs host read without sync")
	}
}

func TestDeviceSynchronizeOrders(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	e.dev.DeviceSynchronize()
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("unexpected races after deviceSynchronize: %d\n%v", got, e.san.Reports())
	}
}

func TestStreamSynchronizeOrdersOnlyThatStream(t *testing.T) {
	e := newEnv(t, Options{})
	s1 := e.dev.StreamCreate(true) // non-blocking: no legacy coupling
	s2 := e.dev.StreamCreate(true)
	b1 := e.allocDev(t)
	b2 := e.allocDev(t)
	e.launch(t, "writer", s1, b1)
	e.launch(t, "writer", s2, b2)
	if err := e.dev.StreamSynchronize(s1); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b1) // ordered
	e.hostRead(b2) // NOT ordered -> race
	if got := e.san.RaceCount(); got != 1 {
		t.Fatalf("races = %d, want exactly 1 (only s2 unsynced)\n%v", got, e.san.Reports())
	}
}

func TestEventSynchronize(t *testing.T) {
	e := newEnv(t, Options{})
	s := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	ev := e.dev.EventCreate()
	e.launch(t, "writer", s, buf)
	if err := e.dev.EventRecord(ev, s); err != nil {
		t.Fatal(err)
	}
	if err := e.dev.EventSynchronize(ev); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("unexpected races after eventSynchronize: %d", got)
	}
}

func TestEventRecordedBeforeKernelDoesNotCover(t *testing.T) {
	// Record the event BEFORE the kernel: synchronizing it must not
	// order the kernel's accesses.
	e := newEnv(t, Options{})
	s := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	ev := e.dev.EventCreate()
	if err := e.dev.EventRecord(ev, s); err != nil {
		t.Fatal(err)
	}
	e.launch(t, "writer", s, buf)
	if err := e.dev.EventSynchronize(ev); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race: event marker precedes the kernel")
	}
}

func TestStreamWaitEventOrdersAcrossStreams(t *testing.T) {
	// writer on s1, event; s2 waits on event, reader on s2 reads buf:
	// ordered. Then host syncs s2 only and reads out: ordered; reading
	// buf races only if s1 never synced — sync s1 too for a clean run.
	e := newEnv(t, Options{})
	s1 := e.dev.StreamCreate(true)
	s2 := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	out := e.allocDev(t)
	ev := e.dev.EventCreate()
	e.launch(t, "writer", s1, buf)
	if err := e.dev.EventRecord(ev, s1); err != nil {
		t.Fatal(err)
	}
	if err := e.dev.StreamWaitEvent(s2, ev); err != nil {
		t.Fatal(err)
	}
	e.launch(t, "reader", s2, out, buf)
	if err := e.dev.StreamSynchronize(s2); err != nil {
		t.Fatal(err)
	}
	if err := e.dev.StreamSynchronize(s1); err != nil {
		t.Fatal(err)
	}
	e.hostRead(out)
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("unexpected races with streamWaitEvent chain: %d\n%v", got, e.san.Reports())
	}
}

func TestMissingStreamWaitEventRaces(t *testing.T) {
	// Same as above but WITHOUT the streamWaitEvent: writer on s1 and
	// reader on s2 access buf concurrently.
	e := newEnv(t, Options{})
	s1 := e.dev.StreamCreate(true)
	s2 := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	out := e.allocDev(t)
	e.launch(t, "writer", s1, buf)
	e.launch(t, "reader", s2, out, buf)
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race: cross-stream accesses without event ordering")
	}
}

func TestStreamQueryActsAsSynchronization(t *testing.T) {
	e := newEnv(t, Options{})
	s := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	e.launch(t, "writer", s, buf)
	if _, err := e.dev.StreamQuery(s); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("stream query must count as sync (busy-wait): %d races", got)
	}
}

// TestLegacyDefaultStreamBarriers reproduces paper Fig. 3: K1 on stream1
// (blocking), K0 on the default stream, K2 on stream2 (blocking). A host
// synchronization on stream2 must also cover K0 and K1.
func TestLegacyDefaultStreamBarriers(t *testing.T) {
	e := newEnv(t, Options{})
	s1 := e.dev.StreamCreate(false) // blocking user streams
	s2 := e.dev.StreamCreate(false)
	b1 := e.allocDev(t)
	b0 := e.allocDev(t)
	b2 := e.allocDev(t)
	e.launch(t, "writer", s1, b1)  // K1
	e.launch(t, "writer", nil, b0) // K0 on default: waits for K1
	e.launch(t, "writer", s2, b2)  // K2: waits for K0
	if err := e.dev.StreamSynchronize(s2); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b2)
	e.hostRead(b0)
	e.hostRead(b1)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("legacy default-stream barriers not modeled: %d races\n%v", got, e.san.Reports())
	}
}

func TestDefaultStreamSyncCoversBlockingStreams(t *testing.T) {
	// Paper §IV-A(e): synchronizing the default stream terminates the
	// arcs of all blocking streams.
	e := newEnv(t, Options{})
	s1 := e.dev.StreamCreate(false)
	b1 := e.allocDev(t)
	e.launch(t, "writer", s1, b1)
	if err := e.dev.StreamSynchronize(e.dev.DefaultStream()); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b1)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("default-stream sync must cover blocking streams: %d races", got)
	}
}

func TestNonBlockingStreamExemptFromBarriers(t *testing.T) {
	// A non-blocking stream does not participate in default-stream
	// barriers: syncing the default stream must NOT cover it.
	e := newEnv(t, Options{})
	nb := e.dev.StreamCreate(true)
	b := e.allocDev(t)
	e.launch(t, "writer", nb, b)
	if err := e.dev.StreamSynchronize(e.dev.DefaultStream()); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b)
	if e.san.RaceCount() == 0 {
		t.Fatal("non-blocking stream must be exempt from legacy barriers")
	}
}

func TestPerThreadDefaultStreamMode(t *testing.T) {
	// In PTDS mode the default stream has no legacy barriers: a blocking
	// user stream is NOT covered by a default-stream sync.
	e := newEnv(t, Options{PerThreadDefaultStream: true})
	s1 := e.dev.StreamCreate(false)
	b1 := e.allocDev(t)
	e.launch(t, "writer", s1, b1)
	if err := e.dev.StreamSynchronize(e.dev.DefaultStream()); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b1)
	if e.san.RaceCount() == 0 {
		t.Fatal("PTDS mode must drop legacy default-stream coverage")
	}
}

func TestMemcpyD2HSynchronizesHost(t *testing.T) {
	// Kernel writes buf on the default stream, then a synchronous D2H
	// memcpy: the implicit synchronization orders the kernel before
	// subsequent host accesses (paper §III-B2).
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	host := e.mem.Alloc(n*8, memspace.KindHostPageable)
	e.launch(t, "writer", nil, buf)
	if err := e.dev.Memcpy(host, buf, n*8); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("sync memcpy must order prior default-stream work: %d races\n%v", got, e.san.Reports())
	}
}

func TestMemcpyAsyncDoesNotSynchronize(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	host := e.mem.Alloc(n*8, memspace.KindHostPageable)
	e.launch(t, "writer", nil, buf)
	if err := e.dev.MemcpyAsync(host, buf, n*8, nil); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if e.san.RaceCount() == 0 {
		t.Fatal("async memcpy must not synchronize the host")
	}
}

func TestMemcpyAsyncReadOfHostBufferRacesWithHostWrite(t *testing.T) {
	// cudaMemcpyAsync reads the host source; an unsynchronized
	// host write to the source afterwards is a race.
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	pinned, err := e.dev.HostAlloc(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.dev.MemcpyAsync(buf, pinned, n*8, nil); err != nil {
		t.Fatal(err)
	}
	e.hostWrite(pinned)
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race: host write vs in-flight async memcpy read")
	}
}

func TestMemsetDeviceIsAsync(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	if err := e.dev.Memset(buf, 0, n*8); err != nil {
		t.Fatal(err)
	}
	e.hostRead(buf)
	if e.san.RaceCount() == 0 {
		t.Fatal("device memset is async w.r.t. host: read must race")
	}
}

func TestMemsetPinnedSynchronizes(t *testing.T) {
	e := newEnv(t, Options{})
	pinned, err := e.dev.HostAlloc(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.dev.Memset(pinned, 0, n*8); err != nil {
		t.Fatal(err)
	}
	e.hostRead(pinned)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("pinned memset synchronizes with host: %d races", got)
	}
}

func TestCudaFreeSynchronizesDevice(t *testing.T) {
	// Kernel writes b1; cudaFree(b2) synchronizes the whole device;
	// host read of b1 afterwards is ordered.
	e := newEnv(t, Options{})
	b1 := e.allocDev(t)
	b2 := e.allocDev(t)
	e.launch(t, "writer", nil, b1)
	if err := e.dev.Free(b2); err != nil {
		t.Fatal(err)
	}
	e.hostRead(b1)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("cudaFree must synchronize the device: %d races", got)
	}
}

func TestFreeAsyncRacesWithInFlightKernel(t *testing.T) {
	e := newEnv(t, Options{})
	s := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	e.launch(t, "writer", s, buf)
	// Freeing on another (default) stream without ordering: the free's
	// write annotation races with the kernel's write.
	if err := e.dev.FreeAsync(buf, nil); err != nil {
		t.Fatal(err)
	}
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race: freeAsync vs in-flight kernel on another stream")
	}
}

func TestManagedMemoryHostAccessRaces(t *testing.T) {
	// Managed memory accessed by host code (TSan-instrumented scalar
	// accesses) while a kernel writes it: race without explicit sync
	// (paper §III-C, §IV-A(f)).
	e := newEnv(t, Options{})
	mbuf, err := e.dev.MallocManaged(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	e.launch(t, "writer", nil, mbuf)
	// Host dereferences managed pointer directly (instrumented load).
	e.san.Read(mbuf, 8, &tsan.AccessInfo{Site: "host", Object: "managed load"})
	if e.san.RaceCount() == 0 {
		t.Fatal("expected race on unsynchronized managed access")
	}
}

func TestAblationDisableMemoryTracking(t *testing.T) {
	// Paper §V-B: removing memory annotations (keeping the rest) makes
	// the racy pattern invisible.
	e := newEnv(t, Options{DisableMemoryTracking: true})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	e.hostRead(buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("memory tracking disabled but %d races reported", got)
	}
	if st := e.san.Stats(); st.WriteRangeCalls != 0 {
		t.Fatalf("write ranges annotated despite ablation: %d", st.WriteRangeCalls)
	}
}

func TestBoundaryOnlyTracking(t *testing.T) {
	// §VI-D optimization: only boundary bytes annotated. A host access
	// to the first element still races; an interior-only access is
	// missed (documented precision loss).
	e := newEnv(t, Options{BoundaryBytes: 16})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	// interior access: bytes [128, 136) — not annotated
	e.san.ReadRange(buf+128, 8, &tsan.AccessInfo{Site: "host", Object: "interior"})
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("interior access should be missed in boundary mode, got %d", got)
	}
	e.san.ReadRange(buf, 8, &tsan.AccessInfo{Site: "host", Object: "boundary"})
	if e.san.RaceCount() == 0 {
		t.Fatal("boundary access must still be detected")
	}
	st := e.san.Stats()
	if st.WriteBytes >= n*8 {
		t.Fatalf("boundary mode tracked %d bytes, expected < %d", st.WriteBytes, n*8)
	}
}

func TestCountersTableI(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	host := e.mem.Alloc(n*8, memspace.KindHostPageable)
	s := e.dev.StreamCreate(false)
	e.launch(t, "writer", nil, buf)
	e.launch(t, "writer", s, buf) // note: racy, but counters are the point
	_ = e.dev.Memset(buf, 0, n*8)
	_ = e.dev.Memcpy(host, buf, n*8)
	_ = e.dev.StreamSynchronize(s)
	e.dev.DeviceSynchronize()

	c := e.rt.Counters()
	if c.KernelCalls != 2 {
		t.Errorf("kernels = %d", c.KernelCalls)
	}
	if c.Memsets != 1 || c.Memcpys != 1 {
		t.Errorf("memsets/memcpys = %d/%d", c.Memsets, c.Memcpys)
	}
	if c.SyncCalls != 2 {
		t.Errorf("sync calls = %d", c.SyncCalls)
	}
	if c.Streams != 2 { // default + one user stream
		t.Errorf("streams = %d", c.Streams)
	}
	st := e.san.Stats()
	// 2 switches per device op (enter+leave): kernels(2) + memset + memcpy.
	if st.FiberSwitches != 8 {
		t.Errorf("fiber switches = %d, want 8", st.FiberSwitches)
	}
	// HB: one arc release per op on its stream, plus peer releases for
	// default-stream ops (1 blocking user stream exists for the default
	// kernel, memset, memcpy; the s-kernel has none... but note the
	// s-kernel is blocking, so no extra release — only default ops add).
	if st.HappensBefore < 4 {
		t.Errorf("happens-before = %d, want >= 4", st.HappensBefore)
	}
	if st.HappensAfter == 0 {
		t.Error("expected happens-after events from syncs and memcpy")
	}
}

func TestExtentComesFromTypeART(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	st := e.san.Stats()
	if st.WriteBytes != n*8 {
		t.Fatalf("annotated %d bytes, want full allocation %d", st.WriteBytes, n*8)
	}
	if e.rt.Counters().ExtentMisses != 0 {
		t.Fatal("unexpected extent misses")
	}
}

func TestInteriorPointerExtent(t *testing.T) {
	// Launch with a pointer into the middle of an allocation: annotated
	// extent must be the remaining bytes only.
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	half := buf + memspace.Addr(n/2*8)
	args := []kinterp.Arg{kinterp.Ptr(half), kinterp.Int(n / 2)}
	if err := e.dev.LaunchKernel("writer", kinterp.Dim(1), kinterp.Dim(n/2), args, nil); err != nil {
		t.Fatal(err)
	}
	if st := e.san.Stats(); st.WriteBytes != n/2*8 {
		t.Fatalf("annotated %d bytes, want %d", st.WriteBytes, n/2*8)
	}
}

func TestMemAttrTable(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	pinned, _ := e.dev.HostAlloc(8)
	if k, ok := e.rt.MemAttr(buf); !ok || k != memspace.KindDevice {
		t.Fatal("device attr not recorded")
	}
	if k, ok := e.rt.MemAttr(pinned); !ok || k != memspace.KindHostPinned {
		t.Fatal("pinned attr not recorded")
	}
	_ = e.dev.Free(buf)
	if _, ok := e.rt.MemAttr(buf); ok {
		t.Fatal("attr survives free")
	}
}

func TestTwoKernelsSameStreamOrdered(t *testing.T) {
	// Same stream = same fiber = program order; writer then reader on
	// one stream must not race with each other.
	e := newEnv(t, Options{})
	s := e.dev.StreamCreate(true)
	buf := e.allocDev(t)
	out := e.allocDev(t)
	e.launch(t, "writer", s, buf)
	e.launch(t, "reader", s, out, buf)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("same-stream kernels must be ordered: %d races", got)
	}
}

func TestHostWriteBeforeLaunchIsOrdered(t *testing.T) {
	// CUDA guarantees prior host work is visible to the launched kernel:
	// a host write to pinned memory followed by a kernel READING it must
	// not be flagged (the launch switch carries host->device sync).
	e := newEnv(t, Options{})
	pinned, _ := e.dev.HostAlloc(n * 8)
	out := e.allocDev(t)
	e.hostWrite(pinned)
	e.launch(t, "reader", nil, out, pinned)
	if got := e.san.RaceCount(); got != 0 {
		t.Fatalf("host-before-launch ordering missing: %d races\n%v", got, e.san.Reports())
	}
}

func TestRaceReportNamesKernelAndArg(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	e.hostRead(buf)
	reps := e.san.Reports()
	if len(reps) == 0 {
		t.Fatal("no report")
	}
	prev := reps[0].Previous.Info.String()
	if prev != "kernel writer arg 0 (buf)" {
		t.Fatalf("previous access info = %q", prev)
	}
}

func TestFormatCounters(t *testing.T) {
	e := newEnv(t, Options{})
	buf := e.allocDev(t)
	e.launch(t, "writer", nil, buf)
	e.dev.DeviceSynchronize()
	out := e.rt.FormatCounters()
	for _, want := range []string{
		"Kernel calls", "Switch To Fiber", "AnnotateHappensBefore",
		"Memory Write Size [avg KB]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
