package cusan

import (
	"fmt"
	"math/rand"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/memspace"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// Model-based differential testing: generate random single-rank CUDA
// programs (launches, syncs, events, memcpys, host accesses) and compare
// the detector's verdict against an independent oracle that models the
// same semantics as an explicit happens-before GRAPH with reachability —
// no vector clocks, no shadow memory, no sampling. Divergence in either
// direction is a bug in one of the two models.

// opKind enumerates generated operations.
type opKind int

const (
	opLaunchWrite opKind = iota
	opLaunchRead
	opStreamSync
	opDeviceSync
	opEventRecord
	opEventSync
	opStreamWaitEvent
	opMemcpyD2H // synchronous: implicit host sync
	opHostRead
	opHostWrite
	numOpKinds
)

// genOp is one generated operation.
type genOp struct {
	kind   opKind
	stream int // stream index into the scenario's streams (device ops)
	buf    int // buffer index (accessing ops)
	event  int // event index (event ops)
}

func (g genOp) String() string {
	return fmt.Sprintf("{k=%d s=%d b=%d e=%d}", g.kind, g.stream, g.buf, g.event)
}

// scenario is a random program over fixed resources.
type scenario struct {
	ops []genOp
	// streams[i]: 0 = default, others user; nonBlocking flags.
	nonBlocking []bool
}

func genScenario(r *rand.Rand, nOps int) scenario {
	sc := scenario{
		// default stream + one blocking + one non-blocking user stream.
		nonBlocking: []bool{false, false, true},
	}
	for i := 0; i < nOps; i++ {
		sc.ops = append(sc.ops, genOp{
			kind:   opKind(r.Intn(int(numOpKinds))),
			stream: r.Intn(3),
			buf:    r.Intn(2),
			event:  r.Intn(2),
		})
	}
	return sc
}

// --- oracle ---------------------------------------------------------------

// node is one schedulable unit in the oracle graph: a device operation
// or a host segment boundary.
type accessRec struct {
	node  int
	buf   int
	write bool
}

type oracle struct {
	nEdges   [][]int // adjacency: edges[a] -> b  means a happens-before b
	accesses []accessRec
	// lastOnStream is the most recent device node per stream.
	lastOnStream []int
	// lastHost is the most recent host node (program order chain).
	lastHost int
	// eventNode maps event index -> device node captured at record (-1 none).
	eventNode []int
	nodes     int
	nb        []bool
}

func newOracle(nb []bool) *oracle {
	o := &oracle{
		lastOnStream: make([]int, len(nb)),
		eventNode:    []int{-1, -1},
		nb:           nb,
	}
	for i := range o.lastOnStream {
		o.lastOnStream[i] = -1
	}
	// node 0: initial host segment.
	o.lastHost = o.newNode()
	return o
}

func (o *oracle) newNode() int {
	o.nEdges = append(o.nEdges, nil)
	o.nodes++
	return o.nodes - 1
}

func (o *oracle) edge(from, to int) {
	if from >= 0 && to >= 0 && from != to {
		o.nEdges[from] = append(o.nEdges[from], to)
	}
}

// deviceOp adds a device node on stream s with FIFO, host->device, and
// legacy default-stream ordering.
func (o *oracle) deviceOp(s int) int {
	n := o.newNode()
	o.edge(o.lastOnStream[s], n) // FIFO
	o.edge(o.lastHost, n)        // launch carries host program order
	if !o.nb[s] {
		if s == 0 {
			// default-stream op waits for all blocking user streams.
			for t := 1; t < len(o.nb); t++ {
				if !o.nb[t] {
					o.edge(o.lastOnStream[t], n)
				}
			}
		} else {
			// blocking user-stream op waits for prior default work.
			o.edge(o.lastOnStream[0], n)
		}
	}
	o.lastOnStream[s] = n
	return n
}

// hostStep starts a new host segment ordered after the previous one.
func (o *oracle) hostStep() int {
	n := o.newNode()
	o.edge(o.lastHost, n)
	o.lastHost = n
	return n
}

// syncStream orders all prior work of stream s before subsequent host
// segments, with CuSan's documented arc semantics (paper §V-A): a
// default-stream operation starts a happens-before arc on every blocking
// stream, so synchronizing a blocking user stream also covers prior
// default-stream work — and synchronizing the default stream covers all
// blocking streams (paper §IV-A(e)).
func (o *oracle) syncStream(s int) {
	h := o.hostStep()
	o.edge(o.lastOnStream[s], h)
	if s == 0 {
		for t := 1; t < len(o.nb); t++ {
			if !o.nb[t] {
				o.edge(o.lastOnStream[t], h)
			}
		}
	} else if !o.nb[s] {
		o.edge(o.lastOnStream[0], h)
	}
}

func (o *oracle) apply(op genOp) {
	switch op.kind {
	case opLaunchWrite, opLaunchRead:
		n := o.deviceOp(op.stream)
		o.accesses = append(o.accesses, accessRec{node: n, buf: op.buf, write: op.kind == opLaunchWrite})
	case opStreamSync:
		o.syncStream(op.stream)
	case opDeviceSync:
		h := o.hostStep()
		for s := range o.nb {
			o.edge(o.lastOnStream[s], h)
		}
	case opEventRecord:
		// The event adopts the stream's current tail.
		o.eventNode[op.event] = o.lastOnStream[op.stream]
	case opEventSync:
		h := o.hostStep()
		o.edge(o.eventNode[op.event], h)
	case opStreamWaitEvent:
		// Future work on the stream is ordered after the recorded point:
		// insert a marker device op carrying the dependency (it performs
		// no access). The marker participates in legacy barriers exactly
		// like any other enqueued op.
		n := o.deviceOp(op.stream)
		o.edge(o.eventNode[op.event], n)
	case opMemcpyD2H:
		// The copy reads the buffer on its stream, then host-syncs that
		// stream (and the default-stream barrier rules are those of a
		// device op on that stream).
		n := o.deviceOp(op.stream)
		o.accesses = append(o.accesses, accessRec{node: n, buf: op.buf, write: false})
		o.syncStream(op.stream)
	case opHostRead, opHostWrite:
		h := o.hostStep()
		o.accesses = append(o.accesses, accessRec{node: h, buf: op.buf, write: op.kind == opHostWrite})
	}
}

// reach computes reachability from each node (small graphs: BFS each).
func (o *oracle) reach() [][]bool {
	r := make([][]bool, o.nodes)
	for s := 0; s < o.nodes; s++ {
		seen := make([]bool, o.nodes)
		stack := []int{s}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range o.nEdges[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		r[s] = seen
	}
	return r
}

// hasRace reports whether any conflicting access pair is unordered.
func (o *oracle) hasRace() bool {
	r := o.reach()
	for i := 0; i < len(o.accesses); i++ {
		for j := i + 1; j < len(o.accesses); j++ {
			a, b := o.accesses[i], o.accesses[j]
			if a.buf != b.buf || (!a.write && !b.write) || a.node == b.node {
				continue
			}
			if !r[a.node][b.node] && !r[b.node][a.node] {
				return true
			}
		}
	}
	return false
}

// --- execution against the real detector -----------------------------------

// runScenario drives the generated program through the instrumented CUDA
// runtime and returns the detector's verdict.
func runScenario(t *testing.T, sc scenario) bool {
	t.Helper()
	mem := memspace.New()
	// 4 shadow cells: the scenario has at most 4 concurrent contexts
	// (host + 3 stream fibers), so the shadow cannot evict a live
	// accessor and the comparison is exact.
	san := tsan.New(tsan.Config{CellsPerGranule: 4, MaxReports: 1024})
	e := newEnvWith(t, mem, san, Options{})

	bufs := []memspace.Addr{e.allocDev(t), e.allocDev(t)}
	host := mem.Alloc(n*8, memspace.KindHostPageable)
	streams := []*cuda.Stream{nil, e.dev.StreamCreate(false), e.dev.StreamCreate(true)}
	events := []*cuda.Event{e.dev.EventCreate(), e.dev.EventCreate()}
	recorded := []bool{false, false}

	for _, op := range sc.ops {
		switch op.kind {
		case opLaunchWrite:
			e.launch(t, "writer", streams[op.stream], bufs[op.buf])
		case opLaunchRead:
			out := e.allocDev(t) // fresh, conflict-free output
			e.launch(t, "reader", streams[op.stream], out, bufs[op.buf])
		case opStreamSync:
			if err := e.dev.StreamSynchronize(streams[op.stream]); err != nil {
				t.Fatal(err)
			}
		case opDeviceSync:
			e.dev.DeviceSynchronize()
		case opEventRecord:
			if err := e.dev.EventRecord(events[op.event], streams[op.stream]); err != nil {
				t.Fatal(err)
			}
			recorded[op.event] = true
		case opEventSync:
			if err := e.dev.EventSynchronize(events[op.event]); err != nil {
				t.Fatal(err)
			}
		case opStreamWaitEvent:
			if err := e.dev.StreamWaitEvent(streams[op.stream], events[op.event]); err != nil {
				t.Fatal(err)
			}
		case opMemcpyD2H:
			var err error
			if streams[op.stream] == nil {
				err = e.dev.Memcpy(host, bufs[op.buf], n*8)
			} else {
				// Async on a stream does not host-sync; the oracle models
				// the synchronous default-stream variant, so force it:
				// memcpy + streamSync on that stream.
				if err = e.dev.MemcpyAsync(host, bufs[op.buf], n*8, streams[op.stream]); err == nil {
					err = e.dev.StreamSynchronize(streams[op.stream])
				}
			}
			if err != nil {
				t.Fatal(err)
			}
		case opHostRead:
			e.hostRead(bufs[op.buf])
		case opHostWrite:
			e.hostWrite(bufs[op.buf])
		}
	}
	return san.RaceCount() > 0
}

// oracleVerdict evaluates the same scenario in the graph model. The
// memcpy host-write to the staging buffer is excluded from both sides
// (the staging buffer is never otherwise accessed).
func oracleVerdict(sc scenario) bool {
	o := newOracle(sc.nonBlocking)
	recorded := []bool{false, false}
	for _, op := range sc.ops {
		switch op.kind {
		case opEventRecord:
			recorded[op.event] = true
			o.apply(op)
		case opEventSync, opStreamWaitEvent:
			if !recorded[op.event] {
				continue // unrecorded events are no-ops in both models
			}
			o.apply(op)
		default:
			o.apply(op)
		}
	}
	return o.hasRace()
}

// TestModelDifferential compares 400 random programs.
func TestModelDifferential(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			sc := genScenario(r, 4+r.Intn(12))
			want := oracleVerdict(sc)
			got := runScenario(t, sc)
			if got != want {
				t.Fatalf("detector=%v oracle=%v\nscenario: %v", got, want, sc.ops)
			}
		})
	}
}

// newEnvWith builds the env around a caller-supplied sanitizer.
func newEnvWith(t *testing.T, mem *memspace.Memory, san *tsan.Sanitizer, opts Options) *env {
	t.Helper()
	ta := typeart.NewRuntime(nil)
	rt := New(san, ta, opts)
	dev, err := cuda.NewDevice(mem, testModule(), cuda.Config{}, rt)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return &env{san: san, ta: ta, rt: rt, dev: dev, mem: mem}
}
