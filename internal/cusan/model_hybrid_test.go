package cusan

import (
	"fmt"
	"math/rand"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/must"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// Hybrid differential testing: the random programs of model_test.go
// extended with non-blocking MPI (Isend/Irecv/Wait through MUST's fiber
// protocol), so cross-domain races — a kernel against an in-flight MPI
// operation, the paper's core subject — are compared against the graph
// oracle too.

const (
	hOpIsend = int(numOpKinds) + iota
	hOpIrecv
	hOpWait
	numHybridOps
)

// maxOutstanding bounds in-flight requests so the shadow cannot evict a
// live accessor (host + 3 stream fibers + requests <= cells).
const maxOutstanding = 3

type hybridOp struct {
	kind   int
	stream int
	buf    int
	event  int
}

type hybridScenario struct {
	ops         []hybridOp
	nonBlocking []bool
	nIrecv      int
	nIsend      int
}

func genHybridScenario(r *rand.Rand, nOps int) hybridScenario {
	sc := hybridScenario{nonBlocking: []bool{false, false, true}}
	outstanding := 0
	for i := 0; i < nOps; i++ {
		op := hybridOp{
			kind:   r.Intn(numHybridOps),
			stream: r.Intn(3),
			buf:    r.Intn(2),
			event:  r.Intn(2),
		}
		switch op.kind {
		case hOpIsend, hOpIrecv:
			if outstanding >= maxOutstanding {
				op.kind = hOpWait
			} else {
				outstanding++
				if op.kind == hOpIsend {
					sc.nIsend++
				} else {
					sc.nIrecv++
				}
			}
		}
		if op.kind == hOpWait {
			if outstanding == 0 {
				continue // nothing to wait for; drop the op
			}
			outstanding--
		}
		sc.ops = append(sc.ops, op)
	}
	// Complete every outstanding request (clean finalize).
	for ; outstanding > 0; outstanding-- {
		sc.ops = append(sc.ops, hybridOp{kind: hOpWait})
	}
	return sc
}

// hybridOracle extends the CUDA oracle with MPI request fibers.
func hybridOracleVerdict(sc hybridScenario) bool {
	o := newOracle(sc.nonBlocking)
	recorded := []bool{false, false}
	var pending []int // FIFO of request nodes
	for _, op := range sc.ops {
		switch op.kind {
		case hOpIsend, hOpIrecv:
			// MUST's protocol: the request fiber inherits host program
			// order at initiation (SwitchFiberSync) and annotates the
			// buffer there; no stream interaction.
			n := o.newNode()
			o.edge(o.lastHost, n)
			o.accesses = append(o.accesses, accessRec{
				node: n, buf: op.buf, write: op.kind == hOpIrecv,
			})
			pending = append(pending, n)
		case hOpWait:
			n := pending[0]
			pending = pending[1:]
			h := o.hostStep()
			o.edge(n, h)
		default:
			g := genOp{kind: opKind(op.kind), stream: op.stream, buf: op.buf, event: op.event}
			switch g.kind {
			case opEventRecord:
				recorded[op.event] = true
				o.apply(g)
			case opEventSync, opStreamWaitEvent:
				if recorded[op.event] {
					o.apply(g)
				}
			default:
				o.apply(g)
			}
		}
	}
	return o.hasRace()
}

// runHybridScenario drives the program through the full MUST & CuSan
// stack with a cooperative peer rank.
func runHybridScenario(t *testing.T, sc hybridScenario) bool {
	t.Helper()
	w := mpi.NewWorld(2)
	mem := memspace.New()
	san := tsan.New(tsan.Config{CellsPerGranule: 8, MaxReports: 1024})
	ta := typeart.NewRuntime(nil)
	cs := New(san, ta, Options{})
	dev, err := cuda.NewDevice(mem, testModule(), cuda.Config{}, cs)
	if err != nil {
		t.Fatal(err)
	}
	mu := must.New(san, ta, Options2MustOpts())
	comm, err := w.AttachRank(0, mem, mu)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{san: san, ta: ta, rt: cs, dev: dev, mem: mem}

	// Cooperative peer: sends everything our Irecvs need up front
	// (buffered transport), then drains our Isends.
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- func() error {
			peerMem := memspace.New()
			pc, err := w.AttachRank(1, peerMem, nil)
			if err != nil {
				return err
			}
			out := peerMem.Alloc(n*8, memspace.KindHostPageable)
			for i := 0; i < sc.nIrecv; i++ {
				if err := pc.Send(out, n, mpi.Float64, 0, 100+i); err != nil {
					return err
				}
			}
			for i := 0; i < sc.nIsend; i++ {
				if _, err := pc.Recv(out, n, mpi.Float64, 0, 200+i); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	bufs := []memspace.Addr{e.allocDev(t), e.allocDev(t)}
	host := mem.Alloc(n*8, memspace.KindHostPageable)
	streams := []*cuda.Stream{nil, dev.StreamCreate(false), dev.StreamCreate(true)}
	events := []*cuda.Event{dev.EventCreate(), dev.EventCreate()}
	var pending []*mpi.Request
	irecvs, isends := 0, 0

	for _, op := range sc.ops {
		switch op.kind {
		case hOpIsend:
			req, err := comm.Isend(bufs[op.buf], n, mpi.Float64, 1, 200+isends)
			if err != nil {
				t.Fatal(err)
			}
			isends++
			pending = append(pending, req)
		case hOpIrecv:
			req, err := comm.Irecv(bufs[op.buf], n, mpi.Float64, 1, 100+irecvs)
			if err != nil {
				t.Fatal(err)
			}
			irecvs++
			pending = append(pending, req)
		case hOpWait:
			req := pending[0]
			pending = pending[1:]
			if _, err := comm.Wait(req); err != nil {
				t.Fatal(err)
			}
		case int(opLaunchWrite):
			e.launch(t, "writer", streams[op.stream], bufs[op.buf])
		case int(opLaunchRead):
			out := e.allocDev(t)
			e.launch(t, "reader", streams[op.stream], out, bufs[op.buf])
		case int(opStreamSync):
			if err := dev.StreamSynchronize(streams[op.stream]); err != nil {
				t.Fatal(err)
			}
		case int(opDeviceSync):
			dev.DeviceSynchronize()
		case int(opEventRecord):
			if err := dev.EventRecord(events[op.event], streams[op.stream]); err != nil {
				t.Fatal(err)
			}
		case int(opEventSync):
			if err := dev.EventSynchronize(events[op.event]); err != nil {
				t.Fatal(err)
			}
		case int(opStreamWaitEvent):
			if err := dev.StreamWaitEvent(streams[op.stream], events[op.event]); err != nil {
				t.Fatal(err)
			}
		case int(opMemcpyD2H):
			var err error
			if streams[op.stream] == nil {
				err = dev.Memcpy(host, bufs[op.buf], n*8)
			} else {
				if err = dev.MemcpyAsync(host, bufs[op.buf], n*8, streams[op.stream]); err == nil {
					err = dev.StreamSynchronize(streams[op.stream])
				}
			}
			if err != nil {
				t.Fatal(err)
			}
		case int(opHostRead):
			e.hostRead(bufs[op.buf])
		case int(opHostWrite):
			e.hostWrite(bufs[op.buf])
		}
	}
	if err := <-peerDone; err != nil {
		t.Fatal(err)
	}
	return san.RaceCount() > 0
}

// Options2MustOpts returns the MUST options for the differential rig
// (type checks off: buffers are tracked as raw cuda allocations and the
// oracle does not model findings).
func Options2MustOpts() must.Options {
	return must.Options{DisableTypeChecks: true}
}

// TestModelDifferentialHybrid compares 300 random hybrid programs.
func TestModelDifferentialHybrid(t *testing.T) {
	for seed := int64(1000); seed < 1300; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			sc := genHybridScenario(r, 5+r.Intn(12))
			want := hybridOracleVerdict(sc)
			got := runHybridScenario(t, sc)
			if got != want {
				t.Fatalf("detector=%v oracle=%v\nops: %+v", got, want, sc.ops)
			}
		})
	}
}
