// Package kaccess implements the device-code compiler analysis of the
// paper (§IV-B1): a conservative interprocedural forward dataflow analysis
// that determines, for every pointer argument of every kernel, whether the
// kernel may read and/or write through it.
//
// Pointer flow is tracked through moves, pointer arithmetic (GEP), and
// calls to nested device functions: each local carries the set of formal
// pointer parameters it may alias (a bitmask), states are joined at
// control-flow merges, and function summaries are iterated to a fixpoint
// over the (possibly cyclic) call graph. This reproduces the paper's
// Fig. 8 behaviour, including the aliasing case: a pointer passed to a
// callee parameter inherits exactly the accesses the callee performs
// through that parameter.
//
// The resulting per-kernel access attributes are the "kernel analysis
// data" handed from device compilation to host instrumentation
// (paper Fig. 7), which CuSan's runtime uses to annotate kernel argument
// memory ranges with TSan.
package kaccess

import (
	"fmt"
	"strings"

	"cusango/internal/kir"
)

// Access is a read/write attribute bitset.
type Access uint8

// Access attributes per kernel argument.
const (
	// None: the argument is never dereferenced.
	None Access = 0
	// Read: the kernel may load through the argument.
	Read Access = 1 << iota
	// Write: the kernel may store through the argument.
	Write
	// ReadWrite: both.
	ReadWrite = Read | Write
)

// MayRead reports whether the attribute includes reads.
func (a Access) MayRead() bool { return a&Read != 0 }

// MayWrite reports whether the attribute includes writes.
func (a Access) MayWrite() bool { return a&Write != 0 }

func (a Access) String() string {
	switch a {
	case None:
		return "none"
	case Read:
		return "r"
	case Write:
		return "w"
	case ReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("access(%d)", uint8(a))
	}
}

// Summary holds the per-parameter attributes of one function.
type Summary struct {
	Func   string
	Params []Access
}

func (s *Summary) String() string {
	parts := make([]string, len(s.Params))
	for i, a := range s.Params {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", s.Func, strings.Join(parts, ", "))
}

func (s *Summary) clone() *Summary {
	c := &Summary{Func: s.Func, Params: make([]Access, len(s.Params))}
	copy(c.Params, s.Params)
	return c
}

func (s *Summary) equal(o *Summary) bool {
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// Result maps function names to summaries.
type Result struct {
	summaries map[string]*Summary
	fallbacks int64
}

// Summary returns the named function's summary, or nil.
func (r *Result) Summary(name string) *Summary { return r.summaries[name] }

// KernelArgs returns the access attributes of the named kernel's
// arguments. A kernel without analysis (launched by name past the
// compiler, e.g. hand-registered native code) gets the conservative
// fallback the paper prescribes for unanalyzable kernels: assume every
// argument may be read and written. nparams sizes the fallback;
// FallbackCount reports how often it was taken.
func (r *Result) KernelArgs(name string, nparams int) []Access {
	if s := r.summaries[name]; s != nil {
		return s.Params
	}
	r.fallbacks++
	out := make([]Access, nparams)
	for i := range out {
		out[i] = ReadWrite
	}
	return out
}

// FallbackCount returns how many times KernelArgs fell back to the
// conservative all-read-write summary for an unanalyzed kernel.
func (r *Result) FallbackCount() int64 { return r.fallbacks }

// String renders all summaries, one per line, in sorted order — the
// serialized "kernel analysis data" artifact.
func (r *Result) String() string {
	names := make([]string, 0, len(r.summaries))
	for n := range r.summaries {
		names = append(names, n)
	}
	// insertion-independent deterministic order
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var b strings.Builder
	for _, n := range names {
		b.WriteString(r.summaries[n].String())
		b.WriteByte('\n')
	}
	return b.String()
}

const maxParams = 64

// Analyze verifies the module and computes access summaries for every
// function to a fixpoint over the call graph.
func Analyze(m *kir.Module) (*Result, error) {
	if err := kir.Verify(m); err != nil {
		return nil, err
	}
	res := &Result{summaries: make(map[string]*Summary)}
	funcs := m.Functions()
	for _, f := range funcs {
		if len(f.Params) > maxParams {
			return nil, fmt.Errorf("kaccess: function %q has %d params, max %d", f.Name, len(f.Params), maxParams)
		}
		res.summaries[f.Name] = &Summary{Func: f.Name, Params: make([]Access, len(f.Params))}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			ns := analyzeFunc(f, res)
			if !ns.equal(res.summaries[f.Name]) {
				res.summaries[f.Name] = ns
				changed = true
			}
		}
	}
	return res, nil
}

// paramMask is the set of formal pointer parameters a local may alias.
type paramMask uint64

// analyzeFunc runs the intraprocedural forward dataflow for one function
// given the current callee summaries, and returns its (possibly improved)
// summary.
func analyzeFunc(f *kir.Function, res *Result) *Summary {
	nLocals := len(f.LocalTypes)
	nBlocks := len(f.Blocks)

	// entry state: pointer params alias themselves.
	entry := make([]paramMask, nLocals)
	for i, p := range f.Params {
		if p.Type.IsPtr() {
			entry[i] = 1 << uint(i)
		}
	}

	in := make([][]paramMask, nBlocks)
	in[0] = entry
	worklist := []int{0}
	inList := make([]bool, nBlocks)
	inList[0] = true

	join := func(dst, src []paramMask) bool {
		changed := false
		for i, m := range src {
			if dst[i]|m != dst[i] {
				dst[i] |= m
				changed = true
			}
		}
		return changed
	}

	// transfer applies block b to state, optionally recording accesses
	// into sum.
	transfer := func(b *kir.Block, state []paramMask, sum *Summary) {
		record := func(mask paramMask, acc Access) {
			if sum == nil || mask == 0 {
				return
			}
			for i := 0; mask != 0; i++ {
				if mask&1 != 0 {
					sum.Params[i] |= acc
				}
				mask >>= 1
			}
		}
		for _, ins := range b.Instrs {
			switch ins.Op {
			case kir.OpMov, kir.OpGEP:
				state[ins.Dst] = state[ins.A]
			case kir.OpLoad:
				record(state[ins.A], Read)
				state[ins.Dst] = 0
			case kir.OpStore:
				record(state[ins.A], Write)
			case kir.OpAtomicAddF:
				record(state[ins.A], ReadWrite)
			case kir.OpSyncthreads:
				// Barrier: no dataflow effect. (It must not fall through to
				// the default: its zero-valued Dst would clobber local 0.)
			case kir.OpCall:
				callee := res.summaries[ins.Callee]
				var argUnion paramMask
				for ai, a := range ins.Args {
					if callee != nil && ai < len(callee.Params) {
						record(state[a], callee.Params[ai])
					}
					argUnion |= state[a]
				}
				if ins.Dst >= 0 {
					// Conservative: a pointer-returning callee may return
					// any pointer it was passed.
					if f.LocalTypes[ins.Dst].IsPtr() {
						state[ins.Dst] = argUnion
					} else {
						state[ins.Dst] = 0
					}
				}
			default:
				if ins.Dst >= 0 && ins.Op != kir.OpStore {
					state[ins.Dst] = 0
				}
			}
		}
	}

	succ := func(b *kir.Block) []int {
		switch b.Term.Kind {
		case kir.TermBr:
			return []int{b.Term.Target}
		case kir.TermCondBr:
			return []int{b.Term.Target, b.Term.Else}
		default:
			return nil
		}
	}

	scratch := make([]paramMask, nLocals)
	for len(worklist) > 0 {
		bi := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		inList[bi] = false
		copy(scratch, in[bi])
		transfer(f.Blocks[bi], scratch, nil)
		for _, si := range succ(f.Blocks[bi]) {
			if in[si] == nil {
				in[si] = make([]paramMask, nLocals)
				copy(in[si], scratch)
				if !inList[si] {
					worklist = append(worklist, si)
					inList[si] = true
				}
				continue
			}
			if join(in[si], scratch) && !inList[si] {
				worklist = append(worklist, si)
				inList[si] = true
			}
		}
	}

	// Final pass: collect accesses with converged in-states.
	sum := res.summaries[f.Name].clone()
	for bi, b := range f.Blocks {
		if in[bi] == nil {
			continue // unreachable block
		}
		copy(scratch, in[bi])
		transfer(b, scratch, sum)
	}
	return sum
}
