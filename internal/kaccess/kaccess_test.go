package kaccess

import (
	"strings"
	"testing"

	"cusango/internal/kir"
)

func analyze(t *testing.T, m *kir.Module) *Result {
	t.Helper()
	r, err := Analyze(m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return r
}

func TestSimpleReadWrite(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("copy", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.LoadIdx(e.Arg("in"), i))
		})
	}))
	r := analyze(t, m)
	args := r.KernelArgs("copy", 3)
	if args[0] != Write {
		t.Errorf("out = %v, want w", args[0])
	}
	if args[1] != Read {
		t.Errorf("in = %v, want r", args[1])
	}
	if args[2] != None {
		t.Errorf("n = %v, want none", args[2])
	}
}

// TestPaperFig8 reproduces the paper's Fig. 8: kernel passes (d_a, d_b)
// to kernel_nested(y, x, tid) which does y[tid] = x[tid]. The analysis
// must follow the pointer flow into the callee: d_a/y are write, d_b/x
// are read.
func TestPaperFig8(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.DeviceFunc("kernel_nested", []kir.Param{
		{Name: "y", Type: kir.TPtrF64},
		{Name: "x", Type: kir.TPtrF64},
		{Name: "tid", Type: kir.TInt},
	}, kir.TInvalid, func(e *kir.Emitter) {
		tid := e.Arg("tid")
		e.StoreIdx(e.Arg("y"), tid, e.LoadIdx(e.Arg("x"), tid))
	}))
	m.Add(kir.KernelFunc("kernel", []kir.Param{
		{Name: "d_a", Type: kir.TPtrF64},
		{Name: "d_b", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		tid := e.GlobalIDX()
		e.Call("kernel_nested", e.Arg("d_a"), e.Arg("d_b"), tid)
	}))
	r := analyze(t, m)

	nested := r.Summary("kernel_nested")
	if nested.Params[0] != Write || nested.Params[1] != Read {
		t.Fatalf("kernel_nested summary wrong: %v", nested)
	}
	outer := r.KernelArgs("kernel", 2)
	if outer[0] != Write {
		t.Errorf("d_a = %v, want w (flows to written param y)", outer[0])
	}
	if outer[1] != Read {
		t.Errorf("d_b = %v, want r (aliasing pointer x only read)", outer[1])
	}
}

func TestAliasThroughGEPAndMov(t *testing.T) {
	m := kir.NewModule()
	fb := kir.NewFunction("k", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
	}, kir.TInvalid)
	fb.Kernel()
	idx := fb.NewLocal(kir.TInt)
	fb.ConstI(idx, 3)
	derived := fb.NewLocal(kir.TPtrF64)
	fb.GEP(derived, fb.Param("p"), idx)
	alias := fb.NewLocal(kir.TPtrF64)
	fb.Mov(alias, derived)
	val := fb.NewLocal(kir.TFloat)
	fb.ConstF(val, 1)
	fb.Store(alias, val)
	m.Add(fb.Func())
	r := analyze(t, m)
	if got := r.KernelArgs("k", 1)[0]; got != Write {
		t.Fatalf("p = %v, want w via gep+mov chain", got)
	}
}

func TestReadWriteSameParam(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("inc", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		ptr := e.GEP(e.Arg("p"), i)
		e.Store(ptr, e.Add(e.Load(ptr), e.ConstF(1)))
	}))
	r := analyze(t, m)
	if got := r.KernelArgs("inc", 1)[0]; got != ReadWrite {
		t.Fatalf("p = %v, want rw", got)
	}
}

func TestUnusedPointerIsNone(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("noop", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
		{Name: "q", Type: kir.TPtrI32},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		_ = e.GEP(e.Arg("p"), i) // address computed but never dereferenced
	}))
	r := analyze(t, m)
	args := r.KernelArgs("noop", 2)
	if args[0] != None || args[1] != None {
		t.Fatalf("args = %v, want none/none", args)
	}
}

func TestBranchDependentAccessJoins(t *testing.T) {
	// p is written on one branch only: must still be Write (may-analysis).
	m := kir.NewModule()
	m.Add(kir.KernelFunc("branchy", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
		{Name: "c", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		zero := e.ConstI(0)
		e.If(e.Gt(e.Arg("c"), zero), func() {
			e.StoreIdx(e.Arg("p"), zero, e.ConstF(1))
		})
	}))
	r := analyze(t, m)
	if got := r.KernelArgs("branchy", 2)[0]; got != Write {
		t.Fatalf("p = %v, want w", got)
	}
}

func TestPointerSelectJoinsBothParams(t *testing.T) {
	// A local may alias p on one path and q on the other: a store through
	// it must mark BOTH as written.
	m := kir.NewModule()
	fb := kir.NewFunction("sel", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
		{Name: "q", Type: kir.TPtrF64},
		{Name: "c", Type: kir.TInt},
	}, kir.TInvalid)
	fb.Kernel()
	ptr := fb.NewLocal(kir.TPtrF64)
	thenB := fb.NewBlock("then")
	elseB := fb.NewBlock("else")
	joinB := fb.NewBlock("join")
	fb.SetBlock(0)
	fb.CondBr(fb.Param("c"), thenB, elseB)
	fb.SetBlock(thenB)
	fb.Mov(ptr, fb.Param("p"))
	fb.Br(joinB)
	fb.SetBlock(elseB)
	fb.Mov(ptr, fb.Param("q"))
	fb.Br(joinB)
	fb.SetBlock(joinB)
	v := fb.NewLocal(kir.TFloat)
	fb.ConstF(v, 2)
	fb.Store(ptr, v)
	fb.Ret()
	m.Add(fb.Func())
	r := analyze(t, m)
	args := r.KernelArgs("sel", 3)
	if args[0] != Write || args[1] != Write {
		t.Fatalf("args = %v, want w/w", args)
	}
}

func TestLoopBodyAccess(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("fill", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		e.For(e.ConstI(0), e.Arg("n"), e.ConstI(1), func(i kir.Value) {
			e.StoreIdx(e.Arg("p"), i, e.ToFloat(i))
		})
	}))
	r := analyze(t, m)
	if got := r.KernelArgs("fill", 2)[0]; got != Write {
		t.Fatalf("p = %v, want w (store inside loop)", got)
	}
}

func TestTransitiveCallChain(t *testing.T) {
	// a -> b -> c, pointer flows all the way down, c writes.
	m := kir.NewModule()
	m.Add(kir.DeviceFunc("c", []kir.Param{{Name: "z", Type: kir.TPtrF64}}, kir.TInvalid,
		func(e *kir.Emitter) {
			e.StoreIdx(e.Arg("z"), e.ConstI(0), e.ConstF(9))
		}))
	m.Add(kir.DeviceFunc("b", []kir.Param{{Name: "y", Type: kir.TPtrF64}}, kir.TInvalid,
		func(e *kir.Emitter) {
			e.Call("c", e.Arg("y"))
		}))
	m.Add(kir.KernelFunc("a", []kir.Param{{Name: "x", Type: kir.TPtrF64}},
		func(e *kir.Emitter) {
			e.Call("b", e.Arg("x"))
		}))
	r := analyze(t, m)
	if got := r.KernelArgs("a", 1)[0]; got != Write {
		t.Fatalf("x = %v, want w through 2-deep call chain", got)
	}
}

func TestRecursionConverges(t *testing.T) {
	// rec(p, n): if n > 0 { p[0] = 1; rec(p, n-1) } — self-recursive.
	m := kir.NewModule()
	fb := kir.NewFunction("rec", []kir.Param{
		{Name: "p", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, kir.TInvalid)
	e := kir.NewEmitter(fb)
	e.If(e.Gt(e.Arg("n"), e.ConstI(0)), func() {
		e.StoreIdx(e.Arg("p"), e.ConstI(0), e.ConstF(1))
		e.Call("rec", e.Arg("p"), e.Sub(e.Arg("n"), e.ConstI(1)))
	})
	m.Add(fb.Func())
	r := analyze(t, m)
	if got := r.Summary("rec").Params[0]; got != Write {
		t.Fatalf("p = %v, want w under recursion", got)
	}
}

func TestMutualRecursionConverges(t *testing.T) {
	m := kir.NewModule()
	// even(p,n) reads p then calls odd; odd(p,n) writes p then calls even.
	fbE := kir.NewFunction("even", []kir.Param{
		{Name: "p", Type: kir.TPtrF64}, {Name: "n", Type: kir.TInt},
	}, kir.TInvalid)
	eE := kir.NewEmitter(fbE)
	eE.If(eE.Gt(eE.Arg("n"), eE.ConstI(0)), func() {
		_ = eE.LoadIdx(eE.Arg("p"), eE.ConstI(0))
		eE.Call("odd", eE.Arg("p"), eE.Sub(eE.Arg("n"), eE.ConstI(1)))
	})
	m.Add(fbE.Func())
	fbO := kir.NewFunction("odd", []kir.Param{
		{Name: "p", Type: kir.TPtrF64}, {Name: "n", Type: kir.TInt},
	}, kir.TInvalid)
	eO := kir.NewEmitter(fbO)
	eO.If(eO.Gt(eO.Arg("n"), eO.ConstI(0)), func() {
		eO.StoreIdx(eO.Arg("p"), eO.ConstI(0), eO.ConstF(1))
		eO.Call("even", eO.Arg("p"), eO.Sub(eO.Arg("n"), eO.ConstI(1)))
	})
	m.Add(fbO.Func())
	r := analyze(t, m)
	if got := r.Summary("even").Params[0]; got != ReadWrite {
		t.Fatalf("even.p = %v, want rw (read locally, write via odd)", got)
	}
	if got := r.Summary("odd").Params[0]; got != ReadWrite {
		t.Fatalf("odd.p = %v, want rw", got)
	}
}

func TestAtomicAddIsReadWrite(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("reduce", []kir.Param{
		{Name: "acc", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.AtomicAddF(e.Arg("acc"), e.LoadIdx(e.Arg("in"), i))
	}))
	r := analyze(t, m)
	args := r.KernelArgs("reduce", 2)
	if args[0] != ReadWrite {
		t.Errorf("acc = %v, want rw", args[0])
	}
	if args[1] != Read {
		t.Errorf("in = %v, want r", args[1])
	}
}

func TestKernelArgsUnknownFallsBack(t *testing.T) {
	// An unanalyzed kernel gets the conservative all-read-write summary
	// instead of a crash, and the fallback is counted.
	m := kir.NewModule()
	r := analyze(t, m)
	args := r.KernelArgs("ghost", 3)
	if len(args) != 3 {
		t.Fatalf("fallback arity = %d, want 3", len(args))
	}
	for i, a := range args {
		if a != ReadWrite {
			t.Fatalf("fallback arg %d = %v, want rw", i, a)
		}
	}
	if got := r.FallbackCount(); got != 1 {
		t.Fatalf("FallbackCount = %d, want 1", got)
	}
	r.KernelArgs("ghost", 0)
	if got := r.FallbackCount(); got != 2 {
		t.Fatalf("FallbackCount = %d, want 2", got)
	}
}

func TestResultString(t *testing.T) {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("z", []kir.Param{{Name: "p", Type: kir.TPtrF64}},
		func(e *kir.Emitter) {
			e.StoreIdx(e.Arg("p"), e.ConstI(0), e.ConstF(1))
		}))
	m.Add(kir.KernelFunc("a", []kir.Param{{Name: "q", Type: kir.TPtrF64}},
		func(e *kir.Emitter) {
			_ = e.LoadIdx(e.Arg("q"), e.ConstI(0))
		}))
	r := analyze(t, m)
	s := r.String()
	if !strings.Contains(s, "a(r)") || !strings.Contains(s, "z(w)") {
		t.Fatalf("String() = %q", s)
	}
	if strings.Index(s, "a(") > strings.Index(s, "z(") {
		t.Fatal("summaries not sorted")
	}
}

func TestAccessStringAndPredicates(t *testing.T) {
	if None.String() != "none" || Read.String() != "r" || Write.String() != "w" || ReadWrite.String() != "rw" {
		t.Fatal("Access strings wrong")
	}
	if !ReadWrite.MayRead() || !ReadWrite.MayWrite() || Read.MayWrite() || Write.MayRead() {
		t.Fatal("Access predicates wrong")
	}
}
