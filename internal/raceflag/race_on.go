//go:build race

// Package raceflag reports whether the Go race detector is compiled in.
// Tests that deliberately execute racy *simulated* programs on the
// genuinely asynchronous device executor skip themselves under -race:
// the simulated race becomes a real (byte-level, benign-by-construction)
// Go race there, which is exactly the behaviour under test but trips the
// detector.
package raceflag

// Enabled is true in -race builds.
const Enabled = true
