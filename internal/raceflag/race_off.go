//go:build !race

package raceflag

// Enabled is true in -race builds.
const Enabled = false
