package must

import (
	"strings"
	"testing"

	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

// rig wires a 2-rank world where rank 0 is instrumented with MUST and
// rank 1 is a plain peer driven by a goroutine.
type rig struct {
	san  *tsan.Sanitizer
	ta   *typeart.Runtime
	rt   *Runtime
	comm *mpi.Comm
	mem  *memspace.Memory
	peer chan func(c *mpi.Comm, mem *memspace.Memory)
	done chan struct{}
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	w := mpi.NewWorld(2)
	san := tsan.New(tsan.Config{})
	ta := typeart.NewRuntime(nil)
	rt := New(san, ta, opts)
	mem := memspace.New()
	comm, err := w.AttachRank(0, mem, rt)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		san: san, ta: ta, rt: rt, comm: comm, mem: mem,
		peer: make(chan func(c *mpi.Comm, mem *memspace.Memory)),
		done: make(chan struct{}),
	}
	peerMem := memspace.New()
	peerComm, err := w.AttachRank(1, peerMem, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(r.done)
		for f := range r.peer {
			f(peerComm, peerMem)
		}
	}()
	t.Cleanup(func() {
		close(r.peer)
		<-r.done
	})
	return r
}

// allocTyped allocates and TypeART-tracks a float64 array on rank 0.
func (r *rig) allocF64(t *testing.T, count int64) memspace.Addr {
	t.Helper()
	a := r.mem.Alloc(count*8, memspace.KindHostPageable)
	if err := r.ta.Track(a, typeart.TypeFloat64, count, memspace.KindHostPageable); err != nil {
		t.Fatal(err)
	}
	return a
}

func (r *rig) hostWrite(a memspace.Addr, n int64) {
	r.san.WriteRange(a, n, &tsan.AccessInfo{Site: "host", Object: "compute"})
}

func (r *rig) hostRead(a memspace.Addr, n int64) {
	r.san.ReadRange(a, n, &tsan.AccessInfo{Site: "host", Object: "compute"})
}

// peerSends makes rank 1 send count float64s to rank 0.
func (r *rig) peerSends(count int) {
	r.peer <- func(c *mpi.Comm, mem *memspace.Memory) {
		buf := mem.Alloc(int64(count)*8, memspace.KindHostPageable)
		if err := c.Send(buf, count, mpi.Float64, 0, 0); err != nil {
			panic(err)
		}
	}
}

// peerRecvs makes rank 1 receive count float64s from rank 0.
func (r *rig) peerRecvs(count int) {
	r.peer <- func(c *mpi.Comm, mem *memspace.Memory) {
		buf := mem.Alloc(int64(count)*8, memspace.KindHostPageable)
		if _, err := c.Recv(buf, count, mpi.Float64, 0, 0); err != nil {
			panic(err)
		}
	}
}

// TestFig1IrecvRace reproduces paper Fig. 1: the host writes the receive
// buffer between MPI_Irecv and MPI_Wait — a race with the concurrent
// receive.
func TestFig1IrecvRace(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 16)
	r.peerSends(16)
	req, err := r.comm.Irecv(buf, 16, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.hostWrite(buf, 16*8) // compute(buf) inside the concurrent region
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	if r.san.RaceCount() == 0 {
		t.Fatal("expected race: host write inside Irecv's concurrent region")
	}
	reps := r.san.Reports()
	if !strings.Contains(reps[0].String(), "MPI_Irecv") {
		t.Fatalf("report does not name MPI_Irecv:\n%s", reps[0])
	}
}

func TestIrecvThenWaitThenAccessIsClean(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 16)
	r.peerSends(16)
	req, err := r.comm.Irecv(buf, 16, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	r.hostWrite(buf, 16*8)
	if got := r.san.RaceCount(); got != 0 {
		t.Fatalf("false positive after Wait: %d races\n%v", got, r.san.Reports())
	}
}

func TestHostReadOfIrecvBufferAlsoRaces(t *testing.T) {
	// Irecv WRITES the buffer; a host read before Wait conflicts.
	r := newRig(t, Options{})
	buf := r.allocF64(t, 8)
	r.peerSends(8)
	req, err := r.comm.Irecv(buf, 8, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.hostRead(buf, 8*8)
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	if r.san.RaceCount() == 0 {
		t.Fatal("expected race: read of in-flight receive buffer")
	}
}

func TestIsendBufferWriteRaces(t *testing.T) {
	// Host modifies the send buffer while Isend is in flight.
	r := newRig(t, Options{})
	buf := r.allocF64(t, 8)
	r.peerRecvs(8)
	req, err := r.comm.Isend(buf, 8, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.hostWrite(buf, 8*8)
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	if r.san.RaceCount() == 0 {
		t.Fatal("expected race: write to in-flight send buffer")
	}
}

func TestIsendBufferReadIsAllowed(t *testing.T) {
	// Reading a buffer an Isend also reads is no race.
	r := newRig(t, Options{})
	buf := r.allocF64(t, 8)
	r.peerRecvs(8)
	req, err := r.comm.Isend(buf, 8, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.hostRead(buf, 8*8)
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	if got := r.san.RaceCount(); got != 0 {
		t.Fatalf("read-read flagged: %d races", got)
	}
}

func TestHostWriteBeforeIsendIsOrdered(t *testing.T) {
	// Filling the buffer BEFORE Isend must not race (program order is
	// carried onto the request fiber).
	r := newRig(t, Options{})
	buf := r.allocF64(t, 8)
	r.hostWrite(buf, 8*8)
	r.peerRecvs(8)
	req, err := r.comm.Isend(buf, 8, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.comm.Wait(req); err != nil {
		t.Fatal(err)
	}
	if got := r.san.RaceCount(); got != 0 {
		t.Fatalf("false positive on write-then-Isend: %d\n%v", got, r.san.Reports())
	}
}

func TestBlockingSendAnnotatesRead(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 4)
	r.peerRecvs(4)
	if err := r.comm.Send(buf, 4, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	st := r.san.Stats()
	if st.ReadRangeCalls != 1 || st.ReadBytes != 32 {
		t.Fatalf("send annotation: %+v", st)
	}
	// Blocking call: buffer reusable right after — no race.
	r.hostWrite(buf, 32)
	if r.san.RaceCount() != 0 {
		t.Fatal("blocking send must not leave a concurrent region")
	}
}

func TestBlockingRecvAnnotatesWrite(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 4)
	r.peerSends(4)
	if _, err := r.comm.Recv(buf, 4, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	st := r.san.Stats()
	if st.WriteRangeCalls != 1 || st.WriteBytes != 32 {
		t.Fatalf("recv annotation: %+v", st)
	}
}

func TestFiberPooling(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 2)
	for i := 0; i < 5; i++ {
		r.peerSends(2)
		req, err := r.comm.Irecv(buf, 2, mpi.Float64, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.comm.Wait(req); err != nil {
			t.Fatal(err)
		}
	}
	st := r.rt.Stats()
	if st.FibersCreated != 1 || st.FibersReused != 4 {
		t.Fatalf("pooling: created=%d reused=%d", st.FibersCreated, st.FibersReused)
	}
}

func TestTwoConcurrentRequestsUseTwoFibers(t *testing.T) {
	r := newRig(t, Options{})
	a := r.allocF64(t, 2)
	b := r.allocF64(t, 2)
	r.peerSends(2)
	r.peerSends(2)
	ra, err := r.comm.Irecv(a, 2, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.comm.Irecv(b, 2, mpi.Float64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.comm.WaitAll(ra, rb); err != nil {
		t.Fatal(err)
	}
	if got := r.rt.Stats().FibersCreated; got != 2 {
		t.Fatalf("fibers created = %d, want 2", got)
	}
	if r.san.RaceCount() != 0 {
		t.Fatal("disjoint concurrent requests must not race")
	}
}

func TestTypeMismatchDetected(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 4)
	r.peerRecvs(8) // peer posts 8 ints worth of bytes = 32
	if err := r.comm.Send(buf, 8, mpi.Int32, 1, 0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range r.rt.Issues() {
		if is.Kind == IssueTypeMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("type mismatch not reported: %v", r.rt.Issues())
	}
}

func TestBufferTooSmallDetected(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 4)
	r.peerRecvs(8)
	if err := r.comm.Send(buf, 8, mpi.Float64, 1, 0); err == nil {
		t.Fatal("mpi layer should reject out-of-bounds read")
	}
	found := false
	for _, is := range r.rt.Issues() {
		if is.Kind == IssueBufferTooSmall {
			found = true
		}
	}
	if !found {
		t.Fatalf("buffer-too-small not reported: %v", r.rt.Issues())
	}
	// Unblock the peer.
	smaller := r.allocF64(t, 8)
	if err := r.comm.Send(smaller, 8, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownBufferDetected(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.mem.Alloc(32, memspace.KindHostPageable) // not TypeART-tracked
	r.peerRecvs(4)
	if err := r.comm.Send(buf, 4, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range r.rt.Issues() {
		if is.Kind == IssueUnknownBuffer {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown buffer not reported: %v", r.rt.Issues())
	}
}

func TestUntypedByteAllocationCompatible(t *testing.T) {
	// A raw (u8-tracked) allocation used as MPI_DOUBLE: extent-checked
	// but no type mismatch (cudaMalloc is untyped).
	r := newRig(t, Options{})
	buf := r.mem.Alloc(64, memspace.KindDevice)
	if err := r.ta.Track(buf, typeart.TypeUint8, 64, memspace.KindDevice); err != nil {
		t.Fatal(err)
	}
	r.peerRecvs(8)
	if err := r.comm.Send(buf, 8, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.rt.IssueCount(); got != 0 {
		t.Fatalf("issues on untyped buffer: %v", r.rt.Issues())
	}
}

func TestDisableTypeChecks(t *testing.T) {
	r := newRig(t, Options{DisableTypeChecks: true})
	buf := r.mem.Alloc(32, memspace.KindHostPageable)
	r.peerRecvs(4)
	if err := r.comm.Send(buf, 4, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	if r.rt.IssueCount() != 0 {
		t.Fatal("type checks ran despite being disabled")
	}
}

func TestRequestLeakAtFinalize(t *testing.T) {
	r := newRig(t, Options{})
	buf := r.allocF64(t, 2)
	if _, err := r.comm.Irecv(buf, 2, mpi.Float64, 1, 0); err != nil {
		t.Fatal(err)
	}
	r.comm.Finalize()
	found := false
	for _, is := range r.rt.Issues() {
		if is.Kind == IssueRequestLeak {
			found = true
			if !strings.Contains(is.Detail, "irecv") {
				t.Errorf("leak detail lacks request info: %s", is.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("request leak not reported: %v", r.rt.Issues())
	}
	// Unblock the matching engine for teardown.
	r.peerSends(2)
}

func TestCollectiveAnnotations(t *testing.T) {
	// A 1-rank world exercises the collective hook path determinstically.
	w := mpi.NewWorld(1)
	san := tsan.New(tsan.Config{})
	ta := typeart.NewRuntime(nil)
	rt := New(san, ta, Options{})
	mem := memspace.New()
	comm, err := w.AttachRank(0, mem, rt)
	if err != nil {
		t.Fatal(err)
	}
	send := mem.Alloc(16, memspace.KindHostPageable)
	recv := mem.Alloc(16, memspace.KindHostPageable)
	if err := ta.Track(send, typeart.TypeFloat64, 2, memspace.KindHostPageable); err != nil {
		t.Fatal(err)
	}
	if err := comm.Allreduce(send, recv, 2, mpi.Float64, mpi.OpSum); err != nil {
		t.Fatal(err)
	}
	st := san.Stats()
	if st.ReadRangeCalls != 1 || st.WriteRangeCalls != 1 {
		t.Fatalf("collective annotations: %+v", st)
	}
	if rt.Stats().Collectives != 1 {
		t.Fatalf("collective count = %d", rt.Stats().Collectives)
	}
}

func TestIssueStringFormat(t *testing.T) {
	is := &Issue{Kind: IssueTypeMismatch, Call: "MPI_Send", Detail: "x"}
	s := is.String()
	if !strings.Contains(s, "type-mismatch") || !strings.Contains(s, "MPI_Send") {
		t.Fatalf("issue string = %q", s)
	}
}
