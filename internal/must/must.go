// Package must reproduces the MUST runtime's role in the paper (§II-B):
// an MPI interception layer that (i) exposes MPI memory-access and
// synchronization semantics to the race detector and (ii) performs
// TypeART-backed datatype and buffer checks.
//
// Race modeling follows the published MUST/TSan integration:
//
//   - Blocking calls annotate their buffer accesses on the host fiber
//     (a blocking send reads the buffer, a blocking receive writes it) —
//     sufficient because the call completes before returning.
//   - Each non-blocking call gets a TSan fiber modeling its concurrent
//     region (paper Fig. 1): at initiation the runtime switches to the
//     fiber (carrying host program order in), annotates the buffer access
//     there, releases the request's sync key, and switches back without
//     synchronization; the completion call (MPI_Wait/successful Test)
//     acquires the key on the host. Any host access to the buffer between
//     initiation and completion is therefore concurrent with the fiber's
//     access — a race if conflicting.
//   - Fibers are pooled and recycled after completion, bounding the
//     vector-clock width by the number of in-flight requests.
package must

import (
	"fmt"
	"strings"

	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/tsan"
	"cusango/internal/typeart"
)

const keyClassRequest uint8 = 4

// IssueKind classifies non-race findings.
type IssueKind uint8

// Issue kinds.
const (
	// IssueTypeMismatch: buffer element type incompatible with the MPI
	// datatype.
	IssueTypeMismatch IssueKind = iota
	// IssueBufferTooSmall: count exceeds the allocation extent.
	IssueBufferTooSmall
	// IssueUnknownBuffer: the buffer is not a tracked allocation.
	IssueUnknownBuffer
	// IssueRequestLeak: requests never completed before MPI_Finalize.
	IssueRequestLeak
)

func (k IssueKind) String() string {
	return [...]string{"type-mismatch", "buffer-too-small", "unknown-buffer", "request-leak"}[k]
}

// Issue is one MUST finding.
type Issue struct {
	Kind   IssueKind
	Call   string
	Detail string
}

func (i *Issue) String() string {
	return fmt.Sprintf("MUST %s in %s: %s", i.Kind, i.Call, i.Detail)
}

// Options tunes the runtime.
type Options struct {
	// DisableTypeChecks turns off the TypeART-backed datatype analysis
	// (MUST can be configured to only check data races, as in the
	// paper's evaluation).
	DisableTypeChecks bool
	// OnIssue, if set, is invoked per finding.
	OnIssue func(*Issue)
	// MaxIssues caps stored issues (default 128).
	MaxIssues int
}

// Stats counts runtime events.
type Stats struct {
	BlockingCalls    int64
	NonBlockingCalls int64
	Completions      int64
	Collectives      int64
	FibersCreated    int64
	FibersReused     int64
	TypeChecks       int64
	IssuesFound      int64
}

// Runtime is the per-rank MUST instance; install it on a Comm via
// SetHooks.
type Runtime struct {
	san  *tsan.Sanitizer
	ta   *typeart.Runtime
	opts Options

	pool      []*tsan.Fiber
	reqFibers map[*mpi.Request]*tsan.Fiber
	reqKeys   map[*mpi.Request]tsan.SyncKey
	keySeq    uint64

	issues []*Issue
	st     Stats

	sendInfo  *tsan.AccessInfo
	recvInfo  *tsan.AccessInfo
	isendInfo *tsan.AccessInfo
	irecvInfo *tsan.AccessInfo
	collRead  map[string]*tsan.AccessInfo
	collWrite map[string]*tsan.AccessInfo
}

var _ mpi.Hooks = (*Runtime)(nil)

// New creates a MUST runtime. ta may be nil when type checks are
// disabled.
func New(san *tsan.Sanitizer, ta *typeart.Runtime, opts Options) *Runtime {
	if opts.MaxIssues <= 0 {
		opts.MaxIssues = 128
	}
	return &Runtime{
		san:       san,
		ta:        ta,
		opts:      opts,
		reqFibers: make(map[*mpi.Request]*tsan.Fiber),
		reqKeys:   make(map[*mpi.Request]tsan.SyncKey),
		sendInfo:  &tsan.AccessInfo{Site: "MPI_Send", Object: "send buffer"},
		recvInfo:  &tsan.AccessInfo{Site: "MPI_Recv", Object: "recv buffer"},
		isendInfo: &tsan.AccessInfo{Site: "MPI_Isend", Object: "send buffer"},
		irecvInfo: &tsan.AccessInfo{Site: "MPI_Irecv", Object: "recv buffer"},
		collRead:  make(map[string]*tsan.AccessInfo),
		collWrite: make(map[string]*tsan.AccessInfo),
	}
}

// Issues returns the stored findings.
func (r *Runtime) Issues() []*Issue {
	out := make([]*Issue, len(r.issues))
	copy(out, r.issues)
	return out
}

// IssueCount returns the number of findings (including past the cap).
func (r *Runtime) IssueCount() int64 { return r.st.IssuesFound }

// Stats returns a snapshot of the event counters.
func (r *Runtime) Stats() Stats { return r.st }

func (r *Runtime) report(kind IssueKind, call, format string, args ...any) {
	is := &Issue{Kind: kind, Call: call, Detail: fmt.Sprintf(format, args...)}
	r.st.IssuesFound++
	if len(r.issues) < r.opts.MaxIssues {
		r.issues = append(r.issues, is)
	}
	if r.opts.OnIssue != nil {
		r.opts.OnIssue(is)
	}
}

// checkBuffer performs the TypeART datatype/extent analysis of paper
// Fig. 2 for one buffer argument.
func (r *Runtime) checkBuffer(call string, buf memspace.Addr, count int, dt mpi.Datatype) {
	if r.opts.DisableTypeChecks || r.ta == nil || count == 0 {
		return
	}
	r.st.TypeChecks++
	rec, off, ok := r.ta.Lookup(buf)
	if !ok {
		r.report(IssueUnknownBuffer, call,
			"buffer 0x%x is not a tracked allocation", uint64(buf))
		return
	}
	need := int64(count) * dt.Size
	if off+need > rec.Bytes() {
		r.report(IssueBufferTooSmall, call,
			"count %d x %s needs %d bytes, allocation has %d past the pointer",
			count, dt.Name, need, rec.Bytes()-off)
	}
	// Untyped allocations (tracked as byte arrays, e.g. raw cudaMalloc)
	// are layout-compatible with any datatype; concrete element types
	// must match the MPI datatype.
	if rec.Type != typeart.TypeUint8 && rec.Type != dt.TypeartID {
		info := r.ta.Reg.Info(rec.Type)
		name := fmt.Sprintf("type %d", rec.Type)
		if info != nil {
			name = info.Name
		}
		r.report(IssueTypeMismatch, call,
			"buffer of %s used as %s", name, dt.Name)
	}
}

// --- fiber pool -----------------------------------------------------------

func (r *Runtime) acquireFiber() *tsan.Fiber {
	if n := len(r.pool); n > 0 {
		f := r.pool[n-1]
		r.pool = r.pool[:n-1]
		r.st.FibersReused++
		return f
	}
	r.st.FibersCreated++
	return r.san.CreateFiber(fmt.Sprintf("MPI request fiber %d", r.st.FibersCreated))
}

func (r *Runtime) releaseFiber(f *tsan.Fiber) { r.pool = append(r.pool, f) }

func (r *Runtime) nextKey() tsan.SyncKey {
	r.keySeq++
	return tsan.MakeKey(keyClassRequest, r.keySeq)
}

// --- blocking p2p ----------------------------------------------------------

// PreSend annotates the blocking send's buffer read on the host fiber.
func (r *Runtime) PreSend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int) {
	r.st.BlockingCalls++
	r.checkBuffer("MPI_Send", buf, count, dt)
	r.san.ReadRange(buf, int64(count)*dt.Size, r.sendInfo)
}

// PostSend implements mpi.Hooks.
func (r *Runtime) PostSend(memspace.Addr, int, mpi.Datatype, int, int) {}

// PreRecv checks the posted buffer.
func (r *Runtime) PreRecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int) {
	r.st.BlockingCalls++
	r.checkBuffer("MPI_Recv", buf, count, dt)
}

// PostRecv annotates the received bytes as written by the host fiber.
func (r *Runtime) PostRecv(buf memspace.Addr, count int, dt mpi.Datatype, st mpi.Status) {
	r.san.WriteRange(buf, int64(st.Count)*dt.Size, r.recvInfo)
}

// --- non-blocking p2p (paper Fig. 1) ----------------------------------------

// nonBlockingStart runs the initiation protocol: enter the request's
// fiber with host program order, annotate the buffer access, release the
// request key, and leave without synchronization.
func (r *Runtime) nonBlockingStart(req *mpi.Request, buf memspace.Addr, bytes int64,
	write bool, info *tsan.AccessInfo) {
	r.st.NonBlockingCalls++
	f := r.acquireFiber()
	key := r.nextKey()
	r.reqFibers[req] = f
	r.reqKeys[req] = key
	r.san.SwitchFiberSync(f)
	if write {
		r.san.WriteRange(buf, bytes, info)
	} else {
		r.san.ReadRange(buf, bytes, info)
	}
	r.san.HappensBefore(key)
	r.san.SwitchFiber(r.san.HostFiber())
}

// PreIsend models the concurrent buffer read of a non-blocking send.
func (r *Runtime) PreIsend(buf memspace.Addr, count int, dt mpi.Datatype, dest, tag int, req *mpi.Request) {
	r.checkBuffer("MPI_Isend", buf, count, dt)
	r.nonBlockingStart(req, buf, int64(count)*dt.Size, false, r.isendInfo)
}

// PreIrecv models the concurrent buffer write of a non-blocking receive.
func (r *Runtime) PreIrecv(buf memspace.Addr, count int, dt mpi.Datatype, src, tag int, req *mpi.Request) {
	r.checkBuffer("MPI_Irecv", buf, count, dt)
	r.nonBlockingStart(req, buf, int64(count)*dt.Size, true, r.irecvInfo)
}

// PreWait implements mpi.Hooks.
func (r *Runtime) PreWait(*mpi.Request) {}

// PostWait synchronizes the request's fiber with the host: the
// concurrent region of paper Fig. 1 ends here.
func (r *Runtime) PostWait(req *mpi.Request, st mpi.Status) {
	key, ok := r.reqKeys[req]
	if !ok {
		return // request initiated before MUST was installed
	}
	r.st.Completions++
	r.san.HappensAfter(key)
	delete(r.reqKeys, req)
	if f := r.reqFibers[req]; f != nil {
		delete(r.reqFibers, req)
		r.releaseFiber(f)
	}
}

// --- collectives -------------------------------------------------------------

func (r *Runtime) collInfo(m map[string]*tsan.AccessInfo, name, obj string) *tsan.AccessInfo {
	if ai, ok := m[name]; ok {
		return ai
	}
	ai := &tsan.AccessInfo{Site: name, Object: obj}
	m[name] = ai
	return ai
}

// PreCollective annotates the collective's local buffer read on the host
// fiber (blocking semantics).
func (r *Runtime) PreCollective(name string, read memspace.Addr, readBytes int64,
	write memspace.Addr, writeBytes int64) {
	r.st.Collectives++
	if read != 0 && readBytes > 0 {
		r.san.ReadRange(read, readBytes, r.collInfo(r.collRead, name, "send buffer"))
	}
}

// PostCollective annotates the local result write.
func (r *Runtime) PostCollective(name string, read memspace.Addr, readBytes int64,
	write memspace.Addr, writeBytes int64) {
	if write != 0 && writeBytes > 0 {
		r.san.WriteRange(write, writeBytes, r.collInfo(r.collWrite, name, "recv buffer"))
	}
}

// PreFinalize runs completion checks: leaked (never-completed) requests.
func (r *Runtime) PreFinalize() {
	if len(r.reqKeys) == 0 {
		return
	}
	var pend []string
	for req := range r.reqKeys {
		pend = append(pend, req.String())
	}
	r.report(IssueRequestLeak, "MPI_Finalize",
		"%d request(s) never completed: %s", len(pend), strings.Join(pend, ", "))
}
