// Package faults is the deterministic fault-injection plane.
//
// Real CUDA-aware MPI runs fail: allocations exhaust, kernels abort,
// messages truncate, ranks die mid-collective. The paper's semantics
// table (§III) covers only the happy path, but a correctness tool must
// never make a failing run worse — it has to keep its verdicts stable
// (no fabricated races) and report what it saw. This package perturbs
// the simulated CUDA and MPI runtimes at their existing interception
// points so that property can be exercised and regression-tested.
//
// Every decision is a pure function of a (seed, rank, site, occurrence)
// tuple: the runtimes count how many times each injection site is
// reached on each rank, and a splitmix64-style hash of the tuple is
// compared against the site's configured rate. There is no global
// state, no clock, and no real randomness, so a failure observed once
// is replayed exactly by naming its triple — the error string of every
// injected fault carries a ready-to-paste `cusan-run -faults` spec.
//
// A Plan describes what to inject (rates per site and/or explicit
// picks); a per-rank Injector applies it. Sites whose faults surface as
// API errors are "erroring"; jitter and delayed completion are benign
// perturbations that stay within the documented CUDA/MPI semantics.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Site identifies one fault-injection point in the simulated runtimes.
type Site uint8

// Injection sites. The numeric values are internal; the stable names
// used in -faults specs are the String forms below.
const (
	siteInvalid Site = iota

	// CudaMalloc fails cudaMalloc/cudaMallocHost/cudaMallocManaged with
	// cudaErrorMemoryAllocation.
	CudaMalloc
	// CudaLaunch fails cudaLaunchKernel with cudaErrorLaunchFailure.
	CudaLaunch
	// CudaStreamHandle invalidates a user stream handle at a call that
	// takes one (sync, query, wait, async memop, launch, destroy).
	CudaStreamHandle
	// CudaEventHandle invalidates an event handle at a call that takes
	// one (record, sync, query, stream-wait, destroy).
	CudaEventHandle
	// CudaAsyncJitter delays one asynchronously-enqueued stream
	// operation by a deterministic amount. FIFO order within a stream
	// and all cross-stream dependencies are preserved — this only
	// shifts real-time completion, exactly what the documented
	// semantics allow.
	CudaAsyncJitter
	// MPIDelayCompletion makes MPI_Test report an incomplete request
	// even though it could complete — legal under MPI progress rules.
	MPIDelayCompletion
	// MPITruncateRecv completes a receive with MPI_ERR_TRUNCATE as if
	// the incoming message were longer than the posted buffer.
	MPITruncateRecv
	// MPIRankAbort makes the rank abort the job at an MPI call, as if
	// the process died mid-iteration; all other ranks' pending and
	// future MPI calls fail with mpi.ErrAborted.
	MPIRankAbort
	// SchedStall hangs the rank at an MPI call until the job is torn
	// down (watchdog cancel, abort, or teardown), modelling a wedged
	// process. It is excluded from Seeded plans and the "rate=" blanket
	// — it only fires when named explicitly — because a stalled rank
	// needs an external supervisor (deadline or step budget) to make
	// the run terminate at all.
	SchedStall

	numSites
)

var siteNames = [numSites]string{
	CudaMalloc:         "cuda-malloc",
	CudaLaunch:         "cuda-launch",
	CudaStreamHandle:   "cuda-stream-handle",
	CudaEventHandle:    "cuda-event-handle",
	CudaAsyncJitter:    "cuda-async-jitter",
	MPIDelayCompletion: "mpi-delay",
	MPITruncateRecv:    "mpi-truncate",
	MPIRankAbort:       "mpi-abort",
	SchedStall:         "sched-stall",
}

func (s Site) String() string {
	if s > siteInvalid && s < numSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site?%d", uint8(s))
}

// Erroring reports whether faults at this site surface as API errors.
// The benign perturbation sites (async jitter, delayed completion)
// change timing but never produce an error or alter results.
func (s Site) Erroring() bool {
	return s != CudaAsyncJitter && s != MPIDelayCompletion
}

// Soakable reports whether blanket rates ("rate=F" specs and Seeded
// plans) apply to this site. SchedStall is excluded: a stalled rank
// never terminates on its own, so soaking it into every chaos schedule
// would make unsupervised runs hang. It still fires when a spec names
// it explicitly (sched-stall=F or sched-stall@N[:rK]).
func (s Site) Soakable() bool {
	return s != SchedStall
}

// ParseSite resolves a stable site name from a -faults spec.
func ParseSite(name string) (Site, error) {
	for s := siteInvalid + 1; s < numSites; s++ {
		if siteNames[s] == name {
			return s, nil
		}
	}
	return siteInvalid, fmt.Errorf("faults: unknown site %q (have: %s)",
		name, strings.Join(SiteNames(), ", "))
}

// Sites returns every injection site in stable order.
func Sites() []Site {
	out := make([]Site, 0, numSites-1)
	for s := siteInvalid + 1; s < numSites; s++ {
		out = append(out, s)
	}
	return out
}

// SiteNames returns the stable spec names of every site.
func SiteNames() []string {
	names := make([]string, 0, numSites-1)
	for _, s := range Sites() {
		names = append(names, s.String())
	}
	return names
}

// Fault identifies one injected fault. It implements error; injected
// failures wrap it, so errors.As recovers the exact (seed, site,
// occurrence) triple from any error an injection produced.
type Fault struct {
	Seed       uint64
	Rank       int
	Site       Site
	Occurrence uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("injected fault: %s occurrence %d on rank %d (replay: -faults %q)",
		f.Site, f.Occurrence, f.Rank, f.Spec())
}

// Spec returns a -faults spec that deterministically re-injects exactly
// this fault and nothing else.
func (f *Fault) Spec() string {
	return fmt.Sprintf("%s@%d:r%d", f.Site, f.Occurrence, f.Rank)
}

// Extract returns the Fault an error carries, if any.
func Extract(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Pick requests that a site's Nth occurrence (0-based) fault
// unconditionally, independent of any rate.
type Pick struct {
	Site       Site
	Occurrence uint64
	Rank       int // -1 = every rank
}

// Plan is a complete, self-describing fault schedule. The zero value
// (and a nil *Plan) injects nothing.
type Plan struct {
	// Seed parameterizes every rate-based decision.
	Seed uint64
	// Rates maps each site to its per-occurrence fault probability in
	// [0, 1]. Sites absent from the map never fire by rate.
	Rates map[Site]float64
	// Picks are unconditional (site, occurrence, rank) selections,
	// applied in addition to the rates.
	Picks []Pick
}

// Seeded returns a plan firing every soakable site at the given rate —
// the schedule shape the chaos soak harness uses. Non-soakable sites
// (SchedStall) are omitted so chaos runs terminate without supervision.
func Seeded(seed uint64, rate float64) *Plan {
	rates := make(map[Site]float64, numSites-1)
	for _, s := range Sites() {
		if s.Soakable() {
			rates[s] = rate
		}
	}
	return &Plan{Seed: seed, Rates: rates}
}

// Injector returns the rank's injector for this plan. A nil plan
// returns a nil injector, which is valid and injects nothing.
func (p *Plan) Injector(rank int) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p, rank: rank}
}

// String renders the plan as a canonical -faults spec: Parse(p.String())
// reproduces the plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	sites := make([]Site, 0, len(p.Rates))
	for s := range p.Rates {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		if r := p.Rates[s]; r > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", s,
				strconv.FormatFloat(r, 'g', -1, 64)))
		}
	}
	for _, pk := range p.Picks {
		if pk.Rank < 0 {
			parts = append(parts, fmt.Sprintf("%s@%d", pk.Site, pk.Occurrence))
		} else {
			parts = append(parts, fmt.Sprintf("%s@%d:r%d", pk.Site, pk.Occurrence, pk.Rank))
		}
	}
	return strings.Join(parts, ",")
}

// Parse builds a plan from a -faults spec: comma-separated clauses of
//
//	seed=N            seed for rate-based decisions (decimal or 0x hex)
//	rate=F            fault probability applied to every site
//	<site>=F          fault probability for one site
//	<site>@N          fail the site's Nth occurrence (0-based), any rank
//	<site>@N:rK       fail the site's Nth occurrence on rank K only
//
// e.g. "seed=7,rate=0.05" or "cuda-malloc@2:r1". An empty spec yields
// a nil plan (inject nothing).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Rates: map[Site]float64{}}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.Contains(clause, "="):
			kv := strings.SplitN(clause, "=", 2)
			key, val := kv[0], kv[1]
			switch key {
			case "seed":
				n, err := strconv.ParseUint(val, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
				}
				p.Seed = n
			case "rate":
				r, err := parseRate(val)
				if err != nil {
					return nil, err
				}
				for _, s := range Sites() {
					if s.Soakable() {
						p.Rates[s] = r
					}
				}
			default:
				site, err := ParseSite(key)
				if err != nil {
					return nil, err
				}
				r, err := parseRate(val)
				if err != nil {
					return nil, err
				}
				p.Rates[site] = r
			}
		case strings.Contains(clause, "@"):
			at := strings.SplitN(clause, "@", 2)
			site, err := ParseSite(at[0])
			if err != nil {
				return nil, err
			}
			rest := at[1]
			rank := -1
			if i := strings.Index(rest, ":"); i >= 0 {
				rs := rest[i+1:]
				if !strings.HasPrefix(rs, "r") {
					return nil, fmt.Errorf("faults: bad rank suffix %q (want :rK)", rs)
				}
				k, err := strconv.Atoi(rs[1:])
				if err != nil || k < 0 {
					return nil, fmt.Errorf("faults: bad rank %q", rs[1:])
				}
				rank = k
				rest = rest[:i]
			}
			occ, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad occurrence %q: %v", rest, err)
			}
			p.Picks = append(p.Picks, Pick{Site: site, Occurrence: occ, Rank: rank})
		default:
			return nil, fmt.Errorf("faults: bad clause %q (want key=value or site@occurrence[:rK])", clause)
		}
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("faults: bad rate %q (want a probability in [0,1])", val)
	}
	return r, nil
}

// Injector applies a plan on one rank. It is safe for concurrent use
// (async stream executors fire jitter decisions from their own
// goroutines); a nil *Injector is valid and injects nothing.
type Injector struct {
	plan *Plan
	rank int

	mu     sync.Mutex
	counts [numSites]uint64
	fired  []*Fault
}

// Fire advances the site's occurrence counter and returns a non-nil
// Fault when the plan selects this occurrence. Every reach of an
// injection site must call Fire exactly once so occurrence numbering
// stays deterministic.
func (in *Injector) Fire(site Site) *Fault {
	if in == nil || site <= siteInvalid || site >= numSites {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.counts[site]
	in.counts[site] = n + 1
	if !in.decide(site, n) {
		return nil
	}
	f := &Fault{Seed: in.plan.Seed, Rank: in.rank, Site: site, Occurrence: n}
	in.fired = append(in.fired, f)
	return f
}

func (in *Injector) decide(site Site, n uint64) bool {
	for _, pk := range in.plan.Picks {
		if pk.Site == site && pk.Occurrence == n && (pk.Rank < 0 || pk.Rank == in.rank) {
			return true
		}
	}
	rate := in.plan.Rates[site]
	switch {
	case rate <= 0:
		return false
	case rate >= 1:
		return true
	default:
		return chance(in.plan.Seed, in.rank, site, n) < rate
	}
}

// Count returns how many times the site has been reached so far.
func (in *Injector) Count(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// Fired returns a snapshot of every fault injected so far, in firing
// order.
func (in *Injector) Fired() []*Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]*Fault, len(in.fired))
	copy(out, in.fired)
	return out
}

// chance maps (seed, rank, site, occurrence) to a uniform value in
// [0, 1) via splitmix64 finalization over the mixed-in tuple.
func chance(seed uint64, rank int, site Site, n uint64) float64 {
	h := seed
	h = mix(h ^ (uint64(rank) + 0x9e3779b97f4a7c15))
	h = mix(h ^ uint64(site))
	h = mix(h ^ n)
	return float64(h>>11) / (1 << 53)
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
