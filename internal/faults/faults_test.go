package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestDeterminism: the same plan yields the same firing decisions on
// every replay — the core replayability property.
func TestDeterminism(t *testing.T) {
	run := func() []Fault {
		in := Seeded(42, 0.1).Injector(1)
		var fired []Fault
		for i := 0; i < 500; i++ {
			for _, s := range Sites() {
				if f := in.Fire(s); f != nil {
					fired = append(fired, *f)
				}
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.1 over 500 occurrences fired nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged: %d vs %d faults", len(a), len(b))
	}
}

// TestSeedAndRankVary: different seeds and different ranks make
// different decisions (otherwise the plane is not exploring anything).
func TestSeedAndRankVary(t *testing.T) {
	pattern := func(seed uint64, rank int) string {
		in := Seeded(seed, 0.2).Injector(rank)
		s := ""
		for i := 0; i < 200; i++ {
			if in.Fire(CudaMalloc) != nil {
				s += "x"
			} else {
				s += "."
			}
		}
		return s
	}
	if pattern(1, 0) == pattern(2, 0) {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
	if pattern(1, 0) == pattern(1, 1) {
		t.Error("ranks 0 and 1 produced identical schedules")
	}
}

// TestRateZeroAndOne: degenerate rates behave exactly.
func TestRateZeroAndOne(t *testing.T) {
	never := Seeded(9, 0).Injector(0)
	always := Seeded(9, 1).Injector(0)
	for i := 0; i < 100; i++ {
		if never.Fire(MPITruncateRecv) != nil {
			t.Fatal("rate 0 fired")
		}
		if always.Fire(MPITruncateRecv) == nil {
			t.Fatal("rate 1 did not fire")
		}
	}
}

// TestRateRough: over many occurrences the empirical rate lands near
// the configured one.
func TestRateRough(t *testing.T) {
	in := Seeded(1234, 0.25).Injector(0)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if in.Fire(CudaLaunch) != nil {
			n++
		}
	}
	got := float64(n) / trials
	if got < 0.22 || got > 0.28 {
		t.Fatalf("empirical rate %.3f far from 0.25", got)
	}
}

// TestPick: an explicit pick fires exactly its occurrence on its rank.
func TestPick(t *testing.T) {
	plan := &Plan{Picks: []Pick{{Site: CudaMalloc, Occurrence: 3, Rank: 1}}}
	r0 := plan.Injector(0)
	r1 := plan.Injector(1)
	for i := 0; i < 10; i++ {
		if f := r0.Fire(CudaMalloc); f != nil {
			t.Fatalf("rank 0 fired at occurrence %d", i)
		}
		f := r1.Fire(CudaMalloc)
		if (f != nil) != (i == 3) {
			t.Fatalf("rank 1 occurrence %d: fired=%v", i, f != nil)
		}
		if f != nil && (f.Site != CudaMalloc || f.Occurrence != 3 || f.Rank != 1) {
			t.Fatalf("wrong fault identity: %+v", f)
		}
	}
}

// TestFaultSpecRoundTrip: the spec a Fault prints re-parses into a plan
// that re-injects exactly that fault.
func TestFaultSpecRoundTrip(t *testing.T) {
	f := &Fault{Seed: 77, Rank: 1, Site: MPITruncateRecv, Occurrence: 5}
	plan, err := Parse(f.Spec())
	if err != nil {
		t.Fatalf("Parse(%q): %v", f.Spec(), err)
	}
	in := plan.Injector(1)
	for i := uint64(0); i < 10; i++ {
		got := in.Fire(MPITruncateRecv)
		if (got != nil) != (i == 5) {
			t.Fatalf("occurrence %d: fired=%v", i, got != nil)
		}
	}
	if plan.Injector(0).decide(MPITruncateRecv, 5) {
		t.Error("rank-qualified pick fired on the wrong rank")
	}
}

// TestParse covers the spec grammar.
func TestParse(t *testing.T) {
	p, err := Parse("seed=0x10,rate=0.5,cuda-malloc=1,mpi-abort@2,cuda-launch@0:r3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 16 {
		t.Errorf("seed = %d, want 16", p.Seed)
	}
	if p.Rates[MPIDelayCompletion] != 0.5 || p.Rates[CudaMalloc] != 1 {
		t.Errorf("rates wrong: %v", p.Rates)
	}
	want := []Pick{
		{Site: MPIRankAbort, Occurrence: 2, Rank: -1},
		{Site: CudaLaunch, Occurrence: 0, Rank: 3},
	}
	if !reflect.DeepEqual(p.Picks, want) {
		t.Errorf("picks = %+v, want %+v", p.Picks, want)
	}

	if p, err := Parse(""); err != nil || p != nil {
		t.Errorf("empty spec: plan=%v err=%v, want nil/nil", p, err)
	}
	for _, bad := range []string{
		"seed=x", "rate=2", "rate=-1", "nope=0.5", "nope@3",
		"cuda-malloc@x", "cuda-malloc@1:q2", "cuda-malloc@1:rx", "bare",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestPlanStringRoundTrip: String() is a parseable canonical form.
func TestPlanStringRoundTrip(t *testing.T) {
	p := &Plan{
		Seed:  9,
		Rates: map[Site]float64{CudaMalloc: 0.25, MPIRankAbort: 0.01},
		Picks: []Pick{{Site: CudaLaunch, Occurrence: 7, Rank: -1}},
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if p2.Seed != p.Seed || !reflect.DeepEqual(p2.Picks, p.Picks) {
		t.Fatalf("round trip changed plan: %q -> %q", p.String(), p2.String())
	}
	for s, r := range p.Rates {
		if p2.Rates[s] != r {
			t.Fatalf("rate for %s: %g vs %g", s, r, p2.Rates[s])
		}
	}
}

// TestExtract: a Fault survives wrapping and is recoverable from the
// error chain.
func TestExtract(t *testing.T) {
	f := &Fault{Seed: 1, Rank: 0, Site: CudaMalloc, Occurrence: 0}
	wrapped := fmt.Errorf("alloc failed: %w", fmt.Errorf("deep: %w", f))
	got, ok := Extract(wrapped)
	if !ok || got != f {
		t.Fatalf("Extract failed: %v %v", got, ok)
	}
	if _, ok := Extract(errors.New("plain")); ok {
		t.Error("Extract matched a plain error")
	}
}

// TestNilSafety: nil plans and injectors are inert, not crashes.
func TestNilSafety(t *testing.T) {
	var p *Plan
	in := p.Injector(0)
	if in.Fire(CudaMalloc) != nil || in.Count(CudaMalloc) != 0 || in.Fired() != nil {
		t.Fatal("nil injector not inert")
	}
	if p.String() != "" {
		t.Fatal("nil plan String not empty")
	}
}

// TestCountAndFired: bookkeeping accessors.
func TestCountAndFired(t *testing.T) {
	in := (&Plan{Picks: []Pick{{Site: CudaMalloc, Occurrence: 1, Rank: -1}}}).Injector(0)
	in.Fire(CudaMalloc)
	in.Fire(CudaMalloc)
	in.Fire(CudaLaunch)
	if in.Count(CudaMalloc) != 2 || in.Count(CudaLaunch) != 1 {
		t.Fatalf("counts: malloc=%d launch=%d", in.Count(CudaMalloc), in.Count(CudaLaunch))
	}
	fired := in.Fired()
	if len(fired) != 1 || fired[0].Occurrence != 1 {
		t.Fatalf("fired = %+v", fired)
	}
}

// TestErroring: the benign sites are exactly jitter and delay.
func TestErroring(t *testing.T) {
	for _, s := range Sites() {
		benign := s == CudaAsyncJitter || s == MPIDelayCompletion
		if s.Erroring() == benign {
			t.Errorf("%s: Erroring=%v", s, s.Erroring())
		}
	}
}

// TestSiteNamesRoundTrip: every site name parses back to its site.
func TestSiteNamesRoundTrip(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("ParseSite accepted bogus")
	}
}
