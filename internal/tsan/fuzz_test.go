package tsan

import (
	"math/bits"
	"testing"

	"cusango/internal/vclock"
)

// FuzzShadowCellRoundTrip pins the shadow-cell packing invariants that
// both range engines depend on:
//
//   - encode/decode is lossless for in-range (fiber, epoch, write, mask);
//   - the zero word is reserved for "empty" — no real access (mask != 0,
//     fiber/epoch in range with epoch >= 1) encodes to zero;
//   - the write flag lives in bit 11, the fiber in bits 63..52 (the
//     batched fast path reads both fields with raw shifts).
func FuzzShadowCellRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint64(1), false, byte(0xFF))
	f.Add(uint16(1), uint64(1), true, byte(0x01))
	f.Add(uint16(maxFiberID), uint64(maxEpoch), true, byte(0xFF))
	f.Add(uint16(7), uint64(1)<<39, false, byte(0x3C))
	f.Add(uint16(4095), uint64(42), true, byte(0x80))
	f.Fuzz(func(t *testing.T, fiber uint16, epoch uint64, write bool, mask byte) {
		fiber &= maxFiberID
		epoch &= maxEpoch
		c := encodeCell(int(fiber), vclock.Epoch(epoch), write, mask)
		gotFiber, gotEp, gotWrite, gotMask := decodeCell(c)
		if gotFiber != int(fiber) || gotEp != vclock.Epoch(epoch) ||
			gotWrite != write || gotMask != mask {
			t.Fatalf("round trip: (%d,%d,%v,%#x) -> %#x -> (%d,%d,%v,%#x)",
				fiber, epoch, write, mask, c, gotFiber, gotEp, gotWrite, gotMask)
		}
		if mask != 0 && epoch >= 1 && c == 0 {
			t.Fatalf("real access (%d,%d,%v,%#x) encoded to the empty word",
				fiber, epoch, write, mask)
		}
		// The batched fast path's raw field extraction must agree with
		// decodeCell.
		wbit := uint64(0)
		if write {
			wbit = 1
		}
		if c>>52 != uint64(fiber) || c>>11&1 != wbit {
			t.Fatalf("raw shift extraction disagrees with decodeCell for %#x", c)
		}
	})
}

// FuzzPartialMask pins the mask-geometry invariants: for any granule
// overlapping [start, end), the mask is a contiguous run of bits whose
// population count equals the byte overlap, and it agrees bit-by-bit
// with the definition "bit i set iff byte gBase+i is in range".
func FuzzPartialMask(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(8))
	f.Add(uint64(0), uint64(3), uint64(23))
	f.Add(uint64(32760), uint64(32755), uint64(32775))
	f.Add(uint64(8), uint64(1), uint64(9))
	f.Fuzz(func(t *testing.T, gBase, start, end uint64) {
		gBase &^= granuleBytes - 1
		// Constrain to overlapping, well-formed ranges; discard the rest.
		if end <= start || end-start > 1<<30 {
			t.Skip()
		}
		if start >= gBase+granuleBytes || end <= gBase {
			t.Skip()
		}
		m := partialMask(gBase, start, end)
		var want uint8
		overlap := 0
		for i := uint64(0); i < granuleBytes; i++ {
			if b := gBase + i; b >= start && b < end {
				want |= 1 << i
				overlap++
			}
		}
		if m != want {
			t.Fatalf("partialMask(%d, %d, %d) = %#x, want %#x", gBase, start, end, m, want)
		}
		if bits.OnesCount8(m) != overlap {
			t.Fatalf("popcount %d != overlap %d", bits.OnesCount8(m), overlap)
		}
		// Contiguity: the set bits form one run.
		if m != 0 {
			shifted := m >> bits.TrailingZeros8(m)
			if shifted&(shifted+1) != 0 {
				t.Fatalf("mask %#x is not a contiguous run", m)
			}
		}
	})
}
