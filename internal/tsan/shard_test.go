package tsan

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// Parity tests for the sharded page index and AnnotateBatch: the same
// annotated program must produce byte-identical reports, shadow
// post-state, and engine totals at every GOMAXPROCS / worker count,
// and must agree with the unsharded sequential index.

// batchProgram drives a fixed mixed workload through a sanitizer:
// batched kernel-argument annotations from three fibers, partial sync,
// overlapping racy ranges, unaligned edges, and a duplicated op.
func batchProgram(s *Sanitizer) {
	host := s.HostFiber()
	k1 := s.CreateFiber("stream 1")
	k2 := s.CreateFiber("stream 2")
	bufA := base
	bufB := base + 9<<20
	bufC := base + 31<<20
	wA := &AccessInfo{Site: "kernel init", Object: "arg 0 (A)"}
	wB := &AccessInfo{Site: "kernel init", Object: "arg 1 (B)"}
	rC := &AccessInfo{Site: "kernel init", Object: "arg 2 (C)"}
	k1W := &AccessInfo{Site: "kernel step1", Object: "arg 0 (A)"}
	k1R := &AccessInfo{Site: "kernel step1", Object: "arg 2 (C)"}
	k2W := &AccessInfo{Site: "kernel step2", Object: "arg 1 (B)"}
	k2R := &AccessInfo{Site: "kernel step2", Object: "arg 0 (A)"}
	key := MakeKey(3, 1)

	// Host initializes everything in one batch (includes a duplicate op
	// and unaligned partial-granule edges).
	s.AnnotateBatch([]RangeOp{
		{Addr: bufA, Len: 256 << 10, Write: true, Info: wA},
		{Addr: bufB + 3, Len: 100<<10 + 5, Write: true, Info: wB},
		{Addr: bufC, Len: 64 << 10, Write: false, Info: rC},
		{Addr: bufA, Len: 256 << 10, Write: true, Info: wA}, // duplicate
	})
	s.HappensBefore(key)

	// Stream 1 synchronizes with the host: its overlap with A is
	// ordered, no race.
	s.SwitchFiber(k1)
	s.HappensAfter(key)
	s.AnnotateBatch([]RangeOp{
		{Addr: bufA + 16<<10, Len: 32 << 10, Write: true, Info: k1W},
		{Addr: bufC + 7, Len: 8 << 10, Write: false, Info: k1R},
	})

	// Stream 2 does NOT synchronize: its writes race with the host's
	// init of B and with stream 1's writes into A.
	s.SwitchFiber(k2)
	s.AnnotateBatch([]RangeOp{
		{Addr: bufB, Len: 48 << 10, Write: true, Info: k2W},
		{Addr: bufA + 20<<10, Len: 4 << 10, Write: false, Info: k2R},
	})

	// Back to the host for a second round over A (races with stream 1
	// and stream 2's unsynchronized accesses).
	s.SwitchFiber(host)
	s.AnnotateBatch([]RangeOp{
		{Addr: bufA, Len: 64 << 10, Write: true, Info: wA},
	})
}

// runState is the comparable outcome of one batchProgram run.
type runState struct {
	reports  string
	races    int64
	granules int64
	fast     int64
	same     int64
	pages    int64
	shadow   map[uint64]cellState
}

func runBatchProgram(t *testing.T, cfg Config) runState {
	t.Helper()
	s := New(cfg)
	batchProgram(s)
	var b strings.Builder
	for _, r := range s.Reports() {
		fmt.Fprintf(&b, "%s\n", r)
	}
	st := s.Stats()
	return runState{
		reports:  b.String(),
		races:    st.RacesReported,
		granules: st.EngineGranules,
		fast:     st.EngineFastGranules,
		same:     st.EngineSameGranules,
		pages:    st.EnginePages,
		shadow:   shadowCells(s),
	}
}

func TestBatchParityAcrossWorkerCounts(t *testing.T) {
	sweep := []int{1, 4, runtime.NumCPU()}
	ref := runBatchProgram(t, Config{Shards: 8, BatchWorkers: 1})
	if ref.races == 0 {
		t.Fatalf("batch program reported no races; the parity test needs a racy workload")
	}
	for _, n := range sweep {
		// Sweep GOMAXPROCS itself with BatchWorkers unset (workers
		// default to GOMAXPROCS), plus an explicit worker count.
		for _, mode := range []string{"gomaxprocs", "workers"} {
			t.Run(fmt.Sprintf("%s=%d", mode, n), func(t *testing.T) {
				cfg := Config{Shards: 8}
				if mode == "workers" {
					cfg.BatchWorkers = n
				} else {
					prev := runtime.GOMAXPROCS(n)
					defer runtime.GOMAXPROCS(prev)
				}
				got := runBatchProgram(t, cfg)
				if got.reports != ref.reports {
					t.Errorf("reports differ from 1-worker reference:\n--- ref\n%s--- got\n%s",
						ref.reports, got.reports)
				}
				if got.races != ref.races || got.granules != ref.granules ||
					got.fast != ref.fast || got.same != ref.same || got.pages != ref.pages {
					t.Errorf("counters differ: ref={races:%d granules:%d fast:%d same:%d pages:%d} got={races:%d granules:%d fast:%d same:%d pages:%d}",
						ref.races, ref.granules, ref.fast, ref.same, ref.pages,
						got.races, got.granules, got.fast, got.same, got.pages)
				}
				if !reflect.DeepEqual(got.shadow, ref.shadow) {
					t.Errorf("shadow post-state differs from 1-worker reference (%d vs %d live cells)",
						len(got.shadow), len(ref.shadow))
				}
			})
		}
	}
}

// TestBatchMatchesSequentialIndex pins that the sharded batch path and
// the plain unsharded index agree on reports and shadow state: the
// fallback loop and the worker fan-out are two routes to one result.
func TestBatchMatchesSequentialIndex(t *testing.T) {
	seq := runBatchProgram(t, Config{}) // unsharded: AnnotateBatch loops
	shd := runBatchProgram(t, Config{Shards: 8, BatchWorkers: 4})
	if seq.reports != shd.reports {
		t.Errorf("sharded reports differ from sequential:\n--- seq\n%s--- shd\n%s",
			seq.reports, shd.reports)
	}
	if seq.races != shd.races {
		t.Errorf("race counts differ: seq=%d sharded=%d", seq.races, shd.races)
	}
	if !reflect.DeepEqual(seq.shadow, shd.shadow) {
		t.Errorf("shadow post-state differs between sequential and sharded runs (%d vs %d live cells)",
			len(seq.shadow), len(shd.shadow))
	}
}

// TestShardDistribution sanity-checks the Fibonacci page hash: a run of
// consecutive page indices must not collapse into one shard.
func TestShardDistribution(t *testing.T) {
	s := New(Config{Shards: 8})
	counts := make(map[uint64]int)
	for idx := uint64(0); idx < 1024; idx++ {
		counts[s.shadow.shardIndex(idx)]++
	}
	if len(counts) != 8 {
		t.Fatalf("1024 consecutive pages hit only %d of 8 shards", len(counts))
	}
	for sh, n := range counts {
		if n > 1024/8*2 {
			t.Errorf("shard %d holds %d of 1024 pages (poor spread)", sh, n)
		}
	}
}

// TestShardsNormalization pins the Config.Shards rounding and the
// MaxShadowPages interaction (the FIFO budget needs the single index).
func TestShardsNormalization(t *testing.T) {
	if s := New(Config{Shards: 5}); len(s.shadow.shards) != 8 {
		t.Errorf("Shards=5 gave %d shards, want 8 (next power of two)", len(s.shadow.shards))
	}
	if s := New(Config{Shards: 8, MaxShadowPages: 4}); s.shadow.shards != nil {
		t.Errorf("MaxShadowPages must force the unsharded index")
	}
	if s := New(Config{Shards: 1}); s.shadow.shards != nil {
		t.Errorf("Shards=1 must keep the unsharded index")
	}
}
