// Package tsan is a ThreadSanitizer analog: a happens-before data race
// detector with the fiber and annotation API surface that MUST and CuSan
// program against (paper §II-A).
//
// The detector keeps paged shadow memory over the simulated address space:
// every 8-byte granule stores up to K shadow cells recording the most
// recent accesses ((fiber, epoch, write?, byte-mask) tuples). A new access
// races with a stored one iff the accesses conflict (at least one write,
// overlapping bytes) and the accessor's vector clock has not absorbed the
// stored access's epoch — i.e. no happens-before path exists.
//
// User-defined concurrency is modeled with fibers. Switching fibers does
// NOT imply synchronization (paper §II-A); ordering is established only by
// the release/acquire annotation pair HappensBefore/HappensAfter, keyed by
// a synchronization address.
//
// One Sanitizer instance belongs to one rank and is driven only from that
// rank's goroutine, mirroring TSan's per-process runtime.
package tsan

import (
	"fmt"
	"sort"
	"strings"

	"cusango/internal/memspace"
	"cusango/internal/vclock"
)

// SyncKey identifies a synchronization object. TSan's annotation API keys
// synchronization on memory addresses; tools may also mint synthetic keys
// (for stream arcs, events, launch tokens) via MakeKey.
type SyncKey uint64

// KeyFromAddr derives a synchronization key from an application address.
func KeyFromAddr(a memspace.Addr) SyncKey { return SyncKey(a) }

// MakeKey mints a synthetic synchronization key in a reserved region of
// the key space that can never collide with application addresses.
func MakeKey(class uint8, id uint64) SyncKey {
	return SyncKey(uint64(0xF0|class)<<56 | (id & 0x00FFFFFFFFFFFFFF))
}

// Fiber is one logical execution context: the host thread, a CUDA stream,
// or a non-blocking MPI operation.
type Fiber struct {
	id    int
	name  string
	clock *vclock.Clock
	// gen counts acquisitions: it is bumped whenever another context's
	// knowledge is joined into this fiber's clock (HappensAfter, the
	// synchronizing fiber switch). Between two bumps the clock changes
	// only in its own component, which is what makes the epoch-batched
	// release fast path of HappensBefore sound.
	gen uint64
}

// ID returns the fiber's dense id (its vector-clock component index).
func (f *Fiber) ID() int { return f.id }

// Name returns the diagnostic name given at creation.
func (f *Fiber) Name() string { return f.name }

// Clock exposes the fiber's vector clock (read-only use by tests).
func (f *Fiber) Clock() *vclock.Clock { return f.clock }

func (f *Fiber) String() string { return fmt.Sprintf("fiber %d (%s)", f.id, f.name) }

// AccessInfo describes the source context of an annotated access, used in
// race reports. Tools create one per annotation site and reuse it; the
// pointer identity participates in report deduplication (the analog of
// TSan's stack-trace dedup).
type AccessInfo struct {
	// Site names the code location, e.g. "MPI_Isend" or "kernel jacobi_step".
	Site string
	// Object names the accessed object, e.g. "arg 0 (d_out)" or "recv buffer".
	Object string
}

func (ai *AccessInfo) String() string {
	if ai == nil {
		return "<unknown>"
	}
	if ai.Object == "" {
		return ai.Site
	}
	return ai.Site + " " + ai.Object
}

// Stats collects the runtime event counters the paper reports in Table I.
type Stats struct {
	FibersCreated   int64
	FiberSwitches   int64
	HappensBefore   int64
	HappensAfter    int64
	ReadRangeCalls  int64
	WriteRangeCalls int64
	ReadBytes       int64
	WriteBytes      int64
	ScalarReads     int64
	ScalarWrites    int64
	RacesReported   int64
	RacesDeduped    int64
	RacesSuppressed int64

	// Batched range-engine counters (all zero under EngineSlow).
	EnginePages        int64 // shadow pages resolved by the page walker
	EngineGranules     int64 // granules processed by the page walker
	EngineFastGranules int64 // granules taken through the full-mask fast path
	EngineSameGranules int64 // granules screened out by the packed-word compare (no store)
	RangeCacheHits     int64 // range annotations satisfied by the same-epoch cache
	RangeCacheMisses   int64 // range annotations that had to walk

	// ReleasesBatched counts HappensBefore calls satisfied by the
	// epoch-batched release fast path: the sync var had already absorbed
	// this fiber's clock and nothing but the fiber's own epoch changed
	// since, so the release touches one clock component instead of
	// joining the whole vector.
	ReleasesBatched int64

	// BatchOps counts range annotations submitted through AnnotateBatch
	// (the sharded parallel checking entry point).
	BatchOps int64

	// ShadowPagesShed counts pages dropped by the Config.MaxShadowPages
	// budget (0 when unbounded or never exceeded).
	ShadowPagesShed int64
}

// AvgReadKB returns the average tracked bytes per read-range call, in KiB.
func (s *Stats) AvgReadKB() float64 {
	if s.ReadRangeCalls == 0 {
		return 0
	}
	return float64(s.ReadBytes) / float64(s.ReadRangeCalls) / 1024
}

// AvgWriteKB returns the average tracked bytes per write-range call, in KiB.
func (s *Stats) AvgWriteKB() float64 {
	if s.WriteRangeCalls == 0 {
		return 0
	}
	return float64(s.WriteBytes) / float64(s.WriteRangeCalls) / 1024
}

// Access is one half of a race report.
type Access struct {
	Fiber *Fiber
	Write bool
	Info  *AccessInfo
}

func (a Access) opString() string {
	if a.Write {
		return "write"
	}
	return "read"
}

// Report describes one detected data race.
type Report struct {
	Addr     memspace.Addr
	Current  Access
	Previous Access
}

// String renders the report in a TSan-like format.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WARNING: data race at 0x%x (%s)\n", uint64(r.Addr), memspace.KindOf(r.Addr))
	fmt.Fprintf(&b, "  %s by %s at %s\n", r.Current.opString(), r.Current.Fiber, r.Current.Info)
	fmt.Fprintf(&b, "  previous %s by %s at %s", r.Previous.opString(), r.Previous.Fiber, r.Previous.Info)
	return b.String()
}

// Suppressions filters reports by substring match on the access sites,
// the analog of TSan suppression lists (paper artifact description).
type Suppressions struct {
	patterns []string
}

// NewSuppressions builds a suppression list from patterns.
func NewSuppressions(patterns ...string) *Suppressions {
	return &Suppressions{patterns: patterns}
}

// Match reports whether the report should be suppressed.
func (sup *Suppressions) Match(r *Report) bool {
	if sup == nil {
		return false
	}
	for _, p := range sup.patterns {
		if strings.Contains(r.Current.Info.String(), p) || strings.Contains(r.Previous.Info.String(), p) {
			return true
		}
	}
	return false
}

// Engine selects the shadow-range annotation engine.
type Engine uint8

const (
	// EngineBatched is the default: the page-walking engine resolves each
	// shadow page once, processes all granules it covers in a tight loop,
	// takes a full-mask fast path for interior granules, and consults the
	// per-fiber same-epoch range cache before walking at all.
	EngineBatched Engine = iota
	// EngineSlow is the granule-at-a-time reference walk (the original
	// implementation). It is kept as the differential-testing oracle and
	// for the §V-B engine ablation; both engines must produce identical
	// race reports and identical shadow post-state.
	EngineSlow
)

func (e Engine) String() string {
	if e == EngineSlow {
		return "slow"
	}
	return "batched"
}

// ParseEngine resolves an engine name (case-insensitive).
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "batched", "fast":
		return EngineBatched, nil
	case "slow", "reference", "oracle":
		return EngineSlow, nil
	default:
		return EngineBatched, fmt.Errorf("tsan: unknown engine %q", s)
	}
}

// Config tunes the detector.
type Config struct {
	// CellsPerGranule is the number of shadow cells kept per 8-byte
	// granule (TSan uses 4; we default to 2). More cells remember more
	// concurrent accessors at higher memory cost.
	CellsPerGranule int
	// MaxReports caps stored reports (further races are counted only).
	MaxReports int
	// OnReport, if set, is invoked for every non-suppressed race.
	OnReport func(*Report)
	// Suppressions filters reports.
	Suppressions *Suppressions
	// Engine selects the range engine; the zero value is the batched
	// page-walking engine.
	Engine Engine
	// DisableRangeCache turns off the per-fiber same-epoch range cache
	// of the batched engine (isolates the page-walk speedup in the
	// engine ablation; no effect under EngineSlow).
	DisableRangeCache bool
	// MaxShadowPages, when positive, caps live shadow pages (32 KiB of
	// application memory each). Exceeding the cap sheds the oldest page:
	// its recorded accesses read as "never accessed" afterwards, which
	// can only miss races, never fabricate them. Shed pages are counted
	// in Stats.ShadowPagesShed. Zero means unbounded. A page budget
	// needs the FIFO index, so it forces the unsharded page index
	// (Shards is ignored when MaxShadowPages > 0).
	MaxShadowPages int
	// Shards, when > 1, shards the shadow page index (rounded up to a
	// power of two) so AnnotateBatch can check page-disjoint work
	// concurrently across GOMAXPROCS workers. 0 or 1 keeps the single
	// map with its MRU cache; single-range annotations behave
	// identically either way.
	Shards int
	// BatchWorkers caps the goroutines AnnotateBatch fans out to
	// (0 = GOMAXPROCS). Only meaningful with Shards > 1.
	BatchWorkers int
}

const (
	defaultCells   = 2
	defaultReports = 128
)

// syncVar is one synchronization variable: its release clock plus the
// epoch-batching stamp. primed records that clock has absorbed fiber
// relFiber's clock as of generation relGen; while that fiber's
// generation is unchanged, a repeated release only needs to advance the
// releaser's own component (joins are monotone, so the containment
// survives other fibers releasing into the same variable).
type syncVar struct {
	clock    *vclock.Clock
	relFiber int
	relGen   uint64
	primed   bool
}

// Sanitizer is the per-rank race detector instance.
type Sanitizer struct {
	cfg      Config
	fibers   []*Fiber
	cur      *Fiber
	syncVars map[SyncKey]*syncVar
	shadow   shadowMap
	reports  []*Report
	seen     map[dedupKey]struct{}
	stats    Stats
	// ignoreDepth > 0 disables access recording (IgnoreBegin/End).
	ignoreDepth int

	// accessSeq counts recorded range walks; a same-epoch cache entry is
	// only valid while no walk (by any fiber) has happened since it was
	// recorded, which makes a cache hit a provable no-op.
	accessSeq uint64
	// rangeCache holds one same-epoch range entry per fiber, indexed by
	// fiber id (the batched engine's re-annotation fast path).
	rangeCache []rangeCacheEntry

	// Access-site interning: shadow cells store 32-bit indexes into
	// infoTab instead of *AccessInfo pointers (no GC write barriers on
	// the store path). Index 0 is reserved for "no site".
	infoTab  []*AccessInfo
	infoIDs  map[*AccessInfo]uint32
	lastInfo *AccessInfo
	lastID   uint32

	// Object arenas (see arena.go): fibers, sync vars, and their vector
	// clocks are carved from chunked slabs owned by this sanitizer.
	clockArena *vclock.Arena
	fiberSlab  []Fiber
	svSlab     []syncVar

	// batch holds AnnotateBatch's reusable worker state.
	batch batchState
}

// rangeCacheEntry remembers one range annotation a fiber performed at
// its current epoch. Re-annotating the identical range with the same
// access kind and site before any other shadow walk happens is a
// provable no-op (same cells, same masks, only already-deduplicated
// reports) and is skipped entirely.
type rangeCacheEntry struct {
	start, end uint64
	ep         vclock.Epoch
	info       *AccessInfo
	write      bool
	valid      bool
	seq        uint64
}

type dedupKey struct {
	curInfo, prevInfo   *AccessInfo
	curWrite, prevWrite bool
}

// New creates a Sanitizer whose initial current fiber is the host thread.
func New(cfg Config) *Sanitizer {
	if cfg.CellsPerGranule <= 0 {
		cfg.CellsPerGranule = defaultCells
	}
	if cfg.CellsPerGranule > maxCells {
		cfg.CellsPerGranule = maxCells
	}
	if cfg.MaxReports <= 0 {
		cfg.MaxReports = defaultReports
	}
	if cfg.MaxShadowPages > 0 {
		// The FIFO page budget needs the single creation-ordered index.
		cfg.Shards = 0
	}
	if cfg.Shards > 1 {
		cfg.Shards = nextPow2(cfg.Shards)
	}
	s := &Sanitizer{
		cfg:        cfg,
		syncVars:   make(map[SyncKey]*syncVar),
		seen:       make(map[dedupKey]struct{}),
		infoTab:    []*AccessInfo{nil},
		infoIDs:    make(map[*AccessInfo]uint32),
		clockArena: vclock.NewArena(4),
	}
	s.shadow.init(cfg.CellsPerGranule, cfg.Shards)
	s.shadow.maxPages = cfg.MaxShadowPages
	host := s.CreateFiber("host thread")
	s.cur = host
	s.stats.FiberSwitches = 0 // creating the host fiber is not a switch
	return s
}

// nextPow2 rounds n up to the next power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

const fiberSlabChunk = 16

// CreateFiber instantiates a new fiber. The fiber's epoch starts at 1 so
// its very first access is distinguishable from "never synchronized".
// Fiber objects and their clocks come from the sanitizer's arenas: the
// MPI layer creates a fiber per non-blocking operation, so fiber
// creation sits on the request hot path.
func (s *Sanitizer) CreateFiber(name string) *Fiber {
	if len(s.fiberSlab) == 0 {
		s.fiberSlab = make([]Fiber, fiberSlabChunk)
	}
	f := &s.fiberSlab[0]
	s.fiberSlab = s.fiberSlab[1:]
	f.id, f.name, f.clock, f.gen = len(s.fibers), name, s.clockArena.New(), 0
	f.clock.Tick(f.id)
	s.fibers = append(s.fibers, f)
	s.rangeCache = append(s.rangeCache, rangeCacheEntry{})
	s.stats.FibersCreated++
	if f.id > maxFiberID {
		panic(fmt.Sprintf("tsan: fiber id %d exceeds shadow encoding capacity", f.id))
	}
	// Later clocks should start with room for every live fiber, so a
	// first Join doesn't immediately re-allocate.
	s.clockArena.SetHint(len(s.fibers) + 4)
	return f
}

// internInfo resolves an access site to its stable 32-bit shadow id.
// A one-entry cache makes the per-range cost one pointer compare: tools
// reuse one AccessInfo per annotation site.
func (s *Sanitizer) internInfo(info *AccessInfo) uint32 {
	if info == s.lastInfo {
		return s.lastID
	}
	id, ok := s.infoIDs[info]
	if !ok {
		id = uint32(len(s.infoTab))
		s.infoTab = append(s.infoTab, info)
		s.infoIDs[info] = id
	}
	s.lastInfo, s.lastID = info, id
	return id
}

// HostFiber returns the implicit host-thread fiber.
func (s *Sanitizer) HostFiber() *Fiber { return s.fibers[0] }

// CurrentFiber returns the fiber the executing thread currently represents.
func (s *Sanitizer) CurrentFiber() *Fiber { return s.cur }

// SwitchFiber makes f the current execution context. Switching implies no
// synchronization (paper §II-A) — this is the FiberSwitchNoSync mode that
// MUST and CuSan use to model concurrency.
func (s *Sanitizer) SwitchFiber(f *Fiber) {
	s.switchFiber(f, false)
}

// SwitchFiberSync switches to f and additionally joins the departing
// context's clock into f — TSan's default fiber-switch behaviour (the
// __tsan_switch_to_fiber flags=0 mode). CuSan uses it for the host->
// stream direction of a kernel launch, where CUDA guarantees prior host
// work is visible to the launched kernel.
func (s *Sanitizer) SwitchFiberSync(f *Fiber) {
	s.switchFiber(f, true)
}

func (s *Sanitizer) switchFiber(f *Fiber, sync bool) {
	if f == nil {
		panic("tsan: SwitchFiber(nil)")
	}
	if f != s.cur {
		if sync {
			f.clock.Join(s.cur.clock)
			f.gen++
		}
		s.cur = f
	}
	s.stats.FiberSwitches++
}

// NumFibers returns the number of fibers created so far.
func (s *Sanitizer) NumFibers() int { return len(s.fibers) }

const svSlabChunk = 16

// HappensBefore is the release half of a synchronization annotation
// (AnnotateHappensBefore): the current fiber's clock is merged into the
// sync variable identified by key, then the fiber's own epoch advances so
// accesses performed after the release are distinguishable from the
// released state.
//
// Releases are epoch-batched: when the variable already holds this
// fiber's clock (recorded as a (fiber, generation) stamp) and the fiber
// has not acquired anything since, the full vector join degenerates to
// advancing the releaser's own component — release sequences touch the
// clock store once per batch of acquisitions instead of once per
// release. Stream arcs and MPI request arcs release in exactly this
// pattern, so the fast path carries the steady state.
func (s *Sanitizer) HappensBefore(key SyncKey) {
	s.stats.HappensBefore++
	f := s.cur
	sv, ok := s.syncVars[key]
	if !ok {
		if len(s.svSlab) == 0 {
			s.svSlab = make([]syncVar, svSlabChunk)
		}
		sv = &s.svSlab[0]
		s.svSlab = s.svSlab[1:]
		sv.clock = s.clockArena.New()
		s.syncVars[key] = sv
	}
	if sv.primed && sv.relFiber == f.id && sv.relGen == f.gen {
		// sv.clock ⊇ f.clock held at the stamp, and since then f's clock
		// changed only in component f.id; restore containment with one
		// store. Joins into sv by other fibers only grew sv, so the
		// containment could not have been lost.
		sv.clock.Set(f.id, f.clock.Get(f.id))
		s.stats.ReleasesBatched++
	} else {
		sv.clock.Join(f.clock)
		sv.relFiber, sv.relGen, sv.primed = f.id, f.gen, true
	}
	f.clock.Tick(f.id)
}

// HappensAfter is the acquire half (AnnotateHappensAfter): the sync
// variable's clock is merged into the current fiber's clock. Acquiring a
// never-released key is a no-op, as in TSan.
func (s *Sanitizer) HappensAfter(key SyncKey) {
	s.stats.HappensAfter++
	if sv, ok := s.syncVars[key]; ok {
		s.cur.clock.Join(sv.clock)
		s.cur.gen++
	}
}

// epoch returns the current fiber's own logical time.
func (s *Sanitizer) epoch() vclock.Epoch { return s.cur.clock.Get(s.cur.id) }

// ReadRange annotates a read of n bytes at a by the current fiber
// (tsan_read_range analog).
func (s *Sanitizer) ReadRange(a memspace.Addr, n int64, info *AccessInfo) {
	s.stats.ReadRangeCalls++
	s.stats.ReadBytes += n
	s.accessRange(a, n, false, info)
}

// WriteRange annotates a write of n bytes at a by the current fiber
// (tsan_write_range analog).
func (s *Sanitizer) WriteRange(a memspace.Addr, n int64, info *AccessInfo) {
	s.stats.WriteRangeCalls++
	s.stats.WriteBytes += n
	s.accessRange(a, n, true, info)
}

// Read annotates a scalar read of size bytes (1, 2, 4, or 8) at a. This is
// what the compiler instrumentation of host code lowers to.
func (s *Sanitizer) Read(a memspace.Addr, size int, info *AccessInfo) {
	s.stats.ScalarReads++
	s.accessRange(a, int64(size), false, info)
}

// Write annotates a scalar write of size bytes at a.
func (s *Sanitizer) Write(a memspace.Addr, size int, info *AccessInfo) {
	s.stats.ScalarWrites++
	s.accessRange(a, int64(size), true, info)
}

// accessRange records an access to [a, a+n), dispatching to the
// configured range engine.
func (s *Sanitizer) accessRange(a memspace.Addr, n int64, write bool, info *AccessInfo) {
	if n <= 0 || s.ignoreDepth > 0 {
		return
	}
	if s.cfg.Engine == EngineSlow {
		s.accessRangeSlow(a, n, write, info)
		return
	}
	s.accessRangeBatched(a, n, write, info)
}

// accessRangeSlow is the granule-at-a-time reference walk: it resolves
// the shadow page through the one-entry page cache for every granule
// and recomputes the partial-mask condition each step. Kept as the
// differential-testing oracle for the batched engine.
func (s *Sanitizer) accessRangeSlow(a memspace.Addr, n int64, write bool, info *AccessInfo) {
	f := s.cur
	ep := s.epoch()
	infoID := s.internInfo(info)
	start := uint64(a)
	end := start + uint64(n)
	g := start >> granuleShift
	gLast := (end - 1) >> granuleShift
	for ; g <= gLast; g++ {
		mask := fullMask
		gBase := g << granuleShift
		if gBase < start || gBase+granuleBytes > end {
			mask = partialMask(gBase, start, end)
		}
		p := s.shadow.page(g >> pageGranuleShift)
		s.checkGranule(p, int(g&pageGranuleMask), g, mask, write, f, ep,
			infoID, memspace.Addr(gBase), nil)
	}
	s.accessSeq++
}

// raceCand is one unreported race candidate: AnnotateBatch workers
// collect candidates instead of reporting directly, and the batch
// driver replays them through report in canonical order (shard.go).
type raceCand struct {
	op         int
	g          uint64
	gAddr      memspace.Addr
	write      bool
	infoID     uint32
	prevFiber  int
	prevWrite  bool
	prevInfoID uint32
}

// checkGranule races the access against granule gi of page p (global
// granule index g) and records it. Both engines and the batch workers
// funnel through this, so slot selection, reporting, and eviction are
// identical by construction. With sink == nil races are reported
// immediately; otherwise they are appended as candidates.
func (s *Sanitizer) checkGranule(p *shadowPage, gi int, g uint64,
	mask uint8, write bool, f *Fiber, ep vclock.Epoch, infoID uint32,
	gAddr memspace.Addr, sink *[]raceCand) {
	k := s.cfg.CellsPerGranule
	sameSlot := -1
	emptySlot := -1
	orderedSlot := -1
	for i := 0; i < k; i++ {
		c := p.cells[i][gi]
		if c == 0 {
			if emptySlot < 0 {
				emptySlot = i
			}
			continue
		}
		cFiber, cEpoch, cWrite, cMask := decodeCell(c)
		if cFiber == f.id {
			// Same execution context: program order applies, no race.
			if cWrite == write {
				sameSlot = i
			}
			continue
		}
		ordered := f.clock.Get(cFiber) >= cEpoch
		if ordered {
			if orderedSlot < 0 {
				orderedSlot = i
			}
			continue
		}
		// Concurrent with the stored access: race iff conflicting.
		if (write || cWrite) && mask&cMask != 0 {
			if sink != nil {
				*sink = append(*sink, raceCand{
					g: g, gAddr: gAddr, write: write, infoID: infoID,
					prevFiber: cFiber, prevWrite: cWrite, prevInfoID: p.infos[i][gi],
				})
			} else {
				s.report(gAddr, write, s.infoTab[infoID], cFiber, cWrite,
					s.infoTab[p.infos[i][gi]])
			}
		}
	}
	nc := encodeCell(f.id, ep, write, mask)
	slot := sameSlot
	if slot < 0 {
		slot = emptySlot
	}
	if slot < 0 {
		slot = orderedSlot
	}
	if slot < 0 {
		// All cells hold concurrent accesses from other fibers; rotate.
		slot = int(g) % k
	}
	if slot != 0 && p.cells[slot][gi] == 0 {
		p.aux++
	}
	p.cells[slot][gi] = nc
	p.infos[slot][gi] = infoID
}

func (s *Sanitizer) report(addr memspace.Addr, curWrite bool, curInfo *AccessInfo,
	prevFiberID int, prevWrite bool, prevInfo *AccessInfo) {
	key := dedupKey{curInfo: curInfo, prevInfo: prevInfo, curWrite: curWrite, prevWrite: prevWrite}
	if _, dup := s.seen[key]; dup {
		s.stats.RacesDeduped++
		return
	}
	s.seen[key] = struct{}{}
	r := &Report{
		Addr:     addr,
		Current:  Access{Fiber: s.cur, Write: curWrite, Info: curInfo},
		Previous: Access{Fiber: s.fibers[prevFiberID], Write: prevWrite, Info: prevInfo},
	}
	if s.cfg.Suppressions.Match(r) {
		s.stats.RacesSuppressed++
		return
	}
	s.stats.RacesReported++
	if len(s.reports) < s.cfg.MaxReports {
		s.reports = append(s.reports, r)
	}
	if s.cfg.OnReport != nil {
		s.cfg.OnReport(r)
	}
}

// Reports returns the stored race reports in detection order.
func (s *Sanitizer) Reports() []*Report {
	out := make([]*Report, len(s.reports))
	copy(out, s.reports)
	return out
}

// RaceCount returns the number of distinct races reported (including any
// beyond the stored-report cap).
func (s *Sanitizer) RaceCount() int64 { return s.stats.RacesReported }

// Stats returns a snapshot of the event counters.
func (s *Sanitizer) Stats() Stats {
	st := s.stats
	st.ShadowPagesShed = s.shadow.shed
	return st
}

// ShadowBytes estimates the live shadow-memory footprint, for the memory
// overhead experiment (Fig. 11).
func (s *Sanitizer) ShadowBytes() int64 { return s.shadow.bytes() }

// SyncVarCount returns the number of distinct synchronization keys seen.
func (s *Sanitizer) SyncVarCount() int { return len(s.syncVars) }

// FiberNames lists fiber names in id order (diagnostics).
func (s *Sanitizer) FiberNames() []string {
	names := make([]string, len(s.fibers))
	for i, f := range s.fibers {
		names[i] = f.name
	}
	return names
}

// DumpSyncKeys renders the sync-variable table for debugging.
func (s *Sanitizer) DumpSyncKeys() string {
	keys := make([]SyncKey, 0, len(s.syncVars))
	for k := range s.syncVars {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "0x%x -> %s\n", uint64(k), s.syncVars[k].clock)
	}
	return b.String()
}

// IgnoreBegin suppresses recording and checking of subsequent memory
// accesses on this sanitizer until the matching IgnoreEnd — the
// AnnotateIgnoreReadsAndWritesBegin analog tools use around library
// internals whose synchronization is handled out of band. Calls nest.
func (s *Sanitizer) IgnoreBegin() { s.ignoreDepth++ }

// IgnoreEnd closes the innermost IgnoreBegin. Unbalanced calls panic:
// an unmatched end indicates broken tool instrumentation.
func (s *Sanitizer) IgnoreEnd() {
	if s.ignoreDepth == 0 {
		panic("tsan: IgnoreEnd without IgnoreBegin")
	}
	s.ignoreDepth--
}

// Ignoring reports whether accesses are currently ignored.
func (s *Sanitizer) Ignoring() bool { return s.ignoreDepth > 0 }
