package tsan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cusango/internal/memspace"
)

// Differential engine testing (the keep-a-second-implementation
// discipline): the batched page-walking engine and the granule-at-a-
// time reference walk are driven with identical access sequences and
// must agree on every race report AND on the complete shadow
// post-state. 600 randomized programs with fixed seeds.

// cellState is one non-empty shadow slot: packed word + site pointer.
type cellState struct {
	cell uint64
	info *AccessInfo
}

// shadowCells flattens the live shadow memory into slot index -> state,
// resolving interned site ids back to pointers so the comparison is
// representation-independent. Works in both index modes.
func shadowCells(s *Sanitizer) map[uint64]cellState {
	out := make(map[uint64]cellState)
	k := uint64(s.shadow.k)
	collect := func(idx uint64, p *shadowPage) {
		for slot := uint64(0); slot < k; slot++ {
			for gi, c := range p.cells[slot] {
				if c != 0 {
					out[idx*pageGranules*k+uint64(gi)*k+slot] =
						cellState{cell: c, info: s.infoTab[p.infos[slot][gi]]}
				}
			}
		}
	}
	if s.shadow.shards != nil {
		for si := range s.shadow.shards {
			for idx, p := range s.shadow.shards[si].pages {
				collect(idx, p)
			}
		}
	} else {
		for idx, p := range s.shadow.pages {
			collect(idx, p)
		}
	}
	return out
}

// reportKey is the comparable projection of one race report.
type reportKey struct {
	addr                memspace.Addr
	curFiber, prevFiber int
	curWrite, prevWrite bool
	curInfo, prevInfo   *AccessInfo
}

func reportKeys(s *Sanitizer) []reportKey {
	var out []reportKey
	for _, r := range s.Reports() {
		out = append(out, reportKey{
			addr:     r.Addr,
			curFiber: r.Current.Fiber.ID(), prevFiber: r.Previous.Fiber.ID(),
			curWrite: r.Current.Write, prevWrite: r.Previous.Write,
			curInfo: r.Current.Info, prevInfo: r.Previous.Info,
		})
	}
	return out
}

// twin drives the two engines in lockstep.
type twin struct {
	batched, slow *Sanitizer
	bf, sf        []*Fiber
}

func newTwin(cells int) *twin {
	tw := &twin{
		batched: New(Config{CellsPerGranule: cells}),
		slow:    New(Config{CellsPerGranule: cells, Engine: EngineSlow}),
	}
	tw.bf = []*Fiber{tw.batched.HostFiber()}
	tw.sf = []*Fiber{tw.slow.HostFiber()}
	return tw
}

func (tw *twin) createFiber(name string) {
	tw.bf = append(tw.bf, tw.batched.CreateFiber(name))
	tw.sf = append(tw.sf, tw.slow.CreateFiber(name))
}

func (tw *twin) both(f func(s *Sanitizer, fibers []*Fiber)) {
	f(tw.batched, tw.bf)
	f(tw.slow, tw.sf)
}

func TestDifferentialEnginesRandomized(t *testing.T) {
	const cases = 600
	// Shared access-site pool: pointer identity must match across both
	// engines for report and shadow-state comparison.
	var infos []*AccessInfo
	for i := 0; i < 6; i++ {
		infos = append(infos, &AccessInfo{Site: fmt.Sprintf("site%d", i), Object: "buf"})
	}
	pageBytes := uint64(pageGranules * granuleBytes)
	// Two contended windows: one small, one straddling a page boundary.
	windows := [][2]uint64{
		{uint64(base), 768},
		{uint64(base) + pageBytes - 384, 768},
	}

	for seed := 0; seed < cases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cells := []int{1, 2, 4}[rng.Intn(3)]
			tw := newTwin(cells)
			for i := 0; i < 1+rng.Intn(3); i++ {
				tw.createFiber(fmt.Sprintf("fiber %d", i))
			}
			ignoreDepth := 0
			nops := 30 + rng.Intn(70)
			for op := 0; op < nops; op++ {
				switch rng.Intn(12) {
				case 0, 1: // fiber switch, occasionally synchronizing
					i := rng.Intn(len(tw.bf))
					if rng.Intn(4) == 0 {
						tw.batched.SwitchFiberSync(tw.bf[i])
						tw.slow.SwitchFiberSync(tw.sf[i])
					} else {
						tw.batched.SwitchFiber(tw.bf[i])
						tw.slow.SwitchFiber(tw.sf[i])
					}
				case 2: // release
					key := MakeKey(1, uint64(rng.Intn(4)))
					tw.both(func(s *Sanitizer, _ []*Fiber) { s.HappensBefore(key) })
				case 3: // acquire
					key := MakeKey(1, uint64(rng.Intn(4)))
					tw.both(func(s *Sanitizer, _ []*Fiber) { s.HappensAfter(key) })
				case 4: // scalar access
					w := windows[rng.Intn(len(windows))]
					a := memspace.Addr(w[0] + uint64(rng.Intn(int(w[1]))))
					size := []int{1, 2, 4, 8}[rng.Intn(4)]
					info := infos[rng.Intn(len(infos))]
					if rng.Intn(2) == 0 {
						tw.both(func(s *Sanitizer, _ []*Fiber) { s.Write(a, size, info) })
					} else {
						tw.both(func(s *Sanitizer, _ []*Fiber) { s.Read(a, size, info) })
					}
				case 5: // ignore-region toggle (kept balanced at the end)
					if ignoreDepth > 0 && rng.Intn(2) == 0 {
						tw.both(func(s *Sanitizer, _ []*Fiber) { s.IgnoreEnd() })
						ignoreDepth--
					} else {
						tw.both(func(s *Sanitizer, _ []*Fiber) { s.IgnoreBegin() })
						ignoreDepth++
					}
				default: // range access, sometimes repeated (range-cache path)
					w := windows[rng.Intn(len(windows))]
					a := memspace.Addr(w[0] + uint64(rng.Intn(int(w[1]))))
					n := int64(1 + rng.Intn(int(w[1])))
					if rng.Intn(40) == 0 {
						n = 64 << 10 // occasional large page-spanning range
					}
					info := infos[rng.Intn(len(infos))]
					write := rng.Intn(2) == 0
					repeats := 1 + rng.Intn(2)
					for r := 0; r < repeats; r++ {
						if write {
							tw.both(func(s *Sanitizer, _ []*Fiber) { s.WriteRange(a, n, info) })
						} else {
							tw.both(func(s *Sanitizer, _ []*Fiber) { s.ReadRange(a, n, info) })
						}
					}
				}
			}
			for ; ignoreDepth > 0; ignoreDepth-- {
				tw.both(func(s *Sanitizer, _ []*Fiber) { s.IgnoreEnd() })
			}

			if b, sl := tw.batched.RaceCount(), tw.slow.RaceCount(); b != sl {
				t.Fatalf("race counts diverge: batched=%d slow=%d", b, sl)
			}
			if b, sl := reportKeys(tw.batched), reportKeys(tw.slow); !reflect.DeepEqual(b, sl) {
				t.Fatalf("reports diverge:\nbatched: %+v\nslow:    %+v", b, sl)
			}
			bCells, sCells := shadowCells(tw.batched), shadowCells(tw.slow)
			if len(bCells) != len(sCells) {
				t.Fatalf("shadow population diverges: batched=%d slow=%d cells",
					len(bCells), len(sCells))
			}
			for slot, bc := range bCells {
				sc, ok := sCells[slot]
				if !ok {
					t.Fatalf("slot %d populated only under batched engine (%x)", slot, bc.cell)
				}
				if bc != sc {
					t.Fatalf("slot %d diverges: batched={%x %v} slow={%x %v}",
						slot, bc.cell, bc.info, sc.cell, sc.info)
				}
			}
		})
	}
}

// TestDifferentialDirectedPatterns replays the access patterns the
// mini-apps actually produce (stencil re-annotation, halo exchange,
// boundary-only tracking) through both engines.
func TestDifferentialDirectedPatterns(t *testing.T) {
	kernelW := &AccessInfo{Site: "kernel jacobi_step", Object: "arg 0"}
	kernelR := &AccessInfo{Site: "kernel jacobi_step", Object: "arg 1"}
	haloW := &AccessInfo{Site: "MPI_Irecv", Object: "halo"}
	const domain = 96 << 10

	run := func(s *Sanitizer) {
		stream := s.CreateFiber("stream")
		host := s.HostFiber()
		arc := MakeKey(1, 0)
		for iter := 0; iter < 25; iter++ {
			// Kernel launch protocol: sync switch in, annotate args
			// (read then write, same epoch — stencil pattern), release,
			// switch out.
			s.SwitchFiberSync(stream)
			s.ReadRange(base, domain, kernelR)
			s.ReadRange(base, domain, kernelR) // re-annotation: cache-hit under batched
			s.WriteRange(base+domain, domain, kernelW)
			s.HappensBefore(arc)
			s.SwitchFiber(host)
			s.HappensAfter(arc)
			// Host-side halo write into the first granules (partial edges).
			s.WriteRange(base+3, 61, haloW)
		}
	}
	b := New(Config{})
	sl := New(Config{Engine: EngineSlow})
	run(b)
	run(sl)
	if b.RaceCount() != sl.RaceCount() {
		t.Fatalf("race counts diverge: batched=%d slow=%d", b.RaceCount(), sl.RaceCount())
	}
	if !reflect.DeepEqual(shadowCells(b), shadowCells(sl)) {
		t.Fatal("shadow post-state diverges on the stencil pattern")
	}
	if hits := b.Stats().RangeCacheHits; hits != 25 {
		t.Errorf("stencil re-annotation cache hits = %d, want 25", hits)
	}
}
