package tsan

import (
	"fmt"
	"runtime"
	"testing"

	"cusango/internal/memspace"
)

// Microbenchmarks for the packed-shadow hot path. These feed the CI
// perf-ratchet lane (ns/op and allocs/op are posted to the PR step
// summary); the committed-baseline gating of the same path lives in the
// perf harness's range-engine scenario.

// BenchmarkPackedShadow measures the warm-shadow walker: repeated
// 64 KiB write annotations with the range cache disabled, so every
// iteration streams the packed-word screen over 8192 granules. The
// steady state takes the exact-same-word skip (no stores at all).
func BenchmarkPackedShadow(b *testing.B) {
	for _, cells := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			s := New(Config{CellsPerGranule: cells, DisableRangeCache: true})
			info := &AccessInfo{Site: "bench packed", Object: "arg 0"}
			const n = 64 << 10
			s.WriteRange(base, n, info) // allocate pages
			b.SetBytes(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteRange(base, n, info)
			}
		})
	}
}

// BenchmarkPackedShadowSlow is the reference walk over the same
// workload — the denominator of the engine speedup.
func BenchmarkPackedShadowSlow(b *testing.B) {
	s := New(Config{Engine: EngineSlow})
	info := &AccessInfo{Site: "bench packed", Object: "arg 0"}
	const n = 64 << 10
	s.WriteRange(base, n, info)
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WriteRange(base, n, info)
	}
}

// BenchmarkShardedIndex measures AnnotateBatch over the sharded page
// index: one kernel launch's worth of argument ranges checked by
// GOMAXPROCS-bounded workers. Scaling shows up with spare cores; on a
// single-CPU runner this measures the fan-out overhead.
func BenchmarkShardedIndex(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := New(Config{Shards: 16, BatchWorkers: workers, DisableRangeCache: true})
			const args = 8
			const per = 256 << 10
			ops := make([]RangeOp, args)
			for i := range ops {
				ops[i] = RangeOp{
					Addr:  base + memspace.Addr(i)*(per+4<<20),
					Len:   per,
					Write: i%2 == 0,
					Info:  &AccessInfo{Site: "bench launch", Object: fmt.Sprintf("arg %d", i)},
				}
			}
			s.AnnotateBatch(ops) // allocate pages
			b.SetBytes(args * per)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AnnotateBatch(ops)
			}
		})
	}
}
