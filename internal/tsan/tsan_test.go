package tsan

import (
	"strings"
	"testing"
	"testing/quick"

	"cusango/internal/memspace"
	"cusango/internal/vclock"
)

var (
	hostW = &AccessInfo{Site: "host", Object: "write"}
	hostR = &AccessInfo{Site: "host", Object: "read"}
	devW  = &AccessInfo{Site: "kernel", Object: "write"}
	devR  = &AccessInfo{Site: "kernel", Object: "read"}
)

const base = memspace.Addr(3 << 40) // a device-region address

func newSan() *Sanitizer { return New(Config{}) }

// raceScenario runs: fiber writes buf, then (optionally after release/
// acquire sync through key) the host accesses buf. Returns race count.
func raceScenario(t *testing.T, synced bool, hostWrites bool) int64 {
	t.Helper()
	s := newSan()
	fib := s.CreateFiber("stream 0")
	key := MakeKey(1, 42)
	host := s.CurrentFiber()

	s.SwitchFiber(fib)
	s.WriteRange(base, 64, devW)
	if synced {
		s.HappensBefore(key)
	}
	s.SwitchFiber(host)
	if synced {
		s.HappensAfter(key)
	}
	if hostWrites {
		s.WriteRange(base, 64, hostW)
	} else {
		s.ReadRange(base, 64, hostR)
	}
	return s.RaceCount()
}

func TestUnsyncedWriteReadRaces(t *testing.T) {
	if n := raceScenario(t, false, false); n == 0 {
		t.Fatal("expected race: fiber write vs host read without sync")
	}
}

func TestUnsyncedWriteWriteRaces(t *testing.T) {
	if n := raceScenario(t, false, true); n == 0 {
		t.Fatal("expected race: fiber write vs host write without sync")
	}
}

func TestSyncedAccessNoRace(t *testing.T) {
	if n := raceScenario(t, true, false); n != 0 {
		t.Fatalf("unexpected race after release/acquire: %d", n)
	}
	if n := raceScenario(t, true, true); n != 0 {
		t.Fatalf("unexpected write-write race after release/acquire: %d", n)
	}
}

func TestReadReadNeverRaces(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream 0")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.ReadRange(base, 64, devR)
	s.SwitchFiber(host)
	s.ReadRange(base, 64, hostR)
	if s.RaceCount() != 0 {
		t.Fatal("read-read flagged as race")
	}
}

func TestFiberSwitchIsNotSynchronization(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream 0")
	host := s.CurrentFiber()
	// host writes, fiber reads: switching fibers alone must not order them.
	s.WriteRange(base, 8, hostW)
	s.SwitchFiber(fib)
	s.ReadRange(base, 8, devR)
	s.SwitchFiber(host)
	if s.RaceCount() == 0 {
		t.Fatal("fiber switch must not imply happens-before")
	}
}

func TestHostToFiberRelease(t *testing.T) {
	// Launch protocol direction: host writes, releases, fiber acquires,
	// fiber reads — ordered, no race.
	s := newSan()
	fib := s.CreateFiber("stream 0")
	host := s.CurrentFiber()
	key := MakeKey(2, 7)
	s.WriteRange(base, 8, hostW)
	s.HappensBefore(key)
	s.SwitchFiber(fib)
	s.HappensAfter(key)
	s.ReadRange(base, 8, devR)
	s.SwitchFiber(host)
	if s.RaceCount() != 0 {
		t.Fatalf("host->fiber release/acquire not respected: %d races", s.RaceCount())
	}
}

func TestAcquireBeforeAnyReleaseIsNoop(t *testing.T) {
	s := newSan()
	s.HappensAfter(MakeKey(3, 1))
	if s.SyncVarCount() != 0 {
		t.Fatal("acquire must not materialize a sync var")
	}
}

func TestTransitiveSyncThroughTwoKeys(t *testing.T) {
	// fiber A writes, releases k1; fiber B acquires k1, releases k2;
	// host acquires k2, reads: ordered transitively.
	s := newSan()
	a := s.CreateFiber("A")
	b := s.CreateFiber("B")
	host := s.CurrentFiber()
	k1, k2 := MakeKey(1, 1), MakeKey(1, 2)
	s.SwitchFiber(a)
	s.WriteRange(base, 8, devW)
	s.HappensBefore(k1)
	s.SwitchFiber(b)
	s.HappensAfter(k1)
	s.HappensBefore(k2)
	s.SwitchFiber(host)
	s.HappensAfter(k2)
	s.ReadRange(base, 8, hostR)
	if s.RaceCount() != 0 {
		t.Fatalf("transitive ordering missed: %d races", s.RaceCount())
	}
}

func TestReleaseAfterAccessDoesNotOrderRetroactively(t *testing.T) {
	// Host reads buf BEFORE acquiring: the fiber's release cannot order
	// the host's earlier read.
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	key := MakeKey(1, 9)
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.HappensBefore(key)
	s.SwitchFiber(host)
	s.ReadRange(base, 8, hostR) // before the acquire
	if s.RaceCount() == 0 {
		t.Fatal("access before acquire must race")
	}
}

func TestDisjointRangesNoRace(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 64, devW)
	s.SwitchFiber(host)
	s.WriteRange(base+64, 64, hostW)
	if s.RaceCount() != 0 {
		t.Fatal("disjoint ranges must not race")
	}
}

func TestSubGranuleDisjointNoFalseSharing(t *testing.T) {
	// Two 4-byte accesses in the SAME granule but disjoint bytes: the
	// byte masks must prevent a false positive.
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 4, devW)
	s.SwitchFiber(host)
	s.WriteRange(base+4, 4, hostW)
	if s.RaceCount() != 0 {
		t.Fatal("byte-disjoint sub-granule accesses must not race")
	}
}

func TestSubGranuleOverlapRaces(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base+2, 4, devW) // bytes 2..5
	s.SwitchFiber(host)
	s.WriteRange(base+4, 4, hostW) // bytes 4..7 — overlaps at 4,5
	if s.RaceCount() == 0 {
		t.Fatal("overlapping sub-granule accesses must race")
	}
}

func TestScalarAccessors(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.Write(base, 8, devW)
	s.SwitchFiber(host)
	s.Read(base, 8, hostR)
	if s.RaceCount() == 0 {
		t.Fatal("scalar write vs read must race")
	}
	st := s.Stats()
	if st.ScalarReads != 1 || st.ScalarWrites != 1 {
		t.Fatalf("scalar stats: %+v", st)
	}
}

func TestRangeCrossingGranules(t *testing.T) {
	// A write starting mid-granule and ending mid-granule must mark the
	// partial head and tail correctly.
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base+5, 10, devW) // bytes 5..14: tail of g0, head of g1
	s.SwitchFiber(host)
	s.WriteRange(base, 5, hostW) // bytes 0..4 of g0 — disjoint
	if s.RaceCount() != 0 {
		t.Fatal("false positive on partial head")
	}
	s.WriteRange(base+14, 1, hostW) // byte 14 — overlaps
	if s.RaceCount() != 1 {
		t.Fatalf("expected exactly 1 race, got %d", s.RaceCount())
	}
}

func TestReportContents(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream 1")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.SwitchFiber(host)
	s.ReadRange(base, 8, hostR)
	reps := s.Reports()
	if len(reps) != 1 {
		t.Fatalf("got %d reports", len(reps))
	}
	r := reps[0]
	if r.Current.Write || !r.Previous.Write {
		t.Error("access directions wrong in report")
	}
	if r.Previous.Fiber.Name() != "stream 1" {
		t.Errorf("previous fiber = %q", r.Previous.Fiber.Name())
	}
	str := r.String()
	for _, want := range []string{"data race", "kernel", "host", "device"} {
		if !strings.Contains(str, want) {
			t.Errorf("report %q missing %q", str, want)
		}
	}
}

func TestReportDeduplication(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 8192, devW)
	s.SwitchFiber(host)
	s.ReadRange(base, 8192, hostR) // 1024 racy granules, same site pair
	if got := s.RaceCount(); got != 1 {
		t.Fatalf("dedup failed: %d reports", got)
	}
	if s.Stats().RacesDeduped == 0 {
		t.Fatal("expected deduped races counted")
	}
}

func TestDistinctSitePairsReportedSeparately(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	otherW := &AccessInfo{Site: "host2", Object: "write"}
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.WriteRange(base+64, 8, devW)
	s.SwitchFiber(host)
	s.ReadRange(base, 8, hostR)
	s.WriteRange(base+64, 8, otherW)
	if got := s.RaceCount(); got != 2 {
		t.Fatalf("expected 2 distinct reports, got %d", got)
	}
}

func TestSuppressions(t *testing.T) {
	s := New(Config{Suppressions: NewSuppressions("MPI_Internal")})
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	internal := &AccessInfo{Site: "MPI_Internal", Object: "progress"}
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, internal)
	s.SwitchFiber(host)
	s.ReadRange(base, 8, hostR)
	if s.RaceCount() != 0 {
		t.Fatal("suppressed race was reported")
	}
	if s.Stats().RacesSuppressed != 1 {
		t.Fatalf("suppressed count = %d", s.Stats().RacesSuppressed)
	}
}

func TestOnReportCallback(t *testing.T) {
	var got []*Report
	s := New(Config{OnReport: func(r *Report) { got = append(got, r) }})
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.SwitchFiber(host)
	s.WriteRange(base, 8, hostW)
	if len(got) != 1 {
		t.Fatalf("callback fired %d times", len(got))
	}
}

func TestMaxReportsCap(t *testing.T) {
	s := New(Config{MaxReports: 2})
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	for i := 0; i < 5; i++ {
		info := &AccessInfo{Site: "site", Object: string(rune('a' + i))}
		s.SwitchFiber(fib)
		s.WriteRange(base+memspace.Addr(i*64), 8, info)
		s.SwitchFiber(host)
		s.WriteRange(base+memspace.Addr(i*64), 8, hostW)
	}
	if len(s.Reports()) != 2 {
		t.Fatalf("stored %d reports, cap 2", len(s.Reports()))
	}
	if s.RaceCount() != 5 {
		t.Fatalf("race count %d, want 5", s.RaceCount())
	}
}

func TestStatsCounters(t *testing.T) {
	s := newSan()
	f := s.CreateFiber("stream")
	s.SwitchFiber(f)
	s.SwitchFiber(s.HostFiber())
	s.HappensBefore(MakeKey(0, 1))
	s.HappensAfter(MakeKey(0, 1))
	s.ReadRange(base, 1024, hostR)
	s.WriteRange(base, 2048, hostW)
	st := s.Stats()
	if st.FiberSwitches != 2 {
		t.Errorf("switches = %d", st.FiberSwitches)
	}
	if st.HappensBefore != 1 || st.HappensAfter != 1 {
		t.Errorf("hb/ha = %d/%d", st.HappensBefore, st.HappensAfter)
	}
	if st.ReadBytes != 1024 || st.WriteBytes != 2048 {
		t.Errorf("bytes = %d/%d", st.ReadBytes, st.WriteBytes)
	}
	if st.AvgReadKB() != 1.0 || st.AvgWriteKB() != 2.0 {
		t.Errorf("avg KB = %v/%v", st.AvgReadKB(), st.AvgWriteKB())
	}
	if st.FibersCreated != 2 { // host + stream
		t.Errorf("fibers created = %d", st.FibersCreated)
	}
}

func TestShadowBytesGrow(t *testing.T) {
	s := newSan()
	if s.ShadowBytes() != 0 {
		t.Fatal("fresh sanitizer has shadow")
	}
	s.WriteRange(base, 1<<20, hostW)
	if s.ShadowBytes() == 0 {
		t.Fatal("shadow footprint not accounted")
	}
}

func TestManyFibersOrdering(t *testing.T) {
	// N stream fibers each write a disjoint chunk, all release; host
	// acquires all and reads everything: no race.
	s := newSan()
	host := s.CurrentFiber()
	const n = 16
	for i := 0; i < n; i++ {
		f := s.CreateFiber("stream")
		key := MakeKey(1, uint64(i))
		s.SwitchFiber(f)
		s.WriteRange(base+memspace.Addr(i*256), 256, devW)
		s.HappensBefore(key)
		s.SwitchFiber(host)
		s.HappensAfter(key)
	}
	s.ReadRange(base, n*256, hostR)
	if s.RaceCount() != 0 {
		t.Fatalf("%d false races with %d fibers", s.RaceCount(), n)
	}
}

func TestCellEncodingRoundTrip(t *testing.T) {
	f := func(fiber uint16, ep uint32, write bool, mask uint8) bool {
		fid := int(fiber) & maxFiberID
		e := vclock.Epoch(ep) + 1
		c := encodeCell(fid, e, write, mask)
		gf, ge, gw, gm := decodeCell(c)
		return gf == fid && ge == e && gw == write && gm == mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeKeyDisjointFromAddrs(t *testing.T) {
	a := KeyFromAddr(memspace.Addr(4 << 40)) // largest app region base
	k := MakeKey(0, 0)
	if a == k {
		t.Fatal("synthetic key collides with app address key")
	}
	if MakeKey(1, 5) == MakeKey(2, 5) || MakeKey(1, 5) == MakeKey(1, 6) {
		t.Fatal("synthetic keys not distinct")
	}
}

// Property: for a random interleaving of two fibers accessing one granule,
// a race is reported iff there is no release/acquire edge between a
// conflicting pair. We model the simplest case: fiber accesses, maybe
// releases; host maybe acquires, accesses.
func TestPropertySyncDecidesRace(t *testing.T) {
	f := func(fWrites, hWrites, releases, acquires bool) bool {
		s := newSan()
		fib := s.CreateFiber("f")
		host := s.CurrentFiber()
		key := MakeKey(7, 7)
		s.SwitchFiber(fib)
		if fWrites {
			s.WriteRange(base, 8, devW)
		} else {
			s.ReadRange(base, 8, devR)
		}
		if releases {
			s.HappensBefore(key)
		}
		s.SwitchFiber(host)
		if acquires {
			s.HappensAfter(key)
		}
		if hWrites {
			s.WriteRange(base, 8, hostW)
		} else {
			s.ReadRange(base, 8, hostR)
		}
		conflict := fWrites || hWrites
		synced := releases && acquires
		wantRace := conflict && !synced
		return (s.RaceCount() > 0) == wantRace
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRange64K(b *testing.B) {
	s := newSan()
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		s.WriteRange(base, 64<<10, hostW)
	}
}

func BenchmarkWriteRangeAlternatingFibers(b *testing.B) {
	s := newSan()
	fib := s.CreateFiber("stream")
	key := MakeKey(1, 1)
	host := s.CurrentFiber()
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		s.SwitchFiber(fib)
		s.WriteRange(base, 64<<10, devW)
		s.HappensBefore(key)
		s.SwitchFiber(host)
		s.HappensAfter(key)
		s.ReadRange(base, 64<<10, hostR)
	}
}

func TestIgnoreRegion(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.SwitchFiber(host)
	s.IgnoreBegin()
	if !s.Ignoring() {
		t.Fatal("Ignoring() false inside region")
	}
	s.WriteRange(base, 8, hostW) // would race, but ignored
	s.IgnoreEnd()
	if s.RaceCount() != 0 {
		t.Fatal("ignored access reported")
	}
	// Outside the region the conflict is visible again.
	s.WriteRange(base, 8, hostW)
	if s.RaceCount() == 0 {
		t.Fatal("access after IgnoreEnd not checked")
	}
}

func TestIgnoreNesting(t *testing.T) {
	s := newSan()
	s.IgnoreBegin()
	s.IgnoreBegin()
	s.IgnoreEnd()
	if !s.Ignoring() {
		t.Fatal("nesting not tracked")
	}
	s.IgnoreEnd()
	if s.Ignoring() {
		t.Fatal("region not closed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced IgnoreEnd must panic")
		}
	}()
	s.IgnoreEnd()
}

func TestManyConcurrentFibersExceedingCells(t *testing.T) {
	// More concurrent accessors than shadow cells: eviction must never
	// panic, and every new conflicting access still races against the
	// currently stored cells (first-conflict detection is preserved).
	s := New(Config{CellsPerGranule: 2})
	host := s.CurrentFiber()
	var fibers []*Fiber
	for i := 0; i < 6; i++ {
		fibers = append(fibers, s.CreateFiber("w"))
	}
	for i, f := range fibers {
		s.SwitchFiber(f)
		info := &AccessInfo{Site: "writer", Object: string(rune('a' + i))}
		s.WriteRange(base, 8, info)
	}
	s.SwitchFiber(host)
	if s.RaceCount() == 0 {
		t.Fatal("concurrent writers exceeding the cell count must still race")
	}
	// 6 writers, each conflicting with what remains stored: at least
	// one race per writer after the first.
	if s.RaceCount() < 5 {
		t.Fatalf("races = %d, want >= 5", s.RaceCount())
	}
}

func TestEvictionCanMissButNeverFalsePositives(t *testing.T) {
	// Documented precision loss: an access evicted by >K newer concurrent
	// accesses may be missed by a later conflicting access. This pins the
	// behaviour (miss allowed, false positive not): all stored accesses
	// here are reads, the late write conflicts with whatever remains.
	s := New(Config{CellsPerGranule: 2})
	host := s.CurrentFiber()
	var readers []*Fiber
	for i := 0; i < 4; i++ {
		readers = append(readers, s.CreateFiber("r"))
	}
	for i, f := range readers {
		key := MakeKey(9, uint64(i))
		s.SwitchFiber(f)
		s.ReadRange(base, 8, devR)
		s.HappensBefore(key)
		s.SwitchFiber(host)
		s.HappensAfter(key)
	}
	// Host is ordered after ALL reads: no race whatsoever.
	s.WriteRange(base, 8, hostW)
	if s.RaceCount() != 0 {
		t.Fatalf("false positive after full synchronization: %d", s.RaceCount())
	}
}
