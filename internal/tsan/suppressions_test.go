package tsan

import (
	"strings"
	"testing"
)

func TestParseSuppressions(t *testing.T) {
	src := `
# false positives of the interconnect library
race:ucx_progress
race:MPI_Internal

# non-race kinds are accepted and ignored
called_from_lib:libucp.so
signal:handler
`
	sup, err := ParseSuppressions(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if sup.Len() != 2 {
		t.Fatalf("patterns = %d, want 2", sup.Len())
	}
	r := &Report{
		Current:  Access{Info: &AccessInfo{Site: "ucx_progress", Object: "buffer"}, Fiber: &Fiber{}},
		Previous: Access{Info: &AccessInfo{Site: "host", Object: "x"}, Fiber: &Fiber{}},
	}
	if !sup.Match(r) {
		t.Fatal("suppression did not match")
	}
	r2 := &Report{
		Current:  Access{Info: &AccessInfo{Site: "app", Object: "x"}, Fiber: &Fiber{}},
		Previous: Access{Info: &AccessInfo{Site: "app", Object: "y"}, Fiber: &Fiber{}},
	}
	if sup.Match(r2) {
		t.Fatal("unrelated report suppressed")
	}
}

func TestParseSuppressionsErrors(t *testing.T) {
	cases := []string{
		"race",          // missing colon
		"bogus:pattern", // unknown kind
		"race:",         // empty pattern
	}
	for _, src := range cases {
		if _, err := ParseSuppressions(strings.NewReader(src)); err == nil {
			t.Errorf("ParseSuppressions(%q) accepted", src)
		}
	}
}

func TestParseSuppressionsIntegration(t *testing.T) {
	sup, err := ParseSuppressions(strings.NewReader("race:noisy_lib"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Suppressions: sup})
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	noisy := &AccessInfo{Site: "noisy_lib", Object: "scratch"}
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, noisy)
	s.SwitchFiber(host)
	s.WriteRange(base, 8, hostW)
	if s.RaceCount() != 0 {
		t.Fatal("parsed suppression not applied")
	}
	if s.Stats().RacesSuppressed != 1 {
		t.Fatal("suppression not counted")
	}
}

func TestNilSuppressions(t *testing.T) {
	var sup *Suppressions
	if sup.Len() != 0 || sup.Match(&Report{
		Current:  Access{Info: &AccessInfo{Site: "a"}, Fiber: &Fiber{}},
		Previous: Access{Info: &AccessInfo{Site: "b"}, Fiber: &Fiber{}},
	}) {
		t.Fatal("nil suppressions must be inert")
	}
}
