package tsan

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseSuppressions reads a ThreadSanitizer-style suppression list
// (paper artifact description: "we use suppression lists for TSan that
// avoid these [false positives]"). The format is TSan's:
//
//	# comment
//	race:substring-matched-against-access-context
//	called_from_lib:ignored-here
//
// Only "race:" entries are meaningful for this reproduction; entries of
// other recognized TSan kinds (signal, deadlock, mutex, thread,
// called_from_lib) are accepted and ignored, anything else is an error.
func ParseSuppressions(r io.Reader) (*Suppressions, error) {
	known := map[string]bool{
		"race": true, "signal": false, "deadlock": false,
		"mutex": false, "thread": false, "called_from_lib": false,
	}
	var patterns []string
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		kind, pattern, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("tsan: suppressions line %d: missing ':' in %q", line, text)
		}
		use, recognized := known[kind]
		if !recognized {
			return nil, fmt.Errorf("tsan: suppressions line %d: unknown kind %q", line, kind)
		}
		if pattern == "" {
			return nil, fmt.Errorf("tsan: suppressions line %d: empty pattern", line)
		}
		if use {
			patterns = append(patterns, pattern)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSuppressions(patterns...), nil
}

// Len returns the number of active race patterns.
func (sup *Suppressions) Len() int {
	if sup == nil {
		return 0
	}
	return len(sup.patterns)
}
