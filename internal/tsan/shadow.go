package tsan

import "cusango/internal/vclock"

// Shadow memory layout.
//
// Application memory is divided into 8-byte granules. Each granule owns K
// shadow cells; a cell packs one recorded access into a single uint64:
//
//	bits 63..52  fiber id   (12 bits, up to 4095 fibers)
//	bits 51..12  epoch      (40 bits)
//	bit  11      write flag
//	bits  7..0   byte mask  (which bytes of the granule were touched)
//
// A zero word means "empty cell" — fiber 0 (the host) starts at epoch 1,
// so no real access encodes to zero.
//
// Granules are grouped into pages of 4096 granules (32 KiB of application
// memory) allocated on demand, with the most recently touched page cached
// for the sequential access patterns range annotations produce.

const (
	granuleShift = 3
	granuleBytes = 1 << granuleShift

	pageGranuleShift = 12
	pageGranules     = 1 << pageGranuleShift
	pageGranuleMask  = pageGranules - 1

	maxCells   = 8
	maxFiberID = (1 << 12) - 1
	maxEpoch   = (1 << 40) - 1

	fullMask uint8 = 0xFF
)

func encodeCell(fiber int, ep vclock.Epoch, write bool, mask uint8) uint64 {
	w := uint64(0)
	if write {
		w = 1
	}
	return uint64(fiber)<<52 | (uint64(ep)&maxEpoch)<<12 | w<<11 | uint64(mask)
}

func decodeCell(c uint64) (fiber int, ep vclock.Epoch, write bool, mask uint8) {
	return int(c >> 52), vclock.Epoch(c >> 12 & maxEpoch), c>>11&1 == 1, uint8(c)
}

// partialMask computes the byte mask of the intersection of granule
// [gBase, gBase+8) with the accessed range [start, end).
func partialMask(gBase, start, end uint64) uint8 {
	lo := uint64(0)
	if start > gBase {
		lo = start - gBase
	}
	hi := uint64(granuleBytes)
	if end < gBase+granuleBytes {
		hi = end - gBase
	}
	var m uint8
	for i := lo; i < hi; i++ {
		m |= 1 << i
	}
	return m
}

type shadowPage struct {
	cells []uint64
	infos []*AccessInfo
}

type shadowMap struct {
	k     int
	pages map[uint64]*shadowPage
	// one-entry cache: range annotations walk granules sequentially.
	lastIdx  uint64
	lastPage *shadowPage

	// Budget (graceful degradation): when maxPages > 0 and a fresh page
	// would exceed it, the oldest page by creation order is dropped.
	// Losing shadow state can only hide races (false negatives), never
	// invent them — an empty cell looks like "never accessed" — so a
	// budgeted run stays sound for the cases it does report. Shed pages
	// are counted and surfaced through Stats.
	maxPages int
	order    []uint64 // page indices in creation order (FIFO)
	shed     int64
}

func (m *shadowMap) init(k int) {
	m.k = k
	m.pages = make(map[uint64]*shadowPage)
	m.lastIdx = ^uint64(0)
}

// page resolves (allocating on demand) the shadow page with the given
// page index. The batched range engine calls this once per page span;
// the granule-at-a-time reference walk goes through granule below.
func (m *shadowMap) page(idx uint64) *shadowPage {
	if idx == m.lastIdx {
		return m.lastPage
	}
	p, ok := m.pages[idx]
	if !ok {
		p = &shadowPage{
			cells: make([]uint64, pageGranules*m.k),
			infos: make([]*AccessInfo, pageGranules*m.k),
		}
		m.pages[idx] = p
		if m.maxPages > 0 {
			m.order = append(m.order, idx)
			for len(m.pages) > m.maxPages {
				victim := m.order[0]
				m.order = m.order[1:]
				delete(m.pages, victim)
				if victim == m.lastIdx {
					m.lastIdx = ^uint64(0)
					m.lastPage = nil
				}
				m.shed++
			}
		}
	}
	m.lastIdx = idx
	m.lastPage = p
	return p
}

// granule returns the K cells and parallel info slots for granule g.
func (m *shadowMap) granule(g uint64) ([]uint64, []*AccessInfo) {
	p := m.page(g >> pageGranuleShift)
	off := int(g&pageGranuleMask) * m.k
	return p.cells[off : off+m.k : off+m.k], p.infos[off : off+m.k : off+m.k]
}

// bytes estimates the shadow footprint: 16 bytes per cell slot
// (packed word + info pointer).
func (m *shadowMap) bytes() int64 {
	return int64(len(m.pages)) * pageGranules * int64(m.k) * 16
}
