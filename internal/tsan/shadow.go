package tsan

import "cusango/internal/vclock"

// Shadow memory layout.
//
// Application memory is divided into 8-byte granules. Each granule owns K
// shadow cells; a cell packs one recorded access into a single uint64
// (the TSan shadow-word discipline — conflict screening compares whole
// packed words before any vector-clock math):
//
//	bits 63..52  fiber id   (12 bits, up to 4095 fibers)
//	bits 51..12  epoch      (40 bits)
//	bit  11      write flag
//	bits  7..0   byte mask  (which bytes of the granule were touched:
//	             access size and offset in one field)
//
// A zero word means "empty cell" — fiber 0 (the host) starts at epoch 1,
// so no real access encodes to zero.
//
// Each cell additionally records its access site as a 32-bit index into
// the sanitizer's interned site table (see internInfo), so one shadow
// slot costs 12 bytes: the packed word plus the site id. Storing an
// index instead of an *AccessInfo pointer keeps the hot store free of
// GC write barriers and shrinks the shadow by a quarter.
//
// Granules are grouped into pages of 4096 granules (32 KiB of
// application memory) allocated on demand from a chunked arena. Pages
// are plane-split (structure of arrays): plane i holds slot i of every
// granule contiguously, so the batched engine's screening loop streams
// through plane 0 sequentially — 8 granules per cache line — instead of
// striding over interleaved slots.

const (
	granuleShift = 3
	granuleBytes = 1 << granuleShift

	pageGranuleShift = 12
	pageGranules     = 1 << pageGranuleShift
	pageGranuleMask  = pageGranules - 1

	maxCells   = 8
	maxFiberID = (1 << 12) - 1
	maxEpoch   = (1 << 40) - 1

	fullMask uint8 = 0xFF

	// screenMask selects the fiber-id and write-flag fields of a packed
	// cell: c&screenMask == newWord&screenMask is the one-compare
	// screen for "same execution context, same access kind" that the
	// batched engine runs before touching any vector clock.
	screenMask uint64 = uint64(maxFiberID)<<52 | 1<<11
)

func encodeCell(fiber int, ep vclock.Epoch, write bool, mask uint8) uint64 {
	w := uint64(0)
	if write {
		w = 1
	}
	return uint64(fiber)<<52 | (uint64(ep)&maxEpoch)<<12 | w<<11 | uint64(mask)
}

func decodeCell(c uint64) (fiber int, ep vclock.Epoch, write bool, mask uint8) {
	return int(c >> 52), vclock.Epoch(c >> 12 & maxEpoch), c>>11&1 == 1, uint8(c)
}

// partialMask computes the byte mask of the intersection of granule
// [gBase, gBase+8) with the accessed range [start, end).
func partialMask(gBase, start, end uint64) uint8 {
	lo := uint64(0)
	if start > gBase {
		lo = start - gBase
	}
	hi := uint64(granuleBytes)
	if end < gBase+granuleBytes {
		hi = end - gBase
	}
	var m uint8
	for i := lo; i < hi; i++ {
		m |= 1 << i
	}
	return m
}

// shadowPage is one 32-KiB window of shadow state, plane-split by slot:
// cells[i][gi] and infos[i][gi] are slot i of granule gi.
type shadowPage struct {
	cells [][]uint64
	infos [][]uint32
	// aux counts non-empty cells in planes >= 1. Cells only transition
	// empty -> non-empty (stores never write zero), so aux == 0 proves
	// every secondary plane of the page is still all-zero and the
	// streaming screen loop can skip loading them entirely — the common
	// case when one fiber at a time owns a buffer.
	aux int32
}

// shadowMap is the page index. It runs in one of two modes:
//
//   - unsharded (the default): a single map with a one-entry
//     most-recently-used cache, plus the optional FIFO page budget
//     (MaxShadowPages graceful degradation);
//   - sharded (Config.Shards > 1): pages are distributed over a
//     power-of-two array of shards by a multiplicative hash of the page
//     index. Each shard owns its own map, lock, and page arena, so
//     AnnotateBatch can check page-disjoint work from several
//     goroutines without sharing any allocator or index state.
type shadowMap struct {
	k     int
	pages map[uint64]*shadowPage
	arena pageArena
	// one-entry cache: range annotations walk granules sequentially.
	lastIdx  uint64
	lastPage *shadowPage

	// Budget (graceful degradation): when maxPages > 0 and a fresh page
	// would exceed it, the oldest page by creation order is dropped.
	// Losing shadow state can only hide races (false negatives), never
	// invent them — an empty cell looks like "never accessed" — so a
	// budgeted run stays sound for the cases it does report. Shed pages
	// are counted and surfaced through Stats; their planes return to
	// the arena free list and are reused (zeroed) by later pages.
	maxPages int
	order    []uint64 // page indices in creation order (FIFO)
	shed     int64

	// Sharded mode (nil when unsharded).
	shards    []pageShard
	shardMask uint64
}

func (m *shadowMap) init(k, shards int) {
	m.k = k
	m.lastIdx = ^uint64(0)
	if shards > 1 {
		m.shards = make([]pageShard, shards)
		m.shardMask = uint64(shards - 1)
		for i := range m.shards {
			m.shards[i].pages = make(map[uint64]*shadowPage)
		}
		return
	}
	m.pages = make(map[uint64]*shadowPage)
}

// shardIndex maps a page index to its shard number (Fibonacci hashing:
// page indices are strongly structured — consecutive, or strided by
// allocation bases — and the golden-ratio multiply spreads both).
func (m *shadowMap) shardIndex(idx uint64) uint64 {
	return (idx * 0x9E3779B97F4A7C15) >> 32 & m.shardMask
}

func (m *shadowMap) shardOf(idx uint64) *pageShard {
	return &m.shards[m.shardIndex(idx)]
}

// page resolves (allocating on demand) the shadow page with the given
// page index. Only the owning rank goroutine calls this; concurrent
// batch workers go through pageShard.page directly.
func (m *shadowMap) page(idx uint64) *shadowPage {
	if idx == m.lastIdx {
		return m.lastPage
	}
	var p *shadowPage
	if m.shards != nil {
		sh := m.shardOf(idx)
		sh.mu.Lock()
		p = sh.page(idx, m.k)
		sh.mu.Unlock()
	} else {
		var ok bool
		p, ok = m.pages[idx]
		if !ok {
			p = m.arena.newPage(m.k)
			m.pages[idx] = p
			if m.maxPages > 0 {
				m.order = append(m.order, idx)
				for len(m.pages) > m.maxPages {
					victim := m.order[0]
					m.order = m.order[1:]
					m.arena.free(m.pages[victim])
					delete(m.pages, victim)
					if victim == m.lastIdx {
						m.lastIdx = ^uint64(0)
						m.lastPage = nil
					}
					m.shed++
				}
			}
		}
	}
	m.lastIdx = idx
	m.lastPage = p
	return p
}

// pageCount returns the number of live shadow pages in either mode.
func (m *shadowMap) pageCount() int {
	if m.shards == nil {
		return len(m.pages)
	}
	n := 0
	for i := range m.shards {
		n += len(m.shards[i].pages)
	}
	return n
}

// bytes estimates the shadow footprint: 12 bytes per cell slot
// (packed word + interned site index).
func (m *shadowMap) bytes() int64 {
	return int64(m.pageCount()) * pageGranules * int64(m.k) * 12
}
