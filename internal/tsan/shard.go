package tsan

import (
	"runtime"
	"sort"
	"sync"

	"cusango/internal/memspace"
)

// Parallel batch checking over the sharded page index.
//
// AnnotateBatch checks a slice of range annotations — all performed by
// the current fiber at its current epoch, the shape of a kernel launch
// annotating every pointer argument — by fanning the work out over
// GOMAXPROCS-bounded workers. The concurrency discipline is shard
// ownership: worker w processes exactly the page spans whose shard
// index hashes to w (mod worker count), so no two workers ever touch
// the same shard's map, arena, or pages, and the checking loop needs no
// locks or atomics at all. The partition depends only on page indices,
// never on timing.
//
// Determinism (pinned by TestBatchParityAcrossWorkerCounts): every
// worker handles its ops in submission order and its granules in
// address order — the same relative order the sequential engine uses —
// so the shadow post-state is byte-identical to a sequential run at any
// worker count. Races are not reported from workers; they are collected
// as candidates, merge-sorted by (op index, granule), and replayed
// through the ordinary report path on the driver goroutine, which makes
// report order, deduplication, and suppression identical to the
// sequential engine too.

// RangeOp is one range annotation submitted to AnnotateBatch.
type RangeOp struct {
	Addr  memspace.Addr
	Len   int64
	Write bool
	Info  *AccessInfo
}

// batchState holds AnnotateBatch's reusable per-worker buffers so a
// steady stream of batches does not reallocate them.
type batchState struct {
	cands [][]raceCand // race candidates, per worker
	ctrs  []spanCtr    // engine counters, per worker
	pages []int64      // page spans resolved, per worker
	all   []raceCand   // merged candidates (replay order)
	ids   []uint32     // interned site id per op
}

// AnnotateBatch records all ops as accesses by the current fiber at its
// current epoch, equivalent to issuing the corresponding
// ReadRange/WriteRange calls in order (the same reports in the same
// order, the same shadow post-state), but checked concurrently when the
// page index is sharded (Config.Shards > 1). With an unsharded index it
// simply loops over the ops.
func (s *Sanitizer) AnnotateBatch(ops []RangeOp) {
	if len(ops) == 0 {
		return
	}
	s.stats.BatchOps += int64(len(ops))
	for i := range ops {
		if ops[i].Write {
			s.stats.WriteRangeCalls++
			s.stats.WriteBytes += ops[i].Len
		} else {
			s.stats.ReadRangeCalls++
			s.stats.ReadBytes += ops[i].Len
		}
	}
	if s.ignoreDepth > 0 {
		return
	}
	if s.shadow.shards == nil {
		for i := range ops {
			if ops[i].Len > 0 {
				s.accessRange(ops[i].Addr, ops[i].Len, ops[i].Write, ops[i].Info)
			}
		}
		return
	}

	nw := s.cfg.BatchWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(s.shadow.shards) {
		nw = len(s.shadow.shards)
	}
	if nw < 1 {
		nw = 1
	}

	b := &s.batch
	for len(b.cands) < nw {
		b.cands = append(b.cands, nil)
	}
	if len(b.ctrs) < nw {
		b.ctrs = make([]spanCtr, nw)
	}
	if len(b.pages) < nw {
		b.pages = make([]int64, nw)
	}
	b.ids = b.ids[:0]
	// Intern every site up front: infoTab must not be mutated while
	// workers are running.
	for i := range ops {
		b.ids = append(b.ids, s.internInfo(ops[i].Info))
	}

	f := s.cur
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		b.cands[w] = b.cands[w][:0]
		b.ctrs[w] = spanCtr{}
		b.pages[w] = 0
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.batchWorker(w, uint64(nw), ops, b.ids, f, &b.cands[w], &b.ctrs[w], &b.pages[w])
		}(w)
	}
	wg.Wait()

	// Fold worker counters and replay race candidates in the canonical
	// (op, granule) order — the order a sequential run reports in. Two
	// candidates with equal keys come from one granule, hence one
	// worker, and stable sorting keeps their slot order.
	b.all = b.all[:0]
	for w := 0; w < nw; w++ {
		s.stats.EnginePages += b.pages[w]
		s.stats.EngineGranules += b.ctrs[w].granules
		s.stats.EngineFastGranules += b.ctrs[w].fast
		s.stats.EngineSameGranules += b.ctrs[w].same
		b.all = append(b.all, b.cands[w]...)
	}
	sort.SliceStable(b.all, func(i, j int) bool {
		if b.all[i].op != b.all[j].op {
			return b.all[i].op < b.all[j].op
		}
		return b.all[i].g < b.all[j].g
	})
	for i := range b.all {
		c := &b.all[i]
		s.report(c.gAddr, c.write, s.infoTab[c.infoID], c.prevFiber, c.prevWrite,
			s.infoTab[c.prevInfoID])
	}
	s.accessSeq += uint64(len(ops))
}

// batchWorker walks every op's page spans, processing only the spans
// whose shard this worker owns. ep is re-read from the fiber clock
// (read-only) so the signature stays small.
func (s *Sanitizer) batchWorker(w int, nw uint64, ops []RangeOp, ids []uint32,
	f *Fiber, cands *[]raceCand, ctr *spanCtr, pages *int64) {
	m := &s.shadow
	k := s.cfg.CellsPerGranule
	ep := f.clock.Get(f.id)
	for i := range ops {
		op := &ops[i]
		if op.Len <= 0 {
			continue
		}
		start := uint64(op.Addr)
		end := start + uint64(op.Len)
		g := start >> granuleShift
		gLast := (end - 1) >> granuleShift
		newWord := encodeCell(f.id, ep, op.Write, fullMask)
		for g <= gLast {
			pageIdx := g >> pageGranuleShift
			gStop := gLast
			if pageEnd := pageIdx<<pageGranuleShift + pageGranuleMask; pageEnd < gStop {
				gStop = pageEnd
			}
			if shIdx := m.shardIndex(pageIdx); shIdx%nw == uint64(w) {
				// This worker owns the shard: lock-free access by the
				// ownership invariant.
				p := m.shards[shIdx].page(pageIdx, k)
				before := len(*cands)
				s.walkSpan(p, g, gStop, start, end, op.Write, f, ep, ids[i],
					newWord, cands, ctr)
				for j := before; j < len(*cands); j++ {
					(*cands)[j].op = i
				}
				*pages++
			}
			g = gStop + 1
		}
	}
}
