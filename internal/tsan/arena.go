package tsan

import "sync"

// Hot-path memory discipline: everything the detector allocates at
// steady state comes out of chunked arenas with free lists, so the
// clean access path — annotate a range over warm shadow, release and
// acquire existing sync vars, switch fibers — performs zero heap
// allocations (pinned by TestCleanPathZeroAllocs in alloc_test.go).
//
// Three allocation classes are covered:
//
//   - shadow pages: pageArena carves plane slabs (cells + site ids)
//     out of multi-page chunks and recycles the planes of pages shed
//     by the MaxShadowPages budget, zeroing them on reuse;
//   - vector clocks: fibers and sync vars draw their clocks from a
//     vclock.Arena whose capacity hint tracks the fiber count;
//   - detector objects: Fiber and syncVar structs are carved from
//     chunked slabs (fiberArena / svArena in tsan.go) instead of
//     being allocated one object at a time.
//
// Arenas are owned by one Sanitizer and die with it — the per-run
// reset. Nothing is returned to the Go heap early, which is safe
// because a run's shadow state must stay live until the run's reports
// have been rendered.

// arenaChunkPages is how many pages' worth of planes one chunk holds.
const arenaChunkPages = 4

// pageArena allocates shadowPage objects and their plane slabs.
type pageArena struct {
	words    []uint64 // current cell-plane chunk tail
	ids      []uint32 // current info-plane chunk tail
	pages    []shadowPage
	freeList []*shadowPage // recycled pages (planes zeroed on reuse)
}

// newPage returns a zeroed k-plane page, reusing a recycled page's
// storage when available.
func (a *pageArena) newPage(k int) *shadowPage {
	if n := len(a.freeList); n > 0 {
		p := a.freeList[n-1]
		a.freeList = a.freeList[:n-1]
		for _, pl := range p.cells {
			clear(pl)
		}
		for _, pl := range p.infos {
			clear(pl)
		}
		p.aux = 0
		return p
	}
	if len(a.pages) == 0 {
		a.pages = make([]shadowPage, arenaChunkPages)
	}
	p := &a.pages[0]
	a.pages = a.pages[1:]
	p.cells = make([][]uint64, k)
	p.infos = make([][]uint32, k)
	for i := 0; i < k; i++ {
		if len(a.words) < pageGranules {
			a.words = make([]uint64, arenaChunkPages*k*pageGranules)
		}
		p.cells[i] = a.words[:pageGranules:pageGranules]
		a.words = a.words[pageGranules:]
		if len(a.ids) < pageGranules {
			a.ids = make([]uint32, arenaChunkPages*k*pageGranules)
		}
		p.infos[i] = a.ids[:pageGranules:pageGranules]
		a.ids = a.ids[pageGranules:]
	}
	return p
}

// free returns a shed page's storage to the free list for reuse.
func (a *pageArena) free(p *shadowPage) {
	a.freeList = append(a.freeList, p)
}

// pageShard is one bucket of the sharded page index: a private map,
// lock, and arena. Shard ownership is the concurrency invariant of the
// batched parallel checker: a batch worker only ever touches pages
// whose shard it owns for the duration of the batch, so cell and index
// mutation is single-writer per shard. The lock serializes the
// (rare) cross-batch window where the sequential path and a future
// concurrent caller could both resolve pages.
type pageShard struct {
	mu    sync.Mutex
	pages map[uint64]*shadowPage
	arena pageArena
	_     [24]byte // keep neighbouring shards off one cache line
}

// page resolves (allocating on demand) a page inside this shard. The
// caller holds sh.mu or owns the shard for the current batch.
func (sh *pageShard) page(idx uint64, k int) *shadowPage {
	p, ok := sh.pages[idx]
	if !ok {
		p = sh.arena.newPage(k)
		sh.pages[idx] = p
	}
	return p
}
