package tsan

import (
	"fmt"
	"testing"

	"cusango/internal/memspace"
)

// Zero-allocation guards for the steady-state checking path (ISSUE 10
// tentpole criterion): once shadow pages, sync vars, and clocks exist,
// a clean annotate/release/switch/acquire cycle must not touch the Go
// heap. The guards run under -race in CI; the race runtime's own
// bookkeeping does not count against testing.AllocsPerRun.

// cleanCycle is one steady-state iteration: the host annotates its
// buffer, releases, the stream fiber acquires, annotates its own
// buffer, releases back, and the host acquires. No races, no new
// pages, no new sync vars — the shape of an iterative stencil loop.
func cleanCycle(s *Sanitizer, stream *Fiber, hostInfo, streamInfo *AccessInfo,
	hostKey, streamKey SyncKey, hostBuf, streamBuf memspace.Addr, n int64) {
	s.WriteRange(hostBuf, n, hostInfo)
	s.HappensBefore(hostKey)
	s.SwitchFiber(stream)
	s.HappensAfter(hostKey)
	s.WriteRange(streamBuf, n, streamInfo)
	s.HappensBefore(streamKey)
	s.SwitchFiber(s.HostFiber())
	s.HappensAfter(streamKey)
}

func TestCleanPathZeroAllocs(t *testing.T) {
	const rangeBytes = 64 << 10
	for _, eng := range []Engine{EngineBatched, EngineSlow} {
		for _, cache := range []bool{false, true} {
			if eng == EngineSlow && cache {
				continue // the cache only exists in the batched engine
			}
			name := fmt.Sprintf("%s/cache=%v", eng, cache)
			t.Run(name, func(t *testing.T) {
				s := New(Config{Engine: eng, DisableRangeCache: !cache})
				stream := s.CreateFiber("stream")
				hostInfo := &AccessInfo{Site: "host loop", Object: "send buffer"}
				streamInfo := &AccessInfo{Site: "kernel step", Object: "arg 0"}
				hostKey := MakeKey(1, 1)
				streamKey := MakeKey(1, 2)
				hostBuf := base
				streamBuf := base + 4<<20
				// Warm up: allocate the pages, sync vars, clock capacity,
				// and interned sites the steady state will reuse.
				for i := 0; i < 3; i++ {
					cleanCycle(s, stream, hostInfo, streamInfo,
						hostKey, streamKey, hostBuf, streamBuf, rangeBytes)
				}
				avg := testing.AllocsPerRun(50, func() {
					cleanCycle(s, stream, hostInfo, streamInfo,
						hostKey, streamKey, hostBuf, streamBuf, rangeBytes)
				})
				if avg != 0 {
					t.Fatalf("engine %s cache=%v: clean path allocates %.2f objects/op, want 0",
						eng, cache, avg)
				}
				if got := s.RaceCount(); got != 0 {
					t.Fatalf("clean cycle reported %d races", got)
				}
			})
		}
	}
}

// TestCleanPathZeroAllocsBatchedReleases pins that the epoch-batched
// release fast path itself is allocation-free and actually taken: a
// fiber releasing the same key repeatedly without intervening acquires
// must hit the one-store path.
func TestCleanPathZeroAllocsBatchedReleases(t *testing.T) {
	s := New(Config{})
	key := MakeKey(2, 9)
	s.HappensBefore(key) // prime the sync var
	avg := testing.AllocsPerRun(50, func() {
		s.HappensBefore(key)
	})
	if avg != 0 {
		t.Fatalf("repeated release allocates %.2f objects/op, want 0", avg)
	}
	st := s.Stats()
	if st.ReleasesBatched == 0 {
		t.Fatalf("repeated releases never took the epoch-batched fast path: %+v", st)
	}
}
