package tsan

import (
	"testing"

	"cusango/internal/memspace"
)

// The batched engine is the default; these tests pin its observable
// mechanics (counters, fast path, range cache) — equivalence with the
// slow reference walk is pinned separately in differential_test.go.

func TestEngineDefaultIsBatched(t *testing.T) {
	if New(Config{}).cfg.Engine != EngineBatched {
		t.Fatal("zero-value config must select the batched engine")
	}
	for _, tc := range []struct {
		in   string
		want Engine
	}{{"", EngineBatched}, {"batched", EngineBatched}, {"SLOW", EngineSlow}, {"slow", EngineSlow}} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine must reject unknown engines")
	}
	if EngineBatched.String() != "batched" || EngineSlow.String() != "slow" {
		t.Error("engine names")
	}
}

func TestBatchedEngineCounters(t *testing.T) {
	s := newSan()
	// base is page-aligned: 64 KiB = 8192 granules = exactly 2 pages,
	// all interior (full mask) over empty shadow -> all fast path.
	s.WriteRange(base, 64<<10, hostW)
	st := s.Stats()
	if st.EnginePages != 2 {
		t.Errorf("pages = %d, want 2", st.EnginePages)
	}
	if st.EngineGranules != 8192 {
		t.Errorf("granules = %d, want 8192", st.EngineGranules)
	}
	if st.EngineFastGranules != 8192 {
		t.Errorf("fast granules = %d, want 8192", st.EngineFastGranules)
	}
	if st.RangeCacheMisses != 1 || st.RangeCacheHits != 0 {
		t.Errorf("cache misses/hits = %d/%d, want 1/0", st.RangeCacheMisses, st.RangeCacheHits)
	}
}

func TestBatchedEnginePartialEdges(t *testing.T) {
	s := newSan()
	// Unaligned 20-byte write: head and tail granules are partial, one
	// interior granule is full-mask.
	s.WriteRange(base+3, 20, hostW)
	st := s.Stats()
	if st.EngineGranules != 3 {
		t.Errorf("granules = %d, want 3", st.EngineGranules)
	}
	if st.EngineFastGranules != 1 {
		t.Errorf("fast granules = %d, want 1 (interior only)", st.EngineFastGranules)
	}
}

func TestRangeCacheHitOnIdenticalReannotation(t *testing.T) {
	s := newSan()
	s.WriteRange(base, 4096, hostW)
	granulesAfterFirst := s.Stats().EngineGranules
	s.WriteRange(base, 4096, hostW) // identical: cache hit, no walk
	st := s.Stats()
	if st.RangeCacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.RangeCacheHits)
	}
	if st.EngineGranules != granulesAfterFirst {
		t.Fatalf("cache hit still walked granules: %d -> %d", granulesAfterFirst, st.EngineGranules)
	}
	// A third identical annotation still hits (no walk happened between).
	s.WriteRange(base, 4096, hostW)
	if s.Stats().RangeCacheHits != 2 {
		t.Fatalf("repeated hit not taken")
	}
}

func TestRangeCacheInvalidation(t *testing.T) {
	type step struct {
		name  string
		setup func(s *Sanitizer)
	}
	steps := []step{
		{"epoch advance", func(s *Sanitizer) { s.HappensBefore(MakeKey(1, 1)) }},
		{"intervening walk", func(s *Sanitizer) { s.WriteRange(base+(1<<20), 64, hostW) }},
		{"different info", func(s *Sanitizer) {}}, // handled below
	}
	for _, st := range steps[:2] {
		t.Run(st.name, func(t *testing.T) {
			s := newSan()
			s.WriteRange(base, 512, hostW)
			st.setup(s)
			s.WriteRange(base, 512, hostW)
			if s.Stats().RangeCacheHits != 0 {
				t.Fatalf("stale cache hit after %s", st.name)
			}
		})
	}
	t.Run("different kind or site", func(t *testing.T) {
		s := newSan()
		s.WriteRange(base, 512, hostW)
		s.ReadRange(base, 512, hostR) // different access kind: miss
		s.WriteRange(base, 512, devW) // different site: miss
		if s.Stats().RangeCacheHits != 0 {
			t.Fatalf("cache hit despite kind/site change")
		}
	})
	t.Run("different range", func(t *testing.T) {
		s := newSan()
		s.WriteRange(base, 512, hostW)
		s.WriteRange(base, 256, hostW) // sub-range has different edge masks: miss
		if s.Stats().RangeCacheHits != 0 {
			t.Fatalf("sub-range must not hit the exact-range cache")
		}
	})
}

func TestRangeCacheDisabled(t *testing.T) {
	s := New(Config{DisableRangeCache: true})
	info := &AccessInfo{Site: "host", Object: "w"}
	s.WriteRange(base, 4096, info)
	s.WriteRange(base, 4096, info)
	st := s.Stats()
	if st.RangeCacheHits != 0 || st.RangeCacheMisses != 0 {
		t.Fatalf("disabled cache still counted: %d/%d", st.RangeCacheHits, st.RangeCacheMisses)
	}
	if st.EngineGranules != 1024 {
		t.Fatalf("granules = %d, want 1024 (both walks performed)", st.EngineGranules)
	}
}

func TestSlowEngineLeavesEngineCountersZero(t *testing.T) {
	s := New(Config{Engine: EngineSlow})
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 64<<10, devW)
	s.SwitchFiber(host)
	s.ReadRange(base, 64<<10, hostR)
	if s.RaceCount() == 0 {
		t.Fatal("slow engine must still detect races")
	}
	st := s.Stats()
	if st.EnginePages != 0 || st.EngineGranules != 0 || st.EngineFastGranules != 0 ||
		st.RangeCacheHits != 0 || st.RangeCacheMisses != 0 {
		t.Fatalf("slow engine touched batched-engine counters: %+v", st)
	}
}

func TestBatchedFastPathSkippedWhenForeignCellPresent(t *testing.T) {
	s := newSan()
	fib := s.CreateFiber("stream")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 8, devW)
	s.SwitchFiber(host)
	before := s.Stats().EngineFastGranules
	s.WriteRange(base, 8, hostW) // foreign concurrent cell: general path + race
	if s.Stats().EngineFastGranules != before {
		t.Fatal("fast path taken over a granule holding a foreign cell")
	}
	if s.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1", s.RaceCount())
	}
}

func TestBatchedCrossPageUnalignedRange(t *testing.T) {
	// A range straddling a page boundary with unaligned edges must touch
	// both pages and mark the exact same bytes the slow walk would.
	pageBytes := uint64(pageGranules * granuleBytes)
	start := base + memspace.Addr(pageBytes) - 13
	s := New(Config{})
	r := New(Config{Engine: EngineSlow})
	fib, rfib := s.CreateFiber("f"), r.CreateFiber("f")
	s.SwitchFiber(fib)
	r.SwitchFiber(rfib)
	s.WriteRange(start, 30, devW)
	r.WriteRange(start, 30, devW)
	if got := s.Stats().EnginePages; got != 2 {
		t.Fatalf("pages = %d, want 2", got)
	}
	s.SwitchFiber(s.HostFiber())
	r.SwitchFiber(r.HostFiber())
	// Byte-precise probes on both sides of the straddle.
	for _, probe := range []struct {
		a    memspace.Addr
		n    int64
		race bool
	}{
		{start - 1, 1, false}, // just before
		{start, 1, true},      // first byte
		{start + 29, 1, true}, // last byte
		{start + 30, 1, false} /* just after */} {
		sc, rc := s.RaceCount(), r.RaceCount()
		pi := &AccessInfo{Site: "probe", Object: "host write"} // fresh per probe: no dedup
		s.WriteRange(probe.a, probe.n, pi)
		r.WriteRange(probe.a, probe.n, pi)
		gotS, gotR := s.RaceCount() > sc, r.RaceCount() > rc
		if gotS != probe.race || gotR != probe.race {
			t.Fatalf("probe at %#x: batched race=%v slow race=%v, want %v",
				uint64(probe.a), gotS, gotR, probe.race)
		}
	}
}
