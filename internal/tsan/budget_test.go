package tsan

import (
	"testing"

	"cusango/internal/memspace"
)

// pageStride is the application-memory span of one shadow page.
const pageStride = pageGranules * granuleBytes

// TestShadowBudgetSheds: exceeding MaxShadowPages drops the oldest pages
// and counts them; the live footprint stays bounded.
func TestShadowBudgetSheds(t *testing.T) {
	s := New(Config{MaxShadowPages: 4})
	for i := 0; i < 10; i++ {
		s.WriteRange(base+memspace.Addr(i*pageStride), 64, hostW)
	}
	st := s.Stats()
	if st.ShadowPagesShed != 6 {
		t.Fatalf("ShadowPagesShed = %d, want 6", st.ShadowPagesShed)
	}
	if got, cap := s.ShadowBytes(), int64(4)*pageGranules*2*16; got > cap {
		t.Fatalf("ShadowBytes = %d exceeds budget footprint %d", got, cap)
	}
}

// TestShadowBudgetNoFalsePositives: shedding loses history, so a true
// race inside a shed page is missed (false negative) — but re-accessing
// a shed page must never report a race that did not happen.
func TestShadowBudgetNoFalsePositives(t *testing.T) {
	s := New(Config{MaxShadowPages: 2})
	fib := s.CreateFiber("stream 0")
	host := s.CurrentFiber()

	// Properly synchronized write pairs across many pages: racefree, so
	// any report after shedding would be fabricated.
	for i := 0; i < 8; i++ {
		a := base + memspace.Addr(i*pageStride)
		key := MakeKey(1, uint64(i))
		s.SwitchFiber(fib)
		s.WriteRange(a, 64, devW)
		s.HappensBefore(key)
		s.SwitchFiber(host)
		s.HappensAfter(key)
		s.WriteRange(a, 64, hostW)
	}
	if n := s.RaceCount(); n != 0 {
		t.Fatalf("budgeted race-free run reported %d races", n)
	}
	if s.Stats().ShadowPagesShed == 0 {
		t.Fatal("budget never engaged; test is vacuous")
	}
}

// TestShadowBudgetStillDetectsRecentRaces: a race whose shadow page is
// still resident is reported exactly as without a budget.
func TestShadowBudgetStillDetectsRecentRaces(t *testing.T) {
	s := New(Config{MaxShadowPages: 2})
	fib := s.CreateFiber("stream 0")
	host := s.CurrentFiber()
	s.SwitchFiber(fib)
	s.WriteRange(base, 64, devW)
	s.SwitchFiber(host)
	s.WriteRange(base, 64, hostW) // unsynchronized: a real race
	if n := s.RaceCount(); n == 0 {
		t.Fatal("budgeted sanitizer missed an in-budget race")
	}
}

// TestShadowBudgetEngineParity: both range engines create pages in the
// same order, so the shed count is engine-independent.
func TestShadowBudgetEngineParity(t *testing.T) {
	counts := map[Engine]int64{}
	for _, eng := range []Engine{EngineBatched, EngineSlow} {
		s := New(Config{MaxShadowPages: 3, Engine: eng})
		for i := 0; i < 7; i++ {
			s.WriteRange(base+memspace.Addr(i*pageStride), 128, hostW)
		}
		counts[eng] = s.Stats().ShadowPagesShed
	}
	if counts[EngineBatched] != counts[EngineSlow] || counts[EngineBatched] == 0 {
		t.Fatalf("shed counts diverge: fast=%d slow=%d", counts[EngineBatched], counts[EngineSlow])
	}
}
