package tsan

import (
	"cusango/internal/memspace"
)

// The batched shadow-range engine (the default, Config.Engine ==
// EngineBatched).
//
// The paper's headline overhead result is that CuSan's cost tracks the
// bytes annotated to TSan (§V-B, Fig. 12), and the annotation hot path
// is exactly this walk. The reference implementation (accessRangeSlow)
// resolves a shadow page per granule and recomputes the partial-mask
// condition on every step. The batched engine instead:
//
//  1. resolves each shadow page once and processes every granule it
//     covers in a tight loop over the page's cell slab;
//  2. takes a full-mask fast path for interior granules — only the
//     first and last granule of a range can be partial, and a granule
//     whose cells are empty (or hold only this fiber's same-kind
//     access) needs no decode loop at all;
//  3. consults a per-fiber same-epoch range cache: a fiber
//     re-annotating the identical range at its current epoch with the
//     same access kind and site, before any other walk touched the
//     shadow, is a provable no-op and returns immediately (the
//     iterative-stencil pattern the mini-apps produce).
//
// Both engines funnel every non-trivial granule through checkGranule,
// so race reports, slot selection, and eviction order are identical;
// the differential tests in differential_test.go pin that equivalence.

// accessRangeBatched records an access to [a, a+n) page span by page
// span.
func (s *Sanitizer) accessRangeBatched(a memspace.Addr, n int64, write bool, info *AccessInfo) {
	f := s.cur
	ep := s.epoch()
	start := uint64(a)
	end := start + uint64(n)

	if !s.cfg.DisableRangeCache {
		e := &s.rangeCache[f.id]
		if e.valid && e.seq == s.accessSeq && e.start == start && e.end == end &&
			e.write == write && e.ep == ep && e.info == info {
			s.stats.RangeCacheHits++
			return
		}
		s.stats.RangeCacheMisses++
	}

	g := start >> granuleShift
	gLast := (end - 1) >> granuleShift
	k := s.shadow.k
	wbit := uint64(0)
	if write {
		wbit = 1
	}
	fid := uint64(f.id)
	fullCell := encodeCell(f.id, ep, write, fullMask)

	for g <= gLast {
		pageIdx := g >> pageGranuleShift
		p := s.shadow.page(pageIdx)
		s.stats.EnginePages++
		gStop := gLast
		if pageEnd := pageIdx<<pageGranuleShift + pageGranuleMask; pageEnd < gStop {
			gStop = pageEnd
		}
		off := int(g&pageGranuleMask) * k
		for ; g <= gStop; g, off = g+1, off+k {
			gBase := g << granuleShift
			cells := p.cells[off : off+k : off+k]
			s.stats.EngineGranules++
			if gBase >= start && gBase+granuleBytes <= end {
				// Interior granule: the mask is full. If the first cell
				// is empty or holds this fiber's same-kind access and
				// every other cell is empty, no conflict is possible and
				// the slot choice matches checkGranule's (sameSlot,
				// else emptySlot, both 0) — store and move on.
				c0 := cells[0]
				if c0 == 0 || (c0>>52 == fid && c0>>11&1 == wbit) {
					clean := true
					for i := 1; i < k; i++ {
						if cells[i] != 0 {
							clean = false
							break
						}
					}
					if clean {
						cells[0] = fullCell
						p.infos[off] = info
						s.stats.EngineFastGranules++
						continue
					}
				}
				s.checkGranule(cells, p.infos[off:off+k:off+k], g, fullMask,
					write, f, ep, info, memspace.Addr(gBase))
				continue
			}
			mask := partialMask(gBase, start, end)
			s.checkGranule(cells, p.infos[off:off+k:off+k], g, mask,
				write, f, ep, info, memspace.Addr(gBase))
		}
	}

	s.accessSeq++
	if !s.cfg.DisableRangeCache {
		s.rangeCache[f.id] = rangeCacheEntry{
			start: start, end: end, ep: ep, info: info, write: write,
			valid: true, seq: s.accessSeq,
		}
	}
}
