package tsan

import (
	"cusango/internal/memspace"
	"cusango/internal/vclock"
)

// The batched shadow-range engine (the default, Config.Engine ==
// EngineBatched).
//
// The paper's headline overhead result is that CuSan's cost tracks the
// bytes annotated to TSan (§V-B, Fig. 12), and the annotation hot path
// is exactly this walk. The reference implementation (accessRangeSlow)
// resolves a shadow page per granule and recomputes the partial-mask
// condition on every step. The batched engine instead:
//
//  1. resolves each shadow page once and processes every granule it
//     covers in a tight loop over the page's plane-0 slab (8 packed
//     words per cache line);
//  2. clips the interior (full-mask) granule range once per page span —
//     only the first and last granule of a range can be partial — so
//     the inner loop carries no per-granule mask logic;
//  3. screens each interior granule with one packed-word compare:
//     c & screenMask == screen means "same fiber, same access kind",
//     and if the word is bit-identical to the word we would store (same
//     epoch, full mask) with the same interned site, the access is a
//     provable re-annotation and nothing is stored at all;
//  4. consults a per-fiber same-epoch range cache: a fiber
//     re-annotating the identical range at its current epoch with the
//     same access kind and site, before any other walk touched the
//     shadow, is a provable no-op and returns immediately (the
//     iterative-stencil pattern the mini-apps produce).
//
// Both engines funnel every non-trivial granule through checkGranule,
// so race reports, slot selection, and eviction order are identical;
// the differential tests in differential_test.go pin that equivalence.

// spanCtr accumulates engine counters locally during a walk; totals are
// folded into Stats once per range (or per batch worker), keeping the
// inner loop free of field stores.
type spanCtr struct {
	granules int64
	fast     int64
	same     int64
}

// accessRangeBatched records an access to [a, a+n) page span by page
// span.
func (s *Sanitizer) accessRangeBatched(a memspace.Addr, n int64, write bool, info *AccessInfo) {
	f := s.cur
	ep := s.epoch()
	start := uint64(a)
	end := start + uint64(n)

	if !s.cfg.DisableRangeCache {
		e := &s.rangeCache[f.id]
		if e.valid && e.seq == s.accessSeq && e.start == start && e.end == end &&
			e.write == write && e.ep == ep && e.info == info {
			s.stats.RangeCacheHits++
			return
		}
		s.stats.RangeCacheMisses++
	}

	infoID := s.internInfo(info)
	g := start >> granuleShift
	gLast := (end - 1) >> granuleShift
	newWord := encodeCell(f.id, ep, write, fullMask)
	var ctr spanCtr
	var pages int64

	for g <= gLast {
		pageIdx := g >> pageGranuleShift
		p := s.shadow.page(pageIdx)
		pages++
		gStop := gLast
		if pageEnd := pageIdx<<pageGranuleShift + pageGranuleMask; pageEnd < gStop {
			gStop = pageEnd
		}
		s.walkSpan(p, g, gStop, start, end, write, f, ep, infoID, newWord, nil, &ctr)
		g = gStop + 1
	}

	s.stats.EnginePages += pages
	s.stats.EngineGranules += ctr.granules
	s.stats.EngineFastGranules += ctr.fast
	s.stats.EngineSameGranules += ctr.same
	s.accessSeq++
	if !s.cfg.DisableRangeCache {
		s.rangeCache[f.id] = rangeCacheEntry{
			start: start, end: end, ep: ep, info: info, write: write,
			valid: true, seq: s.accessSeq,
		}
	}
}

// walkSpan processes granules [g, gStop] of page p for an access to
// [start, end). It is the one shared inner loop: the sequential batched
// engine calls it with sink == nil (races reported inline) and
// AnnotateBatch workers call it with a per-worker candidate sink
// (shard.go). The interior full-mask sub-range is clipped once, then
// streamed through the packed-word screen.
func (s *Sanitizer) walkSpan(p *shadowPage, g, gStop, start, end uint64,
	write bool, f *Fiber, ep vclock.Epoch, infoID uint32, newWord uint64,
	sink *[]raceCand, ctr *spanCtr) {
	// Interior granules of the whole range: full byte mask.
	gIntLo := (start + granuleBytes - 1) >> granuleShift
	gIntHi := end>>granuleShift - 1
	if end < granuleBytes {
		gIntLo, gIntHi = 1, 0 // no interior
	}

	// Leading partial granules on this page.
	for ; g <= gStop && g < gIntLo; g++ {
		gBase := g << granuleShift
		s.checkGranule(p, int(g&pageGranuleMask), g, partialMask(gBase, start, end),
			write, f, ep, infoID, memspace.Addr(gBase), sink)
		ctr.granules++
	}

	// Interior granules: one packed-word compare screens out granules
	// already holding this access; a second compare detects the exact
	// same shadow word (same epoch, same site) and skips the store too.
	intStop := gStop
	if gIntHi < intStop {
		intStop = gIntHi
	}
	if g <= intStop {
		n := int(intStop-g) + 1
		ctr.granules += int64(n)
		k := s.cfg.CellsPerGranule
		screen := newWord & screenMask
		giLo := int(g & pageGranuleMask)
		// Equal-length subslices let the compiler drop the bounds checks
		// from the streaming loop.
		c0 := p.cells[0][giLo : giLo+n]
		f0 := p.infos[0][giLo : giLo+n]
		switch {
		case k == 1 || p.aux == 0:
			// Either there are no secondary planes or (aux == 0) they are
			// provably all-zero, so screening needs only plane 0. A
			// checkGranule below may populate a secondary cell, but only
			// for its own granule — granules still ahead of the loop
			// keep their secondary cells empty.
			for j := 0; j < n; j++ {
				c := c0[j]
				if c == newWord && f0[j] == infoID {
					ctr.same++
					continue
				}
				if c == 0 || c&screenMask == screen {
					c0[j] = newWord
					f0[j] = infoID
					ctr.fast++
					continue
				}
				s.checkGranule(p, giLo+j, g+uint64(j), fullMask, write, f, ep,
					infoID, memspace.Addr((g+uint64(j))<<granuleShift), sink)
			}
		case k == 2:
			c1 := p.cells[1][giLo : giLo+n]
			for j := 0; j < n; j++ {
				c := c0[j]
				if c == newWord && c1[j] == 0 && f0[j] == infoID {
					ctr.same++
					continue
				}
				if (c == 0 || c&screenMask == screen) && c1[j] == 0 {
					c0[j] = newWord
					f0[j] = infoID
					ctr.fast++
					continue
				}
				s.checkGranule(p, giLo+j, g+uint64(j), fullMask, write, f, ep,
					infoID, memspace.Addr((g+uint64(j))<<granuleShift), sink)
			}
		default:
			for j := 0; j < n; j++ {
				c := c0[j]
				if c == 0 || c&screenMask == screen {
					clean := true
					for i := 1; i < k; i++ {
						if p.cells[i][giLo+j] != 0 {
							clean = false
							break
						}
					}
					if clean {
						if c == newWord && f0[j] == infoID {
							ctr.same++
						} else {
							c0[j] = newWord
							f0[j] = infoID
							ctr.fast++
						}
						continue
					}
				}
				s.checkGranule(p, giLo+j, g+uint64(j), fullMask, write, f, ep,
					infoID, memspace.Addr((g+uint64(j))<<granuleShift), sink)
			}
		}
		g += uint64(n)
	}

	// Trailing partial granules on this page.
	for ; g <= gStop; g++ {
		gBase := g << granuleShift
		s.checkGranule(p, int(g&pageGranuleMask), g, partialMask(gBase, start, end),
			write, f, ep, infoID, memspace.Addr(gBase), sink)
		ctr.granules++
	}
}
