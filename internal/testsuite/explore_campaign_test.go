package testsuite

import (
	"bytes"
	"testing"

	"cusango/internal/campaign"
	"cusango/internal/tsan"
)

// TestExploreCampaign is the ISSUE acceptance gate for the explore job
// kind: `cusan-campaign -kinds explore` over the whole suite proves at
// least 20 cases race-free across their complete schedule space (with
// exact explored/pruned counts in the JSONL record), finds a racy
// schedule for every known-racy case, and aggregates byte-identically
// across worker counts.
func TestExploreCampaign(t *testing.T) {
	jobs := ExploreJobs(Cases(), []tsan.Engine{tsan.EngineBatched}, 0, 0)
	var reports [2]bytes.Buffer
	var rep *campaign.Report
	for i, workers := range []int{1, 8} {
		rep = campaign.Run(jobs, ExecuteJob, campaign.Options{Workers: workers})
		if err := rep.WriteJSONL(&reports[i], false); err != nil {
			t.Fatal(err)
		}
		if pass, fail, errs := rep.Counts(); fail != 0 || errs != 0 {
			t.Fatalf("workers=%d: pass=%d fail=%d error=%d; findings: %v",
				workers, pass, fail, errs, rep.UniqueFindings())
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatal("canonical explore report differs between 1 and 8 workers")
	}

	provenRaceFree := 0
	for _, r := range rep.Records {
		c := caseIndex()[r.Case]
		if r.Explored < 1 {
			t.Errorf("%s: explored %d schedules", r.Case, r.Explored)
		}
		if r.Incomplete {
			t.Errorf("%s: exploration incomplete within the default budget", r.Case)
		}
		if c.ExpectRace {
			if r.RacySchedules == 0 || r.Schedule == "" {
				t.Errorf("%s: known-racy case has no racy schedule (explored %d)", r.Case, r.Explored)
			}
		} else {
			if r.RacySchedules != 0 {
				t.Errorf("%s: correct case raced on %d schedules (minimal %q)",
					r.Case, r.RacySchedules, r.Schedule)
			}
			if !r.Incomplete {
				provenRaceFree++
			}
		}
	}
	if provenRaceFree < 20 {
		t.Errorf("only %d cases proven race-free across their full schedule space, want >= 20", provenRaceFree)
	}
	t.Logf("explore campaign: %d jobs, %d cases proven race-free over complete schedule spaces",
		len(rep.Records), provenRaceFree)
}

// TestExploreConfigRoundtrip pins the job-config grammar the cache key
// depends on.
func TestExploreConfigRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		budget, bound int
		want          string
	}{
		{0, 0, ""},
		{512, 0, "b=512"},
		{0, 2, "p=2"},
		{64, 3, "b=64,p=3"},
	} {
		got := FormatExploreConfig(tc.budget, tc.bound)
		if got != tc.want {
			t.Errorf("FormatExploreConfig(%d,%d) = %q, want %q", tc.budget, tc.bound, got, tc.want)
		}
		b, p, err := parseExploreConfig(got)
		if err != nil || b != tc.budget || p != tc.bound {
			t.Errorf("parseExploreConfig(%q) = %d,%d,%v", got, b, p, err)
		}
	}
	for _, bad := range []string{"b", "b=x", "q=1", "b=-1"} {
		if _, _, err := parseExploreConfig(bad); err == nil {
			t.Errorf("parseExploreConfig(%q) accepted garbage", bad)
		}
	}
}
