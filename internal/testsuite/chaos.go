package testsuite

import (
	"errors"
	"fmt"

	"cusango/internal/campaign"
	"cusango/internal/core"
	"cusango/internal/faults"
	"cusango/internal/mpi"
	"cusango/internal/tsan"
)

// Chaos soak: the robustness closing-the-loop harness. Every classified
// case is re-run under seeded fault schedules, and the tool's verdicts
// must stay trustworthy in the presence of the injected faults:
//
//   - a correct case never produces a race report (no false positives —
//     an injected fault may abort the run, but must not confuse the
//     happens-before analysis into inventing races);
//   - every rank error is attributable: it either carries the injected
//     fault's (seed, site, occurrence) replay triple, or is ErrAborted
//     collateral from another rank's injected death;
//   - the checker itself never crashes — a contained checker panic
//     surfaces as a structured Degradation, anything else is a harness
//     violation;
//   - any observed fault reproduces exactly from its replay triple.

// ChaosVerdict is the outcome of one case under one fault schedule.
type ChaosVerdict struct {
	Case   Case
	Seed   uint64
	Engine tsan.Engine
	Races  int64
	// Injected lists every fault fired across all ranks.
	Injected []*faults.Fault
	// Degraded lists ranks whose checker crashed and was contained.
	Degraded []*core.Degradation
	// AppFault is the most attributable rank error (nil on a clean run):
	// the first rank that died of its OWN injected fault, falling back to
	// abort collateral only when no rank did. The preference is what
	// keeps the field deterministic — collateral wraps whichever abort
	// happened to kill the world first, and when two ranks fault
	// concurrently that winner is a wall-clock race.
	AppFault error
	// Violations are trust failures: unattributable errors, race reports
	// on correct cases, or infrastructure errors. Empty means the tool
	// stayed trustworthy under this schedule.
	Violations []string
	// Budget marks a run cut short by the supervisor's step budget
	// (Env.MaxSteps): the trust properties are not evaluated — a
	// truncated run is a supervision verdict, not a tool failure.
	Budget bool
}

// OK reports whether the tool's behaviour stayed trustworthy.
func (v *ChaosVerdict) OK() bool { return len(v.Violations) == 0 }

func (v *ChaosVerdict) String() string {
	status := "OK"
	if !v.OK() {
		status = "VIOLATION"
	}
	return fmt.Sprintf("%s: chaos seed=%d engine=%s :: %s (races=%d injected=%d degraded=%d violations=%v)",
		status, v.Seed, v.Engine, v.Case.Name, v.Races, len(v.Injected), len(v.Degraded), v.Violations)
}

// attributable reports whether a rank error is explained by fault
// injection: it carries an injected fault, or is abort collateral.
func attributable(err error) bool {
	if _, ok := faults.Extract(err); ok {
		return true
	}
	return errors.Is(err, mpi.ErrAborted)
}

// RunChaosCase executes one case under the given fault plan and checks
// the trust properties.
func RunChaosCase(c Case, plan *faults.Plan, engine tsan.Engine) *ChaosVerdict {
	return runChaosCase(c, plan, engine, Env{})
}

func runChaosCase(c Case, plan *faults.Plan, engine tsan.Engine, env Env) *ChaosVerdict {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 2
	}
	v := &ChaosVerdict{Case: c, Engine: engine}
	if plan != nil {
		v.Seed = plan.Seed
	}
	res, err := core.Run(core.Config{
		Flavor:   core.MUSTCuSan,
		Ranks:    ranks,
		Module:   Module(),
		TSanCfg:  tsan.Config{Engine: engine},
		Faults:   plan,
		Ctx:      env.Ctx,
		MaxSteps: env.MaxSteps,
	}, c.App)
	if err != nil {
		v.Violations = append(v.Violations, fmt.Sprintf("infrastructure error: %v", err))
		return v
	}
	v.Races = res.TotalRaces()
	faulted := false
	var collateral error
	for i := range res.Ranks {
		rr := &res.Ranks[i]
		v.Injected = append(v.Injected, rr.Injected...)
		if rr.Degraded != nil {
			v.Degraded = append(v.Degraded, rr.Degraded)
		}
		if rr.Err == nil {
			continue
		}
		if budgetClass(rr.Err) {
			v.Budget = true
			continue
		}
		faulted = true
		if !attributable(rr.Err) {
			v.Violations = append(v.Violations,
				fmt.Sprintf("rank %d: unattributable error: %v", rr.Rank, rr.Err))
			continue
		}
		// Prefer the first rank that died of its own injected fault: which
		// ranks those are is a pure function of the plan. A collateral
		// error wraps whichever rank's abort killed the world first — a
		// wall-clock race when two ranks fault concurrently — so it only
		// stands in when no rank error is direct.
		if f, ok := faults.Extract(rr.Err); ok && f.Rank == rr.Rank {
			if v.AppFault == nil {
				v.AppFault = fmt.Errorf("rank %d: %w", rr.Rank, rr.Err)
			}
		} else if collateral == nil {
			collateral = fmt.Errorf("rank %d: %w", rr.Rank, rr.Err)
		}
	}
	if v.AppFault == nil {
		v.AppFault = collateral
	}
	if !c.ExpectRace && v.Races > 0 {
		v.Violations = append(v.Violations,
			fmt.Sprintf("false positive: %d race report(s) on a correct case", v.Races))
	}
	// Verdict stability: a schedule that fired nothing and degraded
	// nothing is an ordinary run and must classify exactly like one.
	// This is deliberately a single-schedule check — it can only demand
	// the race on the one schedule that actually ran. The explore
	// modality (ExploreCase) asserts the stronger property that every
	// known-racy case has at least one racy schedule across the full
	// space, and flags cases whose race needs exploration to expose
	// (ExploreVerdict.NeedsExploration).
	if !faulted && !v.Budget && len(v.Injected) == 0 && len(v.Degraded) == 0 {
		if c.ExpectRace && v.Races == 0 {
			v.Violations = append(v.Violations,
				"fault-free run missed the expected race on this schedule (explore proves the full space)")
		}
	}
	return v
}

// ReproduceFault re-runs a case with a plan that pins exactly the given
// fault's (seed, site, occurrence, rank) triple and reports whether the
// same fault fires again — the replayability guarantee behind
// `cusan-run -faults site@N:rR`.
func ReproduceFault(c Case, f *faults.Fault, engine tsan.Engine) error {
	plan := &faults.Plan{
		Seed:  f.Seed,
		Picks: []faults.Pick{{Site: f.Site, Occurrence: f.Occurrence, Rank: f.Rank}},
	}
	v := RunChaosCase(c, plan, engine)
	for _, got := range v.Injected {
		if got.Site == f.Site && got.Occurrence == f.Occurrence && got.Rank == f.Rank {
			return nil
		}
	}
	return fmt.Errorf("fault %s did not reproduce on %s (injected: %v)", f.Spec(), c.Name, v.Injected)
}

// SoakReport aggregates a chaos soak.
type SoakReport struct {
	Runs       int
	Faulted    int // runs where at least one fault fired
	Injected   int // total faults fired
	Degraded   int // contained checker crashes
	Violations []string
	// Campaign is the underlying job-level report (JSONL-exportable).
	Campaign *campaign.Report
}

func (r *SoakReport) String() string {
	return fmt.Sprintf("chaos soak: %d runs, %d faulted, %d faults injected, %d degraded, %d violations",
		r.Runs, r.Faulted, r.Injected, r.Degraded, len(r.Violations))
}

// ChaosSoak runs every case under every (seed, engine) schedule at the
// given per-site rate and aggregates trust violations. Jobs dispatch
// through the campaign engine across NumCPU workers; the aggregate is
// identical to the historical serial sweep because each job's verdict
// is a pure function of its (case, plan, engine) identity.
func ChaosSoak(seeds []uint64, rate float64, engines []tsan.Engine) *SoakReport {
	return ChaosSoakN(seeds, rate, engines, 0)
}

// ChaosSoakN is ChaosSoak with an explicit worker count (0 = NumCPU).
func ChaosSoakN(seeds []uint64, rate float64, engines []tsan.Engine, workers int) *SoakReport {
	jobs := ChaosJobs(Cases(), seeds, rate, engines)
	crep := campaign.Run(jobs, ExecuteJob, campaign.Options{Workers: workers})
	rep := &SoakReport{Campaign: crep}
	for _, r := range crep.Records {
		rep.Runs++
		rep.Injected += len(r.Injected)
		rep.Degraded += r.Degraded
		if len(r.Injected) > 0 {
			rep.Faulted++
		}
		for _, f := range r.Findings {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("chaos seed=%d engine=%s :: %s: %s", r.Seed, r.Engine, f.Case, f.Detail))
		}
	}
	return rep
}
