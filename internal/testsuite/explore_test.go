package testsuite

import (
	"strings"
	"testing"

	"cusango/internal/sched"
	"cusango/internal/tsan"
)

func findCase(t *testing.T, name string) Case {
	t.Helper()
	for _, c := range Cases() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no such case: %s", name)
	return Case{}
}

// TestExploreCorrectCase: a correct case explores to completion,
// race-free across its whole schedule space.
func TestExploreCorrectCase(t *testing.T) {
	for _, name := range []string{
		"mpi-to-cuda/recv_blocking_kernel",
		"mpi-modes/ssend_after_devicesync",
		"mpi-modes/probe_recv_kernel",
		"mpi-modes/iprobe_poll_recv",
		"mpi-to-cuda/irecv_test_loop_kernel",
		"mpi-modes/waitany_then_kernel",
	} {
		v := ExploreCase(findCase(t, name), ExploreOptions{Engine: tsan.EngineBatched})
		t.Logf("%s: %s", name, v.Result.String())
		if !v.OK() {
			t.Errorf("%s: %v", name, v.Violations)
		}
		if !v.Result.Complete {
			t.Errorf("%s: exploration incomplete", name)
		}
		if v.Result.Explored < 1 {
			t.Errorf("%s: nothing explored", name)
		}
	}
}

// TestExploreRacyCase: every explored schedule of a deterministic racy
// case races, and the minimal racy schedule replays byte-identically.
func TestExploreRacyCase(t *testing.T) {
	for _, name := range []string{
		"mpi-modes/ssend_nosync",
		"mpi-modes/waitany_wrong_buffer",
	} {
		v := ExploreCase(findCase(t, name), ExploreOptions{Engine: tsan.EngineBatched})
		t.Logf("%s: %s", name, v.Result.String())
		if !v.OK() {
			t.Errorf("%s: %v", name, v.Violations)
		}
		if v.Result.Racy == 0 {
			t.Errorf("%s: no racy schedule found", name)
		}
		if v.Result.MinRacySpec != "" && !v.ReplayOK {
			t.Errorf("%s: minimal racy schedule did not replay", name)
		}
	}
}

// TestExploreWholeSuiteDefaultSchedule: the default schedule of every
// case classifies exactly like an uncontrolled run — placing the world
// under the controller must not change any verdict.
func TestExploreWholeSuiteDefaultSchedule(t *testing.T) {
	for _, c := range Cases() {
		out := RunExploreSchedule(c, nil, ExploreOptions{Engine: tsan.EngineBatched})
		if out.Err != nil {
			t.Errorf("%s: default schedule error: %v", c.Name, out.Err)
			continue
		}
		if out.Stuck {
			t.Errorf("%s: default schedule stuck", c.Name)
			continue
		}
		if (out.Races > 0) != c.ExpectRace {
			t.Errorf("%s: default schedule races=%d, expect race=%v (spec %s)",
				c.Name, out.Races, c.ExpectRace, sched.FormatSpec(out.Log))
		}
	}
}

// TestExploreReplayPrefixStability: replaying the full spec of any
// explored schedule reproduces the identical decision log.
func TestExploreReplayPrefixStability(t *testing.T) {
	c := findCase(t, "mpi-modes/probe_recv_kernel")
	opt := ExploreOptions{Engine: tsan.EngineBatched}
	out := RunExploreSchedule(c, nil, opt)
	if out.Err != nil {
		t.Fatalf("default schedule: %v", out.Err)
	}
	spec := sched.FormatSpec(out.Log)
	prefix, err := sched.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	again := RunExploreSchedule(c, prefix, opt)
	if got := sched.FormatSpec(again.Log); got != spec {
		t.Fatalf("replay diverged: %q vs %q", got, spec)
	}
	if again.Err != nil {
		t.Fatalf("replay error: %v", again.Err)
	}
}

// TestExploreEngineAgreement: exploration verdicts agree across both
// shadow engines on a representative slice.
func TestExploreEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("engine agreement is part of the long acceptance run")
	}
	for _, name := range []string{
		"mpi-modes/ssend_nosync",
		"mpi-modes/probe_recv_kernel",
		"mpi-to-cuda/irecv_test_loop_kernel",
	} {
		c := findCase(t, name)
		a := ExploreCase(c, ExploreOptions{Engine: tsan.EngineBatched})
		b := ExploreCase(c, ExploreOptions{Engine: tsan.EngineSlow})
		if a.Result.Explored != b.Result.Explored || a.Result.Pruned != b.Result.Pruned ||
			(a.Result.Racy > 0) != (b.Result.Racy > 0) {
			t.Errorf("%s: engines disagree: batched %s vs slow %s", name, a.Result.String(), b.Result.String())
		}
	}
}

// TestExploreModalityAgreement is satellite coverage: for every suite
// case on both engines, explore's verdict must be a superset of the
// 25-seed chaos soak's — any race chaos can find, explore finds.
func TestExploreModalityAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("modality agreement sweeps the whole suite twice")
	}
	for _, engine := range bothEngines {
		for _, c := range Cases() {
			v := ExploreCase(c, ExploreOptions{Engine: engine})
			// The chaos soak's strongest race claim on any case is "the
			// expected race shows on some schedule"; explore must find a
			// racy schedule whenever the classification expects one, and
			// none when chaos (fault-free) may never see one.
			if c.ExpectRace && v.Result.Racy == 0 {
				t.Errorf("engine %s %s: chaos expects a race, explore found none (%s)",
					engine, c.Name, v.Result.String())
			}
			if !c.ExpectRace && v.Result.Racy > 0 {
				t.Errorf("engine %s %s: explore races where chaos must never (%s)",
					engine, c.Name, v.Result.String())
			}
			if !v.OK() {
				t.Errorf("engine %s %s: %v", engine, c.Name, v.Violations)
			}
		}
	}
}

// TestExploreNaiveDifferential: DPOR pruning must never drop a racy
// schedule — naive full enumeration and DPOR agree on every case's
// race verdict, and DPOR never explores more than naive.
func TestExploreNaiveDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential exploration is part of the long acceptance run")
	}
	for _, name := range []string{
		"mpi-modes/ssend_nosync",
		"mpi-modes/waitany_then_kernel",
		"mpi-modes/waitany_wrong_buffer",
		"mpi-modes/probe_recv_kernel",
		"mpi-modes/iprobe_poll_recv",
		"mpi-to-cuda/irecv_test_loop_kernel",
	} {
		c := findCase(t, name)
		dpor := ExploreCase(c, ExploreOptions{Engine: tsan.EngineBatched})
		naive := ExploreCase(c, ExploreOptions{Engine: tsan.EngineBatched, Naive: true})
		t.Logf("%s: dpor %s | naive %s", name, dpor.Result.String(), naive.Result.String())
		if (dpor.Result.Racy > 0) != (naive.Result.Racy > 0) {
			t.Errorf("%s: DPOR and naive disagree: %s vs %s",
				name, dpor.Result.String(), naive.Result.String())
		}
		if dpor.Result.Explored > naive.Result.Explored {
			t.Errorf("%s: DPOR explored more than naive (%d > %d)",
				name, dpor.Result.Explored, naive.Result.Explored)
		}
		if !naive.OK() || !dpor.OK() {
			t.Errorf("%s: violations: dpor=%v naive=%v", name, dpor.Violations, naive.Violations)
		}
	}
}

// TestExploreBoundedPreemption: a preemption bound of 0 choices still
// covers the default schedule; bound 1 covers every single-deviation
// schedule and marks the run incomplete only when it skipped branches.
func TestExploreBoundedPreemption(t *testing.T) {
	c := findCase(t, "mpi-modes/probe_recv_kernel")
	full := ExploreCase(c, ExploreOptions{Engine: tsan.EngineBatched})
	bounded := ExploreCase(c, ExploreOptions{Engine: tsan.EngineBatched, Bound: 1})
	if bounded.Result.Explored > full.Result.Explored {
		t.Errorf("bound explored more than full: %d > %d",
			bounded.Result.Explored, full.Result.Explored)
	}
	if bounded.Result.Explored < 1 {
		t.Error("bounded exploration explored nothing")
	}
}

// TestScheduleSpecRejectsGarbage: replaying a syntactically valid but
// semantically impossible spec surfaces a divergence, not a wrong
// verdict.
func TestScheduleSpecRejectsGarbage(t *testing.T) {
	c := findCase(t, "mpi-to-cuda/recv_blocking_kernel")
	prefix, err := sched.ParseSpec("m7.p3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	out := RunExploreSchedule(c, prefix, ExploreOptions{Engine: tsan.EngineBatched})
	if out.Err == nil || !strings.Contains(out.Err.Error(), "divergence") {
		t.Fatalf("want replay divergence, got err=%v", out.Err)
	}
}

// TestExploreWideScheduleCases: the wide-sched category must present a
// genuinely wide choice tree — many distinct schedules even under DPOR
// pruning — and stay race-free and deadlock-free on every one that a
// bounded budget reaches. Budget exhaustion on these correct cases is
// a coverage statement, not a violation.
func TestExploreWideScheduleCases(t *testing.T) {
	for _, name := range []string{
		"wide-sched/multi_sender_wildcard",
		"wide-sched/iprobe_test_ring",
	} {
		v := ExploreCase(findCase(t, name), ExploreOptions{Engine: tsan.EngineBatched, Budget: 64})
		t.Logf("%s: %s", name, v.Result.String())
		if !v.OK() {
			t.Errorf("%s: %v", name, v.Violations)
		}
		if v.Result.Explored < 8 {
			t.Errorf("%s: schedule space not wide: explored only %d schedules", name, v.Result.Explored)
		}
		if v.Result.Stuck > 0 {
			t.Errorf("%s: %d schedules deadlocked", name, v.Result.Stuck)
		}
	}
}
